/**
 * @file
 * WavefrontRunner behaviour: every cell runs exactly once, no cell
 * starts before its left and top-right (lag) dependencies completed,
 * results are identical at every thread count, cancellation mid-frame
 * neither deadlocks nor poisons the runner for the next frame. Also
 * covers the frame-thread oversubscription guard (frame_threads.h).
 * Part of the ThreadSanitizer suite (`ctest -L thread`).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/runtime_config.h"
#include "sched/frame_threads.h"
#include "sched/wavefront.h"

namespace vbench::sched {
namespace {

/** Per-cell completion flags; safe for concurrent read/write. */
struct DoneGrid {
    DoneGrid(int rows, int cols)
        : cols(cols),
          done(static_cast<size_t>(rows) * static_cast<size_t>(cols))
    {
    }

    std::atomic<int> &at(int r, int c)
    {
        return done[static_cast<size_t>(r) * cols + c];
    }

    int cols;
    std::vector<std::atomic<int>> done;
};

TEST(Wavefront, RunsEveryCellExactlyOnce)
{
    const int rows = 13, cols = 17;
    WavefrontRunner runner(4);
    DoneGrid grid(rows, cols);
    ASSERT_TRUE(runner.run(rows, cols, 2, [&](int r, int c, int) {
        grid.at(r, c).fetch_add(1, std::memory_order_relaxed);
    }));
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            EXPECT_EQ(grid.at(r, c).load(), 1) << r << "," << c;
}

TEST(Wavefront, SlotIndicesStayInRange)
{
    const int threads = 5;
    WavefrontRunner runner(threads);
    EXPECT_EQ(runner.threads(), threads);
    std::atomic<int> out_of_range{0};
    ASSERT_TRUE(runner.run(8, 8, 2, [&](int, int, int slot) {
        if (slot < 0 || slot >= threads)
            out_of_range.fetch_add(1, std::memory_order_relaxed);
    }));
    EXPECT_EQ(out_of_range.load(), 0);
}

/**
 * The contract the encoders rely on: when (r, c) starts, (r, c-1) is
 * done and row r-1 has completed at least min(c + lag, cols) cells.
 * Violations are counted atomically (gtest macros are not
 * thread-safe) and asserted after the wave.
 */
void
checkDependencyOrder(int threads, int lag)
{
    const int rows = 11, cols = 19;
    WavefrontRunner runner(threads);
    DoneGrid grid(rows, cols);
    std::atomic<int> violations{0};
    ASSERT_TRUE(runner.run(rows, cols, lag, [&](int r, int c, int) {
        if (c > 0 && grid.at(r, c - 1).load(std::memory_order_acquire) == 0)
            violations.fetch_add(1, std::memory_order_relaxed);
        if (r > 0) {
            const int need = c + lag < cols ? c + lag : cols;
            for (int k = 0; k < need; ++k) {
                if (grid.at(r - 1, k).load(std::memory_order_acquire) == 0)
                    violations.fetch_add(1, std::memory_order_relaxed);
            }
        }
        grid.at(r, c).store(1, std::memory_order_release);
    }));
    EXPECT_EQ(violations.load(), 0)
        << "threads=" << threads << " lag=" << lag;
}

TEST(Wavefront, DependencyOrderLag2)
{
    for (int threads : {1, 2, 4, 7})
        checkDependencyOrder(threads, 2);
}

TEST(Wavefront, DependencyOrderLag3)
{
    for (int threads : {2, 5})
        checkDependencyOrder(threads, 3);
}

/**
 * A cell value derived from its wavefront dependencies must be
 * identical at every thread count — the scheduling-level statement of
 * the encoders' bit-exactness guarantee.
 */
TEST(Wavefront, DeterministicAcrossThreadCounts)
{
    const int rows = 9, cols = 23, lag = 2;
    auto compute = [&](int threads) {
        std::vector<uint64_t> out(
            static_cast<size_t>(rows) * cols, 0);
        WavefrontRunner runner(threads);
        EXPECT_TRUE(runner.run(rows, cols, lag, [&](int r, int c, int) {
            uint64_t v = 1;
            if (c > 0)
                v += out[static_cast<size_t>(r) * cols + c - 1] * 3;
            if (r > 0) {
                const int need = c + lag < cols ? c + lag : cols;
                v += out[static_cast<size_t>(r - 1) * cols + need - 1] * 7;
            }
            out[static_cast<size_t>(r) * cols + c] = v + r * 31 + c;
        }));
        return out;
    };
    const std::vector<uint64_t> serial = compute(1);
    for (int threads : {2, 4, 7})
        EXPECT_EQ(compute(threads), serial) << "threads=" << threads;
}

TEST(Wavefront, CancellationMidGridReturnsFalseAndRunnerSurvives)
{
    const int rows = 16, cols = 16;
    WavefrontRunner runner(4);
    std::atomic<bool> cancel{false};
    std::atomic<int> ran{0};
    const bool complete =
        runner.run(rows, cols, 2,
                   [&](int r, int c, int) {
                       ran.fetch_add(1, std::memory_order_relaxed);
                       if (r == rows / 2 && c == 0)
                           cancel.store(true, std::memory_order_relaxed);
                   },
                   &cancel);
    EXPECT_FALSE(complete);
    EXPECT_LT(ran.load(), rows * cols);

    // The runner must be reusable for the next frame.
    std::atomic<int> ran2{0};
    std::atomic<bool> no_cancel{false};
    EXPECT_TRUE(runner.run(rows, cols, 2,
                           [&](int, int, int) {
                               ran2.fetch_add(1,
                                              std::memory_order_relaxed);
                           },
                           &no_cancel));
    EXPECT_EQ(ran2.load(), rows * cols);
}

TEST(Wavefront, CancelledBeforeStartRunsNothing)
{
    WavefrontRunner runner(3);
    std::atomic<bool> cancel{true};
    std::atomic<int> ran{0};
    EXPECT_FALSE(runner.run(8, 8, 2,
                            [&](int, int, int) {
                                ran.fetch_add(1,
                                              std::memory_order_relaxed);
                            },
                            &cancel));
    // Row 0 has no dependency wait, so its first cells may still run;
    // nothing below the first owned rows may.
    EXPECT_LT(ran.load(), 8 * 8);
}

TEST(Wavefront, DegenerateGridsAndReuseAcrossSizes)
{
    WavefrontRunner runner(4);
    EXPECT_TRUE(runner.run(0, 5, 2, [&](int, int, int) { FAIL(); }));
    EXPECT_TRUE(runner.run(5, 0, 2, [&](int, int, int) { FAIL(); }));

    // Grow, shrink, regrow: exercises the reallocate-only-when-taller
    // progress storage.
    for (int rows : {1, 12, 3, 20, 7}) {
        DoneGrid grid(rows, 6);
        ASSERT_TRUE(runner.run(rows, 6, 2, [&](int r, int c, int) {
            grid.at(r, c).fetch_add(1, std::memory_order_relaxed);
        }));
        for (int r = 0; r < rows; ++r)
            for (int c = 0; c < 6; ++c)
                ASSERT_EQ(grid.at(r, c).load(), 1);
    }
}

TEST(Wavefront, StressManyWaves)
{
    WavefrontRunner runner(4);
    for (int i = 0; i < 50; ++i) {
        const int rows = 1 + (i * 7) % 13;
        const int cols = 1 + (i * 5) % 17;
        std::atomic<int> ran{0};
        ASSERT_TRUE(runner.run(rows, cols, 2, [&](int, int, int) {
            ran.fetch_add(1, std::memory_order_relaxed);
        }));
        ASSERT_EQ(ran.load(), rows * cols);
    }
}

// ---- Oversubscription guard (frame_threads.h). ----

/** Restores budget / env so tests compose in any order. */
class FrameThreadGuard : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        setFrameThreadBudget(0);
        unsetenv("VBENCH_FRAME_THREADS");
    }
};

TEST_F(FrameThreadGuard, EnvParsing)
{
    // Valid values flow through core::RuntimeConfig; malformed ones
    // fail fast there (see RuntimeConfig.RejectsMalformedValues), so
    // only well-formed inputs reach this accessor.
    unsetenv("VBENCH_FRAME_THREADS");
    EXPECT_EQ(frameThreadsFromEnv(), 1);
    setenv("VBENCH_FRAME_THREADS", "4", 1);
    EXPECT_EQ(frameThreadsFromEnv(), 4);
    // Huge-but-well-formed widths clamp at the documented cap.
    setenv("VBENCH_FRAME_THREADS", "100000", 1);
    EXPECT_EQ(frameThreadsFromEnv(), kMaxFrameThreads);
}

TEST_F(FrameThreadGuard, MalformedEnvIsAConfigError)
{
    // The strict contract: garbage no longer silently falls back to
    // serial — RuntimeConfig::fromEnv reports it as an error.
    for (const char *bad : {"garbage", "0", "-3", "4x"}) {
        setenv("VBENCH_FRAME_THREADS", bad, 1);
        std::vector<std::string> errors;
        core::RuntimeConfig::fromEnv(&errors);
        EXPECT_EQ(errors.size(), 1u) << bad;
    }
}

TEST_F(FrameThreadGuard, LoneJobGetsRequestedWidth)
{
    setFrameThreadBudget(8);
    const FrameThreadDecision d = decideFrameThreads(4);
    EXPECT_EQ(d.threads, 4);
    EXPECT_EQ(d.requested, 4);
    EXPECT_FALSE(d.clamped);
}

TEST_F(FrameThreadGuard, SaturatedPoolClampsToOne)
{
    setFrameThreadBudget(4);
    std::vector<std::unique_ptr<ActiveJobScope>> jobs;
    for (int i = 0; i < 4; ++i)
        jobs.push_back(std::make_unique<ActiveJobScope>());
    EXPECT_EQ(activeTranscodeJobs(), 4);
    const FrameThreadDecision d = decideFrameThreads(4);
    EXPECT_EQ(d.threads, 1);
    EXPECT_TRUE(d.clamped);
    jobs.clear();
    EXPECT_EQ(activeTranscodeJobs(), 0);
}

TEST_F(FrameThreadGuard, PartialLoadSplitsBudget)
{
    setFrameThreadBudget(8);
    ActiveJobScope a, b;  // two jobs share an 8-wide pool
    const FrameThreadDecision d = decideFrameThreads(8);
    EXPECT_EQ(d.threads, 4);
    EXPECT_TRUE(d.clamped);
}

TEST_F(FrameThreadGuard, RequestNeverExceededEvenWithHeadroom)
{
    setFrameThreadBudget(64);
    const FrameThreadDecision d = decideFrameThreads(2);
    EXPECT_EQ(d.threads, 2);
    EXPECT_FALSE(d.clamped);
}

} // namespace
} // namespace vbench::sched
