/**
 * @file
 * BoundedQueue semantics: FIFO order, backpressure (full queue blocks
 * producers), close-and-drain, and multi-producer / multi-consumer
 * conservation. This file is also compiled into the ThreadSanitizer
 * suite (`ctest -L thread`), so every test doubles as a race check.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "sched/queue.h"

namespace vbench::sched {
namespace {

TEST(BoundedQueue, FifoOrderSingleThread)
{
    BoundedQueue<int> q(8);
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(q.push(i));
    EXPECT_EQ(q.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(q.pop().value(), i);
    EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, TryPushRefusesWhenFull)
{
    BoundedQueue<int> q(2);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_FALSE(q.tryPush(3));
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_TRUE(q.tryPush(3));
}

TEST(BoundedQueue, TryPopNeverBlocks)
{
    BoundedQueue<int> q(2);
    EXPECT_FALSE(q.tryPop().has_value());
    q.push(7);
    EXPECT_EQ(q.tryPop().value(), 7);
    EXPECT_FALSE(q.tryPop().has_value());
}

TEST(BoundedQueue, PushBlocksUntilPopMakesRoom)
{
    BoundedQueue<int> q(1);
    ASSERT_TRUE(q.push(1));
    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        q.push(2);
        pushed.store(true);
    });
    // The producer must still be parked on the full queue.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(pushed.load());
    EXPECT_EQ(q.pop().value(), 1);
    producer.join();
    EXPECT_TRUE(pushed.load());
    EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, CloseRefusesPushesButDrains)
{
    BoundedQueue<int> q(4);
    q.push(1);
    q.push(2);
    q.close();
    EXPECT_FALSE(q.push(3));
    EXPECT_FALSE(q.tryPush(3));
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, CloseWakesBlockedConsumer)
{
    BoundedQueue<int> q(4);
    std::atomic<bool> woke{false};
    std::thread consumer([&] {
        EXPECT_FALSE(q.pop().has_value());
        woke.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
    consumer.join();
    EXPECT_TRUE(woke.load());
}

TEST(BoundedQueue, CloseWakesBlockedProducer)
{
    BoundedQueue<int> q(1);
    ASSERT_TRUE(q.push(1));
    std::atomic<bool> refused{false};
    std::thread producer([&] {
        refused.store(!q.push(2));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
    producer.join();
    EXPECT_TRUE(refused.load());
}

TEST(BoundedQueue, MpmcConservesEveryItem)
{
    constexpr int kProducers = 4;
    constexpr int kConsumers = 4;
    constexpr int kPerProducer = 500;
    BoundedQueue<int> q(8);  // small capacity: forces backpressure

    std::atomic<long> sum{0};
    std::atomic<int> popped{0};
    std::vector<std::thread> threads;
    for (int c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&] {
            while (std::optional<int> v = q.pop()) {
                sum.fetch_add(*v);
                popped.fetch_add(1);
            }
        });
    }
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i)
                ASSERT_TRUE(q.push(p * kPerProducer + i));
        });
    }
    for (std::thread &t : producers)
        t.join();
    q.close();
    for (std::thread &t : threads)
        t.join();

    const int total = kProducers * kPerProducer;
    EXPECT_EQ(popped.load(), total);
    EXPECT_EQ(sum.load(),
              static_cast<long>(total) * (total - 1) / 2);
}

} // namespace
} // namespace vbench::sched
