/**
 * @file
 * The per-worker observability shard pattern the scheduler relies on:
 * threads record into private MetricsRegistry / Tracer instances and
 * the shards merge into one target afterwards, matching what a serial
 * run would have recorded. Compiled into the ThreadSanitizer suite
 * (`ctest -L thread`) to prove the merge primitives are race-free.
 */

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vbench::obs {
namespace {

TEST(ObsShards, RegistryMergeMatchesSerialTotals)
{
    constexpr int kThreads = 4;
    constexpr int kPerThread = 1000;
    std::vector<std::unique_ptr<MetricsRegistry>> shards;
    for (int t = 0; t < kThreads; ++t)
        shards.push_back(std::make_unique<MetricsRegistry>());

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            Counter &jobs = shards[t]->counter("jobs");
            Histogram &ms = shards[t]->histogram("ms");
            for (int i = 0; i < kPerThread; ++i) {
                jobs.add();
                ms.observe(static_cast<uint64_t>(i));
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    MetricsRegistry merged;
    for (const auto &shard : shards)
        merged.mergeFrom(*shard);

    EXPECT_EQ(merged.counter("jobs").value(),
              static_cast<uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(merged.histogram("ms").count(),
              static_cast<uint64_t>(kThreads * kPerThread));
    // Sum of 0..kPerThread-1, kThreads times over.
    EXPECT_EQ(merged.histogram("ms").sum(),
              static_cast<uint64_t>(kThreads) * kPerThread *
                  (kPerThread - 1) / 2);
}

TEST(ObsShards, ConcurrentMergesIntoOneTarget)
{
    // Workers merge their own shard into the shared target while the
    // other workers do the same — the registry-level locking must keep
    // every sample.
    constexpr int kThreads = 4;
    constexpr int kPerThread = 500;
    MetricsRegistry target;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            MetricsRegistry shard;
            for (int i = 0; i < kPerThread; ++i) {
                shard.counter("jobs").add();
                shard.histogram("bytes").observe(64);
            }
            target.mergeFrom(shard);
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(target.counter("jobs").value(),
              static_cast<uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(target.histogram("bytes").count(),
              static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(ObsShards, HistogramMergePreservesBuckets)
{
    Histogram a, b;
    a.observe(3);
    a.observe(100);
    b.observe(3);
    b.observe(1u << 20);
    a.mergeFrom(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.bucketCount(Histogram::bucketIndex(3)), 2u);
    EXPECT_EQ(a.bucketCount(Histogram::bucketIndex(100)), 1u);
    EXPECT_EQ(a.bucketCount(Histogram::bucketIndex(1u << 20)), 1u);
    EXPECT_EQ(a.sum(), 3u + 100u + 3u + (1u << 20));
}

TEST(ObsShards, TracerMergeAppendsEventsAndTotals)
{
    Tracer target, shard;
    target.addSpan(Track::Transcode, Stage::MotionEstimation, 0, 100,
                   200);
    shard.addSpan(Track::Transcode, Stage::MotionEstimation, 1, 300,
                  500);
    shard.addSpan(Track::Transcode, Stage::Deblock, 1, 500, 600);
    target.mergeFrom(shard);

    EXPECT_EQ(target.eventCount(), 3u);
    const StageTotals totals = target.stageTotals();
    EXPECT_DOUBLE_EQ(totals.get(Stage::MotionEstimation),
                     (100 + 200) * 1e-9);
    EXPECT_DOUBLE_EQ(totals.get(Stage::Deblock), 100 * 1e-9);
    // The shard is untouched by the merge.
    EXPECT_EQ(shard.eventCount(), 2u);
}

TEST(ObsShards, ParallelTracerShardsMergeClean)
{
    constexpr int kThreads = 4;
    constexpr int kSpans = 200;
    std::vector<std::unique_ptr<Tracer>> shards;
    for (int t = 0; t < kThreads; ++t)
        shards.push_back(std::make_unique<Tracer>());
    Tracer target;

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kSpans; ++i) {
                const uint64_t base =
                    static_cast<uint64_t>(t) * 1000000 +
                    static_cast<uint64_t>(i) * 100;
                shards[t]->addSpan(Track::Transcode,
                                   Stage::EntropyCoding, i, base,
                                   base + 50);
            }
            target.mergeFrom(*shards[t]);
            shards[t]->clear();
        });
    }
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(target.eventCount(),
              static_cast<size_t>(kThreads) * kSpans);
    EXPECT_DOUBLE_EQ(target.stageTotals().get(Stage::EntropyCoding),
                     static_cast<double>(kThreads) * kSpans * 50 * 1e-9);
}

} // namespace
} // namespace vbench::obs
