/**
 * @file
 * ThreadPool behaviour: every submitted task runs exactly once,
 * worker indices stay in range, the bounded queue applies
 * backpressure to submitters, and destruction drains cleanly. Also
 * part of the ThreadSanitizer suite (`ctest -L thread`).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>

#include "sched/pool.h"

namespace vbench::sched {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    std::atomic<int> runs{0};
    {
        ThreadPool pool(4, 8);
        for (int i = 0; i < 200; ++i)
            ASSERT_TRUE(pool.submit([&](int) { runs.fetch_add(1); }));
    }  // destructor drains the queue and joins
    EXPECT_EQ(runs.load(), 200);
}

TEST(ThreadPool, AtLeastOneWorker)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.workers(), 1);
    EXPECT_GE(pool.queueCapacity(), 1u);
}

TEST(ThreadPool, WorkerIndicesInRange)
{
    std::mutex mu;
    std::set<int> seen;
    {
        ThreadPool pool(3, 4);
        for (int i = 0; i < 60; ++i) {
            pool.submit([&](int worker) {
                std::lock_guard<std::mutex> lock(mu);
                seen.insert(worker);
            });
        }
    }
    ASSERT_FALSE(seen.empty());
    EXPECT_GE(*seen.begin(), 0);
    EXPECT_LT(*seen.rbegin(), 3);
}

TEST(ThreadPool, SubmitBlocksWhenQueueFull)
{
    // One worker parked on a gate; capacity-2 queue fills behind it.
    std::mutex mu;
    std::condition_variable cv;
    bool release = false;

    ThreadPool pool(1, 2);
    pool.submit([&](int) {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return release; });
    });
    // Give the worker a moment to pick the gate task up, then fill
    // the queue.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(pool.submit([](int) {}));
    ASSERT_TRUE(pool.submit([](int) {}));

    std::atomic<bool> fourth_submitted{false};
    std::thread submitter([&] {
        pool.submit([](int) {});
        fourth_submitted.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(fourth_submitted.load());  // backpressure held it
    EXPECT_LE(pool.queued(), 2u);

    {
        std::lock_guard<std::mutex> lock(mu);
        release = true;
    }
    cv.notify_all();
    submitter.join();
    EXPECT_TRUE(fourth_submitted.load());
}

TEST(ThreadPool, ManyProducersOnePool)
{
    std::atomic<int> runs{0};
    {
        ThreadPool pool(2, 4);
        std::vector<std::thread> producers;
        for (int p = 0; p < 4; ++p) {
            producers.emplace_back([&] {
                for (int i = 0; i < 50; ++i)
                    pool.submit([&](int) { runs.fetch_add(1); });
            });
        }
        for (std::thread &t : producers)
            t.join();
    }
    EXPECT_EQ(runs.load(), 200);
}

} // namespace
} // namespace vbench::sched
