/**
 * @file
 * Scheduler end-to-end behaviour: batches preserve input order and are
 * bitwise-deterministic across worker counts, invalid requests fail
 * fast, pending jobs cancel, per-worker obs shards merge into the
 * configured targets, and VBENCH_JOBS drives the default worker count.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/runtime_config.h"
#include "core/transcoder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/scheduler.h"
#include "video/synth.h"

namespace vbench::sched {
namespace {

struct Clip {
    std::shared_ptr<const video::Video> original;
    std::shared_ptr<const codec::ByteBuffer> universal;
};

Clip
makeClip(int seed, int w = 160, int h = 128, int frames = 4)
{
    auto original = std::make_shared<video::Video>(video::synthesize(
        video::presetFor(video::ContentClass::Natural, w, h, 30.0,
                         frames, seed),
        "clip" + std::to_string(seed)));
    auto universal = std::make_shared<codec::ByteBuffer>(
        core::makeUniversalStream(*original));
    return {std::move(original), std::move(universal)};
}

core::TranscodeRequest
crfRequest(double crf, int effort = 2)
{
    core::TranscodeRequest req;
    req.kind = core::EncoderKind::Vbc;
    req.rc.mode = codec::RcMode::Crf;
    req.rc.crf = crf;
    req.effort = effort;
    req.gop = 30;
    return req;
}

std::vector<TranscodeJob>
makeGrid(const std::vector<Clip> &clips)
{
    // 2 clips x 2 operating points: a small but real batch grid.
    std::vector<TranscodeJob> jobs;
    for (size_t c = 0; c < clips.size(); ++c) {
        for (const double crf : {20.0, 32.0}) {
            TranscodeJob job;
            job.label = "clip" + std::to_string(c) + "@crf" +
                std::to_string(static_cast<int>(crf));
            job.input = clips[c].universal;
            job.original = clips[c].original;
            job.request = crfRequest(crf);
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

TEST(Scheduler, BatchIsDeterministicAcrossWorkerCounts)
{
    const std::vector<Clip> clips = {makeClip(101), makeClip(202)};

    // Ground truth: the same grid transcoded serially, inline.
    std::vector<core::TranscodeOutcome> serial;
    for (const TranscodeJob &job : makeGrid(clips))
        serial.push_back(
            core::transcode(*job.input, *job.original, job.request));

    for (const int workers : {1, 2, 4}) {
        SchedulerConfig config;
        config.workers = workers;
        Scheduler scheduler(config);
        ASSERT_EQ(scheduler.workers(), workers);
        const BatchResult batch = scheduler.runBatch(makeGrid(clips));

        ASSERT_EQ(batch.results.size(), serial.size())
            << workers << " workers";
        EXPECT_EQ(batch.stats.ok, serial.size());
        EXPECT_EQ(batch.stats.failed, 0u);
        for (size_t i = 0; i < serial.size(); ++i) {
            const JobResult &r = batch.results[i];
            ASSERT_TRUE(r.ok()) << r.label << ": " << r.outcome.error;
            // Input order is preserved regardless of completion order.
            EXPECT_EQ(r.label, makeGrid(clips)[i].label);
            // Streams and scores are bitwise-identical to the serial
            // run at every worker count; only wall-clock-derived
            // numbers may differ.
            EXPECT_EQ(r.outcome.stream, serial[i].stream)
                << r.label << " at " << workers << " workers";
            EXPECT_DOUBLE_EQ(r.outcome.m.psnr_db, serial[i].m.psnr_db);
            EXPECT_DOUBLE_EQ(r.outcome.m.bitrate_bpps,
                             serial[i].m.bitrate_bpps);
        }
    }
}

TEST(Scheduler, InvalidRequestFailsFastInsideBatch)
{
    const Clip clip = makeClip(7);
    std::vector<TranscodeJob> jobs;

    TranscodeJob good;
    good.label = "good";
    good.input = clip.universal;
    good.original = clip.original;
    good.request = crfRequest(24);
    jobs.push_back(good);

    TranscodeJob bad = good;
    bad.label = "bad-effort";
    bad.request.effort = 99;
    jobs.push_back(bad);

    Scheduler scheduler(SchedulerConfig{.workers = 2});
    const BatchResult batch = scheduler.runBatch(std::move(jobs));
    ASSERT_EQ(batch.results.size(), 2u);
    EXPECT_TRUE(batch.results[0].ok());
    EXPECT_FALSE(batch.results[1].ok());
    EXPECT_NE(batch.results[1].outcome.error.find("invalid request"),
              std::string::npos)
        << batch.results[1].outcome.error;
    // The bad request never encoded anything.
    EXPECT_TRUE(batch.results[1].outcome.stream.empty());
    EXPECT_EQ(batch.stats.ok, 1u);
    EXPECT_EQ(batch.stats.failed, 1u);
    EXPECT_EQ(batch.stats.cancelled, 0u);
}

TEST(Scheduler, JobWithoutInputFails)
{
    TranscodeJob job;
    job.label = "empty";
    job.request = crfRequest(24);
    Scheduler scheduler(SchedulerConfig{.workers = 1});
    const BatchResult batch = scheduler.runBatch({std::move(job)});
    ASSERT_EQ(batch.results.size(), 1u);
    EXPECT_FALSE(batch.results[0].ok());
    EXPECT_FALSE(batch.results[0].outcome.error.empty());
}

TEST(Scheduler, PendingJobsCancelBehindARunningJob)
{
    const Clip clip = makeClip(11, 192, 160, 6);
    SchedulerConfig config;
    config.workers = 1;     // everything queues behind the first job
    config.queue_capacity = 8;
    Scheduler scheduler(config);

    TranscodeJob slow;
    slow.label = "running";
    slow.input = clip.universal;
    slow.original = clip.original;
    slow.request = crfRequest(20, 5);  // higher effort: keeps worker busy

    TranscodeJob pending = slow;
    pending.label = "pending";

    JobHandle first = scheduler.submit(std::move(slow));
    std::vector<JobHandle> victims;
    for (int i = 0; i < 3; ++i)
        victims.push_back(scheduler.submit(pending));
    // Cancel while they queue behind the busy single worker.
    for (JobHandle &h : victims)
        h.cancel();

    const JobResult &r = first.wait();
    EXPECT_TRUE(r.ok()) << r.outcome.error;
    for (JobHandle &h : victims) {
        const JobResult &v = h.wait();
        EXPECT_TRUE(v.cancelled);
        EXPECT_EQ(h.status(), JobStatus::Cancelled);
        EXPECT_EQ(v.outcome.error, "cancelled");
        EXPECT_TRUE(v.outcome.stream.empty());  // never transcoded
    }
    // Cancelling a finished job reports no effect.
    EXPECT_FALSE(first.cancel());
}

TEST(Scheduler, CancelFlagPreemptsTranscode)
{
    // The cooperative flag wired into TranscodeRequest::cancel stops a
    // transcode at its next phase boundary: pre-set it and the request
    // returns "cancelled" without encoding.
    const Clip clip = makeClip(13);
    std::atomic<bool> cancel{true};
    core::TranscodeRequest req = crfRequest(24);
    req.cancel = &cancel;
    const core::TranscodeOutcome outcome =
        core::transcode(*clip.universal, *clip.original, req);
    EXPECT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.error, "cancelled");
    EXPECT_TRUE(outcome.stream.empty());
}

TEST(Scheduler, ShardsMergeIntoConfiguredTargets)
{
    const std::vector<Clip> clips = {makeClip(31), makeClip(32)};
    std::vector<TranscodeJob> jobs = makeGrid(clips);
    const size_t n = jobs.size();

    // Serial ground truth with an explicit registry.
    obs::MetricsRegistry serial_metrics;
    for (TranscodeJob job : makeGrid(clips)) {
        job.request.metrics = &serial_metrics;
        core::transcode(*job.input, *job.original, job.request);
    }

    obs::MetricsRegistry merged;
    obs::Tracer tracer;
    SchedulerConfig config;
    config.workers = 2;
    config.merge_metrics = &merged;
    config.merge_tracer = &tracer;
    Scheduler scheduler(config);
    const BatchResult batch = scheduler.runBatch(std::move(jobs));
    ASSERT_EQ(batch.stats.ok, n);

    // Transcode-level metrics recorded on worker shards equal the
    // serial run's, plus the scheduler's own batch accounting.
    EXPECT_EQ(merged.counter("transcode.runs").value(),
              serial_metrics.counter("transcode.runs").value());
    EXPECT_EQ(merged.counter("encode.frames").value(),
              serial_metrics.counter("encode.frames").value());
    EXPECT_EQ(merged.counter("sched.batches").value(), 1u);
    EXPECT_EQ(merged.counter("sched.jobs").value(), n);
    EXPECT_EQ(merged.counter("sched.jobs.ok").value(), n);
    // Workers traced into private shards; the merge landed them here.
    EXPECT_GT(tracer.eventCount(), 0u);
}

TEST(Scheduler, ExplicitJobSinksBypassShards)
{
    const Clip clip = makeClip(41);
    obs::MetricsRegistry own;
    obs::MetricsRegistry merged;

    TranscodeJob job;
    job.label = "own-sink";
    job.input = clip.universal;
    job.original = clip.original;
    job.request = crfRequest(24);
    job.request.metrics = &own;

    SchedulerConfig config;
    config.workers = 1;
    config.merge_metrics = &merged;
    Scheduler scheduler(config);
    const BatchResult batch = scheduler.runBatch({std::move(job)});
    ASSERT_EQ(batch.stats.ok, 1u);

    EXPECT_EQ(own.counter("transcode.runs").value(), 1u);
    // The merge target sees only the scheduler's batch accounting.
    EXPECT_EQ(merged.counter("transcode.runs").value(), 0u);
    EXPECT_EQ(merged.counter("sched.jobs").value(), 1u);
}

TEST(Scheduler, DefaultWorkerCountHonorsEnv)
{
    const char *saved = std::getenv("VBENCH_JOBS");
    const std::string restore = saved ? saved : "";

    setenv("VBENCH_JOBS", "3", 1);
    EXPECT_EQ(Scheduler::defaultWorkerCount(), 3);
    {
        Scheduler scheduler;
        EXPECT_EQ(scheduler.workers(), 3);
    }
    // Unset falls back to the hardware; malformed values are config
    // errors under the strict RuntimeConfig contract (fail-fast in
    // defaultWorkerCount, reported by fromEnv here).
    unsetenv("VBENCH_JOBS");
    EXPECT_GE(Scheduler::defaultWorkerCount(), 1);
    for (const char *bad : {"0", "banana", "-2"}) {
        setenv("VBENCH_JOBS", bad, 1);
        std::vector<std::string> errors;
        core::RuntimeConfig::fromEnv(&errors);
        EXPECT_EQ(errors.size(), 1u) << bad;
    }

    if (saved)
        setenv("VBENCH_JOBS", restore.c_str(), 1);
    else
        unsetenv("VBENCH_JOBS");
}

TEST(Scheduler, BatchStatsAccounting)
{
    const Clip clip = makeClip(51);
    std::vector<TranscodeJob> jobs;
    for (int i = 0; i < 3; ++i) {
        TranscodeJob job;
        job.label = "job" + std::to_string(i);
        job.input = clip.universal;
        job.original = clip.original;
        job.request = crfRequest(24);
        jobs.push_back(std::move(job));
    }
    Scheduler scheduler(SchedulerConfig{.workers = 2});
    const BatchResult batch = scheduler.runBatch(std::move(jobs));
    EXPECT_EQ(batch.stats.workers, 2);
    EXPECT_EQ(batch.stats.jobs, 3u);
    EXPECT_EQ(batch.stats.ok, 3u);
    EXPECT_GT(batch.stats.wall_seconds, 0.0);
    EXPECT_GT(batch.stats.job_seconds, 0.0);
    EXPECT_GT(batch.stats.jobs_per_second, 0.0);
    EXPECT_GT(batch.stats.speedup_vs_serial, 0.0);
    for (const JobResult &r : batch.results) {
        EXPECT_GE(r.worker, 0);
        EXPECT_LT(r.worker, 2);
        EXPECT_GT(r.seconds, 0.0);
    }
}

} // namespace
} // namespace vbench::sched
