/**
 * @file
 * Motion-vector predictor tests for both codecs' neighbor rules
 * (encoder/decoder symmetry depends on these exactly).
 */

#include <gtest/gtest.h>

#include "codec/mbinfo.h"
#include "ngc/ngc_types.h"

namespace vbench::codec {
namespace {

MbGrid
gridWith(int cols, int rows)
{
    MbGrid grid(cols, rows);
    for (int y = 0; y < rows; ++y) {
        for (int x = 0; x < cols; ++x) {
            grid.at(x, y).mode = MbMode::Inter16;
            grid.at(x, y).mv = MotionVector{0, 0};
        }
    }
    return grid;
}

TEST(MvPredictor, ZeroAtOrigin)
{
    MbGrid grid = gridWith(4, 4);
    const MotionVector pred = mvPredictor(grid, 0, 0);
    EXPECT_EQ(pred.x, 0);
    EXPECT_EQ(pred.y, 0);
}

TEST(MvPredictor, MedianOfThreeNeighbors)
{
    MbGrid grid = gridWith(4, 4);
    grid.at(0, 1).mv = MotionVector{2, 10};   // left
    grid.at(1, 0).mv = MotionVector{6, -4};   // top
    grid.at(2, 0).mv = MotionVector{4, 2};    // top-right
    const MotionVector pred = mvPredictor(grid, 1, 1);
    EXPECT_EQ(pred.x, 4);  // median(2, 6, 4)
    EXPECT_EQ(pred.y, 2);  // median(10, -4, 2)
}

TEST(MvPredictor, IntraNeighborsCountAsZero)
{
    MbGrid grid = gridWith(4, 4);
    grid.at(0, 1).mv = MotionVector{8, 8};
    grid.at(0, 1).mode = MbMode::Intra;  // ignored
    grid.at(1, 0).mv = MotionVector{6, 6};
    grid.at(2, 0).mv = MotionVector{4, 4};
    const MotionVector pred = mvPredictor(grid, 1, 1);
    EXPECT_EQ(pred.x, 4);  // median(0, 6, 4)
    EXPECT_EQ(pred.y, 4);
}

TEST(MvPredictor, RightEdgeFallsBackToTopLeft)
{
    MbGrid grid = gridWith(3, 3);
    grid.at(1, 1).mv = MotionVector{10, 0};   // left of (2,1)
    grid.at(2, 0).mv = MotionVector{10, 0};   // top
    grid.at(1, 0).mv = MotionVector{10, 0};   // top-left (C substitute)
    const MotionVector pred = mvPredictor(grid, 2, 1);
    EXPECT_EQ(pred.x, 10);
}

TEST(MvPredictor, SkipNeighborsContribute)
{
    MbGrid grid = gridWith(4, 4);
    grid.at(0, 1).mode = MbMode::Skip;
    grid.at(0, 1).mv = MotionVector{6, 6};
    grid.at(1, 0).mv = MotionVector{6, 6};
    grid.at(2, 0).mv = MotionVector{6, 6};
    const MotionVector pred = mvPredictor(grid, 1, 1);
    EXPECT_EQ(pred.x, 6);
    EXPECT_EQ(pred.y, 6);
}

} // namespace
} // namespace vbench::codec

namespace vbench::ngc {
namespace {

using codec::MotionVector;

CellGrid
cellsWith(int cols, int rows, CuMode mode)
{
    CellGrid grid(cols, rows);
    for (int y = 0; y < rows; ++y)
        for (int x = 0; x < cols; ++x)
            grid.at(x, y).mode = mode;
    return grid;
}

TEST(CellMvPredictor, ZeroAtOrigin)
{
    CellGrid grid = cellsWith(4, 4, CuMode::Inter);
    const MotionVector pred = cellMvPredictor(grid, 0, 0);
    EXPECT_EQ(pred.x, 0);
    EXPECT_EQ(pred.y, 0);
}

TEST(CellMvPredictor, MedianOfLeftTopTopLeft)
{
    CellGrid grid = cellsWith(4, 4, CuMode::Inter);
    grid.at(0, 1).mv = MotionVector{2, 0};   // left
    grid.at(1, 0).mv = MotionVector{8, 0};   // top
    grid.at(0, 0).mv = MotionVector{4, 0};   // top-left
    const MotionVector pred = cellMvPredictor(grid, 1, 1);
    EXPECT_EQ(pred.x, 4);
}

TEST(CellMvPredictor, IntraCellsAreZero)
{
    CellGrid grid = cellsWith(4, 4, CuMode::Intra);
    grid.at(0, 1).mv = MotionVector{8, 8};
    const MotionVector pred = cellMvPredictor(grid, 1, 1);
    EXPECT_EQ(pred.x, 0);
    EXPECT_EQ(pred.y, 0);
}

} // namespace
} // namespace vbench::ngc
