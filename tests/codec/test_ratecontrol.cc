/**
 * @file
 * Rate controller unit tests.
 */

#include <gtest/gtest.h>

#include "codec/ratecontrol.h"

namespace vbench::codec {
namespace {

TEST(RateControl, CqpIsConstant)
{
    RateControlConfig cfg;
    cfg.mode = RcMode::Cqp;
    cfg.qp = 30;
    RateController rc(cfg);
    EXPECT_EQ(rc.frameQp(FrameType::P, 0), 30);
    rc.frameDone(FrameType::P, 1e6);
    EXPECT_EQ(rc.frameQp(FrameType::P, 1), 30);
}

TEST(RateControl, IFramesRunFiner)
{
    RateControlConfig cfg;
    cfg.mode = RcMode::Crf;
    cfg.crf = 23;
    cfg.ip_qp_offset = 3;
    RateController rc(cfg);
    EXPECT_EQ(rc.frameQp(FrameType::I, 0), 20);
    EXPECT_EQ(rc.frameQp(FrameType::P, 1), 23);
}

TEST(RateControl, QpStaysInRange)
{
    RateControlConfig cfg;
    cfg.mode = RcMode::Cqp;
    cfg.qp = 1;
    cfg.ip_qp_offset = 5;
    RateController rc(cfg);
    EXPECT_GE(rc.frameQp(FrameType::I, 0), kMinQp);

    cfg.qp = 99;
    RateController rc2(cfg);
    EXPECT_LE(rc2.frameQp(FrameType::P, 0), kMaxQp);
}

TEST(RateControl, AbrRaisesQpWhenOvershooting)
{
    RateControlConfig cfg;
    cfg.mode = RcMode::Abr;
    cfg.bitrate_bps = 1e6;
    cfg.fps = 30;
    cfg.pixels_per_frame = 1280 * 720;
    RateController rc(cfg);
    const int qp0 = rc.frameQp(FrameType::P, 0);
    // Report 4x the per-frame budget for several frames.
    for (int i = 0; i < 5; ++i)
        rc.frameDone(FrameType::P, 4e6 / 30);
    EXPECT_GT(rc.frameQp(FrameType::P, 5), qp0);
}

TEST(RateControl, AbrLowersQpWhenUndershooting)
{
    RateControlConfig cfg;
    cfg.mode = RcMode::Abr;
    cfg.bitrate_bps = 1e6;
    cfg.fps = 30;
    cfg.pixels_per_frame = 1280 * 720;
    RateController rc(cfg);
    const int qp0 = rc.frameQp(FrameType::P, 0);
    for (int i = 0; i < 5; ++i)
        rc.frameDone(FrameType::P, 0.2e6 / 30);
    EXPECT_LT(rc.frameQp(FrameType::P, 5), qp0);
}

TEST(RateControl, InitialQpScalesWithBitsPerPixel)
{
    RateControlConfig generous;
    generous.mode = RcMode::Abr;
    generous.bitrate_bps = 20e6;
    generous.fps = 30;
    generous.pixels_per_frame = 1280 * 720;

    RateControlConfig starved = generous;
    starved.bitrate_bps = 0.5e6;

    EXPECT_LT(RateController(generous).frameQp(FrameType::P, 0),
              RateController(starved).frameQp(FrameType::P, 0));
}

TEST(RateControl, TwoPassBudgetsFavorComplexFrames)
{
    RateControlConfig cfg;
    cfg.mode = RcMode::TwoPass;
    cfg.bitrate_bps = 1e6;
    cfg.fps = 10;
    cfg.pixels_per_frame = 640 * 480;
    RateController rc(cfg);

    PassOneStats stats;
    stats.pass_qp = 30;
    stats.frame_bits = {1000, 1000, 8000, 1000, 1000};
    rc.setPassOneStats(stats);

    // Total allocation matches the target.
    double total = 0;
    for (int i = 0; i < 5; ++i)
        total += rc.targetBits(i);
    EXPECT_NEAR(total, 1e6 * 5 / 10, 1.0);

    // The complex frame gets the largest budget but less than
    // proportional (the 0.6 exponent flattens allocation).
    EXPECT_GT(rc.targetBits(2), rc.targetBits(0));
    EXPECT_LT(rc.targetBits(2) / rc.targetBits(0), 8.0);
}

TEST(RateControl, TwoPassQpTracksBudgetDirection)
{
    RateControlConfig cfg;
    cfg.mode = RcMode::TwoPass;
    cfg.bitrate_bps = 2e6;
    cfg.fps = 10;
    cfg.pixels_per_frame = 640 * 480;
    RateController rc(cfg);

    PassOneStats stats;
    stats.pass_qp = 30;
    stats.frame_bits = {50000, 50000, 50000, 50000};
    rc.setPassOneStats(stats);

    // Budget per frame is 200k bits vs 50k measured: QP must drop
    // well below the pass-1 QP (about 6 per doubling).
    const int qp = rc.frameQp(FrameType::P, 0);
    EXPECT_LT(qp, 30 - 6);
    EXPECT_GE(qp, kMinQp);
}

} // namespace
} // namespace vbench::codec
