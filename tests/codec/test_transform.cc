/**
 * @file
 * Integer transform / quantization invariants.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "codec/transform.h"
#include "video/rng.h"

namespace vbench::codec {
namespace {

/** Full pipeline: fwd -> quant -> dequant -> inv. */
void
pipeline(const int16_t in[16], int16_t out[16], int qp, bool intra)
{
    int32_t coefs[16];
    int16_t levels[16];
    int32_t deq[16];
    forwardTransform4x4(in, coefs);
    quantize4x4(coefs, levels, qp, intra);
    dequantize4x4(levels, deq, qp);
    inverseTransform4x4(deq, out);
}

double
pipelineRmse(int qp, uint64_t seed)
{
    video::Rng rng(seed);
    double err = 0;
    const int trials = 200;
    for (int t = 0; t < trials; ++t) {
        int16_t in[16], out[16];
        for (auto &v : in)
            v = static_cast<int16_t>(rng.range(-255, 255));
        pipeline(in, out, qp, false);
        for (int i = 0; i < 16; ++i) {
            const double d = in[i] - out[i];
            err += d * d;
        }
    }
    return std::sqrt(err / (trials * 16));
}

TEST(Transform, ZeroInputStaysZero)
{
    int16_t in[16] = {};
    int16_t out[16];
    pipeline(in, out, 26, false);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(out[i], 0);
}

TEST(Transform, LowQpNearLossless)
{
    // At QP 0 the reconstruction error per sample must be tiny.
    EXPECT_LT(pipelineRmse(0, 42), 1.0);
}

TEST(Transform, ErrorGrowsMonotonicallyWithQp)
{
    double prev = 0;
    for (int qp = 0; qp <= 48; qp += 8) {
        const double rmse = pipelineRmse(qp, 123);
        EXPECT_GE(rmse, prev * 0.8)
            << "rmse regressed severely at qp " << qp;
        if (qp >= 8) {
            EXPECT_GT(rmse, prev) << "no monotone growth at qp " << qp;
        }
        prev = rmse;
    }
}

TEST(Transform, DcOnlyBlockReconstructsFlat)
{
    int16_t in[16];
    for (auto &v : in)
        v = 100;
    int16_t out[16];
    pipeline(in, out, 10, false);
    for (int i = 0; i < 16; ++i)
        EXPECT_NEAR(out[i], 100, 3);
}

TEST(Transform, HighQpZerosSmallResiduals)
{
    int16_t in[16];
    for (auto &v : in)
        v = 2;  // tiny residual
    int32_t coefs[16];
    int16_t levels[16];
    forwardTransform4x4(in, coefs);
    const int nz = quantize4x4(coefs, levels, 48, false);
    EXPECT_EQ(nz, 0);
}

TEST(Transform, QuantizeReturnsNonzeroCount)
{
    video::Rng rng(5);
    int16_t in[16];
    for (auto &v : in)
        v = static_cast<int16_t>(rng.range(-200, 200));
    int32_t coefs[16];
    int16_t levels[16];
    forwardTransform4x4(in, coefs);
    const int nz = quantize4x4(coefs, levels, 20, false);
    int count = 0;
    for (auto l : levels)
        count += l != 0;
    EXPECT_EQ(nz, count);
    EXPECT_GT(nz, 0);
}

TEST(Transform, IntraRoundingNeverBelowInter)
{
    // Intra's larger rounding offset can only keep or raise levels.
    video::Rng rng(6);
    for (int t = 0; t < 100; ++t) {
        int16_t in[16];
        for (auto &v : in)
            v = static_cast<int16_t>(rng.range(-255, 255));
        int32_t coefs[16];
        int16_t intra_levels[16], inter_levels[16];
        forwardTransform4x4(in, coefs);
        quantize4x4(coefs, intra_levels, 28, true);
        quantize4x4(coefs, inter_levels, 28, false);
        for (int i = 0; i < 16; ++i)
            EXPECT_GE(std::abs(intra_levels[i]),
                      std::abs(inter_levels[i]));
    }
}

TEST(Transform, ZigzagIsAPermutation)
{
    bool seen[16] = {};
    for (int i = 0; i < 16; ++i) {
        ASSERT_LT(kZigzag4x4[i], 16);
        EXPECT_FALSE(seen[kZigzag4x4[i]]);
        seen[kZigzag4x4[i]] = true;
    }
}

TEST(Transform, ZigzagVisitsLowFrequenciesFirst)
{
    // The first four scan positions must stay in the top-left 3x3.
    for (int i = 0; i < 4; ++i) {
        const int r = kZigzag4x4[i] / 4;
        const int c = kZigzag4x4[i] % 4;
        EXPECT_LE(r + c, 2);
    }
    EXPECT_EQ(kZigzag4x4[0], 0);
    EXPECT_EQ(kZigzag4x4[15], 15);
}

TEST(Transform, LambdaGrowsWithQp)
{
    double prev = 0;
    for (int qp = 0; qp <= 51; qp += 3) {
        EXPECT_GT(rdLambda(qp), prev);
        prev = rdLambda(qp);
    }
    EXPECT_NEAR(sadLambda(30), std::sqrt(rdLambda(30)), 1e-9);
}

/** Parameterized sweep: the pipeline must round-trip at every QP. */
class TransformQpSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(TransformQpSweep, PipelineBoundedError)
{
    const int qp = GetParam();
    video::Rng rng(1000 + qp);
    for (int t = 0; t < 50; ++t) {
        int16_t in[16], out[16];
        for (auto &v : in)
            v = static_cast<int16_t>(rng.range(-255, 255));
        pipeline(in, out, qp, t % 2 == 0);
        // Error bound: quantization error in the transform domain can
        // constructively combine across basis functions, so allow a
        // small multiple of the step size plus rounding slack.
        const double step = std::pow(2.0, (qp - 4) / 6.0);
        for (int i = 0; i < 16; ++i)
            ASSERT_LE(std::abs(in[i] - out[i]), 2.5 * step + 4.0)
                << "qp " << qp;
    }
}

INSTANTIATE_TEST_SUITE_P(AllQps, TransformQpSweep,
                         ::testing::Range(0, 52, 3));

} // namespace
} // namespace vbench::codec
