/**
 * @file
 * Intra predictor unit tests.
 */

#include <gtest/gtest.h>

#include "codec/intra.h"
#include "video/rng.h"

namespace vbench::codec {
namespace {

using video::Plane;

Plane
gradientPlane(int w, int h)
{
    Plane p(w, h);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            p.at(x, y) = static_cast<uint8_t>((x * 3 + y * 5) & 0xFF);
    return p;
}

TEST(Intra, DcWithoutNeighborsIsMidGray)
{
    Plane p(32, 32, 77);
    uint8_t pred[256];
    intraPredict(IntraMode::Dc, p, 0, 0, 16, pred);
    for (int i = 0; i < 256; ++i)
        EXPECT_EQ(pred[i], 128);
}

TEST(Intra, DcAveragesNeighbors)
{
    Plane p(64, 64, 0);
    // Top row 100, left column 50.
    for (int i = 0; i < 16; ++i) {
        p.at(16 + i, 15) = 100;
        p.at(15, 16 + i) = 50;
    }
    uint8_t pred[256];
    intraPredict(IntraMode::Dc, p, 16, 16, 16, pred);
    for (int i = 0; i < 256; ++i)
        EXPECT_EQ(pred[i], 75);
}

TEST(Intra, VerticalCopiesTopRow)
{
    Plane p = gradientPlane(64, 64);
    uint8_t pred[256];
    intraPredict(IntraMode::Vertical, p, 16, 16, 16, pred);
    for (int r = 0; r < 16; ++r)
        for (int c = 0; c < 16; ++c)
            EXPECT_EQ(pred[r * 16 + c], p.at(16 + c, 15));
}

TEST(Intra, HorizontalCopiesLeftColumn)
{
    Plane p = gradientPlane(64, 64);
    uint8_t pred[256];
    intraPredict(IntraMode::Horizontal, p, 16, 16, 16, pred);
    for (int r = 0; r < 16; ++r)
        for (int c = 0; c < 16; ++c)
            EXPECT_EQ(pred[r * 16 + c], p.at(15, 16 + r));
}

TEST(Intra, PlanarReproducesLinearRamp)
{
    // On a plane with pixel = a + b*x + c*y, TM prediction is exact.
    Plane p(64, 64);
    for (int y = 0; y < 64; ++y)
        for (int x = 0; x < 64; ++x)
            p.at(x, y) = static_cast<uint8_t>(10 + 2 * x + y);
    uint8_t pred[256];
    intraPredict(IntraMode::Planar, p, 16, 16, 16, pred);
    for (int r = 0; r < 16; ++r)
        for (int c = 0; c < 16; ++c)
            EXPECT_EQ(pred[r * 16 + c], p.at(16 + c, 16 + r));
}

TEST(Intra, ChromaBlockSizeEight)
{
    Plane p = gradientPlane(32, 32);
    uint8_t pred[64];
    intraPredict(IntraMode::Vertical, p, 8, 8, 8, pred);
    for (int c = 0; c < 8; ++c)
        EXPECT_EQ(pred[c], p.at(8 + c, 7));
}

TEST(Intra, AvailabilityRules)
{
    EXPECT_TRUE(intraModeAvailable(IntraMode::Dc, 0, 0));
    EXPECT_FALSE(intraModeAvailable(IntraMode::Vertical, 10, 0));
    EXPECT_TRUE(intraModeAvailable(IntraMode::Vertical, 10, 16));
    EXPECT_FALSE(intraModeAvailable(IntraMode::Horizontal, 0, 10));
    EXPECT_TRUE(intraModeAvailable(IntraMode::Horizontal, 16, 10));
    EXPECT_FALSE(intraModeAvailable(IntraMode::Planar, 16, 0));
    EXPECT_FALSE(intraModeAvailable(IntraMode::Planar, 0, 16));
    EXPECT_TRUE(intraModeAvailable(IntraMode::Planar, 16, 16));
}

TEST(Intra, PlanarClampsToPixelRange)
{
    Plane p(32, 32, 0);
    for (int i = 0; i < 32; ++i) {
        p.at(i, 15) = 255;  // bright top
        p.at(15, i) = 255;  // bright left
    }
    p.at(15, 15) = 0;  // dark corner drives prediction above 255
    uint8_t pred[256];
    intraPredict(IntraMode::Planar, p, 16, 16, 16, pred);
    for (int i = 0; i < 256; ++i)
        EXPECT_LE(pred[i], 255);
    EXPECT_EQ(pred[0], 255);  // saturated, not wrapped
}

} // namespace
} // namespace vbench::codec
