/**
 * @file
 * Range coder round-trip and compression sanity tests.
 */

#include <gtest/gtest.h>

#include "codec/rangecoder.h"
#include "video/rng.h"

namespace vbench::codec {
namespace {

TEST(RangeCoder, FixedProbabilityRoundTrip)
{
    video::Rng rng(11);
    std::vector<int> bits;
    for (int i = 0; i < 20000; ++i)
        bits.push_back(rng.below(100) < 30 ? 1 : 0);

    ByteBuffer buf;
    RangeEncoder enc(buf);
    for (int b : bits)
        enc.encode(b, 180);  // biased toward zero
    enc.flush();

    RangeDecoder dec(buf.data(), buf.size());
    for (size_t i = 0; i < bits.size(); ++i)
        ASSERT_EQ(dec.decode(180), bits[i]) << "bit " << i;
}

TEST(RangeCoder, BypassRoundTrip)
{
    video::Rng rng(13);
    std::vector<int> bits;
    for (int i = 0; i < 10000; ++i)
        bits.push_back(static_cast<int>(rng.below(2)));

    ByteBuffer buf;
    RangeEncoder enc(buf);
    for (int b : bits)
        enc.encodeBypass(b);
    enc.flush();

    RangeDecoder dec(buf.data(), buf.size());
    for (size_t i = 0; i < bits.size(); ++i)
        ASSERT_EQ(dec.decodeBypass(), bits[i]);
}

TEST(RangeCoder, AdaptiveContextRoundTrip)
{
    video::Rng rng(17);
    std::vector<int> bits;
    for (int i = 0; i < 30000; ++i) {
        // Phase-dependent bias exercises the adaptation.
        const int bias = (i / 5000) % 2 == 0 ? 10 : 85;
        bits.push_back(rng.below(100) < static_cast<uint64_t>(bias) ? 1
                                                                    : 0);
    }

    ByteBuffer buf;
    {
        RangeEncoder enc(buf);
        BitContext ctx;
        for (int b : bits)
            enc.encode(b, ctx);
        enc.flush();
    }
    {
        RangeDecoder dec(buf.data(), buf.size());
        BitContext ctx;
        for (size_t i = 0; i < bits.size(); ++i)
            ASSERT_EQ(dec.decode(ctx), bits[i]);
    }
}

TEST(RangeCoder, SkewedInputCompresses)
{
    // 5% ones under an adapting context must land well under 1
    // bit/symbol.
    video::Rng rng(19);
    const int n = 50000;
    ByteBuffer buf;
    RangeEncoder enc(buf);
    BitContext ctx;
    for (int i = 0; i < n; ++i)
        enc.encode(rng.below(100) < 5 ? 1 : 0, ctx);
    enc.flush();
    EXPECT_LT(buf.size() * 8.0, 0.55 * n);
}

TEST(RangeCoder, EquiprobableCostsAboutOneBit)
{
    video::Rng rng(23);
    const int n = 50000;
    ByteBuffer buf;
    RangeEncoder enc(buf);
    for (int i = 0; i < n; ++i)
        enc.encodeBypass(static_cast<int>(rng.below(2)));
    enc.flush();
    EXPECT_NEAR(buf.size() * 8.0 / n, 1.0, 0.02);
}

TEST(RangeCoder, MixedContextsAndBypassRoundTrip)
{
    video::Rng rng(29);
    std::vector<std::pair<int, int>> events;  // (kind, bit)
    for (int i = 0; i < 20000; ++i) {
        const int kind = static_cast<int>(rng.below(3));
        int bit;
        if (kind == 2) {
            bit = static_cast<int>(rng.below(2));
        } else if (kind == 1) {
            bit = rng.below(100) < 80 ? 1 : 0;
        } else {
            bit = rng.below(100) < 15 ? 1 : 0;
        }
        events.emplace_back(kind, bit);
    }

    ByteBuffer buf;
    {
        RangeEncoder enc(buf);
        BitContext c0, c1;
        for (auto [kind, bit] : events) {
            if (kind == 2)
                enc.encodeBypass(bit);
            else if (kind == 1)
                enc.encode(bit, c1);
            else
                enc.encode(bit, c0);
        }
        enc.flush();
    }
    {
        RangeDecoder dec(buf.data(), buf.size());
        BitContext c0, c1;
        for (size_t i = 0; i < events.size(); ++i) {
            auto [kind, bit] = events[i];
            int got;
            if (kind == 2)
                got = dec.decodeBypass();
            else if (kind == 1)
                got = dec.decode(c1);
            else
                got = dec.decode(c0);
            ASSERT_EQ(got, bit) << "event " << i;
        }
    }
}

TEST(RangeCoder, ExtremeProbabilitiesRoundTrip)
{
    // Long runs at the probability bounds stress carry propagation.
    ByteBuffer buf;
    {
        RangeEncoder enc(buf);
        for (int i = 0; i < 5000; ++i)
            enc.encode(0, 254);
        for (int i = 0; i < 100; ++i)
            enc.encode(1, 254);
        for (int i = 0; i < 5000; ++i)
            enc.encode(1, 1);
        enc.flush();
    }
    {
        RangeDecoder dec(buf.data(), buf.size());
        for (int i = 0; i < 5000; ++i)
            ASSERT_EQ(dec.decode(254), 0);
        for (int i = 0; i < 100; ++i)
            ASSERT_EQ(dec.decode(254), 1);
        for (int i = 0; i < 5000; ++i)
            ASSERT_EQ(dec.decode(1), 1);
    }
}

TEST(BitContextTest, AdaptsTowardObservedBit)
{
    BitContext ctx;
    const uint8_t initial = ctx.prob();
    for (int i = 0; i < 50; ++i)
        ctx.update(0);
    EXPECT_GT(ctx.prob(), initial);  // prob of zero grows
    for (int i = 0; i < 200; ++i)
        ctx.update(1);
    EXPECT_LT(ctx.prob(), initial);
    EXPECT_GE(ctx.prob(), 1);
}

} // namespace
} // namespace vbench::codec
