/**
 * @file
 * Bit-exactness of intra-frame wavefront parallelism: for VBC and NGC,
 * every frame_threads width must produce the byte-identical stream the
 * serial encoder produces — same bytes, same decoded pixels, same
 * scores. This is the contract that makes VBENCH_FRAME_THREADS a pure
 * performance knob. Labeled into the `thread` suite alongside the
 * scheduler tests (`ctest -L thread`).
 */

#include <gtest/gtest.h>

#include <vector>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "metrics/psnr.h"
#include "ngc/ngc_decoder.h"
#include "ngc/ngc_encoder.h"
#include "video/synth.h"

namespace vbench {
namespace {

const std::vector<int> kWidths = {1, 2, 4, 7};

video::Video
testClip(int w = 192, int h = 128, int frames = 6,
         video::ContentClass content = video::ContentClass::Natural,
         uint64_t seed = 7)
{
    return video::synthesize(
        video::presetFor(content, w, h, 30.0, frames, seed), "clip");
}

/** Encode the clip at every width and require byte-identical output. */
void
expectVbcBitExact(const video::Video &clip, codec::EncoderConfig cfg)
{
    cfg.frame_threads = 1;
    const codec::EncodeResult serial = codec::Encoder(cfg).encode(clip);
    ASSERT_FALSE(serial.stream.empty());
    const auto serial_decoded = codec::decode(serial.stream);
    ASSERT_TRUE(serial_decoded.has_value());
    const double serial_psnr =
        metrics::videoPsnr(clip, *serial_decoded);

    for (int threads : kWidths) {
        cfg.frame_threads = threads;
        const codec::EncodeResult result =
            codec::Encoder(cfg).encode(clip);
        ASSERT_EQ(result.stream, serial.stream)
            << "frame_threads=" << threads;
        const auto decoded = codec::decode(result.stream);
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(metrics::videoPsnr(clip, *decoded), serial_psnr)
            << "frame_threads=" << threads;
    }
}

void
expectNgcBitExact(const video::Video &clip, ngc::NgcConfig cfg)
{
    cfg.frame_threads = 1;
    const codec::EncodeResult serial =
        ngc::NgcEncoder(cfg).encode(clip);
    ASSERT_FALSE(serial.stream.empty());
    const auto serial_decoded = ngc::ngcDecode(serial.stream);
    ASSERT_TRUE(serial_decoded.has_value());
    const double serial_psnr =
        metrics::videoPsnr(clip, *serial_decoded);

    for (int threads : kWidths) {
        cfg.frame_threads = threads;
        const codec::EncodeResult result =
            ngc::NgcEncoder(cfg).encode(clip);
        ASSERT_EQ(result.stream, serial.stream)
            << "frame_threads=" << threads;
        const auto decoded = ngc::ngcDecode(result.stream);
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(metrics::videoPsnr(clip, *decoded), serial_psnr)
            << "frame_threads=" << threads;
    }
}

codec::EncoderConfig
vbcCqp(int qp, int effort)
{
    codec::EncoderConfig cfg;
    cfg.rc.mode = codec::RcMode::Cqp;
    cfg.rc.qp = qp;
    cfg.effort = effort;
    cfg.gop = 4;
    return cfg;
}

TEST(FrameThreadsVbc, LowEffortVlc)
{
    expectVbcBitExact(testClip(), vbcCqp(30, 2));
}

TEST(FrameThreadsVbc, HighEffortArithAdaptiveQuant)
{
    // Effort 8 turns on arithmetic coding, adaptive quant, scene cuts
    // and multiple references — the order-dependent coder state the
    // serial entropy pass exists to protect.
    expectVbcBitExact(testClip(), vbcCqp(26, 8));
}

TEST(FrameThreadsVbc, MidEffortNoisyContent)
{
    expectVbcBitExact(
        testClip(176, 144, 5, video::ContentClass::Noisy, 21),
        vbcCqp(34, 5));
}

TEST(FrameThreadsVbc, UnalignedDimensions)
{
    // 150x98 pads to 160x112: partial edge macroblocks plus an MB-row
    // count that divides unevenly across every tested width.
    expectVbcBitExact(testClip(150, 98, 4), vbcCqp(28, 5));
}

TEST(FrameThreadsVbc, AbrRateControl)
{
    // ABR threads per-frame QP choices through the shared rate
    // controller state; wavefront analysis must not perturb it.
    codec::EncoderConfig cfg;
    cfg.rc.mode = codec::RcMode::Abr;
    cfg.rc.bitrate_bps = 400e3;
    cfg.effort = 5;
    cfg.gop = 4;
    expectVbcBitExact(testClip(), cfg);
}

TEST(FrameThreadsVbc, WidthsBeyondRowCountClampSafely)
{
    // 64 rows requested, 4 macroblock rows available.
    codec::EncoderConfig cfg = vbcCqp(30, 3);
    cfg.frame_threads = 1;
    const codec::EncodeResult serial =
        codec::Encoder(cfg).encode(testClip(96, 64, 3));
    cfg.frame_threads = 64;
    const codec::EncodeResult wide =
        codec::Encoder(cfg).encode(testClip(96, 64, 3));
    EXPECT_EQ(wide.stream, serial.stream);
}

ngc::NgcConfig
ngcCqp(int qp, ngc::NgcProfile profile)
{
    ngc::NgcConfig cfg;
    cfg.rc.mode = codec::RcMode::Cqp;
    cfg.rc.qp = qp;
    cfg.profile = profile;
    cfg.gop = 4;
    return cfg;
}

TEST(FrameThreadsNgc, HevcLikeProfile)
{
    expectNgcBitExact(testClip(),
                      ngcCqp(28, ngc::NgcProfile::HevcLike));
}

TEST(FrameThreadsNgc, Vp9LikeProfile)
{
    expectNgcBitExact(testClip(),
                      ngcCqp(28, ngc::NgcProfile::Vp9Like));
}

TEST(FrameThreadsNgc, UnalignedDimensionsNoisyContent)
{
    expectNgcBitExact(
        testClip(150, 100, 4, video::ContentClass::Noisy, 33),
        ngcCqp(32, ngc::NgcProfile::HevcLike));
}

} // namespace
} // namespace vbench
