/**
 * @file
 * Syntax layer round-trips: both backends must decode exactly what was
 * written, and the residual block syntax must be lossless.
 */

#include <gtest/gtest.h>

#include <memory>

#include "codec/residual.h"
#include "codec/syntax.h"
#include "video/rng.h"

namespace vbench::codec {
namespace {

struct Event {
    enum Kind { Bit, Bypass, Ue, Se } kind;
    int context;
    int n_contexts;
    int64_t value;
};

std::vector<Event>
randomEvents(uint64_t seed, int count)
{
    video::Rng rng(seed);
    std::vector<Event> events;
    for (int i = 0; i < count; ++i) {
        Event e;
        e.kind = static_cast<Event::Kind>(rng.below(4));
        e.context = static_cast<int>(rng.below(ctx::kNumContexts - 4));
        e.n_contexts = 1 + static_cast<int>(rng.below(4));
        switch (e.kind) {
          case Event::Bit:
          case Event::Bypass:
            e.value = static_cast<int64_t>(rng.below(2));
            break;
          case Event::Ue:
            e.value = static_cast<int64_t>(
                rng.below(1ull << rng.below(16)));
            break;
          case Event::Se:
            e.value = rng.range(-5000, 5000);
            break;
        }
        events.push_back(e);
    }
    return events;
}

void
roundTrip(bool arith, uint64_t seed)
{
    const auto events = randomEvents(seed, 5000);
    ByteBuffer buf;
    std::unique_ptr<SyntaxWriter> writer;
    if (arith)
        writer = std::make_unique<ArithSyntaxWriter>(buf);
    else
        writer = std::make_unique<VlcSyntaxWriter>(buf);
    for (const Event &e : events) {
        switch (e.kind) {
          case Event::Bit:
            writer->bit(static_cast<int>(e.value), e.context);
            break;
          case Event::Bypass:
            writer->bypass(static_cast<int>(e.value));
            break;
          case Event::Ue:
            writer->ue(static_cast<uint32_t>(e.value), e.context,
                       e.n_contexts);
            break;
          case Event::Se:
            writer->se(static_cast<int32_t>(e.value), e.context,
                       e.n_contexts);
            break;
        }
    }
    writer->finish();

    std::unique_ptr<SyntaxReader> reader;
    if (arith)
        reader = std::make_unique<ArithSyntaxReader>(buf.data(),
                                                     buf.size());
    else
        reader = std::make_unique<VlcSyntaxReader>(buf.data(), buf.size());
    for (size_t i = 0; i < events.size(); ++i) {
        const Event &e = events[i];
        int64_t got = 0;
        switch (e.kind) {
          case Event::Bit:
            got = reader->bit(e.context);
            break;
          case Event::Bypass:
            got = reader->bypass();
            break;
          case Event::Ue:
            got = reader->ue(e.context, e.n_contexts);
            break;
          case Event::Se:
            got = reader->se(e.context, e.n_contexts);
            break;
        }
        ASSERT_EQ(got, e.value) << "event " << i << " kind " << e.kind;
    }
}

TEST(Syntax, VlcRoundTrip)
{
    roundTrip(false, 101);
    roundTrip(false, 102);
}

TEST(Syntax, ArithRoundTrip)
{
    roundTrip(true, 201);
    roundTrip(true, 202);
}

TEST(Syntax, CountingWriterMatchesVlcBits)
{
    const auto events = randomEvents(303, 2000);
    ByteBuffer buf;
    VlcSyntaxWriter vlc(buf);
    CountingSyntaxWriter counter;
    for (const Event &e : events) {
        switch (e.kind) {
          case Event::Bit:
            vlc.bit(static_cast<int>(e.value), e.context);
            counter.bit(static_cast<int>(e.value), e.context);
            break;
          case Event::Bypass:
            vlc.bypass(static_cast<int>(e.value));
            counter.bypass(static_cast<int>(e.value));
            break;
          case Event::Ue:
            vlc.ue(static_cast<uint32_t>(e.value), e.context,
                   e.n_contexts);
            counter.ue(static_cast<uint32_t>(e.value), e.context,
                       e.n_contexts);
            break;
          case Event::Se:
            vlc.se(static_cast<int32_t>(e.value), e.context,
                   e.n_contexts);
            counter.se(static_cast<int32_t>(e.value), e.context,
                       e.n_contexts);
            break;
        }
    }
    EXPECT_DOUBLE_EQ(counter.bitsWritten(), vlc.bitsWritten());
}

/** Residual block syntax is exactly lossless on random levels. */
class ResidualSweep : public ::testing::TestWithParam<bool>
{
};

TEST_P(ResidualSweep, BlocksRoundTrip)
{
    const bool arith = GetParam();
    video::Rng rng(404);
    std::vector<std::array<int16_t, 16>> blocks;
    for (int t = 0; t < 500; ++t) {
        std::array<int16_t, 16> block{};
        const int n = static_cast<int>(rng.below(17));
        for (int i = 0; i < n; ++i) {
            block[rng.below(16)] =
                static_cast<int16_t>(rng.range(-500, 500));
        }
        blocks.push_back(block);
    }

    ByteBuffer buf;
    std::unique_ptr<SyntaxWriter> writer;
    if (arith)
        writer = std::make_unique<ArithSyntaxWriter>(buf);
    else
        writer = std::make_unique<VlcSyntaxWriter>(buf);
    for (size_t i = 0; i < blocks.size(); ++i)
        writeResidualBlock(*writer, blocks[i].data(), i % 2 == 0);
    writer->finish();

    std::unique_ptr<SyntaxReader> reader;
    if (arith)
        reader = std::make_unique<ArithSyntaxReader>(buf.data(),
                                                     buf.size());
    else
        reader = std::make_unique<VlcSyntaxReader>(buf.data(), buf.size());
    for (size_t i = 0; i < blocks.size(); ++i) {
        int16_t decoded[16];
        ASSERT_GE(readResidualBlock(*reader, decoded, i % 2 == 0), 0);
        for (int j = 0; j < 16; ++j)
            ASSERT_EQ(decoded[j], blocks[i][j])
                << "block " << i << " pos " << j;
    }
}

INSTANTIATE_TEST_SUITE_P(Backends, ResidualSweep,
                         ::testing::Values(false, true));

TEST(Residual, EmptyBlockCostsOneSymbol)
{
    int16_t levels[16] = {};
    CountingSyntaxWriter counter;
    writeResidualBlock(counter, levels, true);
    EXPECT_EQ(counter.bitsWritten(), 1.0);  // ue(0) is one bit
}

TEST(Residual, RejectsCorruptCount)
{
    // A ue count > 16 must be rejected, not trusted.
    ByteBuffer buf;
    VlcSyntaxWriter writer(buf);
    writer.ue(25, ctx::kCoefCountY, 4);
    writer.finish();
    VlcSyntaxReader reader(buf.data(), buf.size());
    int16_t levels[16];
    EXPECT_EQ(readResidualBlock(reader, levels, true), -1);
}

} // namespace
} // namespace vbench::codec
