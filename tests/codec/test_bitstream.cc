/**
 * @file
 * Container format tests: stream header round-trip, frame byte
 * packing, malformed-header rejection.
 */

#include <gtest/gtest.h>

#include "codec/bitstream.h"
#include "ngc/ngc_bitstream.h"

namespace vbench::codec {
namespace {

TEST(Bitstream, HeaderRoundTrip)
{
    StreamHeader header;
    header.width = 1280;
    header.height = 720;
    header.fps_num = 30000;
    header.fps_den = 1001;
    header.frame_count = 150;
    header.entropy = EntropyMode::Arith;
    header.deblock = false;
    header.adaptive_quant = true;
    header.num_refs = 3;

    ByteBuffer buf;
    writeStreamHeader(buf, header);
    size_t consumed = 0;
    const auto parsed = parseStreamHeader(buf.data(), buf.size(),
                                          consumed);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(consumed, buf.size());
    EXPECT_EQ(parsed->width, 1280);
    EXPECT_EQ(parsed->height, 720);
    EXPECT_EQ(parsed->fps_num, 30000u);
    EXPECT_EQ(parsed->fps_den, 1001u);
    EXPECT_NEAR(parsed->fps(), 29.97, 0.001);
    EXPECT_EQ(parsed->frame_count, 150u);
    EXPECT_EQ(parsed->entropy, EntropyMode::Arith);
    EXPECT_FALSE(parsed->deblock);
    EXPECT_TRUE(parsed->adaptive_quant);
    EXPECT_EQ(parsed->num_refs, 3u);
}

TEST(Bitstream, RejectsWrongMagic)
{
    ByteBuffer buf;
    StreamHeader header;
    header.width = 64;
    header.height = 64;
    writeStreamHeader(buf, header);
    buf[0] = 'X';
    size_t consumed = 0;
    EXPECT_FALSE(
        parseStreamHeader(buf.data(), buf.size(), consumed).has_value());
}

TEST(Bitstream, RejectsShortBuffers)
{
    ByteBuffer buf = {'V', 'B', 'C', '1'};
    size_t consumed = 0;
    EXPECT_FALSE(
        parseStreamHeader(buf.data(), buf.size(), consumed).has_value());
}

TEST(Bitstream, RejectsAbsurdRefCount)
{
    StreamHeader header;
    header.width = 64;
    header.height = 64;
    header.num_refs = 100;
    ByteBuffer buf;
    writeStreamHeader(buf, header);
    size_t consumed = 0;
    EXPECT_FALSE(
        parseStreamHeader(buf.data(), buf.size(), consumed).has_value());
}

TEST(Bitstream, FrameBytePacking)
{
    for (int qp : {0, 1, 26, 51}) {
        for (FrameType type : {FrameType::I, FrameType::P}) {
            const uint8_t b = packFrameByte(type, qp);
            EXPECT_EQ(frameTypeFromByte(b), type);
            EXPECT_EQ(frameQpFromByte(b), qp);
        }
    }
}

TEST(Bitstream, U32RoundTrip)
{
    ByteBuffer buf;
    appendU32(buf, 0xDEADBEEF);
    ASSERT_EQ(buf.size(), 4u);
    EXPECT_EQ(readU32(buf.data()), 0xDEADBEEFu);
    // Little-endian layout.
    EXPECT_EQ(buf[0], 0xEF);
    EXPECT_EQ(buf[3], 0xDE);
}

TEST(NgcBitstream, HeaderRoundTrip)
{
    ngc::NgcStreamHeader header;
    header.width = 1920;
    header.height = 1080;
    header.fps_num = 60;
    header.fps_den = 1;
    header.frame_count = 10;
    header.profile = ngc::NgcProfile::Vp9Like;
    header.num_refs = 2;

    ByteBuffer buf;
    ngc::writeNgcHeader(buf, header);
    size_t consumed = 0;
    const auto parsed =
        ngc::parseNgcHeader(buf.data(), buf.size(), consumed);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->width, 1920);
    EXPECT_EQ(parsed->profile, ngc::NgcProfile::Vp9Like);
    EXPECT_EQ(parsed->num_refs, 2u);
}

TEST(NgcBitstream, VbcMagicRejected)
{
    StreamHeader vbc_header;
    vbc_header.width = 64;
    vbc_header.height = 64;
    ByteBuffer buf;
    writeStreamHeader(buf, vbc_header);
    size_t consumed = 0;
    EXPECT_FALSE(
        ngc::parseNgcHeader(buf.data(), buf.size(), consumed)
            .has_value());
}

} // namespace
} // namespace vbench::codec
