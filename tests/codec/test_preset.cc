/**
 * @file
 * Effort preset monotonicity: higher effort must never remove search
 * capability (the ladder is what the benchmark's speed/quality
 * trade-off rests on).
 */

#include <gtest/gtest.h>

#include "codec/preset.h"

namespace vbench::codec {
namespace {

TEST(Preset, ClampsOutOfRangeEfforts)
{
    EXPECT_EQ(presetForEffort(-5).range, presetForEffort(0).range);
    EXPECT_EQ(presetForEffort(99).refs, presetForEffort(9).refs);
}

TEST(Preset, ReferenceCountNeverDecreases)
{
    int prev = 0;
    for (int e = 0; e < kNumEfforts; ++e) {
        EXPECT_GE(presetForEffort(e).refs, prev) << "effort " << e;
        prev = presetForEffort(e).refs;
    }
}

TEST(Preset, RdoLevelNeverDecreases)
{
    int prev = 0;
    for (int e = 0; e < kNumEfforts; ++e) {
        EXPECT_GE(presetForEffort(e).rdo, prev) << "effort " << e;
        prev = presetForEffort(e).rdo;
    }
}

TEST(Preset, SubpelTurnsOnAndStaysOn)
{
    bool seen = false;
    for (int e = 0; e < kNumEfforts; ++e) {
        const bool subpel = presetForEffort(e).subpel;
        if (seen) {
            EXPECT_TRUE(subpel) << "effort " << e;
        }
        seen = seen || subpel;
    }
    EXPECT_TRUE(seen);
}

TEST(Preset, IntraModesNeverDecrease)
{
    int prev = 0;
    for (int e = 0; e < kNumEfforts; ++e) {
        EXPECT_GE(presetForEffort(e).intra_modes, prev);
        prev = presetForEffort(e).intra_modes;
    }
}

TEST(Preset, LowEffortUsesVlcHighEffortUsesArith)
{
    EXPECT_EQ(presetForEffort(0).entropy, EntropyMode::Vlc);
    EXPECT_EQ(presetForEffort(9).entropy, EntropyMode::Arith);
}

TEST(Preset, TopEffortEnablesEverything)
{
    const ToolPreset p = presetForEffort(9);
    EXPECT_EQ(p.search, SearchKind::Full);
    EXPECT_TRUE(p.subpel);
    EXPECT_TRUE(p.inter8);
    EXPECT_TRUE(p.adaptive_quant);
    EXPECT_TRUE(p.deblock);
    EXPECT_GE(p.refs, 4);
    EXPECT_EQ(p.rdo, 2);
}

} // namespace
} // namespace vbench::codec
