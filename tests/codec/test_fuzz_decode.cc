/**
 * @file
 * Decoder robustness: random and mutated streams must be rejected or
 * decoded, never crash, hang, or read out of bounds. Both codecs.
 */

#include <gtest/gtest.h>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "ngc/ngc_decoder.h"
#include "ngc/ngc_encoder.h"
#include "video/rng.h"
#include "video/synth.h"

namespace vbench::codec {
namespace {

video::Video
clip()
{
    return video::synthesize(
        video::presetFor(video::ContentClass::Gaming, 96, 80, 30.0, 4,
                         3131),
        "fuzz");
}

TEST(FuzzDecode, RandomBytesNeverCrashVbc)
{
    video::Rng rng(1);
    for (int trial = 0; trial < 200; ++trial) {
        ByteBuffer junk(rng.below(4096));
        for (auto &b : junk)
            b = static_cast<uint8_t>(rng.below(256));
        decode(junk);  // must terminate without UB
    }
    SUCCEED();
}

TEST(FuzzDecode, RandomBytesWithValidMagicNeverCrashVbc)
{
    video::Rng rng(2);
    for (int trial = 0; trial < 200; ++trial) {
        ByteBuffer junk(64 + rng.below(2048));
        for (auto &b : junk)
            b = static_cast<uint8_t>(rng.below(256));
        junk[0] = 'V';
        junk[1] = 'B';
        junk[2] = 'C';
        junk[3] = '1';
        decode(junk);
    }
    SUCCEED();
}

TEST(FuzzDecode, BitFlippedStreamsNeverCrashVbc)
{
    const video::Video v = clip();
    EncoderConfig cfg;
    cfg.rc.mode = RcMode::Cqp;
    cfg.rc.qp = 28;
    cfg.effort = 4;
    Encoder encoder(cfg);
    const ByteBuffer good = encoder.encode(v).stream;

    video::Rng rng(3);
    int decodable = 0;
    for (int trial = 0; trial < 300; ++trial) {
        ByteBuffer mutated = good;
        const int flips = 1 + static_cast<int>(rng.below(8));
        for (int i = 0; i < flips; ++i) {
            const size_t pos = rng.below(mutated.size());
            mutated[pos] ^= static_cast<uint8_t>(1u << rng.below(8));
        }
        if (decode(mutated).has_value())
            ++decodable;
    }
    // Many mutations survive (coefficients just change); the point is
    // that none crash. Some must be rejected (length fields break).
    EXPECT_GT(decodable, 0);
    EXPECT_LT(decodable, 300);
}

TEST(FuzzDecode, TruncationSweepNeverCrashesVbc)
{
    const video::Video v = clip();
    EncoderConfig cfg;
    cfg.rc.mode = RcMode::Cqp;
    cfg.rc.qp = 30;
    Encoder encoder(cfg);
    const ByteBuffer good = encoder.encode(v).stream;
    for (size_t keep = 0; keep < good.size(); keep += 7) {
        const auto decoded = decode(good.data(), keep);
        // A truncated container can never yield the full clip.
        if (decoded) {
            EXPECT_LT(decoded->frameCount(), v.frameCount());
        }
    }
}

TEST(FuzzDecode, BitFlippedStreamsNeverCrashNgc)
{
    const video::Video v = clip();
    ngc::NgcConfig cfg;
    cfg.rc.mode = RcMode::Cqp;
    cfg.rc.qp = 28;
    cfg.speed = 2;
    ngc::NgcEncoder encoder(cfg);
    const ByteBuffer good = encoder.encode(v).stream;

    video::Rng rng(4);
    for (int trial = 0; trial < 300; ++trial) {
        ByteBuffer mutated = good;
        const int flips = 1 + static_cast<int>(rng.below(8));
        for (int i = 0; i < flips; ++i) {
            const size_t pos = rng.below(mutated.size());
            mutated[pos] ^= static_cast<uint8_t>(1u << rng.below(8));
        }
        ngc::ngcDecode(mutated);
    }
    SUCCEED();
}

TEST(FuzzDecode, RandomBytesNeverCrashNgc)
{
    video::Rng rng(5);
    for (int trial = 0; trial < 200; ++trial) {
        ByteBuffer junk(32 + rng.below(2048));
        for (auto &b : junk)
            b = static_cast<uint8_t>(rng.below(256));
        junk[0] = 'N';
        junk[1] = 'G';
        junk[2] = 'C';
        junk[3] = '1';
        ngc::ngcDecode(junk);
    }
    SUCCEED();
}

} // namespace
} // namespace vbench::codec
