/**
 * @file
 * Motion-search bound tests: blocks flush against every frame edge,
 * with search ranges larger than the reference pad and predictors
 * pointing far outside the frame. The SearchState MV clamp must keep
 * every candidate — including the +1 half-pel taps — inside the
 * padded reference. The sanitize build of this test turns any escape
 * into an ASan report instead of a silent wild read.
 */

#include <gtest/gtest.h>

#include "codec/interp.h"
#include "codec/me.h"
#include "codec/refplane.h"
#include "video/plane.h"
#include "video/rng.h"

namespace vbench::codec {
namespace {

video::Plane
randomPlane(int w, int h, uint64_t seed)
{
    video::Rng rng(seed);
    video::Plane p(w, h);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            p.at(x, y) = static_cast<uint8_t>(rng.below(256));
    return p;
}

TEST(MeBounds, BlocksFlushAgainstEveryFrameEdge)
{
    constexpr int kW = 64;
    constexpr int kH = 48;
    const video::Plane cur = randomPlane(kW, kH, 21);
    const video::Plane prev = randomPlane(kW, kH, 22);
    const RefPlane ref(prev);

    // The search clamp keeps full-pel candidates within kRefPad - 2 of
    // the frame, so half-pel refinement (+1 sample) stays in the pad.
    const int margin = kRefPad - 2;

    const MotionVector pulls[] = {
        {-512, -512}, {512, -512}, {-512, 512}, {512, 512}, {0, 0}};

    for (const int bs : {16, 8}) {
        // Corners, mid-edges, and center: every way a block can touch
        // the frame boundary.
        const int xs[] = {0, (kW - bs) / 2, kW - bs};
        const int ys[] = {0, (kH - bs) / 2, kH - bs};
        for (const int by : ys) {
            for (const int bx : xs) {
                for (const auto kind : {SearchKind::Diamond,
                                        SearchKind::Hex,
                                        SearchKind::Full}) {
                    for (const MotionVector pull : pulls) {
                        MeContext ctx;
                        ctx.src = &cur;
                        ctx.ref = &ref;
                        ctx.block_x = bx;
                        ctx.block_y = by;
                        ctx.block_w = bs;
                        ctx.block_h = bs;
                        ctx.pred = pull;
                        ctx.lambda = 2.0;
                        ctx.kind = kind;
                        // Larger than kRefPad: unclamped candidates
                        // would walk off the padded buffer.
                        ctx.range = kRefPad + 16;
                        ctx.subpel = true;
                        ctx.subpel_iters = 2;
                        ctx.satd_subpel = true;

                        const MeResult r = motionSearch(ctx);
                        EXPECT_GE(r.mv.x, 2 * (-(bx + margin)));
                        EXPECT_LE(r.mv.x,
                                  2 * (kW + margin - bs - bx));
                        EXPECT_GE(r.mv.y, 2 * (-(by + margin)));
                        EXPECT_LE(r.mv.y,
                                  2 * (kH + margin - bs - by));
                        EXPECT_GT(r.candidates, 0u);

                        // Compensating at the winning MV must stay in
                        // bounds too (ASan-checked in the sanitize
                        // build).
                        uint8_t out[16 * 16];
                        motionCompensate(ref, bx, by, r.mv, bs, bs,
                                         out);
                    }
                }
            }
        }
    }
}

} // namespace
} // namespace vbench::codec
