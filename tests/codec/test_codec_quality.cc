/**
 * @file
 * Codec quality properties: the behaviours the benchmark's scoring
 * scenarios depend on (effort ladder, deblocking benefit, entropy vs
 * bitrate relationships).
 */

#include <gtest/gtest.h>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "metrics/psnr.h"
#include "metrics/rates.h"
#include "video/synth.h"

namespace vbench::codec {
namespace {

video::Video
clip(video::ContentClass content, double scale = 1.0, uint64_t seed = 7,
     int w = 192, int h = 160, int frames = 10)
{
    const video::SynthParams p =
        video::presetFor(content, w, h, 30.0, frames, seed, scale);
    return video::synthesize(p, "q");
}

struct Outcome {
    double psnr;
    double bitrate;  // bits/pixel/s
    size_t bytes;
};

Outcome
run(const video::Video &v, const EncoderConfig &cfg)
{
    Encoder encoder(cfg);
    const EncodeResult result = encoder.encode(v);
    const auto decoded = decode(result.stream);
    EXPECT_TRUE(decoded.has_value());
    Outcome o;
    o.psnr = metrics::videoPsnr(v, *decoded);
    o.bytes = result.totalBytes();
    o.bitrate = metrics::bitsPerPixelPerSecond(
        result.totalBytes(), v.width(), v.height(), v.frameCount(),
        v.fps());
    return o;
}

EncoderConfig
cqp(int qp, int effort)
{
    EncoderConfig cfg;
    cfg.rc.mode = RcMode::Cqp;
    cfg.rc.qp = qp;
    cfg.effort = effort;
    cfg.gop = 0;
    return cfg;
}

TEST(CodecQuality, HigherEffortCompressesBetterAtIsoQp)
{
    // At the same QP (≈ same quality) higher effort must shrink the
    // stream: this is the paper's §2.2 claim realized by our encoder.
    const video::Video v = clip(video::ContentClass::Natural);
    const Outcome low = run(v, cqp(28, 0));
    const Outcome high = run(v, cqp(28, 7));
    EXPECT_LT(high.bytes, low.bytes);
    EXPECT_GT(high.psnr, low.psnr - 0.8);  // quality roughly held
}

TEST(CodecQuality, NoisyContentCostsMoreBitsThanSlideshow)
{
    // The entropy definition itself: constant quality, bits reflect
    // content complexity.
    const video::Video quiet = clip(video::ContentClass::Slideshow);
    const video::Video noisy = clip(video::ContentClass::Noisy);
    const Outcome a = run(quiet, cqp(18, 3));
    const Outcome b = run(noisy, cqp(18, 3));
    EXPECT_GT(b.bitrate, 4.0 * a.bitrate);
}

TEST(CodecQuality, DeblockingHelpsAtLowBitrate)
{
    const video::Video v = clip(video::ContentClass::Natural);
    EncoderConfig off = cqp(40, 4);
    off.deblock_override = 0;
    EncoderConfig on = cqp(40, 4);
    on.deblock_override = 1;
    const Outcome no_filter = run(v, off);
    const Outcome filtered = run(v, on);
    EXPECT_GT(filtered.psnr, no_filter.psnr - 0.05);
}

TEST(CodecQuality, InterFramesBeatIntraOnStaticContent)
{
    const video::Video v = clip(video::ContentClass::Slideshow);
    EncoderConfig all_intra = cqp(26, 3);
    all_intra.gop = 1;
    EncoderConfig normal = cqp(26, 3);
    normal.gop = 0;
    const Outcome intra = run(v, all_intra);
    const Outcome inter = run(v, normal);
    EXPECT_LT(inter.bytes, intra.bytes / 2);
}

TEST(CodecQuality, MotionSearchPaysOffOnPanningContent)
{
    // Panning content: real motion compensation (effort 3, hex +
    // subpel) must beat a zero-range search dramatically.
    const video::Video v = clip(video::ContentClass::Sports);
    const Outcome weak = run(v, cqp(30, 0));
    const Outcome strong = run(v, cqp(30, 5));
    EXPECT_LT(strong.bytes, weak.bytes);
}

TEST(CodecQuality, EntropyScaleDialRaisesMeasuredBitrate)
{
    // The synthesizer's entropy dial must move measured entropy
    // monotonically — the suite calibration depends on it.
    double prev = 0;
    for (double scale : {0.3, 1.0, 2.5}) {
        const video::Video v =
            clip(video::ContentClass::Natural, scale, 21);
        const Outcome o = run(v, cqp(18, 3));
        EXPECT_GT(o.bitrate, prev) << "scale " << scale;
        prev = o.bitrate;
    }
}

TEST(CodecQuality, CrfTracksQualityAcrossContent)
{
    // CRF 18 must land in a similar PSNR band for easy and hard
    // content (bits float instead).
    const Outcome easy =
        run(clip(video::ContentClass::Slideshow), cqp(18, 4));
    const Outcome hard = run(clip(video::ContentClass::Noisy), cqp(18, 4));
    EXPECT_GT(easy.psnr, 36.0);
    EXPECT_GT(hard.psnr, 33.0);
    EXPECT_GT(hard.bitrate, easy.bitrate);
}

} // namespace
} // namespace vbench::codec
