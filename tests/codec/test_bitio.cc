/**
 * @file
 * Bit writer/reader and Exp-Golomb round-trip tests.
 */

#include <gtest/gtest.h>

#include "codec/bitio.h"
#include "video/rng.h"

namespace vbench::codec {
namespace {

TEST(BitIo, SingleBitsRoundTrip)
{
    ByteBuffer buf;
    BitWriter w(buf);
    const int pattern[] = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1};
    for (int b : pattern)
        w.putBit(b);
    w.align();

    BitReader r(buf.data(), buf.size());
    for (int b : pattern)
        EXPECT_EQ(r.getBit(), b);
}

TEST(BitIo, FixedWidthFields)
{
    ByteBuffer buf;
    BitWriter w(buf);
    w.putBits(0xAB, 8);
    w.putBits(0x3, 2);
    w.putBits(0x12345, 20);
    w.align();

    BitReader r(buf.data(), buf.size());
    EXPECT_EQ(r.getBits(8), 0xABu);
    EXPECT_EQ(r.getBits(2), 0x3u);
    EXPECT_EQ(r.getBits(20), 0x12345u);
}

TEST(BitIo, UeSmallValues)
{
    ByteBuffer buf;
    BitWriter w(buf);
    for (uint32_t v = 0; v < 100; ++v)
        w.putUe(v);
    w.align();

    BitReader r(buf.data(), buf.size());
    for (uint32_t v = 0; v < 100; ++v)
        EXPECT_EQ(r.getUe(), v) << "value " << v;
}

TEST(BitIo, UeKnownEncodings)
{
    // ue(0) = "1" (1 bit), ue(1) = "010", ue(2) = "011".
    ByteBuffer buf;
    BitWriter w(buf);
    w.putUe(0);
    EXPECT_EQ(w.bitCount(), 1u);
    w.putUe(1);
    EXPECT_EQ(w.bitCount(), 4u);
    w.putUe(2);
    EXPECT_EQ(w.bitCount(), 7u);
}

TEST(BitIo, SeRoundTrip)
{
    ByteBuffer buf;
    BitWriter w(buf);
    for (int32_t v = -50; v <= 50; ++v)
        w.putSe(v);
    w.align();

    BitReader r(buf.data(), buf.size());
    for (int32_t v = -50; v <= 50; ++v)
        EXPECT_EQ(r.getSe(), v) << "value " << v;
}

TEST(BitIo, RandomizedUeRoundTrip)
{
    video::Rng rng(7);
    std::vector<uint32_t> values;
    ByteBuffer buf;
    BitWriter w(buf);
    for (int i = 0; i < 10000; ++i) {
        const uint32_t v = static_cast<uint32_t>(
            rng.below(1u << (1 + rng.below(24))));
        values.push_back(v);
        w.putUe(v);
    }
    w.align();

    BitReader r(buf.data(), buf.size());
    for (uint32_t v : values)
        ASSERT_EQ(r.getUe(), v);
    EXPECT_FALSE(r.overflowed());
}

TEST(BitIo, ReaderPastEndReturnsZeroAndFlags)
{
    ByteBuffer buf = {0xFF};
    BitReader r(buf.data(), buf.size());
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(r.getBit(), 1);
    EXPECT_FALSE(r.overflowed());
    EXPECT_EQ(r.getBit(), 0);
    EXPECT_TRUE(r.overflowed());
}

TEST(BitIo, AlignPadsWithZeros)
{
    ByteBuffer buf;
    BitWriter w(buf);
    w.putBit(1);
    w.align();
    ASSERT_EQ(buf.size(), 1u);
    EXPECT_EQ(buf[0], 0x80);
}

} // namespace
} // namespace vbench::codec
