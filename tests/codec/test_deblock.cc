/**
 * @file
 * In-loop deblocking filter unit tests.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "codec/deblock.h"
#include "video/rng.h"

namespace vbench::codec {
namespace {

using video::Frame;
using video::Plane;

/** Frame with a hard vertical step at x = 8 in every plane. */
Frame
stepFrame(int w, int h, int left, int right)
{
    Frame f(w, h);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            f.y().at(x, y) = static_cast<uint8_t>(x < 8 ? left : right);
    return f;
}

MbGrid
uniformGrid(int cols, int rows, MbMode mode, bool coded, int qp)
{
    MbGrid grid(cols, rows);
    for (int mby = 0; mby < rows; ++mby) {
        for (int mbx = 0; mbx < cols; ++mbx) {
            MbInfo &info = grid.at(mbx, mby);
            info.mode = mode;
            info.coded = coded;
            info.qp = static_cast<uint8_t>(qp);
        }
    }
    return grid;
}

double
stepHeight(const Plane &p, int x, int y)
{
    return std::abs(p.at(x, y) - p.at(x - 1, y));
}

TEST(Deblock, SmoothsModerateBlockEdges)
{
    // A step of 24 at QP 36 is inside the alpha threshold: filtered.
    Frame f = stepFrame(32, 32, 100, 124);
    const double before = stepHeight(f.y(), 8, 10);
    MbGrid grid = uniformGrid(2, 2, MbMode::Intra, true, 36);
    deblockFrame(f, grid);
    EXPECT_LT(stepHeight(f.y(), 8, 10), before);
}

TEST(Deblock, PreservesRealEdges)
{
    // A step of 200 exceeds alpha at QP 30: a real image edge, not a
    // blocking artifact — must pass through untouched.
    Frame f = stepFrame(32, 32, 20, 220);
    MbGrid grid = uniformGrid(2, 2, MbMode::Intra, true, 30);
    deblockFrame(f, grid);
    EXPECT_EQ(stepHeight(f.y(), 8, 10), 200);
}

TEST(Deblock, SkipsUncodedStationaryBlocks)
{
    // Neither side coded, same MV, inter mode: boundary strength 0.
    Frame f = stepFrame(32, 32, 100, 124);
    MbGrid grid = uniformGrid(2, 2, MbMode::Skip, false, 36);
    deblockFrame(f, grid);
    EXPECT_EQ(stepHeight(f.y(), 8, 10), 24);
}

TEST(Deblock, MotionDifferenceTriggersFiltering)
{
    Frame f = stepFrame(32, 32, 100, 124);
    MbGrid grid = uniformGrid(2, 2, MbMode::Inter16, false, 36);
    // Give the right-hand macroblocks a different MV (>= 1 pixel).
    grid.at(1, 0).mv = MotionVector{4, 0};
    grid.at(1, 1).mv = MotionVector{4, 0};
    deblockFrame(f, grid);
    // Only the x = 16 macroblock boundary sees the MV difference; the
    // step at x = 8 is inside MB 0 and stays (uncoded).
    EXPECT_EQ(stepHeight(f.y(), 8, 10), 24);
}

TEST(Deblock, LowQpFiltersLess)
{
    Frame a = stepFrame(32, 32, 100, 112);
    Frame b = stepFrame(32, 32, 100, 112);
    MbGrid strong = uniformGrid(2, 2, MbMode::Intra, true, 44);
    MbGrid weak = uniformGrid(2, 2, MbMode::Intra, true, 16);
    deblockFrame(a, strong);
    deblockFrame(b, weak);
    // At QP 16 the thresholds are small: barely any change.
    EXPECT_LE(stepHeight(a.y(), 8, 10), stepHeight(b.y(), 8, 10));
}

TEST(Deblock, FiltersChromaPlanesToo)
{
    Frame f(32, 32);
    for (int y = 0; y < 16; ++y)
        for (int x = 0; x < 16; ++x)
            f.u().at(x, y) = static_cast<uint8_t>(x < 4 ? 100 : 120);
    MbGrid grid = uniformGrid(2, 2, MbMode::Intra, true, 36);
    deblockFrame(f, grid);
    EXPECT_LT(std::abs(f.u().at(4, 8) - f.u().at(3, 8)), 20);
}

TEST(Deblock, DeterministicAndIdempotentShape)
{
    video::Rng rng(8);
    Frame f(48, 48);
    for (int y = 0; y < 48; ++y)
        for (int x = 0; x < 48; ++x)
            f.y().at(x, y) = static_cast<uint8_t>(rng.below(256));
    Frame g = f;
    MbGrid grid = uniformGrid(3, 3, MbMode::Intra, true, 32);
    deblockFrame(f, grid);
    deblockFrame(g, grid);
    EXPECT_TRUE(f == g);
}

} // namespace
} // namespace vbench::codec
