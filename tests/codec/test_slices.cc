/**
 * @file
 * Entropy slice partitions, VBC: slice_count=1 must reproduce the
 * legacy single-segment stream exactly, every multi-slice stream must
 * round-trip through the decoder, the bytes must not depend on the
 * wavefront width at any slice count (slices and threads are
 * orthogonal knobs), and out-of-range requests must clamp to the
 * frame's row count. Labeled into the `thread` suite so the
 * VBENCH_SLICES=2 CI leg runs it alongside the frame-thread
 * determinism checks.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "metrics/psnr.h"
#include "video/synth.h"

namespace vbench::codec {
namespace {

video::Video
testClip(int w = 192, int h = 128, int frames = 5,
         video::ContentClass content = video::ContentClass::Natural,
         uint64_t seed = 19)
{
    return video::synthesize(
        video::presetFor(content, w, h, 30.0, frames, seed), "clip");
}

EncoderConfig
baseConfig(int effort = 5)
{
    EncoderConfig cfg;
    cfg.rc.mode = RcMode::Cqp;
    cfg.rc.qp = 28;
    cfg.effort = effort;
    cfg.gop = 4;
    cfg.slice_count = 1;
    return cfg;
}

ByteBuffer
encodeWith(const video::Video &clip, EncoderConfig cfg, int slices,
           int threads = 1)
{
    cfg.slice_count = slices;
    cfg.frame_threads = threads;
    return Encoder(cfg).encode(clip).stream;
}

TEST(SlicesVbc, MultiSliceStreamsRoundTrip)
{
    const video::Video clip = testClip();
    const ByteBuffer single = encodeWith(clip, baseConfig(), 1);
    const auto single_dec = decode(single);
    ASSERT_TRUE(single_dec.has_value());
    const double single_psnr = metrics::videoPsnr(clip, *single_dec);

    for (const int slices : {2, 3, 4}) {
        const ByteBuffer stream = encodeWith(clip, baseConfig(), slices);
        ASSERT_FALSE(stream.empty());
        const auto decoded = decode(stream);
        ASSERT_TRUE(decoded.has_value()) << "slices=" << slices;
        ASSERT_EQ(decoded->frameCount(), clip.frameCount());
        // Context resets cost bits, not meaningful quality: the sliced
        // encode must land within a small band of the single-slice one.
        EXPECT_GT(metrics::videoPsnr(clip, *decoded), single_psnr - 2.0)
            << "slices=" << slices;
    }
}

TEST(SlicesVbc, SlicesChangeTheBytesAndGrowTheStream)
{
    const video::Video clip = testClip();
    const ByteBuffer single = encodeWith(clip, baseConfig(), 1);
    const ByteBuffer sliced = encodeWith(clip, baseConfig(), 4);
    EXPECT_NE(sliced, single);
    // Reset contexts plus per-slice length prefixes cost bits; if the
    // sliced stream is not larger something is not actually resetting.
    EXPECT_GT(sliced.size(), single.size());
}

TEST(SlicesVbc, BitExactAcrossThreadWidthsAtEverySliceCount)
{
    const video::Video clip = testClip();
    for (const int slices : {1, 2, 4}) {
        const ByteBuffer serial = encodeWith(clip, baseConfig(), slices, 1);
        for (const int threads : {2, 4, 7}) {
            EXPECT_EQ(encodeWith(clip, baseConfig(), slices, threads),
                      serial)
                << "slices=" << slices << " threads=" << threads;
        }
    }
}

TEST(SlicesVbc, HighEffortArithAdaptiveQuantRoundTrips)
{
    // Effort 8: arithmetic coding, adaptive quant (the per-MB QP chain
    // each slice must restart from the frame QP), scene cuts.
    const video::Video clip = testClip();
    const ByteBuffer stream = encodeWith(clip, baseConfig(8), 4);
    const auto decoded = decode(stream);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->frameCount(), clip.frameCount());
}

TEST(SlicesVbc, UnalignedHeightRoundTrips)
{
    // 98 rows of pixels pad to 7 macroblock rows: 7 rows over 4 slices
    // makes uneven bands (2/2/2/1) plus partial edge macroblocks.
    const video::Video clip = testClip(150, 98, 4);
    for (const int slices : {2, 4}) {
        const ByteBuffer stream = encodeWith(clip, baseConfig(), slices);
        const auto decoded = decode(stream);
        ASSERT_TRUE(decoded.has_value()) << "slices=" << slices;
        EXPECT_EQ(decoded->frameCount(), clip.frameCount());
    }
}

TEST(SlicesVbc, SliceCountBeyondRowCountClampsToRows)
{
    // 64 pixel rows = 4 macroblock rows; a 64-slice request must clamp
    // to 4 and produce the same bytes as asking for 4.
    const video::Video clip = testClip(96, 64, 3);
    EXPECT_EQ(encodeWith(clip, baseConfig(), 64),
              encodeWith(clip, baseConfig(), 4));
}

TEST(SlicesVbc, AbrRateControlRoundTripsSliced)
{
    // ABR threads per-frame QP through the controller; slices must not
    // perturb the per-frame decision sequence.
    EncoderConfig cfg;
    cfg.rc.mode = RcMode::Abr;
    cfg.rc.bitrate_bps = 400e3;
    cfg.effort = 5;
    cfg.gop = 4;
    const video::Video clip = testClip();
    const ByteBuffer stream = encodeWith(clip, cfg, 4);
    const auto decoded = decode(stream);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->frameCount(), clip.frameCount());
}

TEST(SlicesVbc, ZeroSliceCountResolvesVbenchSlices)
{
    // slice_count=0 defers to the environment knob, the same contract
    // frame_threads has with VBENCH_FRAME_THREADS.
    const video::Video clip = testClip(96, 64, 3);
    setenv("VBENCH_SLICES", "2", 1);
    const ByteBuffer resolved = encodeWith(clip, baseConfig(), 0);
    unsetenv("VBENCH_SLICES");
    EXPECT_EQ(resolved, encodeWith(clip, baseConfig(), 2));
}

} // namespace
} // namespace vbench::codec
