/**
 * @file
 * Slice wire-format robustness, both codecs: a multi-slice frame
 * payload is a sequence of u32-length-prefixed slice records, and the
 * decoders must survive every way that framing can be damaged —
 * truncation at every byte offset (cutting inside slice headers and
 * payloads alike), corrupted length prefixes (zero, short, huge), and
 * trailing garbage after the last slice — by rejecting cleanly, never
 * by reading out of bounds. The same sources are rebuilt under
 * ASan+UBSan as sanitize.* (tests/CMakeLists.txt) so an out-of-bounds
 * read is a hard failure, not luck.
 */

#include <gtest/gtest.h>

#include "codec/bitstream.h"
#include "codec/decoder.h"
#include "codec/encoder.h"
#include "ngc/ngc_bitstream.h"
#include "ngc/ngc_decoder.h"
#include "ngc/ngc_encoder.h"
#include "video/rng.h"
#include "video/synth.h"

namespace vbench::codec {
namespace {

video::Video
clip()
{
    // Unaligned height: the last slice band is shorter than the rest.
    return video::synthesize(
        video::presetFor(video::ContentClass::Gaming, 96, 80, 30.0, 4,
                         4242),
        "slices");
}

ByteBuffer
vbcStream(int slices)
{
    EncoderConfig cfg;
    cfg.rc.mode = RcMode::Cqp;
    cfg.rc.qp = 28;
    cfg.effort = 4;
    cfg.gop = 4;
    cfg.slice_count = slices;
    return Encoder(cfg).encode(clip()).stream;
}

ByteBuffer
ngcStream(int slices)
{
    ngc::NgcConfig cfg;
    cfg.rc.mode = RcMode::Cqp;
    cfg.rc.qp = 28;
    cfg.speed = 2;
    cfg.gop = 4;
    cfg.slice_count = slices;
    return ngc::NgcEncoder(cfg).encode(clip()).stream;
}

TEST(SliceTruncation, EveryPrefixIsRejectedOrPartialVbc)
{
    const video::Video v = clip();
    const ByteBuffer good = vbcStream(4);
    ASSERT_TRUE(decode(good).has_value());
    for (size_t keep = 0; keep < good.size(); ++keep) {
        const ByteBuffer prefix(good.begin(),
                                good.begin() + static_cast<long>(keep));
        const auto decoded = decode(prefix);
        // A cut inside a slice header or payload can never yield the
        // full clip; whole-frame prefixes may decode the frames before
        // the cut.
        if (decoded) {
            EXPECT_LT(decoded->frameCount(), v.frameCount())
                << "prefix " << keep;
        }
    }
}

TEST(SliceTruncation, EveryPrefixIsRejectedOrPartialNgc)
{
    const video::Video v = clip();
    const ByteBuffer good = ngcStream(4);
    ASSERT_TRUE(ngc::ngcDecode(good).has_value());
    for (size_t keep = 0; keep < good.size(); ++keep) {
        const ByteBuffer prefix(good.begin(),
                                good.begin() + static_cast<long>(keep));
        const auto decoded = ngc::ngcDecode(prefix);
        if (decoded) {
            EXPECT_LT(decoded->frameCount(), v.frameCount())
                << "prefix " << keep;
        }
    }
}

/**
 * Flip bits across the stream — length prefixes included — and demand
 * termination without UB. Length-prefix damage turns one slice's
 * record into a short, huge, or misaligned claim, which the decoder
 * must bound-check against the payload it actually has.
 */
void
flipSweep(const ByteBuffer &good, uint64_t seed,
          bool (*try_decode)(const ByteBuffer &))
{
    video::Rng rng(seed);
    int decodable = 0;
    for (int trial = 0; trial < 300; ++trial) {
        ByteBuffer mutated = good;
        const int flips = 1 + static_cast<int>(rng.below(8));
        for (int i = 0; i < flips; ++i) {
            const size_t pos = rng.below(mutated.size());
            mutated[pos] ^= static_cast<uint8_t>(1u << rng.below(8));
        }
        if (try_decode(mutated))
            ++decodable;
    }
    // Some mutations must break the slice framing and be rejected.
    EXPECT_LT(decodable, 300);
}

TEST(SliceTruncation, BitFlippedSliceFramesNeverCrashVbc)
{
    flipSweep(vbcStream(4), 7, [](const ByteBuffer &b) {
        return decode(b).has_value();
    });
}

TEST(SliceTruncation, BitFlippedSliceFramesNeverCrashNgc)
{
    flipSweep(ngcStream(4), 9, [](const ByteBuffer &b) {
        return ngc::ngcDecode(b).has_value();
    });
}

/** Byte offset of the first frame's first slice length prefix. */
size_t
firstSlicePrefixOffset(const ByteBuffer &stream)
{
    size_t consumed = 0;
    const auto header =
        parseStreamHeader(stream.data(), stream.size(), consumed);
    EXPECT_TRUE(header.has_value());
    EXPECT_GT(header->slice_count, 1u);
    // frame payload length u32, then the 1-byte frame header, then the
    // first slice record's length prefix.
    return consumed + 4 + 1;
}

/** Same, for the NGC container (own magic and header fields). */
size_t
firstNgcSlicePrefixOffset(const ByteBuffer &stream)
{
    size_t consumed = 0;
    const auto header =
        ngc::parseNgcHeader(stream.data(), stream.size(), consumed);
    EXPECT_TRUE(header.has_value());
    EXPECT_GT(header->slice_count, 1u);
    return consumed + 4 + 1;
}

TEST(SliceTruncation, CorruptedSliceLengthPrefixIsRejectedVbc)
{
    const ByteBuffer good = vbcStream(4);
    const size_t at = firstSlicePrefixOffset(good);
    ASSERT_LE(at + 4, good.size());

    // A zero-length slice record is meaningless and must be refused.
    ByteBuffer zeroed = good;
    for (int i = 0; i < 4; ++i)
        zeroed[at + static_cast<size_t>(i)] = 0x00;
    EXPECT_FALSE(decode(zeroed).has_value());

    // A length claiming far past the payload end must be refused, not
    // read.
    ByteBuffer huge = good;
    for (int i = 0; i < 4; ++i)
        huge[at + static_cast<size_t>(i)] = 0xFF;
    EXPECT_FALSE(decode(huge).has_value());
}

TEST(SliceTruncation, CorruptedSliceLengthPrefixIsRejectedNgc)
{
    const ByteBuffer good = ngcStream(4);
    const size_t at = firstNgcSlicePrefixOffset(good);
    ASSERT_LE(at + 4, good.size());

    ByteBuffer zeroed = good;
    for (int i = 0; i < 4; ++i)
        zeroed[at + static_cast<size_t>(i)] = 0x00;
    EXPECT_FALSE(ngc::ngcDecode(zeroed).has_value());

    ByteBuffer huge = good;
    for (int i = 0; i < 4; ++i)
        huge[at + static_cast<size_t>(i)] = 0xFF;
    EXPECT_FALSE(ngc::ngcDecode(huge).has_value());
}

} // namespace
} // namespace vbench::codec
