/**
 * @file
 * Motion estimation: the searches must find known displacements.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "codec/me.h"
#include "video/rng.h"

namespace vbench::codec {
namespace {

using video::Plane;

/**
 * Textured plane whose SAD landscape is unimodal within the search
 * window: dominant low-frequency structure (period ~60 px, so no
 * aliases inside a +-16 px search) plus light noise for uniqueness.
 * Gradient-descent searches (diamond/hex) need this to be a fair test;
 * with real video they rely on MV predictors for the same reason.
 */
Plane
texturedPlane(int w, int h, uint64_t seed)
{
    video::Rng rng(seed);
    Plane p(w, h);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            p.at(x, y) = static_cast<uint8_t>(
                128 + 55 * std::sin(x * 0.105) + 45 * std::cos(y * 0.093) +
                rng.range(-4, 4));
    return p;
}

/** Shift a plane by (dx, dy) with edge clamping. */
Plane
shifted(const Plane &src, int dx, int dy)
{
    Plane out(src.width(), src.height());
    for (int y = 0; y < src.height(); ++y)
        for (int x = 0; x < src.width(); ++x)
            out.at(x, y) = src.atClamped(x - dx, y - dy);
    return out;
}

TEST(Sad, ZeroForIdenticalBlocks)
{
    const Plane p = texturedPlane(64, 64, 1);
    EXPECT_EQ(sadBlock(p.row(8) + 8, 64, p.row(8) + 8, 64, 16, 16), 0u);
}

TEST(Sad, MatchesManualComputation)
{
    const Plane a = texturedPlane(32, 32, 2);
    const Plane b = texturedPlane(32, 32, 3);
    uint32_t manual = 0;
    for (int r = 0; r < 8; ++r)
        for (int c = 0; c < 8; ++c)
            manual += std::abs(a.at(4 + c, 4 + r) - b.at(4 + c, 4 + r));
    EXPECT_EQ(sadBlock(a.row(4) + 4, 32, b.row(4) + 4, 32, 8, 8), manual);
}

TEST(MvBits, ZeroDeltaIsCheapest)
{
    const MotionVector pred{6, -4};
    const uint32_t zero_cost = mvBits(pred, pred);
    EXPECT_EQ(zero_cost, 2u);  // two 1-bit ue(0)
    EXPECT_GT(mvBits(MotionVector{20, 0}, pred), zero_cost);
}

struct SearchCase {
    SearchKind kind;
    int range;
    int dx, dy;  ///< true full-pel displacement
};

class SearchSweep : public ::testing::TestWithParam<SearchCase>
{
};

TEST_P(SearchSweep, RecoversTrueMotion)
{
    const SearchCase param = GetParam();
    const Plane ref_src = texturedPlane(128, 96, 44);
    // Current frame is the reference with content shifted by
    // (dx, dy): cur(x) = ref(x - dx), so the MV pointing from a
    // current block into the reference is exactly (-dx, -dy).
    const Plane cur = shifted(ref_src, param.dx, param.dy);
    const RefPlane ref(ref_src);

    MeContext me;
    me.src = &cur;
    me.ref = &ref;
    me.block_x = 48;
    me.block_y = 40;
    me.pred = MotionVector{0, 0};
    me.lambda = 1.0;
    me.kind = param.kind;
    me.range = param.range;
    me.subpel = false;
    const MeResult result = motionSearch(me);
    EXPECT_EQ(result.mv.x, -param.dx * 2);
    EXPECT_EQ(result.mv.y, -param.dy * 2);
    EXPECT_LT(result.sad, 16u * 16u * 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, SearchSweep,
    ::testing::Values(SearchCase{SearchKind::Full, 8, 5, -3},
                      SearchCase{SearchKind::Full, 8, -7, 6},
                      SearchCase{SearchKind::Diamond, 16, 3, 2},
                      SearchCase{SearchKind::Hex, 16, 6, -5},
                      SearchCase{SearchKind::Hex, 16, -9, 8},
                      SearchCase{SearchKind::Diamond, 16, 0, 0}));

TEST(MotionSearch, SubpelRefinementImprovesHalfPelShift)
{
    // Build a half-pel shifted current frame: cur(x) = avg(ref(x),
    // ref(x+1)) so the best match is at mv.x = +1 (half-pel).
    const Plane ref_src = texturedPlane(128, 96, 55);
    Plane cur(128, 96);
    for (int y = 0; y < 96; ++y)
        for (int x = 0; x < 128; ++x)
            cur.at(x, y) =
                static_cast<uint8_t>((ref_src.at(x, y) +
                                      ref_src.atClamped(x + 1, y) + 1) /
                                     2);
    const RefPlane ref(ref_src);

    MeContext me;
    me.src = &cur;
    me.ref = &ref;
    me.block_x = 48;
    me.block_y = 40;
    me.lambda = 1.0;
    me.kind = SearchKind::Hex;
    me.range = 16;

    me.subpel = false;
    const MeResult integer_only = motionSearch(me);
    me.subpel = true;
    const MeResult refined = motionSearch(me);
    EXPECT_LT(refined.sad, integer_only.sad);
    EXPECT_EQ(refined.mv.x, 1);
    EXPECT_EQ(refined.mv.y, 0);
}

TEST(MotionSearch, PredictorBiasBreaksTies)
{
    // On a flat frame every position has equal SAD; the cost model
    // must prefer the predictor.
    Plane flat(64, 64, 100);
    const RefPlane ref(flat);
    MeContext me;
    me.src = &flat;
    me.ref = &ref;
    me.block_x = 16;
    me.block_y = 16;
    me.pred = MotionVector{4, 4};
    me.lambda = 4.0;
    me.kind = SearchKind::Hex;
    me.range = 8;
    me.subpel = false;
    const MeResult result = motionSearch(me);
    // Zero MV and predictor both cost ~nothing in SAD; either is
    // acceptable, but cost must reflect mv bits.
    EXPECT_LE(mvBits(result.mv, me.pred), mvBits(MotionVector{16, 0},
                                                 me.pred));
}

TEST(MotionSearch, FullSearchNeverWorseThanHex)
{
    const Plane ref_src = texturedPlane(160, 128, 66);
    const Plane cur = shifted(ref_src, -6, 7);
    const RefPlane ref(ref_src);
    MeContext me;
    me.src = &cur;
    me.ref = &ref;
    me.block_x = 64;
    me.block_y = 48;
    me.lambda = 1.0;
    me.subpel = false;

    me.kind = SearchKind::Hex;
    me.range = 16;
    const MeResult hex = motionSearch(me);
    me.kind = SearchKind::Full;
    me.range = 10;
    const MeResult full = motionSearch(me);
    EXPECT_LE(full.cost, hex.cost);
    EXPECT_GT(full.candidates, hex.candidates);
}

TEST(Satd, ZeroForIdenticalBlocks)
{
    const Plane p = texturedPlane(64, 64, 21);
    EXPECT_EQ(satdBlock(p.row(8) + 8, 64, p.row(8) + 8, 64, 16, 16), 0u);
}

TEST(Satd, PenalizesStructuredResidualMoreThanSad)
{
    // A flat DC offset concentrates into one Hadamard coefficient —
    // cheap to code. A random-sign residual of the same SAD spreads
    // over all coefficients: SATD must charge it more. That transform
    // awareness is the reason the metric exists.
    video::Rng rng(31);
    Plane a(16, 16, 100);
    Plane dc(16, 16, 108);
    Plane noisy(16, 16);
    for (int y = 0; y < 16; ++y)
        for (int x = 0; x < 16; ++x)
            noisy.at(x, y) =
                static_cast<uint8_t>(100 + (rng.below(2) ? 8 : -8));
    const uint32_t sad_dc = sadBlock(a.data(), 16, dc.data(), 16, 16, 16);
    const uint32_t sad_noisy =
        sadBlock(a.data(), 16, noisy.data(), 16, 16, 16);
    EXPECT_EQ(sad_dc, sad_noisy);  // same SAD by construction
    const uint32_t satd_dc =
        satdBlock(a.data(), 16, dc.data(), 16, 16, 16);
    const uint32_t satd_noisy =
        satdBlock(a.data(), 16, noisy.data(), 16, 16, 16);
    EXPECT_GT(satd_noisy, 2 * satd_dc);
}

TEST(Satd, SubpelRefinementStillFindsHalfPelShift)
{
    const Plane ref_src = texturedPlane(128, 96, 57);
    Plane cur(128, 96);
    for (int y = 0; y < 96; ++y)
        for (int x = 0; x < 128; ++x)
            cur.at(x, y) =
                static_cast<uint8_t>((ref_src.at(x, y) +
                                      ref_src.atClamped(x + 1, y) + 1) /
                                     2);
    const RefPlane ref(ref_src);
    MeContext me;
    me.src = &cur;
    me.ref = &ref;
    me.block_x = 48;
    me.block_y = 40;
    me.lambda = 1.0;
    me.kind = SearchKind::Hex;
    me.range = 16;
    me.subpel = true;
    me.satd_subpel = true;
    const MeResult result = motionSearch(me);
    EXPECT_EQ(result.mv.x, 1);
    EXPECT_EQ(result.mv.y, 0);
}

TEST(MotionSearch, ClampsNearFrameBorder)
{
    const Plane ref_src = texturedPlane(64, 64, 77);
    const Plane cur = shifted(ref_src, 30, 30);
    const RefPlane ref(ref_src);
    MeContext me;
    me.src = &cur;
    me.ref = &ref;
    me.block_x = 0;
    me.block_y = 0;
    me.lambda = 1.0;
    me.kind = SearchKind::Full;
    me.range = 60;  // would escape the pad without clamping
    me.subpel = true;
    const MeResult result = motionSearch(me);  // must not crash
    EXPECT_GT(result.candidates, 100u);
}

} // namespace
} // namespace vbench::codec
