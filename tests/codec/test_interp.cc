/**
 * @file
 * RefPlane padding and half-pel motion compensation tests.
 */

#include <gtest/gtest.h>

#include "codec/interp.h"
#include "codec/refplane.h"
#include "video/rng.h"

namespace vbench::codec {
namespace {

using video::Plane;

Plane
randomPlane(int w, int h, uint64_t seed)
{
    video::Rng rng(seed);
    Plane p(w, h);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            p.at(x, y) = static_cast<uint8_t>(rng.below(256));
    return p;
}

TEST(RefPlane, InteriorMatchesSource)
{
    const Plane src = randomPlane(40, 24, 1);
    const RefPlane ref(src);
    for (int y = 0; y < 24; ++y)
        for (int x = 0; x < 40; ++x)
            ASSERT_EQ(*ref.ptr(x, y), src.at(x, y));
}

TEST(RefPlane, EdgeExtension)
{
    const Plane src = randomPlane(40, 24, 2);
    const RefPlane ref(src);
    // Left/right replication.
    for (int y = 0; y < 24; ++y) {
        EXPECT_EQ(*ref.ptr(-kRefPad, y), src.at(0, y));
        EXPECT_EQ(*ref.ptr(40 + kRefPad - 1, y), src.at(39, y));
    }
    // Top/bottom replication.
    for (int x = 0; x < 40; ++x) {
        EXPECT_EQ(*ref.ptr(x, -kRefPad), src.at(x, 0));
        EXPECT_EQ(*ref.ptr(x, 24 + kRefPad - 1), src.at(x, 23));
    }
    // Corners replicate the corner pixel.
    EXPECT_EQ(*ref.ptr(-kRefPad, -kRefPad), src.at(0, 0));
    EXPECT_EQ(*ref.ptr(40 + kRefPad - 1, 24 + kRefPad - 1),
              src.at(39, 23));
}

TEST(MotionCompensate, IntegerVectorCopies)
{
    const Plane src = randomPlane(64, 48, 3);
    const RefPlane ref(src);
    uint8_t out[16 * 16];
    motionCompensate(ref, 16, 16, MotionVector{-8, 4}, 16, 16, out);
    for (int r = 0; r < 16; ++r)
        for (int c = 0; c < 16; ++c)
            ASSERT_EQ(out[r * 16 + c], src.at(16 + c - 4, 16 + r + 2));
}

TEST(MotionCompensate, HalfPelHorizontalAverages)
{
    const Plane src = randomPlane(64, 48, 4);
    const RefPlane ref(src);
    uint8_t out[8 * 8];
    motionCompensate(ref, 16, 16, MotionVector{1, 0}, 8, 8, out);
    for (int r = 0; r < 8; ++r) {
        for (int c = 0; c < 8; ++c) {
            const int expect =
                (src.at(16 + c, 16 + r) + src.at(17 + c, 16 + r) + 1) >> 1;
            ASSERT_EQ(out[r * 8 + c], expect);
        }
    }
}

TEST(MotionCompensate, HalfPelVerticalAverages)
{
    const Plane src = randomPlane(64, 48, 5);
    const RefPlane ref(src);
    uint8_t out[8 * 8];
    motionCompensate(ref, 8, 8, MotionVector{0, 1}, 8, 8, out);
    for (int r = 0; r < 8; ++r) {
        for (int c = 0; c < 8; ++c) {
            const int expect =
                (src.at(8 + c, 8 + r) + src.at(8 + c, 9 + r) + 1) >> 1;
            ASSERT_EQ(out[r * 8 + c], expect);
        }
    }
}

TEST(MotionCompensate, HalfPelDiagonalAveragesFour)
{
    const Plane src = randomPlane(64, 48, 6);
    const RefPlane ref(src);
    uint8_t out[4 * 4];
    motionCompensate(ref, 4, 4, MotionVector{3, 5}, 4, 4, out);
    for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 4; ++c) {
            const int x = 4 + c + 1;
            const int y = 4 + r + 2;
            const int expect = (src.at(x, y) + src.at(x + 1, y) +
                                src.at(x, y + 1) + src.at(x + 1, y + 1) +
                                2) >> 2;
            ASSERT_EQ(out[r * 4 + c], expect);
        }
    }
}

TEST(MotionCompensate, NegativeHalfPelUsesFloorConvention)
{
    // mv = -1 (half-pel): integer part is -1, fraction 1, so samples
    // at x-1 and x are averaged. Both encoder and decoder rely on
    // arithmetic-shift flooring here.
    const Plane src = randomPlane(32, 32, 7);
    const RefPlane ref(src);
    uint8_t out[4 * 4];
    motionCompensate(ref, 8, 8, MotionVector{-1, 0}, 4, 4, out);
    for (int c = 0; c < 4; ++c) {
        const int expect =
            (src.at(7 + c, 8) + src.at(8 + c, 8) + 1) >> 1;
        ASSERT_EQ(out[c], expect);
    }
}

TEST(MotionCompensate, OutOfFrameReadsUseReplicatedEdge)
{
    const Plane src = randomPlane(32, 32, 8);
    const RefPlane ref(src);
    uint8_t out[8 * 8];
    // Block at origin, vector pointing 10 px off the top-left corner.
    motionCompensate(ref, 0, 0, MotionVector{-20, -20}, 8, 8, out);
    ASSERT_EQ(out[0], src.at(0, 0));
}

} // namespace
} // namespace vbench::codec
