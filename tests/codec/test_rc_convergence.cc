/**
 * @file
 * Rate-control convergence properties across bitrates and content —
 * parameterized end-to-end sweeps (the behaviour every bitrate-driven
 * scenario depends on).
 */

#include <gtest/gtest.h>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "metrics/rates.h"
#include "video/synth.h"

namespace vbench::codec {
namespace {

struct RcCase {
    RcMode mode;
    double bpps;  ///< target in bits/pixel/s
    video::ContentClass content;
};

class RcSweep : public ::testing::TestWithParam<RcCase>
{
};

TEST_P(RcSweep, ConvergesWithinBand)
{
    const RcCase param = GetParam();
    const video::Video clip = video::synthesize(
        video::presetFor(param.content, 192, 160, 30.0, 16, 606), "rc");

    EncoderConfig cfg;
    cfg.rc.mode = param.mode;
    cfg.rc.bitrate_bps = param.bpps * clip.pixelsPerFrame();
    cfg.effort = 4;
    cfg.gop = 0;
    Encoder encoder(cfg);
    const EncodeResult result = encoder.encode(clip);
    ASSERT_TRUE(decode(result.stream).has_value());

    const double actual = metrics::bitsPerPixelPerSecond(
        result.totalBytes(), clip.width(), clip.height(),
        clip.frameCount(), clip.fps());
    // Band: the QP-floor saturation makes undershoot legitimate on
    // easy content, overshoot is bounded by the feedback loop.
    EXPECT_LT(actual, param.bpps * 2.6)
        << "gross overshoot at target " << param.bpps;
    if (param.content == video::ContentClass::Noisy) {
        // Hard content fully uses its budget.
        EXPECT_GT(actual, param.bpps * 0.4);
    }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndRates, RcSweep,
    ::testing::Values(
        RcCase{RcMode::Abr, 0.4, video::ContentClass::Natural},
        RcCase{RcMode::Abr, 1.2, video::ContentClass::Natural},
        RcCase{RcMode::Abr, 2.4, video::ContentClass::Noisy},
        RcCase{RcMode::TwoPass, 0.4, video::ContentClass::Natural},
        RcCase{RcMode::TwoPass, 1.2, video::ContentClass::Sports},
        RcCase{RcMode::TwoPass, 2.4, video::ContentClass::Noisy}));

TEST(RcConvergence, TwoPassTracksComplexitySpikes)
{
    // A clip with a hard mid-clip scene change: two-pass must shift
    // bits toward the post-cut frames instead of starving them. The
    // cut is constructed (luma inversion at frame 8) so the detector
    // has no seed-dependent ambiguity.
    video::SynthParams p = video::presetFor(
        video::ContentClass::Slideshow, 160, 128, 30.0, 16, 707);
    p.scene_cut_interval = 0;  // one synthesized scene...
    video::Video clip = video::synthesize(p);
    for (int i = 8; i < clip.frameCount(); ++i) {  // ...cut by hand
        video::Plane &y = clip.frame(i).y();
        for (int r = 0; r < y.height(); ++r)
            for (int c = 0; c < y.width(); ++c)
                y.at(c, r) = static_cast<uint8_t>(255 - y.at(c, r));
    }

    EncoderConfig cfg;
    cfg.rc.mode = RcMode::TwoPass;
    cfg.rc.bitrate_bps = 1.0 * clip.pixelsPerFrame();
    cfg.effort = 4;
    cfg.gop = 0;
    Encoder encoder(cfg);
    const EncodeResult result = encoder.encode(clip);

    // The scene-cut keyframe must be among the largest frames.
    size_t cut_bytes = 0;
    size_t max_bytes = 0;
    for (size_t i = 0; i < result.frames.size(); ++i) {
        max_bytes = std::max(max_bytes, result.frames[i].bytes);
        if (i == 8)
            cut_bytes = result.frames[i].bytes;
    }
    EXPECT_EQ(result.frames[8].type, FrameType::I);
    EXPECT_GT(cut_bytes, max_bytes / 4);
}

TEST(RcConvergence, CrfBitsScaleWithContentNotTarget)
{
    // CRF mode: equal quality setting, bits follow content.
    auto encode = [](video::ContentClass content) {
        const video::Video clip = video::synthesize(
            video::presetFor(content, 160, 128, 30.0, 8, 909), "c");
        EncoderConfig cfg;
        cfg.rc.mode = RcMode::Crf;
        cfg.rc.crf = 23;
        cfg.effort = 4;
        Encoder encoder(cfg);
        return encoder.encode(clip).totalBytes();
    };
    EXPECT_GT(encode(video::ContentClass::Noisy),
              3 * encode(video::ContentClass::Slideshow));
}

} // namespace
} // namespace vbench::codec
