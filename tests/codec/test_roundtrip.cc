/**
 * @file
 * Encoder/decoder round-trip: every tool combination must produce a
 * stream the decoder reconstructs at the expected quality. This is the
 * codec's core correctness suite — any encoder/decoder mismatch shows
 * up here as a PSNR collapse or a decode failure.
 */

#include <gtest/gtest.h>

#include "codec/bitstream.h"
#include "codec/decoder.h"
#include "codec/encoder.h"
#include "metrics/psnr.h"
#include "video/synth.h"

namespace vbench::codec {
namespace {

video::Video
testClip(int width = 128, int height = 96, int frames = 8,
         video::ContentClass content = video::ContentClass::Natural,
         uint64_t seed = 99)
{
    const video::SynthParams p =
        video::presetFor(content, width, height, 30.0, frames, seed);
    return video::synthesize(p, "test");
}

EncoderConfig
cqpConfig(int qp, int effort)
{
    EncoderConfig cfg;
    cfg.rc.mode = RcMode::Cqp;
    cfg.rc.qp = qp;
    cfg.effort = effort;
    cfg.gop = 4;
    return cfg;
}

TEST(RoundTrip, DecodeRestoresGeometryAndTiming)
{
    const video::Video clip = testClip(130, 98, 5);  // non-MB-aligned
    Encoder encoder(cqpConfig(28, 2));
    const EncodeResult result = encoder.encode(clip);
    ASSERT_FALSE(result.stream.empty());

    const auto decoded = decode(result.stream);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->width(), 130);
    EXPECT_EQ(decoded->height(), 98);
    EXPECT_EQ(decoded->frameCount(), 5);
    EXPECT_NEAR(decoded->fps(), 30.0, 1e-6);
}

TEST(RoundTrip, LowQpIsNearLossless)
{
    const video::Video clip = testClip();
    Encoder encoder(cqpConfig(4, 3));
    const EncodeResult result = encoder.encode(clip);
    const auto decoded = decode(result.stream);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_GT(metrics::videoPsnr(clip, *decoded), 46.0);
}

TEST(RoundTrip, QualityFallsWithQp)
{
    const video::Video clip = testClip();
    double prev = 1e9;
    size_t prev_bytes = SIZE_MAX;
    for (int qp : {8, 20, 32, 44}) {
        Encoder encoder(cqpConfig(qp, 3));
        const EncodeResult result = encoder.encode(clip);
        const auto decoded = decode(result.stream);
        ASSERT_TRUE(decoded.has_value()) << "qp " << qp;
        const double psnr = metrics::videoPsnr(clip, *decoded);
        EXPECT_LT(psnr, prev) << "qp " << qp;
        EXPECT_LT(result.totalBytes(), prev_bytes) << "qp " << qp;
        prev = psnr;
        prev_bytes = result.totalBytes();
    }
}

TEST(RoundTrip, TruncatedStreamFailsCleanly)
{
    const video::Video clip = testClip(64, 64, 3);
    Encoder encoder(cqpConfig(30, 1));
    const EncodeResult result = encoder.encode(clip);
    for (size_t keep :
         {size_t{0}, size_t{3}, size_t{9}, result.stream.size() / 2}) {
        const auto decoded =
            decode(result.stream.data(), keep);
        EXPECT_FALSE(decoded.has_value()) << "kept " << keep;
    }
}

TEST(RoundTrip, GarbageInputRejected)
{
    ByteBuffer garbage(256, 0xA5);
    EXPECT_FALSE(decode(garbage).has_value());
}

TEST(RoundTrip, DeterministicStream)
{
    const video::Video clip = testClip();
    Encoder a(cqpConfig(26, 5));
    Encoder b(cqpConfig(26, 5));
    EXPECT_EQ(a.encode(clip).stream, b.encode(clip).stream);
}

TEST(RoundTrip, IntraOnlyGop)
{
    const video::Video clip = testClip(96, 80, 6);
    EncoderConfig cfg = cqpConfig(24, 3);
    cfg.gop = 1;  // every frame I
    Encoder encoder(cfg);
    const EncodeResult result = encoder.encode(clip);
    for (const FrameStats &f : result.frames)
        EXPECT_EQ(f.type, FrameType::I);
    const auto decoded = decode(result.stream);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_GT(metrics::videoPsnr(clip, *decoded), 30.0);
}

TEST(RoundTrip, SingleIFrameGop)
{
    const video::Video clip = testClip(96, 80, 6);
    EncoderConfig cfg = cqpConfig(24, 3);
    cfg.gop = 0;  // only the first frame is I
    Encoder encoder(cfg);
    const EncodeResult result = encoder.encode(clip);
    EXPECT_EQ(result.frames[0].type, FrameType::I);
    for (size_t i = 1; i < result.frames.size(); ++i)
        EXPECT_EQ(result.frames[i].type, FrameType::P);
    const auto decoded = decode(result.stream);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_GT(metrics::videoPsnr(clip, *decoded), 30.0);
}

TEST(RoundTrip, SceneCutInsertsKeyframes)
{
    // Slideshow content with hard cuts inside the clip: the encoder
    // must promote the cut frames to I even mid-GOP.
    video::SynthParams p = video::presetFor(
        video::ContentClass::Slideshow, 128, 96, 30.0, 12, 404);
    p.scene_cut_interval = 0.2;  // cuts at frames 6 and 12
    const video::Video clip = video::synthesize(p);

    EncoderConfig cfg = cqpConfig(26, 5);
    cfg.gop = 0;  // no periodic I frames: only scenecut can insert them
    Encoder encoder(cfg);
    const EncodeResult result = encoder.encode(clip);

    ASSERT_EQ(result.frames.size(), 12u);
    EXPECT_EQ(result.frames[0].type, FrameType::I);
    EXPECT_EQ(result.frames[6].type, FrameType::I) << "missed scene cut";
    int i_frames = 0;
    for (const FrameStats &f : result.frames)
        i_frames += f.type == FrameType::I;
    EXPECT_LE(i_frames, 3) << "scenecut fired on static frames";

    const auto decoded = decode(result.stream);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_GT(metrics::videoPsnr(clip, *decoded), 32.0);
}

TEST(RoundTrip, SceneCutOffAtEffortZero)
{
    video::SynthParams p = video::presetFor(
        video::ContentClass::Slideshow, 128, 96, 30.0, 12, 404);
    p.scene_cut_interval = 0.2;
    const video::Video clip = video::synthesize(p);
    EncoderConfig cfg = cqpConfig(26, 0);
    cfg.gop = 0;
    Encoder encoder(cfg);
    const EncodeResult result = encoder.encode(clip);
    for (size_t i = 1; i < result.frames.size(); ++i)
        EXPECT_EQ(result.frames[i].type, FrameType::P);
    ASSERT_TRUE(decode(result.stream).has_value());
}

TEST(RoundTrip, StaticContentUsesSkip)
{
    const video::Video clip =
        testClip(128, 96, 6, video::ContentClass::Slideshow);
    EncoderConfig cfg = cqpConfig(30, 3);
    cfg.gop = 0;
    Encoder encoder(cfg);
    const EncodeResult result = encoder.encode(clip);
    uint32_t skips = 0;
    for (size_t i = 1; i < result.frames.size(); ++i)
        skips += result.frames[i].skip_mbs;
    EXPECT_GT(skips, 0u);
    const auto decoded = decode(result.stream);
    ASSERT_TRUE(decoded.has_value());
}

/** Every effort level must round-trip on every content family. */
class EffortSweep
    : public ::testing::TestWithParam<std::tuple<int, video::ContentClass>>
{
};

TEST_P(EffortSweep, RoundTripsAtReasonableQuality)
{
    const auto [effort, content] = GetParam();
    const video::Video clip = testClip(112, 96, 5, content);
    Encoder encoder(cqpConfig(22, effort));
    const EncodeResult result = encoder.encode(clip);
    const auto decoded = decode(result.stream);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_GT(metrics::videoPsnr(clip, *decoded), 28.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllEffortsAndContents, EffortSweep,
    ::testing::Combine(::testing::Range(0, kNumEfforts),
                       ::testing::Values(video::ContentClass::Slideshow,
                                         video::ContentClass::Natural,
                                         video::ContentClass::Gaming,
                                         video::ContentClass::Noisy)));

/** Entropy backends must round-trip independently of effort. */
class EntropySweep : public ::testing::TestWithParam<int>
{
};

TEST_P(EntropySweep, BothBackendsRoundTrip)
{
    const video::Video clip = testClip();
    for (int qp : {12, 28, 40}) {
        EncoderConfig cfg = cqpConfig(qp, 4);
        cfg.entropy_override = GetParam();
        Encoder encoder(cfg);
        const EncodeResult result = encoder.encode(clip);
        const auto decoded = decode(result.stream);
        ASSERT_TRUE(decoded.has_value())
            << "entropy " << GetParam() << " qp " << qp;
        EXPECT_GT(metrics::videoPsnr(clip, *decoded), 22.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Backends, EntropySweep, ::testing::Values(0, 1));

TEST(RoundTrip, MultiReferenceHeaderAndDecode)
{
    // Effort 9 carries four reference frames: the header must say so
    // and the decoder must track the same list.
    const video::Video clip = testClip(128, 96, 10);
    EncoderConfig cfg = cqpConfig(24, 9);
    cfg.gop = 0;
    Encoder encoder(cfg);
    const EncodeResult result = encoder.encode(clip);

    size_t consumed = 0;
    const auto header = parseStreamHeader(result.stream.data(),
                                          result.stream.size(), consumed);
    ASSERT_TRUE(header.has_value());
    EXPECT_EQ(header->num_refs, 4u);
    EXPECT_EQ(header->entropy, EntropyMode::Arith);

    const auto decoded = decode(result.stream);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_GT(metrics::videoPsnr(clip, *decoded), 34.0);
}

TEST(RoundTrip, ArithmeticBeatsVlcOnBitrate)
{
    const video::Video clip = testClip(160, 128, 6);
    EncoderConfig vlc_cfg = cqpConfig(26, 5);
    vlc_cfg.entropy_override = static_cast<int>(EntropyMode::Vlc);
    EncoderConfig arith_cfg = cqpConfig(26, 5);
    arith_cfg.entropy_override = static_cast<int>(EntropyMode::Arith);
    const size_t vlc_bytes = Encoder(vlc_cfg).encode(clip).totalBytes();
    const size_t arith_bytes =
        Encoder(arith_cfg).encode(clip).totalBytes();
    EXPECT_LT(arith_bytes, vlc_bytes);
}

TEST(RoundTrip, DeblockOverrideRoundTrips)
{
    const video::Video clip = testClip();
    for (int deblock : {0, 1}) {
        EncoderConfig cfg = cqpConfig(36, 4);
        cfg.deblock_override = deblock;
        Encoder encoder(cfg);
        const auto decoded = decode(encoder.encode(clip).stream);
        ASSERT_TRUE(decoded.has_value()) << "deblock " << deblock;
        EXPECT_GT(metrics::videoPsnr(clip, *decoded), 24.0);
    }
}

TEST(RoundTrip, AbrHitsBitrateTarget)
{
    const video::Video clip = testClip(176, 144, 12);
    EncoderConfig cfg;
    cfg.rc.mode = RcMode::Abr;
    cfg.rc.bitrate_bps = 400e3;
    cfg.effort = 3;
    cfg.gop = 0;
    Encoder encoder(cfg);
    const EncodeResult result = encoder.encode(clip);
    const double actual_bps =
        result.totalBytes() * 8.0 / clip.duration();
    EXPECT_GT(actual_bps, 0.4 * cfg.rc.bitrate_bps);
    EXPECT_LT(actual_bps, 2.5 * cfg.rc.bitrate_bps);
    ASSERT_TRUE(decode(result.stream).has_value());
}

TEST(RoundTrip, TwoPassHitsBitrateTighterThanAbr)
{
    const video::Video clip = testClip(176, 144, 12,
                                       video::ContentClass::Sports);
    const double target = 600e3;

    EncoderConfig abr;
    abr.rc.mode = RcMode::Abr;
    abr.rc.bitrate_bps = target;
    abr.effort = 3;
    abr.gop = 0;
    const double abr_bps =
        Encoder(abr).encode(clip).totalBytes() * 8.0 / clip.duration();

    EncoderConfig two = abr;
    two.rc.mode = RcMode::TwoPass;
    const EncodeResult two_result = Encoder(two).encode(clip);
    const double two_bps =
        two_result.totalBytes() * 8.0 / clip.duration();

    EXPECT_LE(std::abs(two_bps - target) / target,
              std::abs(abr_bps - target) / target + 0.10);
    ASSERT_TRUE(decode(two_result.stream).has_value());
}

} // namespace
} // namespace vbench::codec
