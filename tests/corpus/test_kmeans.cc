/**
 * @file
 * Weighted k-means and benchmark-category selection tests (§4.1).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "corpus/coverage.h"
#include "corpus/generator.h"
#include "corpus/kmeans.h"

namespace vbench::corpus {
namespace {

std::vector<VideoCategory>
tinyCorpus()
{
    // Two well-separated blobs in feature space.
    std::vector<VideoCategory> corpus;
    for (int i = 0; i < 10; ++i) {
        VideoCategory a;
        a.kpixels = 100 + i;
        a.fps = 24;
        a.entropy = 0.2 + 0.01 * i;
        a.weight = 1.0;
        corpus.push_back(a);
        VideoCategory b;
        b.kpixels = 8000 + i;
        b.fps = 60;
        b.entropy = 8.0 + 0.1 * i;
        b.weight = 1.0;
        corpus.push_back(b);
    }
    return corpus;
}

TEST(Kmeans, SeparatesObviousBlobs)
{
    const auto corpus = tinyCorpus();
    KmeansConfig cfg;
    cfg.k = 2;
    const KmeansResult result =
        weightedKmeans(corpus, featureRange(corpus), cfg);
    // Members of the same blob share an assignment.
    for (size_t i = 2; i < corpus.size(); i += 2)
        EXPECT_EQ(result.assignment[i], result.assignment[0]);
    for (size_t i = 3; i < corpus.size(); i += 2)
        EXPECT_EQ(result.assignment[i], result.assignment[1]);
    EXPECT_NE(result.assignment[0], result.assignment[1]);
}

TEST(Kmeans, ConvergesAndReportsInertia)
{
    const auto corpus = generateCorpus();
    KmeansConfig cfg;
    cfg.k = 15;
    const KmeansResult result =
        weightedKmeans(corpus, featureRange(corpus), cfg);
    EXPECT_LE(result.iterations, cfg.max_iterations);
    EXPECT_GT(result.inertia, 0);
    EXPECT_EQ(result.centroids.size(), 15u);
    double mass = 0;
    for (double w : result.cluster_weight)
        mass += w;
    EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST(Kmeans, MoreClustersNeverRaiseInertia)
{
    const auto corpus = generateCorpus(
        CorpusConfig{.seed = 11, .target_categories = 800,
                     .entropy_sigma = 1.4});
    const FeatureRange range = featureRange(corpus);
    double prev = 1e30;
    for (int k : {2, 8, 15, 30}) {
        KmeansConfig cfg;
        cfg.k = k;
        const double inertia = weightedKmeans(corpus, range, cfg).inertia;
        EXPECT_LE(inertia, prev * 1.05) << "k " << k;
        prev = inertia;
    }
}

TEST(Kmeans, DeterministicInSeed)
{
    const auto corpus = generateCorpus();
    const FeatureRange range = featureRange(corpus);
    const KmeansResult a = weightedKmeans(corpus, range);
    const KmeansResult b = weightedKmeans(corpus, range);
    EXPECT_EQ(a.assignment, b.assignment);
}

TEST(Kmeans, WeightPullsCentroids)
{
    // Two points; all the weight on one of them. The single centroid
    // must sit essentially on the heavy point.
    std::vector<VideoCategory> corpus(2);
    corpus[0] = {400, 30, 1.0, 0.999};
    corpus[1] = {4000, 60, 10.0, 0.001};
    KmeansConfig cfg;
    cfg.k = 1;
    const FeatureRange range = featureRange(corpus);
    const KmeansResult result = weightedKmeans(corpus, range, cfg);
    const Features heavy = normalize(rawFeatures(corpus[0]), range);
    EXPECT_LT(distance2(result.centroids[0], heavy), 0.01);
}

TEST(Selection, ModeIsHeaviestMember)
{
    const auto corpus = tinyCorpus();
    KmeansConfig cfg;
    cfg.k = 2;
    KmeansResult result = weightedKmeans(corpus, featureRange(corpus),
                                         cfg);
    const auto modes = clusterModes(corpus, result);
    ASSERT_EQ(modes.size(), 2u);
    for (int m : modes) {
        ASSERT_GE(m, 0);
        // No member of the same cluster may outweigh the mode.
        for (size_t i = 0; i < corpus.size(); ++i) {
            if (result.assignment[i] == result.assignment[m]) {
                EXPECT_LE(corpus[i].weight, corpus[m].weight);
            }
        }
    }
}

TEST(Selection, FifteenRepresentativeCategories)
{
    const auto corpus = generateCorpus();
    const auto selected = selectBenchmarkCategories(corpus);
    EXPECT_EQ(selected.size(), 15u);
    // Representativeness: selected categories span resolutions and
    // entropy, like Table 2.
    std::set<int> resolutions;
    double lo = 1e9, hi = 0;
    for (const auto &c : selected) {
        resolutions.insert(c.kpixels);
        lo = std::min(lo, c.entropy);
        hi = std::max(hi, c.entropy);
    }
    EXPECT_GE(resolutions.size(), 3u);
    EXPECT_GT(hi / lo, 4.0);
}

TEST(Coverage, FullSetShape)
{
    const auto set = coverageSet();
    // 6 resolutions x 8 framerates x 11 entropy samples.
    EXPECT_EQ(set.size(), 6u * 8 * 11);
    std::set<std::string> names;
    for (const auto &spec : set)
        EXPECT_TRUE(names.insert(spec.name).second) << spec.name;
}

TEST(Coverage, ReducedSetSpansEntropyDecades)
{
    const auto set = coverageSetReduced();
    EXPECT_EQ(set.size(), 6u * 11);
    double lo = 1e9, hi = 0;
    for (const auto &spec : set) {
        lo = std::min(lo, spec.target_entropy);
        hi = std::max(hi, spec.target_entropy);
    }
    EXPECT_LT(lo, 0.05);
    EXPECT_GT(hi, 15.0);
}

} // namespace
} // namespace vbench::corpus
