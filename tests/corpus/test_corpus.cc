/**
 * @file
 * Corpus generator and feature normalization tests.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "corpus/generator.h"

namespace vbench::corpus {
namespace {

TEST(Corpus, GeneratesRequestedPopulation)
{
    CorpusConfig cfg;
    cfg.target_categories = 1000;
    const auto corpus = generateCorpus(cfg);
    EXPECT_EQ(corpus.size(), 1000u);
}

TEST(Corpus, WeightsAreNormalized)
{
    const auto corpus = generateCorpus();
    double total = 0;
    for (const auto &c : corpus) {
        EXPECT_GT(c.weight, 0);
        total += c.weight;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Corpus, DeterministicInSeed)
{
    const auto a = generateCorpus();
    const auto b = generateCorpus();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].kpixels, b[i].kpixels);
        EXPECT_DOUBLE_EQ(a[i].weight, b[i].weight);
    }
}

TEST(Corpus, CoversManyResolutionsAndFramerates)
{
    const auto corpus = generateCorpus();
    std::set<int> resolutions;
    std::set<int> framerates;
    for (const auto &c : corpus) {
        resolutions.insert(c.kpixels);
        framerates.insert(c.fps);
    }
    EXPECT_GE(resolutions.size(), 6u);
    EXPECT_GE(framerates.size(), 6u);
}

TEST(Corpus, EntropySpansOrdersOfMagnitude)
{
    const auto corpus = generateCorpus();
    double lo = 1e9, hi = 0;
    for (const auto &c : corpus) {
        lo = std::min(lo, c.entropy);
        hi = std::max(hi, c.entropy);
    }
    EXPECT_LT(lo, 0.3);
    EXPECT_GT(hi, 10.0);
    EXPECT_GT(hi / lo, 100.0);  // multiple decades
}

TEST(Corpus, LadderSharesSumToOne)
{
    double res_total = 0;
    for (const auto &step : resolutionLadder())
        res_total += step.share;
    EXPECT_NEAR(res_total, 1.0, 1e-9);
    double fps_total = 0;
    for (const auto &step : framerateMix())
        fps_total += step.share;
    EXPECT_NEAR(fps_total, 1.0, 1e-9);
}

TEST(Features, LogLinearization)
{
    VideoCategory c;
    c.kpixels = 2048;
    c.fps = 30;
    c.entropy = 8.0;
    const Features f = rawFeatures(c);
    EXPECT_DOUBLE_EQ(f.log_kpixels, 11.0);
    EXPECT_DOUBLE_EQ(f.log_entropy, 3.0);
}

TEST(Features, NormalizationMapsToUnitBox)
{
    const auto corpus = generateCorpus();
    const FeatureRange range = featureRange(corpus);
    for (const auto &c : corpus) {
        const Features f = normalize(rawFeatures(c), range);
        EXPECT_GE(f.log_kpixels, -1.0 - 1e-9);
        EXPECT_LE(f.log_kpixels, 1.0 + 1e-9);
        EXPECT_GE(f.fps, -1.0 - 1e-9);
        EXPECT_LE(f.fps, 1.0 + 1e-9);
        EXPECT_GE(f.log_entropy, -1.0 - 1e-9);
        EXPECT_LE(f.log_entropy, 1.0 + 1e-9);
    }
}

TEST(Features, Distance)
{
    Features a{0, 0, 0};
    Features b{1, 2, 2};
    EXPECT_DOUBLE_EQ(distance2(a, b), 9.0);
    EXPECT_DOUBLE_EQ(distance2(a, a), 0.0);
}

} // namespace
} // namespace vbench::corpus
