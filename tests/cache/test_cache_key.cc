/**
 * @file
 * Cache-key canonicalization (docs/CACHE.md): the KeyBuilder digest is
 * deterministic, prefix-free, and order-sensitive; and
 * SegmentJob::cacheKey() keys exactly the fields that determine the
 * encoded bytes — identity fields (request_id, rung name, scenario,
 * span ids, frame_threads) leave the key unchanged, every keyed field
 * flips it, and rc_in carries from different chain positions produce
 * different keys.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/cache.h"
#include "codec/preset.h"
#include "service/segment_job.h"

namespace {

using namespace vbench;

TEST(KeyBuilder, SameFieldsSameKey)
{
    cache::KeyBuilder a;
    a.u32(7).i32(-3).f64(1.5).str("rung").boolean(true);
    cache::KeyBuilder b;
    b.u32(7).i32(-3).f64(1.5).str("rung").boolean(true);
    EXPECT_EQ(a.finish(), b.finish());
}

TEST(KeyBuilder, AnyFieldChangeFlipsKey)
{
    cache::KeyBuilder base;
    base.u32(7).i32(-3).f64(1.5);
    cache::KeyBuilder changed;
    changed.u32(7).i32(-3).f64(1.5000001);
    EXPECT_NE(base.finish(), changed.finish());
}

TEST(KeyBuilder, FieldOrderMatters)
{
    cache::KeyBuilder ab;
    ab.u8(1).u8(2);
    cache::KeyBuilder ba;
    ba.u8(2).u8(1);
    EXPECT_NE(ab.finish(), ba.finish());
}

TEST(KeyBuilder, StringsArePrefixFree)
{
    // Without length prefixes "ab"+"c" and "a"+"bc" would collide.
    cache::KeyBuilder left;
    left.str("ab").str("c");
    cache::KeyBuilder right;
    right.str("a").str("bc");
    EXPECT_NE(left.finish(), right.finish());
}

TEST(KeyBuilder, SignedZeroCanonicalizes)
{
    cache::KeyBuilder pos;
    pos.f64(0.0);
    cache::KeyBuilder neg;
    neg.f64(-0.0);
    EXPECT_EQ(pos.finish(), neg.finish());
    cache::KeyBuilder one;
    one.f64(1.0);
    EXPECT_NE(pos.finish(), one.finish());
}

TEST(KeyBuilder, EmptyBuildersAgree)
{
    EXPECT_EQ(cache::KeyBuilder().finish(),
              cache::KeyBuilder().finish());
    EXPECT_NE(cache::KeyBuilder().finish().toString(), "");
}

service::SegmentJob
baselineJob()
{
    service::SegmentJob sj;
    sj.request_id = 42;
    sj.rung = "r0";
    sj.segment_index = 1;
    sj.scenario = core::Scenario::Upload;
    sj.input = {0x10, 0x20, 0x30, 0x40, 0x55};
    sj.params.kind = core::EncoderKind::Vbc;
    sj.params.rc.mode = codec::RcMode::Abr;
    sj.params.rc.bitrate_bps = 300'000;
    sj.params.effort = 3;
    sj.params.gop = 30;
    sj.params.segment_frames = 8;
    codec::RcSnapshot carry;
    carry.spent_bits = 12345;
    carry.planned_bits = 15000;
    carry.frames_done = 8;
    sj.params.rc_in = carry;
    return sj;
}

TEST(SegmentJobKey, Deterministic)
{
    EXPECT_EQ(baselineJob().cacheKey(), baselineJob().cacheKey());
}

TEST(SegmentJobKey, IdentityFieldsDoNotAffectKey)
{
    const cache::CacheKey base = baselineJob().cacheKey();

    service::SegmentJob sj = baselineJob();
    sj.request_id = 777;
    EXPECT_EQ(base, sj.cacheKey());

    sj = baselineJob();
    sj.rung = "some_other_rung";
    EXPECT_EQ(base, sj.cacheKey());

    sj = baselineJob();
    sj.scenario = core::Scenario::Popular;
    EXPECT_EQ(base, sj.cacheKey());

    // Span ids are per-request trace identity, not content.
    sj = baselineJob();
    sj.params.span = obs::SpanContext::newTrace();
    EXPECT_EQ(base, sj.cacheKey());

    // Streams are byte-identical at every wavefront width
    // (tests/codec/test_frame_threads.cc), so the width is excluded.
    sj = baselineJob();
    sj.params.frame_threads = 4;
    EXPECT_EQ(base, sj.cacheKey());
}

TEST(SegmentJobKey, KeyedFieldsFlipKey)
{
    const cache::CacheKey base = baselineJob().cacheKey();
    std::vector<cache::CacheKey> keys;

    service::SegmentJob sj = baselineJob();
    sj.segment_index = 2;
    keys.push_back(sj.cacheKey());

    sj = baselineJob();
    sj.input.push_back(0x99);
    keys.push_back(sj.cacheKey());

    sj = baselineJob();
    sj.input[0] ^= 1;
    keys.push_back(sj.cacheKey());

    sj = baselineJob();
    sj.params.kind = core::EncoderKind::NgcHevc;
    keys.push_back(sj.cacheKey());

    sj = baselineJob();
    sj.params.rc.mode = codec::RcMode::TwoPass;
    keys.push_back(sj.cacheKey());

    sj = baselineJob();
    sj.params.rc.qp = 31;
    keys.push_back(sj.cacheKey());

    sj = baselineJob();
    sj.params.rc.crf = 24.0;
    keys.push_back(sj.cacheKey());

    sj = baselineJob();
    sj.params.rc.bitrate_bps = 400'000;
    keys.push_back(sj.cacheKey());

    sj = baselineJob();
    sj.params.rc.fps = 24.0;
    keys.push_back(sj.cacheKey());

    sj = baselineJob();
    sj.params.rc.pixels_per_frame = 6144;
    keys.push_back(sj.cacheKey());

    sj = baselineJob();
    sj.params.rc.min_qp += 1;
    keys.push_back(sj.cacheKey());

    sj = baselineJob();
    sj.params.rc.ip_qp_offset += 1;
    keys.push_back(sj.cacheKey());

    sj = baselineJob();
    sj.params.effort = 5;
    keys.push_back(sj.cacheKey());

    sj = baselineJob();
    sj.params.ngc_speed = 1;
    keys.push_back(sj.cacheKey());

    sj = baselineJob();
    sj.params.gop = 60;
    keys.push_back(sj.cacheKey());

    sj = baselineJob();
    sj.params.entropy_override = 1;
    keys.push_back(sj.cacheKey());

    sj = baselineJob();
    sj.params.deblock_override = 0;
    keys.push_back(sj.cacheKey());

    sj = baselineJob();
    sj.params.tools_override = codec::presetForEffort(3);
    keys.push_back(sj.cacheKey());

    sj = baselineJob();
    sj.params.tools_override = codec::presetForEffort(3);
    sj.params.tools_override->refs += 1;
    keys.push_back(sj.cacheKey());

    // Entropy slices change the emitted bytes (reset contexts, length
    // prefixes), so each slice configuration is a distinct identity.
    sj = baselineJob();
    sj.params.slice_count = 2;
    keys.push_back(sj.cacheKey());

    sj = baselineJob();
    sj.params.segment_frames = 4;
    keys.push_back(sj.cacheKey());

    sj = baselineJob();
    sj.params.rc_in.reset();
    keys.push_back(sj.cacheKey());

    sj = baselineJob();
    sj.params.rc_in->spent_bits += 1;
    keys.push_back(sj.cacheKey());

    sj = baselineJob();
    sj.params.rc_in->planned_bits += 1;
    keys.push_back(sj.cacheKey());

    sj = baselineJob();
    sj.params.rc_in->frames_done += 1;
    keys.push_back(sj.cacheKey());

    // Every variant differs from the baseline AND from each other (a
    // pairwise collision would alias two distinct transcodes).
    for (size_t i = 0; i < keys.size(); ++i) {
        EXPECT_NE(base, keys[i]) << "variant " << i;
        for (size_t j = i + 1; j < keys.size(); ++j)
            EXPECT_NE(keys[i], keys[j]) << i << " vs " << j;
    }
}

TEST(SegmentJobKey, ChainPositionsKeyDifferently)
{
    // The same rung's segment k with the carry from position k-1
    // differs from the same segment keyed with a later chain state:
    // rc_in is part of the transcode identity.
    service::SegmentJob early = baselineJob();
    early.params.rc_in->spent_bits = 1000;
    early.params.rc_in->frames_done = 8;
    service::SegmentJob late = baselineJob();
    late.params.rc_in->spent_bits = 9000;
    late.params.rc_in->frames_done = 16;
    EXPECT_NE(early.cacheKey(), late.cacheKey());

    // A fresh start (no carry) differs from a zeroed carry: "absent"
    // and "present with default fields" are different encodes.
    service::SegmentJob fresh = baselineJob();
    fresh.params.rc_in.reset();
    service::SegmentJob zeroed = baselineJob();
    zeroed.params.rc_in = codec::RcSnapshot{};
    EXPECT_NE(fresh.cacheKey(), zeroed.cacheKey());
}

} // namespace
