/**
 * @file
 * TranscodeCache unit tests: hit/miss bookkeeping, the four
 * store-vs-recompute policies, EWMA popularity decay, ghost records,
 * capacity eviction, the retention sweep, and the dollar accounting
 * (storage rent accrual, compute spend, hit savings) — all driven on
 * an explicit simulated clock.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "cache/cache.h"

namespace {

using namespace vbench;

cache::CacheKey
key(uint64_t n)
{
    cache::KeyBuilder kb;
    kb.u64(n);
    return kb.finish();
}

cache::CachedSegment
segment(size_t bytes, double encode_seconds = 1.0)
{
    cache::CachedSegment s;
    s.stream.assign(bytes, 0xAB);
    s.rc_out.spent_bits = 100;
    s.rc_out.frames_done = 8;
    s.encode_seconds = encode_seconds;
    s.psnr_db = 35.0;
    return s;
}

cache::CacheConfig
config(cache::CachePolicy policy, size_t capacity = 1 << 20)
{
    cache::CacheConfig c;
    c.policy = policy;
    c.capacity_bytes = capacity;
    c.popularity_tau_s = 10.0;
    return c;
}

TEST(CachePolicyNames, RoundTrip)
{
    for (int i = 0; i < cache::kNumCachePolicies; ++i) {
        const auto policy = static_cast<cache::CachePolicy>(i);
        const auto parsed =
            cache::parseCachePolicyName(cache::policyName(policy));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, policy);
    }
    EXPECT_FALSE(cache::parseCachePolicyName("nope").has_value());
}

TEST(TranscodeCache, MissThenStoreThenHit)
{
    cache::TranscodeCache tc(config(cache::CachePolicy::AlwaysStore));
    EXPECT_FALSE(tc.lookup(key(1), 0.0).has_value());
    tc.insert(key(1), segment(100), 0.0);
    const auto got = tc.lookup(key(1), 1.0);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->stream, segment(100).stream);
    EXPECT_EQ(got->rc_out.spent_bits, 100);
    EXPECT_EQ(got->rc_out.frames_done, 8);

    const cache::CacheStats s = tc.stats(1.0);
    EXPECT_EQ(s.lookups, 2u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.admitted, 1u);
    EXPECT_EQ(s.resident_entries, 1u);
    EXPECT_EQ(s.resident_bytes, 100u);
    EXPECT_DOUBLE_EQ(s.hitRate(), 0.5);
}

TEST(TranscodeCache, AlwaysRecomputeNeverStores)
{
    cache::TranscodeCache tc(
        config(cache::CachePolicy::AlwaysRecompute));
    tc.insert(key(1), segment(100), 0.0);
    EXPECT_FALSE(tc.lookup(key(1), 0.5).has_value());
    const cache::CacheStats s = tc.stats(1.0);
    EXPECT_EQ(s.inserts, 1u);
    EXPECT_EQ(s.rejected, 1u);
    EXPECT_EQ(s.resident_bytes, 0u);
    // The insert still accounts the encode the miss already paid for.
    EXPECT_GT(s.compute_dollars, 0);
    EXPECT_DOUBLE_EQ(s.storage_dollars, 0);
}

TEST(TranscodeCache, OversizeAndEmptyEntriesAreRejected)
{
    cache::TranscodeCache tc(
        config(cache::CachePolicy::AlwaysStore, /*capacity=*/500));
    tc.insert(key(1), segment(501), 0.0);
    tc.insert(key(2), segment(0), 0.0);
    const cache::CacheStats s = tc.stats(0.0);
    EXPECT_EQ(s.rejected, 2u);
    EXPECT_EQ(s.resident_bytes, 0u);
}

TEST(TranscodeCache, LruEvictsLeastRecentlyUsed)
{
    cache::TranscodeCache tc(
        config(cache::CachePolicy::Lru, /*capacity=*/250));
    tc.insert(key(1), segment(100), 0.0);
    tc.insert(key(2), segment(100), 1.0);
    // Touch 1 so 2 becomes the LRU victim.
    EXPECT_TRUE(tc.lookup(key(1), 2.0).has_value());
    tc.insert(key(3), segment(100), 3.0);
    EXPECT_TRUE(tc.lookup(key(1), 4.0).has_value());
    EXPECT_FALSE(tc.lookup(key(2), 4.0).has_value());
    EXPECT_TRUE(tc.lookup(key(3), 4.0).has_value());
    EXPECT_EQ(tc.stats(4.0).evictions, 1u);
}

TEST(TranscodeCache, CostAwareRejectsSingleTouchKeys)
{
    cache::TranscodeCache tc(config(cache::CachePolicy::CostAware));
    // One miss -> ghost popularity ~1 < admit_min_popularity (1.5).
    EXPECT_FALSE(tc.lookup(key(1), 0.0).has_value());
    tc.insert(key(1), segment(100), 0.0);
    EXPECT_EQ(tc.stats(0.0).rejected, 1u);
    EXPECT_EQ(tc.residentBytes(), 0u);

    // A second encounter within ~tau pushes the ghost past the floor;
    // the re-encode is expensive relative to rent, so it admits.
    EXPECT_FALSE(tc.lookup(key(1), 1.0).has_value());
    tc.insert(key(1), segment(100), 1.0);
    EXPECT_EQ(tc.stats(1.0).admitted, 1u);
    EXPECT_TRUE(tc.lookup(key(1), 2.0).has_value());
}

TEST(TranscodeCache, CostAwareRejectsWhenRentExceedsSavings)
{
    cache::CacheConfig c = config(cache::CachePolicy::CostAware);
    // Absurd storage price: even a popular entry cannot pay rent.
    c.storage_dollars_per_gb_hour = 1e9;
    cache::TranscodeCache tc(c);
    for (int i = 0; i < 4; ++i)
        EXPECT_FALSE(tc.lookup(key(1), i * 0.25).has_value());
    tc.insert(key(1), segment(100), 1.0);
    EXPECT_EQ(tc.stats(1.0).admitted, 0u);
    EXPECT_EQ(tc.stats(1.0).rejected, 1u);
}

TEST(TranscodeCache, PopularityDecaysOverTau)
{
    cache::CacheConfig c = config(cache::CachePolicy::CostAware);
    c.popularity_tau_s = 1.0;
    cache::TranscodeCache tc(c);
    // Two touches far apart: by the second one the first has decayed
    // to ~e^-20, so the ghost sits under the admission floor.
    EXPECT_FALSE(tc.lookup(key(1), 0.0).has_value());
    EXPECT_FALSE(tc.lookup(key(1), 20.0).has_value());
    tc.insert(key(1), segment(100), 20.0);
    EXPECT_EQ(tc.stats(20.0).admitted, 0u);
}

TEST(TranscodeCache, SweepDropsEntriesWhoseValueDecayed)
{
    cache::CacheConfig c = config(cache::CachePolicy::CostAware);
    c.popularity_tau_s = 1.0;
    // Rent high enough that a decayed entry goes net-negative, low
    // enough that a fresh two-touch entry is worth keeping:
    // savings rate at admit ~= 2 * reencode$ / tau, rent must sit
    // below that but above the near-zero decayed savings.
    cache::TranscodeCache probe(c);
    const double reencode = probe.reencodeDollars(1.0);
    c.storage_dollars_per_gb_hour =
        0.5 * reencode / (100.0 / 1e9) * 3600.0;
    cache::TranscodeCache tc(c);

    EXPECT_FALSE(tc.lookup(key(1), 0.0).has_value());
    EXPECT_FALSE(tc.lookup(key(1), 0.1).has_value());
    tc.insert(key(1), segment(100), 0.1);
    ASSERT_EQ(tc.stats(0.1).admitted, 1u);

    tc.sweep(0.2);
    EXPECT_EQ(tc.residentBytes(), 100u);  // still worth the rent
    tc.sweep(50.0);  // popularity ~0: rent now exceeds savings
    EXPECT_EQ(tc.residentBytes(), 0u);
    EXPECT_EQ(tc.stats(50.0).evictions, 1u);
}

TEST(TranscodeCache, GhostPopularitySurvivesEviction)
{
    cache::CacheConfig c = config(cache::CachePolicy::CostAware,
                                  /*capacity=*/150);
    cache::TranscodeCache tc(c);
    // Make key 1 popular and resident.
    for (int i = 0; i < 3; ++i)
        EXPECT_FALSE(tc.lookup(key(1), i * 0.1).has_value());
    tc.insert(key(1), segment(100), 0.3);
    ASSERT_EQ(tc.stats(0.3).admitted, 1u);
    // Make key 2 even more popular; capacity forces one out.
    for (int i = 0; i < 6; ++i)
        EXPECT_FALSE(tc.lookup(key(2), 0.3 + i * 0.1).has_value());
    tc.insert(key(2), segment(100), 1.0);
    EXPECT_EQ(tc.stats(1.0).evictions, 1u);
    // The evicted key's popularity memory lets it re-admit on its
    // next encounter instead of starting cold.
    const uint64_t admitted_before = tc.stats(1.0).admitted;
    EXPECT_FALSE(tc.lookup(key(1), 1.1).has_value());
    tc.insert(key(1), segment(100), 1.1);
    EXPECT_EQ(tc.stats(1.1).admitted, admitted_before + 1);
}

TEST(TranscodeCache, DollarAccounting)
{
    cache::CacheConfig c = config(cache::CachePolicy::AlwaysStore);
    c.storage_dollars_per_gb_hour = 3600.0;  // $1/GB-second
    cache::TranscodeCache tc(c);
    const double reencode = tc.reencodeDollars(2.0);
    EXPECT_GT(reencode, 0);
    EXPECT_DOUBLE_EQ(tc.reencodeDollars(4.0), 2.0 * reencode);

    tc.insert(key(1), segment(1000, /*encode_seconds=*/2.0), 0.0);
    // 10 seconds of rent on 1000 bytes at $1/GB-second.
    const cache::CacheStats s = tc.stats(10.0);
    EXPECT_NEAR(s.storage_dollars, 10.0 * 1000.0 / 1e9, 1e-12);
    EXPECT_DOUBLE_EQ(s.compute_dollars, reencode);
    EXPECT_DOUBLE_EQ(s.saved_dollars, 0);
    EXPECT_DOUBLE_EQ(s.totalDollars(),
                     s.storage_dollars + s.compute_dollars);

    // A hit saves one re-encode.
    ASSERT_TRUE(tc.lookup(key(1), 10.0).has_value());
    EXPECT_DOUBLE_EQ(tc.stats(10.0).saved_dollars, reencode);
}

TEST(TranscodeCache, ClockNeverRewinds)
{
    cache::CacheConfig c = config(cache::CachePolicy::AlwaysStore);
    c.storage_dollars_per_gb_hour = 3600.0;
    cache::TranscodeCache tc(c);
    tc.insert(key(1), segment(1000), 0.0);
    const double at_10 = tc.stats(10.0).storage_dollars;
    // A caller restarting its run clock at 0 freezes accrual instead
    // of rewinding or double-charging it.
    EXPECT_DOUBLE_EQ(tc.stats(0.0).storage_dollars, at_10);
    EXPECT_DOUBLE_EQ(tc.stats(5.0).storage_dollars, at_10);
    EXPECT_GT(tc.stats(11.0).storage_dollars, at_10);
}

TEST(TranscodeCache, GaugeAccessors)
{
    cache::TranscodeCache tc(config(cache::CachePolicy::AlwaysStore));
    EXPECT_EQ(tc.residentBytes(), 0u);
    EXPECT_DOUBLE_EQ(tc.hitRate(), 0.0);
    tc.insert(key(1), segment(100), 0.0);
    EXPECT_EQ(tc.residentBytes(), 100u);
    EXPECT_FALSE(tc.lookup(key(2), 0.5).has_value());
    EXPECT_TRUE(tc.lookup(key(1), 1.0).has_value());
    EXPECT_DOUBLE_EQ(tc.hitRate(), 0.5);
}

TEST(TranscodeCache, GhostTableStaysBounded)
{
    cache::CacheConfig c = config(cache::CachePolicy::CostAware);
    c.ghost_capacity = 8;
    cache::TranscodeCache tc(c);
    for (uint64_t i = 0; i < 100; ++i)
        EXPECT_FALSE(tc.lookup(key(i), i * 0.01).has_value());
    // No way to observe the ghost table directly; the bound is that
    // old ghosts were dropped, so an early key starts cold again.
    tc.insert(key(0), segment(100), 1.0);
    EXPECT_EQ(tc.stats(1.0).admitted, 0u);
    // A recent key's ghost is still warm.
    EXPECT_FALSE(tc.lookup(key(99), 1.0).has_value());
    tc.insert(key(99), segment(100), 1.0);
    EXPECT_EQ(tc.stats(1.0).admitted, 1u);
}

} // namespace
