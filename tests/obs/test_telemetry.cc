/**
 * @file
 * Telemetry sampler, Prometheus exposition writer/validator, exemplar
 * store, and the global-fallback attribution guard.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <vector>

#include "obs/exemplar.h"
#include "obs/obs.h"
#include "obs/telemetry.h"

namespace vbench::obs {
namespace {

TEST(TelemetrySampler, StopGuaranteesOnePointPerGauge)
{
    TelemetrySampler::Config config;
    config.interval_s = 3600.0;  // never ticks on its own
    TelemetrySampler sampler(config);
    sampler.addGauge("a", [] { return 1.0; });
    sampler.addGauge("b", [] { return 2.0; });
    sampler.start();
    sampler.stop();
    const std::vector<TelemetrySeries> series = sampler.snapshot();
    ASSERT_EQ(series.size(), 2u);
    for (const TelemetrySeries &s : series)
        EXPECT_GE(s.points.size(), 1u) << s.name;
    EXPECT_DOUBLE_EQ(series[0].last(), 1.0);
    EXPECT_DOUBLE_EQ(series[1].last(), 2.0);
}

TEST(TelemetrySampler, NeverStartedStopStillSamples)
{
    TelemetrySampler sampler;
    sampler.addGauge("x", [] { return 7.0; });
    sampler.stop();
    const std::vector<TelemetrySeries> series = sampler.snapshot();
    ASSERT_EQ(series.size(), 1u);
    ASSERT_EQ(series[0].points.size(), 1u);
    EXPECT_DOUBLE_EQ(series[0].points[0].value, 7.0);
}

TEST(TelemetrySampler, RingBoundsRetentionOldestFirst)
{
    TelemetrySampler::Config config;
    config.ring_capacity = 4;
    TelemetrySampler sampler(config);
    std::atomic<int> tick{0};
    sampler.addGauge("seq", [&tick] {
        return static_cast<double>(tick.fetch_add(1));
    });
    for (int i = 0; i < 10; ++i)
        sampler.sampleOnce();
    const std::vector<TelemetrySeries> series = sampler.snapshot();
    ASSERT_EQ(series.size(), 1u);
    const TelemetrySeries &s = series[0];
    // Only the last 4 of 10 samples survive, in recording order.
    ASSERT_EQ(s.points.size(), 4u);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(s.points[i].value, static_cast<double>(6 + i));
    EXPECT_DOUBLE_EQ(s.last(), 9.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(TelemetrySampler, BackgroundThreadTicks)
{
    TelemetrySampler::Config config;
    config.interval_s = 0.001;
    TelemetrySampler sampler(config);
    sampler.addGauge("v", [] { return 1.0; });
    sampler.start();
    EXPECT_TRUE(sampler.running());
    while (sampler.tickCount() < 3) {
    }
    sampler.stop();
    EXPECT_FALSE(sampler.running());
    sampler.stop();  // idempotent
    EXPECT_GE(sampler.snapshot()[0].points.size(), 3u);
}

TEST(Prom, NameMapping)
{
    EXPECT_EQ(promName("service.queue_depth"),
              "vbench_service_queue_depth");
    EXPECT_EQ(promName("a-b c!d"), "vbench_a_b_cd");
}

TEST(Prom, WriteTextValidatesAndCarriesEverySource)
{
    MetricsRegistry metrics;
    metrics.counter("svc.requests").add(3);
    for (uint64_t v = 1; v <= 100; ++v)
        metrics.histogram("svc.latency_us").observe(v);
    std::vector<TelemetrySeries> series(1);
    series[0].name = "svc.queue_depth";
    series[0].points.push_back(TelemetryPoint{1, 5.0});

    std::ostringstream out;
    writePromText(out, &metrics, series);
    const std::string text = out.str();
    std::string error;
    EXPECT_TRUE(validatePromText(text, &error)) << error;
    EXPECT_NE(text.find("# TYPE vbench_svc_requests counter"),
              std::string::npos);
    EXPECT_NE(text.find("vbench_svc_requests_total 3"),
              std::string::npos);
    EXPECT_NE(text.find("vbench_svc_latency_us{quantile=\"0.99\"}"),
              std::string::npos);
    EXPECT_NE(text.find("vbench_svc_latency_us_count 100"),
              std::string::npos);
    EXPECT_NE(text.find("vbench_svc_queue_depth 5"), std::string::npos);
    EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);
}

TEST(Prom, ValidatorRejectsMalformedExpositions)
{
    std::string error;
    EXPECT_FALSE(validatePromText("", &error));
    // Missing trailing # EOF.
    EXPECT_FALSE(validatePromText(
        "# TYPE vbench_x counter\nvbench_x_total 1\n", &error));
    // Sample without a TYPE declaration.
    EXPECT_FALSE(
        validatePromText("vbench_x_total 1\n# EOF\n", &error));
    EXPECT_NE(error.find("TYPE"), std::string::npos);
    // Malformed value.
    EXPECT_FALSE(validatePromText(
        "# TYPE vbench_x counter\nvbench_x_total banana\n# EOF\n",
        &error));
    // Unterminated label set.
    EXPECT_FALSE(validatePromText(
        "# TYPE vbench_x gauge\nvbench_x{q=\"0.5 1\n# EOF\n", &error));
    // Bad metric name.
    EXPECT_FALSE(validatePromText(
        "# TYPE 9bad counter\n9bad_total 1\n# EOF\n", &error));
    // A correct exposition with labels and a timestamp passes.
    EXPECT_TRUE(validatePromText("# TYPE vbench_x summary\n"
                                 "vbench_x{quantile=\"0.5\"} 1.5 123\n"
                                 "vbench_x_sum 3\n"
                                 "vbench_x_count 2\n"
                                 "# EOF\n",
                                 &error))
        << error;
}

TEST(ExemplarStore, KeepsTheKLargest)
{
    ExemplarStore store(3);
    for (uint64_t i = 1; i <= 10; ++i) {
        Exemplar e;
        e.trace_id = i;
        e.latency_ms = static_cast<double>(i);
        store.record(std::move(e));
    }
    EXPECT_EQ(store.size(), 3u);
    const std::vector<Exemplar> sorted = store.sortedDesc();
    ASSERT_EQ(sorted.size(), 3u);
    EXPECT_DOUBLE_EQ(sorted[0].latency_ms, 10.0);
    EXPECT_DOUBLE_EQ(sorted[1].latency_ms, 9.0);
    EXPECT_DOUBLE_EQ(sorted[2].latency_ms, 8.0);
}

TEST(ExemplarStore, AtOrAboveFiltersByCut)
{
    ExemplarStore store(8);
    for (uint64_t i = 1; i <= 6; ++i) {
        Exemplar e;
        e.trace_id = i;
        e.latency_ms = static_cast<double>(i);
        store.record(std::move(e));
    }
    const std::vector<Exemplar> slow = store.atOrAbove(4.0);
    ASSERT_EQ(slow.size(), 3u);
    EXPECT_DOUBLE_EQ(slow.front().latency_ms, 6.0);
    EXPECT_DOUBLE_EQ(slow.back().latency_ms, 4.0);
    EXPECT_TRUE(store.atOrAbove(100.0).empty());
}

TEST(CriticalPath, TotalSumsEveryStage)
{
    CriticalPath path;
    path.queue_wait_ms = 1;
    path.rc_chain_ms = 2;
    path.encode_ms = 3;
    path.stitch_ms = 4;
    EXPECT_DOUBLE_EQ(path.total_ms(), 10.0);
}

TEST(GlobalAttributionGuard, DetectsOverlappingClaims)
{
    const uint64_t before =
        globalMetrics().counter("obs.fallback_contended").value();
    {
        GlobalAttributionGuard first(true);
        EXPECT_FALSE(first.contended());
        EXPECT_EQ(GlobalAttributionGuard::activeClaimants(), 1);
        GlobalAttributionGuard second(true);
        EXPECT_TRUE(second.contended());
        GlobalAttributionGuard inactive(false);
        EXPECT_FALSE(inactive.contended());
    }
    EXPECT_EQ(GlobalAttributionGuard::activeClaimants(), 0);
    EXPECT_EQ(globalMetrics().counter("obs.fallback_contended").value(),
              before + 1);
}

} // namespace
} // namespace vbench::obs
