/**
 * @file
 * Tracer unit tests: span accumulation with synthetic timestamps,
 * frame-commit tiling, Chrome trace JSON round-trips, and the
 * disabled-mode zero-allocation contract.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>

#include "obs/json_parse.h"
#include "obs/trace.h"

// ---------------------------------------------------------------------
// Counting global allocator: every operator new in the process bumps
// g_allocs while counting is on. The disabled-mode test brackets the
// null-sink fast path with it to prove that path never allocates.
// ---------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_allocs{0};
std::atomic<bool> g_counting{false};

void *
countedAlloc(std::size_t size)
{
    if (g_counting.load(std::memory_order_relaxed))
        g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size == 0 ? 1 : size))
        return p;
    throw std::bad_alloc();
}
} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace vbench::obs {
namespace {

TEST(Stage, LeafPartitionStartsAtFrameSetup)
{
    EXPECT_FALSE(isLeafStage(Stage::DecodeInput));
    EXPECT_FALSE(isLeafStage(Stage::Encode));
    EXPECT_FALSE(isLeafStage(Stage::HwPipeline));
    EXPECT_TRUE(isLeafStage(Stage::FrameSetup));
    EXPECT_TRUE(isLeafStage(Stage::DecodeFrame));
    EXPECT_TRUE(isLeafStage(Stage::Other));
}

TEST(Stage, EveryStageAndTrackHasAName)
{
    for (int i = 0; i < kNumStages; ++i) {
        const std::string name = toString(static_cast<Stage>(i));
        EXPECT_FALSE(name.empty());
        EXPECT_NE(name, "unknown");
    }
    for (int t = 0; t < kNumTracks; ++t) {
        const std::string name = toString(static_cast<Track>(t));
        EXPECT_FALSE(name.empty());
        EXPECT_NE(name, "unknown");
    }
}

TEST(Tracer, SpansAccumulateIntoLeafTotals)
{
    Tracer tracer;
    tracer.addSpan(Track::Decode, Stage::DecodeFrame, 0, 1000, 4000);
    tracer.addSpan(Track::Decode, Stage::DecodeFrame, 1, 4000, 9000);
    // Phase spans are events but never leaf totals.
    tracer.addSpan(Track::Transcode, Stage::Encode, -1, 0, 100000);

    EXPECT_EQ(tracer.eventCount(), 3u);
    const StageTotals totals = tracer.stageTotals();
    EXPECT_DOUBLE_EQ(totals.get(Stage::DecodeFrame), 8000e-9);
    EXPECT_DOUBLE_EQ(totals.get(Stage::Encode), 0.0);
    EXPECT_DOUBLE_EQ(totals.leafSeconds(), 8000e-9);
}

TEST(Tracer, BackwardsClockClampsToZeroDuration)
{
    Tracer tracer;
    tracer.addSpan(Track::Decode, Stage::DecodeFrame, 0, 500, 400);
    EXPECT_EQ(tracer.eventCount(), 1u);
    EXPECT_DOUBLE_EQ(tracer.stageTotals().leafSeconds(), 0.0);
}

TEST(Tracer, AddFrameChildrenTileTheFrameWindow)
{
    Tracer tracer;
    StageAccum accum;
    accum.add(Stage::MotionEstimation, 300);
    accum.add(Stage::TransformQuant, 200);
    tracer.addFrame(Track::VbcEncode, 0, 5000, 6000, accum);

    // Parent frame span + two stage children + the `other` filler.
    EXPECT_EQ(tracer.eventCount(), 4u);
    const StageTotals totals = tracer.stageTotals();
    EXPECT_DOUBLE_EQ(totals.get(Stage::MotionEstimation), 300e-9);
    EXPECT_DOUBLE_EQ(totals.get(Stage::TransformQuant), 200e-9);
    EXPECT_DOUBLE_EQ(totals.get(Stage::Other), 500e-9);
    // The tiling invariant: leaf children sum exactly to the frame.
    EXPECT_DOUBLE_EQ(totals.leafSeconds(), 1000e-9);
}

TEST(Tracer, AddFrameClampsOverAttribution)
{
    // Accumulated stage time exceeding the frame window (clock skew,
    // rounding) must clamp: no negative `other`, leaf sum == frame.
    Tracer tracer;
    StageAccum accum;
    accum.add(Stage::MotionEstimation, 800);
    accum.add(Stage::TransformQuant, 400);
    tracer.addFrame(Track::VbcEncode, 7, 0, 1000, accum);

    const StageTotals totals = tracer.stageTotals();
    EXPECT_DOUBLE_EQ(totals.leafSeconds(), 1000e-9);
    EXPECT_DOUBLE_EQ(totals.get(Stage::MotionEstimation), 800e-9);
    EXPECT_DOUBLE_EQ(totals.get(Stage::TransformQuant), 200e-9);
    EXPECT_DOUBLE_EQ(totals.get(Stage::Other), 0.0);
}

TEST(Tracer, MultipleFramesAccumulate)
{
    Tracer tracer;
    StageAccum accum;
    accum.add(Stage::EntropyCoding, 250);
    tracer.addFrame(Track::NgcEncode, 0, 0, 1000, accum);
    tracer.addFrame(Track::NgcEncode, 1, 1000, 2000, accum);
    const StageTotals totals = tracer.stageTotals();
    EXPECT_DOUBLE_EQ(totals.get(Stage::EntropyCoding), 500e-9);
    EXPECT_DOUBLE_EQ(totals.leafSeconds(), 2000e-9);
}

TEST(Tracer, ClearDropsEventsAndTotals)
{
    Tracer tracer;
    tracer.addSpan(Track::Decode, Stage::DecodeFrame, 0, 0, 100);
    tracer.clear();
    EXPECT_EQ(tracer.eventCount(), 0u);
    EXPECT_DOUBLE_EQ(tracer.stageTotals().leafSeconds(), 0.0);
}

TEST(Tracer, ScopedSpanRecordsOnDestruction)
{
    Tracer tracer;
    {
        ScopedSpan span(&tracer, Track::Transcode, Stage::Measure);
        EXPECT_EQ(tracer.eventCount(), 0u);
    }
    EXPECT_EQ(tracer.eventCount(), 1u);
}

TEST(Tracer, ScopedStageAccumulates)
{
    StageAccum accum;
    {
        ScopedStage stage(&accum, Stage::Deblock);
    }
    // A closed scope always contributes (possibly zero) time, and only
    // to its own stage.
    for (int i = 0; i < kNumStages; ++i) {
        if (static_cast<Stage>(i) != Stage::Deblock) {
            EXPECT_EQ(accum.ns[i], 0u);
        }
    }
    EXPECT_EQ(accum.total(), accum.ns[static_cast<int>(Stage::Deblock)]);
}

TEST(Tracer, ChromeTraceRoundTripsThroughAParser)
{
    Tracer tracer;
    tracer.addSpan(Track::Transcode, Stage::DecodeInput, -1, 2000, 9000);
    StageAccum accum;
    accum.add(Stage::ModeDecision, 4000);
    tracer.addFrame(Track::VbcEncode, 3, 2000, 12000, accum);

    std::ostringstream ss;
    tracer.writeChromeTrace(ss);
    const auto doc = testjson::parse(ss.str());
    ASSERT_TRUE(doc.has_value()) << ss.str();
    const testjson::Value *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    // kNumTracks thread_name records + phase + frame + child + other.
    ASSERT_EQ(events->array.size(),
              static_cast<size_t>(kNumTracks) + 4u);

    size_t frames = 0, stages = 0, phases = 0, meta = 0;
    for (const testjson::Value &e : events->array) {
        const testjson::Value *ph = e.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->string == "M") {
            ++meta;
            continue;
        }
        EXPECT_EQ(ph->string, "X");
        const testjson::Value *cat = e.find("cat");
        ASSERT_NE(cat, nullptr);
        if (cat->string == "frame")
            ++frames;
        else if (cat->string == "stage")
            ++stages;
        else if (cat->string == "phase")
            ++phases;
        // Timestamps are rebased to the earliest event.
        const testjson::Value *ts = e.find("ts");
        ASSERT_NE(ts, nullptr);
        EXPECT_GE(ts->number, 0.0);
    }
    EXPECT_EQ(meta, static_cast<size_t>(kNumTracks));
    EXPECT_EQ(frames, 1u);
    EXPECT_EQ(stages, 2u);  // mode_decision child + other filler
    EXPECT_EQ(phases, 1u);
}

TEST(Tracer, ScopesAndFlowsRecordMergeAndClear)
{
    Tracer worker;
    const SpanContext root = SpanContext::newTrace();
    const SpanContext child = root.child();
    EXPECT_EQ(child.trace_id, root.trace_id);
    EXPECT_EQ(child.parent_id, root.span_id);

    ScopeEvent scope;
    scope.name = "encode";
    scope.span = child;
    scope.tid = workerTid(0);
    scope.start_ns = 1000;
    scope.dur_ns = 500;
    worker.addScope(scope);
    // Invalid span context: dropped (the null contract).
    worker.addScope(ScopeEvent{});
    FlowEvent flow;
    flow.name = "dispatch";
    flow.flow_id = child.span_id;
    flow.tid = workerTid(0);
    flow.ts_ns = 1000;
    flow.begin = false;
    worker.addFlow(flow);
    worker.addFlow(FlowEvent{});  // flow_id 0: dropped
    worker.nameRow(workerTid(0), "worker 0");

    Tracer main;
    main.mergeFrom(worker);
    ASSERT_EQ(main.scopeEvents().size(), 1u);
    EXPECT_EQ(main.scopeEvents()[0].span.span_id, child.span_id);
    ASSERT_EQ(main.flowEvents().size(), 1u);
    EXPECT_EQ(main.flowEvents()[0].flow_id, child.span_id);
    main.clear();
    EXPECT_TRUE(main.scopeEvents().empty());
    EXPECT_TRUE(main.flowEvents().empty());
}

TEST(Tracer, ChromeTraceExportsScopesFlowsAndRowNames)
{
    Tracer tracer;
    const SpanContext root = SpanContext::newTrace();
    ScopeEvent scope;
    scope.name = "request 1";
    scope.span = root;
    scope.tid = requestTid(1);
    scope.start_ns = 5000;
    scope.dur_ns = 4000;
    tracer.addScope(scope);
    FlowEvent begin;
    begin.name = "dispatch";
    begin.flow_id = root.span_id;
    begin.tid = requestTid(1);
    begin.ts_ns = 6000;
    begin.begin = true;
    tracer.addFlow(begin);
    FlowEvent end = begin;
    end.tid = workerTid(2);
    end.ts_ns = 7000;
    end.begin = false;
    tracer.addFlow(end);
    tracer.nameRow(requestTid(1), "request 1 (live)");

    std::ostringstream ss;
    tracer.writeChromeTrace(ss);
    const auto doc = testjson::parse(ss.str());
    ASSERT_TRUE(doc.has_value()) << ss.str();
    const testjson::Value *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);

    size_t request_slices = 0, flow_begins = 0, flow_ends = 0;
    bool named_row = false;
    for (const testjson::Value &e : events->array) {
        const testjson::Value *ph = e.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->string == "M") {
            const testjson::Value *args = e.find("args");
            if (args && args->find("name") &&
                args->find("name")->string == "request 1 (live)")
                named_row = true;
            continue;
        }
        if (ph->string == "s" || ph->string == "f") {
            (ph->string == "s" ? flow_begins : flow_ends)++;
            EXPECT_EQ(static_cast<uint64_t>(e.find("id")->number),
                      root.span_id);
            continue;
        }
        const testjson::Value *cat = e.find("cat");
        if (!cat || cat->string != "request")
            continue;
        ++request_slices;
        const testjson::Value *args = e.find("args");
        ASSERT_NE(args, nullptr);
        EXPECT_EQ(static_cast<uint64_t>(args->find("trace_id")->number),
                  root.trace_id);
        EXPECT_EQ(static_cast<uint64_t>(args->find("span_id")->number),
                  root.span_id);
        EXPECT_EQ(static_cast<uint64_t>(args->find("parent_id")->number),
                  0u);
    }
    EXPECT_EQ(request_slices, 1u);
    EXPECT_EQ(flow_begins, 1u);
    EXPECT_EQ(flow_ends, 1u);
    EXPECT_TRUE(named_row);
}

TEST(Tracer, DisabledModeNeverAllocates)
{
    // The null-sink fast path is the one compiled into every encoder
    // frame and macroblock: it must not touch the heap at all.
    StageAccum *null_accum = nullptr;
    Tracer *null_tracer = nullptr;

    g_allocs.store(0);
    g_counting.store(true);
    for (int i = 0; i < 1000; ++i) {
        ScopedSpan span(null_tracer, Track::VbcEncode,
                        Stage::MotionEstimation, i);
        ScopedStage stage(null_accum, Stage::TransformQuant);
    }
    g_counting.store(false);
    EXPECT_EQ(g_allocs.load(), 0u);
}

} // namespace
} // namespace vbench::obs
