/**
 * @file
 * End-to-end observability: a traced transcode's leaf-stage totals
 * must reconstruct the reported wall clock, the Chrome trace and run
 * report must round-trip through a JSON parser, and an untraced run
 * must still carry the always-on phase breakdown.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/report.h"
#include "core/transcoder.h"
#include "obs/json_parse.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "video/synth.h"

namespace vbench {
namespace {

video::Video
clip(int w = 256, int h = 160, int frames = 8)
{
    return video::synthesize(
        video::presetFor(video::ContentClass::Natural, w, h, 30.0,
                         frames, 505),
        "obs");
}

core::TranscodeRequest
vbcRequest(int effort = 5)
{
    core::TranscodeRequest req;
    req.kind = core::EncoderKind::Vbc;
    req.rc.mode = codec::RcMode::Crf;
    req.rc.crf = 24;
    req.effort = effort;
    return req;
}

TEST(ObsIntegration, TracedLeafTotalsReconstructWallClock)
{
    const video::Video v = clip();
    const codec::ByteBuffer universal = core::makeUniversalStream(v);

    obs::Tracer tracer;
    core::TranscodeRequest req = vbcRequest(5);
    req.tracer = &tracer;
    const core::TranscodeOutcome outcome =
        core::transcode(universal, v, req);
    ASSERT_TRUE(outcome.ok) << outcome.error;

    // Leaf stages partition the traced frame windows, and the frame
    // windows cover the decode+encode work `seconds` measures, so the
    // sum must land within 10% of the reported wall clock (the gap is
    // genuinely untraced glue: header parse, encoder construction).
    const double leaf = outcome.stages.leafSeconds();
    EXPECT_GT(leaf, 0.90 * outcome.seconds)
        << "leaf " << leaf << " vs seconds " << outcome.seconds;
    EXPECT_LT(leaf, 1.10 * outcome.seconds)
        << "leaf " << leaf << " vs seconds " << outcome.seconds;

    // The hot encoder stages all saw real time.
    EXPECT_GT(outcome.stages.get(obs::Stage::MotionEstimation), 0.0);
    EXPECT_GT(outcome.stages.get(obs::Stage::TransformQuant), 0.0);
    EXPECT_GT(outcome.stages.get(obs::Stage::EntropyCoding), 0.0);
    EXPECT_GT(outcome.stages.get(obs::Stage::DecodeFrame), 0.0);
    // Phases ride along on the same outcome.
    EXPECT_GT(outcome.stages.get(obs::Stage::Encode), 0.0);
    EXPECT_GT(outcome.stages.get(obs::Stage::DecodeInput), 0.0);
}

TEST(ObsIntegration, UntracedRunsKeepPhasesButNoLeaves)
{
    const video::Video v = clip(160, 128, 4);
    const codec::ByteBuffer universal = core::makeUniversalStream(v);

    const core::TranscodeOutcome outcome =
        core::transcode(universal, v, vbcRequest(2));
    ASSERT_TRUE(outcome.ok) << outcome.error;
    // Phase breakdown is always on...
    EXPECT_GT(outcome.stages.get(obs::Stage::DecodeInput), 0.0);
    EXPECT_GT(outcome.stages.get(obs::Stage::Encode), 0.0);
    EXPECT_GT(outcome.stages.get(obs::Stage::DecodeOutput), 0.0);
    EXPECT_GT(outcome.stages.get(obs::Stage::Measure), 0.0);
    // ...but leaf stages need a tracer.
    EXPECT_DOUBLE_EQ(outcome.stages.leafSeconds(), 0.0);
}

TEST(ObsIntegration, TraceFileRoundTripsThroughAParser)
{
    const video::Video v = clip(160, 128, 4);
    const codec::ByteBuffer universal = core::makeUniversalStream(v);

    obs::Tracer tracer;
    core::TranscodeRequest req = vbcRequest(3);
    req.tracer = &tracer;
    const core::TranscodeOutcome outcome =
        core::transcode(universal, v, req);
    ASSERT_TRUE(outcome.ok) << outcome.error;

    const std::string path =
        ::testing::TempDir() + "vbench_obs_trace.json";
    ASSERT_TRUE(tracer.writeChromeTraceFile(path));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    std::remove(path.c_str());

    const auto doc = testjson::parse(ss.str());
    ASSERT_TRUE(doc.has_value());
    const testjson::Value *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    // Metadata rows plus at least one span per encoded frame.
    EXPECT_GT(events->array.size(),
              static_cast<size_t>(obs::kNumTracks) + 4u);
    size_t frame_spans = 0;
    for (const testjson::Value &e : events->array) {
        const testjson::Value *cat = e.find("cat");
        if (cat != nullptr && cat->string == "frame")
            ++frame_spans;
    }
    EXPECT_EQ(frame_spans, static_cast<size_t>(v.frameCount()));
}

TEST(ObsIntegration, RunReportJsonRoundTripsThroughAParser)
{
    const video::Video v = clip(160, 128, 4);
    const codec::ByteBuffer universal = core::makeUniversalStream(v);

    obs::Tracer tracer;
    obs::MetricsRegistry metrics;
    core::TranscodeRequest req = vbcRequest(3);
    req.tracer = &tracer;
    req.metrics = &metrics;
    const core::TranscodeOutcome outcome =
        core::transcode(universal, v, req);
    ASSERT_TRUE(outcome.ok) << outcome.error;

    const core::RunReport report =
        core::makeRunReport("integration", req, outcome);
    const std::string json = core::toJson(report, &metrics);
    const auto doc = testjson::parse(json);
    ASSERT_TRUE(doc.has_value()) << json;

    ASSERT_NE(doc->find("label"), nullptr);
    EXPECT_EQ(doc->find("label")->string, "integration");
    ASSERT_NE(doc->find("backend"), nullptr);
    EXPECT_EQ(doc->find("backend")->string, "vbc");
    ASSERT_NE(doc->find("seconds"), nullptr);
    EXPECT_GT(doc->find("seconds")->number, 0.0);
    ASSERT_NE(doc->find("psnr_db"), nullptr);
    EXPECT_GT(doc->find("psnr_db")->number, 20.0);

    const testjson::Value *stages = doc->find("stages");
    ASSERT_NE(stages, nullptr);
    ASSERT_TRUE(stages->isObject());
    ASSERT_NE(stages->find("encode"), nullptr);
    EXPECT_GT(stages->find("encode")->number, 0.0);
    ASSERT_NE(stages->find("motion_estimation"), nullptr);

    const testjson::Value *extra = doc->find("extra");
    ASSERT_NE(extra, nullptr);
    ASSERT_NE(extra->find("effort"), nullptr);
    EXPECT_DOUBLE_EQ(extra->find("effort")->number, 3.0);

    const testjson::Value *m = doc->find("metrics");
    ASSERT_NE(m, nullptr);
    const testjson::Value *counters = m->find("counters");
    ASSERT_NE(counters, nullptr);
    ASSERT_NE(counters->find("encode.frames"), nullptr);
    EXPECT_DOUBLE_EQ(counters->find("encode.frames")->number,
                     static_cast<double>(v.frameCount()));
    ASSERT_NE(counters->find("transcode.runs.vbc"), nullptr);
}

TEST(ObsIntegration, EnvConfigParsesBothVariables)
{
    // parseEnvConfig is a pure read; config() caching is untouched as
    // long as nothing else observes the environment while it's set.
    ASSERT_EQ(::setenv("VBENCH_TRACE", "/tmp/t.json", 1), 0);
    ASSERT_EQ(::setenv("VBENCH_METRICS_OUT", "-", 1), 0);
    const obs::ObsConfig on = obs::parseEnvConfig();
    EXPECT_TRUE(on.trace_enabled);
    EXPECT_EQ(on.trace_path, "/tmp/t.json");
    EXPECT_EQ(on.metrics_path, "-");

    ASSERT_EQ(::unsetenv("VBENCH_TRACE"), 0);
    ASSERT_EQ(::unsetenv("VBENCH_METRICS_OUT"), 0);
    const obs::ObsConfig off = obs::parseEnvConfig();
    EXPECT_FALSE(off.trace_enabled);
    EXPECT_TRUE(off.trace_path.empty());
    EXPECT_TRUE(off.metrics_path.empty());
}

} // namespace
} // namespace vbench
