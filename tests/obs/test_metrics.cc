/**
 * @file
 * Metrics registry unit tests: counter wrap-around, histogram bucket
 * geometry, percentile accuracy against closed-form distributions, and
 * well-formedness of the text/JSON dumps.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_parse.h"
#include "obs/metrics.h"

namespace vbench::obs {
namespace {

TEST(Counter, AddsAndWrapsOnOverflow)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    // Overflow wraps modulo 2^64 by contract, like the hardware
    // counters it mirrors.
    c.add(UINT64_MAX - 41);
    EXPECT_EQ(c.value(), 0u);
    c.add(UINT64_MAX);
    c.add(3);
    EXPECT_EQ(c.value(), 2u);
}

TEST(Histogram, BucketGeometryCoversEveryValue)
{
    const uint64_t probes[] = {0,  1,  7,  8,  9,   15,   16,  100,
                               255, 256, 1000, 4095, 65536, 1u << 30,
                               (uint64_t{1} << 40) + 12345, UINT64_MAX};
    for (const uint64_t v : probes) {
        const int idx = Histogram::bucketIndex(v);
        ASSERT_GE(idx, 0) << v;
        ASSERT_LT(idx, Histogram::kNumBuckets) << v;
        EXPECT_LE(Histogram::bucketLo(idx), v) << v;
        if (idx < Histogram::kNumBuckets - 1) {
            EXPECT_LT(v, Histogram::bucketHi(idx)) << v;
        }
    }
    // Bucket bounds chain: each bucket starts where the last ended.
    for (int i = 1; i < Histogram::kNumBuckets; ++i)
        EXPECT_EQ(Histogram::bucketHi(i - 1), Histogram::bucketLo(i)) << i;
}

TEST(Histogram, EmptyIsAllZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(Histogram, RepeatedValueLandsInItsBucket)
{
    Histogram h;
    for (int i = 0; i < 100; ++i)
        h.observe(42);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.sum(), 4200u);
    EXPECT_DOUBLE_EQ(h.mean(), 42.0);
    // 42 lies in [40, 44): every percentile interpolates inside it.
    const int idx = Histogram::bucketIndex(42);
    for (const double p : {1.0, 50.0, 99.0}) {
        const double est = h.percentile(p);
        EXPECT_GE(est, static_cast<double>(Histogram::bucketLo(idx)));
        EXPECT_LE(est, static_cast<double>(Histogram::bucketHi(idx)));
    }
}

TEST(Histogram, PercentilesTrackUniformDistribution)
{
    // Uniform 1..10000: the p-th percentile is p * 100 in closed form.
    // Log bucketing guarantees <= 12.5% relative bucket width, so the
    // estimate must land within ~13% of the true quantile.
    Histogram h;
    for (uint64_t v = 1; v <= 10000; ++v)
        h.observe(v);
    for (const double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
        const double expected = p * 100.0;
        const double estimate = h.percentile(p);
        EXPECT_NEAR(estimate, expected, expected * 0.13)
            << "p" << p;
    }
    EXPECT_NEAR(h.mean(), 5000.5, 0.5);
}

TEST(Histogram, PercentileEdgeCases)
{
    Histogram h;
    h.observe(5);
    // A single sample answers every percentile with (about) itself.
    EXPECT_NEAR(h.percentile(0), 5.0, 1.0);
    EXPECT_NEAR(h.percentile(100), 5.0, 1.0);
    // Out-of-range p clamps instead of misbehaving.
    EXPECT_NEAR(h.percentile(-10), h.percentile(0), 1e-9);
    EXPECT_NEAR(h.percentile(500), h.percentile(100), 1e-9);
}

TEST(Histogram, ValueAtQuantileInterpolatesExactlyInUnitBuckets)
{
    // Values 0..7 occupy the eight exact unit-width buckets, so the
    // estimator's arithmetic is fully observable: rank = q*(n-1)+1
    // lands in bucket floor(rank-1) with fractional position
    // rank - floor(rank-1), and the interpolated value is exactly
    // bucketLo + fraction (hi - lo == 1).
    Histogram h;
    for (uint64_t v = 0; v < 8; ++v)
        h.observe(v);
    // q=0.5: rank 4.5 -> bucket 4, fraction 0.5 -> 4.5.
    EXPECT_DOUBLE_EQ(h.valueAtQuantile(0.5), 4.5);
    // q=0.25: rank 2.75 -> bucket 2, fraction 0.75 -> 2.75.
    EXPECT_DOUBLE_EQ(h.valueAtQuantile(0.25), 2.75);
    // q=1: rank 8 -> last bucket, fraction 1 -> its upper bound.
    EXPECT_DOUBLE_EQ(h.valueAtQuantile(1.0), 8.0);
    // q=0: rank 1 -> first occupied bucket, fraction 1 -> its hi.
    EXPECT_DOUBLE_EQ(h.valueAtQuantile(0.0), 1.0);
}

TEST(Histogram, ValueAtQuantileP99WithinTheTailBucket)
{
    // 100 identical samples: every quantile interpolates inside the
    // one occupied bucket, and p99's exact position is
    // rank/count = (0.99*99+1)/100 of the way through it.
    Histogram h;
    for (int i = 0; i < 100; ++i)
        h.observe(3);
    const double frac = (0.99 * 99.0 + 1.0) / 100.0;
    EXPECT_DOUBLE_EQ(h.valueAtQuantile(0.99), 3.0 + frac);
    // Skewed latency shape: the p99 must sit in the slow mode's
    // bucket, far above p50.
    Histogram lat;
    for (int i = 0; i < 99; ++i)
        lat.observe(100);
    lat.observe(10000);
    const double p50 = lat.valueAtQuantile(0.50);
    const double p99 = lat.valueAtQuantile(0.99);
    const int slow = Histogram::bucketIndex(10000);
    EXPECT_LT(p50, 120.0);
    EXPECT_GE(p99, static_cast<double>(Histogram::bucketLo(slow)));
    EXPECT_LE(p99, static_cast<double>(Histogram::bucketHi(slow)));
}

TEST(Histogram, PercentileDelegatesToValueAtQuantile)
{
    Histogram h;
    for (uint64_t v = 1; v <= 1000; ++v)
        h.observe(v * 3);
    for (const double p : {0.0, 13.7, 50.0, 95.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(h.percentile(p), h.valueAtQuantile(p / 100.0))
            << "p" << p;
}

TEST(Histogram, ValueAtQuantileClampsAndHandlesEmpty)
{
    Histogram empty;
    EXPECT_DOUBLE_EQ(empty.valueAtQuantile(0.99), 0.0);
    Histogram h;
    h.observe(5);
    EXPECT_DOUBLE_EQ(h.valueAtQuantile(-0.5), h.valueAtQuantile(0.0));
    EXPECT_DOUBLE_EQ(h.valueAtQuantile(2.0), h.valueAtQuantile(1.0));
}

TEST(Histogram, ValueAtQuantileRejectsNaN)
{
    Histogram h;
    h.observe(5);
    const double nan = std::numeric_limits<double>::quiet_NaN();
    // NaN would otherwise slip through the min/max clamp (every
    // comparison is false) and index a bucket with garbage.
    EXPECT_DOUBLE_EQ(h.valueAtQuantile(nan), 0.0);
    Histogram empty;
    EXPECT_DOUBLE_EQ(empty.valueAtQuantile(nan), 0.0);
}

TEST(Histogram, SingleSampleReportsItsBucketHighEdge)
{
    // One sample: rank 1, fraction 1/count = 1 — every quantile
    // interpolates to the occupied bucket's high edge (see the
    // valueAtQuantile contract in metrics.h). observe(3) sits in the
    // unit bucket [3,4), so the estimate is exactly 4.
    Histogram h;
    h.observe(3);
    for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(h.valueAtQuantile(q), 4.0) << "q=" << q;
}

TEST(Registry, SnapshotCapturesCountersAndHistogramStats)
{
    MetricsRegistry reg;
    reg.counter("jobs").add(3);
    for (uint64_t v = 1; v <= 100; ++v)
        reg.histogram("latency").observe(v);
    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].first, "jobs");
    EXPECT_EQ(snap.counters[0].second, 3u);
    ASSERT_EQ(snap.histograms.size(), 1u);
    const MetricsSnapshot::HistogramStats &h = snap.histograms[0];
    EXPECT_EQ(h.name, "latency");
    EXPECT_EQ(h.count, 100u);
    EXPECT_EQ(h.sum, 5050u);
    EXPECT_NEAR(h.mean, 50.5, 1e-9);
    EXPECT_GT(h.p50, 0.0);
    EXPECT_LE(h.p50, h.p90);
    EXPECT_LE(h.p90, h.p99);
}

TEST(Registry, HandsOutStableReferences)
{
    MetricsRegistry reg;
    Counter &a = reg.counter("a");
    Histogram &h = reg.histogram("h");
    a.add(3);
    h.observe(10);
    // The same names resolve to the same objects.
    EXPECT_EQ(&reg.counter("a"), &a);
    EXPECT_EQ(&reg.histogram("h"), &h);
    EXPECT_EQ(reg.counter("a").value(), 3u);
    EXPECT_EQ(reg.size(), 2u);
    reg.reset();
    EXPECT_EQ(reg.size(), 0u);
    EXPECT_EQ(reg.counter("a").value(), 0u);
}

TEST(Registry, TextDumpIsSortedAndStable)
{
    MetricsRegistry reg;
    // Insert out of order; the dump must come out lexicographic.
    reg.counter("zeta").add(1);
    reg.counter("alpha").add(2);
    reg.histogram("mid").observe(7);

    std::ostringstream first, second;
    reg.writeText(first);
    reg.writeText(second);
    EXPECT_EQ(first.str(), second.str());

    std::istringstream lines(first.str());
    std::vector<std::string> names;
    std::string kind, name;
    while (lines >> kind >> name) {
        names.push_back(name);
        std::string rest;
        std::getline(lines, rest);
    }
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "zeta");
    EXPECT_EQ(names[2], "mid");  // histograms follow counters
}

TEST(Registry, JsonDumpRoundTripsThroughAParser)
{
    MetricsRegistry reg;
    reg.counter("encode.frames").add(30);
    reg.counter("with \"quotes\"\n").add(1);
    Histogram &h = reg.histogram("encode.frame_bytes");
    for (uint64_t v = 100; v < 200; ++v)
        h.observe(v);

    std::ostringstream ss;
    reg.writeJson(ss);
    const auto doc = testjson::parse(ss.str());
    ASSERT_TRUE(doc.has_value()) << ss.str();

    const testjson::Value *counters = doc->find("counters");
    ASSERT_NE(counters, nullptr);
    ASSERT_TRUE(counters->isObject());
    const testjson::Value *frames = counters->find("encode.frames");
    ASSERT_NE(frames, nullptr);
    EXPECT_DOUBLE_EQ(frames->number, 30.0);
    // The escaped name survives the round trip verbatim.
    EXPECT_NE(counters->find("with \"quotes\"\n"), nullptr);

    const testjson::Value *histograms = doc->find("histograms");
    ASSERT_NE(histograms, nullptr);
    const testjson::Value *fb = histograms->find("encode.frame_bytes");
    ASSERT_NE(fb, nullptr);
    ASSERT_NE(fb->find("count"), nullptr);
    EXPECT_DOUBLE_EQ(fb->find("count")->number, 100.0);
    ASSERT_NE(fb->find("p50"), nullptr);
    EXPECT_NEAR(fb->find("p50")->number, 150.0, 20.0);
    ASSERT_NE(fb->find("p99"), nullptr);
    EXPECT_GE(fb->find("p99")->number, fb->find("p50")->number);
}

} // namespace
} // namespace vbench::obs
