/**
 * @file
 * RemotePool supervision (src/rpc/remote_pool.h): real fork/exec'd
 * vbench_worker children produce byte-identical streams to in-process
 * execution; a SIGKILLed child's job survives via retry + respawn; a
 * handshake protocol mismatch and a missing worker binary both walk
 * the degradation ladder down to in-process execution instead of
 * failing the job.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>

#include "rpc/remote_pool.h"
#include "service/segment_job.h"
#include "service/workload.h"

namespace vbench::rpc {
namespace {

using service::Corpus;
using service::CorpusClip;
using service::SegmentJob;
using service::SegmentResult;

const CorpusClip &
testClip()
{
    static const Corpus corpus = [] {
        video::ClipSpec spec;
        spec.name = "rp";
        spec.width = 96;
        spec.height = 64;
        spec.fps = 30.0;
        spec.content = video::ContentClass::Natural;
        spec.seed = 19;
        return service::buildCorpus({spec}, 8, 4);
    }();
    return corpus.clips.front();
}

SegmentJob
encodeJob(const CorpusClip &clip, int segment)
{
    SegmentJob job;
    job.request_id = 1;
    job.rung = "only";
    job.segment_index = segment;
    job.scenario = core::Scenario::Upload;
    job.input = *clip.seg_universal[static_cast<size_t>(segment)];
    job.params.kind = core::EncoderKind::Vbc;
    job.params.effort = 3;
    job.params.rc.mode = codec::RcMode::Crf;
    job.params.rc.crf = 30.0;
    job.params.rc.fps = 30.0;
    job.params.rc.pixels_per_frame = 96.0 * 64.0;
    return job;
}

TEST(RemotePool, ChildProcessesProduceByteIdenticalStreams)
{
    const CorpusClip &clip = testClip();
    RemotePoolConfig config;
    config.workers = 2;
    config.hedge = false;
    RemotePool pool(config);

    // The children are real: live pids, kill(pid, 0) reaches them.
    // Slots spawn asynchronously, so poll briefly for both.
    int alive = 0;
    for (int spin = 0; spin < 500 && alive < 2; ++spin) {
        alive = 0;
        for (const int64_t pid : pool.workerPids())
            if (pid > 0 && ::kill(static_cast<pid_t>(pid), 0) == 0)
                ++alive;
        if (alive < 2)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
    }
    ASSERT_EQ(alive, 2);

    std::vector<sched::JobHandle> handles;
    std::vector<SegmentResult> local;
    for (int k = 0; k < 2; ++k) {
        const SegmentJob job = encodeJob(clip, k);
        local.push_back(service::executeSegmentJob(
            job, clip.seg_original[static_cast<size_t>(k)].get()));
        handles.push_back(pool.submit(
            job, clip.seg_original[static_cast<size_t>(k)]));
    }
    for (int k = 0; k < 2; ++k) {
        const sched::JobResult &jr = handles[static_cast<size_t>(k)]
                                         .wait();
        ASSERT_TRUE(jr.ok()) << jr.outcome.error;
        // The headline invariant: WHERE the segment ran is invisible
        // in the bytes.
        EXPECT_EQ(jr.outcome.stream,
                  local[static_cast<size_t>(k)].stream);
        EXPECT_GT(jr.end_ns, jr.start_ns);
        EXPECT_GE(jr.start_ns, jr.submit_ns);
        // The measured child wall time rode back over the wire.
        EXPECT_GT(jr.seconds, 0.0);
    }

    const service::ExecutorStats stats = pool.stats();
    EXPECT_TRUE(stats.remote);
    EXPECT_EQ(stats.completed, 2u);
    EXPECT_GE(stats.dispatched, 2u);
    EXPECT_EQ(stats.retries, 0u);
    EXPECT_EQ(stats.degraded_local, 0u);
    ASSERT_EQ(stats.workers.size(), 2u);
    for (const service::ExecutorWorkerInfo &w : stats.workers) {
        EXPECT_TRUE(w.alive);
        EXPECT_GT(w.pid, 0);
        EXPECT_FALSE(w.tier.empty());
    }
}

TEST(RemotePool, SigkilledChildJobSurvivesViaRetryAndRespawn)
{
    const CorpusClip &clip = testClip();
    const SegmentJob job = encodeJob(clip, 0);
    const SegmentResult local =
        service::executeSegmentJob(job, clip.seg_original[0].get());

    RemotePoolConfig config;
    config.workers = 1;
    config.hedge = false;
    // Kill the child right after dispatch #0 lands on its socket: the
    // job dies mid-segment, the retry path must absorb it.
    config.inject_kill_at = 0;
    RemotePool pool(config);

    sched::JobHandle handle = pool.submit(job, clip.seg_original[0]);
    const sched::JobResult &jr = handle.wait();
    ASSERT_TRUE(jr.ok()) << jr.outcome.error;
    EXPECT_EQ(jr.outcome.stream, local.stream);

    const service::ExecutorStats stats = pool.stats();
    EXPECT_EQ(stats.kills_injected, 1u);
    EXPECT_GE(stats.worker_deaths, 1u);
    EXPECT_GE(stats.retries, 1u);
    // The slot respawned a fresh child to serve the retry remotely.
    EXPECT_GE(stats.respawns, 1u);
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.degraded_local, 0u);
}

TEST(RemotePool, HandshakeProtocolMismatchDegradesToInProcess)
{
    // The worker advertises a bogus protocol version (test hook in
    // runWorkerLoop): every spawn fails the handshake, the slot
    // degrades, and the job still completes — in-process.
    ASSERT_EQ(::setenv("VBENCH_RPC_FAKE_PROTO", "9", 1), 0);
    const CorpusClip &clip = testClip();
    const SegmentJob job = encodeJob(clip, 0);
    const SegmentResult local =
        service::executeSegmentJob(job, clip.seg_original[0].get());
    {
        RemotePoolConfig config;
        config.workers = 1;
        config.hedge = false;
        config.respawn_limit = 1;
        config.backoff_ms = 1;
        RemotePool pool(config);
        sched::JobHandle handle =
            pool.submit(job, clip.seg_original[0]);
        const sched::JobResult &jr = handle.wait();
        ASSERT_TRUE(jr.ok()) << jr.outcome.error;
        EXPECT_EQ(jr.outcome.stream, local.stream);
        const service::ExecutorStats stats = pool.stats();
        EXPECT_GE(stats.degraded_local, 1u);
        EXPECT_EQ(stats.completed, 1u);
        for (const service::ExecutorWorkerInfo &w : stats.workers)
            EXPECT_FALSE(w.alive);
    }
    ASSERT_EQ(::unsetenv("VBENCH_RPC_FAKE_PROTO"), 0);
}

TEST(RemotePool, MissingWorkerBinaryDegradesToInProcess)
{
    const CorpusClip &clip = testClip();
    const SegmentJob job = encodeJob(clip, 1);
    const SegmentResult local =
        service::executeSegmentJob(job, clip.seg_original[1].get());

    RemotePoolConfig config;
    config.workers = 1;
    config.hedge = false;
    config.worker_binary = "/nonexistent/vbench_worker";
    config.respawn_limit = 2;
    config.backoff_ms = 1;
    RemotePool pool(config);

    sched::JobHandle handle = pool.submit(job, clip.seg_original[1]);
    const sched::JobResult &jr = handle.wait();
    ASSERT_TRUE(jr.ok()) << jr.outcome.error;
    EXPECT_EQ(jr.outcome.stream, local.stream);
    const service::ExecutorStats stats = pool.stats();
    EXPECT_GE(stats.degraded_local, 1u);
    EXPECT_EQ(stats.dispatched, 0u);
}

} // namespace
} // namespace vbench::rpc
