/**
 * @file
 * The blocking frame transport over a socketpair (src/rpc/transport.h):
 * send/recv round-trips (large payloads crossing the kernel buffer, so
 * partial reads and writes both happen), recv deadlines, peer-close
 * detection, and framing violations surfacing through recvFrame.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>

#include <unistd.h>

#include "rpc/transport.h"

namespace vbench::rpc {
namespace {

TEST(RpcTransport, RoundTripsSmallFrame)
{
    int fds[2];
    std::string error;
    ASSERT_TRUE(makeSocketPair(fds, &error)) << error;
    Transport a(fds[0]);
    Transport b(fds[1]);

    const codec::ByteBuffer payload = {1, 2, 3};
    ASSERT_TRUE(a.sendFrame(FrameType::Job, payload, &error)) << error;
    bool timed_out = false;
    const std::optional<Frame> frame =
        b.recvFrame(1000, &error, &timed_out);
    ASSERT_TRUE(frame.has_value()) << error;
    EXPECT_FALSE(timed_out);
    EXPECT_EQ(frame->type, FrameType::Job);
    EXPECT_EQ(frame->payload, payload);
}

TEST(RpcTransport, LargePayloadSurvivesPartialReadsAndWrites)
{
    // Megabytes through a socketpair: far beyond the kernel socket
    // buffer, so the send loop must handle short writes and the recv
    // loop short reads. A second thread drains while the first sends.
    int fds[2];
    std::string error;
    ASSERT_TRUE(makeSocketPair(fds, &error)) << error;
    Transport a(fds[0]);
    Transport b(fds[1]);

    codec::ByteBuffer payload(3 * 1024 * 1024);
    for (size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<uint8_t>(i * 2654435761u >> 16);

    std::optional<Frame> frame;
    std::string recv_error;
    bool timed_out = false;
    std::thread receiver([&] {
        frame = b.recvFrame(10000, &recv_error, &timed_out);
    });
    std::string send_error;
    const bool sent =
        a.sendFrame(FrameType::Result, payload, &send_error);
    receiver.join();
    ASSERT_TRUE(sent) << send_error;
    ASSERT_TRUE(frame.has_value()) << recv_error;
    EXPECT_FALSE(timed_out);
    EXPECT_EQ(frame->type, FrameType::Result);
    EXPECT_EQ(frame->payload, payload);
}

TEST(RpcTransport, RecvDeadlineExpiresAsTimeoutNotError)
{
    int fds[2];
    std::string error;
    ASSERT_TRUE(makeSocketPair(fds, &error)) << error;
    Transport a(fds[0]);
    Transport b(fds[1]);

    bool timed_out = false;
    std::string recv_error;
    const std::optional<Frame> frame =
        b.recvFrame(30, &recv_error, &timed_out);
    EXPECT_FALSE(frame.has_value());
    EXPECT_TRUE(timed_out);
    EXPECT_TRUE(recv_error.empty()) << recv_error;
}

TEST(RpcTransport, PeerCloseSurfacesAsError)
{
    int fds[2];
    std::string error;
    ASSERT_TRUE(makeSocketPair(fds, &error)) << error;
    Transport b(fds[1]);
    {
        Transport a(fds[0]);
        // a closes on scope exit — the peer is gone mid-wait.
    }
    bool timed_out = false;
    std::string recv_error;
    const std::optional<Frame> frame =
        b.recvFrame(1000, &recv_error, &timed_out);
    EXPECT_FALSE(frame.has_value());
    EXPECT_FALSE(timed_out);
    EXPECT_NE(recv_error.find("peer closed"), std::string::npos)
        << recv_error;
}

TEST(RpcTransport, GarbageOnTheWireIsAFramingViolation)
{
    int fds[2];
    std::string error;
    ASSERT_TRUE(makeSocketPair(fds, &error)) << error;
    Transport b(fds[1]);

    const uint8_t garbage[6] = {0xFF, 1, 2, 3, 4, 5};
    ASSERT_EQ(::write(fds[0], garbage, sizeof garbage),
              static_cast<ssize_t>(sizeof garbage));
    bool timed_out = false;
    std::string recv_error;
    const std::optional<Frame> frame =
        b.recvFrame(1000, &recv_error, &timed_out);
    EXPECT_FALSE(frame.has_value());
    EXPECT_FALSE(timed_out);
    EXPECT_NE(recv_error.find("unknown frame type"), std::string::npos)
        << recv_error;
    ::close(fds[0]);
}

TEST(RpcTransport, InterleavedFramesArriveInOrder)
{
    int fds[2];
    std::string error;
    ASSERT_TRUE(makeSocketPair(fds, &error)) << error;
    Transport a(fds[0]);
    Transport b(fds[1]);

    for (uint8_t i = 0; i < 5; ++i)
        ASSERT_TRUE(a.sendFrame(FrameType::Job, {i, i, i}, &error))
            << error;
    for (uint8_t i = 0; i < 5; ++i) {
        bool timed_out = false;
        const std::optional<Frame> frame =
            b.recvFrame(1000, &error, &timed_out);
        ASSERT_TRUE(frame.has_value()) << error;
        const codec::ByteBuffer want = {i, i, i};
        EXPECT_EQ(frame->payload, want);
    }
}

} // namespace
} // namespace vbench::rpc
