/**
 * @file
 * The rpc frame layer (src/rpc/frame.h): encode/decode round-trips
 * over every chunking of the stream, truncation at every prefix ("need
 * more bytes", never an error), poisoning on unknown frame types and
 * oversized length prefixes (structured errors naming the stream byte
 * offset), and the Hello handshake's protocol-version gate.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "rpc/frame.h"

namespace vbench::rpc {
namespace {

codec::ByteBuffer
payloadOf(std::initializer_list<uint8_t> bytes)
{
    return codec::ByteBuffer(bytes);
}

TEST(RpcFrame, EncodeProducesHeaderPlusPayload)
{
    const codec::ByteBuffer payload = payloadOf({0xAA, 0xBB, 0xCC});
    const codec::ByteBuffer wire = encodeFrame(FrameType::Job, payload);
    ASSERT_EQ(wire.size(), kFrameHeaderSize + payload.size());
    EXPECT_EQ(wire[0], static_cast<uint8_t>(FrameType::Job));
    // Little-endian u32 length.
    EXPECT_EQ(wire[1], 3u);
    EXPECT_EQ(wire[2], 0u);
    EXPECT_EQ(wire[3], 0u);
    EXPECT_EQ(wire[4], 0u);
    EXPECT_EQ(wire[5], 0xAA);
}

TEST(RpcFrame, DecoderRoundTripsWholeFrame)
{
    const codec::ByteBuffer payload = payloadOf({1, 2, 3, 4, 5});
    const codec::ByteBuffer wire =
        encodeFrame(FrameType::Result, payload);
    FrameDecoder dec;
    dec.feed(wire.data(), wire.size());
    std::string error;
    const std::optional<Frame> frame = dec.next(&error);
    ASSERT_TRUE(frame.has_value()) << error;
    EXPECT_EQ(frame->type, FrameType::Result);
    EXPECT_EQ(frame->payload, payload);
    EXPECT_EQ(dec.buffered(), 0u);
    EXPECT_FALSE(dec.poisoned());
}

TEST(RpcFrame, EveryPrefixTruncationIsNeedMoreBytesNotError)
{
    const codec::ByteBuffer payload =
        payloadOf({9, 8, 7, 6, 5, 4, 3, 2, 1});
    const codec::ByteBuffer wire = encodeFrame(FrameType::Job, payload);
    for (size_t cut = 0; cut < wire.size(); ++cut) {
        FrameDecoder dec;
        dec.feed(wire.data(), cut);
        std::string error = "untouched";
        const std::optional<Frame> frame = dec.next(&error);
        EXPECT_FALSE(frame.has_value()) << "prefix " << cut;
        // Incomplete input must never poison or set an error.
        EXPECT_EQ(error, "untouched") << "prefix " << cut;
        EXPECT_FALSE(dec.poisoned()) << "prefix " << cut;
    }
}

TEST(RpcFrame, OneByteAtATimeInterleavedFeedAndNext)
{
    // Two frames delivered one byte per feed(), with next() called
    // between every byte — the decoder must yield exactly the two
    // frames, in order, at the right moments.
    const codec::ByteBuffer p1 = payloadOf({0x11, 0x22});
    const codec::ByteBuffer p2 = payloadOf({0x33});
    codec::ByteBuffer wire = encodeFrame(FrameType::Job, p1);
    const codec::ByteBuffer f2 = encodeFrame(FrameType::Result, p2);
    wire.insert(wire.end(), f2.begin(), f2.end());

    FrameDecoder dec;
    std::vector<Frame> got;
    std::string error;
    for (const uint8_t byte : wire) {
        dec.feed(&byte, 1);
        while (true) {
            std::optional<Frame> frame = dec.next(&error);
            ASSERT_TRUE(error.empty()) << error;
            if (!frame)
                break;
            got.push_back(std::move(*frame));
        }
    }
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].type, FrameType::Job);
    EXPECT_EQ(got[0].payload, p1);
    EXPECT_EQ(got[1].type, FrameType::Result);
    EXPECT_EQ(got[1].payload, p2);
    EXPECT_EQ(dec.buffered(), 0u);
}

TEST(RpcFrame, ShutdownFrameHasEmptyPayload)
{
    const codec::ByteBuffer wire = encodeFrame(FrameType::Shutdown, {});
    ASSERT_EQ(wire.size(), kFrameHeaderSize);
    FrameDecoder dec;
    dec.feed(wire.data(), wire.size());
    std::string error;
    const std::optional<Frame> frame = dec.next(&error);
    ASSERT_TRUE(frame.has_value()) << error;
    EXPECT_EQ(frame->type, FrameType::Shutdown);
    EXPECT_TRUE(frame->payload.empty());
}

TEST(RpcFrame, UnknownTypePoisonsWithByteOffset)
{
    // A valid frame first, so the poisoning offset is non-zero and
    // provably a *stream* offset, not a buffer offset.
    codec::ByteBuffer wire = encodeFrame(FrameType::Job, payloadOf({7}));
    const size_t bad_at = wire.size();
    wire.push_back(0x99);  // no such FrameType
    for (int i = 0; i < 4; ++i)
        wire.push_back(0);  // full header: type checks fire then
    FrameDecoder dec;
    dec.feed(wire.data(), wire.size());
    std::string error;
    ASSERT_TRUE(dec.next(&error).has_value());
    ASSERT_TRUE(error.empty());
    const std::optional<Frame> bad = dec.next(&error);
    EXPECT_FALSE(bad.has_value());
    EXPECT_TRUE(dec.poisoned());
    EXPECT_NE(error.find("unknown frame type"), std::string::npos)
        << error;
    EXPECT_NE(error.find(std::to_string(bad_at)), std::string::npos)
        << error;

    // Poisoned stays poisoned: more input changes nothing.
    const uint8_t more = 0;
    dec.feed(&more, 1);
    std::string error2;
    EXPECT_FALSE(dec.next(&error2).has_value());
    EXPECT_FALSE(error2.empty());
}

TEST(RpcFrame, OversizedLengthPoisonsWithByteOffset)
{
    codec::ByteBuffer wire;
    wire.push_back(static_cast<uint8_t>(FrameType::Job));
    const uint32_t huge = kMaxFramePayload + 1;
    for (int i = 0; i < 4; ++i)
        wire.push_back(static_cast<uint8_t>(huge >> (8 * i)));
    FrameDecoder dec;
    dec.feed(wire.data(), wire.size());
    std::string error;
    EXPECT_FALSE(dec.next(&error).has_value());
    EXPECT_TRUE(dec.poisoned());
    EXPECT_NE(error.find("exceeds"), std::string::npos) << error;
    // The offset names the length field (header byte 1 of the stream).
    EXPECT_NE(error.find("stream byte 1"), std::string::npos) << error;
}

TEST(RpcHello, RoundTrips)
{
    Hello hello;
    hello.pid = 4242;
    hello.tier = "avx2";
    std::string error;
    const std::optional<Hello> back =
        Hello::deserialize(hello.serialize(), &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->protocol, kRpcProtocolVersion);
    EXPECT_EQ(back->pid, 4242);
    EXPECT_EQ(back->tier, "avx2");
}

TEST(RpcHello, ProtocolVersionMismatchIsRejected)
{
    Hello hello;
    hello.protocol = kRpcProtocolVersion + 1;
    hello.pid = 7;
    hello.tier = "scalar";
    std::string error;
    const std::optional<Hello> back =
        Hello::deserialize(hello.serialize(), &error);
    EXPECT_FALSE(back.has_value());
    EXPECT_NE(error.find("protocol version mismatch"),
              std::string::npos)
        << error;
    // The message names both sides of the disagreement.
    EXPECT_NE(error.find(std::to_string(kRpcProtocolVersion + 1)),
              std::string::npos)
        << error;
    EXPECT_NE(error.find(std::to_string(kRpcProtocolVersion)),
              std::string::npos)
        << error;
}

TEST(RpcHello, TruncatedPayloadIsRejected)
{
    Hello hello;
    hello.pid = 1;
    hello.tier = "sse2";
    codec::ByteBuffer wire = hello.serialize();
    for (size_t cut = 0; cut < wire.size(); ++cut) {
        const codec::ByteBuffer prefix(wire.begin(),
                                       wire.begin() +
                                           static_cast<long>(cut));
        std::string error;
        EXPECT_FALSE(Hello::deserialize(prefix, &error).has_value())
            << "prefix " << cut;
        EXPECT_FALSE(error.empty()) << "prefix " << cut;
    }
}

} // namespace
} // namespace vbench::rpc
