/**
 * @file
 * The online fleet::Fleet: ticket booking, measurement-driven
 * settlement, per-type rollups, the invalid-config degenerate case,
 * and concurrent place/settle from many threads. Part of the
 * ThreadSanitizer suite (`ctest -L thread`) — the dispatcher places
 * from its loop while completions settle from worker threads.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "fleet/fleet.h"

namespace vbench::fleet {
namespace {

/** One cheap scalar + one fast avx2 worker, flat 4x model. */
FleetConfig
smallConfig()
{
    FleetConfig config;
    WorkerTypeSpec cheap;
    cheap.name = "scalar";
    cheap.tier = Tier::Scalar;
    cheap.count = 1;
    cheap.price_per_hour = 0.4;
    cheap.per_job_overhead_ms = 0.0;
    WorkerTypeSpec fast;
    fast.name = "avx2";
    fast.tier = Tier::Avx2;
    fast.count = 1;
    fast.price_per_hour = 2.0;
    fast.per_job_overhead_ms = 0.0;
    config.types = {cheap, fast};
    config.policy = PolicyKind::RoundRobin;
    return config;
}

PerfModel
flatModel()
{
    PerfModel model;
    model.base_mpix_s = 1.0;
    model.tier_speed = {1.0, 2.0, 4.0, 10.0};
    model.native_tier = Tier::Scalar;
    return model;
}

JobMeta
metaFor(double work_s)
{
    JobMeta meta;
    meta.pixels = work_s * 1e6;
    meta.work_scalar_s = work_s;
    return meta;
}

TEST(FleetOnline, InvalidConfigYieldsAnInertFleet)
{
    FleetConfig config;  // no types: fails validateFleetConfig
    Fleet fleet(config, flatModel());
    EXPECT_EQ(fleet.workerCount(), 0);
    const Ticket ticket = fleet.place(metaFor(1.0), 0.0);
    EXPECT_FALSE(ticket.valid());
    EXPECT_DOUBLE_EQ(fleet.settle(ticket, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(fleet.totalCost(), 0.0);
}

TEST(FleetOnline, PlaceBooksATicket)
{
    Fleet fleet(smallConfig(), flatModel());
    EXPECT_EQ(fleet.workerCount(), 2);
    const Ticket ticket = fleet.place(metaFor(4.0), 0.0);
    ASSERT_TRUE(ticket.valid());
    EXPECT_EQ(ticket.worker, 0);  // round-robin starts at 0 (scalar)
    EXPECT_EQ(ticket.type, 0);
    EXPECT_DOUBLE_EQ(ticket.exec_s, 4.0);
    EXPECT_DOUBLE_EQ(ticket.finish_s, 4.0);
    EXPECT_DOUBLE_EQ(ticket.cost_dollars, 4.0 * 0.4 / 3600.0);
}

TEST(FleetOnline, SettleReplacesTheEstimateWithTheMeasurement)
{
    Fleet fleet(smallConfig(), flatModel());
    // Second placement (round-robin) lands on the 4x avx2 worker.
    fleet.place(metaFor(4.0), 0.0);
    const Ticket ticket = fleet.place(metaFor(4.0), 0.0);
    ASSERT_EQ(ticket.type, 1);
    EXPECT_DOUBLE_EQ(ticket.exec_s, 1.0);  // 4 scalar-seconds at 4x

    // The real transcode took 2 s on the (scalar-tier) host: that is
    // 2 scalar-seconds of work, i.e. 0.5 s on this worker.
    const double cost = fleet.settle(ticket, 2.0);
    EXPECT_DOUBLE_EQ(cost, 0.5 * 2.0 / 3600.0);

    const std::vector<TypeUsage> usage = fleet.typeUsage();
    ASSERT_EQ(usage.size(), 2u);
    EXPECT_EQ(usage[1].name, "avx2");
    EXPECT_EQ(usage[1].jobs, 1);
    EXPECT_DOUBLE_EQ(usage[1].busy_seconds, 0.5);
    EXPECT_DOUBLE_EQ(usage[1].cost_dollars, cost);
    // The unsettled scalar booking still carries its estimate.
    EXPECT_DOUBLE_EQ(usage[0].busy_seconds, 4.0);
    EXPECT_DOUBLE_EQ(fleet.totalCost(),
                     cost + 4.0 * 0.4 / 3600.0);
}

TEST(FleetOnline, TypeUtilizationIsBusyOverElapsed)
{
    Fleet fleet(smallConfig(), flatModel());
    const Ticket ticket = fleet.place(metaFor(4.0), 0.0);
    fleet.settle(ticket, 4.0);  // measured == estimate on scalar
    const std::vector<double> util = fleet.typeUtilization(8.0);
    ASSERT_EQ(util.size(), 2u);
    EXPECT_DOUBLE_EQ(util[0], 0.5);  // 4 busy seconds over 8
    EXPECT_DOUBLE_EQ(util[1], 0.0);
    // No elapsed time: utilization reads as zero, not a division.
    EXPECT_DOUBLE_EQ(fleet.typeUtilization(0.0)[0], 0.0);
}

TEST(FleetOnline, ConcurrentPlaceAndSettleIsRaceFree)
{
    FleetConfig config = smallConfig();
    config.types[0].count = 3;
    config.types[1].count = 2;
    config.policy = PolicyKind::CostAware;
    Fleet fleet(config, flatModel());

    constexpr int kThreads = 4;
    constexpr int kJobsPerThread = 64;
    std::vector<std::thread> threads;
    std::vector<double> settled(kThreads, 0.0);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&fleet, &settled, t] {
            double total = 0;
            for (int j = 0; j < kJobsPerThread; ++j) {
                const double work = 0.25 + 0.05 * ((t + j) % 5);
                const Ticket ticket =
                    fleet.place(metaFor(work), 0.1 * j);
                ASSERT_TRUE(ticket.valid());
                total += fleet.settle(ticket, work);
                // Interleave reads with the writers.
                fleet.typeUtilization(1.0 + j);
                fleet.totalCost();
            }
            settled[static_cast<size_t>(t)] = total;
        });
    }
    for (std::thread &t : threads)
        t.join();

    double expected = 0;
    for (const double s : settled)
        expected += s;
    EXPECT_NEAR(fleet.totalCost(), expected, 1e-9);
    int jobs = 0;
    for (const TypeUsage &u : fleet.typeUsage())
        jobs += u.jobs;
    EXPECT_EQ(jobs, kThreads * kJobsPerThread);
}

} // namespace
} // namespace vbench::fleet
