/**
 * @file
 * Fleet perf-model calibration: the cache text format round-trips and
 * rejects malformed input, and a real profiling pass produces a
 * monotone, positive model that a second run loads back from the
 * cache instead of re-profiling.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "fleet/calibrate.h"

namespace vbench::fleet {
namespace {

TEST(FleetCalibrate, FormatParsesBackLosslessly)
{
    PerfModel model;
    model.base_mpix_s = 3.5;
    model.tier_speed = {1.0, 1.7, 2.9, 55.0};
    model.native_tier = Tier::Avx2;
    model.source = "calibrated";

    PerfModel back;
    ASSERT_TRUE(parseCalibration(formatCalibration(model), &back));
    EXPECT_DOUBLE_EQ(back.base_mpix_s, model.base_mpix_s);
    for (int t = 0; t < kNumTiers; ++t)
        EXPECT_DOUBLE_EQ(back.tier_speed[static_cast<size_t>(t)],
                         model.tier_speed[static_cast<size_t>(t)]);
    EXPECT_EQ(back.native_tier, model.native_tier);
    EXPECT_EQ(back.source, "cache");
}

TEST(FleetCalibrate, ParseRejectsMalformedText)
{
    PerfModel model;
    EXPECT_FALSE(parseCalibration("", &model));
    EXPECT_FALSE(parseCalibration("not-a-calibration\n", &model));
    // Right header, missing fields.
    EXPECT_FALSE(
        parseCalibration("vbench-fleet-calib v1\nisa scalar\n", &model));
    // Bad values.
    EXPECT_FALSE(parseCalibration(
        "vbench-fleet-calib v1\nisa scalar\nbase_mpix_s -1\n"
        "speed scalar 1\nspeed sse2 1\nspeed avx2 1\nspeed hwenc 1\n",
        &model));
    EXPECT_FALSE(parseCalibration(
        "vbench-fleet-calib v1\nisa gpu\nbase_mpix_s 2\n"
        "speed scalar 1\nspeed sse2 1\nspeed avx2 1\nspeed hwenc 1\n",
        &model));
    // Unknown key.
    EXPECT_FALSE(parseCalibration(
        "vbench-fleet-calib v1\nwhat 1\n", &model));
}

TEST(FleetCalibrate, ProfilesAMonotonePositiveModel)
{
    std::string log;
    const PerfModel model = calibratePerfModel("", &log);
    EXPECT_GT(model.base_mpix_s, 0.0);
    EXPECT_FALSE(log.empty());
    // On any host at least the profiled tiers must be sane; the guard
    // enforces non-decreasing speed up the tier ladder.
    for (int t = 0; t < kNumTiers; ++t)
        EXPECT_GT(model.tier_speed[static_cast<size_t>(t)], 0.0) << t;
    for (int t = 1; t < kNumTiers; ++t)
        EXPECT_GE(model.tier_speed[static_cast<size_t>(t)],
                  model.tier_speed[static_cast<size_t>(t - 1)])
            << t;
    EXPECT_DOUBLE_EQ(model.tier_speed[0], 1.0)
        << "speeds are relative to scalar";
    EXPECT_TRUE(model.source == "calibrated" ||
                model.source == "default")
        << model.source;
}

TEST(FleetCalibrate, SecondRunLoadsTheCache)
{
    const std::string path =
        ::testing::TempDir() + "fleet_calib_test.txt";
    std::remove(path.c_str());

    std::string log;
    const PerfModel first = calibratePerfModel(path, &log);
    if (first.source != "calibrated")
        GTEST_SKIP() << "profiling unavailable: " << log;
    // The cache landed on disk...
    std::ifstream in(path);
    ASSERT_TRUE(in.good());

    // ...and the second call returns it without re-profiling.
    const PerfModel second = calibratePerfModel(path, &log);
    EXPECT_EQ(second.source, "cache");
    EXPECT_NE(log.find("loaded from"), std::string::npos) << log;
    // The text format keeps ~6 significant digits.
    EXPECT_NEAR(second.base_mpix_s, first.base_mpix_s,
                1e-4 * first.base_mpix_s);
    for (int t = 0; t < kNumTiers; ++t)
        EXPECT_NEAR(second.tier_speed[static_cast<size_t>(t)],
                    first.tier_speed[static_cast<size_t>(t)],
                    1e-4 * first.tier_speed[static_cast<size_t>(t)]);
    EXPECT_EQ(second.native_tier, first.native_tier);

    // A cache for a different host (native tier mismatch) is ignored.
    PerfModel foreign = first;
    foreign.native_tier = first.native_tier == Tier::Scalar
        ? Tier::Avx2
        : Tier::Scalar;
    std::ofstream(path) << formatCalibration(foreign);
    const PerfModel reprofiled = calibratePerfModel(path, &log);
    EXPECT_NE(reprofiled.source, "cache");
    std::remove(path.c_str());
}

} // namespace
} // namespace vbench::fleet
