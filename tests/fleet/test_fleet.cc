/**
 * @file
 * Fleet vocabulary, placement, and the discrete-event simulator: spec
 * grammar round-trips and rejections, PerfModel arithmetic, policy
 * behaviour on degenerate fleets (single worker, all-identical types,
 * a zero-capacity type), the backlog blind spot that separates
 * cost_aware from the naive cheapest policy, and the headline claim —
 * cost-aware placement beats the round-robin and random baselines on
 * total dollars over identical work.
 */

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "fleet/placement.h"
#include "fleet/sim.h"
#include "fleet/types.h"

namespace vbench::fleet {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** A two-type fleet (cheap/slow + expensive/fast) with a flat model. */
FleetConfig
twoTierConfig()
{
    FleetConfig config;
    WorkerTypeSpec cheap;
    cheap.name = "scalar";
    cheap.tier = Tier::Scalar;
    cheap.count = 1;
    cheap.price_per_hour = 0.4;
    cheap.per_job_overhead_ms = 0.0;
    WorkerTypeSpec fast;
    fast.name = "avx2";
    fast.tier = Tier::Avx2;
    fast.count = 1;
    // 5x the scalar price at 4x the speed: the fast tier is always
    // the costlier choice, never a cost tie.
    fast.price_per_hour = 2.0;
    fast.per_job_overhead_ms = 0.0;
    config.types = {cheap, fast};
    return config;
}

/** Simple speeds so expectations stay mental arithmetic: avx2 = 4x. */
PerfModel
flatModel()
{
    PerfModel model;
    model.base_mpix_s = 1.0;
    model.tier_speed = {1.0, 2.0, 4.0, 10.0};
    return model;
}

JobMeta
metaFor(double work_s, double ready_s = 0, double deadline_s = kInf)
{
    JobMeta meta;
    meta.pixels = work_s * 1e6;  // base 1 Mpix/s: pixels == seconds
    meta.work_scalar_s = work_s;
    meta.ready_s = ready_s;
    meta.deadline_s = deadline_s;
    return meta;
}

// ---- Vocabulary. ----

TEST(FleetTypes, TierAndPolicyNamesRoundTrip)
{
    for (int t = 0; t < kNumTiers; ++t) {
        const Tier tier = static_cast<Tier>(t);
        const auto back = parseTierName(tierName(tier));
        ASSERT_TRUE(back.has_value()) << tierName(tier);
        EXPECT_EQ(*back, tier);
    }
    for (int p = 0; p < kNumPolicies; ++p) {
        const PolicyKind kind = static_cast<PolicyKind>(p);
        const auto back = parsePolicyName(policyName(kind));
        ASSERT_TRUE(back.has_value()) << policyName(kind);
        EXPECT_EQ(*back, kind);
    }
    EXPECT_FALSE(parseTierName("gpu").has_value());
    EXPECT_FALSE(parsePolicyName("greedy").has_value());
}

TEST(FleetTypes, ParsesAFullSpec)
{
    std::string error;
    const auto types = parseFleetSpec(
        "scalar:4@0.40+sse2:2@0.90+avx2:2@1.60+hwenc:1@5.00", &error);
    ASSERT_TRUE(types.has_value()) << error;
    ASSERT_EQ(types->size(), 4u);
    EXPECT_EQ((*types)[0].tier, Tier::Scalar);
    EXPECT_EQ((*types)[0].count, 4);
    EXPECT_DOUBLE_EQ((*types)[0].price_per_hour, 0.40);
    EXPECT_EQ((*types)[3].tier, Tier::Hwenc);
    EXPECT_EQ((*types)[3].count, 1);
    EXPECT_DOUBLE_EQ((*types)[3].price_per_hour, 5.00);
}

TEST(FleetTypes, SpecDefaultsCountAndListPrice)
{
    std::string error;
    const auto types = parseFleetSpec("AVX2", &error);
    ASSERT_TRUE(types.has_value()) << error;
    ASSERT_EQ(types->size(), 1u);
    EXPECT_EQ((*types)[0].count, 1);
    EXPECT_DOUBLE_EQ((*types)[0].price_per_hour, 1.60);
    // Count without price, price without count.
    EXPECT_TRUE(parseFleetSpec("sse2:3", &error).has_value()) << error;
    EXPECT_TRUE(parseFleetSpec("sse2@2.5", &error).has_value()) << error;
}

TEST(FleetTypes, SpecRejectsMalformedInput)
{
    const char *bad[] = {
        "",          "gpu:2",      "scalar:0",   "scalar:-1",
        "scalar:2x", "scalar@0",   "scalar@-1",  "scalar@cheap",
        "scalar+",   "+scalar",    "scalar++sse2",
    };
    for (const char *spec : bad) {
        std::string error;
        EXPECT_FALSE(parseFleetSpec(spec, &error).has_value()) << spec;
        EXPECT_FALSE(error.empty()) << spec;
    }
}

TEST(FleetTypes, FormatSpecRoundTrips)
{
    const std::string spec = "scalar:4@0.40+avx2:2@1.60+hwenc:1@5.00";
    std::string error;
    const auto types = parseFleetSpec(spec, &error);
    ASSERT_TRUE(types.has_value()) << error;
    EXPECT_EQ(formatFleetSpec(*types), spec);
}

TEST(FleetTypes, ValidateCatchesBadConfigs)
{
    FleetConfig config;
    EXPECT_NE(validateFleetConfig(config), "") << "no types";

    config = twoTierConfig();
    EXPECT_EQ(validateFleetConfig(config), "");

    config.types[0].count = -1;
    EXPECT_NE(validateFleetConfig(config), "");

    config = twoTierConfig();
    config.types[1].price_per_hour = 0;
    EXPECT_NE(validateFleetConfig(config), "");

    // Every type at count 0 = an unrunnable fleet.
    config = twoTierConfig();
    config.types[0].count = 0;
    config.types[1].count = 0;
    EXPECT_NE(validateFleetConfig(config), "");
    // One empty type among populated ones is fine.
    config.types[1].count = 2;
    EXPECT_EQ(validateFleetConfig(config), "");
}

TEST(FleetTypes, DefaultFleetIsValid)
{
    const FleetConfig config = defaultFleetConfig();
    EXPECT_EQ(validateFleetConfig(config), "");
    EXPECT_EQ(config.workerCount(), 9);
    EXPECT_EQ(config.types.size(), 4u);
}

TEST(FleetTypes, PerfModelArithmetic)
{
    const PerfModel model = flatModel();
    // avx2 at 4x: 8 scalar-seconds run in 2, plus 5 ms overhead.
    EXPECT_DOUBLE_EQ(model.execSeconds(Tier::Avx2, 8.0, 5.0),
                     2.0 + 0.005);
    EXPECT_DOUBLE_EQ(model.execSeconds(Tier::Scalar, 8.0, 0.0), 8.0);
    // 3 Mpix at 1 Mpix/s.
    EXPECT_DOUBLE_EQ(model.scalarWorkSeconds(3e6), 3.0);
}

// ---- Placement. ----

TEST(FleetPlacement, WorkersAreTypeMajorWithDenseIds)
{
    FleetConfig config = twoTierConfig();
    config.types[0].count = 2;
    const std::vector<FleetWorker> workers = makeWorkers(config);
    ASSERT_EQ(workers.size(), 3u);
    for (size_t i = 0; i < workers.size(); ++i)
        EXPECT_EQ(workers[i].id, static_cast<int>(i));
    EXPECT_EQ(workers[0].type, 0);
    EXPECT_EQ(workers[1].type, 0);
    EXPECT_EQ(workers[2].type, 1);
}

TEST(FleetPlacement, SingleWorkerFleetAlwaysPlacesThere)
{
    FleetConfig config = twoTierConfig();
    config.types.resize(1);  // one scalar worker
    const PerfModel model = flatModel();
    for (int p = 0; p < kNumPolicies; ++p) {
        std::vector<FleetWorker> workers = makeWorkers(config);
        const auto policy = makePolicy(static_cast<PolicyKind>(p), 7);
        double expect_start = 0;
        for (int j = 0; j < 4; ++j) {
            const Placement placed = placeJob(
                *policy, workers, config, model, metaFor(2.0), 0.0);
            EXPECT_EQ(placed.worker, 0) << policy->name();
            // Serial backlog: each job starts when the last finished.
            EXPECT_DOUBLE_EQ(placed.start_s, expect_start)
                << policy->name();
            expect_start = placed.finish_s;
        }
        EXPECT_EQ(workers[0].jobs, 4);
    }
}

TEST(FleetPlacement, ZeroCapacityTypeIsNeverChosen)
{
    FleetConfig config = twoTierConfig();
    config.types[0].count = 0;  // scalar exists on paper only
    config.types[1].count = 2;
    EXPECT_EQ(validateFleetConfig(config), "");
    const PerfModel model = flatModel();
    for (int p = 0; p < kNumPolicies; ++p) {
        std::vector<FleetWorker> workers = makeWorkers(config);
        ASSERT_EQ(workers.size(), 2u);
        const auto policy = makePolicy(static_cast<PolicyKind>(p), 7);
        for (int j = 0; j < 6; ++j) {
            const Placement placed = placeJob(
                *policy, workers, config, model, metaFor(1.0), 0.0);
            EXPECT_EQ(placed.type, 1) << policy->name();
        }
    }
}

TEST(FleetPlacement, EmptyFleetPlacesNothing)
{
    FleetConfig config;  // no types at all
    std::vector<FleetWorker> workers = makeWorkers(config);
    EXPECT_TRUE(workers.empty());
    const auto policy = makePolicy(PolicyKind::CostAware, 1);
    const Placement placed = placeJob(*policy, workers, config,
                                      flatModel(), metaFor(1.0), 0.0);
    EXPECT_EQ(placed.worker, -1);
    EXPECT_DOUBLE_EQ(placed.cost_dollars, 0.0);
}

TEST(FleetPlacement, RoundRobinCyclesThroughWorkers)
{
    FleetConfig config = twoTierConfig();
    config.types[0].count = 2;
    std::vector<FleetWorker> workers = makeWorkers(config);
    const auto policy = makePolicy(PolicyKind::RoundRobin, 1);
    for (int j = 0; j < 6; ++j) {
        const Placement placed = placeJob(*policy, workers, config,
                                          flatModel(), metaFor(1.0), 0.0);
        EXPECT_EQ(placed.worker, j % 3);
    }
}

TEST(FleetPlacement, RandomIsDeterministicInTheSeed)
{
    FleetConfig config = twoTierConfig();
    config.types[0].count = 3;
    config.types[1].count = 3;
    const PerfModel model = flatModel();
    const auto run = [&](uint64_t seed) {
        std::vector<FleetWorker> workers = makeWorkers(config);
        const auto policy = makePolicy(PolicyKind::Random, seed);
        std::vector<int> picks;
        for (int j = 0; j < 24; ++j)
            picks.push_back(placeJob(*policy, workers, config, model,
                                     metaFor(0.5), 0.0)
                                .worker);
        return picks;
    };
    EXPECT_EQ(run(11), run(11));
    EXPECT_NE(run(11), run(12));
}

TEST(FleetPlacement, LeastLoadedPicksTheEarliestFreeWorker)
{
    FleetConfig config = twoTierConfig();
    config.types[0].count = 2;
    std::vector<FleetWorker> workers = makeWorkers(config);
    workers[0].busy_until_s = 5.0;
    workers[1].busy_until_s = 1.0;
    workers[2].busy_until_s = 3.0;
    const auto policy = makePolicy(PolicyKind::LeastLoaded, 1);
    const Placement placed = placeJob(*policy, workers, config,
                                      flatModel(), metaFor(1.0), 0.0);
    EXPECT_EQ(placed.worker, 1);
    EXPECT_DOUBLE_EQ(placed.start_s, 1.0);
}

TEST(FleetPlacement, CostAwarePicksCheapWhenTheDeadlineAllows)
{
    const FleetConfig config = twoTierConfig();
    const PerfModel model = flatModel();
    std::vector<FleetWorker> workers = makeWorkers(config);
    const auto policy = makePolicy(PolicyKind::CostAware, 1);
    // 8 scalar-seconds, deadline 20: the cheap tier makes it easily.
    const Placement loose = placeJob(*policy, workers, config, model,
                                     metaFor(8.0, 0.0, 20.0), 0.0);
    EXPECT_EQ(loose.type, 0);
    // Fresh fleet, deadline 4: only the 4x tier can finish in time.
    workers = makeWorkers(config);
    const Placement tight = placeJob(*policy, workers, config, model,
                                     metaFor(8.0, 0.0, 4.0), 0.0);
    EXPECT_EQ(tight.type, 1);
    EXPECT_LE(tight.finish_s, 4.0);
}

TEST(FleetPlacement, CostAwareSeesBacklogTheNaiveCheapestMisses)
{
    const FleetConfig config = twoTierConfig();
    const PerfModel model = flatModel();
    // Two 10-scalar-second jobs, each with deadline 15. The cheap
    // worker can run one in time, not both back to back.
    const JobMeta job = metaFor(10.0, 0.0, 15.0);

    std::vector<FleetWorker> naive = makeWorkers(config);
    const auto cheapest = makePolicy(PolicyKind::CheapestFeasible, 1);
    placeJob(*cheapest, naive, config, model, job, 0.0);
    const Placement second_naive =
        placeJob(*cheapest, naive, config, model, job, 0.0);
    // Naive feasibility ignores the backlog: it stacks the second job
    // on the cheap worker and blows the deadline.
    EXPECT_EQ(second_naive.type, 0);
    EXPECT_GT(second_naive.finish_s, job.deadline_s);

    std::vector<FleetWorker> aware = makeWorkers(config);
    const auto cost_aware = makePolicy(PolicyKind::CostAware, 1);
    placeJob(*cost_aware, aware, config, model, job, 0.0);
    const Placement second_aware =
        placeJob(*cost_aware, aware, config, model, job, 0.0);
    // Backlog-aware feasibility moves it to the fast tier and hits.
    EXPECT_EQ(second_aware.type, 1);
    EXPECT_LE(second_aware.finish_s, job.deadline_s);
}

TEST(FleetPlacement, BookingAccumulatesOnTheWorker)
{
    const FleetConfig config = twoTierConfig();
    const PerfModel model = flatModel();
    std::vector<FleetWorker> workers = makeWorkers(config);
    const auto policy = makePolicy(PolicyKind::RoundRobin, 1);
    const Placement a = placeJob(*policy, workers, config, model,
                                 metaFor(4.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(a.start_s, 1.0) << "waits for readiness";
    EXPECT_DOUBLE_EQ(a.exec_s, 4.0);
    EXPECT_DOUBLE_EQ(a.finish_s, 5.0);
    EXPECT_DOUBLE_EQ(a.cost_dollars, 4.0 * 0.4 / 3600.0);
    EXPECT_DOUBLE_EQ(workers[0].busy_until_s, 5.0);
    EXPECT_DOUBLE_EQ(workers[0].busy_seconds, 4.0);
    EXPECT_DOUBLE_EQ(workers[0].cost_dollars, a.cost_dollars);
    EXPECT_EQ(workers[0].jobs, 1);
}

// ---- Simulator. ----

std::vector<SimJob>
uniformJobs(int n, double work_s, double spacing_s,
            double deadline_slack = kInf)
{
    std::vector<SimJob> jobs;
    for (int i = 0; i < n; ++i) {
        SimJob job;
        job.id = i;
        job.work_scalar_s = work_s;
        job.pixels = work_s * 1e6;
        job.avail_s = spacing_s * i;
        if (deadline_slack < kInf)
            job.deadline_s = job.avail_s + deadline_slack;
        job.stream = i;
        jobs.push_back(job);
    }
    return jobs;
}

TEST(FleetSim, SingleJobCostArithmetic)
{
    FleetConfig config = twoTierConfig();
    config.types.resize(1);
    config.types[0].per_job_overhead_ms = 2.0;
    config.policy = PolicyKind::RoundRobin;
    const SimResult result =
        simulateFleet(config, flatModel(), uniformJobs(1, 6.0, 0.0));
    EXPECT_EQ(result.jobs, 1u);
    EXPECT_EQ(result.hits, 1u);
    const double exec = 6.0 + 0.002;
    EXPECT_DOUBLE_EQ(result.makespan_s, exec);
    EXPECT_DOUBLE_EQ(result.total_cost_dollars, exec * 0.4 / 3600.0);
    const SimScenario &sc =
        result.scenarios[static_cast<size_t>(core::Scenario::Upload)];
    EXPECT_EQ(sc.jobs, 1u);
    EXPECT_EQ(sc.streams, 1u);
    EXPECT_DOUBLE_EQ(sc.dollarsPerStream(), result.total_cost_dollars);
}

TEST(FleetSim, ChainPrecedenceDelaysTheSuccessor)
{
    FleetConfig config = twoTierConfig();
    config.types.resize(1);
    config.types[0].count = 4;  // idle capacity: only the chain binds
    config.policy = PolicyKind::LeastLoaded;
    std::vector<SimJob> jobs = uniformJobs(3, 2.0, 0.0);
    jobs[1].chain_prev = 0;  // RC carry: 1 after 0, 2 after 1
    jobs[2].chain_prev = 1;
    const SimResult result =
        simulateFleet(config, flatModel(), jobs);
    EXPECT_EQ(result.jobs, 3u);
    // Three 2 s segments serialized by the chain despite 4 workers.
    EXPECT_DOUBLE_EQ(result.makespan_s, 6.0);
    const SimScenario &sc =
        result.scenarios[static_cast<size_t>(core::Scenario::Upload)];
    EXPECT_DOUBLE_EQ(sc.max_latency_s, 6.0);
}

TEST(FleetSim, MissingChainTargetMeansUnchained)
{
    FleetConfig config = twoTierConfig();
    config.types.resize(1);
    config.types[0].count = 2;
    config.policy = PolicyKind::LeastLoaded;
    std::vector<SimJob> jobs = uniformJobs(2, 2.0, 0.0);
    jobs[1].chain_prev = 777;  // not a job id in this set
    const SimResult result = simulateFleet(config, flatModel(), jobs);
    EXPECT_EQ(result.jobs, 2u);
    EXPECT_DOUBLE_EQ(result.makespan_s, 2.0) << "ran in parallel";
}

TEST(FleetSim, DeterministicAcrossRuns)
{
    FleetConfig config = defaultFleetConfig();
    config.policy = PolicyKind::Random;
    config.seed = 42;
    const std::vector<SimJob> jobs = uniformJobs(40, 1.5, 0.25, 30.0);
    const SimResult a = simulateFleet(config, flatModel(), jobs);
    const SimResult b = simulateFleet(config, flatModel(), jobs);
    EXPECT_DOUBLE_EQ(a.total_cost_dollars, b.total_cost_dollars);
    EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
    EXPECT_EQ(a.hits, b.hits);
}

TEST(FleetSim, IdenticalTypesMakeEveryPolicyCostTheSame)
{
    // With one worker type, placement cannot change per-job cost —
    // only queueing. Total dollars must agree across all policies.
    FleetConfig config = twoTierConfig();
    config.types.resize(1);
    config.types[0].count = 3;
    const std::vector<SimJob> jobs = uniformJobs(24, 1.0, 0.1);
    double first = -1;
    for (int p = 0; p < kNumPolicies; ++p) {
        config.policy = static_cast<PolicyKind>(p);
        const SimResult result =
            simulateFleet(config, flatModel(), jobs);
        EXPECT_EQ(result.jobs, 24u);
        if (first < 0)
            first = result.total_cost_dollars;
        else
            EXPECT_DOUBLE_EQ(result.total_cost_dollars, first)
                << policyName(config.policy);
    }
}

TEST(FleetSim, CostAwareBeatsRoundRobinAndRandomOnDollars)
{
    // Mixed fleet, loose deadlines: the baselines scatter work across
    // expensive tiers while cost_aware keeps it on the cheap ones.
    FleetConfig config = defaultFleetConfig();
    const PerfModel model;  // default tier speeds
    const std::vector<SimJob> jobs = uniformJobs(60, 2.0, 0.5, 120.0);

    const auto total = [&](PolicyKind policy) {
        config.policy = policy;
        const SimResult result = simulateFleet(config, model, jobs);
        EXPECT_EQ(result.jobs, 60u) << policyName(policy);
        EXPECT_DOUBLE_EQ(result.hitRate(), 1.0) << policyName(policy);
        return result.total_cost_dollars;
    };
    const double aware = total(PolicyKind::CostAware);
    EXPECT_LT(aware, total(PolicyKind::RoundRobin));
    EXPECT_LT(aware, total(PolicyKind::Random));
}

TEST(FleetSim, EmptyFleetRunsNothing)
{
    FleetConfig config;  // invalid: no types
    const SimResult result =
        simulateFleet(config, flatModel(), uniformJobs(3, 1.0, 0.0));
    EXPECT_EQ(result.jobs, 0u);
    EXPECT_DOUBLE_EQ(result.total_cost_dollars, 0.0);
}

} // namespace
} // namespace vbench::fleet
