/**
 * @file
 * Y4M reader/writer round-trip tests.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "video/synth.h"
#include "video/y4m.h"

namespace vbench::video {
namespace {

class Y4mTest : public ::testing::Test
{
  protected:
    std::string
    tempPath(const std::string &name)
    {
        return ::testing::TempDir() + "/" + name;
    }
};

TEST_F(Y4mTest, RoundTripPreservesPixels)
{
    SynthParams p = presetFor(ContentClass::Natural, 96, 64, 30.0, 3, 77);
    const Video original = synthesize(p, "clip");
    const std::string path = tempPath("roundtrip.y4m");
    ASSERT_TRUE(writeY4m(original, path));

    std::string error;
    const Video loaded = readY4m(path, &error);
    ASSERT_FALSE(loaded.empty()) << error;
    EXPECT_EQ(loaded.width(), 96);
    EXPECT_EQ(loaded.height(), 64);
    EXPECT_EQ(loaded.frameCount(), 3);
    EXPECT_NEAR(loaded.fps(), 30.0, 1e-9);
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(loaded.frame(i) == original.frame(i));
    std::remove(path.c_str());
}

TEST_F(Y4mTest, NtscRatesSurviveRoundTrip)
{
    Video v(32, 32, 30000.0 / 1001);
    v.append(Frame(32, 32));
    const std::string path = tempPath("ntsc.y4m");
    ASSERT_TRUE(writeY4m(v, path));
    const Video loaded = readY4m(path);
    EXPECT_NEAR(loaded.fps(), 30000.0 / 1001, 1e-9);
    std::remove(path.c_str());
}

TEST_F(Y4mTest, MissingFileFails)
{
    std::string error;
    EXPECT_TRUE(readY4m("/nonexistent/clip.y4m", &error).empty());
    EXPECT_FALSE(error.empty());
}

TEST_F(Y4mTest, WrongMagicFails)
{
    const std::string path = tempPath("bad.y4m");
    std::ofstream(path) << "NOTAY4MFILE W2 H2\n";
    std::string error;
    EXPECT_TRUE(readY4m(path, &error).empty());
    std::remove(path.c_str());
}

TEST_F(Y4mTest, TruncatedFrameFails)
{
    SynthParams p = presetFor(ContentClass::Natural, 32, 32, 30.0, 2, 7);
    const Video original = synthesize(p);
    const std::string path = tempPath("trunc.y4m");
    ASSERT_TRUE(writeY4m(original, path));

    // Rewrite with the last 100 bytes chopped off.
    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() - 100));
    out.close();

    std::string error;
    EXPECT_TRUE(readY4m(path, &error).empty());
    EXPECT_FALSE(error.empty());
    std::remove(path.c_str());
}

TEST_F(Y4mTest, UnsupportedChromaFails)
{
    const std::string path = tempPath("c444.y4m");
    std::ofstream(path) << "YUV4MPEG2 W4 H4 F30:1 C444\nFRAME\n";
    std::string error;
    EXPECT_TRUE(readY4m(path, &error).empty());
    EXPECT_NE(error.find("chroma"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace vbench::video
