/**
 * @file
 * Cross-module interop: Y4M round trips composed with the codecs (the
 * path an external user takes to feed real clips into the benchmark).
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "metrics/psnr.h"
#include "ngc/ngc_decoder.h"
#include "ngc/ngc_encoder.h"
#include "video/synth.h"
#include "video/y4m.h"

namespace vbench::video {
namespace {

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + "/" + name;
}

TEST(Interop, Y4mThenEncodeMatchesDirectEncode)
{
    // Writing a clip to Y4M and reading it back must not change a
    // single bit of the encode (Y4M is lossless).
    const Video original = synthesize(
        presetFor(ContentClass::Natural, 96, 80, 30.0, 4, 2024), "io");
    const std::string path = tempPath("interop.y4m");
    ASSERT_TRUE(writeY4m(original, path));
    const Video loaded = readY4m(path);
    ASSERT_FALSE(loaded.empty());

    codec::EncoderConfig cfg;
    cfg.rc.mode = codec::RcMode::Cqp;
    cfg.rc.qp = 28;
    cfg.effort = 4;
    EXPECT_EQ(codec::Encoder(cfg).encode(original).stream,
              codec::Encoder(cfg).encode(loaded).stream);
    std::remove(path.c_str());
}

TEST(Interop, DecodedOutputSurvivesY4mRoundTrip)
{
    const Video original = synthesize(
        presetFor(ContentClass::Gaming, 96, 80, 30.0, 4, 2025), "io2");
    codec::EncoderConfig cfg;
    cfg.rc.mode = codec::RcMode::Cqp;
    cfg.rc.qp = 24;
    cfg.effort = 3;
    const auto decoded =
        codec::decode(codec::Encoder(cfg).encode(original).stream);
    ASSERT_TRUE(decoded.has_value());

    const std::string path = tempPath("decoded.y4m");
    ASSERT_TRUE(writeY4m(*decoded, path));
    const Video loaded = readY4m(path);
    ASSERT_FALSE(loaded.empty());
    for (int i = 0; i < decoded->frameCount(); ++i)
        ASSERT_TRUE(loaded.frame(i) == decoded->frame(i));
    std::remove(path.c_str());
}

TEST(Interop, NgcHandlesSub32Dimensions)
{
    // Frames smaller than one superblock exercise the padding and
    // cropping corners of the quadtree codec.
    const Video tiny = synthesize(
        presetFor(ContentClass::Natural, 24, 20, 30.0, 3, 2026), "tiny");
    ngc::NgcConfig cfg;
    cfg.rc.mode = codec::RcMode::Cqp;
    cfg.rc.qp = 20;
    cfg.speed = 0;
    ngc::NgcEncoder encoder(cfg);
    const auto decoded = ngc::ngcDecode(encoder.encode(tiny).stream);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->width(), 24);
    EXPECT_EQ(decoded->height(), 20);
    EXPECT_GT(metrics::videoPsnr(tiny, *decoded), 32.0);
}

TEST(Interop, NgcDeepSplitPathRoundTrips)
{
    // Noisy high-detail content at slow speed forces quadtree splits
    // down to 8x8 CUs, covering the CU8 chroma-4x4 transform path.
    SynthParams p = presetFor(ContentClass::Noisy, 64, 64, 30.0, 3,
                              2027, 1.2);
    const Video clip = synthesize(p, "deep");
    ngc::NgcConfig cfg;
    cfg.rc.mode = codec::RcMode::Cqp;
    cfg.rc.qp = 16;
    cfg.speed = 0;
    ngc::NgcEncoder encoder(cfg);
    const auto decoded = ngc::ngcDecode(encoder.encode(clip).stream);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_GT(metrics::videoPsnr(clip, *decoded), 34.0);
}

TEST(Interop, BothCodecsAgreeOnSourcePixels)
{
    // Sanity across the whole stack: at fine quantizers both codecs
    // converge to the source.
    const Video clip = synthesize(
        presetFor(ContentClass::Animation, 96, 96, 30.0, 3, 2028), "agree");

    codec::EncoderConfig vcfg;
    vcfg.rc.mode = codec::RcMode::Cqp;
    vcfg.rc.qp = 6;
    vcfg.effort = 5;
    const auto vbc = codec::decode(codec::Encoder(vcfg).encode(clip).stream);

    ngc::NgcConfig ncfg;
    ncfg.rc.mode = codec::RcMode::Cqp;
    ncfg.rc.qp = 6;
    ncfg.speed = 1;
    const auto ngcv = ngc::ngcDecode(ngc::NgcEncoder(ncfg).encode(clip).stream);

    ASSERT_TRUE(vbc.has_value() && ngcv.has_value());
    EXPECT_GT(metrics::videoPsnr(clip, *vbc), 44.0);
    EXPECT_GT(metrics::videoPsnr(clip, *ngcv), 44.0);
    EXPECT_GT(metrics::videoPsnr(*vbc, *ngcv), 40.0);
}

} // namespace
} // namespace vbench::video
