/**
 * @file
 * vbench suite (Table 2) and comparison dataset descriptor tests.
 */

#include <gtest/gtest.h>

#include <set>

#include "video/suite.h"

namespace vbench::video {
namespace {

TEST(Suite, HasFifteenVideos)
{
    EXPECT_EQ(vbenchSuite().size(), 15u);
}

TEST(Suite, Table2NamesAndEntropies)
{
    const auto &suite = vbenchSuite();
    auto find = [&](const std::string &name) -> const ClipSpec & {
        for (const auto &s : suite)
            if (s.name == name)
                return s;
        static ClipSpec missing;
        ADD_FAILURE() << "missing clip " << name;
        return missing;
    };
    EXPECT_DOUBLE_EQ(find("cat").target_entropy, 6.8);
    EXPECT_DOUBLE_EQ(find("desktop").target_entropy, 0.2);
    EXPECT_DOUBLE_EQ(find("presentation").target_entropy, 0.2);
    EXPECT_DOUBLE_EQ(find("hall").target_entropy, 7.7);
    EXPECT_DOUBLE_EQ(find("chicken").target_entropy, 5.9);
    EXPECT_EQ(find("chicken").width, 3840);
    EXPECT_EQ(find("cat").kpixels(), 410);
    EXPECT_EQ(find("presentation").kpixels(), 2074);
}

TEST(Suite, CoversFourResolutions)
{
    std::set<int> resolutions;
    for (const auto &s : vbenchSuite())
        resolutions.insert(s.width * s.height);
    EXPECT_EQ(resolutions.size(), 4u);
}

TEST(Suite, CoversWideEntropyRange)
{
    double lo = 1e9, hi = 0;
    for (const auto &s : vbenchSuite()) {
        lo = std::min(lo, s.target_entropy);
        hi = std::max(hi, s.target_entropy);
    }
    EXPECT_LE(lo, 0.2);
    EXPECT_GE(hi, 7.0);
}

TEST(Suite, NetflixIsAllHdHighEntropy)
{
    for (const auto &s : netflixSuite()) {
        EXPECT_EQ(s.width, 1920) << s.name;
        EXPECT_EQ(s.height, 1080) << s.name;
        EXPECT_GE(s.target_entropy, 1.0) << s.name;
    }
}

TEST(Suite, XiphIsHighEntropyOnly)
{
    for (const auto &s : xiphSuite())
        EXPECT_GE(s.target_entropy, 1.0) << s.name;
}

TEST(Suite, SpecIsTwoNearIdenticalAnimations)
{
    const auto &spec = specSuite();
    ASSERT_EQ(spec.size(), 2u);
    EXPECT_EQ(spec[0].content, ContentClass::Animation);
    EXPECT_EQ(spec[1].content, ContentClass::Animation);
    EXPECT_LT(std::abs(spec[0].target_entropy - spec[1].target_entropy),
              0.5);
}

TEST(Suite, UniqueSeedsAndNames)
{
    std::set<uint64_t> seeds;
    std::set<std::string> names;
    for (const auto *suite :
         {&vbenchSuite(), &netflixSuite(), &xiphSuite(), &specSuite()}) {
        for (const auto &s : *suite) {
            EXPECT_TRUE(seeds.insert(s.seed).second)
                << "duplicate seed " << s.seed;
            EXPECT_TRUE(names.insert(s.name).second)
                << "duplicate name " << s.name;
        }
    }
}

TEST(Suite, SynthesizeClipHonorsFrameCount)
{
    const ClipSpec &desktop = vbenchSuite()[2];
    const Video v = synthesizeClip(desktop, 4);
    EXPECT_EQ(v.frameCount(), 4);
    EXPECT_EQ(v.width(), desktop.width);
    EXPECT_EQ(v.name(), desktop.name);
}

TEST(Suite, DefaultDurationIsFiveSeconds)
{
    ClipSpec tiny = vbenchSuite()[0];
    tiny.width = 64;
    tiny.height = 48;
    tiny.fps = 10;
    const Video v = synthesizeClip(tiny);
    EXPECT_EQ(v.frameCount(), 50);
}

TEST(Suite, EntropyScaleMonotoneInTarget)
{
    const double lo = entropyScaleFor(ContentClass::Natural, 1.0);
    const double hi = entropyScaleFor(ContentClass::Natural, 6.0);
    EXPECT_LT(lo, hi);
}

TEST(Suite, EntropyScaleCorrectsForFrameRate)
{
    // Entropy is per second: hitting the same bits/pix/s target at
    // 60 fps needs easier per-frame content than at 30 fps.
    const double at30 =
        entropyScaleFor(ContentClass::Gaming, 5.0, 30.0);
    const double at60 =
        entropyScaleFor(ContentClass::Gaming, 5.0, 60.0);
    EXPECT_LT(at60, at30);
}

TEST(Suite, EntropyScaleStaysInDialRange)
{
    for (double target : {0.01, 0.2, 2.0, 20.0, 500.0}) {
        for (ContentClass c :
             {ContentClass::Slideshow, ContentClass::Noisy}) {
            const double s = entropyScaleFor(c, target);
            EXPECT_GE(s, 0.01);
            EXPECT_LE(s, 8.0);
        }
    }
}

} // namespace
} // namespace vbench::video
