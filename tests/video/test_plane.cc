/**
 * @file
 * Plane / Frame / Video container tests.
 */

#include <gtest/gtest.h>

#include "video/frame.h"
#include "video/plane.h"
#include "video/video.h"

namespace vbench::video {
namespace {

TEST(Plane, ConstructionAndFill)
{
    Plane p(8, 4, 42);
    EXPECT_EQ(p.width(), 8);
    EXPECT_EQ(p.height(), 4);
    EXPECT_EQ(p.size(), 32u);
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 8; ++x)
            EXPECT_EQ(p.at(x, y), 42);
    p.fill(7);
    EXPECT_EQ(p.at(3, 2), 7);
}

TEST(Plane, ClampedAccessReplicatesBorder)
{
    Plane p(4, 4);
    p.at(0, 0) = 1;
    p.at(3, 0) = 2;
    p.at(0, 3) = 3;
    p.at(3, 3) = 4;
    EXPECT_EQ(p.atClamped(-5, -5), 1);
    EXPECT_EQ(p.atClamped(10, -1), 2);
    EXPECT_EQ(p.atClamped(-1, 10), 3);
    EXPECT_EQ(p.atClamped(9, 9), 4);
}

TEST(Plane, RowPointersAreContiguous)
{
    Plane p(16, 3);
    EXPECT_EQ(p.row(1), p.data() + 16);
    EXPECT_EQ(p.row(2), p.data() + 32);
}

TEST(Plane, EqualityIsDeep)
{
    Plane a(4, 4, 9);
    Plane b(4, 4, 9);
    EXPECT_TRUE(a == b);
    b.at(2, 2) = 10;
    EXPECT_FALSE(a == b);
}

TEST(Frame, ChromaIsHalfResolution)
{
    Frame f(64, 48);
    EXPECT_EQ(f.y().width(), 64);
    EXPECT_EQ(f.u().width(), 32);
    EXPECT_EQ(f.v().height(), 24);
    EXPECT_EQ(f.sampleCount(), 64u * 48 + 2u * 32 * 24);
    EXPECT_EQ(f.pixelCount(), 64u * 48);
}

TEST(Frame, DefaultIsBlackWithNeutralChroma)
{
    Frame f(16, 16);
    EXPECT_EQ(f.y().at(0, 0), 16);
    EXPECT_EQ(f.u().at(0, 0), 128);
    EXPECT_EQ(f.v().at(0, 0), 128);
}

TEST(Frame, PlaneAccessorById)
{
    Frame f(16, 16);
    f.plane(PlaneId::U).at(1, 1) = 77;
    EXPECT_EQ(f.u().at(1, 1), 77);
}

TEST(Video, TimingDerivedQuantities)
{
    Video v(1280, 720, 25.0, "clip");
    for (int i = 0; i < 50; ++i)
        v.append(Frame(1280, 720));
    EXPECT_EQ(v.frameCount(), 50);
    EXPECT_DOUBLE_EQ(v.duration(), 2.0);
    EXPECT_EQ(v.pixelsPerFrame(), 1280u * 720);
    EXPECT_EQ(v.totalPixels(), 50u * 1280 * 720);
    EXPECT_EQ(v.kpixels(), 922);
    EXPECT_EQ(v.name(), "clip");
}

TEST(Video, KpixelsMatchesPaperCategories)
{
    EXPECT_EQ(Video(854, 480, 30).kpixels(), 410);
    EXPECT_EQ(Video(1920, 1080, 30).kpixels(), 2074);
    EXPECT_EQ(Video(3840, 2160, 30).kpixels(), 8294);
}

} // namespace
} // namespace vbench::video
