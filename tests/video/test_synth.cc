/**
 * @file
 * Synthetic video generator tests.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "video/synth.h"

namespace vbench::video {
namespace {

double
planeMeanAbsDiff(const Plane &a, const Plane &b)
{
    double sum = 0;
    for (int y = 0; y < a.height(); ++y)
        for (int x = 0; x < a.width(); ++x)
            sum += std::abs(a.at(x, y) - b.at(x, y));
    return sum / a.size();
}

TEST(Synth, GeometryAndCount)
{
    SynthParams p = presetFor(ContentClass::Natural, 320, 240, 24.0, 7, 5);
    const Video v = synthesize(p, "n");
    EXPECT_EQ(v.width(), 320);
    EXPECT_EQ(v.height(), 240);
    EXPECT_EQ(v.frameCount(), 7);
    EXPECT_DOUBLE_EQ(v.fps(), 24.0);
    EXPECT_EQ(v.name(), "n");
}

TEST(Synth, DeterministicForSeed)
{
    SynthParams p = presetFor(ContentClass::Gaming, 160, 128, 30.0, 4, 42);
    const Video a = synthesize(p);
    const Video b = synthesize(p);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(a.frame(i) == b.frame(i)) << "frame " << i;
}

TEST(Synth, SeedChangesContent)
{
    SynthParams p1 = presetFor(ContentClass::Natural, 160, 128, 30.0, 2, 1);
    SynthParams p2 = p1;
    p2.seed = 2;
    EXPECT_FALSE(synthesize(p1).frame(0) == synthesize(p2).frame(0));
}

TEST(Synth, SlideshowIsTemporallyStaticBetweenCuts)
{
    SynthParams p =
        presetFor(ContentClass::Slideshow, 160, 128, 30.0, 10, 3);
    p.scene_cut_interval = 10.0;  // no cut inside the clip
    const Video v = synthesize(p);
    EXPECT_LT(planeMeanAbsDiff(v.frame(0).y(), v.frame(9).y()), 0.01);
}

TEST(Synth, SceneCutChangesContent)
{
    SynthParams p =
        presetFor(ContentClass::Slideshow, 160, 128, 30.0, 12, 3);
    p.scene_cut_interval = 0.2;  // cut at frame 6
    const Video v = synthesize(p);
    EXPECT_LT(planeMeanAbsDiff(v.frame(0).y(), v.frame(5).y()), 0.01);
    EXPECT_GT(planeMeanAbsDiff(v.frame(5).y(), v.frame(6).y()), 4.0);
}

TEST(Synth, NoiseCreatesTemporalDifference)
{
    SynthParams quiet =
        presetFor(ContentClass::Slideshow, 160, 128, 30.0, 2, 9);
    SynthParams noisy = quiet;
    noisy.noise = 8.0;
    const Video vq = synthesize(quiet);
    const Video vn = synthesize(noisy);
    EXPECT_LT(planeMeanAbsDiff(vq.frame(0).y(), vq.frame(1).y()), 0.01);
    EXPECT_GT(planeMeanAbsDiff(vn.frame(0).y(), vn.frame(1).y()), 1.0);
}

TEST(Synth, PanMovesContentCoherently)
{
    SynthParams p = presetFor(ContentClass::Natural, 256, 128, 30.0, 6, 11);
    p.noise = 0;
    p.object_density = 0;
    p.pan_speed = 4.0;
    const Video v = synthesize(p);
    // Frames differ (motion) ...
    EXPECT_GT(planeMeanAbsDiff(v.frame(0).y(), v.frame(5).y()), 1.0);
    // ... but consecutive frames differ less than distant ones
    // (coherent drift, not noise).
    EXPECT_LT(planeMeanAbsDiff(v.frame(0).y(), v.frame(1).y()),
              planeMeanAbsDiff(v.frame(0).y(), v.frame(5).y()));
}

TEST(Synth, PosterizeProducesFlatBands)
{
    SynthParams p =
        presetFor(ContentClass::Screencast, 160, 128, 30.0, 1, 13);
    p.noise = 0;
    p.object_density = 0;
    const Video v = synthesize(p);
    // Count distinct luma values: posterization keeps it small.
    bool seen[256] = {};
    int distinct = 0;
    const Plane &y = v.frame(0).y();
    for (int r = 0; r < y.height(); ++r)
        for (int c = 0; c < y.width(); ++c)
            if (!seen[y.at(c, r)]) {
                seen[y.at(c, r)] = true;
                ++distinct;
            }
    EXPECT_LT(distinct, 40);
}

TEST(Synth, EntropyScaleIncreasesNoise)
{
    const SynthParams base =
        presetFor(ContentClass::Natural, 64, 64, 30, 1, 1, 1.0);
    const SynthParams scaled =
        presetFor(ContentClass::Natural, 64, 64, 30, 1, 1, 4.0);
    EXPECT_GT(scaled.noise, base.noise);
    EXPECT_GT(scaled.pan_speed, base.pan_speed);
}

TEST(Synth, HudOverlayIsStaticAcrossMotion)
{
    // The gaming HUD renders in screen coordinates: identical pixels
    // every frame even while the world pans underneath — which is why
    // it inter-predicts for free.
    SynthParams p = presetFor(ContentClass::Gaming, 160, 128, 30.0, 6, 19);
    p.noise = 0;
    p.flicker = 0;
    p.scene_cut_interval = 0;
    const Video v = synthesize(p);
    const int bar = std::max(8, p.height / 12);
    for (int t = 1; t < v.frameCount(); ++t) {
        for (int y = p.height - bar; y < p.height; ++y) {
            for (int x = 0; x < p.width; x += 7) {
                ASSERT_EQ(v.frame(t).y().at(x, y),
                          v.frame(0).y().at(x, y))
                    << "frame " << t << " (" << x << "," << y << ")";
            }
        }
    }
}

TEST(Synth, FlickerChangesGlobalLuma)
{
    SynthParams p = presetFor(ContentClass::Gaming, 96, 96, 30.0, 4, 23);
    p.noise = 0;
    p.object_density = 0;
    p.pan_speed = 0;
    p.scene_cut_interval = 0;
    p.hud_overlay = false;
    p.flicker = 10;
    const Video v = synthesize(p);
    // Some pair of frames must differ in mean luma (the flicker).
    auto mean = [&](int t) {
        const Plane &y = v.frame(t).y();
        long sum = 0;
        for (int r = 0; r < y.height(); ++r)
            for (int c = 0; c < y.width(); ++c)
                sum += y.at(c, r);
        return static_cast<double>(sum) / y.size();
    };
    double lo = 1e9, hi = -1e9;
    for (int t = 0; t < v.frameCount(); ++t) {
        lo = std::min(lo, mean(t));
        hi = std::max(hi, mean(t));
    }
    EXPECT_GT(hi - lo, 1.0);
}

TEST(Synth, ContentClassNames)
{
    EXPECT_STREQ(toString(ContentClass::Slideshow), "slideshow");
    EXPECT_STREQ(toString(ContentClass::Noisy), "noisy");
}

} // namespace
} // namespace vbench::video
