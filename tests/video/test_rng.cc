/**
 * @file
 * Deterministic PRNG sanity tests.
 */

#include <gtest/gtest.h>

#include "video/rng.h"

namespace vbench::video {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(12345);
    Rng b(12345);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(99);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, RangeIsInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const int64_t v = rng.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsRoughlyStandard)
{
    Rng rng(55);
    double sum = 0, sum2 = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sum2 += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

} // namespace
} // namespace vbench::video
