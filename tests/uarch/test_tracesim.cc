/**
 * @file
 * Trace simulator integration tests: synthetic kernel streams and real
 * instrumented encodes must produce the paper's qualitative trends.
 */

#include <gtest/gtest.h>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "uarch/tracesim.h"
#include "video/rng.h"
#include "video/synth.h"

namespace vbench::uarch {
namespace {

TEST(TraceSim, EmptyRunIsAllZero)
{
    TraceSimulator sim;
    const UarchReport rep = sim.report();
    EXPECT_EQ(rep.instructions, 0);
    EXPECT_EQ(rep.l1i_mpki, 0);
}

TEST(TraceSim, RecordsAccumulateWork)
{
    TraceSimulator sim;
    sim.record(KernelId::Sad, 100);
    sim.record(KernelId::Sad, 50);
    const UarchReport rep = sim.report();
    EXPECT_DOUBLE_EQ(rep.work[KernelId::Sad], 150.0);
    EXPECT_GT(rep.instructions, 0);
}

TEST(TraceSim, SmallKernelSetFitsInIcache)
{
    // Two kernels looping forever: after warmup, no I$ misses.
    TraceSimulator sim;
    for (int i = 0; i < 2000; ++i) {
        sim.record(KernelId::Sad, 64);
        sim.record(KernelId::TransformFwd, 16);
    }
    const UarchReport rep = sim.report();
    EXPECT_LT(rep.l1i_mpki, 0.5);
}

TEST(TraceSim, LargeKernelSetThrashesIcache)
{
    // Interleaving every kernel exceeds 32 KiB of code: the I$ MPKI
    // must be clearly higher than the two-kernel case.
    TraceSimulator small_sim;
    TraceSimulator big_sim;
    for (int i = 0; i < 500; ++i) {
        small_sim.record(KernelId::Sad, 64);
        small_sim.record(KernelId::TransformFwd, 16);
        for (int k = 0; k < kNumKernels; ++k)
            big_sim.record(static_cast<KernelId>(k), 16);
    }
    EXPECT_GT(big_sim.report().l1i_mpki,
              2.0 * small_sim.report().l1i_mpki);
}

TEST(TraceSim, RandomDecisionBitsRaiseBranchMpki)
{
    TraceSimulator predictable;
    TraceSimulator random;
    video::Rng rng(3);
    for (int i = 0; i < 3000; ++i) {
        predictable.record(KernelId::ModeDecision, 8, 0xFF, 8);
        random.record(KernelId::ModeDecision, 8, rng.next(), 8);
    }
    EXPECT_GT(random.report().branch_mpki,
              predictable.report().branch_mpki * 1.5);
}

TEST(TraceSim, StreamingDataMissesInLlc)
{
    TraceSimConfig cfg;
    cfg.caches.l3 = {1024 * 1024, 16, 64};  // 1 MiB LLC
    TraceSimulator sim(cfg);
    // Stream 64 MiB of "pixels" through one kernel.
    std::vector<uint8_t> buffer(1 << 20);
    for (int pass = 0; pass < 64; ++pass) {
        sim.record(KernelId::FrameCopy, buffer.size() / 64, 0, 0,
                   {MemRegion{buffer.data(),
                              static_cast<uint32_t>(buffer.size()), 1, 0,
                              false}});
    }
    EXPECT_GT(sim.report().l3_mpki, 0.5);
}

TEST(TraceSim, SamplingKeepsRatiosStable)
{
    // MPKI with 1:4 sampling should approximate unsampled MPKI.
    TraceSimConfig full_cfg;
    TraceSimConfig sampled_cfg;
    sampled_cfg.sample_shift = 2;
    TraceSimulator full(full_cfg);
    TraceSimulator sampled(sampled_cfg);
    video::Rng rng(7);
    for (int i = 0; i < 8000; ++i) {
        const KernelId k = static_cast<KernelId>(rng.below(kNumKernels));
        const uint64_t bits = rng.next();
        full.record(k, 32, bits, 16);
        sampled.record(k, 32, bits, 16);
    }
    const UarchReport a = full.report();
    const UarchReport b = sampled.report();
    EXPECT_NEAR(b.l1i_mpki, a.l1i_mpki, a.l1i_mpki * 0.5 + 0.1);
    EXPECT_NEAR(b.branch_mpki, a.branch_mpki, a.branch_mpki * 0.5 + 0.1);
}

/** End-to-end: instrumented transcodes of easy vs hard content. */
class InstrumentedEncode : public ::testing::Test
{
  protected:
    UarchReport
    profile(video::ContentClass content, double scale)
    {
        const video::SynthParams p = video::presetFor(
            content, 192, 160, 30.0, 6, 31, scale);
        const video::Video clip = video::synthesize(p);

        TraceSimulator sim;
        codec::EncoderConfig cfg;
        cfg.rc.mode = codec::RcMode::Cqp;
        cfg.rc.qp = 26;
        cfg.effort = 5;
        cfg.gop = 0;
        cfg.probe = &sim;
        codec::Encoder encoder(cfg);
        const codec::EncodeResult result = encoder.encode(clip);

        codec::DecoderConfig dcfg;
        dcfg.probe = &sim;
        EXPECT_TRUE(codec::decode(result.stream, dcfg).has_value());
        return sim.report();
    }
};

TEST_F(InstrumentedEncode, ProbeDoesNotPerturbTheBitstream)
{
    // Instrumentation must be observational: attaching a probe may not
    // change a single encode decision (the Platform scenario and all
    // uarch figures rest on this).
    const video::Video clip = video::synthesize(video::presetFor(
        video::ContentClass::Gaming, 160, 128, 30.0, 5, 77));
    codec::EncoderConfig cfg;
    cfg.rc.mode = codec::RcMode::Cqp;
    cfg.rc.qp = 27;
    cfg.effort = 6;

    codec::Encoder plain(cfg);
    const codec::ByteBuffer without = plain.encode(clip).stream;

    TraceSimulator sim;
    cfg.probe = &sim;
    codec::Encoder probed(cfg);
    const codec::ByteBuffer with = probed.encode(clip).stream;

    EXPECT_EQ(without, with);
    EXPECT_GT(sim.report().instructions, 0);
}

TEST_F(InstrumentedEncode, ComplexContentExecutesMoreInstructionsPerPixel)
{
    const UarchReport quiet =
        profile(video::ContentClass::Slideshow, 1.0);
    const UarchReport noisy = profile(video::ContentClass::Noisy, 1.5);
    EXPECT_GT(noisy.instructions, 1.2 * quiet.instructions);
}

TEST_F(InstrumentedEncode, ComplexContentHasWorseFrontend)
{
    const UarchReport quiet =
        profile(video::ContentClass::Slideshow, 1.0);
    const UarchReport noisy = profile(video::ContentClass::Noisy, 1.5);
    EXPECT_GT(noisy.l1i_mpki, quiet.l1i_mpki);
    EXPECT_GT(noisy.branch_mpki, quiet.branch_mpki);
}

TEST_F(InstrumentedEncode, ScalarFractionDominates)
{
    const UarchReport rep = profile(video::ContentClass::Natural, 1.0);
    const double scalar = rep.cycles.scalarFraction();
    EXPECT_GT(scalar, 0.40);
    EXPECT_LT(scalar, 0.85);
}

TEST_F(InstrumentedEncode, TopDownFractionsAreSane)
{
    const UarchReport rep = profile(video::ContentClass::Natural, 1.0);
    EXPECT_NEAR(rep.topdown.total(), 1.0, 1e-9);
    EXPECT_GT(rep.topdown.retiring, 0.2);
    EXPECT_LT(rep.topdown.frontend, 0.5);
}

} // namespace
} // namespace vbench::uarch
