/**
 * @file
 * Branch predictor model tests.
 */

#include <gtest/gtest.h>

#include "uarch/branch.h"
#include "video/rng.h"

namespace vbench::uarch {
namespace {

double
mispredictRate(BranchPredictor &bp)
{
    return static_cast<double>(bp.mispredicts()) /
        static_cast<double>(bp.lookups());
}

TEST(Bimodal, LearnsAlwaysTaken)
{
    BimodalPredictor bp;
    for (int i = 0; i < 1000; ++i)
        bp.predict(0x400, true);
    EXPECT_LT(mispredictRate(bp), 0.01);
}

TEST(Bimodal, RandomOutcomesNearFiftyPercent)
{
    BimodalPredictor bp;
    video::Rng rng(3);
    for (int i = 0; i < 20000; ++i)
        bp.predict(0x400, rng.below(2) == 1);
    EXPECT_NEAR(mispredictRate(bp), 0.5, 0.05);
}

TEST(Gshare, LearnsShortLoopPattern)
{
    // Loop of trip count 4: pattern T T T N. History-based
    // prediction learns it almost perfectly; bimodal cannot.
    GsharePredictor gshare;
    BimodalPredictor bimodal;
    for (int i = 0; i < 40000; ++i) {
        const bool taken = (i % 4) != 3;
        gshare.predict(0x400, taken);
        bimodal.predict(0x400, taken);
    }
    EXPECT_LT(mispredictRate(gshare), 0.02);
    EXPECT_GT(mispredictRate(bimodal), 0.15);
}

TEST(Gshare, DistinguishesBranchesByPc)
{
    GsharePredictor bp;
    for (int i = 0; i < 10000; ++i) {
        bp.predict(0x100, true);
        bp.predict(0x200, false);
    }
    EXPECT_LT(mispredictRate(bp), 0.02);
}

TEST(Gshare, RandomOutcomesStayHard)
{
    GsharePredictor bp;
    video::Rng rng(9);
    for (int i = 0; i < 20000; ++i)
        bp.predict(0x400, rng.below(2) == 1);
    EXPECT_GT(mispredictRate(bp), 0.4);
}

TEST(Gshare, BiasedStreamBeatsCoinFlip)
{
    GsharePredictor bp;
    video::Rng rng(10);
    for (int i = 0; i < 20000; ++i)
        bp.predict(0x400, rng.below(100) < 85);
    EXPECT_LT(mispredictRate(bp), 0.30);
}

TEST(Predictor, StatsReset)
{
    GsharePredictor bp;
    bp.predict(0x1, true);
    bp.predict(0x1, true);
    bp.resetStats();
    EXPECT_EQ(bp.lookups(), 0u);
    EXPECT_EQ(bp.mispredicts(), 0u);
}

} // namespace
} // namespace vbench::uarch
