/**
 * @file
 * SIMD/ISA dispatch model tests (the Fig. 7-8 machinery).
 */

#include <gtest/gtest.h>

#include "uarch/simd.h"

namespace vbench::uarch {
namespace {

KernelWork
sampleWork()
{
    KernelWork work;
    work[KernelId::Sad] = 1000;
    work[KernelId::TransformFwd] = 4000;
    work[KernelId::Quant] = 4000;
    work[KernelId::EntropyVlc] = 20000;
    work[KernelId::Dispatch] = 500;
    work[KernelId::MotionSearchCtl] = 8000;
    return work;
}

TEST(Simd, ScalarBaselineHasNoVectorInstructions)
{
    const InstrCounts counts =
        instructionCount(sampleWork(), IsaLevel::Scalar);
    EXPECT_EQ(counts.vector, 0);
    EXPECT_GT(counts.scalar, 0);
}

TEST(Simd, WiderIsaReducesVectorInstructionCount)
{
    const KernelWork work = sampleWork();
    double prev = 1e30;
    for (IsaLevel level : {IsaLevel::SSE, IsaLevel::SSE2, IsaLevel::SSE4,
                           IsaLevel::AVX2}) {
        const InstrCounts counts = instructionCount(work, level);
        EXPECT_LT(counts.vector, prev) << isaName(level);
        prev = counts.vector;
    }
}

TEST(Simd, ScalarInstructionCountInvariantToIsa)
{
    const KernelWork work = sampleWork();
    const double base = instructionCount(work, IsaLevel::SSE2).scalar;
    EXPECT_DOUBLE_EQ(instructionCount(work, IsaLevel::AVX2).scalar, base);
    EXPECT_DOUBLE_EQ(instructionCount(work, IsaLevel::SSE4).scalar, base);
}

TEST(Simd, Sse2IsTheBigIntegerJump)
{
    // SSE -> SSE2 must shrink total cycles more than SSE2 -> SSE3
    // (128-bit integer ops arrive with SSE2).
    const KernelWork work = sampleWork();
    const double sse = simdCycles(work, IsaLevel::SSE).total();
    const double sse2 = simdCycles(work, IsaLevel::SSE2).total();
    const double sse3 = simdCycles(work, IsaLevel::SSE3).total();
    EXPECT_GT(sse - sse2, sse2 - sse3);
    EXPECT_LT(sse2, sse);
    EXPECT_LE(sse3, sse2);
}

TEST(Simd, WidthCapLimitsAvx2Benefit)
{
    // A 128-bit-capped kernel gains nothing from AVX2 over AVX and is
    // attributed to the AVX bucket on an AVX2 machine.
    EXPECT_DOUBLE_EQ(elementsPerVectorInstr(IsaLevel::AVX2, 128),
                     elementsPerVectorInstr(IsaLevel::AVX, 128));
    EXPECT_GT(elementsPerVectorInstr(IsaLevel::AVX2, 256),
              elementsPerVectorInstr(IsaLevel::AVX, 256));
    EXPECT_EQ(encodingBucket(IsaLevel::AVX2, 128), IsaLevel::AVX);
    EXPECT_EQ(encodingBucket(IsaLevel::AVX2, 256), IsaLevel::AVX2);
    EXPECT_EQ(encodingBucket(IsaLevel::SSE2, 128), IsaLevel::SSE2);
}

TEST(Simd, EntropyKernelsNeverVectorize)
{
    KernelWork work;
    work[KernelId::EntropyArith] = 10000;
    const CycleBreakdown cycles = simdCycles(work, IsaLevel::AVX2);
    EXPECT_DOUBLE_EQ(cycles.total(),
                     cycles.cycles[static_cast<int>(IsaLevel::Scalar)]);
}

TEST(Simd, CycleBucketsSumToTotal)
{
    const CycleBreakdown b = simdCycles(sampleWork(), IsaLevel::AVX2);
    double sum = 0;
    for (int i = 0; i < kNumIsaLevels; ++i)
        sum += b.cycles[i];
    EXPECT_DOUBLE_EQ(sum, b.total());
    EXPECT_NEAR(b.fraction(IsaLevel::Scalar) +
                    b.fraction(IsaLevel::AVX) +
                    b.fraction(IsaLevel::AVX2) +
                    b.fraction(IsaLevel::SSE) + b.fraction(IsaLevel::SSE2) +
                    b.fraction(IsaLevel::SSE3) + b.fraction(IsaLevel::SSE4),
                1.0, 1e-9);
}

TEST(Simd, KernelTableIsConsistent)
{
    // Footprints must tile the text segment without overlap.
    uint32_t expected_base = 0;
    for (int k = 0; k < kNumKernels; ++k) {
        const KernelModel &m = kernelModel(static_cast<KernelId>(k));
        EXPECT_EQ(m.code_base, expected_base) << kernelName(m.id);
        EXPECT_GT(m.code_size, 0u);
        expected_base += m.code_size;
    }
    EXPECT_EQ(textSegmentSize(), expected_base);
    // The full tool set must exceed a 32 KiB L1I.
    EXPECT_GT(textSegmentSize(), 64u * 1024);
}

TEST(Simd, IsaNames)
{
    EXPECT_STREQ(isaName(IsaLevel::Scalar), "scalar");
    EXPECT_STREQ(isaName(IsaLevel::AVX2), "avx2");
}

} // namespace
} // namespace vbench::uarch
