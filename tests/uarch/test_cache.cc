/**
 * @file
 * Cache model tests against hand-traced sequences.
 */

#include <gtest/gtest.h>

#include "uarch/cache.h"

namespace vbench::uarch {
namespace {

TEST(Cache, ColdMissThenHit)
{
    CacheModel cache({1024, 2, 64});
    EXPECT_FALSE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1030));  // same line
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 2u);
}

TEST(Cache, GeometryDerivation)
{
    CacheModel cache({32 * 1024, 8, 64});
    EXPECT_EQ(cache.numSets(), 64);
    EXPECT_EQ(cache.ways(), 8);
}

TEST(Cache, LruEvictionOrder)
{
    // 2-way, 8 sets of 64B lines => addresses 0, 1024, 2048 map to
    // set 0 (line address mod 8).
    CacheModel cache({1024, 2, 64});
    cache.access(0);        // miss, set 0 way 0
    cache.access(512);      // miss, set 0 way 1 (line 8 -> set 0)
    cache.access(0);        // hit: 0 becomes MRU
    cache.access(1024);     // miss: evicts 512 (LRU)
    EXPECT_TRUE(cache.access(0));
    EXPECT_FALSE(cache.access(512));  // was evicted
    EXPECT_EQ(cache.misses(), 4u);
}

TEST(Cache, WorkingSetLargerThanCacheThrashes)
{
    CacheModel cache({4096, 4, 64});  // 64 lines
    // Stream 128 distinct lines twice: no reuse survives.
    for (int pass = 0; pass < 2; ++pass)
        for (int line = 0; line < 128; ++line)
            cache.access(static_cast<uint64_t>(line) * 64);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 256u);
}

TEST(Cache, WorkingSetSmallerThanCacheHitsOnSecondPass)
{
    CacheModel cache({4096, 4, 64});
    for (int pass = 0; pass < 2; ++pass)
        for (int line = 0; line < 32; ++line)
            cache.access(static_cast<uint64_t>(line) * 64);
    EXPECT_EQ(cache.misses(), 32u);
    EXPECT_EQ(cache.hits(), 32u);
}

TEST(Cache, AccessRangeTouchesEveryLine)
{
    CacheModel cache({8192, 8, 64});
    cache.accessRange(100, 300);  // spans lines 1..6 inclusive
    EXPECT_EQ(cache.accesses(), 6u);
}

TEST(Cache, FlushInvalidatesContents)
{
    CacheModel cache({1024, 2, 64});
    cache.access(0);
    cache.flush();
    EXPECT_FALSE(cache.access(0));
}

TEST(Hierarchy, MissPathFillsAllLevels)
{
    CacheHierarchy h;
    h.touch(0x5000, 64);
    EXPECT_EQ(h.l1d().misses(), 1u);
    EXPECT_EQ(h.l2().misses(), 1u);
    EXPECT_EQ(h.l3().misses(), 1u);
    // Second touch hits in L1D; lower levels see nothing.
    h.touch(0x5000, 64);
    EXPECT_EQ(h.l1d().hits(), 1u);
    EXPECT_EQ(h.l2().accesses(), 1u);
}

TEST(Hierarchy, InstructionAndDataPathsAreSeparateAtL1)
{
    CacheHierarchy h;
    h.fetch(0x8000, 64);
    h.touch(0x8000, 64);
    EXPECT_EQ(h.l1i().misses(), 1u);
    EXPECT_EQ(h.l1d().misses(), 1u);
    // Both L1 misses went to L2: second one hits there.
    EXPECT_EQ(h.l2().misses(), 1u);
    EXPECT_EQ(h.l2().hits(), 1u);
}

TEST(Hierarchy, L1EvictionStillHitsInL2)
{
    CacheHierarchy::Config cfg;
    cfg.l1d = {1024, 2, 64};  // tiny L1D: 16 lines
    CacheHierarchy h(cfg);
    for (int line = 0; line < 64; ++line)
        h.touch(static_cast<uint64_t>(line) * 64, 1);
    h.resetStats();
    for (int line = 0; line < 64; ++line)
        h.touch(static_cast<uint64_t>(line) * 64, 1);
    EXPECT_GT(h.l1d().misses(), 0u);   // thrashes tiny L1
    EXPECT_EQ(h.l2().misses(), 0u);    // but L2 kept everything
    EXPECT_GT(h.l2().hits(), 0u);
}

} // namespace
} // namespace vbench::uarch
