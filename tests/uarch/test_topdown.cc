/**
 * @file
 * Top-Down cycle accounting tests.
 */

#include <gtest/gtest.h>

#include "uarch/topdown.h"

namespace vbench::uarch {
namespace {

TopDownInputs
cleanRun()
{
    TopDownInputs in;
    in.instructions = 1e9;
    in.vector_instructions = 1e8;
    in.l1i_misses = 1e6;
    in.branch_mispredicts = 2e6;
    in.l1d_misses = 5e6;
    in.l2_misses = 1e6;
    in.l3_misses = 2e5;
    return in;
}

TEST(TopDown, FractionsSumToOne)
{
    const TopDownBreakdown b = topDown(cleanRun());
    EXPECT_NEAR(b.total(), 1.0, 1e-12);
    EXPECT_GT(b.retiring, 0);
    EXPECT_GT(b.frontend, 0);
}

TEST(TopDown, ZeroInstructionsDegradesGracefully)
{
    const TopDownBreakdown b = topDown(TopDownInputs{});
    EXPECT_DOUBLE_EQ(b.retiring, 1.0);
}

TEST(TopDown, MoreIcacheMissesRaiseFrontend)
{
    TopDownInputs a = cleanRun();
    TopDownInputs b = cleanRun();
    b.l1i_misses *= 10;
    EXPECT_GT(topDown(b).frontend, topDown(a).frontend);
}

TEST(TopDown, MoreMispredictsRaiseBadSpeculation)
{
    TopDownInputs a = cleanRun();
    TopDownInputs b = cleanRun();
    b.branch_mispredicts *= 10;
    EXPECT_GT(topDown(b).bad_speculation, topDown(a).bad_speculation);
}

TEST(TopDown, MoreLlcMissesRaiseMemoryBound)
{
    TopDownInputs a = cleanRun();
    TopDownInputs b = cleanRun();
    b.l3_misses *= 20;
    EXPECT_GT(topDown(b).backend_memory, topDown(a).backend_memory);
    // And the retiring share shrinks correspondingly.
    EXPECT_LT(topDown(b).retiring, topDown(a).retiring);
}

TEST(TopDown, ModeledCyclesMatchBreakdownNormalization)
{
    const TopDownInputs in = cleanRun();
    const TopDownBreakdown b = topDown(in);
    const double cycles = modeledCycles(in);
    // retiring fraction x total cycles = ideal retire cycles.
    EXPECT_NEAR(b.retiring * cycles,
                in.instructions / TopDownParams{}.issue_width,
                cycles * 1e-9);
}

TEST(TopDown, ModeledCyclesRespondToMachineParameters)
{
    const TopDownInputs in = cleanRun();
    TopDownParams slow;
    slow.dram_latency = 400;
    TopDownParams wide;
    wide.issue_width = 8;
    EXPECT_GT(modeledCycles(in, slow), modeledCycles(in));
    EXPECT_LT(modeledCycles(in, wide), modeledCycles(in));
}

TEST(TopDown, PerfectRunIsRetireDominated)
{
    TopDownInputs in;
    in.instructions = 1e9;
    const TopDownBreakdown b = topDown(in);
    EXPECT_GT(b.retiring, 0.6);
}

TEST(TopDown, DefaultsLandNearPaperProfile)
{
    // With event rates typical of our instrumented VOD transcodes
    // (see bench_fig6_topdown) the calibrated defaults should land in
    // the paper's bands: FE ~15%, BAD ~10%, Mem ~15%, Core+RET ~60%.
    TopDownInputs in;
    in.instructions = 1e9;
    in.vector_instructions = 1.2e8;
    in.l1i_misses = 3.0e6;      // ~3 MPKI
    in.branch_mispredicts = 2.5e6;
    in.l1d_misses = 12e6;
    in.l2_misses = 4e6;
    in.l3_misses = 1.2e6;
    const TopDownBreakdown b = topDown(in);
    EXPECT_NEAR(b.frontend, 0.15, 0.08);
    EXPECT_NEAR(b.bad_speculation, 0.10, 0.06);
    EXPECT_NEAR(b.backend_memory, 0.15, 0.09);
    EXPECT_GT(b.backend_core + b.retiring, 0.45);
}

} // namespace
} // namespace vbench::uarch
