/**
 * @file
 * Dispatch-layer tests: VBENCH_ISA name parsing, table availability
 * invariants, the ScopedKernelIsa test hook, and the headline
 * guarantee — encoded streams and quality scores are byte-identical
 * across every ISA level available on the host, for both codecs.
 */

#include <gtest/gtest.h>

#include <vector>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "kernels/kernel_ops.h"
#include "metrics/psnr.h"
#include "metrics/ssim.h"
#include "ngc/ngc_encoder.h"
#include "video/synth.h"

using vbench::kernels::Isa;
using vbench::kernels::KernelOps;
using vbench::kernels::ScopedKernelIsa;

namespace {

std::vector<Isa>
availableLevels()
{
    std::vector<Isa> out;
    for (const Isa isa : {Isa::Scalar, Isa::Sse2, Isa::Avx2}) {
        if (vbench::kernels::opsFor(isa) != nullptr)
            out.push_back(isa);
    }
    return out;
}

} // namespace

TEST(KernelDispatch, ParseIsaName)
{
    using vbench::kernels::parseIsaName;
    EXPECT_EQ(parseIsaName("scalar"), Isa::Scalar);
    EXPECT_EQ(parseIsaName("sse2"), Isa::Sse2);
    EXPECT_EQ(parseIsaName("avx2"), Isa::Avx2);
    EXPECT_EQ(parseIsaName("SCALAR"), Isa::Scalar);
    EXPECT_EQ(parseIsaName("Avx2"), Isa::Avx2);
    EXPECT_EQ(parseIsaName("native"),
              vbench::kernels::detectBestIsa());
    EXPECT_FALSE(parseIsaName("").has_value());
    EXPECT_FALSE(parseIsaName("sse4").has_value());
    EXPECT_FALSE(parseIsaName("avx512").has_value());
}

TEST(KernelDispatch, TableInvariants)
{
    // Scalar is always available and fully populated.
    const KernelOps *scalar = vbench::kernels::opsFor(Isa::Scalar);
    ASSERT_NE(scalar, nullptr);
    EXPECT_EQ(scalar->isa, Isa::Scalar);
    EXPECT_STREQ(scalar->name, "scalar");

    for (const Isa isa : availableLevels()) {
        const KernelOps *t = vbench::kernels::opsFor(isa);
        ASSERT_NE(t, nullptr);
        EXPECT_EQ(t->isa, isa);
        EXPECT_STREQ(t->name, vbench::kernels::isaName(isa));
        // Every entry must be callable (vector tables inherit scalar
        // pointers for kernels they do not override).
        EXPECT_NE(t->sad, nullptr);
        EXPECT_NE(t->satd, nullptr);
        EXPECT_NE(t->copy2d, nullptr);
        EXPECT_NE(t->interpH, nullptr);
        EXPECT_NE(t->interpV, nullptr);
        EXPECT_NE(t->interpHV, nullptr);
        EXPECT_NE(t->fwdTx4x4, nullptr);
        EXPECT_NE(t->invTx4x4, nullptr);
        EXPECT_NE(t->fwdTx8x8, nullptr);
        EXPECT_NE(t->invTx8x8, nullptr);
        EXPECT_NE(t->quant4x4, nullptr);
        EXPECT_NE(t->dequant4x4, nullptr);
        EXPECT_NE(t->diffBlock, nullptr);
        EXPECT_NE(t->addClampBlock, nullptr);
        EXPECT_NE(t->deblockEdgeH, nullptr);
        EXPECT_NE(t->sse8, nullptr);
        EXPECT_NE(t->ssimWindowSums, nullptr);
    }

    // The active table is one of the available levels.
    const Isa active = vbench::kernels::activeIsa();
    EXPECT_NE(vbench::kernels::opsFor(active), nullptr);
    EXPECT_EQ(vbench::kernels::ops().isa, active);
}

TEST(KernelDispatch, ScopedIsaSwapsAndRestores)
{
    const Isa before = vbench::kernels::activeIsa();
    {
        ScopedKernelIsa pin(Isa::Scalar);
        EXPECT_EQ(vbench::kernels::activeIsa(), Isa::Scalar);
        {
            ScopedKernelIsa inner(vbench::kernels::detectBestIsa());
            EXPECT_EQ(vbench::kernels::activeIsa(),
                      vbench::kernels::detectBestIsa());
        }
        EXPECT_EQ(vbench::kernels::activeIsa(), Isa::Scalar);
    }
    EXPECT_EQ(vbench::kernels::activeIsa(), before);
}

TEST(KernelDispatch, EncodeBitExactAcrossIsaLevels)
{
    namespace video = vbench::video;
    const video::Video clip = video::synthesize(
        video::presetFor(video::ContentClass::Natural, 144, 112, 30.0, 4,
                         123),
        "isa-sweep");

    struct Result {
        std::vector<uint8_t> vbc;
        std::vector<uint8_t> ngc;
        double psnr;
        double ssim;
    };
    std::vector<Result> results;

    for (const Isa isa : availableLevels()) {
        ScopedKernelIsa pin(isa);

        vbench::codec::EncoderConfig vbc_cfg;
        vbc_cfg.rc.mode = vbench::codec::RcMode::Cqp;
        vbc_cfg.rc.qp = 30;
        vbc_cfg.effort = 2;
        vbc_cfg.gop = 4;
        vbench::codec::Encoder vbc(vbc_cfg);
        const auto vbc_out = vbc.encode(clip);

        vbench::ngc::NgcConfig ngc_cfg;
        ngc_cfg.rc.mode = vbench::codec::RcMode::Cqp;
        ngc_cfg.rc.qp = 30;
        ngc_cfg.speed = 1;
        ngc_cfg.gop = 4;
        vbench::ngc::NgcEncoder ngc(ngc_cfg);
        const auto ngc_out = ngc.encode(clip);

        // Decode under the same pinned ISA: the decoder's kernels must
        // reconstruct identically too, and the metrics kernels must
        // score identically.
        const auto decoded = vbench::codec::decode(vbc_out.stream);
        ASSERT_TRUE(decoded.has_value());
        results.push_back({vbc_out.stream, ngc_out.stream,
                           vbench::metrics::videoPsnr(clip, *decoded),
                           vbench::metrics::videoSsim(clip, *decoded)});
    }

    ASSERT_FALSE(results.empty());
    for (size_t i = 1; i < results.size(); ++i) {
        EXPECT_EQ(results[0].vbc, results[i].vbc)
            << "VBC stream differs at ISA level " << i;
        EXPECT_EQ(results[0].ngc, results[i].ngc)
            << "NGC stream differs at ISA level " << i;
        EXPECT_EQ(results[0].psnr, results[i].psnr)
            << "PSNR differs at ISA level " << i;
        EXPECT_EQ(results[0].ssim, results[i].ssim)
            << "SSIM differs at ISA level " << i;
    }
}
