/**
 * @file
 * Randomized bit-exactness tests: every vector kernel backend must
 * match the scalar reference exactly, for realistic and adversarial
 * inputs, across block shapes whose widths are not multiples of the
 * vector lane count (tail handling) and with strides wider than the
 * block.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "kernels/kernel_ops.h"
#include "video/rng.h"

using vbench::kernels::Isa;
using vbench::kernels::KernelOps;
using vbench::kernels::opsFor;
using vbench::kernels::scalarOps;
using vbench::video::Rng;

namespace {

/** Vector backends available on this host/build (may be empty). */
std::vector<const KernelOps *>
vectorBackends()
{
    std::vector<const KernelOps *> out;
    if (const KernelOps *t = opsFor(Isa::Sse2))
        out.push_back(t);
    if (const KernelOps *t = opsFor(Isa::Avx2))
        out.push_back(t);
    return out;
}

std::vector<uint8_t>
randomBytes(Rng &rng, size_t n)
{
    std::vector<uint8_t> v(n);
    for (auto &b : v)
        b = static_cast<uint8_t>(rng.below(256));
    return v;
}

// Block shapes covering lane multiples and every tail class.
constexpr int kWidths[] = {1, 2, 3, 5, 7, 8, 9, 12, 15, 16, 17,
                           24, 31, 32, 33, 40, 48, 64};
constexpr int kHeights[] = {1, 2, 3, 4, 7, 8, 13, 16, 17};

} // namespace

TEST(KernelsEquiv, Sad)
{
    Rng rng(11);
    const KernelOps &ref = *scalarOps();
    for (const KernelOps *vec : vectorBackends()) {
        for (int w : kWidths) {
            for (int h : kHeights) {
                const int a_stride = w + static_cast<int>(rng.below(9));
                const int b_stride = w + static_cast<int>(rng.below(9));
                const auto a =
                    randomBytes(rng, static_cast<size_t>(a_stride) * h);
                const auto b =
                    randomBytes(rng, static_cast<size_t>(b_stride) * h);
                EXPECT_EQ(
                    ref.sad(a.data(), a_stride, b.data(), b_stride, w, h),
                    vec->sad(a.data(), a_stride, b.data(), b_stride, w,
                             h))
                    << vec->name << " w=" << w << " h=" << h;
            }
        }
    }
}

TEST(KernelsEquiv, Satd)
{
    Rng rng(12);
    const KernelOps &ref = *scalarOps();
    for (const KernelOps *vec : vectorBackends()) {
        for (int w : {4, 8, 12, 16, 32}) {
            for (int h : {4, 8, 16}) {
                const int a_stride = w + static_cast<int>(rng.below(9));
                const int b_stride = w + static_cast<int>(rng.below(9));
                const auto a =
                    randomBytes(rng, static_cast<size_t>(a_stride) * h);
                const auto b =
                    randomBytes(rng, static_cast<size_t>(b_stride) * h);
                EXPECT_EQ(ref.satd(a.data(), a_stride, b.data(), b_stride,
                                   w, h),
                          vec->satd(a.data(), a_stride, b.data(),
                                    b_stride, w, h))
                    << vec->name << " w=" << w << " h=" << h;
            }
        }
    }
}

TEST(KernelsEquiv, CopyAndInterp)
{
    Rng rng(13);
    const KernelOps &ref = *scalarOps();
    for (const KernelOps *vec : vectorBackends()) {
        for (int w : kWidths) {
            for (int h : {1, 2, 5, 8, 16}) {
                // +1 column and +1 row of margin for the 2x2 taps.
                const int src_stride = w + 1 + static_cast<int>(rng.below(8));
                const int dst_stride = w + static_cast<int>(rng.below(8));
                const auto src = randomBytes(
                    rng, static_cast<size_t>(src_stride) * (h + 1));
                std::vector<uint8_t> want(
                    static_cast<size_t>(dst_stride) * h, 0xAA);
                std::vector<uint8_t> got = want;

                using Fn = void (*)(const uint8_t *, int, uint8_t *, int,
                                    int, int);
                const Fn fns_ref[] = {ref.copy2d, ref.interpH, ref.interpV,
                                      ref.interpHV};
                const Fn fns_vec[] = {vec->copy2d, vec->interpH,
                                      vec->interpV, vec->interpHV};
                for (int k = 0; k < 4; ++k) {
                    std::fill(want.begin(), want.end(), 0xAA);
                    std::fill(got.begin(), got.end(), 0xAA);
                    fns_ref[k](src.data(), src_stride, want.data(),
                               dst_stride, w, h);
                    fns_vec[k](src.data(), src_stride, got.data(),
                               dst_stride, w, h);
                    EXPECT_EQ(want, got) << vec->name << " kernel " << k
                                         << " w=" << w << " h=" << h;
                }
            }
        }
    }
}

TEST(KernelsEquiv, Transforms4x4And8x8)
{
    Rng rng(14);
    const KernelOps &ref = *scalarOps();
    for (const KernelOps *vec : vectorBackends()) {
        for (int trial = 0; trial < 500; ++trial) {
            int16_t res[64];
            for (auto &v : res)
                v = static_cast<int16_t>(rng.range(-32768, 32767));

            int32_t want32[64], got32[64];
            ref.fwdTx4x4(res, want32);
            vec->fwdTx4x4(res, got32);
            EXPECT_EQ(0, std::memcmp(want32, got32, sizeof(int32_t) * 16))
                << vec->name << " fwd4 trial " << trial;
            ref.fwdTx8x8(res, want32);
            vec->fwdTx8x8(res, got32);
            EXPECT_EQ(0, std::memcmp(want32, got32, sizeof(want32)))
                << vec->name << " fwd8 trial " << trial;

            // Inverse inputs: mix realistic (forward of a residual) and
            // adversarial coefficients. Magnitudes stay below 2^24 so
            // the scalar int32 intermediates cannot overflow (UB).
            int32_t coefs[64];
            if (trial % 2 == 0) {
                std::memcpy(coefs, want32, sizeof(coefs));
            } else {
                for (auto &c : coefs)
                    c = static_cast<int32_t>(
                        rng.range(-(1 << 24), (1 << 24)));
            }
            int16_t want16[64], got16[64];
            ref.invTx4x4(coefs, want16);
            vec->invTx4x4(coefs, got16);
            EXPECT_EQ(0, std::memcmp(want16, got16, sizeof(int16_t) * 16))
                << vec->name << " inv4 trial " << trial;
            ref.invTx8x8(coefs, want16);
            vec->invTx8x8(coefs, got16);
            EXPECT_EQ(0, std::memcmp(want16, got16, sizeof(want16)))
                << vec->name << " inv8 trial " << trial;
        }
    }
}

TEST(KernelsEquiv, QuantDequant)
{
    Rng rng(15);
    const KernelOps &ref = *scalarOps();
    for (const KernelOps *vec : vectorBackends()) {
        for (int trial = 0; trial < 400; ++trial) {
            const int qp = static_cast<int>(rng.below(52));
            const bool intra = (trial & 1) != 0;
            int32_t coefs[16];
            for (auto &c : coefs) {
                switch (rng.below(4)) {
                case 0: // realistic transform output magnitudes
                    c = static_cast<int32_t>(
                        rng.range(-(1 << 20), 1 << 20));
                    break;
                case 1: // small values around the deadzone
                    c = static_cast<int32_t>(rng.range(-64, 64));
                    break;
                case 2: // full int32 range, including the extremes
                    c = static_cast<int32_t>(
                        rng.range(INT32_MIN, INT32_MAX));
                    break;
                default:
                    c = (trial % 3 == 0) ? INT32_MIN : INT32_MAX;
                    break;
                }
            }
            int16_t want_lv[16], got_lv[16];
            const int want_nz = ref.quant4x4(coefs, want_lv, qp, intra);
            const int got_nz = vec->quant4x4(coefs, got_lv, qp, intra);
            EXPECT_EQ(want_nz, got_nz)
                << vec->name << " qp=" << qp << " trial " << trial;
            EXPECT_EQ(0, std::memcmp(want_lv, got_lv, sizeof(want_lv)))
                << vec->name << " qp=" << qp << " trial " << trial;

            int16_t levels[16];
            for (auto &l : levels)
                l = static_cast<int16_t>(rng.range(-32768, 32767));
            int32_t want_cf[16], got_cf[16];
            ref.dequant4x4(levels, want_cf, qp);
            vec->dequant4x4(levels, got_cf, qp);
            EXPECT_EQ(0, std::memcmp(want_cf, got_cf, sizeof(want_cf)))
                << vec->name << " dequant qp=" << qp;
        }
    }
}

TEST(KernelsEquiv, DiffAndAddClamp)
{
    Rng rng(16);
    const KernelOps &ref = *scalarOps();
    for (const KernelOps *vec : vectorBackends()) {
        for (int w : kWidths) {
            for (int h : {1, 4, 8, 16}) {
                const int s_stride = w + static_cast<int>(rng.below(8));
                const int p_stride = w + static_cast<int>(rng.below(8));
                const int o_stride = w + static_cast<int>(rng.below(8));
                const auto src =
                    randomBytes(rng, static_cast<size_t>(s_stride) * h);
                const auto pred =
                    randomBytes(rng, static_cast<size_t>(p_stride) * h);
                std::vector<int16_t> want_d(
                    static_cast<size_t>(o_stride) * h, 0x7EEE);
                std::vector<int16_t> got_d = want_d;
                ref.diffBlock(src.data(), s_stride, pred.data(), p_stride,
                              want_d.data(), o_stride, w, h);
                vec->diffBlock(src.data(), s_stride, pred.data(),
                               p_stride, got_d.data(), o_stride, w, h);
                EXPECT_EQ(want_d, got_d)
                    << vec->name << " diff w=" << w << " h=" << h;

                // Adversarial residuals spanning the full int16 range,
                // so saturating-add shortcuts would be caught.
                std::vector<int16_t> res(
                    static_cast<size_t>(o_stride) * h);
                for (auto &v : res)
                    v = static_cast<int16_t>(rng.range(-32768, 32767));
                std::vector<uint8_t> want_r(
                    static_cast<size_t>(s_stride) * h, 0x55);
                std::vector<uint8_t> got_r = want_r;
                ref.addClampBlock(pred.data(), p_stride, res.data(),
                                  o_stride, want_r.data(), s_stride, w, h);
                vec->addClampBlock(pred.data(), p_stride, res.data(),
                                   o_stride, got_r.data(), s_stride, w, h);
                EXPECT_EQ(want_r, got_r)
                    << vec->name << " addClamp w=" << w << " h=" << h;
            }
        }
    }
}

TEST(KernelsEquiv, DeblockEdgeH)
{
    Rng rng(17);
    const KernelOps &ref = *scalarOps();
    for (const KernelOps *vec : vectorBackends()) {
        for (int trial = 0; trial < 300; ++trial) {
            const int n = 1 + static_cast<int>(rng.below(48));
            const int stride = n + static_cast<int>(rng.below(8));
            // 4 rows: p1, p0, q0, q1. Bias toward small sample deltas
            // so the filter condition actually fires.
            auto make = [&] {
                auto buf = randomBytes(rng, static_cast<size_t>(stride) * 4);
                if (trial % 2 == 0) {
                    const uint8_t base =
                        static_cast<uint8_t>(rng.below(200));
                    for (auto &v : buf)
                        v = static_cast<uint8_t>(base + (v & 15));
                }
                return buf;
            };
            auto want = make();
            auto got = want;
            const int alpha = 1 + static_cast<int>(rng.below(255));
            const int beta = 1 + static_cast<int>(rng.below(30));
            const int tc = 1 + static_cast<int>(rng.below(10));
            ref.deblockEdgeH(want.data() + 2 * stride, stride, n, alpha,
                             beta, tc);
            vec->deblockEdgeH(got.data() + 2 * stride, stride, n, alpha,
                              beta, tc);
            EXPECT_EQ(want, got) << vec->name << " n=" << n
                                 << " alpha=" << alpha << " beta=" << beta
                                 << " tc=" << tc;
        }
    }
}

TEST(KernelsEquiv, Sse8)
{
    Rng rng(18);
    const KernelOps &ref = *scalarOps();
    for (const KernelOps *vec : vectorBackends()) {
        // Large n exercises the overflow-chunking; +1/+7 the tails.
        for (size_t n : {size_t{1}, size_t{7}, size_t{16}, size_t{31},
                         size_t{64}, size_t{1000}, size_t{65536 + 13},
                         size_t{200000}}) {
            auto a = randomBytes(rng, n);
            auto b = randomBytes(rng, n);
            // Worst case for accumulator width: all-0 vs all-255.
            if (n == 200000) {
                std::fill(a.begin(), a.end(), uint8_t{0});
                std::fill(b.begin(), b.end(), uint8_t{255});
            }
            EXPECT_EQ(ref.sse8(a.data(), b.data(), n),
                      vec->sse8(a.data(), b.data(), n))
                << vec->name << " n=" << n;
        }
    }
}

TEST(KernelsEquiv, SsimWindowSums)
{
    Rng rng(19);
    const KernelOps &ref = *scalarOps();
    for (const KernelOps *vec : vectorBackends()) {
        for (int w = 1; w <= 8; ++w) {
            for (int h = 1; h <= 8; ++h) {
                const int a_stride = w + static_cast<int>(rng.below(8));
                const int b_stride = w + static_cast<int>(rng.below(8));
                const auto a =
                    randomBytes(rng, static_cast<size_t>(a_stride) * h);
                const auto b =
                    randomBytes(rng, static_cast<size_t>(b_stride) * h);
                uint32_t want[5] = {0}, got[5] = {0};
                ref.ssimWindowSums(a.data(), a_stride, b.data(), b_stride,
                                   w, h, want);
                vec->ssimWindowSums(a.data(), a_stride, b.data(),
                                    b_stride, w, h, got);
                for (int k = 0; k < 5; ++k)
                    EXPECT_EQ(want[k], got[k])
                        << vec->name << " w=" << w << " h=" << h
                        << " sum " << k;
            }
        }
    }
}
