/**
 * @file
 * core::RuntimeConfig — the single parse point for every VBENCH_*
 * knob. Valid values land in the right fields, huge-but-well-formed
 * widths clamp at the documented caps, and every malformed value
 * produces exactly one descriptive error naming the variable (the
 * fail-fast contract the per-site parsers never had).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/runtime_config.h"

namespace vbench::core {
namespace {

const char *const kKnobs[] = {
    "VBENCH_JOBS",         "VBENCH_FRAME_THREADS",
    "VBENCH_SLICES",       "VBENCH_SEGMENT_FRAMES",
    "VBENCH_ARRIVAL_RATE",
    "VBENCH_ZIPF_S",       "VBENCH_ISA",
    "VBENCH_TRACE",        "VBENCH_METRICS_OUT",
    "VBENCH_PROM_OUT",     "VBENCH_FLEET",
    "VBENCH_FLEET_POLICY", "VBENCH_FLEET_CALIB",
    "VBENCH_CACHE_MB",     "VBENCH_CACHE_POLICY",
    "VBENCH_CACHE_GB_HOUR",
    "VBENCH_WORKERS",      "VBENCH_RPC_TIMEOUT_MS",
    "VBENCH_RPC_RETRIES",  "VBENCH_HEDGE_PCT",
    "VBENCH_WORKER_BIN",
};

/** Clears every knob before and after so tests compose in any order. */
class RuntimeConfigTest : public ::testing::Test
{
  protected:
    void SetUp() override { clearAll(); }
    void TearDown() override { clearAll(); }

    static void clearAll()
    {
        for (const char *knob : kKnobs)
            unsetenv(knob);
    }

    static RuntimeConfig parse(std::vector<std::string> *errors)
    {
        return RuntimeConfig::fromEnv(errors);
    }
};

TEST_F(RuntimeConfigTest, UnsetEnvironmentYieldsDefaults)
{
    std::vector<std::string> errors;
    const RuntimeConfig cfg = parse(&errors);
    EXPECT_TRUE(errors.empty());
    EXPECT_EQ(cfg.jobs, 0);
    EXPECT_EQ(cfg.frame_threads, 1);
    EXPECT_EQ(cfg.slices, 1);
    EXPECT_EQ(cfg.segment_frames, 0);
    EXPECT_DOUBLE_EQ(cfg.arrival_rate_hz, 0.0);
    EXPECT_DOUBLE_EQ(cfg.zipf_s, 0.0);
    EXPECT_TRUE(cfg.isa.empty());
    EXPECT_TRUE(cfg.trace_path.empty());
    EXPECT_TRUE(cfg.metrics_path.empty());
    EXPECT_TRUE(cfg.prom_path.empty());
    EXPECT_TRUE(cfg.fleet_spec.empty());
    EXPECT_TRUE(cfg.fleet_policy.empty());
    EXPECT_TRUE(cfg.fleet_calib_path.empty());
    EXPECT_DOUBLE_EQ(cfg.cache_mb, 0.0);
    EXPECT_TRUE(cfg.cache_policy.empty());
    EXPECT_DOUBLE_EQ(cfg.cache_gb_hour, 0.0);
    EXPECT_TRUE(cfg.workers_mode.empty());
    EXPECT_EQ(cfg.rpc_timeout_ms, 0);
    EXPECT_EQ(cfg.rpc_retries, -1);
    EXPECT_DOUBLE_EQ(cfg.hedge_pct, 0.0);
    EXPECT_TRUE(cfg.worker_bin.empty());
}

TEST_F(RuntimeConfigTest, ValidValuesParseIntoTheRightFields)
{
    setenv("VBENCH_JOBS", "6", 1);
    setenv("VBENCH_FRAME_THREADS", "4", 1);
    setenv("VBENCH_SLICES", "4", 1);
    setenv("VBENCH_SEGMENT_FRAMES", "12", 1);
    setenv("VBENCH_ARRIVAL_RATE", "2.5", 1);
    setenv("VBENCH_ZIPF_S", "1.2", 1);
    setenv("VBENCH_CACHE_MB", "64", 1);
    setenv("VBENCH_CACHE_POLICY", "cost_aware", 1);
    setenv("VBENCH_CACHE_GB_HOUR", "0.05", 1);
    setenv("VBENCH_ISA", "sse2", 1);
    setenv("VBENCH_TRACE", "/tmp/trace.json", 1);
    setenv("VBENCH_METRICS_OUT", "-", 1);
    setenv("VBENCH_PROM_OUT", "/tmp/prom.txt", 1);
    setenv("VBENCH_FLEET", "scalar:2+avx2:1", 1);
    setenv("VBENCH_FLEET_POLICY", "cost_aware", 1);
    setenv("VBENCH_FLEET_CALIB", "/tmp/calib.txt", 1);
    setenv("VBENCH_WORKERS", "proc", 1);
    setenv("VBENCH_RPC_TIMEOUT_MS", "5000", 1);
    setenv("VBENCH_RPC_RETRIES", "0", 1);
    setenv("VBENCH_HEDGE_PCT", "95", 1);
    setenv("VBENCH_WORKER_BIN", "/tmp/vbench_worker", 1);

    std::vector<std::string> errors;
    const RuntimeConfig cfg = parse(&errors);
    EXPECT_TRUE(errors.empty()) << errors.front();
    EXPECT_EQ(cfg.jobs, 6);
    EXPECT_EQ(cfg.frame_threads, 4);
    EXPECT_EQ(cfg.slices, 4);
    EXPECT_EQ(cfg.segment_frames, 12);
    EXPECT_DOUBLE_EQ(cfg.arrival_rate_hz, 2.5);
    EXPECT_DOUBLE_EQ(cfg.zipf_s, 1.2);
    EXPECT_DOUBLE_EQ(cfg.cache_mb, 64.0);
    EXPECT_EQ(cfg.cache_policy, "cost_aware");
    EXPECT_DOUBLE_EQ(cfg.cache_gb_hour, 0.05);
    EXPECT_EQ(cfg.isa, "sse2");
    EXPECT_EQ(cfg.trace_path, "/tmp/trace.json");
    EXPECT_EQ(cfg.metrics_path, "-");
    EXPECT_EQ(cfg.prom_path, "/tmp/prom.txt");
    EXPECT_EQ(cfg.fleet_spec, "scalar:2+avx2:1");
    EXPECT_EQ(cfg.fleet_policy, "cost_aware");
    EXPECT_EQ(cfg.fleet_calib_path, "/tmp/calib.txt");
    EXPECT_EQ(cfg.workers_mode, "proc");
    EXPECT_EQ(cfg.rpc_timeout_ms, 5000);
    EXPECT_EQ(cfg.rpc_retries, 0);  // 0 retries is a valid choice
    EXPECT_DOUBLE_EQ(cfg.hedge_pct, 95.0);
    EXPECT_EQ(cfg.worker_bin, "/tmp/vbench_worker");
}

TEST_F(RuntimeConfigTest, HugeWellFormedWidthsClampAtTheCaps)
{
    setenv("VBENCH_JOBS", "999999", 1);
    setenv("VBENCH_FRAME_THREADS", "100000", 1);
    setenv("VBENCH_SLICES", "100000", 1);
    std::vector<std::string> errors;
    const RuntimeConfig cfg = parse(&errors);
    EXPECT_TRUE(errors.empty());
    EXPECT_EQ(cfg.jobs, kMaxRuntimeJobs);
    EXPECT_EQ(cfg.frame_threads, kMaxRuntimeFrameThreads);
    EXPECT_EQ(cfg.slices, kMaxRuntimeSlices);
}

TEST_F(RuntimeConfigTest, IsaNamesAreCaseInsensitive)
{
    for (const char *isa : {"scalar", "SSE2", "Avx2", "NATIVE"}) {
        setenv("VBENCH_ISA", isa, 1);
        std::vector<std::string> errors;
        parse(&errors);
        EXPECT_TRUE(errors.empty()) << isa;
    }
}

TEST_F(RuntimeConfigTest, RejectsMalformedValues)
{
    struct Case {
        const char *knob;
        const char *value;
    };
    const Case cases[] = {
        {"VBENCH_JOBS", "zero"},          {"VBENCH_JOBS", "0"},
        {"VBENCH_JOBS", "-4"},            {"VBENCH_JOBS", "4x"},
        {"VBENCH_FRAME_THREADS", "no"},   {"VBENCH_FRAME_THREADS", "0"},
        {"VBENCH_SLICES", "none"},        {"VBENCH_SLICES", "0"},
        {"VBENCH_SLICES", "-2"},
        {"VBENCH_SEGMENT_FRAMES", "-1"},  {"VBENCH_SEGMENT_FRAMES", "8f"},
        {"VBENCH_ARRIVAL_RATE", "fast"},  {"VBENCH_ARRIVAL_RATE", "0"},
        {"VBENCH_ARRIVAL_RATE", "-2.5"},  {"VBENCH_ISA", "avx512"},
        {"VBENCH_FLEET_POLICY", "greedy"},
        {"VBENCH_ZIPF_S", "-1"},          {"VBENCH_ZIPF_S", "steep"},
        {"VBENCH_CACHE_MB", "-64"},       {"VBENCH_CACHE_MB", "big"},
        {"VBENCH_CACHE_POLICY", "mru"},
        {"VBENCH_CACHE_GB_HOUR", "0"},
        {"VBENCH_WORKERS", "thread"},
        {"VBENCH_RPC_TIMEOUT_MS", "0"},
        {"VBENCH_RPC_TIMEOUT_MS", "-5"},
        {"VBENCH_RPC_TIMEOUT_MS", "soon"},
        {"VBENCH_RPC_RETRIES", "-1"},
        {"VBENCH_RPC_RETRIES", "two"},
        {"VBENCH_HEDGE_PCT", "0"},
        {"VBENCH_HEDGE_PCT", "101"},
        {"VBENCH_HEDGE_PCT", "p99"},
    };
    for (const Case &c : cases) {
        clearAll();
        setenv(c.knob, c.value, 1);
        std::vector<std::string> errors;
        parse(&errors);
        ASSERT_EQ(errors.size(), 1u) << c.knob << "=" << c.value;
        // The message names the variable and its offending value.
        EXPECT_NE(errors.front().find(c.knob), std::string::npos);
        EXPECT_NE(errors.front().find(c.value), std::string::npos);
    }
}

TEST_F(RuntimeConfigTest, CollectsEveryErrorInOnePass)
{
    setenv("VBENCH_JOBS", "banana", 1);
    setenv("VBENCH_FRAME_THREADS", "-1", 1);
    setenv("VBENCH_ARRIVAL_RATE", "nope", 1);
    setenv("VBENCH_ISA", "mmx", 1);
    std::vector<std::string> errors;
    parse(&errors);
    EXPECT_EQ(errors.size(), 4u);
}

TEST_F(RuntimeConfigTest, NullErrorsVectorMeansBestEffort)
{
    setenv("VBENCH_JOBS", "junk", 1);
    setenv("VBENCH_FRAME_THREADS", "3", 1);
    const RuntimeConfig cfg = RuntimeConfig::fromEnv(nullptr);
    EXPECT_EQ(cfg.jobs, 0) << "malformed value keeps the default";
    EXPECT_EQ(cfg.frame_threads, 3);
}

} // namespace
} // namespace vbench::core
