/**
 * @file
 * The polymorphic EncoderBackend seam: create() realizes every
 * EncoderKind, encode()/decodeOutput() roundtrip, hardware backends
 * report modeled seconds, describe() names the configuration, and
 * TranscodeRequest::validate() rejects every malformed knob that
 * transcode() must fail fast on.
 */

#include <gtest/gtest.h>

#include <string>

#include "codec/decoder.h"
#include "core/encoder_backend.h"
#include "core/transcoder.h"
#include "metrics/psnr.h"
#include "video/synth.h"

namespace vbench::core {
namespace {

video::Video
clip(int w = 160, int h = 128, int frames = 4)
{
    return video::synthesize(
        video::presetFor(video::ContentClass::Natural, w, h, 30.0,
                         frames, 909),
        "backend");
}

TranscodeRequest
abrRequest(EncoderKind kind)
{
    TranscodeRequest req;
    req.kind = kind;
    req.rc.mode = codec::RcMode::Abr;
    req.rc.bitrate_bps = 800e3;
    req.effort = 3;
    req.ngc_speed = 2;
    return req;
}

TEST(EncoderBackend, CreateRealizesEveryKind)
{
    const video::Video v = clip();
    for (EncoderKind kind :
         {EncoderKind::Vbc, EncoderKind::NgcHevc, EncoderKind::NgcVp9,
          EncoderKind::NvencLike, EncoderKind::QsvLike}) {
        const TranscodeRequest req = abrRequest(kind);
        ASSERT_TRUE(req.validate().empty());
        auto backend = EncoderBackend::create(req, nullptr);
        ASSERT_NE(backend, nullptr) << toString(kind);
        EXPECT_EQ(backend->kind(), kind);
        EXPECT_FALSE(backend->describe().empty()) << toString(kind);

        BackendEncodeResult result = backend->encode(v);
        ASSERT_FALSE(result.encoded.stream.empty()) << toString(kind);
        const auto decoded = backend->decodeOutput(result.encoded.stream);
        ASSERT_TRUE(decoded.has_value()) << toString(kind);
        EXPECT_EQ(decoded->frameCount(), v.frameCount());
        EXPECT_GT(metrics::videoPsnr(v, *decoded), 20.0)
            << toString(kind);
    }
}

TEST(EncoderBackend, OnlyHardwareReportsModeledSeconds)
{
    const video::Video v = clip(96, 96, 2);
    for (EncoderKind kind :
         {EncoderKind::Vbc, EncoderKind::NgcHevc, EncoderKind::NgcVp9,
          EncoderKind::NvencLike, EncoderKind::QsvLike}) {
        auto backend = EncoderBackend::create(abrRequest(kind), nullptr);
        const BackendEncodeResult result = backend->encode(v);
        const bool hw = kind == EncoderKind::NvencLike ||
            kind == EncoderKind::QsvLike;
        EXPECT_EQ(result.modeled_seconds.has_value(), hw)
            << toString(kind);
        if (hw) {
            EXPECT_GT(*result.modeled_seconds, 0.0) << toString(kind);
        }
    }
}

TEST(EncoderBackend, DescribeNamesTheConfiguration)
{
    TranscodeRequest req = abrRequest(EncoderKind::Vbc);
    req.effort = 7;
    auto backend = EncoderBackend::create(req, nullptr);
    const std::string text = backend->describe();
    EXPECT_NE(text.find("vbc"), std::string::npos) << text;
    EXPECT_NE(text.find("7"), std::string::npos) << text;
}

TEST(EncoderBackend, MatchesTranscodeOutput)
{
    // transcode() is a thin driver over the backend seam: encoding the
    // decoded universal stream directly through a backend must produce
    // the exact stream the full transcode reports.
    const video::Video v = clip();
    const codec::ByteBuffer universal = makeUniversalStream(v);
    const TranscodeRequest req = abrRequest(EncoderKind::Vbc);

    const TranscodeOutcome outcome = transcode(universal, v, req);
    ASSERT_TRUE(outcome.ok) << outcome.error;

    const auto decoded_input = codec::decode(universal);
    ASSERT_TRUE(decoded_input.has_value());
    auto backend = EncoderBackend::create(req, nullptr);
    const BackendEncodeResult direct = backend->encode(*decoded_input);
    EXPECT_EQ(direct.encoded.stream, outcome.stream);
}

TEST(RequestValidate, AcceptsDefaults)
{
    EXPECT_TRUE(TranscodeRequest{}.validate().empty());
}

TEST(RequestValidate, RejectsEveryBadKnob)
{
    const auto expectInvalid = [](TranscodeRequest req,
                                  const std::string &needle) {
        const std::string err = req.validate();
        EXPECT_FALSE(err.empty()) << "expected rejection for " << needle;
        EXPECT_NE(err.find(needle), std::string::npos) << err;
        // transcode() surfaces the same message, fail-fast.
        const video::Video v = video::synthesize(
            video::presetFor(video::ContentClass::Natural, 96, 96, 30.0,
                             1, 1),
            "v");
        const TranscodeOutcome outcome =
            transcode(makeUniversalStream(v), v, req);
        EXPECT_FALSE(outcome.ok);
        EXPECT_NE(outcome.error.find("invalid request"),
                  std::string::npos)
            << outcome.error;
    };

    TranscodeRequest req;
    req.effort = -1;
    expectInvalid(req, "effort");
    req = {};
    req.effort = codec::kNumEfforts;
    expectInvalid(req, "effort");
    req = {};
    req.ngc_speed = 3;
    expectInvalid(req, "ngc_speed");
    req = {};
    req.gop = -5;
    expectInvalid(req, "gop");
    req = {};
    req.entropy_override = 2;
    expectInvalid(req, "entropy_override");
    req = {};
    req.deblock_override = 2;
    expectInvalid(req, "deblock_override");
    req = {};
    req.rc.mode = codec::RcMode::Cqp;
    req.rc.qp = 99;
    expectInvalid(req, "rc.qp");
    req = {};
    req.rc.mode = codec::RcMode::Crf;
    req.rc.crf = -3;
    expectInvalid(req, "rc.crf");
    req = {};
    req.rc.mode = codec::RcMode::Abr;
    req.rc.bitrate_bps = 0;
    expectInvalid(req, "rc.bitrate_bps");
    req = {};
    req.rc.mode = codec::RcMode::TwoPass;
    req.rc.bitrate_bps = -1;
    expectInvalid(req, "rc.bitrate_bps");
    req = {};
    req.rc.fps = 0;
    expectInvalid(req, "rc.fps");
    req = {};
    req.rc.min_qp = 77;
    expectInvalid(req, "rc.min_qp");
}

TEST(RequestValidate, IgnoresKnobsTheModeDoesNotRead)
{
    // A CRF request doesn't read bitrate_bps; leaving it zero is fine.
    TranscodeRequest req;
    req.rc.mode = codec::RcMode::Crf;
    req.rc.crf = 23;
    req.rc.bitrate_bps = 0;
    EXPECT_TRUE(req.validate().empty()) << req.validate();
}

} // namespace
} // namespace vbench::core
