/**
 * @file
 * Unified transcoder driver and reference-store integration tests.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "core/reference.h"
#include "core/scoring.h"
#include "core/transcoder.h"
#include "metrics/rates.h"
#include "obs/trace.h"
#include "video/synth.h"

namespace vbench::core {
namespace {

video::Video
clip(int w = 160, int h = 128, int frames = 6,
     video::ContentClass content = video::ContentClass::Natural)
{
    return video::synthesize(
        video::presetFor(content, w, h, 30.0, frames, 808), "t");
}

TEST(Transcoder, UniversalStreamIsHighQuality)
{
    const video::Video v = clip();
    const codec::ByteBuffer universal = makeUniversalStream(v);
    ASSERT_FALSE(universal.empty());
    const auto decoded = codec::decode(universal);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_GT(metrics::videoPsnr(v, *decoded), 38.0);
}

TEST(Transcoder, EveryEncoderKindRuns)
{
    const video::Video v = clip();
    const codec::ByteBuffer universal = makeUniversalStream(v);
    for (EncoderKind kind :
         {EncoderKind::Vbc, EncoderKind::NgcHevc, EncoderKind::NgcVp9,
          EncoderKind::NvencLike, EncoderKind::QsvLike}) {
        TranscodeRequest req;
        req.kind = kind;
        req.rc.mode = codec::RcMode::Abr;
        req.rc.bitrate_bps = 800e3;
        req.effort = 3;
        req.ngc_speed = 2;
        const TranscodeOutcome outcome = transcode(universal, v, req);
        ASSERT_TRUE(outcome.ok) << toString(kind) << ": "
                                << outcome.error;
        EXPECT_GT(outcome.m.psnr_db, 20.0) << toString(kind);
        EXPECT_GT(outcome.m.speed_mpix_s, 0.0) << toString(kind);
        EXPECT_GT(outcome.m.bitrate_bpps, 0.0) << toString(kind);
    }
}

TEST(Transcoder, ToStringCoversEveryEncoderKind)
{
    std::set<std::string> names;
    for (EncoderKind kind :
         {EncoderKind::Vbc, EncoderKind::NgcHevc, EncoderKind::NgcVp9,
          EncoderKind::NvencLike, EncoderKind::QsvLike}) {
        const std::string name = toString(kind);
        EXPECT_FALSE(name.empty());
        EXPECT_NE(name, "unknown");
        names.insert(name);
    }
    EXPECT_EQ(names.size(), 5u);  // all distinct
}

TEST(Transcoder, EveryBackendProducesStageBreakdown)
{
    const video::Video v = clip();
    const codec::ByteBuffer universal = makeUniversalStream(v);
    for (EncoderKind kind :
         {EncoderKind::Vbc, EncoderKind::NgcHevc, EncoderKind::NgcVp9,
          EncoderKind::NvencLike, EncoderKind::QsvLike}) {
        obs::Tracer tracer;
        TranscodeRequest req;
        req.kind = kind;
        req.rc.mode = codec::RcMode::Abr;
        req.rc.bitrate_bps = 800e3;
        req.effort = 3;
        req.ngc_speed = 2;
        req.tracer = &tracer;
        const TranscodeOutcome outcome = transcode(universal, v, req);
        ASSERT_TRUE(outcome.ok) << toString(kind) << ": "
                                << outcome.error;
        // Always-on phases, topped by a nonzero encode stage.
        EXPECT_GT(outcome.stages.get(obs::Stage::Encode), 0.0)
            << toString(kind);
        EXPECT_GT(outcome.stages.get(obs::Stage::DecodeInput), 0.0)
            << toString(kind);
        // With a tracer attached, the leaf stages fill in too.
        EXPECT_GT(outcome.stages.leafSeconds(), 0.0) << toString(kind);
        EXPECT_GT(tracer.eventCount(), 0u) << toString(kind);
        // Modeled backends also report the pipeline-model phase.
        if (kind == EncoderKind::NvencLike ||
            kind == EncoderKind::QsvLike) {
            EXPECT_DOUBLE_EQ(outcome.stages.get(obs::Stage::HwPipeline),
                             outcome.seconds)
                << toString(kind);
        }
    }
}

TEST(Transcoder, BadInputReported)
{
    const video::Video v = clip(96, 96, 2);
    codec::ByteBuffer garbage(64, 0x55);
    TranscodeRequest req;
    const TranscodeOutcome outcome = transcode(garbage, v, req);
    EXPECT_FALSE(outcome.ok);
    EXPECT_FALSE(outcome.error.empty());
}

TEST(Transcoder, HardwareSpeedComesFromModel)
{
    const video::Video v = clip();
    const codec::ByteBuffer universal = makeUniversalStream(v);
    TranscodeRequest req;
    req.kind = EncoderKind::QsvLike;
    req.rc.mode = codec::RcMode::Abr;
    req.rc.bitrate_bps = 800e3;
    const TranscodeOutcome a = transcode(universal, v, req);
    const TranscodeOutcome b = transcode(universal, v, req);
    ASSERT_TRUE(a.ok && b.ok);
    // Modeled time is deterministic; wall clock would jitter.
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
}

TEST(Reference, LadderBitrateScalesWithGeometry)
{
    const double sd = ladderBitrateBps(854, 480, 30);
    const double hd = ladderBitrateBps(1920, 1080, 30);
    const double uhd = ladderBitrateBps(3840, 2160, 60);
    EXPECT_LT(sd, hd);
    EXPECT_LT(hd, uhd);
    // bits/pixel falls as resolution grows.
    EXPECT_GT(ladderBitsPerPixel(854, 480),
              ladderBitsPerPixel(3840, 2160));
}

TEST(Reference, LiveEffortFallsWithResolution)
{
    EXPECT_GT(liveReferenceEffort(854, 480),
              liveReferenceEffort(1920, 1080));
    EXPECT_EQ(liveReferenceEffort(3840, 2160), 0);
}

TEST(Reference, RequestsMatchScenarioDefinitions)
{
    const TranscodeRequest upload =
        referenceRequest(Scenario::Upload, 1280, 720, 30);
    EXPECT_EQ(upload.rc.mode, codec::RcMode::Crf);
    EXPECT_DOUBLE_EQ(upload.rc.crf, 18);

    const TranscodeRequest live =
        referenceRequest(Scenario::Live, 1280, 720, 30);
    EXPECT_EQ(live.rc.mode, codec::RcMode::Abr);

    const TranscodeRequest vod =
        referenceRequest(Scenario::Vod, 1280, 720, 30);
    EXPECT_EQ(vod.rc.mode, codec::RcMode::TwoPass);
    EXPECT_EQ(vod.effort, 5);

    const TranscodeRequest popular =
        referenceRequest(Scenario::Popular, 1280, 720, 30);
    EXPECT_EQ(popular.rc.mode, codec::RcMode::TwoPass);
    EXPECT_EQ(popular.effort, 9);

    // Platform reference equals the VOD reference (§4.2).
    const TranscodeRequest platform =
        referenceRequest(Scenario::Platform, 1280, 720, 30);
    EXPECT_EQ(platform.effort, vod.effort);
    EXPECT_EQ(platform.rc.mode, vod.rc.mode);
}

TEST(Reference, StoreCachesResults)
{
    const video::Video v = clip(128, 96, 4);
    const codec::ByteBuffer universal = makeUniversalStream(v);
    ReferenceStore store;
    const TranscodeOutcome &first =
        store.get("clip", Scenario::Upload, universal, v);
    ASSERT_TRUE(first.ok);
    const TranscodeOutcome &second =
        store.get("clip", Scenario::Upload, universal, v);
    EXPECT_EQ(&first, &second);  // same cached object
}

TEST(EndToEnd, PopularEffortBeatsVodEffortAtEqualBitrate)
{
    // "The reference quality of the Popular scenario is higher than
    // VOD" (§6.2): the Popular reference effort (9) must land above
    // the VOD reference effort (5) in rate-distortion terms when both
    // encode the same source at the same two-pass bitrate target. (On
    // multi-second clips the reference-store path shows the same
    // ordering; short test clips make the direct comparison the
    // stable one.)
    const video::Video v =
        clip(192, 160, 8, video::ContentClass::Natural);
    const TranscodeRequest vod_req =
        referenceRequest(Scenario::Vod, v.width(), v.height(), v.fps());
    const TranscodeRequest pop_req = referenceRequest(
        Scenario::Popular, v.width(), v.height(), v.fps());
    ASSERT_EQ(vod_req.rc.bitrate_bps, pop_req.rc.bitrate_bps);

    auto run = [&](int effort) {
        codec::EncoderConfig cfg;
        cfg.rc = vod_req.rc;
        cfg.effort = effort;
        cfg.gop = 30;
        codec::Encoder encoder(cfg);
        const codec::EncodeResult result = encoder.encode(v);
        const auto decoded = codec::decode(result.stream);
        EXPECT_TRUE(decoded.has_value());
        return measure(v, *decoded, result.totalBytes(), 1.0);
    };
    const Measurement vod = run(vod_req.effort);
    const Measurement popular = run(pop_req.effort);
    // RD dominance with a small tolerance for rate-control wiggle.
    const double rate_adjusted_quality_gain =
        (popular.psnr_db - vod.psnr_db) -
        6.0 * std::log2(popular.bitrate_bpps / vod.bitrate_bpps);
    EXPECT_GT(rate_adjusted_quality_gain, -0.15)
        << "popular: " << popular.psnr_db << " dB @ "
        << popular.bitrate_bpps << " bpps, vod: " << vod.psnr_db
        << " dB @ " << vod.bitrate_bpps << " bpps";
}

} // namespace
} // namespace vbench::core
