/**
 * @file
 * Table 1 scoring function and constraint tests, hand-computed cases.
 */

#include <gtest/gtest.h>

#include "core/scoring.h"

namespace vbench::core {
namespace {

Measurement
m(double speed, double bitrate, double psnr)
{
    Measurement out;
    out.speed_mpix_s = speed;
    out.bitrate_bpps = bitrate;
    out.psnr_db = psnr;
    return out;
}

TEST(Ratios, Definition)
{
    const Measurement ref = m(10, 2.0, 40);
    const Measurement cand = m(20, 1.0, 42);
    const Ratios r = computeRatios(ref, cand);
    EXPECT_DOUBLE_EQ(r.s, 2.0);   // twice as fast
    EXPECT_DOUBLE_EQ(r.b, 2.0);   // half the bits
    EXPECT_DOUBLE_EQ(r.q, 42.0 / 40.0);
}

TEST(Ratios, GreaterThanOneMeansBetter)
{
    const Measurement ref = m(10, 2.0, 40);
    const Measurement worse = m(5, 4.0, 36);
    const Ratios r = computeRatios(ref, worse);
    EXPECT_LT(r.s, 1.0);
    EXPECT_LT(r.b, 1.0);
    EXPECT_LT(r.q, 1.0);
}

TEST(Scoring, UploadScoreIsSxQ)
{
    Ratios r{2.0, 0.5, 1.1};
    const ScoreResult result =
        scoreScenario(Scenario::Upload, r, m(20, 4, 44), 30);
    ASSERT_TRUE(result.valid);
    EXPECT_DOUBLE_EQ(result.score, 2.2);
}

TEST(Scoring, UploadRejectsHugeBitrate)
{
    Ratios r{5.0, 0.15, 1.2};  // more than 5x the reference size
    const ScoreResult result =
        scoreScenario(Scenario::Upload, r, m(50, 14, 48), 30);
    EXPECT_FALSE(result.valid);
    EXPECT_NE(result.reason.find("bitrate"), std::string::npos);
}

TEST(Scoring, LiveRequiresRealTime)
{
    Ratios r{0.5, 1.3, 1.0};
    // Output needs 27.6 Mpix/s; candidate manages 20.
    const ScoreResult slow =
        scoreScenario(Scenario::Live, r, m(20, 1, 40), 27.6);
    EXPECT_FALSE(slow.valid);

    const ScoreResult fast =
        scoreScenario(Scenario::Live, r, m(30, 1, 40), 27.6);
    ASSERT_TRUE(fast.valid);
    EXPECT_DOUBLE_EQ(fast.score, 1.3);
}

TEST(Scoring, VodScoreIsSxB)
{
    Ratios r{8.0, 0.8, 1.01};
    const ScoreResult result =
        scoreScenario(Scenario::Vod, r, m(80, 2, 41), 30);
    ASSERT_TRUE(result.valid);
    EXPECT_DOUBLE_EQ(result.score, 8.0 * 0.8);
}

TEST(Scoring, VodRejectsQualityLoss)
{
    Ratios r{10.0, 1.5, 0.97};
    const ScoreResult result =
        scoreScenario(Scenario::Vod, r, m(100, 1, 38), 30);
    EXPECT_FALSE(result.valid);
}

TEST(Scoring, VodVisuallyLosslessEscapesQualityConstraint)
{
    // Q < 1 but the transcode is above 50 dB: still valid (Table 1).
    Ratios r{4.0, 1.2, 0.98};
    const ScoreResult result =
        scoreScenario(Scenario::Vod, r, m(40, 1, 51.0), 30);
    ASSERT_TRUE(result.valid);
    EXPECT_DOUBLE_EQ(result.score, 4.8);
}

TEST(Scoring, PopularRequiresWinningBothDimensions)
{
    const Measurement cand = m(2, 1, 42);
    EXPECT_TRUE(scoreScenario(Scenario::Popular,
                              Ratios{0.5, 1.2, 1.05}, cand, 30)
                    .valid);
    EXPECT_FALSE(scoreScenario(Scenario::Popular,
                               Ratios{0.5, 0.95, 1.05}, cand, 30)
                     .valid);
    EXPECT_FALSE(scoreScenario(Scenario::Popular,
                               Ratios{0.5, 1.2, 0.99}, cand, 30)
                     .valid);
    // Slower than 10x is out even if B and Q win.
    EXPECT_FALSE(scoreScenario(Scenario::Popular,
                               Ratios{0.05, 1.2, 1.05}, cand, 30)
                     .valid);
}

TEST(Scoring, PopularScoreIsBxQ)
{
    const ScoreResult result = scoreScenario(
        Scenario::Popular, Ratios{0.4, 1.5, 1.02}, m(4, 1, 43), 30);
    ASSERT_TRUE(result.valid);
    EXPECT_DOUBLE_EQ(result.score, 1.5 * 1.02);
}

TEST(Scoring, PlatformRequiresIdenticalOutput)
{
    EXPECT_TRUE(scoreScenario(Scenario::Platform,
                              Ratios{1.3, 1.0, 1.0}, m(13, 1, 40), 30)
                    .valid);
    EXPECT_FALSE(scoreScenario(Scenario::Platform,
                               Ratios{1.3, 1.1, 1.0}, m(13, 1, 40), 30)
                     .valid);
    const ScoreResult result = scoreScenario(
        Scenario::Platform, Ratios{1.3, 1.0, 1.0}, m(13, 1, 40), 30);
    EXPECT_DOUBLE_EQ(result.score, 1.3);
}

TEST(Scoring, ScenarioNames)
{
    EXPECT_STREQ(toString(Scenario::Upload), "upload");
    EXPECT_STREQ(toString(Scenario::Popular), "popular");
}

} // namespace
} // namespace vbench::core
