/**
 * @file
 * End-to-end scenario pipeline: for one clip, every scenario's
 * reference must score 1.0 against itself, and the full
 * reference-vs-candidate flow must behave per Table 1.
 */

#include <gtest/gtest.h>

#include "core/reference.h"
#include "core/scoring.h"
#include "core/transcoder.h"
#include "metrics/rates.h"
#include "video/synth.h"

namespace vbench::core {
namespace {

struct Pipeline {
    video::Video clip;
    codec::ByteBuffer universal;
    ReferenceStore refs;

    Pipeline()
    {
        clip = video::synthesize(
            video::presetFor(video::ContentClass::Natural, 160, 128,
                             30.0, 8, 1212),
            "e2e");
        universal = makeUniversalStream(clip);
    }

    double
    outputRate() const
    {
        return metrics::outputMegapixelsPerSecond(
            clip.width(), clip.height(), clip.fps());
    }
};

TEST(ScenarioPipeline, ReferencesScoreOneAgainstThemselves)
{
    Pipeline p;
    for (Scenario scenario :
         {Scenario::Upload, Scenario::Vod, Scenario::Popular}) {
        const TranscodeOutcome &ref =
            p.refs.get("clip", scenario, p.universal, p.clip);
        ASSERT_TRUE(ref.ok) << toString(scenario);
        const Ratios r = computeRatios(ref.m, ref.m);
        EXPECT_DOUBLE_EQ(r.s, 1.0);
        EXPECT_DOUBLE_EQ(r.b, 1.0);
        EXPECT_DOUBLE_EQ(r.q, 1.0);
        const ScoreResult score =
            scoreScenario(scenario, r, ref.m, p.outputRate());
        // Upload/VOD/Popular self-scores are exactly 1 by Table 1.
        ASSERT_TRUE(score.valid)
            << toString(scenario) << ": " << score.reason;
        EXPECT_NEAR(score.score, 1.0, 1e-12) << toString(scenario);
    }
}

TEST(ScenarioPipeline, PlatformSelfScoreIsOne)
{
    Pipeline p;
    const TranscodeOutcome &ref =
        p.refs.get("clip", Scenario::Platform, p.universal, p.clip);
    ASSERT_TRUE(ref.ok);
    const Ratios r = computeRatios(ref.m, ref.m);
    const ScoreResult score =
        scoreScenario(Scenario::Platform, r, ref.m, p.outputRate());
    ASSERT_TRUE(score.valid);
    EXPECT_DOUBLE_EQ(score.score, 1.0);
}

TEST(ScenarioPipeline, UploadFavorsFastEncoders)
{
    // A faster effort at similar CRF quality must outscore a slower
    // one on Upload (score = S x Q).
    Pipeline p;
    const TranscodeOutcome &ref =
        p.refs.get("clip", Scenario::Upload, p.universal, p.clip);
    ASSERT_TRUE(ref.ok);

    auto uploadScore = [&](int effort) {
        TranscodeRequest req = referenceRequest(
            Scenario::Upload, p.clip.width(), p.clip.height(),
            p.clip.fps());
        req.effort = effort;
        const TranscodeOutcome out =
            transcode(p.universal, p.clip, req);
        EXPECT_TRUE(out.ok);
        const Ratios r = computeRatios(ref.m, out.m);
        const ScoreResult s =
            scoreScenario(Scenario::Upload, r, out.m, p.outputRate());
        return s.valid ? s.score : 0.0;
    };
    const double fast = uploadScore(1);
    const double slow = uploadScore(8);
    EXPECT_GT(fast, slow);
}

TEST(ScenarioPipeline, VodScoreRewardsHardwareStyleSpeed)
{
    Pipeline p;
    const TranscodeOutcome &ref =
        p.refs.get("clip", Scenario::Vod, p.universal, p.clip);
    ASSERT_TRUE(ref.ok);

    // The hardware path: much faster, somewhat bigger. Its VOD score
    // must reflect S x B per Table 1 when quality holds.
    TranscodeRequest req = referenceRequest(
        Scenario::Vod, p.clip.width(), p.clip.height(), p.clip.fps());
    req.kind = EncoderKind::QsvLike;
    const TranscodeOutcome hw = transcode(p.universal, p.clip, req);
    ASSERT_TRUE(hw.ok);
    const Ratios r = computeRatios(ref.m, hw.m);
    // (On postage-stamp test clips the hardware's per-frame overhead
    // dominates, so S itself can be < 1 here; the bench suite covers
    // realistic geometries. The contract under test is the formula.)
    EXPECT_GT(r.s, 0.0);
    const ScoreResult score =
        scoreScenario(Scenario::Vod, r, hw.m, p.outputRate());
    if (score.valid) {
        EXPECT_NEAR(score.score, r.s * r.b, 1e-12);
    }
}

} // namespace
} // namespace vbench::core
