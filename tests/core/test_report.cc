/**
 * @file
 * Report formatting tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/report.h"

namespace vbench::core {
namespace {

TEST(Report, FmtPrecision)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(3.0, 0), "3");
    EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

TEST(Report, TableAlignsColumns)
{
    Table table({"name", "S", "B"});
    table.addRow({"longvideoname", "1.00", "2"});
    table.addRow({"x", "10.55", "0.3"});
    std::ostringstream out;
    table.print(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("longvideoname"), std::string::npos);
    EXPECT_NE(text.find("10.55"), std::string::npos);
    EXPECT_NE(text.find("----"), std::string::npos);
    // Header row and rule plus two data rows.
    int lines = 0;
    for (char c : text)
        lines += c == '\n';
    EXPECT_EQ(lines, 4);
}

TEST(Report, ShortRowsArePadded)
{
    Table table({"a", "b", "c"});
    table.addRow({"only"});
    std::ostringstream out;
    table.print(out);
    EXPECT_NE(out.str().find("only"), std::string::npos);
}

TEST(Report, SeriesFormat)
{
    std::ostringstream out;
    printSeries(out, "psnr", {{0.1, 30.0}, {1.0, 40.0}});
    const std::string text = out.str();
    EXPECT_NE(text.find("# series: psnr"), std::string::npos);
    EXPECT_NE(text.find("0.1 30"), std::string::npos);
    EXPECT_NE(text.find("1 40"), std::string::npos);
}

} // namespace
} // namespace vbench::core
