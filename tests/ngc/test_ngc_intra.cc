/**
 * @file
 * NGC intra predictor tests (including the angular modes).
 */

#include <gtest/gtest.h>

#include "ngc/ngc_intra.h"
#include "video/rng.h"

namespace vbench::ngc {
namespace {

using video::Plane;

Plane
gradientPlane(int w, int h)
{
    Plane p(w, h);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            p.at(x, y) = static_cast<uint8_t>((x * 2 + y * 3) & 0xFF);
    return p;
}

TEST(NgcIntra, AvailabilityRules)
{
    EXPECT_TRUE(ngcIntraAvailable(NgcIntraMode::Dc, 0, 0));
    EXPECT_FALSE(ngcIntraAvailable(NgcIntraMode::DiagDownLeft, 8, 0));
    EXPECT_TRUE(ngcIntraAvailable(NgcIntraMode::DiagDownLeft, 0, 8));
    EXPECT_FALSE(ngcIntraAvailable(NgcIntraMode::DiagDownRight, 0, 8));
    EXPECT_TRUE(ngcIntraAvailable(NgcIntraMode::DiagDownRight, 8, 8));
    EXPECT_FALSE(ngcIntraAvailable(NgcIntraMode::TrueMotion, 8, 0));
}

TEST(NgcIntra, VerticalWorksAtAllSizes)
{
    const Plane p = gradientPlane(96, 96);
    for (int n : {8, 16, 32}) {
        std::vector<uint8_t> pred(n * n);
        ngcIntraPredict(NgcIntraMode::Vertical, p, 32, 32, n,
                        pred.data());
        for (int r = 0; r < n; ++r)
            for (int c = 0; c < n; ++c)
                ASSERT_EQ(pred[r * n + c], p.at(32 + c, 31))
                    << "size " << n;
    }
}

TEST(NgcIntra, DiagDownLeftFollowsDiagonal)
{
    // With a top row that ramps linearly, DDL prediction at (r, c)
    // equals the smoothed sample at column c + r + 1.
    Plane p(64, 64, 0);
    for (int x = 0; x < 64; ++x)
        p.at(x, 15) = static_cast<uint8_t>(2 * x);
    std::vector<uint8_t> pred(8 * 8);
    ngcIntraPredict(NgcIntraMode::DiagDownLeft, p, 16, 16, 8, pred.data());
    for (int r = 0; r < 7; ++r)
        for (int c = 0; c < 7; ++c)
            ASSERT_EQ(pred[r * 8 + c],
                      static_cast<uint8_t>(2 * (16 + c + r + 1)));
}

TEST(NgcIntra, DiagDownRightPropagatesCorner)
{
    // Distinct corner, top, and left values: the main diagonal of the
    // prediction takes its value from the corner neighborhood.
    Plane p(64, 64, 0);
    for (int x = 0; x < 64; ++x)
        p.at(x, 15) = 200;
    for (int y = 0; y < 64; ++y)
        p.at(15, y) = 100;
    p.at(15, 15) = 150;
    std::vector<uint8_t> pred(8 * 8);
    ngcIntraPredict(NgcIntraMode::DiagDownRight, p, 16, 16, 8,
                    pred.data());
    // d == 0 smooths (top(16,15)=200, corner=150, left(15,16)=100).
    EXPECT_EQ(pred[0], (200 + 2 * 150 + 100 + 2) >> 2);
    // Deeper along the diagonal the same value propagates.
    EXPECT_EQ(pred[9 * 1], pred[0]);   // (1,1)
    EXPECT_EQ(pred[9 * 5], pred[0]);   // (5,5)
}

TEST(NgcIntra, TrueMotionReproducesLinearRamp)
{
    Plane p(64, 64);
    for (int y = 0; y < 64; ++y)
        for (int x = 0; x < 64; ++x)
            p.at(x, y) = static_cast<uint8_t>(5 + 2 * x + 3 * y);
    std::vector<uint8_t> pred(16 * 16);
    ngcIntraPredict(NgcIntraMode::TrueMotion, p, 16, 16, 16, pred.data());
    for (int r = 0; r < 16; ++r)
        for (int c = 0; c < 16; ++c)
            ASSERT_EQ(pred[r * 16 + c], p.at(16 + c, 16 + r));
}

TEST(NgcIntra, DcNoNeighborsIsMidGray)
{
    Plane p(32, 32, 9);
    std::vector<uint8_t> pred(8 * 8);
    ngcIntraPredict(NgcIntraMode::Dc, p, 0, 0, 8, pred.data());
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(pred[i], 128);
}

} // namespace
} // namespace vbench::ngc
