/**
 * @file
 * Hierarchical 8x8 transform tests.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ngc/transform8.h"
#include "video/rng.h"

namespace vbench::ngc {
namespace {

void
pipeline(const int16_t in[64], int16_t out[64], int qp, bool intra)
{
    int16_t dc[4];
    int16_t ac[64];
    forwardTransform8x8(in, dc, ac, qp, intra);
    inverseTransform8x8(dc, ac, qp, out);
}

TEST(Transform8, ZeroStaysZero)
{
    int16_t in[64] = {};
    int16_t out[64];
    pipeline(in, out, 26, false);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(out[i], 0);
}

TEST(Transform8, FlatBlockSurvivesLowQp)
{
    int16_t in[64];
    for (auto &v : in)
        v = 120;
    int16_t out[64];
    pipeline(in, out, 8, false);
    for (int i = 0; i < 64; ++i)
        EXPECT_NEAR(out[i], 120, 4);
}

TEST(Transform8, RandomRoundTripBounded)
{
    video::Rng rng(3);
    for (int qp : {0, 12, 24, 36}) {
        const double step = std::pow(2.0, (qp - 4) / 6.0);
        for (int t = 0; t < 50; ++t) {
            int16_t in[64], out[64];
            for (auto &v : in)
                v = static_cast<int16_t>(rng.range(-255, 255));
            pipeline(in, out, qp, t % 2 == 0);
            for (int i = 0; i < 64; ++i)
                ASSERT_LE(std::abs(in[i] - out[i]), 3.0 * step + 6.0)
                    << "qp " << qp;
        }
    }
}

TEST(Transform8, ErrorGrowsWithQp)
{
    video::Rng rng(5);
    double prev = -1;
    for (int qp : {4, 16, 28, 40}) {
        double err = 0;
        for (int t = 0; t < 100; ++t) {
            int16_t in[64], out[64];
            for (auto &v : in)
                v = static_cast<int16_t>(rng.range(-200, 200));
            pipeline(in, out, qp, false);
            for (int i = 0; i < 64; ++i)
                err += std::abs(in[i] - out[i]);
        }
        EXPECT_GT(err, prev) << "qp " << qp;
        prev = err;
    }
}

TEST(Transform8, AcPositionZeroIsStructurallyZero)
{
    video::Rng rng(7);
    int16_t in[64];
    for (auto &v : in)
        v = static_cast<int16_t>(rng.range(-255, 255));
    int16_t dc[4];
    int16_t ac[64];
    forwardTransform8x8(in, dc, ac, 16, true);
    for (int sb = 0; sb < 4; ++sb)
        EXPECT_EQ(ac[sb * 16], 0);
}

TEST(Transform8, SmoothGradientCompactsIntoDc)
{
    // A smooth ramp across the whole 8x8 block should concentrate its
    // energy in the hierarchical DC levels, which is the entire point
    // of the second-level transform.
    int16_t in[64];
    for (int r = 0; r < 8; ++r)
        for (int c = 0; c < 8; ++c)
            in[r * 8 + c] = static_cast<int16_t>(40 + 3 * c + 2 * r);
    int16_t dc[4];
    int16_t ac[64];
    const int total = forwardTransform8x8(in, dc, ac, 24, false);
    int dc_nonzero = 0;
    for (int i = 0; i < 4; ++i)
        dc_nonzero += dc[i] != 0;
    int ac_nonzero = total - dc_nonzero;
    EXPECT_GT(dc_nonzero, 0);
    // Each 4x4 sub-block keeps its two first-order slope coefficients;
    // everything else must fold into the DC transform.
    EXPECT_LE(ac_nonzero, 8);
}

TEST(Transform8, NonzeroCountMatchesLevels)
{
    video::Rng rng(9);
    int16_t in[64];
    for (auto &v : in)
        v = static_cast<int16_t>(rng.range(-128, 128));
    int16_t dc[4];
    int16_t ac[64];
    const int reported = forwardTransform8x8(in, dc, ac, 20, false);
    int counted = 0;
    for (int i = 0; i < 4; ++i)
        counted += dc[i] != 0;
    for (int i = 0; i < 64; ++i)
        counted += ac[i] != 0;
    EXPECT_EQ(reported, counted);
}

} // namespace
} // namespace vbench::ngc
