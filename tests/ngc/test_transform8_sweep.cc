/**
 * @file
 * Parameterized QP sweep for the hierarchical 8x8 transform, mirroring
 * the 4x4 sweep in tests/codec/test_transform.cc.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ngc/transform8.h"
#include "video/rng.h"

namespace vbench::ngc {
namespace {

class Transform8QpSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(Transform8QpSweep, PipelineBoundedError)
{
    const int qp = GetParam();
    video::Rng rng(5000 + qp);
    const double step = std::pow(2.0, (qp - 4) / 6.0);
    for (int t = 0; t < 40; ++t) {
        int16_t in[64], out[64];
        for (auto &v : in)
            v = static_cast<int16_t>(rng.range(-255, 255));
        int16_t dc[4];
        int16_t ac[64];
        forwardTransform8x8(in, dc, ac, qp, t % 2 == 0);
        inverseTransform8x8(dc, ac, qp, out);
        // The two-level transform adds the Hadamard stage's rounding
        // to the 4x4 bound.
        for (int i = 0; i < 64; ++i)
            ASSERT_LE(std::abs(in[i] - out[i]), 3.0 * step + 6.0)
                << "qp " << qp << " pos " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(AllQps, Transform8QpSweep,
                         ::testing::Range(0, 52, 4));

class Transform8SparsitySweep : public ::testing::TestWithParam<int>
{
};

TEST_P(Transform8SparsitySweep, HigherQpNeverIncreasesNonzeros)
{
    // Coefficient counts must fall monotonically with QP for any
    // fixed residual: the rate-control QP model depends on it.
    const int seed = GetParam();
    video::Rng rng(seed);
    int16_t in[64];
    for (auto &v : in)
        v = static_cast<int16_t>(rng.range(-200, 200));
    int prev = 1000;
    for (int qp = 4; qp <= 48; qp += 4) {
        int16_t dc[4];
        int16_t ac[64];
        const int nz = forwardTransform8x8(in, dc, ac, qp, false);
        EXPECT_LE(nz, prev) << "seed " << seed << " qp " << qp;
        prev = nz;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Transform8SparsitySweep,
                         ::testing::Range(1, 9));

} // namespace
} // namespace vbench::ngc
