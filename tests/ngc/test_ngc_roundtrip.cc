/**
 * @file
 * NGC encoder/decoder round-trip and the cross-codec properties the
 * Popular scenario depends on (NGC compresses better than VBC at equal
 * quality, and costs more time).
 */

#include <gtest/gtest.h>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "metrics/psnr.h"
#include "ngc/ngc_decoder.h"
#include "ngc/ngc_encoder.h"
#include "video/synth.h"

namespace vbench::ngc {
namespace {

video::Video
testClip(int w = 160, int h = 128, int frames = 6,
         video::ContentClass content = video::ContentClass::Natural,
         uint64_t seed = 77)
{
    return video::synthesize(
        video::presetFor(content, w, h, 30.0, frames, seed), "clip");
}

NgcConfig
cqp(int qp, NgcProfile profile = NgcProfile::HevcLike, int speed = 1)
{
    NgcConfig cfg;
    cfg.rc.mode = codec::RcMode::Cqp;
    cfg.rc.qp = qp;
    cfg.profile = profile;
    cfg.speed = speed;
    cfg.gop = 4;
    return cfg;
}

TEST(NgcRoundTrip, GeometryRestored)
{
    const video::Video clip = testClip(150, 100, 4);  // unaligned dims
    NgcEncoder encoder(cqp(28));
    const codec::EncodeResult result = encoder.encode(clip);
    const auto decoded = ngcDecode(result.stream);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->width(), 150);
    EXPECT_EQ(decoded->height(), 100);
    EXPECT_EQ(decoded->frameCount(), 4);
}

TEST(NgcRoundTrip, LowQpNearLossless)
{
    const video::Video clip = testClip();
    NgcEncoder encoder(cqp(4));
    const auto decoded = ngcDecode(encoder.encode(clip).stream);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_GT(metrics::videoPsnr(clip, *decoded), 44.0);
}

TEST(NgcRoundTrip, QualityAndSizeTrackQp)
{
    const video::Video clip = testClip();
    double prev_psnr = 1e9;
    size_t prev_bytes = SIZE_MAX;
    for (int qp : {10, 24, 38}) {
        NgcEncoder encoder(cqp(qp));
        const codec::EncodeResult result = encoder.encode(clip);
        const auto decoded = ngcDecode(result.stream);
        ASSERT_TRUE(decoded.has_value());
        const double psnr = metrics::videoPsnr(clip, *decoded);
        EXPECT_LT(psnr, prev_psnr);
        EXPECT_LT(result.totalBytes(), prev_bytes);
        prev_psnr = psnr;
        prev_bytes = result.totalBytes();
    }
}

TEST(NgcRoundTrip, VbcStreamIsRejected)
{
    const video::Video clip = testClip(96, 96, 2);
    codec::EncoderConfig vbc_cfg;
    vbc_cfg.rc.mode = codec::RcMode::Cqp;
    vbc_cfg.rc.qp = 30;
    codec::Encoder vbc(vbc_cfg);
    const auto stream = vbc.encode(clip).stream;
    EXPECT_FALSE(ngcDecode(stream).has_value());
}

TEST(NgcRoundTrip, TruncationFailsCleanly)
{
    const video::Video clip = testClip(96, 96, 3);
    NgcEncoder encoder(cqp(30));
    const auto stream = encoder.encode(clip).stream;
    for (size_t keep : {size_t{0}, size_t{6}, stream.size() / 3}) {
        EXPECT_FALSE(ngcDecode(stream.data(), keep).has_value());
    }
}

TEST(NgcRoundTrip, Deterministic)
{
    const video::Video clip = testClip();
    EXPECT_EQ(NgcEncoder(cqp(26)).encode(clip).stream,
              NgcEncoder(cqp(26)).encode(clip).stream);
}

/** Both profiles and all speeds round-trip on mixed content. */
class NgcSweep
    : public ::testing::TestWithParam<std::tuple<NgcProfile, int>>
{
};

TEST_P(NgcSweep, RoundTrips)
{
    const auto [profile, speed] = GetParam();
    const video::Video clip =
        testClip(128, 96, 4, video::ContentClass::Gaming, 31);
    NgcEncoder encoder(cqp(24, profile, speed));
    const auto decoded = ngcDecode(encoder.encode(clip).stream);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_GT(metrics::videoPsnr(clip, *decoded), 28.0);
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesAndSpeeds, NgcSweep,
    ::testing::Combine(::testing::Values(NgcProfile::HevcLike,
                                         NgcProfile::Vp9Like),
                       ::testing::Values(0, 1, 2)));

TEST(NgcVsVbc, NgcCompressesBetterAtIsoQuality)
{
    // The Fig. 2 / Table 5 relationship: at matched PSNR the
    // next-generation codec produces a smaller stream. Needs a
    // realistically-sized clip — on postage stamps the per-frame
    // overheads dominate both codecs.
    const video::Video clip =
        testClip(320, 256, 8, video::ContentClass::Natural, 5);

    codec::EncoderConfig vbc_cfg;
    vbc_cfg.rc.mode = codec::RcMode::Cqp;
    vbc_cfg.rc.qp = 30;
    vbc_cfg.effort = 7;
    vbc_cfg.gop = 0;
    codec::Encoder vbc(vbc_cfg);
    const codec::EncodeResult vbc_result = vbc.encode(clip);
    const auto vbc_decoded = codec::decode(vbc_result.stream);
    ASSERT_TRUE(vbc_decoded.has_value());
    const double vbc_psnr = metrics::videoPsnr(clip, *vbc_decoded);

    // Find the *largest* NGC QP still matching VBC's quality (the
    // cheapest iso-quality encode), then compare stream sizes.
    size_t best_bytes = SIZE_MAX;
    for (int qp = 26; qp <= 44; ++qp) {
        NgcConfig cfg = cqp(qp, NgcProfile::HevcLike, 0);
        cfg.gop = 0;
        NgcEncoder ngc(cfg);
        const codec::EncodeResult result = ngc.encode(clip);
        const auto decoded = ngcDecode(result.stream);
        ASSERT_TRUE(decoded.has_value());
        if (metrics::videoPsnr(clip, *decoded) < vbc_psnr)
            break;
        best_bytes = std::min(best_bytes, result.totalBytes());
    }
    ASSERT_NE(best_bytes, SIZE_MAX)
        << "NGC never reached VBC quality in the QP sweep";
    EXPECT_LT(best_bytes, vbc_result.totalBytes());
}

TEST(NgcRoundTrip, TwoPassHitsBitrate)
{
    const video::Video clip =
        testClip(160, 128, 8, video::ContentClass::Sports, 9);
    NgcConfig cfg;
    cfg.rc.mode = codec::RcMode::TwoPass;
    cfg.rc.bitrate_bps = 500e3;
    cfg.speed = 1;
    cfg.gop = 0;
    NgcEncoder encoder(cfg);
    const codec::EncodeResult result = encoder.encode(clip);
    const double bps = result.totalBytes() * 8.0 / clip.duration();
    EXPECT_GT(bps, 0.4 * cfg.rc.bitrate_bps);
    EXPECT_LT(bps, 2.5 * cfg.rc.bitrate_bps);
    ASSERT_TRUE(ngcDecode(result.stream).has_value());
}

} // namespace
} // namespace vbench::ngc
