/**
 * @file
 * Entropy slice partitions, NGC: multi-slice streams must round-trip
 * for both profiles, the bytes must not depend on the wavefront width
 * at any slice count, slice bands over superblock rows must clamp to
 * the frame's row count, and slice_count=0 must defer to
 * VBENCH_SLICES. Labeled into the `thread` suite so the
 * VBENCH_SLICES=2 CI leg runs it alongside the frame-thread checks.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "metrics/psnr.h"
#include "ngc/ngc_decoder.h"
#include "ngc/ngc_encoder.h"
#include "video/synth.h"

namespace vbench::ngc {
namespace {

video::Video
testClip(int w = 192, int h = 128, int frames = 5,
         video::ContentClass content = video::ContentClass::Natural,
         uint64_t seed = 29)
{
    return video::synthesize(
        video::presetFor(content, w, h, 30.0, frames, seed), "clip");
}

NgcConfig
baseConfig(NgcProfile profile = NgcProfile::HevcLike)
{
    NgcConfig cfg;
    cfg.rc.mode = codec::RcMode::Cqp;
    cfg.rc.qp = 28;
    cfg.profile = profile;
    cfg.gop = 4;
    cfg.slice_count = 1;
    return cfg;
}

codec::ByteBuffer
encodeWith(const video::Video &clip, NgcConfig cfg, int slices,
           int threads = 1)
{
    cfg.slice_count = slices;
    cfg.frame_threads = threads;
    return NgcEncoder(cfg).encode(clip).stream;
}

TEST(SlicesNgc, MultiSliceStreamsRoundTripBothProfiles)
{
    const video::Video clip = testClip();
    for (const NgcProfile profile :
         {NgcProfile::HevcLike, NgcProfile::Vp9Like}) {
        const codec::ByteBuffer single =
            encodeWith(clip, baseConfig(profile), 1);
        const auto single_dec = ngcDecode(single);
        ASSERT_TRUE(single_dec.has_value());
        const double single_psnr =
            metrics::videoPsnr(clip, *single_dec);
        for (const int slices : {2, 4}) {
            const codec::ByteBuffer stream =
                encodeWith(clip, baseConfig(profile), slices);
            ASSERT_FALSE(stream.empty());
            EXPECT_NE(stream, single);
            const auto decoded = ngcDecode(stream);
            ASSERT_TRUE(decoded.has_value()) << "slices=" << slices;
            ASSERT_EQ(decoded->frameCount(), clip.frameCount());
            EXPECT_GT(metrics::videoPsnr(clip, *decoded),
                      single_psnr - 2.0)
                << "slices=" << slices;
        }
    }
}

TEST(SlicesNgc, BitExactAcrossThreadWidthsAtEverySliceCount)
{
    const video::Video clip = testClip();
    for (const int slices : {1, 2, 4}) {
        const codec::ByteBuffer serial =
            encodeWith(clip, baseConfig(), slices, 1);
        for (const int threads : {2, 4, 7}) {
            EXPECT_EQ(encodeWith(clip, baseConfig(), slices, threads),
                      serial)
                << "slices=" << slices << " threads=" << threads;
        }
    }
}

TEST(SlicesNgc, UnalignedHeightRoundTrips)
{
    // 100 pixel rows pad to 4 superblock rows (32-pixel SBs): uneven
    // slice bands, and the partial bottom row still codes.
    const video::Video clip = testClip(150, 100, 4);
    for (const int slices : {2, 4}) {
        const codec::ByteBuffer stream =
            encodeWith(clip, baseConfig(), slices);
        const auto decoded = ngcDecode(stream);
        ASSERT_TRUE(decoded.has_value()) << "slices=" << slices;
        EXPECT_EQ(decoded->frameCount(), clip.frameCount());
    }
}

TEST(SlicesNgc, SliceCountBeyondRowCountClampsToRows)
{
    // 128 pixel rows = 4 superblock rows (32-pixel SBs).
    const video::Video clip = testClip(192, 128, 3);
    EXPECT_EQ(encodeWith(clip, baseConfig(), 64),
              encodeWith(clip, baseConfig(), 4));
}

TEST(SlicesNgc, ZeroSliceCountResolvesVbenchSlices)
{
    const video::Video clip = testClip(192, 128, 3);
    setenv("VBENCH_SLICES", "2", 1);
    const codec::ByteBuffer resolved =
        encodeWith(clip, baseConfig(), 0);
    unsetenv("VBENCH_SLICES");
    EXPECT_EQ(resolved, encodeWith(clip, baseConfig(), 2));
}

} // namespace
} // namespace vbench::ngc
