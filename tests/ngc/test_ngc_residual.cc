/**
 * @file
 * NGC transform-unit syntax round-trip tests.
 */

#include <gtest/gtest.h>

#include <array>

#include "ngc/ngc_residual.h"
#include "video/rng.h"

namespace vbench::ngc {
namespace {

using codec::ArithSyntaxReader;
using codec::ArithSyntaxWriter;
using codec::ByteBuffer;

struct Tu {
    std::array<int16_t, 4> dc{};
    std::array<int16_t, 64> ac{};
    bool luma = true;
};

Tu
randomTu(video::Rng &rng)
{
    Tu tu;
    tu.luma = rng.below(2) == 0;
    const int n_dc = static_cast<int>(rng.below(5));
    for (int i = 0; i < n_dc; ++i)
        tu.dc[rng.below(4)] = static_cast<int16_t>(rng.range(-800, 800));
    const int n_ac = static_cast<int>(rng.below(30));
    for (int i = 0; i < n_ac; ++i) {
        const size_t pos = rng.below(64);
        if (pos % 16 == 0)
            continue;  // position 0 of each sub-block stays zero
        tu.ac[pos] = static_cast<int16_t>(rng.range(-300, 300));
    }
    return tu;
}

TEST(NgcResidual, RandomTusRoundTrip)
{
    video::Rng rng(42);
    std::vector<Tu> tus;
    for (int i = 0; i < 400; ++i)
        tus.push_back(randomTu(rng));

    ByteBuffer buf;
    {
        ArithSyntaxWriter writer(buf, nctx::kNumContexts);
        for (const Tu &tu : tus)
            writeTu8(writer, tu.dc.data(), tu.ac.data(), tu.luma);
        writer.finish();
    }
    {
        ArithSyntaxReader reader(buf.data(), buf.size(),
                                 nctx::kNumContexts);
        for (size_t i = 0; i < tus.size(); ++i) {
            int16_t dc[4];
            int16_t ac[64];
            ASSERT_GE(readTu8(reader, dc, ac, tus[i].luma), 0)
                << "tu " << i;
            for (int j = 0; j < 4; ++j)
                ASSERT_EQ(dc[j], tus[i].dc[j]) << "tu " << i;
            for (int j = 0; j < 64; ++j)
                ASSERT_EQ(ac[j], tus[i].ac[j]) << "tu " << i;
        }
    }
}

TEST(NgcResidual, EmptyTuIsCheap)
{
    Tu tu;
    ByteBuffer buf;
    ArithSyntaxWriter writer(buf, nctx::kNumContexts);
    for (int i = 0; i < 64; ++i)
        writeTu8(writer, tu.dc.data(), tu.ac.data(), true);
    writer.finish();
    // 5 near-deterministic bins per empty TU compress far below a
    // byte each once the contexts adapt.
    EXPECT_LT(buf.size(), 64u);
}

TEST(NgcResidual, NonzeroAcPositionZeroRejected)
{
    // A stream claiming a nonzero at an AC sub-block's position 0 is
    // structurally invalid and must be rejected.
    ByteBuffer buf;
    {
        ArithSyntaxWriter writer(buf, nctx::kNumContexts);
        writer.ue(0, nctx::kDcCount, 3);  // no DC levels
        // First AC block: one coefficient at zigzag position 0.
        writer.ue(1, codec::ctx::kCoefCountY, 4);
        writer.ue(0, codec::ctx::kRun, 3);
        writer.ue(4, codec::ctx::kLevel, 4);
        writer.bypass(0);
        for (int sb = 1; sb < 4; ++sb)
            writer.ue(0, codec::ctx::kCoefCountY, 4);
        writer.finish();
    }
    ArithSyntaxReader reader(buf.data(), buf.size(), nctx::kNumContexts);
    int16_t dc[4];
    int16_t ac[64];
    EXPECT_EQ(readTu8(reader, dc, ac, true), -1);
}

} // namespace
} // namespace vbench::ngc
