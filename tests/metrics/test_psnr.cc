/**
 * @file
 * PSNR metric tests.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/psnr.h"
#include "video/rng.h"
#include "video/synth.h"

namespace vbench::metrics {
namespace {

using video::Frame;
using video::Plane;
using video::Video;

TEST(Psnr, IdenticalPlanesAreLossless)
{
    Plane a(16, 16, 100);
    EXPECT_DOUBLE_EQ(mse(a, a), 0.0);
    EXPECT_DOUBLE_EQ(psnrFromMse(0.0), kLosslessPsnr);
}

TEST(Psnr, KnownMse)
{
    Plane a(4, 4, 100);
    Plane b(4, 4, 110);  // every sample off by 10
    EXPECT_DOUBLE_EQ(mse(a, b), 100.0);
    EXPECT_NEAR(psnrFromMse(100.0), 10 * std::log10(255.0 * 255.0 / 100),
                1e-9);
    EXPECT_NEAR(psnrFromMse(100.0), 28.13, 0.01);
}

TEST(Psnr, FramePsnrWeightsAllPlanes)
{
    Frame ref(16, 16);
    Frame test = ref;
    // Corrupt only chroma: frame PSNR must drop below lossless.
    test.u().fill(200);
    const double p = framePsnr(ref, test);
    EXPECT_LT(p, kLosslessPsnr);
    // Identical luma alone isn't enough, but it keeps PSNR finite.
    EXPECT_GT(p, 15.0);
}

TEST(Psnr, MoreNoiseMeansLowerPsnr)
{
    video::Rng rng(1);
    Frame ref(32, 32);
    Frame small = ref;
    Frame large = ref;
    for (int y = 0; y < 32; ++y) {
        for (int x = 0; x < 32; ++x) {
            small.y().at(x, y) = static_cast<uint8_t>(
                ref.y().at(x, y) + rng.range(-2, 2));
            large.y().at(x, y) = static_cast<uint8_t>(
                ref.y().at(x, y) + rng.range(-20, 20));
        }
    }
    EXPECT_GT(framePsnr(ref, small), framePsnr(ref, large));
}

TEST(Psnr, VideoPsnrAggregatesBeforeConversion)
{
    // One clean frame and one noisy frame: video PSNR must sit between
    // the per-frame values and closer to the noisy one than a dB
    // average would put it (MSE averaging, not dB averaging).
    video::SynthParams p = video::presetFor(
        video::ContentClass::Natural, 32, 32, 30.0, 2, 3);
    Video ref = video::synthesize(p);
    Video test = ref;
    test.frame(1).y().fill(0);

    const double f0 = framePsnr(ref.frame(0), test.frame(0));
    const double f1 = framePsnr(ref.frame(1), test.frame(1));
    const double v = videoPsnr(ref, test);
    EXPECT_DOUBLE_EQ(f0, kLosslessPsnr);
    // Halving the squared error is exactly +10*log10(2) dB.
    EXPECT_NEAR(v, f1 + 10 * std::log10(2.0), 1e-6);
}

TEST(Psnr, SymmetricInArguments)
{
    video::SynthParams p = video::presetFor(
        video::ContentClass::Noisy, 32, 32, 30.0, 1, 5);
    video::SynthParams q = p;
    q.seed = 6;
    const Video a = video::synthesize(p);
    const Video b = video::synthesize(q);
    EXPECT_DOUBLE_EQ(videoPsnr(a, b), videoPsnr(b, a));
}

} // namespace
} // namespace vbench::metrics
