/**
 * @file
 * SSIM metric tests.
 */

#include <gtest/gtest.h>

#include <utility>

#include "metrics/ssim.h"
#include "video/rng.h"
#include "video/synth.h"

namespace vbench::metrics {
namespace {

using video::Plane;

Plane
textured(int w, int h, uint64_t seed)
{
    video::Rng rng(seed);
    Plane p(w, h);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            p.at(x, y) =
                static_cast<uint8_t>(128 + rng.range(-60, 60));
    return p;
}

TEST(Ssim, IdenticalIsOne)
{
    const Plane p = textured(32, 32, 1);
    EXPECT_NEAR(ssimPlane(p, p), 1.0, 1e-9);
}

TEST(Ssim, BoundedAboveByOne)
{
    const Plane a = textured(32, 32, 2);
    const Plane b = textured(32, 32, 3);
    EXPECT_LE(ssimPlane(a, b), 1.0);
}

TEST(Ssim, DegradesWithNoise)
{
    const Plane ref = textured(64, 64, 4);
    video::Rng rng(5);
    Plane mild(64, 64), harsh(64, 64);
    for (int y = 0; y < 64; ++y) {
        for (int x = 0; x < 64; ++x) {
            mild.at(x, y) = static_cast<uint8_t>(
                std::clamp<int>(ref.at(x, y) + rng.range(-4, 4), 0, 255));
            harsh.at(x, y) = static_cast<uint8_t>(
                std::clamp<int>(ref.at(x, y) + rng.range(-60, 60), 0,
                                255));
        }
    }
    EXPECT_GT(ssimPlane(ref, mild), ssimPlane(ref, harsh));
    EXPECT_GT(ssimPlane(ref, mild), 0.8);
}

TEST(Ssim, ConstantOffsetBarelyHurtsStructure)
{
    // SSIM is less sensitive to a uniform luma shift than PSNR is.
    const Plane ref = textured(64, 64, 7);
    Plane shifted(64, 64);
    for (int y = 0; y < 64; ++y)
        for (int x = 0; x < 64; ++x)
            shifted.at(x, y) = static_cast<uint8_t>(
                std::clamp<int>(ref.at(x, y) + 10, 0, 255));
    EXPECT_GT(ssimPlane(ref, shifted), 0.85);
}

TEST(Ssim, OddSizedPlanesCoverEdgePixels)
{
    // Regression: windows used to tile only at 8-aligned positions, so
    // on non-multiple-of-8 planes the right/bottom edge pixels never
    // contributed. Corrupt exactly those pixels and require the score
    // to drop.
    for (const auto &[w, h] :
         {std::pair{33, 17}, {40, 25}, {31, 32}}) {
        const Plane ref = textured(w, h, 40 + w);
        Plane bad = ref;
        for (int y = 0; y < h; ++y)
            for (int x = 0; x < w; ++x)
                if (x >= (w / 8) * 8 || y >= (h / 8) * 8)
                    bad.at(x, y) =
                        static_cast<uint8_t>(255 - bad.at(x, y));
        EXPECT_NEAR(ssimPlane(ref, ref), 1.0, 1e-9)
            << w << "x" << h;
        EXPECT_LT(ssimPlane(ref, bad), 0.95) << w << "x" << h;
    }
}

TEST(Ssim, PlanesSmallerThanWindow)
{
    // Planes below 8x8 get one shrunken window instead of score 1.0.
    const Plane ref = textured(5, 6, 50);
    Plane inv(5, 6);
    for (int y = 0; y < 6; ++y)
        for (int x = 0; x < 5; ++x)
            inv.at(x, y) = static_cast<uint8_t>(255 - ref.at(x, y));
    EXPECT_NEAR(ssimPlane(ref, ref), 1.0, 1e-9);
    EXPECT_LT(ssimPlane(ref, inv), 0.5);
}

TEST(Ssim, VideoAveragesFrames)
{
    video::SynthParams p = video::presetFor(
        video::ContentClass::Natural, 32, 32, 30.0, 3, 8);
    const video::Video ref = video::synthesize(p);
    video::Video test = ref;
    test.frame(2).y().fill(0);
    const double v = videoSsim(ref, test);
    EXPECT_LT(v, 1.0);
    EXPECT_GT(v, 0.5);  // two of three frames are perfect
}

} // namespace
} // namespace vbench::metrics
