/**
 * @file
 * Normalized bitrate/speed metric tests (paper §2.3 definitions).
 */

#include <gtest/gtest.h>

#include "metrics/rates.h"

namespace vbench::metrics {
namespace {

TEST(Rates, BitsPerPixelPerSecond)
{
    // 1 MB over 30 frames of 1280x720 at 30 fps: duration 1 s,
    // so bits / pixels-per-frame.
    const double bpps =
        bitsPerPixelPerSecond(1000000, 1280, 720, 30, 30.0);
    EXPECT_NEAR(bpps, 8e6 / (1280.0 * 720.0), 1e-9);
}

TEST(Rates, BitrateIsDurationNormalized)
{
    // Same bytes spread over twice the frames (twice the duration)
    // halves the rate.
    const double one_sec = bitsPerPixelPerSecond(500000, 640, 480, 30, 30);
    const double two_sec = bitsPerPixelPerSecond(500000, 640, 480, 60, 30);
    EXPECT_NEAR(one_sec, 2 * two_sec, 1e-12);
}

TEST(Rates, MegapixelsPerSecond)
{
    // 60 frames of 1920x1080 in 2 seconds.
    const double speed = megapixelsPerSecond(1920, 1080, 60, 2.0);
    EXPECT_NEAR(speed, 1920.0 * 1080 * 60 / 2 / 1e6, 1e-9);
    EXPECT_NEAR(speed, 62.2, 0.1);
}

TEST(Rates, OutputRateMatchesRealTimeRequirement)
{
    // A 720p30 output must be produced at >= 27.6 Mpixel/s to be live.
    EXPECT_NEAR(outputMegapixelsPerSecond(1280, 720, 30), 27.648, 1e-3);
    EXPECT_NEAR(outputMegapixelsPerSecond(3840, 2160, 60), 497.664, 1e-3);
}

} // namespace
} // namespace vbench::metrics
