/**
 * @file
 * BD-rate metric tests.
 */

#include <gtest/gtest.h>

#include "metrics/bdrate.h"

namespace vbench::metrics {
namespace {

std::vector<RdPoint>
curve(std::initializer_list<std::pair<double, double>> pts)
{
    std::vector<RdPoint> out;
    for (auto [rate, psnr] : pts)
        out.push_back({rate, psnr});
    return out;
}

TEST(BdRate, IdenticalCurvesScoreZero)
{
    const auto c = curve({{0.5, 36}, {1.0, 40}, {2.0, 44}, {4.0, 47}});
    EXPECT_NEAR(bdRate(c, c), 0.0, 1e-9);
}

TEST(BdRate, UniformlyHalvedBitrateIsMinusFiftyPercent)
{
    const auto anchor =
        curve({{1.0, 36}, {2.0, 40}, {4.0, 44}, {8.0, 47}});
    const auto test =
        curve({{0.5, 36}, {1.0, 40}, {2.0, 44}, {4.0, 47}});
    EXPECT_NEAR(bdRate(anchor, test), -0.5, 1e-6);
}

TEST(BdRate, UniformlyDoubledBitrateIsPlusHundredPercent)
{
    const auto anchor = curve({{1.0, 36}, {2.0, 40}, {4.0, 44}});
    const auto test = curve({{2.0, 36}, {4.0, 40}, {8.0, 44}});
    EXPECT_NEAR(bdRate(anchor, test), 1.0, 1e-6);
}

TEST(BdRate, AntisymmetricInLogDomain)
{
    const auto a = curve({{0.8, 35}, {1.7, 39}, {3.1, 43}, {6.5, 46}});
    const auto b = curve({{0.6, 35}, {1.2, 39}, {2.6, 43}, {5.9, 46}});
    const double ab = bdRate(a, b);
    const double ba = bdRate(b, a);
    // (1+ab)*(1+ba) == 1 when integration intervals match.
    EXPECT_NEAR((1 + ab) * (1 + ba), 1.0, 1e-3);
}

TEST(BdRate, UsesOnlyOverlappingQualityRange)
{
    // The test curve only overlaps [40, 44]; points outside must not
    // contribute.
    const auto anchor = curve({{1.0, 36}, {2.0, 40}, {4.0, 44}});
    const auto test = curve({{1.0, 40}, {2.0, 44}, {4.0, 48}});
    const double bd = bdRate(anchor, test);
    // Inside the overlap, test needs half the bits.
    EXPECT_NEAR(bd, -0.5, 1e-6);
}

TEST(BdRate, DegenerateInputsScoreZero)
{
    const auto c = curve({{1.0, 36}, {2.0, 40}});
    EXPECT_EQ(bdRate({}, c), 0.0);
    EXPECT_EQ(bdRate(c, curve({{1.0, 36}})), 0.0);
    // Disjoint quality ranges.
    EXPECT_EQ(bdRate(curve({{1, 30}, {2, 33}}),
                     curve({{1, 40}, {2, 44}})),
              0.0);
}

TEST(BdRate, UnsortedInputHandled)
{
    const auto anchor = curve({{4.0, 44}, {1.0, 36}, {2.0, 40}});
    const auto test = curve({{1.0, 40}, {0.5, 36}, {2.0, 44}});
    EXPECT_NEAR(bdRate(anchor, test), -0.5, 1e-6);
}

} // namespace
} // namespace vbench::metrics
