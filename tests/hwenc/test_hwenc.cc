/**
 * @file
 * Hardware encoder model tests (§5.3 behaviours).
 */

#include <gtest/gtest.h>

#include "codec/decoder.h"
#include "hwenc/hwenc.h"
#include "metrics/psnr.h"
#include "video/synth.h"

namespace vbench::hwenc {
namespace {

video::Video
clip(int w = 160, int h = 128, int frames = 6,
     video::ContentClass content = video::ContentClass::Natural)
{
    return video::synthesize(
        video::presetFor(content, w, h, 30.0, frames, 404), "hw");
}

codec::RateControlConfig
abr(double bps)
{
    codec::RateControlConfig rc;
    rc.mode = codec::RcMode::Abr;
    rc.bitrate_bps = bps;
    return rc;
}

TEST(HwEnc, ProducesDecodableStream)
{
    const video::Video v = clip();
    for (const HwEncoderSpec &spec : {nvencLikeSpec(), qsvLikeSpec()}) {
        const HwEncodeResult result = hwEncode(spec, v, abr(600e3));
        const auto decoded = codec::decode(result.encoded.stream);
        ASSERT_TRUE(decoded.has_value()) << spec.name;
        EXPECT_GT(metrics::videoPsnr(v, *decoded), 22.0) << spec.name;
    }
}

TEST(HwEnc, ModeledTimeNotWallClock)
{
    // The modeled throughput must reflect the spec, not the host CPU.
    const video::Video v = clip();
    const HwEncodeResult result =
        hwEncode(nvencLikeSpec(), v, abr(600e3));
    EXPECT_GT(result.mpix_per_s, 1.0);
    const double expected = v.frameCount() *
            nvencLikeSpec().per_frame_overhead_ms / 1000.0 +
        v.totalPixels() / (nvencLikeSpec().throughput_mpix_s * 1e6);
    EXPECT_NEAR(result.seconds, expected, 1e-9);
}

TEST(HwEnc, ThroughputGrowsWithResolution)
{
    // The per-frame overhead amortizes with frame size: effective
    // Mpix/s must rise from small to large frames (Table 3 mechanism).
    const video::Video small = clip(128, 96, 4);
    const video::Video large = clip(512, 384, 4);
    const double s_small =
        hwEncode(qsvLikeSpec(), small, abr(400e3)).mpix_per_s;
    const double s_large =
        hwEncode(qsvLikeSpec(), large, abr(2e6)).mpix_per_s;
    EXPECT_GT(s_large, 2.0 * s_small);
}

TEST(HwEnc, QsvIsFasterThanNvenc)
{
    const video::Video v = clip();
    const double nv = hwEncode(nvencLikeSpec(), v, abr(600e3)).mpix_per_s;
    const double qs = hwEncode(qsvLikeSpec(), v, abr(600e3)).mpix_per_s;
    EXPECT_GT(qs, nv);
}

TEST(HwEnc, TwoPassDowngradesToSinglePass)
{
    // Fixed-function encoders cannot do two-pass; the model must not
    // silently run one.
    const video::Video v = clip();
    codec::RateControlConfig rc;
    rc.mode = codec::RcMode::TwoPass;
    rc.bitrate_bps = 500e3;
    const HwEncodeResult result = hwEncode(nvencLikeSpec(), v, rc);
    ASSERT_TRUE(codec::decode(result.encoded.stream).has_value());
}

TEST(HwEnc, BisectionMeetsQualityTarget)
{
    const video::Video v = clip();
    const double target = 34.0;
    const HwEncodeResult result =
        encodeAtQuality(qsvLikeSpec(), v, target, 6);
    const auto decoded = codec::decode(result.encoded.stream);
    ASSERT_TRUE(decoded.has_value());
    const double psnr = metrics::videoPsnr(v, *decoded);
    EXPECT_GE(psnr, target);
    // "by a small margin": within a couple of dB, not 4x the bits.
    EXPECT_LT(psnr, target + 6.0);
}

TEST(HwEnc, BisectionUsesFewerBitsForLowerTargets)
{
    const video::Video v = clip();
    const size_t low =
        encodeAtQuality(nvencLikeSpec(), v, 30.0, 6).encoded.totalBytes();
    const size_t high =
        encodeAtQuality(nvencLikeSpec(), v, 38.0, 6).encoded.totalBytes();
    EXPECT_LT(low, high);
}

TEST(HwEnc, UnreachableQualityTargetReturnsMaxEffortAttempt)
{
    // A target no encoder can reach: the bisection must still return
    // a decodable stream (the caller observes the miss via PSNR).
    const video::Video v = clip(96, 80, 3, video::ContentClass::Noisy);
    const HwEncodeResult result =
        encodeAtQuality(nvencLikeSpec(), v, 99.0, 4);
    const auto decoded = codec::decode(result.encoded.stream);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_LT(metrics::videoPsnr(v, *decoded), 99.0);
    EXPECT_GT(result.encoded.totalBytes(), 0u);
}

TEST(HwEnc, SeparateQualityBaselineIsHonored)
{
    // Encoding a degraded source while scoring against the pristine
    // master: the bisection must meet the target against the master.
    const video::Video master = clip(128, 96, 4);
    codec::EncoderConfig cfg;
    cfg.rc.mode = codec::RcMode::Crf;
    cfg.rc.crf = 16;
    cfg.effort = 3;
    codec::Encoder encoder(cfg);
    const auto degraded = codec::decode(encoder.encode(master).stream);
    ASSERT_TRUE(degraded.has_value());

    const double target = 32.0;
    const HwEncodeResult result =
        encodeAtQuality(qsvLikeSpec(), *degraded, target, 6, &master);
    const auto decoded = codec::decode(result.encoded.stream);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_GE(metrics::videoPsnr(master, *decoded), target);
}

TEST(HwEnc, BitrateFloorBindsOnTrivialContent)
{
    // Ask the hardware for far fewer bits than its floor on static
    // content: the floor must clamp the request.
    const video::Video v =
        clip(160, 128, 6, video::ContentClass::Slideshow);
    codec::RateControlConfig rc;
    rc.mode = codec::RcMode::Abr;
    rc.bitrate_bps = 1000;  // absurdly low
    const HwEncodeResult result = hwEncode(qsvLikeSpec(), v, rc);
    ASSERT_TRUE(codec::decode(result.encoded.stream).has_value());
    // The produced stream reflects the clamped (floored) request, not
    // the 1 kbps ask: well above it.
    EXPECT_GT(result.encoded.totalBytes() * 8.0,
              rc.bitrate_bps * v.duration() * 3);
}

TEST(HwEnc, HardwareCompressesWorseThanHighEffortSoftware)
{
    // The §5.3 trade: at matched quality the frozen hardware tool set
    // needs more bits than a high-effort software encode.
    const video::Video v = clip(192, 160, 6);

    codec::EncoderConfig sw_cfg;
    sw_cfg.rc.mode = codec::RcMode::Cqp;
    sw_cfg.rc.qp = 30;
    sw_cfg.effort = 7;
    sw_cfg.gop = 30;
    codec::Encoder sw(sw_cfg);
    const codec::EncodeResult sw_result = sw.encode(v);
    const auto sw_decoded = codec::decode(sw_result.stream);
    ASSERT_TRUE(sw_decoded.has_value());
    const double sw_psnr = metrics::videoPsnr(v, *sw_decoded);

    const HwEncodeResult hw =
        encodeAtQuality(nvencLikeSpec(), v, sw_psnr, 7);
    EXPECT_GT(hw.encoded.totalBytes(), sw_result.totalBytes());
}

} // namespace
} // namespace vbench::hwenc
