/**
 * @file
 * The process-level execution seam end to end (docs/RPC.md): a
 * TranscodeService run whose segments execute in fork/exec'd
 * vbench_worker children — via an rpc::RemotePool plugged into
 * ServiceConfig::executor — delivers byte-identical stitched streams
 * to the in-process single-pool run, for VBC and NGC across all four
 * rate-control modes, with the output cache cold and warm, and with a
 * SIGKILL landing mid-segment (the retry path absorbs the dead child).
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "rpc/remote_pool.h"
#include "service/executor.h"
#include "service/service.h"
#include "service/workload.h"

namespace vbench::service {
namespace {

Corpus
rpcCorpus()
{
    video::ClipSpec spec;
    spec.name = "rpc";
    spec.width = 96;
    spec.height = 64;
    spec.fps = 30.0;
    spec.content = video::ContentClass::Natural;
    spec.seed = 53;
    return buildCorpus({spec}, 8, 4);
}

/** One request per (encoder, rc mode): the full chained/unchained mix. */
std::vector<ServiceRequest>
rcMatrixWorkload()
{
    std::vector<ServiceRequest> workload;
    uint64_t id = 1;
    for (const core::EncoderKind kind :
         {core::EncoderKind::Vbc, core::EncoderKind::NgcHevc}) {
        for (const codec::RcMode mode :
             {codec::RcMode::Cqp, codec::RcMode::Crf, codec::RcMode::Abr,
              codec::RcMode::TwoPass}) {
            ServiceRequest req;
            req.id = id++;
            req.scenario = core::Scenario::Upload;
            req.clip = 0;
            req.arrival_s = 0.0;
            RungSpec rung;
            rung.request.kind = kind;
            rung.request.effort = 3;
            rung.request.ngc_speed = 1;
            rung.request.rc.mode = mode;
            rung.request.rc.qp = 30;
            rung.request.rc.crf = 30.0;
            rung.request.rc.bitrate_bps = 300'000.0;
            rung.request.rc.fps = 30.0;
            rung.request.rc.pixels_per_frame = 96.0 * 64.0;
            switch (mode) {
            case codec::RcMode::Cqp:
                rung.name = "cqp";
                break;
            case codec::RcMode::Crf:
                rung.name = "crf";
                break;
            case codec::RcMode::Abr:
                rung.name = "abr";
                break;
            case codec::RcMode::TwoPass:
                rung.name = "2p";
                break;
            }
            rung.name +=
                kind == core::EncoderKind::Vbc ? ".vbc" : ".ngc";
            req.rungs.push_back(rung);
            workload.push_back(req);
        }
    }
    return workload;
}

ServiceResult
runLocalBaseline(const Corpus &corpus,
                 const std::vector<ServiceRequest> &workload)
{
    ServiceConfig plain;
    plain.workers = 2;
    plain.admission_capacity = 64;
    plain.collect_outputs = true;
    TranscodeService svc(plain, corpus);
    return svc.run(workload);
}

void
expectSameOutputs(const ServiceResult &baseline,
                  const ServiceResult &result)
{
    ASSERT_EQ(result.outputs.size(), baseline.outputs.size());
    for (const auto &[name, stream] : baseline.outputs) {
        const auto it = result.outputs.find(name);
        ASSERT_NE(it, result.outputs.end()) << name;
        EXPECT_EQ(it->second, stream) << name;
    }
}

TEST(ServiceRpc, ProcWorkersKeepStitchedOutputsByteIdentical)
{
    const Corpus corpus = rpcCorpus();
    const std::vector<ServiceRequest> workload = rcMatrixWorkload();

    const ServiceResult baseline = runLocalBaseline(corpus, workload);
    ASSERT_EQ(baseline.completed, workload.size());
    ASSERT_EQ(baseline.stitch_failures, 0u);

    rpc::RemotePoolConfig pool_config;
    pool_config.workers = 2;
    rpc::RemotePool pool(pool_config);

    ServiceConfig routed;
    routed.workers = 2;
    routed.admission_capacity = 64;
    routed.collect_outputs = true;
    routed.executor = &pool;
    TranscodeService svc(routed, corpus);
    const ServiceResult result = svc.run(workload);
    ASSERT_EQ(result.completed, workload.size());
    ASSERT_EQ(result.failed_requests, 0u);
    ASSERT_EQ(result.stitch_failures, 0u);

    // The headline invariant: which PROCESS encoded each segment is
    // invisible in the delivered bytes.
    expectSameOutputs(baseline, result);

    const ExecutorStats stats = pool.stats();
    EXPECT_TRUE(stats.remote);
    // 2 segments per rung × 8 rungs, every one through a child.
    EXPECT_EQ(stats.completed, 2 * workload.size());
    EXPECT_EQ(stats.degraded_local, 0u);
}

TEST(ServiceRpc, ColdAndWarmCacheStayByteIdenticalUnderProcWorkers)
{
    const Corpus corpus = rpcCorpus();
    const std::vector<ServiceRequest> workload = rcMatrixWorkload();
    const ServiceResult baseline = runLocalBaseline(corpus, workload);
    ASSERT_EQ(baseline.completed, workload.size());

    rpc::RemotePoolConfig pool_config;
    pool_config.workers = 2;
    rpc::RemotePool pool(pool_config);

    cache::CacheConfig cache_config;
    // AlwaysStore: micro-segments encode in microseconds, so the
    // cost-aware policy would (correctly) decline to store them.
    cache_config.policy = cache::CachePolicy::AlwaysStore;
    cache::TranscodeCache cache(cache_config);

    ServiceConfig routed;
    routed.workers = 2;
    routed.admission_capacity = 64;
    routed.collect_outputs = true;
    routed.executor = &pool;
    routed.cache = &cache;

    // Cold: every segment misses and encodes in a child process.
    TranscodeService cold_svc(routed, corpus);
    const ServiceResult cold = cold_svc.run(workload);
    ASSERT_EQ(cold.completed, workload.size());
    expectSameOutputs(baseline, cold);
    EXPECT_EQ(cold.cache_stats.hits, 0u);
    EXPECT_GT(cold.cache_stats.misses, 0u);

    // Warm: the cache (caller-owned, outlives the run) now serves
    // hits before any child is involved — same bytes either way.
    TranscodeService warm_svc(routed, corpus);
    const ServiceResult warm = warm_svc.run(workload);
    ASSERT_EQ(warm.completed, workload.size());
    expectSameOutputs(baseline, warm);
    EXPECT_GT(warm.cache_stats.hits, cold.cache_stats.hits);
}

TEST(ServiceRpc, SigkillMidSegmentCompletesViaRetry)
{
    const Corpus corpus = rpcCorpus();
    std::vector<ServiceRequest> workload = rcMatrixWorkload();
    workload.resize(4);  // the VBC half: keep the kill run quick
    const ServiceResult baseline = runLocalBaseline(corpus, workload);
    ASSERT_EQ(baseline.completed, workload.size());

    rpc::RemotePoolConfig pool_config;
    pool_config.workers = 2;
    // SIGKILL the child serving dispatch #1: one segment dies
    // mid-encode and must complete via retry on a respawned child.
    pool_config.inject_kill_at = 1;
    rpc::RemotePool pool(pool_config);

    ServiceConfig routed;
    routed.workers = 2;
    routed.admission_capacity = 64;
    routed.collect_outputs = true;
    routed.executor = &pool;
    TranscodeService svc(routed, corpus);
    const ServiceResult result = svc.run(workload);
    ASSERT_EQ(result.completed, workload.size());
    ASSERT_EQ(result.failed_requests, 0u);
    expectSameOutputs(baseline, result);

    const ExecutorStats stats = pool.stats();
    EXPECT_EQ(stats.kills_injected, 1u);
    EXPECT_GE(stats.worker_deaths, 1u);
    EXPECT_GE(stats.retries, 1u);
    // No respawn assertion: with two slots the surviving child can
    // serve the retry before the killed slot sees another job (the
    // single-worker RemotePool test pins the respawn path down).
}

} // namespace
} // namespace vbench::service
