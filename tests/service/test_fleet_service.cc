/**
 * @file
 * Fleet-routed service runs are placement-invariant: with the modeled
 * heterogeneous fleet AND the serialize/deserialize wire loopback both
 * enabled, every stitched delivery stream stays byte-identical to the
 * plain single-pool run — for VBC and NGC across all four rate-control
 * modes. Also checks the cost plumbing: fleet usage, total dollars,
 * and the SLA scorer's $/stream columns.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fleet/types.h"
#include "service/service.h"
#include "service/workload.h"

namespace vbench::service {
namespace {

Corpus
fleetCorpus()
{
    video::ClipSpec spec;
    spec.name = "fleet";
    spec.width = 96;
    spec.height = 64;
    spec.fps = 30.0;
    spec.content = video::ContentClass::Natural;
    spec.seed = 97;
    return buildCorpus({spec}, 8, 4);
}

/** One request per (encoder, rc mode): the full chained/unchained mix. */
std::vector<ServiceRequest>
rcMatrixWorkload()
{
    std::vector<ServiceRequest> workload;
    uint64_t id = 1;
    for (const core::EncoderKind kind :
         {core::EncoderKind::Vbc, core::EncoderKind::NgcHevc}) {
        for (const codec::RcMode mode :
             {codec::RcMode::Cqp, codec::RcMode::Crf, codec::RcMode::Abr,
              codec::RcMode::TwoPass}) {
            ServiceRequest req;
            req.id = id++;
            req.scenario = core::Scenario::Upload;
            req.clip = 0;
            req.arrival_s = 0.0;
            RungSpec rung;
            rung.request.kind = kind;
            rung.request.effort = 3;
            rung.request.ngc_speed = 1;
            rung.request.rc.mode = mode;
            rung.request.rc.qp = 30;
            rung.request.rc.crf = 30.0;
            rung.request.rc.bitrate_bps = 300'000.0;
            rung.request.rc.fps = 30.0;
            rung.request.rc.pixels_per_frame = 96.0 * 64.0;
            switch (mode) {
            case codec::RcMode::Cqp:
                rung.name = "cqp";
                break;
            case codec::RcMode::Crf:
                rung.name = "crf";
                break;
            case codec::RcMode::Abr:
                rung.name = "abr";
                break;
            case codec::RcMode::TwoPass:
                rung.name = "2p";
                break;
            }
            rung.name +=
                kind == core::EncoderKind::Vbc ? ".vbc" : ".ngc";
            req.rungs.push_back(rung);
            workload.push_back(req);
        }
    }
    return workload;
}

TEST(ServiceFleet, FleetAndWireKeepStitchedOutputsByteIdentical)
{
    const Corpus corpus = fleetCorpus();
    const std::vector<ServiceRequest> workload = rcMatrixWorkload();

    ServiceConfig plain;
    plain.workers = 2;
    plain.admission_capacity = 64;
    plain.collect_outputs = true;
    TranscodeService baseline_service(plain, corpus);
    const ServiceResult baseline = baseline_service.run(workload);
    ASSERT_EQ(baseline.completed, workload.size());
    ASSERT_EQ(baseline.stitch_failures, 0u);
    ASSERT_EQ(baseline.outputs.size(), workload.size());

    const fleet::FleetConfig fleet_config = fleet::defaultFleetConfig();
    const fleet::PerfModel fleet_model;  // stock speeds: no profiling
    ServiceConfig routed = plain;
    routed.fleet = &fleet_config;
    routed.fleet_model = &fleet_model;
    routed.wire_loopback = true;
    TranscodeService fleet_service(routed, corpus);
    const ServiceResult result = fleet_service.run(workload);
    ASSERT_EQ(result.completed, workload.size());
    ASSERT_EQ(result.stitch_failures, 0u);
    ASSERT_EQ(result.outputs.size(), baseline.outputs.size());

    // The headline invariant: placement and the wire change nothing
    // about the delivered bytes.
    for (const auto &[name, stream] : baseline.outputs) {
        const auto it = result.outputs.find(name);
        ASSERT_NE(it, result.outputs.end()) << name;
        EXPECT_EQ(it->second, stream) << name;
    }

    // The fleet actually metered the run.
    EXPECT_GT(result.fleet_cost_dollars, 0.0);
    ASSERT_FALSE(result.fleet_usage.empty());
    int placed = 0;
    for (const fleet::TypeUsage &u : result.fleet_usage)
        placed += u.jobs;
    // Every segment of every rung was placed exactly once: 2 segments
    // per 8-frame clip at 4 frames/segment.
    EXPECT_EQ(placed, static_cast<int>(2 * workload.size()));

    // ...and the dollars reached the SLA scorecard.
    EXPECT_GT(result.sla.total_cost_dollars, 0.0);
    bool saw_cost_columns = false;
    for (const ScenarioScore &s : result.sla.scenarios) {
        if (s.scenario != core::Scenario::Upload)
            continue;
        EXPECT_GT(s.cost_dollars, 0.0);
        EXPECT_GT(s.dollars_per_stream, 0.0);
        EXPECT_GT(s.dollars_per_quality_point, 0.0);
        saw_cost_columns = true;
    }
    EXPECT_TRUE(saw_cost_columns);

    // The no-fleet baseline keeps every cost column at zero.
    EXPECT_DOUBLE_EQ(baseline.fleet_cost_dollars, 0.0);
    EXPECT_TRUE(baseline.fleet_usage.empty());
    EXPECT_DOUBLE_EQ(baseline.sla.total_cost_dollars, 0.0);
}

TEST(ServiceFleet, WireLoopbackAloneIsAlsoByteIdentical)
{
    // Isolates the serialization path from the fleet model: routing
    // every segment through serialize() + deserialize() must be
    // invisible in the outputs.
    const Corpus corpus = fleetCorpus();
    std::vector<ServiceRequest> workload = rcMatrixWorkload();
    workload.resize(4);  // the VBC half: keep the test quick

    ServiceConfig plain;
    plain.workers = 2;
    plain.admission_capacity = 64;
    plain.collect_outputs = true;
    TranscodeService baseline_service(plain, corpus);
    const ServiceResult baseline = baseline_service.run(workload);
    ASSERT_EQ(baseline.completed, workload.size());

    ServiceConfig wired = plain;
    wired.wire_loopback = true;
    TranscodeService wired_service(wired, corpus);
    const ServiceResult result = wired_service.run(workload);
    ASSERT_EQ(result.completed, workload.size());
    ASSERT_EQ(result.outputs.size(), baseline.outputs.size());
    for (const auto &[name, stream] : baseline.outputs) {
        const auto it = result.outputs.find(name);
        ASSERT_NE(it, result.outputs.end()) << name;
        EXPECT_EQ(it->second, stream) << name;
    }
}

} // namespace
} // namespace vbench::service
