/**
 * @file
 * Admission queue unit + concurrency tests. Deliberately codec-free:
 * this file is also rebuilt under ThreadSanitizer (test_service_tsan,
 * `ctest -L thread`), which stays cheap only while it touches nothing
 * but the queue itself.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "obs/telemetry.h"
#include "service/admission.h"

namespace vbench::service {
namespace {

TEST(AdmissionQueue, FifoWithoutDeadlines)
{
    AdmissionQueue q(8);
    for (uint64_t key = 10; key < 14; ++key)
        EXPECT_TRUE(q.offer(key));
    for (uint64_t key = 10; key < 14; ++key) {
        const auto item = q.poll();
        ASSERT_TRUE(item.has_value());
        EXPECT_EQ(item->key, key);
    }
    EXPECT_FALSE(q.poll().has_value());
}

TEST(AdmissionQueue, EarliestDeadlineFirst)
{
    AdmissionQueue q(8);
    EXPECT_TRUE(q.offer(1, 5.0));
    EXPECT_TRUE(q.offer(2, 1.0));
    EXPECT_TRUE(q.offer(3, 3.0));
    EXPECT_EQ(q.poll()->key, 2u);
    EXPECT_EQ(q.poll()->key, 3u);
    EXPECT_EQ(q.poll()->key, 1u);
}

TEST(AdmissionQueue, DeadlineOutranksNoDeadline)
{
    // A Live request admitted after three batch requests still
    // dispatches first: batch classes lose only throughput to waiting,
    // Live loses its SLA.
    AdmissionQueue q(8);
    EXPECT_TRUE(q.offer(1));
    EXPECT_TRUE(q.offer(2));
    EXPECT_TRUE(q.offer(3));
    EXPECT_TRUE(q.offer(4, 99.0));
    EXPECT_EQ(q.poll()->key, 4u);
    EXPECT_EQ(q.poll()->key, 1u);
}

TEST(AdmissionQueue, EqualDeadlinesFallBackToFifo)
{
    AdmissionQueue q(8);
    EXPECT_TRUE(q.offer(7, 2.0));
    EXPECT_TRUE(q.offer(8, 2.0));
    EXPECT_EQ(q.poll()->key, 7u);
    EXPECT_EQ(q.poll()->key, 8u);
}

TEST(AdmissionQueue, FullQueueShedsInsteadOfBlocking)
{
    AdmissionQueue q(2);
    EXPECT_EQ(q.capacity(), 2u);
    EXPECT_TRUE(q.offer(1));
    EXPECT_TRUE(q.offer(2));
    EXPECT_FALSE(q.offer(3));
    EXPECT_FALSE(q.offer(4, 0.5));  // deadlines don't preempt capacity
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.offered(), 4u);
    EXPECT_EQ(q.shed(), 2u);
    // Draining frees capacity again.
    EXPECT_TRUE(q.poll().has_value());
    EXPECT_TRUE(q.offer(5));
    EXPECT_EQ(q.shed(), 2u);
}

TEST(AdmissionQueue, ZeroCapacityClampsToOne)
{
    AdmissionQueue q(0);
    EXPECT_EQ(q.capacity(), 1u);
    EXPECT_TRUE(q.offer(1));
    EXPECT_FALSE(q.offer(2));
}

TEST(AdmissionQueue, ConcurrentOffersAndPollsConserveTickets)
{
    // 4 producers x 200 offers against 2 consumers. Every ticket must
    // be admitted-and-polled exactly once or shed — nothing lost,
    // nothing duplicated.
    AdmissionQueue q(32);
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 200;
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> polled{0};
    std::atomic<bool> done{false};

    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p)
        threads.emplace_back([&q, &accepted, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                const auto key = static_cast<uint64_t>(p * kPerProducer + i);
                if (q.offer(key, i % 3 == 0 ? 1.0 * i :
                        std::numeric_limits<double>::infinity()))
                    accepted.fetch_add(1);
            }
        });
    std::vector<std::thread> consumers;
    for (int c = 0; c < 2; ++c)
        consumers.emplace_back([&q, &polled, &done] {
            while (!done.load()) {
                if (q.poll().has_value())
                    polled.fetch_add(1);
            }
        });
    for (std::thread &t : threads)
        t.join();
    // Drain whatever the consumers have not picked up yet.
    while (polled.load() < accepted.load()) {
        if (q.poll().has_value())
            polled.fetch_add(1);
    }
    done.store(true);
    for (std::thread &t : consumers)
        t.join();

    EXPECT_EQ(q.offered(),
              static_cast<uint64_t>(kProducers) * kPerProducer);
    EXPECT_EQ(q.offered(), accepted.load() + q.shed());
    EXPECT_EQ(polled.load(), accepted.load());
    EXPECT_EQ(q.size(), 0u);
}

TEST(AdmissionQueue, MetricsUnderForcedSheddingMatchGroundTruth)
{
    // Producers hammer a tiny queue while a live telemetry sampler
    // reads the queue's gauges from its own thread — the same wiring
    // the service uses (service.queue_depth / service.shed_requests).
    // After the storm settles, the sampler's final sample must agree
    // with the queue's own counters, and the counters with ground
    // truth: offered == accepted + shed, depth == accepted - polled.
    AdmissionQueue q(4);
    obs::TelemetrySampler::Config config;
    config.interval_s = 0.0005;
    obs::TelemetrySampler sampler(config);
    sampler.addGauge("queue_depth",
                     [&q] { return static_cast<double>(q.size()); });
    sampler.addGauge("shed_requests",
                     [&q] { return static_cast<double>(q.shed()); });
    sampler.start();

    constexpr int kProducers = 4;
    constexpr int kPerProducer = 100;
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> polled{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p)
        producers.emplace_back([&q, &accepted, p] {
            for (int i = 0; i < kPerProducer; ++i)
                if (q.offer(static_cast<uint64_t>(p * kPerProducer + i)))
                    accepted.fetch_add(1);
        });
    for (std::thread &t : producers)
        t.join();
    // Drain half of what was admitted so the final depth is nonzero
    // and distinct from both 0 and capacity in the common case.
    while (polled.load() < accepted.load() / 2 &&
           q.poll().has_value())
        polled.fetch_add(1);
    sampler.stop();

    const uint64_t total =
        static_cast<uint64_t>(kProducers) * kPerProducer;
    ASSERT_EQ(q.offered(), total);
    EXPECT_EQ(q.offered(), accepted.load() + q.shed());
    // Capacity 4 against 400 rapid offers: shedding must have fired.
    EXPECT_GT(q.shed(), 0u);
    EXPECT_EQ(q.size(), accepted.load() - polled.load());

    const std::vector<obs::TelemetrySeries> series = sampler.snapshot();
    ASSERT_EQ(series.size(), 2u);
    const obs::TelemetrySeries &depth = series[0];
    const obs::TelemetrySeries &shed = series[1];
    ASSERT_GE(depth.points.size(), 1u);
    // The final synchronous sample ran after the storm: it must equal
    // the queue's state exactly, not approximately.
    EXPECT_DOUBLE_EQ(depth.last(), static_cast<double>(q.size()));
    EXPECT_DOUBLE_EQ(shed.last(), static_cast<double>(q.shed()));
    // No sample can ever exceed capacity (the queue sheds instead of
    // growing) or run shed backwards (monotone counter).
    for (const obs::TelemetryPoint &p : depth.points)
        EXPECT_LE(p.value, static_cast<double>(q.capacity()));
    for (size_t i = 1; i < shed.points.size(); ++i)
        EXPECT_GE(shed.points[i].value, shed.points[i - 1].value);
}

} // namespace
} // namespace vbench::service
