/**
 * @file
 * Workload generator: corpus pre-segmentation, Poisson/Zipf sampling
 * determinism and shape, per-scenario deadline templates, and the
 * environment knobs (VBENCH_ARRIVAL_RATE / VBENCH_SEGMENT_FRAMES).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <map>
#include <vector>

#include "core/runtime_config.h"
#include "codec/decoder.h"
#include "service/workload.h"

namespace vbench::service {
namespace {

std::vector<video::ClipSpec>
testSpecs(int count)
{
    std::vector<video::ClipSpec> specs;
    for (int i = 0; i < count; ++i) {
        video::ClipSpec spec;
        spec.name = "wl" + std::to_string(i);
        spec.width = 96;
        spec.height = 64;
        spec.fps = 30.0;
        spec.content = video::ContentClass::Natural;
        spec.seed = 70 + static_cast<uint64_t>(i);
        specs.push_back(spec);
    }
    return specs;
}

TEST(Corpus, BuildsPreSegmentedClips)
{
    const Corpus corpus = buildCorpus(testSpecs(2), 10, 4);
    ASSERT_EQ(corpus.clips.size(), 2u);
    EXPECT_EQ(corpus.segment_frames, 4);
    for (const CorpusClip &clip : corpus.clips) {
        ASSERT_TRUE(clip.original);
        ASSERT_TRUE(clip.universal);
        EXPECT_EQ(clip.original->frameCount(), 10);
        // 10 frames at 4/segment: 4 + 4 + 2.
        ASSERT_EQ(clip.segmentCount(), 3);
        EXPECT_EQ(clip.seg_original[0]->frameCount(), 4);
        EXPECT_EQ(clip.seg_original[2]->frameCount(), 2);
        // Every universal segment is independently decodable and
        // matches its source segment's shape.
        for (int s = 0; s < clip.segmentCount(); ++s) {
            const auto decoded =
                codec::decode(*clip.seg_universal[static_cast<size_t>(s)]);
            ASSERT_TRUE(decoded.has_value()) << "segment " << s;
            EXPECT_EQ(decoded->frameCount(),
                      clip.seg_original[static_cast<size_t>(s)]
                          ->frameCount());
            EXPECT_EQ(decoded->width(), 96);
        }
    }
}

TEST(Workload, DeterministicInTheSeed)
{
    const Corpus corpus = buildCorpus(testSpecs(3), 8, 4);
    WorkloadConfig config;
    config.arrival_rate_hz = 20.0;
    config.duration_s = 2.0;
    config.seed = 5;
    const std::vector<ServiceRequest> a =
        generateWorkload(config, corpus);
    const std::vector<ServiceRequest> b =
        generateWorkload(config, corpus);
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_DOUBLE_EQ(a[i].arrival_s, b[i].arrival_s);
        EXPECT_EQ(a[i].scenario, b[i].scenario);
        EXPECT_EQ(a[i].clip, b[i].clip);
    }
    // A different seed reshuffles the arrivals.
    config.seed = 6;
    const std::vector<ServiceRequest> c =
        generateWorkload(config, corpus);
    bool any_diff = c.size() != a.size();
    for (size_t i = 0; !any_diff && i < a.size(); ++i)
        any_diff = a[i].arrival_s != c[i].arrival_s;
    EXPECT_TRUE(any_diff);
}

TEST(Workload, PoissonArrivalsMatchTheRate)
{
    const Corpus corpus = buildCorpus(testSpecs(1), 8, 4);
    WorkloadConfig config;
    config.arrival_rate_hz = 10.0;
    config.duration_s = 40.0;  // expect ~400 arrivals, sd ~20
    config.seed = 9;
    const std::vector<ServiceRequest> workload =
        generateWorkload(config, corpus);
    EXPECT_GT(workload.size(), 300u);
    EXPECT_LT(workload.size(), 500u);
    // Arrivals are sorted and inside the window.
    for (size_t i = 0; i < workload.size(); ++i) {
        EXPECT_LE(workload[i].arrival_s, config.duration_s);
        if (i > 0) {
            EXPECT_GE(workload[i].arrival_s, workload[i - 1].arrival_s);
        }
    }
}

TEST(Workload, ZipfPopularityFavorsTheHead)
{
    const Corpus corpus = buildCorpus(testSpecs(4), 8, 4);
    WorkloadConfig config;
    config.arrival_rate_hz = 50.0;
    config.duration_s = 20.0;
    config.zipf_exponent = 1.2;
    config.seed = 13;
    std::map<size_t, int> hits;
    for (const ServiceRequest &req :
         generateWorkload(config, corpus))
        ++hits[req.clip];
    EXPECT_GT(hits[0], hits[3] * 2) << "head clip should dominate";
}

TEST(Workload, ScenarioTemplatesSetTheRightDeadlines)
{
    const Corpus corpus = buildCorpus(testSpecs(1), 8, 4);
    const double inf = std::numeric_limits<double>::infinity();
    WorkloadConfig config;
    config.arrival_rate_hz = 30.0;
    config.duration_s = 4.0;
    config.seed = 21;
    config.live_slack = 3.0;
    config.upload_slack = 10.0;
    config.ladder_rungs = 3;
    // Force each scenario in turn via a one-hot mix.
    for (int s = 0; s < core::kNumScenarios; ++s) {
        config.mix = {};
        config.mix[static_cast<size_t>(s)] = 1;
        const std::vector<ServiceRequest> workload =
            generateWorkload(config, corpus);
        ASSERT_FALSE(workload.empty()) << "scenario " << s;
        const ServiceRequest &req = workload.front();
        const auto scenario = static_cast<core::Scenario>(s);
        EXPECT_EQ(req.scenario, scenario);
        if (scenario == core::Scenario::Live) {
            EXPECT_TRUE(req.live_paced);
            // 3x slack on a 4-frame 30fps segment.
            EXPECT_NEAR(req.segment_deadline_s, 3.0 * 4.0 / 30.0, 1e-9);
            EXPECT_EQ(req.request_deadline_s, inf);
        } else {
            EXPECT_FALSE(req.live_paced);
            EXPECT_EQ(req.segment_deadline_s, inf);
            EXPECT_LT(req.request_deadline_s, inf);
        }
        if (scenario == core::Scenario::Popular) {
            ASSERT_EQ(req.rungs.size(), 3u);
            // Descending multi-bitrate ladder.
            EXPECT_GT(req.rungs[0].request.rc.bitrate_bps,
                      req.rungs[1].request.rc.bitrate_bps);
            EXPECT_GT(req.rungs[1].request.rc.bitrate_bps,
                      req.rungs[2].request.rc.bitrate_bps);
        } else {
            EXPECT_EQ(req.rungs.size(), 1u);
        }
    }
}

TEST(WorkloadEnv, SegmentFramesParsesStrictly)
{
    unsetenv("VBENCH_SEGMENT_FRAMES");
    EXPECT_EQ(segmentFramesFromEnv(8), 8);
    setenv("VBENCH_SEGMENT_FRAMES", "12", 1);
    EXPECT_EQ(segmentFramesFromEnv(8), 12);
    // Malformed values are config errors under the strict
    // RuntimeConfig contract, not silent fallbacks.
    for (const char *bad : {"0", "-3", "12abc"}) {
        setenv("VBENCH_SEGMENT_FRAMES", bad, 1);
        std::vector<std::string> errors;
        core::RuntimeConfig::fromEnv(&errors);
        EXPECT_EQ(errors.size(), 1u) << bad;
    }
    unsetenv("VBENCH_SEGMENT_FRAMES");
}

TEST(WorkloadEnv, ArrivalRateParsesStrictly)
{
    unsetenv("VBENCH_ARRIVAL_RATE");
    EXPECT_DOUBLE_EQ(arrivalRateFromEnv(3.0), 3.0);
    setenv("VBENCH_ARRIVAL_RATE", "2.5", 1);
    EXPECT_DOUBLE_EQ(arrivalRateFromEnv(3.0), 2.5);
    for (const char *bad : {"nope", "-1", "0"}) {
        setenv("VBENCH_ARRIVAL_RATE", bad, 1);
        std::vector<std::string> errors;
        core::RuntimeConfig::fromEnv(&errors);
        EXPECT_EQ(errors.size(), 1u) << bad;
    }
    unsetenv("VBENCH_ARRIVAL_RATE");
}

} // namespace
} // namespace vbench::service
