/**
 * @file
 * SegmentJob / SegmentResult wire format: lossless round-trips for
 * every serialized field (optionals present and absent), rejection of
 * corrupted messages (bad magic, unknown version, truncation at every
 * prefix, trailing bytes, out-of-range enums), and the execution
 * contract — a worker holding only the serialized bytes produces the
 * same encoded stream as the local dispatcher with the corpus in hand.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "codec/decoder.h"
#include "core/transcoder.h"
#include "service/segment_job.h"
#include "service/workload.h"

namespace vbench::service {
namespace {

/** A fully non-default SegmentJob to make round-trip checks strict. */
SegmentJob
sampleJob()
{
    SegmentJob job;
    job.request_id = 0x0123'4567'89ab'cdefull;
    job.rung = "hi-1080";
    job.segment_index = 3;
    job.scenario = core::Scenario::Popular;
    job.input = {0x10, 0x00, 0xff, 0x7f, 0x42};
    job.params.kind = core::EncoderKind::NgcHevc;
    job.params.rc.mode = codec::RcMode::Abr;
    job.params.rc.qp = 31;
    job.params.rc.crf = 19.5;
    job.params.rc.bitrate_bps = 750'000.0;
    job.params.rc.fps = 24.0;
    job.params.rc.pixels_per_frame = 96.0 * 64.0;
    job.params.rc.min_qp = 14;
    job.params.rc.ip_qp_offset = 2;
    job.params.effort = 7;
    job.params.ngc_speed = 2;
    job.params.gop = 48;
    job.params.entropy_override = 1;
    job.params.deblock_override = 0;
    codec::ToolPreset tools;
    tools.range = 24;
    tools.subpel_iters = 3;
    tools.inter8 = true;
    tools.refs = 2;
    tools.rdo = 1;
    tools.early_skip_scale = 1.25;
    job.params.tools_override = tools;
    job.params.frame_threads = 4;
    job.params.slice_count = 2;
    job.params.segment_frames = 8;
    job.params.rc_in = codec::RcSnapshot{12345.0, 11000.0, 16};
    job.params.span.trace_id = 0xaaaa'bbbb'cccc'ddddull;
    job.params.span.span_id = 77;
    job.params.span.parent_id = 76;
    return job;
}

void
expectJobsEqual(const SegmentJob &a, const SegmentJob &b)
{
    EXPECT_EQ(b.request_id, a.request_id);
    EXPECT_EQ(b.rung, a.rung);
    EXPECT_EQ(b.segment_index, a.segment_index);
    EXPECT_EQ(b.scenario, a.scenario);
    EXPECT_EQ(b.input, a.input);
    EXPECT_EQ(b.params.kind, a.params.kind);
    EXPECT_EQ(b.params.rc.mode, a.params.rc.mode);
    EXPECT_EQ(b.params.rc.qp, a.params.rc.qp);
    EXPECT_DOUBLE_EQ(b.params.rc.crf, a.params.rc.crf);
    EXPECT_DOUBLE_EQ(b.params.rc.bitrate_bps, a.params.rc.bitrate_bps);
    EXPECT_DOUBLE_EQ(b.params.rc.fps, a.params.rc.fps);
    EXPECT_DOUBLE_EQ(b.params.rc.pixels_per_frame,
                     a.params.rc.pixels_per_frame);
    EXPECT_EQ(b.params.rc.min_qp, a.params.rc.min_qp);
    EXPECT_EQ(b.params.rc.ip_qp_offset, a.params.rc.ip_qp_offset);
    EXPECT_EQ(b.params.effort, a.params.effort);
    EXPECT_EQ(b.params.ngc_speed, a.params.ngc_speed);
    EXPECT_EQ(b.params.gop, a.params.gop);
    EXPECT_EQ(b.params.entropy_override, a.params.entropy_override);
    EXPECT_EQ(b.params.deblock_override, a.params.deblock_override);
    ASSERT_EQ(b.params.tools_override.has_value(),
              a.params.tools_override.has_value());
    if (a.params.tools_override) {
        const codec::ToolPreset &ta = *a.params.tools_override;
        const codec::ToolPreset &tb = *b.params.tools_override;
        EXPECT_EQ(tb.search, ta.search);
        EXPECT_EQ(tb.range, ta.range);
        EXPECT_EQ(tb.subpel, ta.subpel);
        EXPECT_EQ(tb.subpel_iters, ta.subpel_iters);
        EXPECT_EQ(tb.inter8, ta.inter8);
        EXPECT_EQ(tb.refs, ta.refs);
        EXPECT_EQ(tb.rdo, ta.rdo);
        EXPECT_EQ(tb.adaptive_quant, ta.adaptive_quant);
        EXPECT_EQ(tb.entropy, ta.entropy);
        EXPECT_EQ(tb.deblock, ta.deblock);
        EXPECT_EQ(tb.intra_modes, ta.intra_modes);
        EXPECT_DOUBLE_EQ(tb.early_skip_scale, ta.early_skip_scale);
        EXPECT_EQ(tb.scenecut, ta.scenecut);
        EXPECT_EQ(tb.satd_subpel, ta.satd_subpel);
    }
    EXPECT_EQ(b.params.frame_threads, a.params.frame_threads);
    EXPECT_EQ(b.params.slice_count, a.params.slice_count);
    EXPECT_EQ(b.params.segment_frames, a.params.segment_frames);
    ASSERT_EQ(b.params.rc_in.has_value(), a.params.rc_in.has_value());
    if (a.params.rc_in) {
        EXPECT_DOUBLE_EQ(b.params.rc_in->spent_bits,
                         a.params.rc_in->spent_bits);
        EXPECT_DOUBLE_EQ(b.params.rc_in->planned_bits,
                         a.params.rc_in->planned_bits);
        EXPECT_EQ(b.params.rc_in->frames_done,
                  a.params.rc_in->frames_done);
    }
    EXPECT_EQ(b.params.span.trace_id, a.params.span.trace_id);
    EXPECT_EQ(b.params.span.span_id, a.params.span.span_id);
    EXPECT_EQ(b.params.span.parent_id, a.params.span.parent_id);
}

TEST(SegmentJobWire, RoundTripsEveryField)
{
    const SegmentJob job = sampleJob();
    std::string error;
    const auto back = SegmentJob::deserialize(job.serialize(), &error);
    ASSERT_TRUE(back.has_value()) << error;
    expectJobsEqual(job, *back);
}

TEST(SegmentJobWire, RoundTripsWithOptionalsAbsent)
{
    SegmentJob job = sampleJob();
    job.params.tools_override.reset();
    job.params.rc_in.reset();
    std::string error;
    const auto back = SegmentJob::deserialize(job.serialize(), &error);
    ASSERT_TRUE(back.has_value()) << error;
    expectJobsEqual(job, *back);
}

TEST(SegmentJobWire, RoundTripsADefaultConstructedJob)
{
    const SegmentJob job;  // empty rung, empty input, default params
    std::string error;
    const auto back = SegmentJob::deserialize(job.serialize(), &error);
    ASSERT_TRUE(back.has_value()) << error;
    expectJobsEqual(job, *back);
}

TEST(SegmentJobWire, LabelNamesRequestRungAndSegment)
{
    SegmentJob job;
    job.request_id = 12;
    job.rung = "lo";
    job.segment_index = 2;
    EXPECT_EQ(job.label(), "svc.12.lo.s2");
}

TEST(SegmentJobWire, RejectsBadMagic)
{
    codec::ByteBuffer bytes = sampleJob().serialize();
    bytes[0] ^= 0x01;
    std::string error;
    EXPECT_FALSE(SegmentJob::deserialize(bytes, &error).has_value());
    EXPECT_NE(error.find("bad magic"), std::string::npos) << error;
}

TEST(SegmentJobWire, RejectsUnknownVersion)
{
    codec::ByteBuffer bytes = sampleJob().serialize();
    bytes[4] = 0x7f;  // version is the u16 right after the magic
    std::string error;
    EXPECT_FALSE(SegmentJob::deserialize(bytes, &error).has_value());
    EXPECT_NE(error.find("unsupported wire version"), std::string::npos)
        << error;
}

TEST(SegmentJobWire, RejectsTruncationAtEveryPrefix)
{
    const codec::ByteBuffer bytes = sampleJob().serialize();
    for (size_t n = 0; n < bytes.size(); ++n) {
        const codec::ByteBuffer prefix(bytes.begin(),
                                       bytes.begin() +
                                           static_cast<long>(n));
        std::string error;
        EXPECT_FALSE(SegmentJob::deserialize(prefix, &error).has_value())
            << "prefix length " << n;
        EXPECT_FALSE(error.empty()) << "prefix length " << n;
    }
}

TEST(SegmentJobWire, RejectsTrailingBytes)
{
    codec::ByteBuffer bytes = sampleJob().serialize();
    bytes.push_back(0x00);
    std::string error;
    EXPECT_FALSE(SegmentJob::deserialize(bytes, &error).has_value());
    EXPECT_NE(error.find("trailing bytes"), std::string::npos) << error;
}

TEST(SegmentJobWire, RejectsOutOfRangeEnums)
{
    // serialize() writes whatever the struct holds; deserialize() is
    // the trust boundary and must refuse values outside the enums.
    SegmentJob bad_scenario = sampleJob();
    bad_scenario.scenario = static_cast<core::Scenario>(99);
    std::string error;
    EXPECT_FALSE(SegmentJob::deserialize(bad_scenario.serialize(),
                                         &error)
                     .has_value());
    EXPECT_NE(error.find("unknown scenario"), std::string::npos)
        << error;

    SegmentJob bad_kind = sampleJob();
    bad_kind.params.kind = static_cast<core::EncoderKind>(200);
    EXPECT_FALSE(
        SegmentJob::deserialize(bad_kind.serialize(), &error)
            .has_value());
    EXPECT_NE(error.find("unknown encoder kind"), std::string::npos)
        << error;

    SegmentJob bad_mode = sampleJob();
    bad_mode.params.rc.mode = static_cast<codec::RcMode>(250);
    EXPECT_FALSE(
        SegmentJob::deserialize(bad_mode.serialize(), &error)
            .has_value());
    EXPECT_NE(error.find("unknown rc mode"), std::string::npos) << error;
}

TEST(SegmentResultWire, RoundTripsEveryField)
{
    SegmentResult res;
    res.request_id = 41;
    res.rung = "mid";
    res.segment_index = 1;
    res.ok = true;
    res.error = "";
    res.stream = {0xde, 0xad, 0xbe, 0xef};
    res.rc_state = {4096.0, 4000.0, 8};
    res.critical_path.queue_wait_ms = 1.5;
    res.critical_path.rc_chain_ms = 0.25;
    res.critical_path.encode_ms = 12.0;
    res.critical_path.stitch_ms = 0.5;
    res.m.speed_mpix_s = 3.25;
    res.m.bitrate_bpps = 0.08;
    res.m.psnr_db = 38.5;
    res.seconds = 0.012;
    res.frame_threads = 2;
    res.slice_count = 4;

    std::string error;
    const auto back = SegmentResult::deserialize(res.serialize(), &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->request_id, res.request_id);
    EXPECT_EQ(back->rung, res.rung);
    EXPECT_EQ(back->segment_index, res.segment_index);
    EXPECT_EQ(back->ok, res.ok);
    EXPECT_EQ(back->error, res.error);
    EXPECT_EQ(back->stream, res.stream);
    EXPECT_DOUBLE_EQ(back->rc_state.spent_bits, res.rc_state.spent_bits);
    EXPECT_DOUBLE_EQ(back->rc_state.planned_bits,
                     res.rc_state.planned_bits);
    EXPECT_EQ(back->rc_state.frames_done, res.rc_state.frames_done);
    EXPECT_DOUBLE_EQ(back->critical_path.queue_wait_ms,
                     res.critical_path.queue_wait_ms);
    EXPECT_DOUBLE_EQ(back->critical_path.rc_chain_ms,
                     res.critical_path.rc_chain_ms);
    EXPECT_DOUBLE_EQ(back->critical_path.encode_ms,
                     res.critical_path.encode_ms);
    EXPECT_DOUBLE_EQ(back->critical_path.stitch_ms,
                     res.critical_path.stitch_ms);
    EXPECT_DOUBLE_EQ(back->m.speed_mpix_s, res.m.speed_mpix_s);
    EXPECT_DOUBLE_EQ(back->m.bitrate_bpps, res.m.bitrate_bpps);
    EXPECT_DOUBLE_EQ(back->m.psnr_db, res.m.psnr_db);
    EXPECT_DOUBLE_EQ(back->seconds, res.seconds);
    EXPECT_EQ(back->frame_threads, res.frame_threads);
    EXPECT_EQ(back->slice_count, res.slice_count);
}

TEST(SegmentResultWire, RoundTripsAFailedResult)
{
    SegmentResult res;
    res.request_id = 9;
    res.rung = "hi";
    res.ok = false;
    res.error = "cancelled";
    std::string error;
    const auto back = SegmentResult::deserialize(res.serialize(), &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_FALSE(back->ok);
    EXPECT_EQ(back->error, "cancelled");
    EXPECT_TRUE(back->stream.empty());
}

TEST(SegmentResultWire, RejectsAJobMessage)
{
    // The two message types are distinguishable by magic alone.
    std::string error;
    EXPECT_FALSE(SegmentResult::deserialize(sampleJob().serialize(),
                                            &error)
                     .has_value());
    EXPECT_NE(error.find("bad magic"), std::string::npos) << error;

    SegmentResult res;
    EXPECT_FALSE(
        SegmentJob::deserialize(res.serialize(), &error).has_value());
}

TEST(SegmentResultWire, RejectsTruncationAtEveryPrefix)
{
    SegmentResult res;
    res.rung = "r";
    res.stream = {1, 2, 3};
    const codec::ByteBuffer bytes = res.serialize();
    for (size_t n = 0; n < bytes.size(); ++n) {
        const codec::ByteBuffer prefix(bytes.begin(),
                                       bytes.begin() +
                                           static_cast<long>(n));
        std::string error;
        EXPECT_FALSE(
            SegmentResult::deserialize(prefix, &error).has_value())
            << "prefix length " << n;
    }
}

// ---- Execution: the wire message is a complete job description. ----

/** One small pre-segmented clip shared by the execution tests. */
const CorpusClip &
testClip()
{
    static const Corpus corpus = [] {
        video::ClipSpec spec;
        spec.name = "sj";
        spec.width = 96;
        spec.height = 64;
        spec.fps = 30.0;
        spec.content = video::ContentClass::Natural;
        spec.seed = 91;
        return buildCorpus({spec}, 8, 4);
    }();
    return corpus.clips.front();
}

SegmentJob
encodeJob(const CorpusClip &clip, int segment)
{
    SegmentJob job;
    job.request_id = 1;
    job.rung = "only";
    job.segment_index = segment;
    job.scenario = core::Scenario::Upload;
    job.input = *clip.seg_universal[static_cast<size_t>(segment)];
    job.params.kind = core::EncoderKind::Vbc;
    job.params.effort = 3;
    job.params.rc.mode = codec::RcMode::Crf;
    job.params.rc.crf = 30.0;
    job.params.rc.fps = 30.0;
    job.params.rc.pixels_per_frame = 96.0 * 64.0;
    return job;
}

TEST(SegmentJobExecute, MatchesADirectTranscode)
{
    const CorpusClip &clip = testClip();
    const SegmentJob job = encodeJob(clip, 0);

    const core::TranscodeOutcome direct = core::transcode(
        job.input, *clip.seg_original[0], job.params);
    ASSERT_TRUE(direct.ok) << direct.error;

    const SegmentResult res =
        executeSegmentJob(job, clip.seg_original[0].get());
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.stream, direct.stream);
    EXPECT_EQ(res.request_id, job.request_id);
    EXPECT_EQ(res.rung, job.rung);
    EXPECT_EQ(res.segment_index, job.segment_index);
    EXPECT_DOUBLE_EQ(res.m.psnr_db, direct.m.psnr_db);
}

TEST(SegmentJobExecute, WireCopyWithoutReferenceEncodesTheSameBytes)
{
    // The remote-worker path: serialize, deserialize, execute with no
    // host-side reference. The stream must be byte-identical — only
    // the PSNR baseline (decoded input vs pristine frames) may differ.
    const CorpusClip &clip = testClip();
    const SegmentJob job = encodeJob(clip, 1);

    const SegmentResult local =
        executeSegmentJob(job, clip.seg_original[1].get());
    ASSERT_TRUE(local.ok) << local.error;

    std::string error;
    const auto wire = SegmentJob::deserialize(job.serialize(), &error);
    ASSERT_TRUE(wire.has_value()) << error;
    const SegmentResult remote = executeSegmentJob(*wire, nullptr);
    ASSERT_TRUE(remote.ok) << remote.error;

    EXPECT_EQ(remote.stream, local.stream);
    EXPECT_EQ(remote.rc_state.frames_done, local.rc_state.frames_done);
    EXPECT_DOUBLE_EQ(remote.rc_state.spent_bits,
                     local.rc_state.spent_bits);
}

TEST(SegmentJobExecute, UndecodableInputFailsCleanly)
{
    SegmentJob job;
    job.input = {0x00, 0x01, 0x02};
    const SegmentResult res = executeSegmentJob(job, nullptr);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.error, "undecodable segment input");
}

TEST(SegmentJobExecute, ToTranscodeJobCarriesLabelInputAndParams)
{
    const CorpusClip &clip = testClip();
    SegmentJob job = encodeJob(clip, 0);
    const codec::ByteBuffer input = job.input;
    const sched::TranscodeJob tj =
        toTranscodeJob(std::move(job), clip.seg_original[0]);
    EXPECT_EQ(tj.label, "svc.1.only.s0");
    ASSERT_TRUE(tj.input);
    EXPECT_EQ(*tj.input, input);
    EXPECT_EQ(tj.original.get(), clip.seg_original[0].get());
    EXPECT_EQ(tj.request.kind, core::EncoderKind::Vbc);
    EXPECT_EQ(tj.request.rc.mode, codec::RcMode::Crf);
}

} // namespace
} // namespace vbench::service
