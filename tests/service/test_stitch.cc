/**
 * @file
 * Split-and-stitch bit-exactness: the service's proof obligation. For
 * both software codecs, across efforts/speeds, all four rate-control
 * modes, and non-MB-aligned geometry, a chain of independently encoded
 * segments must stitch into a stream byte-identical to the whole-file
 * closed-GOP encode — and decode to byte-identical frames.
 */

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "codec/stitch.h"
#include "ngc/ngc_bitstream.h"
#include "ngc/ngc_decoder.h"
#include "ngc/ngc_encoder.h"
#include "service/segment.h"
#include "video/suite.h"

namespace vbench::service {
namespace {

video::Video
testClip(int width, int height, int frames, uint64_t seed = 17,
         video::ContentClass content = video::ContentClass::Natural)
{
    video::ClipSpec spec;
    spec.name = "stitch";
    spec.width = width;
    spec.height = height;
    spec.fps = 30.0;
    spec.content = content;
    spec.seed = seed;
    return video::synthesizeClip(spec, frames);
}

codec::RateControlConfig
rcFor(codec::RcMode mode, const video::Video &clip)
{
    codec::RateControlConfig rc;
    rc.mode = mode;
    rc.qp = 28;
    rc.crf = 24.0;
    rc.bitrate_bps =
        static_cast<double>(clip.pixelsPerFrame()) * clip.fps() * 0.08;
    rc.fps = clip.fps();
    rc.pixels_per_frame = static_cast<double>(clip.pixelsPerFrame());
    return rc;
}

void
expectSameFrames(const video::Video &a, const video::Video &b)
{
    ASSERT_EQ(a.frameCount(), b.frameCount());
    for (int i = 0; i < a.frameCount(); ++i)
        EXPECT_TRUE(a.frame(i) == b.frame(i)) << "frame " << i;
}

/** Segment chain vs whole-file closed-GOP encode, VBC. */
void
checkVbc(const video::Video &clip, codec::RcMode mode, int effort,
         int segment_frames)
{
    codec::EncoderConfig cfg;
    cfg.rc = rcFor(mode, clip);
    cfg.effort = effort;
    cfg.gop = 30;
    cfg.segment_frames = segment_frames;

    codec::Encoder whole_encoder(cfg);
    const codec::EncodeResult whole = whole_encoder.encode(clip);
    ASSERT_FALSE(whole.stream.empty());

    const SegmentedEncodeResult seg =
        encodeSegmentedVbc(cfg, clip, segment_frames);
    ASSERT_TRUE(seg.ok) << seg.error;
    EXPECT_GT(seg.segments.size(), 1u);
    ASSERT_EQ(seg.stitched, whole.stream)
        << "mode=" << static_cast<int>(mode) << " effort=" << effort;

    const std::optional<video::Video> whole_dec = codec::decode(whole.stream);
    const std::optional<video::Video> stitched_dec =
        codec::decode(seg.stitched);
    ASSERT_TRUE(whole_dec.has_value());
    ASSERT_TRUE(stitched_dec.has_value());
    expectSameFrames(*whole_dec, *stitched_dec);
}

/** Segment chain vs whole-file closed-GOP encode, NGC. */
void
checkNgc(const video::Video &clip, codec::RcMode mode, int speed,
         ngc::NgcProfile profile, int segment_frames)
{
    ngc::NgcConfig cfg;
    cfg.rc = rcFor(mode, clip);
    cfg.profile = profile;
    cfg.speed = speed;
    cfg.gop = 30;
    cfg.segment_frames = segment_frames;

    ngc::NgcEncoder whole_encoder(cfg);
    const codec::EncodeResult whole = whole_encoder.encode(clip);
    ASSERT_FALSE(whole.stream.empty());

    const SegmentedEncodeResult seg =
        encodeSegmentedNgc(cfg, clip, segment_frames);
    ASSERT_TRUE(seg.ok) << seg.error;
    EXPECT_GT(seg.segments.size(), 1u);
    ASSERT_EQ(seg.stitched, whole.stream)
        << "mode=" << static_cast<int>(mode) << " speed=" << speed;

    const std::optional<video::Video> whole_dec = ngc::ngcDecode(whole.stream);
    const std::optional<video::Video> stitched_dec =
        ngc::ngcDecode(seg.stitched);
    ASSERT_TRUE(whole_dec.has_value());
    ASSERT_TRUE(stitched_dec.has_value());
    expectSameFrames(*whole_dec, *stitched_dec);
}

TEST(StitchVbc, AllRateControlModesAreBitExact)
{
    const video::Video clip = testClip(96, 64, 10);
    for (const codec::RcMode mode :
         {codec::RcMode::Cqp, codec::RcMode::Crf, codec::RcMode::Abr,
          codec::RcMode::TwoPass})
        checkVbc(clip, mode, /*effort=*/4, /*segment_frames=*/4);
}

TEST(StitchVbc, EffortSweepStaysBitExact)
{
    const video::Video clip = testClip(96, 64, 8, 23);
    for (const int effort : {1, 5, 8})
        checkVbc(clip, codec::RcMode::Abr, effort, /*segment_frames=*/3);
}

TEST(StitchVbc, UnalignedDimensionsAreBitExact)
{
    // Not multiples of the 16-pixel macroblock: padding paths included.
    const video::Video clip = testClip(100, 52, 9, 31);
    checkVbc(clip, codec::RcMode::Crf, 3, /*segment_frames=*/4);
    checkVbc(clip, codec::RcMode::TwoPass, 3, /*segment_frames=*/4);
}

TEST(StitchVbc, SceneCutContentStaysBitExact)
{
    // Hard cuts exercise the scene-cut I-frame promotion, which must
    // fire identically in segment-local and whole-file views.
    const video::Video clip =
        testClip(96, 64, 10, 37, video::ContentClass::Slideshow);
    checkVbc(clip, codec::RcMode::Abr, 4, /*segment_frames=*/4);
}

TEST(StitchNgc, AllRateControlModesAreBitExact)
{
    const video::Video clip = testClip(96, 64, 10, 41);
    for (const codec::RcMode mode :
         {codec::RcMode::Cqp, codec::RcMode::Crf, codec::RcMode::Abr,
          codec::RcMode::TwoPass})
        checkNgc(clip, mode, /*speed=*/2, ngc::NgcProfile::HevcLike,
                 /*segment_frames=*/4);
}

TEST(StitchNgc, Vp9ProfileAndUnalignedDimensionsAreBitExact)
{
    const video::Video clip = testClip(100, 52, 8, 43);
    checkNgc(clip, codec::RcMode::Abr, 2, ngc::NgcProfile::Vp9Like,
             /*segment_frames=*/3);
}

TEST(StitchStreams, SplitThenStitchRoundTripsByteExactly)
{
    const video::Video clip = testClip(96, 64, 9, 47);
    codec::EncoderConfig cfg;
    cfg.rc = rcFor(codec::RcMode::Crf, clip);
    cfg.effort = 3;
    cfg.segment_frames = 3;
    codec::Encoder encoder(cfg);
    const codec::EncodeResult whole = encoder.encode(clip);

    const std::optional<std::vector<codec::ByteBuffer>> parts =
        codec::splitStream(whole.stream, 3);
    ASSERT_TRUE(parts.has_value());
    EXPECT_EQ(parts->size(), 3u);
    // Every cut is independently decodable...
    for (const codec::ByteBuffer &part : *parts)
        EXPECT_TRUE(codec::decode(part).has_value());
    // ...and the cuts reassemble into the original bytes.
    const std::optional<codec::ByteBuffer> rejoined =
        codec::stitchStreams(*parts);
    ASSERT_TRUE(rejoined.has_value());
    EXPECT_EQ(*rejoined, whole.stream);
}

TEST(StitchStreams, RejectsMismatchedToolsAndNonIdrLeads)
{
    const video::Video clip = testClip(96, 64, 6, 53);
    codec::EncoderConfig cfg;
    cfg.rc = rcFor(codec::RcMode::Cqp, clip);
    cfg.effort = 3;
    cfg.segment_frames = 3;
    codec::Encoder enc_a(cfg);
    const codec::EncodeResult a = enc_a.encode(clip);

    // Different geometry cannot stitch.
    const video::Video other = testClip(64, 48, 6, 54);
    codec::EncoderConfig cfg_b = cfg;
    cfg_b.rc.pixels_per_frame =
        static_cast<double>(other.pixelsPerFrame());
    codec::Encoder enc_b(cfg_b);
    const codec::EncodeResult b = enc_b.encode(other);
    EXPECT_FALSE(
        codec::stitchStreams({a.stream, b.stream}).has_value());

    // A mid-GOP cut (no IDR at the segment head) is refused: predicted
    // frames cannot open a stitched segment.
    EXPECT_FALSE(codec::splitStream(a.stream, 2).has_value());

    // Empty input is refused.
    EXPECT_FALSE(codec::stitchStreams({}).has_value());
}

TEST(SplitVideo, CutsFramesWithTailSegment)
{
    const video::Video clip = testClip(96, 64, 10, 59);
    const std::vector<video::Video> parts = splitVideo(clip, 4);
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0].frameCount(), 4);
    EXPECT_EQ(parts[1].frameCount(), 4);
    EXPECT_EQ(parts[2].frameCount(), 2);
    int k = 0;
    for (const video::Video &part : parts) {
        EXPECT_EQ(part.width(), clip.width());
        EXPECT_EQ(part.height(), clip.height());
        for (int i = 0; i < part.frameCount(); ++i, ++k)
            EXPECT_TRUE(part.frame(i) == clip.frame(k)) << "frame " << k;
    }
}

} // namespace
} // namespace vbench::service
