/**
 * @file
 * Service end-to-end: the SLA scorer's arithmetic, a full
 * generate → admit → dispatch → stitch → score run over the scheduler
 * pool, metrics export, and deterministic load shedding when a burst
 * overwhelms a capacity-1 admission queue.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/service.h"
#include "service/sla.h"
#include "service/workload.h"

namespace vbench::service {
namespace {

Corpus
testCorpus(int clips = 2, int frames = 8, int segment_frames = 4)
{
    std::vector<video::ClipSpec> specs;
    for (int i = 0; i < clips; ++i) {
        video::ClipSpec spec;
        spec.name = "svc" + std::to_string(i);
        spec.width = 96;
        spec.height = 64;
        spec.fps = 30.0;
        spec.content = video::ContentClass::Natural;
        spec.seed = 80 + static_cast<uint64_t>(i);
        specs.push_back(spec);
    }
    return buildCorpus(specs, frames, segment_frames);
}

std::vector<ServiceRequest>
liveUploadWorkload(const Corpus &corpus, double rate, double duration)
{
    WorkloadConfig config;
    config.arrival_rate_hz = rate;
    config.duration_s = duration;
    config.seed = 31;
    config.mix = {};
    config.mix[static_cast<size_t>(core::Scenario::Upload)] = 1;
    config.mix[static_cast<size_t>(core::Scenario::Live)] = 1;
    config.live_slack = 60.0;     // generous: this test is not a race
    config.upload_slack = 200.0;
    std::vector<ServiceRequest> workload =
        generateWorkload(config, corpus);
    for (uint64_t seed = 32; workload.empty() && seed < 40; ++seed) {
        config.seed = seed;
        workload = generateWorkload(config, corpus);
    }
    return workload;
}

TEST(SlaScorer, ComputesHitAndDropRates)
{
    SlaScorer scorer;
    scorer.recordArrival(core::Scenario::Live);
    scorer.recordArrival(core::Scenario::Live);
    scorer.recordArrival(core::Scenario::Live);
    scorer.recordDrop(core::Scenario::Live);
    scorer.recordSegment(core::Scenario::Live, 0.010, true, 1000, true);
    scorer.recordSegment(core::Scenario::Live, 0.020, true, 1000, true);
    scorer.recordSegment(core::Scenario::Live, 0.500, false, 1000, true);
    scorer.recordSegment(core::Scenario::Live, 0.030, true, 1000, false);

    const SlaReport report = scorer.report(2.0);
    ASSERT_EQ(report.scenarios.size(), 1u);
    const ScenarioScore &s = report.scenarios.front();
    EXPECT_EQ(s.scenario, core::Scenario::Live);
    EXPECT_EQ(s.requests, 3u);
    EXPECT_EQ(s.dropped, 1u);
    EXPECT_EQ(s.segments, 4u);
    EXPECT_EQ(s.failed, 1u);
    // 2 hits of 4 segments: the failed segment cannot count as a hit
    // even though it finished "on time".
    EXPECT_DOUBLE_EQ(s.hit_rate, 0.5);
    EXPECT_NEAR(s.drop_rate, 1.0 / 3.0, 1e-12);
    // 2 on-time OK segments x 1000 pixels over 2 wall seconds.
    EXPECT_NEAR(s.goodput_mpix_s, 2.0 * 1000 / 2.0 / 1e6, 1e-12);
    EXPECT_GT(s.p50_ms, 0.0);
    EXPECT_LE(s.p50_ms, s.p95_ms);
    EXPECT_LE(s.p95_ms, s.p99_ms);
    EXPECT_DOUBLE_EQ(report.overall_hit_rate, 0.5);
}

TEST(SlaScorer, EmptyScorerReportsNothing)
{
    const SlaScorer scorer;
    const SlaReport report = scorer.report(1.0);
    EXPECT_TRUE(report.scenarios.empty());
    EXPECT_EQ(report.total_requests, 0u);
    EXPECT_DOUBLE_EQ(report.overall_hit_rate, 1.0);
}

TEST(SlaScorer, ExportsNamedMetrics)
{
    SlaScorer scorer;
    scorer.recordArrival(core::Scenario::Vod);
    scorer.recordSegment(core::Scenario::Vod, 0.040, true, 5000, true);
    obs::MetricsRegistry metrics;
    scorer.exportMetrics(metrics);
    EXPECT_EQ(metrics.counter("service.requests.vod").value(), 1u);
    EXPECT_EQ(metrics.counter("service.segments.vod").value(), 1u);
    EXPECT_EQ(metrics.counter("service.deadline_hits.vod").value(), 1u);
    EXPECT_EQ(metrics.histogram("service.segment_latency_us.vod").count(),
              1u);
}

TEST(Service, RunsAWorkloadToCompletion)
{
    const Corpus corpus = testCorpus();
    const std::vector<ServiceRequest> workload =
        liveUploadWorkload(corpus, 6.0, 1.0);
    ASSERT_FALSE(workload.empty());

    obs::MetricsRegistry metrics;
    ServiceConfig config;
    config.workers = 2;
    config.admission_capacity = 64;
    config.metrics = &metrics;
    TranscodeService service(config, corpus);
    const ServiceResult result = service.run(workload);

    EXPECT_EQ(result.completed + result.dropped, workload.size());
    // Capacity 64 over a handful of requests: nothing can shed.
    EXPECT_EQ(result.dropped, 0u);
    EXPECT_EQ(result.admitted, workload.size());
    EXPECT_EQ(result.failed_requests, 0u);
    EXPECT_EQ(result.stitch_failures, 0u);
    // One rung per request, 2 segments per 8-frame clip at 4/segment.
    EXPECT_EQ(result.stitched_rungs, result.completed);
    EXPECT_EQ(result.sla.total_segments, 2 * result.completed);
    EXPECT_GT(result.wall_seconds, 0.0);
    EXPECT_GE(result.sla.overall_hit_rate, 0.0);
    EXPECT_LE(result.sla.overall_hit_rate, 1.0);
    // The scorer's export and the scheduler's shard merge both landed.
    EXPECT_GT(metrics.size(), 0u);
    EXPECT_EQ(metrics.counter("service.requests.upload").value() +
                  metrics.counter("service.requests.live").value(),
              workload.size());
}

TEST(Service, BurstAgainstTinyAdmissionQueueSheds)
{
    const Corpus corpus = testCorpus(1);
    std::vector<ServiceRequest> workload =
        liveUploadWorkload(corpus, 12.0, 1.0);
    ASSERT_GE(workload.size(), 4u);
    // Turn the trickle into a burst: everything lands at t=0, against
    // a queue that can hold exactly one waiting request.
    for (ServiceRequest &req : workload)
        req.arrival_s = 0.0;

    ServiceConfig config;
    config.workers = 1;
    config.admission_capacity = 1;
    config.max_active_requests = 1;
    TranscodeService service(config, corpus);
    const ServiceResult result = service.run(workload);

    EXPECT_EQ(result.completed + result.dropped, workload.size());
    EXPECT_GT(result.dropped, 0u);
    EXPECT_GT(result.completed, 0u);
    EXPECT_EQ(result.sla.total_dropped, result.dropped);
    // Drop rate shows up in the per-scenario scores.
    double weighted_drops = 0;
    for (const ScenarioScore &s : result.sla.scenarios)
        weighted_drops += s.drop_rate * static_cast<double>(s.requests);
    EXPECT_NEAR(weighted_drops, static_cast<double>(result.dropped),
                1e-9);
}

TEST(Service, EmitsConnectedTracesTelemetryAndExemplars)
{
    const Corpus corpus = testCorpus();
    const std::vector<ServiceRequest> workload =
        liveUploadWorkload(corpus, 6.0, 1.0);
    ASSERT_FALSE(workload.empty());

    obs::Tracer tracer;
    obs::MetricsRegistry metrics;
    ServiceConfig config;
    config.workers = 2;
    config.admission_capacity = 64;
    config.metrics = &metrics;
    config.tracer = &tracer;
    config.telemetry_interval_s = 0.002;
    TranscodeService service(config, corpus);
    const ServiceResult result = service.run(workload);
    ASSERT_EQ(result.completed, workload.size());

    // Telemetry: every service gauge produced at least one point (the
    // final stop() sample guarantees it even for sub-interval runs).
    ASSERT_EQ(result.telemetry.size(), 5u);
    for (const obs::TelemetrySeries &s : result.telemetry)
        EXPECT_GE(s.points.size(), 1u) << s.name;

    // Trace forest: every completed request contributed one connected
    // tree — exactly one root scope per trace id, and every non-root
    // scope's parent span exists within the same trace.
    const std::vector<obs::ScopeEvent> scopes = tracer.scopeEvents();
    ASSERT_FALSE(scopes.empty());
    std::map<uint64_t, std::set<uint64_t>> spans_by_trace;
    std::map<uint64_t, size_t> roots_by_trace;
    for (const obs::ScopeEvent &s : scopes) {
        EXPECT_TRUE(s.span.valid());
        spans_by_trace[s.span.trace_id].insert(s.span.span_id);
        if (s.span.parent_id == 0)
            ++roots_by_trace[s.span.trace_id];
    }
    EXPECT_EQ(spans_by_trace.size(), result.completed);
    for (const auto &[trace, roots] : roots_by_trace)
        EXPECT_EQ(roots, 1u) << "trace " << trace;
    for (const obs::ScopeEvent &s : scopes) {
        if (s.span.parent_id != 0) {
            EXPECT_TRUE(spans_by_trace[s.span.trace_id].count(
                s.span.parent_id))
                << s.name << " orphaned in trace " << s.span.trace_id;
        }
    }

    // Flow arrows pair up: one begin (request row) and one end
    // (worker row) per dispatched segment span.
    std::map<uint64_t, int> begins, ends;
    for (const obs::FlowEvent &f : tracer.flowEvents())
        ++(f.begin ? begins : ends)[f.flow_id];
    EXPECT_EQ(begins.size(), ends.size());
    for (const auto &[id, n] : begins) {
        EXPECT_EQ(n, 1) << "flow " << id;
        EXPECT_EQ(ends[id], 1) << "flow " << id;
    }

    // Exemplars: the slowest decile is retained, resolvable into the
    // trace, and its critical path explains the measured latency.
    size_t exemplars = 0;
    for (const ScenarioScore &score : result.sla.scenarios) {
        for (const obs::Exemplar &e : score.exemplars) {
            ++exemplars;
            EXPECT_GE(e.latency_ms, score.exemplar_cut_ms);
            EXPECT_FALSE(e.label.empty());
            EXPECT_TRUE(spans_by_trace.count(e.trace_id))
                << e.label << " trace " << e.trace_id;
            const double sum = e.path.queue_wait_ms +
                e.path.rc_chain_ms + e.path.encode_ms;
            EXPECT_NEAR(sum, e.latency_ms,
                        std::max(0.5, 0.05 * e.latency_ms))
                << e.label;
        }
    }
    EXPECT_GT(exemplars, 0u);

    // The critical-path aggregates landed in the exported metrics.
    uint64_t cp_observations = 0;
    for (const char *scenario : {"live", "upload"})
        cp_observations += metrics
                               .histogram(std::string(
                                              "service.queue_wait_us.") +
                                          scenario)
                               .count();
    EXPECT_EQ(cp_observations, result.sla.total_segments);
}

} // namespace
} // namespace vbench::service
