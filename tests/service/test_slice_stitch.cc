/**
 * @file
 * Slices x split-and-stitch composition: entropy slices change the
 * bytes inside a frame record but not the container framing, so a
 * chain of independently encoded multi-slice segments must still
 * stitch into a stream byte-identical to the whole-file closed-GOP
 * encode — for every slice count, every rate-control mode, unaligned
 * heights, and both codecs. The two knobs were built independently;
 * this suite is the proof they compose.
 */

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "codec/stitch.h"
#include "ngc/ngc_bitstream.h"
#include "ngc/ngc_decoder.h"
#include "ngc/ngc_encoder.h"
#include "service/segment.h"
#include "video/suite.h"

namespace vbench::service {
namespace {

video::Video
testClip(int width, int height, int frames, uint64_t seed = 61,
         video::ContentClass content = video::ContentClass::Natural)
{
    video::ClipSpec spec;
    spec.name = "slice_stitch";
    spec.width = width;
    spec.height = height;
    spec.fps = 30.0;
    spec.content = content;
    spec.seed = seed;
    return video::synthesizeClip(spec, frames);
}

codec::RateControlConfig
rcFor(codec::RcMode mode, const video::Video &clip)
{
    codec::RateControlConfig rc;
    rc.mode = mode;
    rc.qp = 28;
    rc.crf = 24.0;
    rc.bitrate_bps =
        static_cast<double>(clip.pixelsPerFrame()) * clip.fps() * 0.08;
    rc.fps = clip.fps();
    rc.pixels_per_frame = static_cast<double>(clip.pixelsPerFrame());
    return rc;
}

/** Sliced segment chain vs sliced whole-file encode, VBC. */
void
checkVbc(const video::Video &clip, codec::RcMode mode, int slices,
         int segment_frames)
{
    codec::EncoderConfig cfg;
    cfg.rc = rcFor(mode, clip);
    cfg.effort = 4;
    cfg.gop = 30;
    cfg.segment_frames = segment_frames;
    cfg.slice_count = slices;

    const codec::EncodeResult whole =
        codec::Encoder(cfg).encode(clip);
    ASSERT_FALSE(whole.stream.empty());

    const SegmentedEncodeResult seg =
        encodeSegmentedVbc(cfg, clip, segment_frames);
    ASSERT_TRUE(seg.ok) << seg.error;
    EXPECT_GT(seg.segments.size(), 1u);
    ASSERT_EQ(seg.stitched, whole.stream)
        << "mode=" << static_cast<int>(mode) << " slices=" << slices;

    const std::optional<video::Video> decoded =
        codec::decode(seg.stitched);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->frameCount(), clip.frameCount());
}

/** Sliced segment chain vs sliced whole-file encode, NGC. */
void
checkNgc(const video::Video &clip, codec::RcMode mode, int slices,
         ngc::NgcProfile profile, int segment_frames)
{
    ngc::NgcConfig cfg;
    cfg.rc = rcFor(mode, clip);
    cfg.profile = profile;
    cfg.speed = 2;
    cfg.gop = 30;
    cfg.segment_frames = segment_frames;
    cfg.slice_count = slices;

    const codec::EncodeResult whole =
        ngc::NgcEncoder(cfg).encode(clip);
    ASSERT_FALSE(whole.stream.empty());

    const SegmentedEncodeResult seg =
        encodeSegmentedNgc(cfg, clip, segment_frames);
    ASSERT_TRUE(seg.ok) << seg.error;
    EXPECT_GT(seg.segments.size(), 1u);
    ASSERT_EQ(seg.stitched, whole.stream)
        << "mode=" << static_cast<int>(mode) << " slices=" << slices;

    const std::optional<video::Video> decoded =
        ngc::ngcDecode(seg.stitched);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->frameCount(), clip.frameCount());
}

TEST(SliceStitchVbc, SliceCountSweepStaysBitExact)
{
    const video::Video clip = testClip(96, 64, 8);
    for (const int slices : {1, 2, 4})
        checkVbc(clip, codec::RcMode::Crf, slices, /*segment_frames=*/3);
}

TEST(SliceStitchVbc, AllRateControlModesAreBitExactSliced)
{
    const video::Video clip = testClip(96, 64, 8, 67);
    for (const codec::RcMode mode :
         {codec::RcMode::Cqp, codec::RcMode::Crf, codec::RcMode::Abr,
          codec::RcMode::TwoPass})
        checkVbc(clip, mode, /*slices=*/2, /*segment_frames=*/4);
}

TEST(SliceStitchVbc, UnalignedHeightIsBitExactSliced)
{
    // 52 pixel rows pad to 4 macroblock rows: 4 slices of one row
    // each, the last covering the partial edge macroblocks.
    const video::Video clip = testClip(100, 52, 8, 71);
    checkVbc(clip, codec::RcMode::Abr, /*slices=*/4,
             /*segment_frames=*/4);
}

TEST(SliceStitchNgc, SliceCountSweepStaysBitExactBothProfiles)
{
    const video::Video clip = testClip(96, 128, 8, 73);
    for (const int slices : {1, 2})
        for (const ngc::NgcProfile profile :
             {ngc::NgcProfile::HevcLike, ngc::NgcProfile::Vp9Like})
            checkNgc(clip, codec::RcMode::Abr, slices, profile,
                     /*segment_frames=*/3);
}

TEST(SliceStitchNgc, AllRateControlModesAreBitExactSliced)
{
    const video::Video clip = testClip(96, 128, 8, 79);
    for (const codec::RcMode mode :
         {codec::RcMode::Cqp, codec::RcMode::Crf, codec::RcMode::Abr,
          codec::RcMode::TwoPass})
        checkNgc(clip, mode, /*slices=*/2, ngc::NgcProfile::HevcLike,
                 /*segment_frames=*/4);
}

TEST(SliceStitchNgc, UnalignedHeightIsBitExactSliced)
{
    // 100 pixel rows pad to 4 superblock rows (32-pixel SBs).
    const video::Video clip = testClip(100, 100, 6, 83);
    checkNgc(clip, codec::RcMode::Crf, /*slices=*/2,
             ngc::NgcProfile::Vp9Like, /*segment_frames=*/3);
}

TEST(SliceStitchStreams, SplitThenStitchRoundTripsSlicedBytes)
{
    // Container-level split/stitch must treat multi-slice frame
    // records as opaque bytes and reassemble them exactly.
    const video::Video clip = testClip(96, 64, 9, 89);
    codec::EncoderConfig cfg;
    cfg.rc = rcFor(codec::RcMode::Crf, clip);
    cfg.effort = 3;
    cfg.segment_frames = 3;
    cfg.slice_count = 4;
    const codec::EncodeResult whole = codec::Encoder(cfg).encode(clip);

    const std::optional<std::vector<codec::ByteBuffer>> parts =
        codec::splitStream(whole.stream, 3);
    ASSERT_TRUE(parts.has_value());
    EXPECT_EQ(parts->size(), 3u);
    for (const codec::ByteBuffer &part : *parts)
        EXPECT_TRUE(codec::decode(part).has_value());
    const std::optional<codec::ByteBuffer> rejoined =
        codec::stitchStreams(*parts);
    ASSERT_TRUE(rejoined.has_value());
    EXPECT_EQ(*rejoined, whole.stream);
}

} // namespace
} // namespace vbench::service
