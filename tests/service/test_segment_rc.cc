/**
 * @file
 * Rate-control state across segment boundaries: RcSnapshot export /
 * restore continuity at the controller level, the two-pass budget
 * index offset, and the service-path approximation (per-segment
 * internal pass 1) staying within tolerance of the whole-file encode.
 */

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "codec/encoder.h"
#include "codec/ratecontrol.h"
#include "service/segment.h"
#include "video/suite.h"

namespace vbench::service {
namespace {

video::Video
testClip(int width, int height, int frames, uint64_t seed = 61)
{
    video::ClipSpec spec;
    spec.name = "segrc";
    spec.width = width;
    spec.height = height;
    spec.fps = 30.0;
    spec.content = video::ContentClass::Natural;
    spec.seed = seed;
    return video::synthesizeClip(spec, frames);
}

codec::RateControlConfig
abrConfig()
{
    codec::RateControlConfig rc;
    rc.mode = codec::RcMode::Abr;
    rc.bitrate_bps = 400e3;
    rc.fps = 30.0;
    rc.pixels_per_frame = 96 * 64;
    return rc;
}

TEST(RcSnapshot, CapturesAccumulatedFeedbackState)
{
    codec::RateController rc(abrConfig());
    double spent = 0;
    for (int i = 0; i < 5; ++i) {
        const codec::FrameType type =
            i == 0 ? codec::FrameType::I : codec::FrameType::P;
        rc.frameQp(type, i);
        const double bits = 12000 + 900 * i;
        rc.frameDone(type, bits);
        spent += bits;
    }
    const codec::RcSnapshot snap = rc.snapshot();
    EXPECT_EQ(snap.frames_done, 5);
    EXPECT_DOUBLE_EQ(snap.spent_bits, spent);
    EXPECT_GT(snap.planned_bits, 0.0);
}

TEST(RcSnapshot, RestoredAbrControllerContinuesIdentically)
{
    // One uninterrupted controller vs. a snapshot/restore handoff at
    // frame 5: the resumed controller must pick the same QPs.
    codec::RateController whole(abrConfig());
    codec::RateController first_half(abrConfig());
    std::vector<int> whole_qps;
    for (int i = 0; i < 10; ++i) {
        const codec::FrameType type =
            i % 5 == 0 ? codec::FrameType::I : codec::FrameType::P;
        const double bits = 11000 + 1300 * (i % 3);
        whole_qps.push_back(whole.frameQp(type, i));
        whole.frameDone(type, bits);
        if (i < 5) {
            first_half.frameQp(type, i);
            first_half.frameDone(type, bits);
        }
    }

    codec::RateController resumed(abrConfig());
    resumed.restore(first_half.snapshot());
    for (int i = 5; i < 10; ++i) {
        const codec::FrameType type =
            i % 5 == 0 ? codec::FrameType::I : codec::FrameType::P;
        EXPECT_EQ(resumed.frameQp(type, i), whole_qps[static_cast<size_t>(i)])
            << "frame " << i;
        resumed.frameDone(type, 11000 + 1300 * (i % 3));
    }
    EXPECT_EQ(resumed.snapshot().frames_done,
              whole.snapshot().frames_done);
    EXPECT_DOUBLE_EQ(resumed.snapshot().spent_bits,
                     whole.snapshot().spent_bits);
}

TEST(RcSnapshot, TwoPassOffsetReadsGlobalBudgets)
{
    // Whole-clip pass-1 stats with a complexity spike in the back
    // half. A restored controller with the default offset (global
    // stats) must make the same decisions the whole-file controller
    // makes at the shifted index.
    codec::RateControlConfig cfg;
    cfg.mode = codec::RcMode::TwoPass;
    cfg.bitrate_bps = 300e3;
    cfg.fps = 30.0;
    cfg.pixels_per_frame = 96 * 64;
    codec::PassOneStats stats;
    for (int i = 0; i < 10; ++i)
        stats.frame_bits.push_back(i < 5 ? 8000.0 : 24000.0);

    codec::RateController whole(cfg);
    whole.setPassOneStats(stats);
    codec::RateController first_half(cfg);
    first_half.setPassOneStats(stats);
    std::vector<int> whole_qps;
    for (int i = 0; i < 10; ++i) {
        const codec::FrameType type =
            i == 0 || i == 5 ? codec::FrameType::I : codec::FrameType::P;
        const double bits = whole.targetBits(i);
        whole_qps.push_back(whole.frameQp(type, i));
        whole.frameDone(type, bits);
        if (i < 5) {
            first_half.frameQp(type, i);
            first_half.frameDone(type, bits);
        }
    }

    codec::RateController resumed(cfg);
    resumed.setPassOneStats(stats);
    resumed.restore(first_half.snapshot());  // offset = frames_done = 5
    for (int i = 5; i < 10; ++i) {
        const codec::FrameType type =
            i == 5 ? codec::FrameType::I : codec::FrameType::P;
        // Local index i-5 + offset 5 = global index i.
        EXPECT_EQ(resumed.frameQp(type, i - 5),
                  whole_qps[static_cast<size_t>(i)])
            << "frame " << i;
        resumed.frameDone(type, whole.targetBits(i));
    }
}

TEST(SegmentRc, AbrChainSpendsExactlyWholeFileBits)
{
    const video::Video clip = testClip(96, 64, 10);
    codec::EncoderConfig cfg;
    cfg.rc = abrConfig();
    cfg.effort = 3;
    cfg.segment_frames = 4;
    codec::Encoder whole(cfg);
    const size_t whole_bytes = whole.encode(clip).stream.size();

    const SegmentedEncodeResult seg = encodeSegmentedVbc(cfg, clip, 4);
    ASSERT_TRUE(seg.ok) << seg.error;
    EXPECT_EQ(seg.stitched.size(), whole_bytes);
}

TEST(SegmentRc, TwoPassSegmentLocalStatsStayWithinTolerance)
{
    // The service's cheap path: each segment runs its own pass 1
    // (stats cover the segment only, budget offset 0) while the
    // feedback state still chains. Not bit-exact — but the spend must
    // stay close to the whole-file two-pass encode.
    const video::Video clip = testClip(96, 64, 12, 67);
    codec::EncoderConfig cfg;
    cfg.rc = abrConfig();
    cfg.rc.mode = codec::RcMode::TwoPass;
    cfg.effort = 3;
    cfg.segment_frames = 4;
    codec::Encoder whole(cfg);
    const double whole_bytes =
        static_cast<double>(whole.encode(clip).stream.size());

    std::optional<codec::RcSnapshot> carry;
    double chained_bytes = 0;
    for (const video::Video &part : splitVideo(clip, 4)) {
        codec::EncoderConfig seg_cfg = cfg;
        seg_cfg.rc_in = carry;
        codec::Encoder enc(seg_cfg);
        const codec::EncodeResult r = enc.encode(part);
        ASSERT_FALSE(r.stream.empty());
        chained_bytes += static_cast<double>(r.stream.size());
        carry = r.rc_state;
    }
    EXPECT_NEAR(chained_bytes, whole_bytes, whole_bytes * 0.3);
}

} // namespace
} // namespace vbench::service
