/**
 * @file
 * The output cache is invisible in the delivered bytes: with the cache
 * attached — cold, warm, or hitting mid-chain — every stitched
 * delivery stream stays byte-identical to the cache-off run, for VBC
 * and NGC across all four rate-control modes. Also checks the hit
 * plumbing: SLA cache counters, the ServiceResult stats snapshot, and
 * that a warm second run serves every segment from the cache.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cache/cache.h"
#include "core/runtime_config.h"
#include "service/segment_job.h"
#include "service/service.h"
#include "service/workload.h"

namespace vbench::service {
namespace {

Corpus
cacheCorpus()
{
    video::ClipSpec spec;
    spec.name = "cache";
    spec.width = 96;
    spec.height = 64;
    spec.fps = 30.0;
    spec.content = video::ContentClass::Natural;
    spec.seed = 97;
    return buildCorpus({spec}, 8, 4);
}

/** One request per (encoder, rc mode): the full chained/unchained mix. */
std::vector<ServiceRequest>
rcMatrixWorkload(uint64_t first_id)
{
    std::vector<ServiceRequest> workload;
    uint64_t id = first_id;
    for (const core::EncoderKind kind :
         {core::EncoderKind::Vbc, core::EncoderKind::NgcHevc}) {
        for (const codec::RcMode mode :
             {codec::RcMode::Cqp, codec::RcMode::Crf, codec::RcMode::Abr,
              codec::RcMode::TwoPass}) {
            ServiceRequest req;
            req.id = id++;
            req.scenario = core::Scenario::Upload;
            req.clip = 0;
            req.arrival_s = 0.0;
            RungSpec rung;
            rung.request.kind = kind;
            rung.request.effort = 3;
            rung.request.ngc_speed = 1;
            rung.request.rc.mode = mode;
            rung.request.rc.qp = 30;
            rung.request.rc.crf = 30.0;
            rung.request.rc.bitrate_bps = 300'000.0;
            rung.request.rc.fps = 30.0;
            rung.request.rc.pixels_per_frame = 96.0 * 64.0;
            switch (mode) {
            case codec::RcMode::Cqp:
                rung.name = "cqp";
                break;
            case codec::RcMode::Crf:
                rung.name = "crf";
                break;
            case codec::RcMode::Abr:
                rung.name = "abr";
                break;
            case codec::RcMode::TwoPass:
                rung.name = "2p";
                break;
            }
            rung.name +=
                kind == core::EncoderKind::Vbc ? ".vbc" : ".ngc";
            req.rungs.push_back(rung);
            workload.push_back(req);
        }
    }
    return workload;
}

ServiceConfig
plainConfig()
{
    ServiceConfig config;
    config.workers = 2;
    config.admission_capacity = 64;
    config.collect_outputs = true;
    return config;
}

cache::CacheConfig
ampleCacheConfig()
{
    cache::CacheConfig cc;
    cc.policy = cache::CachePolicy::AlwaysStore;
    cc.capacity_bytes = 64ull << 20;
    return cc;
}

/** "<request>.<rung>" outputs compared byte-for-byte. */
void
expectSameOutputs(const ServiceResult &baseline,
                  const ServiceResult &result,
                  uint64_t result_id_offset)
{
    ASSERT_EQ(result.outputs.size(), baseline.outputs.size());
    for (const auto &[name, stream] : baseline.outputs) {
        std::string mapped = name;
        if (result_id_offset != 0) {
            const size_t dot = name.find('.');
            ASSERT_NE(dot, std::string::npos);
            mapped = std::to_string(std::stoull(name.substr(0, dot)) +
                                    result_id_offset) +
                name.substr(dot);
        }
        const auto it = result.outputs.find(mapped);
        ASSERT_NE(it, result.outputs.end()) << mapped;
        EXPECT_EQ(it->second, stream) << mapped;
    }
}

TEST(ServiceCache, ColdAndWarmRunsStayByteIdentical)
{
    const Corpus corpus = cacheCorpus();
    const std::vector<ServiceRequest> workload = rcMatrixWorkload(1);

    TranscodeService baseline_service(plainConfig(), corpus);
    const ServiceResult baseline = baseline_service.run(workload);
    ASSERT_EQ(baseline.completed, workload.size());
    ASSERT_EQ(baseline.stitch_failures, 0u);
    EXPECT_FALSE(baseline.sla.cache_enabled);
    EXPECT_EQ(baseline.sla.cache_hits, 0u);

    // Cold pass: every segment misses, the cache populates, and the
    // outputs match the cache-off run bit for bit.
    cache::TranscodeCache tc(ampleCacheConfig());
    ServiceConfig cached = plainConfig();
    cached.cache = &tc;
    TranscodeService cold_service(cached, corpus);
    const ServiceResult cold = cold_service.run(workload);
    ASSERT_EQ(cold.completed, workload.size());
    ASSERT_EQ(cold.stitch_failures, 0u);
    expectSameOutputs(baseline, cold, 0);
    EXPECT_TRUE(cold.sla.cache_enabled);
    EXPECT_EQ(cold.sla.cache_hits, 0u);
    EXPECT_GT(cold.sla.cache_misses, 0u);
    EXPECT_GT(cold.cache_stats.resident_bytes, 0u);

    // Warm pass: fresh request ids, same content — every segment is
    // served from the cache and the delivered bytes still match.
    const std::vector<ServiceRequest> replay = rcMatrixWorkload(101);
    TranscodeService warm_service(cached, corpus);
    const ServiceResult warm = warm_service.run(replay);
    ASSERT_EQ(warm.completed, replay.size());
    ASSERT_EQ(warm.stitch_failures, 0u);
    expectSameOutputs(baseline, warm, 100);

    // 2 segments per 8-frame clip at 4 frames/segment, all hits.
    const uint64_t warm_hits =
        warm.cache_stats.hits - cold.cache_stats.hits;
    EXPECT_EQ(warm_hits, 2 * replay.size());
    EXPECT_EQ(warm.cache_stats.misses, cold.cache_stats.misses);
    EXPECT_GT(warm.cache_stats.saved_dollars, 0.0);
    EXPECT_TRUE(warm.sla.cache_enabled);
    EXPECT_EQ(warm.sla.cache_hits,
              warm.cache_stats.hits);  // rollup mirrors the stats

    // Per-scenario cache columns reached the scorecard.
    bool saw = false;
    for (const ScenarioScore &s : warm.sla.scenarios) {
        if (s.scenario != core::Scenario::Upload)
            continue;
        EXPECT_EQ(s.cache_hits, warm_hits);
        EXPECT_DOUBLE_EQ(s.cache_hit_rate, 1.0);
        saw = true;
    }
    EXPECT_TRUE(saw);
}

TEST(ServiceCache, MidChainHitLeavesTailByteIdentical)
{
    // Pre-populate ONLY segment 0 of every rung, then run with a
    // fresh chain: segment 0 hits, segments >= 1 encode from the
    // cached rc_out carry. The stitched stream must match the
    // cache-off encode — the carried RcSnapshot is exactly what a
    // fresh segment-0 encode would have produced.
    const Corpus corpus = cacheCorpus();
    const std::vector<ServiceRequest> workload = rcMatrixWorkload(1);

    TranscodeService baseline_service(plainConfig(), corpus);
    const ServiceResult baseline = baseline_service.run(workload);
    ASSERT_EQ(baseline.completed, workload.size());

    // Populate a full cache, then copy only segment-0 entries into a
    // fresh cache by replaying lookups through the service's own key
    // derivation: run the cold pass, then build the partial cache from
    // first-segment jobs.
    cache::TranscodeCache full(ampleCacheConfig());
    ServiceConfig cached = plainConfig();
    cached.cache = &full;
    TranscodeService fill_service(cached, corpus);
    const ServiceResult fill = fill_service.run(workload);
    ASSERT_EQ(fill.completed, workload.size());

    cache::TranscodeCache partial(ampleCacheConfig());
    for (const ServiceRequest &req : workload) {
        for (const RungSpec &rung : req.rungs) {
            SegmentJob sj;
            sj.request_id = req.id;
            sj.rung = rung.name;
            sj.segment_index = 0;
            sj.scenario = req.scenario;
            sj.input = *corpus.clips[0].seg_universal[0];
            sj.params = rung.request;
            sj.params.segment_frames = corpus.segment_frames;
            // The service pins the resolved entropy slice count into
            // every job at admission; mirror it or the keys miss.
            if (sj.params.slice_count <= 0)
                sj.params.slice_count = core::freshRuntimeConfig().slices;
            const auto entry = full.lookup(sj.cacheKey(), 0.0);
            ASSERT_TRUE(entry.has_value()) << rung.name;
            partial.insert(sj.cacheKey(), *entry, 0.0);
        }
    }

    ServiceConfig mid = plainConfig();
    mid.cache = &partial;
    TranscodeService mid_service(mid, corpus);
    const ServiceResult result = mid_service.run(workload);
    ASSERT_EQ(result.completed, workload.size());
    ASSERT_EQ(result.stitch_failures, 0u);
    expectSameOutputs(baseline, result, 0);

    // Exactly segment 0 of every rung hit; the tail was re-encoded.
    EXPECT_EQ(result.cache_stats.hits, workload.size());
    EXPECT_GT(result.cache_stats.misses, 0u);
}

} // namespace
} // namespace vbench::service
