/**
 * @file
 * Table 4 (and the Live half of Figure 9): hardware encoders on the
 * Live scenario. The reference is the real-time-constrained software
 * encode (effort inversely proportional to resolution); the hardware
 * encodes at reference quality (bisection) and reports Q, B, and the
 * Live score, subject to the real-time constraint.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "codec/decoder.h"
#include "core/report.h"
#include "core/scoring.h"
#include "hwenc/hwenc.h"
#include "metrics/rates.h"
#include "video/suite.h"

namespace {

using namespace vbench;

struct LiveRow {
    core::Ratios ratios;
    core::ScoreResult score;
    bool real_time = false;
};

LiveRow
runHw(const hwenc::HwEncoderSpec &spec, const bench::PreparedClip &clip,
      const core::TranscodeOutcome &reference)
{
    const auto decoded_input = codec::decode(clip.universal);
    // Maintain reference quality, minimize bitrate (§6.1's choice).
    const hwenc::HwEncodeResult hw = hwenc::encodeAtQuality(
        spec, *decoded_input, reference.m.psnr_db, 7,
        &clip.original);

    const auto decoded = codec::decode(hw.encoded.stream);
    const core::Measurement m = core::measure(
        clip.original, *decoded, hw.encoded.totalBytes(),
        hw.seconds + clip.original.totalPixels() / 1600e6);

    LiveRow row;
    row.ratios = core::computeRatios(reference.m, m);
    const double output_rate = metrics::outputMegapixelsPerSecond(
        clip.original.width(), clip.original.height(),
        clip.original.fps());
    row.real_time = m.speed_mpix_s >= output_rate;
    row.score = core::scoreScenario(core::Scenario::Live, row.ratios, m,
                                    output_rate);
    return row;
}

} // namespace

int
main()
{
    bench::printHeader("Table 4 — hardware encoders on Live",
                       "Table 4 and Fig. 9 bottom (Q, B, Live score; "
                       "real-time constraint)");

    core::Table table({"video", "kpix", "entropy", "nv_Q", "nv_B",
                       "nv_Live", "qsv_Q", "qsv_B", "qsv_Live"});
    std::vector<std::pair<double, double>> nv_scatter, qsv_scatter;
    int low_entropy_b_losses = 0;
    int wins = 0, rows = 0;

    for (const video::ClipSpec &spec : video::vbenchSuite()) {
        const bench::PreparedClip clip = bench::prepare(spec);
        core::ReferenceStore refs;
        const core::TranscodeOutcome &ref = refs.get(
            spec.name, core::Scenario::Live, clip.universal,
            clip.original);
        if (!ref.ok) {
            std::printf("reference failed for %s\n", spec.name.c_str());
            continue;
        }

        const LiveRow nv = runHw(hwenc::nvencLikeSpec(), clip, ref);
        const LiveRow qs = runHw(hwenc::qsvLikeSpec(), clip, ref);

        auto cell = [](const LiveRow &row) {
            if (!row.real_time)
                return std::string("not-RT");
            return row.score.valid ? core::fmt(row.score.score, 2)
                                   : std::string("--");
        };
        table.addRow({spec.name, std::to_string(spec.kpixels()),
                      core::fmt(spec.target_entropy, 1),
                      core::fmt(nv.ratios.q, 2), core::fmt(nv.ratios.b, 2),
                      cell(nv), core::fmt(qs.ratios.q, 2),
                      core::fmt(qs.ratios.b, 2), cell(qs)});
        nv_scatter.emplace_back(nv.ratios.b, nv.ratios.q);
        qsv_scatter.emplace_back(qs.ratios.b, qs.ratios.q);

        ++rows;
        if (nv.ratios.b >= 1.0 && qs.ratios.b >= 1.0)
            ++wins;
        if (spec.target_entropy < 1.0 &&
            (nv.ratios.b < 1.0 || qs.ratios.b < 1.0)) {
            ++low_entropy_b_losses;
        }
    }

    table.print(std::cout);
    std::printf("\n");
    core::printSeries(std::cout, "fig9_live_nvenc_B_vs_Q", nv_scatter);
    core::printSeries(std::cout, "fig9_live_qsv_B_vs_Q", qsv_scatter);

    std::printf("hardware wins both B and Q on %d/%d videos; low-entropy"
                " exceptions: %d\n", wins, rows, low_entropy_b_losses);
    std::printf("shape check: for Live, hardware achieves reference"
                " quality at equal or\nlower bitrate while easily real"
                " time — an unqualified win except for the\nlow-entropy"
                " clips, where it degrades less gracefully (§6.1).\n");
    return 0;
}
