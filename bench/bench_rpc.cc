/**
 * @file
 * Process-level worker runtime benchmark (docs/RPC.md): the same
 * rate-control matrix workload played twice through the transcoding
 * service — once on the in-process scheduler pool, once on an
 * rpc::RemotePool of fork/exec'd vbench_worker children — comparing
 * wall time and proving the delivered streams are byte-identical.
 * Reports the supervision scorecard (dispatches, retries, respawns,
 * hedges, degradations) and writes BENCH_rpc.json.
 *
 *   --seed N  corpus seed (default 61)
 *   --smoke   gate wired into scripts/check.sh: 4 child workers, one
 *             injected SIGKILL mid-run, an aggressive hedge threshold,
 *             byte-identity against the in-process run, and >= 1 retry
 *             plus >= 1 hedge asserted via the service.rpc.* counters.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "obs/metrics.h"
#include "rpc/remote_pool.h"
#include "service/executor.h"
#include "service/service.h"
#include "service/workload.h"

namespace {

using namespace vbench;

service::Corpus
rpcCorpus(uint64_t seed, bool smoke)
{
    video::ClipSpec spec;
    spec.name = "rpc";
    spec.width = smoke ? 96 : 192;
    spec.height = smoke ? 64 : 128;
    spec.fps = 30.0;
    spec.content = video::ContentClass::Natural;
    spec.seed = seed;
    return service::buildCorpus({spec}, smoke ? 8 : 16, smoke ? 4 : 8);
}

/** One request per (encoder, rc mode): chained and unchained rungs. */
std::vector<service::ServiceRequest>
rcMatrixWorkload()
{
    std::vector<service::ServiceRequest> workload;
    uint64_t id = 1;
    for (const core::EncoderKind kind :
         {core::EncoderKind::Vbc, core::EncoderKind::NgcHevc}) {
        for (const codec::RcMode mode :
             {codec::RcMode::Cqp, codec::RcMode::Crf, codec::RcMode::Abr,
              codec::RcMode::TwoPass}) {
            service::ServiceRequest req;
            req.id = id++;
            req.scenario = core::Scenario::Upload;
            req.clip = 0;
            req.arrival_s = 0.0;
            service::RungSpec rung;
            rung.request.kind = kind;
            rung.request.effort = 3;
            rung.request.ngc_speed = 1;
            rung.request.rc.mode = mode;
            rung.request.rc.qp = 30;
            rung.request.rc.crf = 30.0;
            rung.request.rc.bitrate_bps = 300'000.0;
            rung.request.rc.fps = 30.0;
            rung.request.rc.pixels_per_frame = 96.0 * 64.0;
            switch (mode) {
            case codec::RcMode::Cqp:
                rung.name = "cqp";
                break;
            case codec::RcMode::Crf:
                rung.name = "crf";
                break;
            case codec::RcMode::Abr:
                rung.name = "abr";
                break;
            case codec::RcMode::TwoPass:
                rung.name = "2p";
                break;
            }
            rung.name +=
                kind == core::EncoderKind::Vbc ? ".vbc" : ".ngc";
            req.rungs.push_back(rung);
            workload.push_back(req);
        }
    }
    return workload;
}

service::ServiceResult
runService(const service::Corpus &corpus,
           const std::vector<service::ServiceRequest> &workload,
           service::SegmentExecutor *executor,
           obs::MetricsRegistry *metrics)
{
    service::ServiceConfig config;
    config.workers = 4;
    config.admission_capacity = 64;
    config.collect_outputs = true;
    config.executor = executor;
    config.metrics = metrics;
    service::TranscodeService svc(config, corpus);
    return svc.run(workload);
}

bool
sameOutputs(const service::ServiceResult &baseline,
            const service::ServiceResult &result)
{
    if (result.outputs.size() != baseline.outputs.size()) {
        std::fprintf(stderr, "FAIL: %zu outputs vs %zu in baseline\n",
                     result.outputs.size(), baseline.outputs.size());
        return false;
    }
    bool ok = true;
    for (const auto &[name, stream] : baseline.outputs) {
        const auto it = result.outputs.find(name);
        if (it == result.outputs.end()) {
            std::fprintf(stderr, "FAIL: output %s missing\n",
                         name.c_str());
            ok = false;
        } else if (it->second != stream) {
            std::fprintf(stderr,
                         "FAIL: output %s differs (%zu vs %zu bytes)\n",
                         name.c_str(), it->second.size(),
                         stream.size());
            ok = false;
        }
    }
    return ok;
}

void
printScorecard(const service::ExecutorStats &s)
{
    std::printf("rpc pool: %zu workers, %llu dispatched, %llu "
                "completed\n",
                s.workers.size(),
                static_cast<unsigned long long>(s.dispatched),
                static_cast<unsigned long long>(s.completed));
    std::printf("  retries %llu, respawns %llu, worker deaths %llu, "
                "timeouts %llu, protocol errors %llu\n",
                static_cast<unsigned long long>(s.retries),
                static_cast<unsigned long long>(s.respawns),
                static_cast<unsigned long long>(s.worker_deaths),
                static_cast<unsigned long long>(s.timeouts),
                static_cast<unsigned long long>(s.protocol_errors));
    std::printf("  hedges %llu (%llu wins, %llu losses), degraded "
                "local %llu, kills injected %llu\n",
                static_cast<unsigned long long>(s.hedges),
                static_cast<unsigned long long>(s.hedge_wins),
                static_cast<unsigned long long>(s.hedge_losses),
                static_cast<unsigned long long>(s.degraded_local),
                static_cast<unsigned long long>(s.kills_injected));
    for (size_t i = 0; i < s.workers.size(); ++i)
        std::printf("  worker #%zu: pid %lld (%s), %llu jobs, %llu "
                    "respawns%s\n",
                    i, static_cast<long long>(s.workers[i].pid),
                    s.workers[i].tier.c_str(),
                    static_cast<unsigned long long>(s.workers[i].jobs),
                    static_cast<unsigned long long>(
                        s.workers[i].respawns),
                    s.workers[i].alive ? "" : " (dead)");
}

/**
 * Gate for check.sh. The hedge knobs are deliberately aggressive
 * (1st-percentile threshold, near-zero floor, one warmup sample) so a
 * 16-segment run reliably exercises the straggler path; production
 * defaults sit at p99. One SIGKILL is injected mid-run to force the
 * retry + respawn path. Both fault paths must stay invisible in the
 * delivered bytes.
 */
int
runSmoke(uint64_t seed)
{
    const service::Corpus corpus = rpcCorpus(seed, true);
    const std::vector<service::ServiceRequest> workload =
        rcMatrixWorkload();

    const service::ServiceResult baseline =
        runService(corpus, workload, nullptr, nullptr);
    if (baseline.completed != workload.size() ||
        baseline.stitch_failures != 0) {
        std::fprintf(stderr, "FAIL: in-process baseline incomplete\n");
        return 1;
    }

    // The hedge path rides on real scheduling jitter, so a cold
    // machine can occasionally finish every job before the 2 ms hedge
    // tick fires; retry with a fresh pool rather than flaking.
    const int kAttempts = 3;
    for (int attempt = 1; attempt <= kAttempts; ++attempt) {
        rpc::RemotePoolConfig pool_config;
        pool_config.workers = 4;
        // Kill dispatch #0: with no latency samples yet the hedge
        // loop cannot have duplicated it, so the failure is charged
        // to a live job and the retry counter must move.
        pool_config.inject_kill_at = 0;
        pool_config.hedge = true;
        pool_config.hedge_pct = 1.0;
        pool_config.hedge_floor_ms = 0.05;
        pool_config.hedge_min_samples = 1;
        rpc::RemotePool pool(pool_config);
        obs::MetricsRegistry metrics;

        const service::ServiceResult result =
            runService(corpus, workload, &pool, &metrics);
        const service::ExecutorStats stats = pool.stats();
        printScorecard(stats);

        bool ok = true;
        if (result.completed != workload.size() ||
            result.failed_requests != 0 ||
            result.stitch_failures != 0) {
            std::fprintf(stderr,
                         "FAIL: proc run incomplete (%llu/%zu, %llu "
                         "failed, %llu stitch failures)\n",
                         static_cast<unsigned long long>(
                             result.completed),
                         workload.size(),
                         static_cast<unsigned long long>(
                             result.failed_requests),
                         static_cast<unsigned long long>(
                             result.stitch_failures));
            ok = false;
        }
        if (!sameOutputs(baseline, result))
            ok = false;

        // The run report's counters, read back from the metrics sink:
        // the same numbers obs_lint --require-rpc schema-checks.
        const uint64_t kills =
            metrics.counter("service.rpc.kills_injected").value();
        const uint64_t retries =
            metrics.counter("service.rpc.retries").value();
        const uint64_t hedges =
            metrics.counter("service.rpc.hedges").value();
        const uint64_t deaths =
            metrics.counter("service.rpc.worker_deaths").value();
        if (kills != 1) {
            std::fprintf(stderr,
                         "FAIL: expected exactly 1 injected kill, "
                         "counter says %llu\n",
                         static_cast<unsigned long long>(kills));
            ok = false;
        }
        if (retries < 1) {
            std::fprintf(stderr, "FAIL: SIGKILL produced no retry\n");
            ok = false;
        }
        if (deaths < 1) {
            std::fprintf(stderr,
                         "FAIL: SIGKILL not booked as a worker "
                         "death\n");
            ok = false;
        }
        if (metrics.counter("service.rpc.degraded_local").value() >
            0) {
            std::fprintf(stderr,
                         "FAIL: pool degraded to in-process during "
                         "the smoke\n");
            ok = false;
        }
        if (hedges < 1) {
            if (!ok || attempt == kAttempts) {
                std::fprintf(stderr,
                             "FAIL: no hedged dispatch in %d "
                             "attempts\n",
                             attempt);
                ok = false;
            } else {
                std::printf("no hedge fired this run; retrying "
                            "(%d/%d)\n",
                            attempt, kAttempts);
                continue;
            }
        }
        std::printf("rpc smoke: %s\n", ok ? "ok" : "FAILED");
        return ok ? 0 : 1;
    }
    return 1;  // unreachable
}

int
runFull(const std::string &json_path, uint64_t seed)
{
    bench::printHeader(
        "process-level worker runtime (fork/exec + framed rpc)",
        "supervised child workers vs the in-process pool");

    const service::Corpus corpus = rpcCorpus(seed, false);
    const std::vector<service::ServiceRequest> workload =
        rcMatrixWorkload();
    std::printf("workload: %zu requests, %zu-clip corpus\n",
                workload.size(), corpus.clips.size());

    const service::ServiceResult local =
        runService(corpus, workload, nullptr, nullptr);
    std::printf("in-process pool: %.3fs wall\n", local.wall_seconds);

    rpc::RemotePoolConfig pool_config;
    pool_config.workers = 4;
    rpc::RemotePool pool(pool_config);
    const service::ServiceResult remote =
        runService(corpus, workload, &pool, nullptr);
    const service::ExecutorStats stats = pool.stats();
    std::printf("child-process pool: %.3fs wall (%.2fx the local "
                "run)\n",
                remote.wall_seconds,
                local.wall_seconds > 0
                    ? remote.wall_seconds / local.wall_seconds
                    : 0.0);
    printScorecard(stats);

    const bool identical = sameOutputs(local, remote);
    std::printf("byte-identity: %s\n", identical ? "ok" : "FAILED");

    std::FILE *f = std::fopen(json_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(
        f,
        "{%s\"local_wall_s\":%.4f,\"proc_wall_s\":%.4f,"
        "\"byte_identical\":%s,\"workers\":%zu,\"dispatched\":%llu,"
        "\"completed\":%llu,\"retries\":%llu,\"respawns\":%llu,"
        "\"worker_deaths\":%llu,\"timeouts\":%llu,"
        "\"protocol_errors\":%llu,\"hedges\":%llu,"
        "\"hedge_wins\":%llu,\"degraded_local\":%llu}\n",
        bench::jsonMetaFields().c_str(), local.wall_seconds,
        remote.wall_seconds, identical ? "true" : "false",
        stats.workers.size(),
        static_cast<unsigned long long>(stats.dispatched),
        static_cast<unsigned long long>(stats.completed),
        static_cast<unsigned long long>(stats.retries),
        static_cast<unsigned long long>(stats.respawns),
        static_cast<unsigned long long>(stats.worker_deaths),
        static_cast<unsigned long long>(stats.timeouts),
        static_cast<unsigned long long>(stats.protocol_errors),
        static_cast<unsigned long long>(stats.hedges),
        static_cast<unsigned long long>(stats.hedge_wins),
        static_cast<unsigned long long>(stats.degraded_local));
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
    return identical ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = "BENCH_rpc.json";
    uint64_t seed = 61;
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--out" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--seed" && i + 1 < argc) {
            char *end = nullptr;
            seed = std::strtoull(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0') {
                std::fprintf(stderr,
                             "--seed wants an integer, got %s\n",
                             argv[i]);
                return 2;
            }
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--seed N] [--out FILE]\n",
                         argv[0]);
            return 2;
        }
    }
    return smoke ? runSmoke(seed) : runFull(json_path, seed);
}
