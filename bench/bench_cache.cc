/**
 * @file
 * Transcode output cache benchmark: store-vs-recompute economics under
 * Zipf-skewed demand (docs/CACHE.md). A single profiling pass executes
 * each clip's segment chain once through the real encoder
 * (service::executeSegmentJob, rate-control carry included), capturing
 * per-segment cache keys, encoded bytes, and measured seconds; the
 * replay then drives every (scenario x policy) pair over identical
 * deterministic arrival sequences against a real cache::TranscodeCache,
 * so dollar differences are pure policy quality. The storage price is
 * calibrated from the profiled medians so rent and re-encode dollars
 * are the same order of magnitude — the regime where the policy choice
 * matters. Writes BENCH_cache.json (full mode).
 *
 * Environment knobs (full mode; --smoke pins everything for CI):
 * VBENCH_ZIPF_S (single skew instead of the sweep), VBENCH_CACHE_MB
 * (single capacity instead of the sweep), VBENCH_CACHE_GB_HOUR
 * (storage price override instead of calibration),
 * VBENCH_SEGMENT_FRAMES.
 *
 *   --seed N   workload base seed (default 40) for reproducible runs
 *   --out FILE JSON output path (default BENCH_cache.json)
 *   --smoke    small run wired into scripts/check.sh: asserts the
 *              replay is deterministic in the seed, the service's
 *              delivered bytes are identical with the cache off, cold,
 *              and warm, the Popular scenario gets a non-zero hit
 *              rate, and cost_aware strictly undercuts always_store
 *              AND always_recompute on Popular dollars (and is no
 *              worse overall).
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cache/cache.h"
#include "core/runtime_config.h"
#include "core/scenario.h"
#include "service/segment_job.h"
#include "service/service.h"
#include "service/workload.h"
#include "video/suite.h"
#include "video/synth.h"

namespace {

using namespace vbench;

/**
 * A wide clip library so Zipf demand has a real tail: the head clips
 * repeat (caching pays), the tail clips are touched once (storing them
 * is pure rent).
 */
std::vector<video::ClipSpec>
corpusSpecs(bool smoke)
{
    const video::ContentClass classes[] = {
        video::ContentClass::Natural, video::ContentClass::Sports,
        video::ContentClass::Animation, video::ContentClass::Screencast};
    std::vector<video::ClipSpec> specs;
    for (int i = 0; i < 20; ++i) {
        video::ClipSpec s;
        s.name = "cache" + std::to_string(i);
        s.width = smoke ? 96 : 128;
        s.height = smoke ? 64 : 96;
        s.fps = 30.0;
        s.content = classes[i % 4];
        s.seed = 200 + static_cast<uint64_t>(i);
        specs.push_back(s);
    }
    return specs;
}

/** The one ladder rung the replay prices: chained ABR through VBC. */
core::TranscodeRequest
replayRung(const service::Corpus &corpus)
{
    core::TranscodeRequest req;
    req.kind = core::EncoderKind::Vbc;
    req.effort = 3;
    req.rc.mode = codec::RcMode::Abr;
    req.rc.bitrate_bps = 300'000.0;
    req.rc.fps = 30.0;
    req.segment_frames = corpus.segment_frames;
    return req;
}

/** One profiled segment: everything a replayed miss would store. */
struct SegProfile {
    cache::CacheKey key;
    cache::CachedSegment cached;
};

/** One clip's full chain, executed once through the real encoder. */
struct ChainProfile {
    std::vector<SegProfile> segs;
};

std::vector<ChainProfile>
profileChains(const service::Corpus &corpus, size_t *failures)
{
    std::vector<ChainProfile> chains;
    for (size_t c = 0; c < corpus.clips.size(); ++c) {
        const service::CorpusClip &clip = corpus.clips[c];
        ChainProfile chain;
        codec::RcSnapshot carry;
        const int segments = clip.segmentCount();
        for (int k = 0; k < segments; ++k) {
            service::SegmentJob job;
            job.request_id = c;
            job.rung = "abr.vbc";
            job.segment_index = k;
            job.input = *clip.seg_universal[static_cast<size_t>(k)];
            job.params = replayRung(corpus);
            job.params.rc.pixels_per_frame =
                static_cast<double>(clip.spec.width) * clip.spec.height;
            if (k > 0)
                job.params.rc_in = carry;
            const cache::CacheKey key = job.cacheKey();
            const service::SegmentResult res =
                service::executeSegmentJob(
                    job, clip.seg_original[static_cast<size_t>(k)].get());
            if (!res.ok) {
                ++*failures;
                continue;
            }
            carry = res.rc_state;
            SegProfile seg;
            seg.key = key;
            seg.cached.stream = res.stream;
            seg.cached.rc_out = res.rc_state;
            seg.cached.psnr_db = res.m.psnr_db;
            seg.cached.bitrate_bpps = res.m.bitrate_bpps;
            seg.cached.speed_mpix_s = res.m.speed_mpix_s;
            seg.cached.encode_seconds = res.seconds;
            chain.segs.push_back(std::move(seg));
        }
        chains.push_back(std::move(chain));
    }
    return chains;
}

double
median(std::vector<double> v)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

/**
 * Storage price that puts rent in the same currency band as
 * re-encoding: a median entry resident for one popularity window
 * (tau) costs `multiple` x its re-encode dollars. Below ~1 the cache
 * wants to keep anything warm; far above, nothing is worth storing —
 * either way the policy comparison degenerates.
 */
double
calibrateStoragePrice(const std::vector<ChainProfile> &chains,
                      double tau_s, double multiple)
{
    std::vector<double> seconds, bytes;
    for (const ChainProfile &chain : chains)
        for (const SegProfile &seg : chain.segs) {
            seconds.push_back(seg.cached.encode_seconds);
            bytes.push_back(
                static_cast<double>(seg.cached.stream.size()));
        }
    const cache::TranscodeCache pricer{cache::CacheConfig{}};
    const double reencode = pricer.reencodeDollars(median(seconds));
    const double med_bytes = median(bytes);
    if (med_bytes <= 0 || tau_s <= 0)
        return cache::CacheConfig{}.storage_dollars_per_gb_hour;
    return multiple * reencode * 3600.0 * 1e9 / (med_bytes * tau_s);
}

uint64_t
splitmix64(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/** One replayed request: which clip's chain, and when. */
struct Arrival {
    int clip = 0;
    double t = 0;
};

/**
 * Evenly spaced arrivals with Zipf-distributed clip choice (s = 0
 * means round-robin: every clip exactly once — the Upload shape where
 * nothing repeats). Deterministic in (seed, n).
 */
std::vector<Arrival>
makeArrivals(size_t n, size_t clips, double zipf_s, double window_s,
             uint64_t seed)
{
    std::vector<double> cdf(clips, 0.0);
    double sum = 0;
    for (size_t i = 0; i < clips; ++i) {
        sum += zipf_s > 0
            ? 1.0 / std::pow(static_cast<double>(i + 1), zipf_s)
            : 1.0;
        cdf[i] = sum;
    }
    std::vector<Arrival> arrivals;
    for (size_t i = 0; i < n; ++i) {
        Arrival a;
        a.t = window_s * (static_cast<double>(i) + 0.5) /
            static_cast<double>(n);
        if (zipf_s > 0) {
            const double u = sum *
                (static_cast<double>(splitmix64(seed + i) >> 11) *
                 0x1.0p-53);
            a.clip = static_cast<int>(
                std::lower_bound(cdf.begin(), cdf.end(), u) -
                cdf.begin());
            if (a.clip >= static_cast<int>(clips))
                a.clip = static_cast<int>(clips) - 1;
        } else {
            a.clip = static_cast<int>(i % clips);
        }
        arrivals.push_back(a);
    }
    return arrivals;
}

/**
 * Drive one policy over one arrival sequence against a real cache:
 * every segment of the arriving clip's chain is looked up at the
 * arrival time; a miss "re-encodes" (inserts the profiled segment,
 * which charges its modeled compute dollars), a hit only saves. The
 * sweep runs at every arrival, exactly like a service pruning between
 * requests. Stats are read at the window end so every policy pays
 * rent over the same horizon.
 */
cache::CacheStats
replay(const std::vector<ChainProfile> &chains,
       const std::vector<Arrival> &arrivals, double window_s,
       const cache::CacheConfig &config)
{
    cache::TranscodeCache cache(config);
    for (const Arrival &a : arrivals) {
        cache.sweep(a.t);
        for (const SegProfile &seg :
             chains[static_cast<size_t>(a.clip)].segs) {
            if (cache.lookup(seg.key, a.t))
                continue;
            cache.insert(seg.key, seg.cached, a.t);
        }
    }
    return cache.stats(window_s);
}

const char *const kScenarioNames[] = {"Popular", "Vod", "Upload"};

/** The three demand shapes the policies are scored on. */
struct ScenarioShape {
    size_t requests = 0;
    double zipf_s = 0;  ///< 0 = every clip once (no reuse)
};

std::vector<ScenarioShape>
smokeShapes(double popular_s)
{
    return {
        {48, popular_s},  // Popular: heavy head, real tail
        {16, 0.8},        // Vod: mild reuse
        {12, 0.0},        // Upload: new content, nothing repeats
    };
}

cache::CacheConfig
policyConfig(cache::CachePolicy policy, size_t capacity_bytes,
             double price_gb_hour, double tau_s)
{
    cache::CacheConfig config;
    config.policy = policy;
    config.capacity_bytes = capacity_bytes;
    config.storage_dollars_per_gb_hour = price_gb_hour;
    config.popularity_tau_s = tau_s;
    // Zipf inter-arrivals for mid-head clips run near tau, so the
    // stock 1.5 floor pushes admission to the third touch; 1.2 admits
    // on the second while still keeping single-touch keys out.
    config.admit_min_popularity = 1.2;
    return config;
}

void
printPolicyTable(const std::vector<cache::CacheStats> &stats)
{
    std::printf("%-17s %-8s %-6s %-9s %-10s %-10s %-10s %s\n", "policy",
                "lookups", "hit%", "res_KB", "storage_$", "compute_$",
                "saved_$", "total_$");
    for (int p = 0; p < cache::kNumCachePolicies; ++p) {
        const cache::CacheStats &s = stats[static_cast<size_t>(p)];
        std::printf(
            "%-17s %-8llu %-6.1f %-9.1f %-10.7f %-10.7f %-10.7f %.7f\n",
            cache::policyName(static_cast<cache::CachePolicy>(p)),
            static_cast<unsigned long long>(s.lookups),
            100.0 * s.hitRate(),
            static_cast<double>(s.resident_bytes) / 1024.0,
            s.storage_dollars, s.compute_dollars, s.saved_dollars,
            s.totalDollars());
    }
}

/**
 * The service byte-identity gate: the same tiny workload delivered
 * with the cache off, through a cold cache, and again through the now
 * warm cache must produce identical bytes per output — and the warm
 * pass must serve every segment from the cache.
 */
bool
checkServiceByteIdentity(const service::Corpus &corpus)
{
    std::vector<service::ServiceRequest> workload;
    for (uint64_t i = 0; i < 2; ++i) {
        service::ServiceRequest req;
        req.id = i + 1;
        req.scenario = core::Scenario::Popular;
        req.clip = static_cast<int>(i);
        req.arrival_s = 0.0;
        service::RungSpec rung;
        rung.request.kind =
            i == 0 ? core::EncoderKind::Vbc : core::EncoderKind::NgcHevc;
        rung.request.effort = 3;
        rung.request.ngc_speed = 1;
        rung.request.rc.mode =
            i == 0 ? codec::RcMode::Abr : codec::RcMode::Crf;
        rung.request.rc.crf = 30.0;
        rung.request.rc.bitrate_bps = 300'000.0;
        rung.request.rc.fps = 30.0;
        rung.request.rc.pixels_per_frame =
            static_cast<double>(corpus.clips[req.clip].spec.width) *
            corpus.clips[req.clip].spec.height;
        rung.name = i == 0 ? "abr.vbc" : "crf.ngc";
        req.rungs.push_back(rung);
        workload.push_back(req);
    }

    service::ServiceConfig plain;
    plain.workers = 2;
    plain.admission_capacity = 64;
    plain.collect_outputs = true;
    service::TranscodeService baseline_service(plain, corpus);
    const service::ServiceResult baseline =
        baseline_service.run(workload);

    cache::CacheConfig cc;
    cc.policy = cache::CachePolicy::AlwaysStore;
    cache::TranscodeCache tc(cc);
    service::ServiceConfig cached = plain;
    cached.cache = &tc;
    service::TranscodeService cold_service(cached, corpus);
    const service::ServiceResult cold = cold_service.run(workload);

    std::vector<service::ServiceRequest> replayed = workload;
    for (service::ServiceRequest &req : replayed)
        req.id += 100;
    service::TranscodeService warm_service(cached, corpus);
    const service::ServiceResult warm = warm_service.run(replayed);

    bool ok = baseline.completed == workload.size() &&
        cold.completed == workload.size() &&
        warm.completed == workload.size();
    if (!ok) {
        std::fprintf(stderr, "FAIL: byte-identity runs incomplete\n");
        return false;
    }
    const uint64_t warm_hits = warm.cache_stats.hits;
    if (warm_hits == 0 || warm.cache_stats.misses != cold.cache_stats.misses) {
        std::fprintf(stderr,
                     "FAIL: warm pass not served from cache "
                     "(%llu hits)\n",
                     static_cast<unsigned long long>(warm_hits));
        ok = false;
    }
    for (const auto &[name, stream] : baseline.outputs) {
        const auto cold_it = cold.outputs.find(name);
        if (cold_it == cold.outputs.end() ||
            cold_it->second != stream) {
            std::fprintf(stderr,
                         "FAIL: cold cache output %s differs from "
                         "cache-off\n",
                         name.c_str());
            ok = false;
        }
        const size_t dot = name.find('.');
        const std::string warm_name =
            std::to_string(std::stoull(name.substr(0, dot)) + 100) +
            name.substr(dot);
        const auto warm_it = warm.outputs.find(warm_name);
        if (warm_it == warm.outputs.end() ||
            warm_it->second != stream) {
            std::fprintf(stderr,
                         "FAIL: warm cache output %s differs from "
                         "cache-off\n",
                         warm_name.c_str());
            ok = false;
        }
    }
    if (ok)
        std::printf("byte-identity: cache-off == cold == warm over "
                    "%zu outputs (%llu warm hits)\n",
                    baseline.outputs.size(),
                    static_cast<unsigned long long>(warm_hits));
    return ok;
}

bool
statsEqual(const cache::CacheStats &a, const cache::CacheStats &b)
{
    return a.lookups == b.lookups && a.hits == b.hits &&
        a.misses == b.misses && a.inserts == b.inserts &&
        a.admitted == b.admitted && a.rejected == b.rejected &&
        a.evictions == b.evictions &&
        a.resident_bytes == b.resident_bytes &&
        a.storage_dollars == b.storage_dollars &&
        a.compute_dollars == b.compute_dollars &&
        a.saved_dollars == b.saved_dollars;
}

/**
 * Gate for check.sh. The economics are pinned (skew 1.3, tau a sixth
 * of the window, rent calibrated at half a re-encode per tau) so the
 * comparison is the policy's to win: always_store drowns in tail
 * rent, always_recompute re-pays the head, cost_aware must land
 * strictly below both on Popular.
 */
int
runSmoke(uint64_t seed)
{
    const double kWindowS = 12.0;
    const double kTauS = 2.0;
    const double kRentMultiple = 0.7;
    const double kPopularS = 1.6;

    const service::Corpus corpus =
        service::buildCorpus(corpusSpecs(true), 8, 4);
    size_t failures = 0;
    const std::vector<ChainProfile> chains =
        profileChains(corpus, &failures);
    if (failures > 0) {
        std::fprintf(stderr, "FAIL: %zu segments failed to profile\n",
                     failures);
        return 1;
    }
    const double price =
        calibrateStoragePrice(chains, kTauS, kRentMultiple);
    std::printf("profiled %zu chains; storage price $%.4f/GB-hour "
                "(tau %.1fs, window %.1fs)\n",
                chains.size(), price, kTauS, kWindowS);

    bool ok = checkServiceByteIdentity(corpus);

    const std::vector<ScenarioShape> shapes = smokeShapes(kPopularS);
    // [scenario][policy]
    std::vector<std::vector<cache::CacheStats>> table;
    for (size_t s = 0; s < shapes.size(); ++s) {
        const std::vector<Arrival> arrivals =
            makeArrivals(shapes[s].requests, chains.size(),
                         shapes[s].zipf_s, kWindowS, seed + 1000 * s);
        std::vector<cache::CacheStats> row;
        for (int p = 0; p < cache::kNumCachePolicies; ++p)
            row.push_back(replay(
                chains, arrivals, kWindowS,
                policyConfig(static_cast<cache::CachePolicy>(p),
                             64ull << 20, price, kTauS)));
        std::printf("\n== %s (%zu requests, zipf s=%.1f) ==\n",
                    kScenarioNames[s], shapes[s].requests,
                    shapes[s].zipf_s);
        printPolicyTable(row);

        // Determinism: the same seed must reproduce cost_aware's
        // stats bit for bit.
        const cache::CacheStats again = replay(
            chains, arrivals, kWindowS,
            policyConfig(cache::CachePolicy::CostAware, 64ull << 20,
                         price, kTauS));
        if (!statsEqual(
                again,
                row[static_cast<size_t>(
                    cache::CachePolicy::CostAware)])) {
            std::fprintf(stderr, "FAIL: %s replay not deterministic\n",
                         kScenarioNames[s]);
            ok = false;
        }
        table.push_back(std::move(row));
    }

    const auto policyStat = [&](size_t s, cache::CachePolicy p)
        -> const cache::CacheStats & {
        return table[s][static_cast<size_t>(p)];
    };
    const cache::CacheStats &pop_aware =
        policyStat(0, cache::CachePolicy::CostAware);
    const cache::CacheStats &pop_store =
        policyStat(0, cache::CachePolicy::AlwaysStore);
    const cache::CacheStats &pop_rec =
        policyStat(0, cache::CachePolicy::AlwaysRecompute);
    if (pop_aware.hits == 0) {
        std::fprintf(stderr, "FAIL: Popular cost_aware had no hits\n");
        ok = false;
    }
    if (!(pop_aware.totalDollars() < pop_store.totalDollars() &&
          pop_aware.totalDollars() < pop_rec.totalDollars())) {
        std::fprintf(stderr,
                     "FAIL: Popular cost_aware $%.7f not strictly "
                     "below always_store $%.7f and always_recompute "
                     "$%.7f\n",
                     pop_aware.totalDollars(),
                     pop_store.totalDollars(), pop_rec.totalDollars());
        ok = false;
    }
    double sum_aware = 0, sum_store = 0, sum_rec = 0;
    for (size_t s = 0; s < table.size(); ++s) {
        sum_aware +=
            policyStat(s, cache::CachePolicy::CostAware).totalDollars();
        sum_store += policyStat(s, cache::CachePolicy::AlwaysStore)
                         .totalDollars();
        sum_rec += policyStat(s, cache::CachePolicy::AlwaysRecompute)
                       .totalDollars();
    }
    if (sum_aware > sum_store || sum_aware > sum_rec) {
        std::fprintf(stderr,
                     "FAIL: overall cost_aware $%.7f above a naive "
                     "baseline (store $%.7f, recompute $%.7f)\n",
                     sum_aware, sum_store, sum_rec);
        ok = false;
    }
    std::printf("\ncache smoke: %s (Popular cost_aware $%.7f vs "
                "always_store $%.7f, always_recompute $%.7f; "
                "overall $%.7f vs $%.7f / $%.7f)\n",
                ok ? "ok" : "FAILED", pop_aware.totalDollars(),
                pop_store.totalDollars(), pop_rec.totalDollars(),
                sum_aware, sum_store, sum_rec);
    return ok ? 0 : 1;
}

int
writeJson(const std::string &path, uint64_t seed, double price,
          double tau_s, double window_s,
          const std::vector<double> &skews,
          const std::vector<size_t> &capacities,
          const std::vector<std::vector<std::vector<cache::CacheStats>>>
              &sweep)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{%s\"seed\":%llu,\"storage_gb_hour\":%.6f,"
                 "\"tau_s\":%.2f,\"window_s\":%.2f,\"sweeps\":[",
                 bench::jsonMetaFields().c_str(),
                 static_cast<unsigned long long>(seed), price, tau_s,
                 window_s);
    for (size_t z = 0; z < skews.size(); ++z) {
        std::fprintf(f, "%s{\"zipf_s\":%.2f,\"capacities\":[",
                     z ? "," : "", skews[z]);
        for (size_t c = 0; c < capacities.size(); ++c) {
            std::fprintf(f, "%s{\"bytes\":%zu,\"policies\":[",
                         c ? "," : "", capacities[c]);
            for (int p = 0; p < cache::kNumCachePolicies; ++p) {
                const cache::CacheStats &s =
                    sweep[z][c][static_cast<size_t>(p)];
                std::fprintf(
                    f,
                    "%s{\"name\":\"%s\",\"lookups\":%llu,"
                    "\"hits\":%llu,\"hit_rate\":%.4f,"
                    "\"resident_bytes\":%llu,\"evictions\":%llu,"
                    "\"storage_dollars\":%.8f,"
                    "\"compute_dollars\":%.8f,"
                    "\"saved_dollars\":%.8f,\"total_dollars\":%.8f}",
                    p ? "," : "",
                    cache::policyName(
                        static_cast<cache::CachePolicy>(p)),
                    static_cast<unsigned long long>(s.lookups),
                    static_cast<unsigned long long>(s.hits),
                    s.hitRate(),
                    static_cast<unsigned long long>(s.resident_bytes),
                    static_cast<unsigned long long>(s.evictions),
                    s.storage_dollars, s.compute_dollars,
                    s.saved_dollars, s.totalDollars());
            }
            std::fprintf(f, "]}");
        }
        std::fprintf(f, "]}");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}

int
runFull(const std::string &json_path, uint64_t seed)
{
    bench::printHeader(
        "transcode output cache: store vs recompute economics",
        "popular-content reuse: storage rent vs re-encode dollars "
        "under Zipf demand");

    const double kWindowS = 12.0;
    const double kTauS = 2.0;
    const core::RuntimeConfig &env = core::runtimeConfig();

    const int segment_frames = service::segmentFramesFromEnv(4);
    const service::Corpus corpus =
        service::buildCorpus(corpusSpecs(false), 16, segment_frames);
    size_t failures = 0;
    const std::vector<ChainProfile> chains =
        profileChains(corpus, &failures);
    if (failures > 0)
        std::fprintf(stderr, "warning: %zu segments failed to profile "
                             "(skipped)\n",
                     failures);
    const double price = env.cache_gb_hour > 0
        ? env.cache_gb_hour
        : calibrateStoragePrice(chains, kTauS, 0.5);
    std::printf("profiled %zu chains; storage price $%.4f/GB-hour%s "
                "(tau %.1fs, window %.1fs)\n\n",
                chains.size(), price,
                env.cache_gb_hour > 0 ? " (VBENCH_CACHE_GB_HOUR)" : "",
                kTauS, kWindowS);

    const std::vector<double> skews = env.zipf_s > 0
        ? std::vector<double>{env.zipf_s}
        : std::vector<double>{0.6, 1.0, 1.4};
    std::vector<size_t> capacities;
    if (env.cache_mb > 0) {
        capacities.push_back(
            static_cast<size_t>(env.cache_mb * (1 << 20)));
    } else {
        // Small enough that eviction quality shows, plus an ample
        // ceiling where only admission economics differ.
        capacities = {32ull << 10, 256ull << 10, 64ull << 20};
    }

    std::vector<std::vector<std::vector<cache::CacheStats>>> sweep;
    for (const double s : skews) {
        const std::vector<Arrival> arrivals = makeArrivals(
            60, chains.size(), s, kWindowS, seed);
        std::vector<std::vector<cache::CacheStats>> by_capacity;
        for (const size_t capacity : capacities) {
            std::vector<cache::CacheStats> row;
            for (int p = 0; p < cache::kNumCachePolicies; ++p)
                row.push_back(replay(
                    chains, arrivals, kWindowS,
                    policyConfig(static_cast<cache::CachePolicy>(p),
                                 capacity, price, kTauS)));
            std::printf("== zipf s=%.2f, capacity %zu KB ==\n", s,
                        capacity >> 10);
            printPolicyTable(row);
            std::printf("\n");
            by_capacity.push_back(std::move(row));
        }
        sweep.push_back(std::move(by_capacity));
    }
    return writeJson(json_path, seed, price, kTauS, kWindowS, skews,
                     capacities, sweep);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = "BENCH_cache.json";
    uint64_t seed = 40;
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--out" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--seed" && i + 1 < argc) {
            char *end = nullptr;
            seed = std::strtoull(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0') {
                std::fprintf(stderr, "--seed wants an integer, got "
                                     "%s\n",
                             argv[i]);
                return 2;
            }
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--seed N] [--out FILE]\n",
                         argv[0]);
            return 2;
        }
    }
    return smoke ? runSmoke(seed) : runFull(json_path, seed);
}
