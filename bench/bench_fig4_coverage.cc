/**
 * @file
 * Figure 4: corpus coverage scatter — the (resolution, entropy) plane
 * of the upload corpus, with the public datasets and the vbench
 * selection overlaid. Also exercises the full §4.1 selection pipeline
 * (weighted k-means over 3500+ categories, mode-of-cluster
 * representatives) and prints the selected categories Table-2 style.
 */

#include <cstdio>
#include <iostream>

#include "core/report.h"
#include "corpus/generator.h"
#include "corpus/kmeans.h"
#include "video/suite.h"

int
main()
{
    using namespace vbench;

    std::printf("== vbench: Figure 4 — corpus coverage ==\n");
    std::printf("reproduces: Fig. 4 (entropy vs resolution scatter) and "
                "the §4.1 selection pipeline\n\n");

    const auto corpus = corpus::generateCorpus();
    std::printf("corpus: %zu weighted categories\n", corpus.size());

    // Scatter of the corpus itself (subsampled for readability).
    std::vector<std::pair<double, double>> cloud;
    for (size_t i = 0; i < corpus.size(); i += 8)
        cloud.emplace_back(corpus[i].kpixels, corpus[i].entropy);
    core::printSeries(std::cout, "corpus_kpixels_vs_entropy", cloud);

    // Dataset overlays.
    auto overlay = [&](const char *name,
                       const std::vector<video::ClipSpec> &suite) {
        std::vector<std::pair<double, double>> points;
        for (const auto &spec : suite)
            points.emplace_back(spec.kpixels(), spec.target_entropy);
        core::printSeries(std::cout, name, points);
    };
    overlay("vbench", video::vbenchSuite());
    overlay("netflix", video::netflixSuite());
    overlay("xiph", video::xiphSuite());
    overlay("spec2017", video::specSuite());

    // The selection pipeline itself.
    corpus::KmeansConfig cfg;
    cfg.k = 15;
    const auto selected = corpus::selectBenchmarkCategories(corpus, cfg);
    core::Table table({"kpixel", "fps", "entropy", "weight_pct"});
    double covered = 0;
    for (const auto &c : selected) {
        table.addRow({std::to_string(c.kpixels), std::to_string(c.fps),
                      core::fmt(c.entropy, 1),
                      core::fmt(c.weight * 100, 3)});
        covered += c.weight;
    }
    std::printf("\nselected categories (k-means modes, k=15):\n");
    table.print(std::cout);

    // Coverage statistics per dataset: weighted distance of every
    // corpus category to its nearest dataset clip in feature space.
    const auto range = corpus::featureRange(corpus);
    auto coverageCost = [&](const std::vector<video::ClipSpec> &suite) {
        double cost = 0;
        for (const auto &c : corpus) {
            const auto fc = corpus::normalize(corpus::rawFeatures(c),
                                              range);
            double best = 1e30;
            for (const auto &spec : suite) {
                corpus::VideoCategory as_cat;
                as_cat.kpixels = spec.kpixels();
                as_cat.fps = static_cast<int>(spec.fps);
                as_cat.entropy = spec.target_entropy;
                const auto fs = corpus::normalize(
                    corpus::rawFeatures(as_cat), range);
                best = std::min(best, corpus::distance2(fc, fs));
            }
            cost += c.weight * best;
        }
        return cost;
    };

    core::Table cov({"dataset", "clips", "weighted_coverage_cost"});
    cov.addRow({"vbench", std::to_string(video::vbenchSuite().size()),
                core::fmt(coverageCost(video::vbenchSuite()), 4)});
    cov.addRow({"netflix", std::to_string(video::netflixSuite().size()),
                core::fmt(coverageCost(video::netflixSuite()), 4)});
    cov.addRow({"xiph", std::to_string(video::xiphSuite().size()),
                core::fmt(coverageCost(video::xiphSuite()), 4)});
    cov.addRow({"spec2017", std::to_string(video::specSuite().size()),
                core::fmt(coverageCost(video::specSuite()), 4)});
    std::printf("\n");
    cov.print(std::cout);

    std::printf("\nshape check: vbench's coverage cost is the lowest — it"
                " was selected from\nthe corpus; Netflix (one resolution,"
                " high entropy only) and SPEC (two\nnear-identical clips)"
                " leave most of the corpus uncovered.\n");
    return 0;
}
