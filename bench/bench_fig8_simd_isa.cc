/**
 * @file
 * Figure 8: cycle breakdown of one VOD transcode as SIMD instruction
 * sets are progressively enabled (scalar -> SSE -> ... -> AVX2),
 * normalized to the AVX2 build; plus the §5.2 Amdahl analysis of a
 * hypothetical 2x-wider SIMD extension.
 *
 * One instrumented transcode collects the per-kernel work profile; the
 * dispatch model then re-costs it at every ISA level — exactly how the
 * per-function SIMD dispatch of a real encoder behaves.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "core/report.h"
#include "uarch/tracesim.h"
#include "video/suite.h"

int
main()
{
    using namespace vbench;

    bench::printHeader("Figure 8 — SIMD ISA sweep",
                       "Fig. 8 (cycles by ISA, normalized to AVX2) and "
                       "the §5.2 Amdahl bound");

    // One representative VOD transcode (720p natural content).
    video::ClipSpec spec{"fig8_clip", 1280, 720, 30,
                         video::ContentClass::Natural, 2.5, 888};
    const video::Video clip = video::synthesizeClip(spec, 8);
    const codec::ByteBuffer universal = core::makeUniversalStream(clip);

    uarch::TraceSimulator sim;
    core::TranscodeRequest req = core::referenceRequest(
        core::Scenario::Vod, clip.width(), clip.height(), clip.fps());
    req.probe = &sim;
    core::transcode(universal, clip, req);
    const uarch::UarchReport report = sim.report();

    const uarch::IsaLevel levels[] = {
        uarch::IsaLevel::Scalar, uarch::IsaLevel::SSE,
        uarch::IsaLevel::SSE2,   uarch::IsaLevel::SSE3,
        uarch::IsaLevel::SSE4,   uarch::IsaLevel::AVX,
        uarch::IsaLevel::AVX2,
    };

    const double avx2_total =
        uarch::simdCycles(report.work, uarch::IsaLevel::AVX2).total();

    core::Table table({"enabled_isa", "total_norm_avx2", "scalar",
                       "sse", "sse2", "sse3", "sse4", "avx", "avx2"});
    for (uarch::IsaLevel level : levels) {
        const uarch::CycleBreakdown b =
            uarch::simdCycles(report.work, level);
        std::vector<std::string> row{uarch::isaName(level),
                                     core::fmt(b.total() / avx2_total, 3)};
        for (int i = 0; i < uarch::kNumIsaLevels; ++i)
            row.push_back(core::fmt(b.cycles[i] / avx2_total, 3));
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    // §5.2 numbers: SSE2->AVX2 gain and the hypothetical 512-bit bound.
    const double sse2_total =
        uarch::simdCycles(report.work, uarch::IsaLevel::SSE2).total();
    const uarch::CycleBreakdown avx2 =
        uarch::simdCycles(report.work, uarch::IsaLevel::AVX2);
    const double avx2_share =
        avx2.cycles[static_cast<int>(uarch::IsaLevel::AVX2)];
    // Perfect 2x scaling of the AVX2-resident cycles only.
    const double hypothetical_512 = avx2_total - avx2_share / 2.0;

    std::printf("\nSSE2 -> AVX2 total speedup: %.1f%%  (paper: ~15%%)\n",
                (sse2_total / avx2_total - 1.0) * 100);
    std::printf("scalar share at AVX2: %.1f%%  (paper: ~60%%)\n",
                avx2.scalarFraction() * 100);
    std::printf("AVX2-resident share: %.1f%%  (paper: ~15%%)\n",
                avx2_share / avx2_total * 100);
    std::printf("Amdahl bound of a 2x-wider SIMD: %.1f%% speedup "
                "(paper: <10%%)\n",
                (avx2_total / hypothetical_512 - 1.0) * 100);
    return 0;
}
