/**
 * @file
 * Pixel-kernel micro-benchmarks over the runtime dispatch tables.
 *
 * Default mode times every kernel once per ISA level available on the
 * host, prints a table, and writes BENCH_kernels.json with ns/op and
 * speedup-vs-scalar per kernel per ISA, plus an end-to-end encode
 * timing per ISA. Two auxiliary modes support scripts/check.sh:
 *
 *   --smoke   quick randomized scalar-vs-vector equivalence check;
 *             exits nonzero on any mismatch.
 *   --digest  encode a deterministic synthetic clip with both codecs
 *             under the dispatch-selected ISA and print stream bytes,
 *             a stream hash, and quality scores — byte-identical
 *             output across VBENCH_ISA settings by construction.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "codec/decoder.h"
#include "codec/encoder.h"
#include "kernels/kernel_ops.h"
#include "metrics/psnr.h"
#include "metrics/ssim.h"
#include "ngc/ngc_encoder.h"
#include "video/rng.h"
#include "video/synth.h"

namespace {

using namespace vbench;
using kernels::Isa;
using kernels::KernelOps;
using Clock = std::chrono::steady_clock;

volatile uint64_t g_sink = 0;

std::vector<Isa>
availableLevels()
{
    std::vector<Isa> out;
    for (const Isa isa : {Isa::Scalar, Isa::Sse2, Isa::Avx2}) {
        if (kernels::opsFor(isa) != nullptr)
            out.push_back(isa);
    }
    return out;
}

/** Shared deterministic input data, built once. */
struct BenchData {
    std::vector<uint8_t> plane_a;
    std::vector<uint8_t> plane_b;
    int stride = 640;
    int height = 360;
    int16_t residual64[64];
    int32_t coefs16[16];
    int32_t coefs64[64];
    int16_t levels16[16];
    uint32_t offsets[64];

    BenchData()
    {
        video::Rng rng(7);
        plane_a.resize(static_cast<size_t>(stride) * height);
        plane_b.resize(plane_a.size());
        for (size_t i = 0; i < plane_a.size(); ++i) {
            plane_a[i] = static_cast<uint8_t>(rng.below(256));
            plane_b[i] = static_cast<uint8_t>(rng.below(256));
        }
        for (auto &v : residual64)
            v = static_cast<int16_t>(rng.range(-255, 255));
        for (auto &v : coefs16)
            v = static_cast<int32_t>(rng.range(-2048, 2048));
        for (auto &v : coefs64)
            v = static_cast<int32_t>(rng.range(-2048, 2048));
        for (auto &v : levels16)
            v = static_cast<int16_t>(rng.range(-64, 64));
        // Varied block positions so SAD-style kernels do not hit one
        // cache line forever; keep 16x16 reads in bounds.
        for (auto &o : offsets)
            o = static_cast<uint32_t>(
                rng.below(static_cast<uint64_t>(stride) * (height - 24)));
    }
};

using BenchFn =
    std::function<void(const KernelOps &, const BenchData &, long)>;

struct KernelBench {
    const char *name;
    BenchFn run; ///< executes `iters` ops against one dispatch table
};

std::vector<KernelBench>
kernelBenches()
{
    std::vector<KernelBench> out;
    out.push_back({"sad_16x16", [](const KernelOps &k, const BenchData &d,
                                   long iters) {
                       uint64_t acc = 0;
                       for (long i = 0; i < iters; ++i) {
                           const uint32_t o = d.offsets[i & 63];
                           acc += k.sad(d.plane_a.data() + o, d.stride,
                                        d.plane_b.data() + o, d.stride,
                                        16, 16);
                       }
                       g_sink = g_sink + acc;
                   }});
    out.push_back({"satd_8x8", [](const KernelOps &k, const BenchData &d,
                                  long iters) {
                       uint64_t acc = 0;
                       for (long i = 0; i < iters; ++i) {
                           const uint32_t o = d.offsets[i & 63];
                           acc += k.satd(d.plane_a.data() + o, d.stride,
                                         d.plane_b.data() + o, d.stride,
                                         8, 8);
                       }
                       g_sink = g_sink + acc;
                   }});
    out.push_back({"copy2d_16x16", [](const KernelOps &k,
                                      const BenchData &d, long iters) {
                       uint8_t dst[16 * 16];
                       for (long i = 0; i < iters; ++i)
                           k.copy2d(d.plane_a.data() + d.offsets[i & 63],
                                    d.stride, dst, 16, 16, 16);
                       g_sink = g_sink + dst[0];
                   }});
    out.push_back({"interp_h_16x16", [](const KernelOps &k,
                                        const BenchData &d, long iters) {
                       uint8_t dst[16 * 16];
                       for (long i = 0; i < iters; ++i)
                           k.interpH(d.plane_a.data() + d.offsets[i & 63],
                                     d.stride, dst, 16, 16, 16);
                       g_sink = g_sink + dst[0];
                   }});
    out.push_back({"interp_hv_16x16", [](const KernelOps &k,
                                         const BenchData &d, long iters) {
                       uint8_t dst[16 * 16];
                       for (long i = 0; i < iters; ++i)
                           k.interpHV(d.plane_a.data() + d.offsets[i & 63],
                                      d.stride, dst, 16, 16, 16);
                       g_sink = g_sink + dst[0];
                   }});
    out.push_back({"fwd_tx4x4", [](const KernelOps &k, const BenchData &d,
                                   long iters) {
                       int32_t coefs[16];
                       for (long i = 0; i < iters; ++i)
                           k.fwdTx4x4(d.residual64, coefs);
                       g_sink = g_sink + static_cast<uint64_t>(coefs[0]);
                   }});
    out.push_back({"inv_tx4x4", [](const KernelOps &k, const BenchData &d,
                                   long iters) {
                       int16_t res[16];
                       for (long i = 0; i < iters; ++i)
                           k.invTx4x4(d.coefs16, res);
                       g_sink = g_sink + static_cast<uint64_t>(res[0]);
                   }});
    out.push_back({"fwd_tx8x8", [](const KernelOps &k, const BenchData &d,
                                   long iters) {
                       int32_t coefs[64];
                       for (long i = 0; i < iters; ++i)
                           k.fwdTx8x8(d.residual64, coefs);
                       g_sink = g_sink + static_cast<uint64_t>(coefs[0]);
                   }});
    out.push_back({"inv_tx8x8", [](const KernelOps &k, const BenchData &d,
                                   long iters) {
                       int16_t res[64];
                       for (long i = 0; i < iters; ++i)
                           k.invTx8x8(d.coefs64, res);
                       g_sink = g_sink + static_cast<uint64_t>(res[0]);
                   }});
    out.push_back({"quant4x4", [](const KernelOps &k, const BenchData &d,
                                  long iters) {
                       int16_t levels[16];
                       uint64_t acc = 0;
                       for (long i = 0; i < iters; ++i)
                           acc += static_cast<uint64_t>(
                               k.quant4x4(d.coefs16, levels, 30, false));
                       g_sink = g_sink + acc;
                   }});
    out.push_back({"dequant4x4", [](const KernelOps &k, const BenchData &d,
                                    long iters) {
                       int32_t coefs[16];
                       for (long i = 0; i < iters; ++i)
                           k.dequant4x4(d.levels16, coefs, 30);
                       g_sink = g_sink + static_cast<uint64_t>(coefs[0]);
                   }});
    out.push_back({"diff_8x8", [](const KernelOps &k, const BenchData &d,
                                  long iters) {
                       int16_t res[64];
                       for (long i = 0; i < iters; ++i) {
                           const uint32_t o = d.offsets[i & 63];
                           k.diffBlock(d.plane_a.data() + o, d.stride,
                                       d.plane_b.data() + o, d.stride,
                                       res, 8, 8, 8);
                       }
                       g_sink = g_sink + static_cast<uint64_t>(res[0]);
                   }});
    out.push_back({"add_clamp_8x8", [](const KernelOps &k,
                                       const BenchData &d, long iters) {
                       uint8_t dst[64];
                       for (long i = 0; i < iters; ++i)
                           k.addClampBlock(
                               d.plane_a.data() + d.offsets[i & 63],
                               d.stride, d.residual64, 8, dst, 8, 8, 8);
                       g_sink = g_sink + dst[0];
                   }});
    out.push_back({"deblock_edge_h16", [](const KernelOps &k,
                                          const BenchData &d, long iters) {
                       // Filter writes in place: use a private copy.
                       std::vector<uint8_t> buf = d.plane_a;
                       for (long i = 0; i < iters; ++i)
                           k.deblockEdgeH(buf.data() + 8 * d.stride +
                                              (i & 31) * 16 + 16,
                                          d.stride, 16, 40, 10, 4);
                       g_sink = g_sink + buf[8 * d.stride + 16];
                   }});
    out.push_back({"sse8_64k", [](const KernelOps &k, const BenchData &d,
                                  long iters) {
                       uint64_t acc = 0;
                       for (long i = 0; i < iters; ++i)
                           acc += k.sse8(d.plane_a.data(),
                                         d.plane_b.data(), 65536);
                       g_sink = g_sink + acc;
                   }});
    out.push_back({"ssim_window_8x8", [](const KernelOps &k,
                                         const BenchData &d, long iters) {
                       uint32_t sums[5];
                       uint64_t acc = 0;
                       for (long i = 0; i < iters; ++i) {
                           const uint32_t o = d.offsets[i & 63];
                           k.ssimWindowSums(d.plane_a.data() + o, d.stride,
                                            d.plane_b.data() + o,
                                            d.stride, 8, 8, sums);
                           acc += sums[4];
                       }
                       g_sink = g_sink + acc;
                   }});
    return out;
}

/**
 * ns per op: grow the repetition count until one timed run exceeds
 * ~8 ms, then report the best of three runs at that count.
 */
double
measureNsPerOp(const KernelOps &k, const BenchData &d, const BenchFn &fn)
{
    fn(k, d, 256); // warmup
    long iters = 256;
    double elapsed_ns = 0;
    for (;;) {
        const auto t0 = Clock::now();
        fn(k, d, iters);
        elapsed_ns =
            std::chrono::duration<double, std::nano>(Clock::now() - t0)
                .count();
        if (elapsed_ns > 8e6 || iters > (1l << 28))
            break;
        iters *= 4;
    }
    double best = elapsed_ns / static_cast<double>(iters);
    for (int rep = 0; rep < 2; ++rep) {
        const auto t0 = Clock::now();
        fn(k, d, iters);
        const double ns =
            std::chrono::duration<double, std::nano>(Clock::now() - t0)
                .count() /
            static_cast<double>(iters);
        if (ns < best)
            best = ns;
    }
    return best;
}

video::Video
digestClip()
{
    return video::synthesize(
        video::presetFor(video::ContentClass::Natural, 144, 112, 30.0, 4,
                         123),
        "bench-kernels");
}

struct EncodeDigest {
    std::vector<uint8_t> vbc;
    std::vector<uint8_t> ngc;
    double psnr = 0;
    double ssim = 0;
    double vbc_seconds = 0;
    double ngc_seconds = 0;
};

EncodeDigest
encodeDigest(const video::Video &clip)
{
    EncodeDigest out;

    codec::EncoderConfig vbc_cfg;
    vbc_cfg.rc.mode = codec::RcMode::Cqp;
    vbc_cfg.rc.qp = 30;
    vbc_cfg.effort = 2;
    vbc_cfg.gop = 4;
    codec::Encoder vbc(vbc_cfg);
    auto t0 = Clock::now();
    auto vbc_out = vbc.encode(clip);
    out.vbc_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    out.vbc = std::move(vbc_out.stream);

    ngc::NgcConfig ngc_cfg;
    ngc_cfg.rc.mode = codec::RcMode::Cqp;
    ngc_cfg.rc.qp = 30;
    ngc_cfg.speed = 1;
    ngc_cfg.gop = 4;
    ngc::NgcEncoder ngc(ngc_cfg);
    t0 = Clock::now();
    auto ngc_out = ngc.encode(clip);
    out.ngc_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    out.ngc = std::move(ngc_out.stream);

    const auto decoded = codec::decode(out.vbc);
    if (decoded) {
        out.psnr = metrics::videoPsnr(clip, *decoded);
        out.ssim = metrics::videoSsim(clip, *decoded);
    }
    return out;
}

uint64_t
fnv1a(const std::vector<uint8_t> &data)
{
    uint64_t h = 0xCBF29CE484222325ull;
    for (const uint8_t b : data) {
        h ^= b;
        h *= 0x100000001B3ull;
    }
    return h;
}

/** --digest: deterministic lines for scripts/check.sh to diff. */
int
runDigest()
{
    const video::Video clip = digestClip();
    const EncodeDigest d = encodeDigest(clip);
    if (d.vbc.empty() || d.ngc.empty()) {
        std::fprintf(stderr, "digest: encode produced no stream\n");
        return 1;
    }
    std::printf("vbc bytes=%zu hash=%016llx\n", d.vbc.size(),
                static_cast<unsigned long long>(fnv1a(d.vbc)));
    std::printf("ngc bytes=%zu hash=%016llx\n", d.ngc.size(),
                static_cast<unsigned long long>(fnv1a(d.ngc)));
    std::printf("vbc psnr=%.12f ssim=%.12f\n", d.psnr, d.ssim);
    return 0;
}

/**
 * --smoke: a fast randomized equivalence spot-check of every vector
 * table against scalar (the exhaustive version lives in
 * tests/kernels/test_kernels_equiv.cc).
 */
int
runSmoke()
{
    const KernelOps *scalar = kernels::opsFor(Isa::Scalar);
    int failures = 0;
    video::Rng rng(99);

    auto check = [&](bool ok, const char *isa, const char *what) {
        if (!ok) {
            std::fprintf(stderr, "smoke: %s mismatch on %s\n", what, isa);
            ++failures;
        }
    };

    for (const Isa isa : availableLevels()) {
        if (isa == Isa::Scalar)
            continue;
        const KernelOps *k = kernels::opsFor(isa);
        for (int trial = 0; trial < 16; ++trial) {
            const int w = 1 + static_cast<int>(rng.below(33));
            const int h = 1 + static_cast<int>(rng.below(17));
            const int stride = w + static_cast<int>(rng.below(9));
            std::vector<uint8_t> a(static_cast<size_t>(stride) * (h + 4));
            std::vector<uint8_t> b(a.size());
            for (size_t i = 0; i < a.size(); ++i) {
                a[i] = static_cast<uint8_t>(rng.below(256));
                b[i] = static_cast<uint8_t>(rng.below(256));
            }
            check(k->sad(a.data(), stride, b.data(), stride, w, h) ==
                      scalar->sad(a.data(), stride, b.data(), stride, w,
                                  h),
                  k->name, "sad");
            std::vector<uint8_t> o1(static_cast<size_t>(w) * h);
            std::vector<uint8_t> o2(o1.size());
            k->interpHV(a.data(), stride, o1.data(), w, w, h);
            scalar->interpHV(a.data(), stride, o2.data(), w, w, h);
            check(o1 == o2, k->name, "interpHV");
            check(k->sse8(a.data(), b.data(), a.size()) ==
                      scalar->sse8(a.data(), b.data(), a.size()),
                  k->name, "sse8");

            int16_t res[64];
            for (auto &v : res)
                v = static_cast<int16_t>(rng.range(-255, 255));
            int32_t c1[64], c2[64];
            k->fwdTx8x8(res, c1);
            scalar->fwdTx8x8(res, c2);
            check(std::memcmp(c1, c2, sizeof(c1)) == 0, k->name,
                  "fwdTx8x8");
            int16_t l1[16], l2[16];
            const int nz1 = k->quant4x4(c1, l1, 30, false);
            const int nz2 = scalar->quant4x4(c2, l2, 30, false);
            check(nz1 == nz2 && std::memcmp(l1, l2, sizeof(l1)) == 0,
                  k->name, "quant4x4");
            int32_t d1[16], d2[16];
            k->dequant4x4(l1, d1, 30);
            scalar->dequant4x4(l2, d2, 30);
            check(std::memcmp(d1, d2, sizeof(d1)) == 0, k->name,
                  "dequant4x4");
            int16_t r1[16], r2[16];
            k->invTx4x4(d1, r1);
            scalar->invTx4x4(d2, r2);
            check(std::memcmp(r1, r2, sizeof(r1)) == 0, k->name,
                  "invTx4x4");
        }
    }
    if (failures == 0)
        std::printf("smoke: OK (%s active, %zu ISA levels)\n",
                    kernels::ops().name, availableLevels().size());
    return failures == 0 ? 0 : 1;
}

int
runBench(const std::string &json_path)
{
    const BenchData data;
    const std::vector<KernelBench> benches = kernelBenches();
    const std::vector<Isa> levels = availableLevels();

    std::printf("%-18s", "kernel");
    for (const Isa isa : levels)
        std::printf("  %10s ns/op  speedup", kernels::isaName(isa));
    std::printf("\n");

    // results[b][l] = ns/op for bench b at ISA level l.
    std::vector<std::vector<double>> results(
        benches.size(), std::vector<double>(levels.size(), 0.0));
    for (size_t b = 0; b < benches.size(); ++b) {
        for (size_t l = 0; l < levels.size(); ++l)
            results[b][l] = measureNsPerOp(*kernels::opsFor(levels[l]),
                                           data, benches[b].run);
        std::printf("%-18s", benches[b].name);
        for (size_t l = 0; l < levels.size(); ++l)
            std::printf("  %16.1f  %6.2fx", results[b][l],
                        results[b][0] / results[b][l]);
        std::printf("\n");
    }

    // End-to-end encode timing per ISA: the paper-level view of the
    // same kernels (whole-clip VBC + NGC encode wall time).
    const video::Video clip = digestClip();
    std::vector<double> e2e_seconds;
    std::printf("%-18s", "encode_e2e");
    for (const Isa isa : levels) {
        kernels::ScopedKernelIsa pin(isa);
        const EncodeDigest d = encodeDigest(clip);
        e2e_seconds.push_back(d.vbc_seconds + d.ngc_seconds);
        std::printf("  %14.1fms  %6.2fx", e2e_seconds.back() * 1e3,
                    e2e_seconds.front() / e2e_seconds.back());
    }
    std::printf("\n");

    std::FILE *f = std::fopen(json_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(f, "{%s\"host_best_isa\":\"%s\",\"kernels\":[",
                 bench::jsonMetaFields().c_str(),
                 kernels::isaName(kernels::detectBestIsa()));
    for (size_t b = 0; b < benches.size(); ++b) {
        std::fprintf(f, "%s{\"name\":\"%s\",\"results\":[", b ? "," : "",
                     benches[b].name);
        for (size_t l = 0; l < levels.size(); ++l)
            std::fprintf(f,
                         "%s{\"isa\":\"%s\",\"ns_per_op\":%.3f,"
                         "\"speedup_vs_scalar\":%.3f}",
                         l ? "," : "", kernels::isaName(levels[l]),
                         results[b][l], results[b][0] / results[b][l]);
        std::fprintf(f, "]}");
    }
    std::fprintf(f, "],\"encode_e2e\":[");
    for (size_t l = 0; l < levels.size(); ++l)
        std::fprintf(f,
                     "%s{\"isa\":\"%s\",\"encode_ms\":%.3f,"
                     "\"speedup_vs_scalar\":%.3f}",
                     l ? "," : "", kernels::isaName(levels[l]),
                     e2e_seconds[l] * 1e3,
                     e2e_seconds[0] / e2e_seconds[l]);
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = "BENCH_kernels.json";
    bool smoke = false;
    bool digest = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--digest") {
            digest = true;
        } else if (arg == "--out" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--digest] [--out FILE]\n",
                         argv[0]);
            return 2;
        }
    }
    if (smoke)
        return runSmoke();
    if (digest)
        return runDigest();
    return runBench(json_path);
}
