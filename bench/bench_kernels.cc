/**
 * @file
 * Kernel micro-benchmarks (google-benchmark): the hot loops of the
 * transcoding pipeline. Useful for platform comparisons and for
 * sanity-checking the SIMD-model assumptions about which kernels
 * dominate.
 */

#include <benchmark/benchmark.h>

#include "codec/deblock.h"
#include "codec/interp.h"
#include "codec/intra.h"
#include "codec/me.h"
#include "codec/rangecoder.h"
#include "codec/refplane.h"
#include "codec/transform.h"
#include "ngc/transform8.h"
#include "video/rng.h"

namespace {

using namespace vbench;
using codec::RefPlane;
using video::Plane;

Plane
randomPlane(int w, int h, uint64_t seed)
{
    video::Rng rng(seed);
    Plane p(w, h);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            p.at(x, y) = static_cast<uint8_t>(rng.below(256));
    return p;
}

void
BM_Sad16x16(benchmark::State &state)
{
    const Plane a = randomPlane(640, 360, 1);
    const Plane b = randomPlane(640, 360, 2);
    int x = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(codec::sadBlock(
            a.row(64) + (x & 255), 640, b.row(80) + ((x + 7) & 255), 640,
            16, 16));
        ++x;
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_Sad16x16);

void
BM_ForwardTransform4x4(benchmark::State &state)
{
    video::Rng rng(3);
    int16_t in[16];
    for (auto &v : in)
        v = static_cast<int16_t>(rng.range(-255, 255));
    int32_t out[16];
    for (auto _ : state) {
        codec::forwardTransform4x4(in, out);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_ForwardTransform4x4);

void
BM_QuantDequant4x4(benchmark::State &state)
{
    video::Rng rng(4);
    int16_t in[16];
    for (auto &v : in)
        v = static_cast<int16_t>(rng.range(-255, 255));
    int32_t coefs[16];
    codec::forwardTransform4x4(in, coefs);
    int16_t levels[16];
    int32_t deq[16];
    for (auto _ : state) {
        codec::quantize4x4(coefs, levels, 26, false);
        codec::dequantize4x4(levels, deq, 26);
        benchmark::DoNotOptimize(deq);
    }
}
BENCHMARK(BM_QuantDequant4x4);

void
BM_HierarchicalTransform8x8(benchmark::State &state)
{
    video::Rng rng(5);
    int16_t in[64];
    for (auto &v : in)
        v = static_cast<int16_t>(rng.range(-255, 255));
    int16_t dc[4];
    int16_t ac[64];
    for (auto _ : state) {
        ngc::forwardTransform8x8(in, dc, ac, 26, false);
        benchmark::DoNotOptimize(ac);
    }
}
BENCHMARK(BM_HierarchicalTransform8x8);

void
BM_HalfPelInterp16x16(benchmark::State &state)
{
    const Plane src = randomPlane(640, 360, 6);
    const RefPlane ref(src);
    uint8_t out[256];
    for (auto _ : state) {
        codec::motionCompensate(ref, 100, 100, codec::MotionVector{5, 3},
                                16, 16, out);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_HalfPelInterp16x16);

void
BM_IntraPredictPlanar16(benchmark::State &state)
{
    const Plane recon = randomPlane(256, 256, 7);
    uint8_t pred[256];
    for (auto _ : state) {
        codec::intraPredict(codec::IntraMode::Planar, recon, 64, 64, 16,
                            pred);
        benchmark::DoNotOptimize(pred);
    }
}
BENCHMARK(BM_IntraPredictPlanar16);

void
BM_MotionSearch(benchmark::State &state)
{
    const auto kind = static_cast<codec::SearchKind>(state.range(0));
    const Plane cur = randomPlane(640, 360, 8);
    const Plane prev = randomPlane(640, 360, 9);
    const RefPlane ref(prev);
    codec::MeContext me;
    me.src = &cur;
    me.ref = &ref;
    me.block_x = 320;
    me.block_y = 160;
    me.lambda = 4.0;
    me.kind = kind;
    me.range = kind == codec::SearchKind::Full ? 8 : 16;
    me.subpel = true;
    for (auto _ : state) {
        benchmark::DoNotOptimize(codec::motionSearch(me));
    }
}
BENCHMARK(BM_MotionSearch)
    ->Arg(static_cast<int>(codec::SearchKind::Diamond))
    ->Arg(static_cast<int>(codec::SearchKind::Hex))
    ->Arg(static_cast<int>(codec::SearchKind::Full));

void
BM_RangeCoderEncode(benchmark::State &state)
{
    video::Rng rng(10);
    std::vector<int> bits(4096);
    for (auto &b : bits)
        b = rng.below(100) < 20;
    for (auto _ : state) {
        codec::ByteBuffer out;
        out.reserve(1024);
        codec::RangeEncoder enc(out);
        codec::BitContext ctx;
        for (int b : bits)
            enc.encode(b, ctx);
        enc.flush();
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * bits.size());
}
BENCHMARK(BM_RangeCoderEncode);

void
BM_DeblockFrame(benchmark::State &state)
{
    video::Frame frame(320, 192);
    video::Rng rng(11);
    for (int y = 0; y < 192; ++y)
        for (int x = 0; x < 320; ++x)
            frame.y().at(x, y) = static_cast<uint8_t>(rng.below(256));
    codec::MbGrid grid(20, 12);
    for (int mby = 0; mby < 12; ++mby) {
        for (int mbx = 0; mbx < 20; ++mbx) {
            codec::MbInfo &info = grid.at(mbx, mby);
            info.mode = codec::MbMode::Inter16;
            info.qp = 32;
            info.coded = true;
        }
    }
    for (auto _ : state) {
        video::Frame work = frame;
        codec::deblockFrame(work, grid);
        benchmark::DoNotOptimize(work);
    }
    state.SetItemsProcessed(state.iterations() * 320 * 192);
}
BENCHMARK(BM_DeblockFrame);

} // namespace

BENCHMARK_MAIN();
