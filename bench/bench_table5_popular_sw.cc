/**
 * @file
 * Table 5: the next-generation software encoders (libx265 / libvpx-vp9
 * analogues) on the Popular scenario. The reference is VBC at its
 * highest effort, two-pass. Each candidate encodes two-pass at a
 * descending fraction of the reference bitrate; the smallest fraction
 * that still meets Q >= 1 gives the reported B and Q. Also §6.2's
 * headline negative result: the hardware encoders produce *no* valid
 * Popular transcode.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "codec/decoder.h"
#include "core/report.h"
#include "core/scoring.h"
#include "hwenc/hwenc.h"
#include "metrics/rates.h"
#include "video/suite.h"

namespace {

using namespace vbench;

struct PopularRow {
    core::Ratios ratios;
    core::ScoreResult score;
};

PopularRow
runNgc(core::EncoderKind kind, const bench::PreparedClip &clip,
       const core::TranscodeOutcome &reference)
{
    PopularRow best;
    best.score.valid = false;
    best.score.reason = "no bitrate fraction met Q >= 1";
    const double output_rate = metrics::outputMegapixelsPerSecond(
        clip.original.width(), clip.original.height(),
        clip.original.fps());

    // Descend the bitrate until quality no longer holds.
    // bits/pixel/s x pixels/frame = bits/s.
    const double ref_bitrate_bps = reference.m.bitrate_bpps *
        static_cast<double>(clip.original.pixelsPerFrame());

    for (double fraction : {1.0, 0.85, 0.7, 0.55}) {
        core::TranscodeRequest req;
        req.kind = kind;
        req.rc.mode = codec::RcMode::TwoPass;
        req.rc.bitrate_bps = ref_bitrate_bps * fraction;
        req.ngc_speed = 1;
        req.gop = 30;
        const core::TranscodeOutcome outcome =
            core::transcode(clip.universal, clip.original, req);
        bench::reportRun("table5", req, outcome);
        if (!outcome.ok)
            continue;
        core::Ratios r = core::computeRatios(reference.m, outcome.m);
        const core::ScoreResult score = core::scoreScenario(
            core::Scenario::Popular, r, outcome.m, output_rate);
        if (!best.score.valid)
            best.ratios = r;  // keep ratios for the failure report
        if (score.valid &&
            (!best.score.valid || score.score > best.score.score)) {
            best.ratios = r;
            best.score = score;
        }
        if (!score.valid && best.score.valid)
            break;  // quality just broke; keep the best so far
        if (!score.valid && r.q < 1.0)
            break;  // descending further only loses more quality
    }
    return best;
}

} // namespace

int
main()
{
    bench::printHeader(
        "Table 5 — next-gen software encoders on Popular",
        "Table 5 (Q, B, Popular score for libx265/libvpx-vp9 analogues) "
        "+ §6.2 hardware infeasibility");

    core::Table table({"video", "kpix", "entropy", "vp9_Q", "vp9_B",
                       "vp9_Pop", "hevc_Q", "hevc_B", "hevc_Pop"});
    int vp9_valid = 0, hevc_valid = 0, rows = 0;
    int hw_valid = 0;

    for (const video::ClipSpec &spec : video::vbenchSuite()) {
        const bench::PreparedClip clip = bench::prepare(spec);
        core::ReferenceStore refs;
        const core::TranscodeOutcome &ref = refs.get(
            spec.name, core::Scenario::Popular, clip.universal,
            clip.original);
        if (!ref.ok) {
            std::printf("reference failed for %s\n", spec.name.c_str());
            continue;
        }

        const PopularRow vp9 =
            runNgc(core::EncoderKind::NgcVp9, clip, ref);
        const PopularRow hevc =
            runNgc(core::EncoderKind::NgcHevc, clip, ref);

        // §6.2: try the best hardware encoder at maximum bitrate; it
        // must fail the Popular constraints.
        {
            const auto decoded_input = codec::decode(clip.universal);
            const hwenc::HwEncodeResult hw = hwenc::encodeAtQuality(
                hwenc::qsvLikeSpec(), *decoded_input, ref.m.psnr_db, 6,
                &clip.original);
            const auto decoded = codec::decode(hw.encoded.stream);
            if (decoded) {
                const core::Measurement m = core::measure(
                    clip.original, *decoded, hw.encoded.totalBytes(),
                    hw.seconds);
                const core::Ratios r = core::computeRatios(ref.m, m);
                if (core::scoreScenario(core::Scenario::Popular, r, m,
                                        1.0)
                        .valid) {
                    ++hw_valid;
                }
            }
        }

        auto cell = [](const PopularRow &row) {
            return row.score.valid ? core::fmt(row.score.score, 2)
                                   : std::string("--");
        };
        table.addRow({spec.name, std::to_string(spec.kpixels()),
                      core::fmt(spec.target_entropy, 1),
                      core::fmt(vp9.ratios.q, 2),
                      core::fmt(vp9.ratios.b, 2), cell(vp9),
                      core::fmt(hevc.ratios.q, 2),
                      core::fmt(hevc.ratios.b, 2), cell(hevc)});
        ++rows;
        vp9_valid += vp9.score.valid;
        hevc_valid += hevc.score.valid;
    }

    table.print(std::cout);
    std::printf("\nvalid Popular transcodes: ngc-vp9 %d/%d, ngc-hevc "
                "%d/%d, hardware %d/%d\n",
                vp9_valid, rows, hevc_valid, rows, hw_valid, rows);
    std::printf("shape check: the software next-gen encoders reduce"
                " bitrate at iso quality\non most clips (B > 1, Q >= 1);"
                " the hardware encoders produce (almost) no\nvalid"
                " Popular transcodes — §6.2's conclusion.\n");
    return 0;
}
