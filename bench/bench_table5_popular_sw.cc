/**
 * @file
 * Table 5: the next-generation software encoders (libx265 / libvpx-vp9
 * analogues) on the Popular scenario. The reference is VBC at its
 * highest effort, two-pass. Each candidate encodes two-pass at a
 * descending fraction of the reference bitrate; the smallest fraction
 * that still meets Q >= 1 gives the reported B and Q. Also §6.2's
 * headline negative result: the hardware encoders produce *no* valid
 * Popular transcode.
 *
 * Scheduling: two batches through the parallel scheduler — first the
 * 15 Popular references (one per clip), then the full 15-clip ×
 * 2-profile × 4-fraction candidate grid. Candidate selection happens
 * after the batch, in plain code, so the reported rows are identical
 * at any worker count.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "codec/decoder.h"
#include "core/report.h"
#include "core/scoring.h"
#include "hwenc/hwenc.h"
#include "metrics/rates.h"
#include "sched/scheduler.h"
#include "video/suite.h"

namespace {

using namespace vbench;

constexpr double kFractions[] = {1.0, 0.85, 0.7, 0.55};

struct PopularRow {
    core::Ratios ratios{};
    core::ScoreResult score;
};

/**
 * Pick the candidate row from one profile's fraction sweep: the best
 * valid score wins; when nothing is valid, the full-bitrate ratios are
 * kept for the failure report (exactly the serial sweep's behaviour).
 */
PopularRow
selectRow(const core::TranscodeOutcome &reference,
          const std::vector<const core::TranscodeOutcome *> &sweep,
          double output_rate)
{
    PopularRow best;
    best.score.valid = false;
    best.score.reason = "no bitrate fraction met Q >= 1";
    bool have_ratios = false;
    for (const core::TranscodeOutcome *outcome : sweep) {
        if (!outcome->ok)
            continue;
        const core::Ratios r =
            core::computeRatios(reference.m, outcome->m);
        const core::ScoreResult score = core::scoreScenario(
            core::Scenario::Popular, r, outcome->m, output_rate);
        if (!have_ratios) {
            best.ratios = r;  // keep ratios for the failure report
            have_ratios = true;
        }
        if (score.valid &&
            (!best.score.valid || score.score > best.score.score)) {
            best.ratios = r;
            best.score = score;
        }
    }
    return best;
}

} // namespace

int
main()
{
    bench::printHeader(
        "Table 5 — next-gen software encoders on Popular",
        "Table 5 (Q, B, Popular score for libx265/libvpx-vp9 analogues) "
        "+ §6.2 hardware infeasibility");

    const auto suite = video::vbenchSuite();
    std::vector<bench::SharedClip> clips;
    clips.reserve(suite.size());
    for (const video::ClipSpec &spec : suite)
        clips.push_back(bench::prepareShared(spec));

    sched::Scheduler scheduler;

    // Batch 1: the Popular reference for every clip.
    std::vector<sched::TranscodeJob> ref_jobs;
    for (size_t i = 0; i < suite.size(); ++i) {
        const video::Video &v = *clips[i].original;
        ref_jobs.push_back(bench::makeJob(
            suite[i].name + "/ref", clips[i],
            core::referenceRequest(core::Scenario::Popular, v.width(),
                                   v.height(), v.fps())));
    }
    const sched::BatchResult refs = scheduler.runBatch(ref_jobs);
    bench::reportBatch(ref_jobs, refs);

    // Batch 2: the candidate grid — every clip with a good reference,
    // both NGC profiles, every bitrate fraction.
    const core::EncoderKind profiles[] = {core::EncoderKind::NgcVp9,
                                          core::EncoderKind::NgcHevc};
    std::vector<sched::TranscodeJob> cand_jobs;
    struct CandKey {
        size_t clip;
        int profile;
    };
    std::vector<CandKey> keys;
    for (size_t i = 0; i < suite.size(); ++i) {
        if (!refs.results[i].ok())
            continue;
        // Descend the bitrate until quality no longer holds.
        // bits/pixel/s x pixels/frame = bits/s.
        const double ref_bitrate_bps =
            refs.results[i].outcome.m.bitrate_bpps *
            static_cast<double>(clips[i].original->pixelsPerFrame());
        for (int p = 0; p < 2; ++p) {
            for (double fraction : kFractions) {
                core::TranscodeRequest req;
                req.kind = profiles[p];
                req.rc.mode = codec::RcMode::TwoPass;
                req.rc.bitrate_bps = ref_bitrate_bps * fraction;
                req.ngc_speed = 1;
                req.gop = 30;
                cand_jobs.push_back(bench::makeJob(
                    "table5", clips[i], req));
                keys.push_back({i, p});
            }
        }
    }
    const sched::BatchResult cands = scheduler.runBatch(cand_jobs);
    bench::reportBatch(cand_jobs, cands);

    core::Table table({"video", "kpix", "entropy", "vp9_Q", "vp9_B",
                       "vp9_Pop", "hevc_Q", "hevc_B", "hevc_Pop"});
    int vp9_valid = 0, hevc_valid = 0, rows = 0;
    int hw_valid = 0;

    for (size_t i = 0; i < suite.size(); ++i) {
        const video::ClipSpec &spec = suite[i];
        if (!refs.results[i].ok()) {
            std::printf("reference failed for %s\n", spec.name.c_str());
            continue;
        }
        const core::TranscodeOutcome &ref = refs.results[i].outcome;
        const double output_rate = metrics::outputMegapixelsPerSecond(
            clips[i].original->width(), clips[i].original->height(),
            clips[i].original->fps());

        // Collect each profile's fraction sweep from the flat batch.
        std::vector<const core::TranscodeOutcome *> sweep[2];
        for (size_t k = 0; k < keys.size(); ++k)
            if (keys[k].clip == i)
                sweep[keys[k].profile].push_back(
                    &cands.results[k].outcome);
        const PopularRow vp9 = selectRow(ref, sweep[0], output_rate);
        const PopularRow hevc = selectRow(ref, sweep[1], output_rate);

        // §6.2: try the best hardware encoder at maximum bitrate; it
        // must fail the Popular constraints.
        {
            const auto decoded_input = codec::decode(*clips[i].universal);
            const hwenc::HwEncodeResult hw = hwenc::encodeAtQuality(
                hwenc::qsvLikeSpec(), *decoded_input, ref.m.psnr_db, 6,
                clips[i].original.get());
            const auto decoded = codec::decode(hw.encoded.stream);
            if (decoded) {
                const core::Measurement m = core::measure(
                    *clips[i].original, *decoded, hw.encoded.totalBytes(),
                    hw.seconds);
                const core::Ratios r = core::computeRatios(ref.m, m);
                if (core::scoreScenario(core::Scenario::Popular, r, m,
                                        1.0)
                        .valid) {
                    ++hw_valid;
                }
            }
        }

        auto cell = [](const PopularRow &row) {
            return row.score.valid ? core::fmt(row.score.score, 2)
                                   : std::string("--");
        };
        table.addRow({spec.name, std::to_string(spec.kpixels()),
                      core::fmt(spec.target_entropy, 1),
                      core::fmt(vp9.ratios.q, 2),
                      core::fmt(vp9.ratios.b, 2), cell(vp9),
                      core::fmt(hevc.ratios.q, 2),
                      core::fmt(hevc.ratios.b, 2), cell(hevc)});
        ++rows;
        vp9_valid += vp9.score.valid;
        hevc_valid += hevc.score.valid;
    }

    table.print(std::cout);
    std::printf("\nvalid Popular transcodes: ngc-vp9 %d/%d, ngc-hevc "
                "%d/%d, hardware %d/%d\n",
                vp9_valid, rows, hevc_valid, rows, hw_valid, rows);
    std::printf("\nreference batch: ");
    bench::printBatchStats(refs.stats);
    std::printf("candidate batch: ");
    bench::printBatchStats(cands.stats);
    std::printf("\nshape check: the software next-gen encoders reduce"
                " bitrate at iso quality\non most clips (B > 1, Q >= 1);"
                " the hardware encoders produce (almost) no\nvalid"
                " Popular transcodes — §6.2's conclusion.\n");
    return 0;
}
