/**
 * @file
 * Ablation: the individual design choices DESIGN.md calls out —
 * entropy backend, two-pass rate control, deblocking, and motion
 * search strategy — each toggled in isolation. The nine
 * configurations are independent VBC transcodes of the same clip, so
 * they run as one scheduler batch; the reported numbers are identical
 * at any worker count.
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "codec/preset.h"
#include "core/report.h"
#include "sched/scheduler.h"
#include "video/suite.h"

namespace {

using namespace vbench;

/** One toggled configuration of the grid. */
sched::TranscodeJob
job(const char *name, const bench::SharedClip &clip,
    const core::TranscodeRequest &req)
{
    return bench::makeJob(name, clip, req);
}

} // namespace

int
main()
{
    bench::printHeader("Ablation — tool-level design choices",
                       "DESIGN.md ablation index (entropy coder, "
                       "two-pass, deblocking, search)");

    video::ClipSpec spec{"tools", 1280, 720, 30,
                         video::ContentClass::Sports, 4.5, 2121};
    const bench::SharedClip clip = bench::prepareShared(spec, 12);

    std::vector<sched::TranscodeJob> jobs;

    // 1. Entropy backend at iso-QP.
    {
        core::TranscodeRequest req;
        req.rc.mode = codec::RcMode::Cqp;
        req.rc.qp = 28;
        req.effort = 5;
        req.entropy_override = static_cast<int>(codec::EntropyMode::Vlc);
        jobs.push_back(job("entropy=vlc", clip, req));
        req.entropy_override =
            static_cast<int>(codec::EntropyMode::Arith);
        jobs.push_back(job("entropy=arith", clip, req));
    }

    // 2. Rate control at a fixed bitrate budget.
    {
        core::TranscodeRequest req;
        req.effort = 4;
        req.rc.bitrate_bps = 2e6;
        req.rc.mode = codec::RcMode::Abr;
        jobs.push_back(job("rc=abr@2mbps", clip, req));
        req.rc.mode = codec::RcMode::TwoPass;
        jobs.push_back(job("rc=twopass@2mbps", clip, req));
    }

    // 3. Deblocking at a coarse quantizer.
    {
        core::TranscodeRequest req;
        req.rc.mode = codec::RcMode::Cqp;
        req.rc.qp = 40;
        req.effort = 4;
        req.deblock_override = 0;
        jobs.push_back(job("deblock=off(qp40)", clip, req));
        req.deblock_override = 1;
        jobs.push_back(job("deblock=on(qp40)", clip, req));
    }

    // 4. Search strategy at iso effort elsewhere.
    {
        for (auto [kind, name] :
             {std::pair{codec::SearchKind::Diamond, "search=diamond"},
              {codec::SearchKind::Hex, "search=hex"},
              {codec::SearchKind::Full, "search=full(r8)"}}) {
            core::TranscodeRequest req;
            req.rc.mode = codec::RcMode::Cqp;
            req.rc.qp = 28;
            codec::ToolPreset tools = codec::presetForEffort(5);
            tools.search = kind;
            tools.range = kind == codec::SearchKind::Full ? 8 : 24;
            req.tools_override = tools;
            jobs.push_back(job(name, clip, req));
        }
    }

    sched::Scheduler scheduler;
    const sched::BatchResult batch = scheduler.runBatch(jobs);
    bench::reportBatch(jobs, batch);

    core::Table table({"configuration", "mpix_s", "bpps", "psnr_db"});
    for (size_t i = 0; i < jobs.size(); ++i) {
        const core::TranscodeOutcome &o = batch.results[i].outcome;
        table.addRow({jobs[i].label, core::fmt(o.m.speed_mpix_s, 2),
                      core::fmt(o.m.bitrate_bpps, 3),
                      core::fmt(o.m.psnr_db, 2)});
    }

    table.print(std::cout);
    std::printf("\n");
    bench::printBatchStats(batch.stats);
    std::printf("\nexpected: arith < vlc in bpps; twopass >= abr in psnr"
                " at equal bits;\ndeblock raises psnr at qp40; fuller"
                " search lowers bpps at lower mpix/s.\n");
    return 0;
}
