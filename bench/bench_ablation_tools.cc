/**
 * @file
 * Ablation: the individual design choices DESIGN.md calls out —
 * entropy backend, two-pass rate control, deblocking, and motion
 * search strategy — each toggled in isolation.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "codec/decoder.h"
#include "codec/encoder.h"
#include "core/report.h"
#include "metrics/psnr.h"
#include "metrics/rates.h"
#include "video/suite.h"

namespace {

using namespace vbench;

struct RunResult {
    double mpix_s;
    double bpps;
    double psnr;
};

RunResult
run(const video::Video &clip, const codec::EncoderConfig &cfg)
{
    codec::Encoder encoder(cfg);
    const double t0 = obs::nowSeconds();
    const codec::EncodeResult result = encoder.encode(clip);
    const double elapsed = obs::nowSeconds() - t0;
    const auto decoded = codec::decode(result.stream);
    RunResult r;
    r.mpix_s = metrics::megapixelsPerSecond(
        clip.width(), clip.height(), clip.frameCount(), elapsed);
    r.bpps = metrics::bitsPerPixelPerSecond(result.totalBytes(),
                                            clip.width(), clip.height(),
                                            clip.frameCount(), clip.fps());
    r.psnr = decoded ? metrics::videoPsnr(clip, *decoded) : 0;
    return r;
}

void
addRow(core::Table &table, const char *name, const RunResult &r)
{
    table.addRow({name, core::fmt(r.mpix_s, 2), core::fmt(r.bpps, 3),
                  core::fmt(r.psnr, 2)});
}

} // namespace

int
main()
{
    bench::printHeader("Ablation — tool-level design choices",
                       "DESIGN.md ablation index (entropy coder, "
                       "two-pass, deblocking, search)");

    video::ClipSpec spec{"tools", 1280, 720, 30,
                         video::ContentClass::Sports, 4.5, 2121};
    const video::Video clip = video::synthesizeClip(spec, 12);
    core::Table table({"configuration", "mpix_s", "bpps", "psnr_db"});

    // 1. Entropy backend at iso-QP.
    {
        codec::EncoderConfig cfg;
        cfg.rc.mode = codec::RcMode::Cqp;
        cfg.rc.qp = 28;
        cfg.effort = 5;
        cfg.entropy_override = static_cast<int>(codec::EntropyMode::Vlc);
        addRow(table, "entropy=vlc", run(clip, cfg));
        cfg.entropy_override =
            static_cast<int>(codec::EntropyMode::Arith);
        addRow(table, "entropy=arith", run(clip, cfg));
    }

    // 2. Rate control at a fixed bitrate budget.
    {
        codec::EncoderConfig cfg;
        cfg.effort = 4;
        cfg.rc.bitrate_bps = 2e6;
        cfg.rc.mode = codec::RcMode::Abr;
        addRow(table, "rc=abr@2mbps", run(clip, cfg));
        cfg.rc.mode = codec::RcMode::TwoPass;
        addRow(table, "rc=twopass@2mbps", run(clip, cfg));
    }

    // 3. Deblocking at a coarse quantizer.
    {
        codec::EncoderConfig cfg;
        cfg.rc.mode = codec::RcMode::Cqp;
        cfg.rc.qp = 40;
        cfg.effort = 4;
        cfg.deblock_override = 0;
        addRow(table, "deblock=off(qp40)", run(clip, cfg));
        cfg.deblock_override = 1;
        addRow(table, "deblock=on(qp40)", run(clip, cfg));
    }

    // 4. Search strategy at iso effort elsewhere.
    {
        for (auto [kind, name] :
             {std::pair{codec::SearchKind::Diamond, "search=diamond"},
              {codec::SearchKind::Hex, "search=hex"},
              {codec::SearchKind::Full, "search=full(r8)"}}) {
            codec::EncoderConfig cfg;
            cfg.rc.mode = codec::RcMode::Cqp;
            cfg.rc.qp = 28;
            codec::ToolPreset tools = codec::presetForEffort(5);
            tools.search = kind;
            tools.range = kind == codec::SearchKind::Full ? 8 : 24;
            cfg.tools_override = tools;
            addRow(table, name, run(clip, cfg));
        }
    }

    table.print(std::cout);
    std::printf("\nexpected: arith < vlc in bpps; twopass >= abr in psnr"
                " at equal bits;\ndeblock raises psnr at qp40; fuller"
                " search lowers bpps at lower mpix/s.\n");
    return 0;
}
