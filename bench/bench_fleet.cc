/**
 * @file
 * Fleet placement benchmark: replay one profiled service workload
 * against heterogeneous fleet topologies under every placement policy
 * (docs/FLEET.md). A single profiling pass executes each unique
 * segment chain once through the real encoder (service::
 * executeSegmentJob, rate-control carry included) to measure its work;
 * the discrete-event simulator then scores each (topology x policy)
 * pair on identical jobs, so cost and hit-rate differences are pure
 * placement quality. Writes BENCH_fleet.json.
 *
 * Environment knobs: VBENCH_FLEET (topology spec), VBENCH_FLEET_CALIB
 * (perf-model cache), VBENCH_SEGMENT_FRAMES.
 *
 *   --seed N      workload base seed (default 40) for reproducible runs
 *   --fleet SPEC  benchmark only this topology (types.h grammar)
 *   --calib PATH  perf-model calibration cache path
 *   --out FILE    JSON output path (default BENCH_fleet.json)
 *   --smoke       small run wired into scripts/check.sh: asserts the
 *                 simulation is deterministic in the seed, cost_aware
 *                 meets the deadline hit-rate floor, and cost_aware
 *                 undercuts round_robin AND random on total dollars in
 *                 at least two scenarios including Popular.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/runtime_config.h"
#include "core/scenario.h"
#include "fleet/calibrate.h"
#include "fleet/sim.h"
#include "service/segment_job.h"
#include "service/workload.h"
#include "video/suite.h"
#include "video/synth.h"

namespace {

using namespace vbench;

std::vector<video::ClipSpec>
corpusSpecs(bool smoke)
{
    const auto spec = [](const char *name, int w, int h,
                         video::ContentClass content, uint64_t seed) {
        video::ClipSpec s;
        s.name = name;
        s.width = w;
        s.height = h;
        s.fps = 30.0;
        s.content = content;
        s.seed = seed;
        return s;
    };
    if (smoke)
        return {
            spec("fleet_nat", 192, 128, video::ContentClass::Natural, 7),
            spec("fleet_anim", 192, 128, video::ContentClass::Animation,
                 9),
        };
    return {
        spec("fleet_natural", 320, 192, video::ContentClass::Natural,
             21),
        spec("fleet_sports", 256, 144, video::ContentClass::Sports, 22),
        spec("fleet_screen", 256, 144, video::ContentClass::Screencast,
             23),
    };
}

/**
 * One-hot Poisson stream per scenario, merged (same construction as
 * bench_service): every requested scenario is guaranteed a non-empty
 * slice, and the whole sequence is deterministic in `base_seed`.
 */
std::vector<service::ServiceRequest>
generateMixedWorkload(const service::Corpus &corpus,
                      const std::vector<core::Scenario> &scenarios,
                      double per_scenario_rate, double duration_s,
                      uint64_t base_seed,
                      const service::WorkloadConfig &shape)
{
    std::vector<service::ServiceRequest> merged;
    uint64_t id = 0;
    for (const core::Scenario scenario : scenarios) {
        service::WorkloadConfig config = shape;
        config.arrival_rate_hz = per_scenario_rate;
        config.duration_s = duration_s;
        config.seed = base_seed + static_cast<uint64_t>(scenario);
        config.mix = {};
        config.mix[static_cast<size_t>(scenario)] = 1;
        std::vector<service::ServiceRequest> part =
            service::generateWorkload(config, corpus);
        for (int retry = 0; part.empty() && retry < 8; ++retry) {
            config.seed += 100;
            config.duration_s *= 2;
            part = service::generateWorkload(config, corpus);
        }
        for (service::ServiceRequest &req : part) {
            req.id = id++;
            merged.push_back(std::move(req));
        }
    }
    return merged;
}

bool
chainedMode(codec::RcMode mode)
{
    return mode == codec::RcMode::Abr || mode == codec::RcMode::TwoPass;
}

/** What the profiling pass turned the workload into. */
struct ProfiledWorkload {
    std::vector<fleet::SimJob> jobs;
    size_t chains_profiled = 0;  ///< unique chains actually executed
    size_t profile_failures = 0;
    size_t streams = 0;
};

/**
 * Measure the workload's real work: every unique (clip, rung) chain is
 * executed once, segment by segment with the rate-control carry, and
 * its measured on-host seconds become modeled scalar-tier work via the
 * perf model's native-tier bridge. Repeated requests for the same
 * chain (the Zipf head) reuse the measurement — profiling cost scales
 * with corpus x ladder, not with arrival count.
 */
ProfiledWorkload
profileWorkload(const service::Corpus &corpus,
                const std::vector<service::ServiceRequest> &workload,
                const fleet::PerfModel &model)
{
    ProfiledWorkload out;
    const double native_speed =
        model.tier_speed[static_cast<size_t>(model.native_tier)];
    std::map<std::string, std::vector<double>> measured;
    int next_id = 0;
    for (const service::ServiceRequest &req : workload) {
        const service::CorpusClip &clip = corpus.clips[req.clip];
        const int segments = clip.segmentCount();
        const double seg_duration_s = clip.spec.fps > 0
            ? corpus.segment_frames / clip.spec.fps
            : 0.0;
        const double seg_pixels = static_cast<double>(clip.spec.width) *
            clip.spec.height * corpus.segment_frames;
        for (const service::RungSpec &rung : req.rungs) {
            const bool chained = chainedMode(rung.request.rc.mode);
            std::string key = std::to_string(req.clip) + "|" +
                std::to_string(static_cast<int>(req.scenario)) + "|" +
                rung.name + "|" +
                std::to_string(static_cast<int>(rung.request.kind)) +
                "|" +
                std::to_string(static_cast<int>(rung.request.rc.mode)) +
                "|" + std::to_string(rung.request.rc.bitrate_bps) + "|" +
                std::to_string(rung.request.effort);
            auto it = measured.find(key);
            if (it == measured.end()) {
                std::vector<double> seconds;
                codec::RcSnapshot carry;
                for (int k = 0; k < segments; ++k) {
                    service::SegmentJob job;
                    job.request_id = req.id;
                    job.rung = rung.name;
                    job.segment_index = k;
                    job.scenario = req.scenario;
                    job.input = *clip.seg_universal[static_cast<size_t>(
                        k)];
                    job.params = rung.request;
                    if (chained && k > 0)
                        job.params.rc_in = carry;
                    const service::SegmentResult res =
                        service::executeSegmentJob(
                            job,
                            clip.seg_original[static_cast<size_t>(k)]
                                .get());
                    if (res.ok) {
                        carry = res.rc_state;
                        seconds.push_back(res.seconds);
                    } else {
                        ++out.profile_failures;
                        seconds.push_back(
                            model.scalarWorkSeconds(seg_pixels) /
                            native_speed);
                    }
                }
                it = measured.emplace(key, std::move(seconds)).first;
                ++out.chains_profiled;
            }
            const std::vector<double> &seconds = it->second;
            const int stream = static_cast<int>(out.streams++);
            int prev = -1;
            for (int k = 0; k < segments; ++k) {
                fleet::SimJob sim;
                sim.id = next_id++;
                sim.pixels = seg_pixels;
                sim.work_scalar_s =
                    seconds[static_cast<size_t>(k)] * native_speed;
                sim.avail_s = req.arrival_s +
                    (req.live_paced ? k * seg_duration_s : 0.0);
                if (req.live_paced &&
                    std::isfinite(req.segment_deadline_s))
                    sim.deadline_s =
                        sim.avail_s + req.segment_deadline_s;
                else if (std::isfinite(req.request_deadline_s))
                    sim.deadline_s =
                        req.arrival_s + req.request_deadline_s;
                sim.scenario = req.scenario;
                sim.chain_prev = chained ? prev : -1;
                sim.stream = stream;
                prev = sim.id;
                out.jobs.push_back(sim);
            }
        }
    }
    return out;
}

/** All five policies over one topology, identical jobs. */
struct PolicyRun {
    fleet::PolicyKind kind = fleet::PolicyKind::RoundRobin;
    fleet::SimResult result;
};

std::vector<PolicyRun>
sweepPolicies(const std::vector<fleet::WorkerTypeSpec> &types,
              uint64_t seed, const fleet::PerfModel &model,
              const std::vector<fleet::SimJob> &jobs)
{
    std::vector<PolicyRun> runs;
    for (int p = 0; p < fleet::kNumPolicies; ++p) {
        PolicyRun run;
        run.kind = static_cast<fleet::PolicyKind>(p);
        fleet::FleetConfig config;
        config.types = types;
        config.policy = run.kind;
        config.seed = seed;
        run.result = fleet::simulateFleet(config, model, jobs);
        runs.push_back(std::move(run));
    }
    return runs;
}

uint64_t
totalStreams(const fleet::SimResult &r)
{
    uint64_t streams = 0;
    for (const fleet::SimScenario &s : r.scenarios)
        streams += s.streams;
    return streams;
}

void
printPolicyTable(const std::vector<PolicyRun> &runs)
{
    std::printf("%-14s %-7s %-7s %-11s %-11s %s\n", "policy", "jobs",
                "hit%", "cost_$", "$/stream", "makespan_s");
    for (const PolicyRun &run : runs) {
        const fleet::SimResult &r = run.result;
        const uint64_t streams = totalStreams(r);
        std::printf("%-14s %-7llu %-7.1f %-11.6f %-11.6f %.3f\n",
                    fleet::policyName(run.kind),
                    static_cast<unsigned long long>(r.jobs),
                    100.0 * r.hitRate(), r.total_cost_dollars,
                    streams > 0
                        ? r.total_cost_dollars /
                            static_cast<double>(streams)
                        : 0.0,
                    r.makespan_s);
    }
}

void
printScenarioBreakdown(const fleet::SimResult &r)
{
    std::printf("\ncost_aware by scenario:\n");
    std::printf("%-10s %-7s %-7s %-11s %s\n", "scenario", "jobs", "hit%",
                "cost_$", "$/stream");
    for (size_t i = 0; i < r.scenarios.size(); ++i) {
        const fleet::SimScenario &s = r.scenarios[i];
        if (s.jobs == 0)
            continue;
        std::printf("%-10s %-7llu %-7.1f %-11.6f %.6f\n",
                    core::toString(static_cast<core::Scenario>(i)),
                    static_cast<unsigned long long>(s.jobs),
                    100.0 * s.hitRate(), s.cost_dollars,
                    s.dollarsPerStream());
    }
}

void
printTypeUsage(const std::vector<fleet::WorkerTypeSpec> &types,
               const fleet::SimResult &r)
{
    std::vector<double> busy(types.size(), 0.0);
    std::vector<double> cost(types.size(), 0.0);
    std::vector<int> jobs(types.size(), 0);
    for (const fleet::FleetWorker &w : r.workers) {
        const auto t = static_cast<size_t>(w.type);
        busy[t] += w.busy_seconds;
        cost[t] += w.cost_dollars;
        jobs[t] += w.jobs;
    }
    std::printf("\ncost_aware by worker type:\n");
    std::printf("%-10s %-7s %-7s %-11s %s\n", "type", "count", "jobs",
                "busy_s", "cost_$");
    for (size_t t = 0; t < types.size(); ++t)
        std::printf("%-10s %-7d %-7d %-11.3f %.6f\n",
                    types[t].name.c_str(), types[t].count, jobs[t],
                    busy[t], cost[t]);
}

/** One benchmark topology: a label plus its parsed types. */
struct Topology {
    std::string label;
    std::vector<fleet::WorkerTypeSpec> types;
};

std::vector<Topology>
benchTopologies(const std::string &fleet_spec, bool smoke)
{
    // An explicit topology (--fleet or VBENCH_FLEET) is the only one.
    if (!fleet_spec.empty()) {
        std::string error;
        const auto types = fleet::parseFleetSpec(fleet_spec, &error);
        if (!types) {
            std::fprintf(stderr, "bad fleet spec %s: %s\n",
                         fleet_spec.c_str(), error.c_str());
            return {};
        }
        return {{"custom", *types}};
    }
    std::vector<Topology> topologies;
    topologies.push_back({"mixed", fleet::defaultFleetConfig().types});
    if (smoke)
        return topologies;
    const auto parsed = [](const char *label, const char *spec) {
        std::string error;
        const auto types = fleet::parseFleetSpec(spec, &error);
        return Topology{label, types ? *types
                                     : std::vector<
                                           fleet::WorkerTypeSpec>{}};
    };
    topologies.push_back(
        parsed("cpu-only", "scalar:4@0.40+sse2:2@0.90+avx2:2@1.60"));
    topologies.push_back(parsed("scalar-only", "scalar:8@0.40"));
    topologies.push_back(parsed("premium", "avx2:4@1.60+hwenc:2@5.00"));
    return topologies;
}

int
writeJson(const std::string &path, uint64_t seed,
          const fleet::PerfModel &model, const ProfiledWorkload &profile,
          size_t requests,
          const std::vector<std::pair<Topology, std::vector<PolicyRun>>>
              &sweeps)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{%s\"seed\":%llu,\"model\":{\"base_mpix_s\":%.4f,"
                 "\"tier_speed\":[",
                 bench::jsonMetaFields().c_str(),
                 static_cast<unsigned long long>(seed),
                 model.base_mpix_s);
    for (int t = 0; t < fleet::kNumTiers; ++t)
        std::fprintf(f, "%s%.4f", t ? "," : "",
                     model.tier_speed[static_cast<size_t>(t)]);
    std::fprintf(
        f,
        "],\"native_tier\":\"%s\",\"source\":\"%s\"},"
        "\"workload\":{\"requests\":%zu,\"jobs\":%zu,"
        "\"streams\":%zu,\"chains_profiled\":%zu},\"topologies\":[",
        fleet::tierName(model.native_tier), model.source.c_str(),
        requests, profile.jobs.size(), profile.streams,
        profile.chains_profiled);
    for (size_t i = 0; i < sweeps.size(); ++i) {
        const Topology &topo = sweeps[i].first;
        fleet::FleetConfig counter;
        counter.types = topo.types;
        std::fprintf(f,
                     "%s{\"label\":\"%s\",\"spec\":\"%s\","
                     "\"workers\":%d,\"policies\":[",
                     i ? "," : "", topo.label.c_str(),
                     fleet::formatFleetSpec(topo.types).c_str(),
                     counter.workerCount());
        const std::vector<PolicyRun> &runs = sweeps[i].second;
        for (size_t p = 0; p < runs.size(); ++p) {
            const fleet::SimResult &r = runs[p].result;
            std::fprintf(
                f,
                "%s{\"name\":\"%s\",\"jobs\":%llu,\"hit_rate\":%.4f,"
                "\"cost_dollars\":%.8f,\"makespan_s\":%.4f,"
                "\"scenarios\":[",
                p ? "," : "", fleet::policyName(runs[p].kind),
                static_cast<unsigned long long>(r.jobs), r.hitRate(),
                r.total_cost_dollars, r.makespan_s);
            bool first = true;
            for (size_t s = 0; s < r.scenarios.size(); ++s) {
                const fleet::SimScenario &sc = r.scenarios[s];
                if (sc.jobs == 0)
                    continue;
                std::fprintf(
                    f,
                    "%s{\"name\":\"%s\",\"jobs\":%llu,"
                    "\"hit_rate\":%.4f,\"cost_dollars\":%.8f,"
                    "\"dollars_per_stream\":%.8f}",
                    first ? "" : ",",
                    core::toString(static_cast<core::Scenario>(s)),
                    static_cast<unsigned long long>(sc.jobs),
                    sc.hitRate(), sc.cost_dollars,
                    sc.dollarsPerStream());
                first = false;
            }
            std::fprintf(f, "]}");
        }
        std::fprintf(f, "]}");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}

const PolicyRun *
findPolicy(const std::vector<PolicyRun> &runs, fleet::PolicyKind kind)
{
    for (const PolicyRun &run : runs)
        if (run.kind == kind)
            return &run;
    return nullptr;
}

int
runFull(const std::string &json_path, uint64_t seed,
        const std::string &fleet_spec, const std::string &calib_path)
{
    bench::printHeader(
        "heterogeneous fleet placement under a profiled service "
        "workload",
        "cloud transcoding economics: $/hour tiers, deadlines, "
        "placement policy");

    std::string calib_log;
    const fleet::PerfModel model =
        fleet::calibratePerfModel(calib_path, &calib_log);
    std::printf("perf model: %s (base %.2f Mpix/s, speeds %.2f/%.2f/"
                "%.2f/%.2f, native %s)\n",
                calib_log.c_str(), model.base_mpix_s,
                model.tier_speed[0], model.tier_speed[1],
                model.tier_speed[2], model.tier_speed[3],
                fleet::tierName(model.native_tier));

    const int segment_frames = service::segmentFramesFromEnv(8);
    const service::Corpus corpus =
        service::buildCorpus(corpusSpecs(false), 16, segment_frames);
    const std::vector<core::Scenario> all = {
        core::Scenario::Upload, core::Scenario::Live,
        core::Scenario::Vod, core::Scenario::Popular,
        core::Scenario::Platform};
    service::WorkloadConfig shape;
    const std::vector<service::ServiceRequest> workload =
        generateMixedWorkload(corpus, all, /*per_scenario_rate=*/2.0,
                              /*duration_s=*/4.0, seed, shape);

    const ProfiledWorkload profile =
        profileWorkload(corpus, workload, model);
    std::printf("workload: %zu requests -> %zu segment jobs "
                "(%zu streams, %zu chains profiled)\n\n",
                workload.size(), profile.jobs.size(), profile.streams,
                profile.chains_profiled);
    if (profile.profile_failures > 0)
        std::fprintf(stderr, "warning: %zu segments failed to profile "
                             "(modeled work substituted)\n",
                     profile.profile_failures);

    const std::vector<Topology> topologies =
        benchTopologies(fleet_spec, false);
    if (topologies.empty())
        return 1;
    std::vector<std::pair<Topology, std::vector<PolicyRun>>> sweeps;
    for (const Topology &topo : topologies) {
        fleet::FleetConfig counter;
        counter.types = topo.types;
        std::printf("== topology %s: %s (%d workers) ==\n",
                    topo.label.c_str(),
                    fleet::formatFleetSpec(topo.types).c_str(),
                    counter.workerCount());
        std::vector<PolicyRun> runs =
            sweepPolicies(topo.types, seed, model, profile.jobs);
        printPolicyTable(runs);
        if (const PolicyRun *aware =
                findPolicy(runs, fleet::PolicyKind::CostAware)) {
            printScenarioBreakdown(aware->result);
            printTypeUsage(topo.types, aware->result);
        }
        std::printf("\n");
        sweeps.emplace_back(topo, std::move(runs));
    }
    return writeJson(json_path, seed, model, profile, workload.size(),
                     sweeps);
}

/**
 * Gate for check.sh: generous deadlines, the default mixed fleet, and
 * three hard assertions — determinism in the seed, a deadline
 * hit-rate floor for cost_aware, and cost_aware strictly undercutting
 * both baselines (round_robin, random) on total dollars in >= 2
 * scenarios including Popular.
 */
int
runSmoke(uint64_t seed, const std::string &fleet_spec,
         const std::string &calib_path)
{
    const double kMinHitRate = 0.95;
    (void)calib_path;  // smoke stays on the stock model: deterministic
                       // cost arithmetic, no profiling variance
    const fleet::PerfModel model;
    const service::Corpus corpus =
        service::buildCorpus(corpusSpecs(true), 8, 4);
    service::WorkloadConfig shape;
    shape.upload_slack = 100.0;
    shape.popular_slack = 50.0;
    shape.vod_throughput = 0.1;
    const std::vector<service::ServiceRequest> workload =
        generateMixedWorkload(corpus,
                              {core::Scenario::Popular,
                               core::Scenario::Upload,
                               core::Scenario::Vod},
                              /*per_scenario_rate=*/4.0,
                              /*duration_s=*/1.0, seed, shape);
    const ProfiledWorkload profile =
        profileWorkload(corpus, workload, model);
    std::printf("workload: %zu requests -> %zu segment jobs\n",
                workload.size(), profile.jobs.size());

    const std::vector<Topology> topologies =
        benchTopologies(fleet_spec, true);
    if (topologies.empty())
        return 1;
    const Topology &topo = topologies.front();
    const std::vector<PolicyRun> runs =
        sweepPolicies(topo.types, seed, model, profile.jobs);
    printPolicyTable(runs);

    bool ok = true;
    if (profile.profile_failures > 0) {
        std::fprintf(stderr, "FAIL: %zu segments failed to profile\n",
                     profile.profile_failures);
        ok = false;
    }
    const PolicyRun *aware =
        findPolicy(runs, fleet::PolicyKind::CostAware);
    const PolicyRun *rr =
        findPolicy(runs, fleet::PolicyKind::RoundRobin);
    const PolicyRun *random =
        findPolicy(runs, fleet::PolicyKind::Random);
    if (!aware || !rr || !random) {
        std::fprintf(stderr, "FAIL: policy sweep incomplete\n");
        return 1;
    }
    for (const PolicyRun &run : runs)
        if (run.result.jobs != profile.jobs.size()) {
            std::fprintf(stderr, "FAIL: %s placed %llu of %zu jobs\n",
                         fleet::policyName(run.kind),
                         static_cast<unsigned long long>(
                             run.result.jobs),
                         profile.jobs.size());
            ok = false;
        }

    // The simulation must be bit-reproducible in (jobs, seed).
    {
        fleet::FleetConfig config;
        config.types = topo.types;
        config.policy = fleet::PolicyKind::CostAware;
        config.seed = seed;
        const fleet::SimResult again =
            fleet::simulateFleet(config, model, profile.jobs);
        if (again.total_cost_dollars !=
                aware->result.total_cost_dollars ||
            again.hits != aware->result.hits) {
            std::fprintf(stderr,
                         "FAIL: re-simulation diverged (%.9f vs %.9f "
                         "dollars)\n",
                         again.total_cost_dollars,
                         aware->result.total_cost_dollars);
            ok = false;
        }
    }

    if (aware->result.hitRate() < kMinHitRate) {
        std::fprintf(stderr,
                     "FAIL: cost_aware hit-rate %.3f below %.2f with "
                     "generous deadlines\n",
                     aware->result.hitRate(), kMinHitRate);
        ok = false;
    }
    if (aware->result.total_cost_dollars >
            rr->result.total_cost_dollars ||
        aware->result.total_cost_dollars >
            random->result.total_cost_dollars) {
        std::fprintf(stderr,
                     "FAIL: cost_aware $%.8f not <= round_robin $%.8f "
                     "and random $%.8f\n",
                     aware->result.total_cost_dollars,
                     rr->result.total_cost_dollars,
                     random->result.total_cost_dollars);
        ok = false;
    }

    // Per-scenario wins: strictly cheaper than BOTH baselines in at
    // least two scenarios, Popular among them (the ladder fan-out is
    // exactly where placement quality pays).
    int wins = 0;
    bool popular_win = false;
    for (size_t s = 0; s < aware->result.scenarios.size(); ++s) {
        const fleet::SimScenario &a = aware->result.scenarios[s];
        if (a.jobs == 0)
            continue;
        const bool win =
            a.cost_dollars < rr->result.scenarios[s].cost_dollars &&
            a.cost_dollars < random->result.scenarios[s].cost_dollars;
        if (win) {
            ++wins;
            if (static_cast<core::Scenario>(s) ==
                core::Scenario::Popular)
                popular_win = true;
        }
    }
    if (wins < 2 || !popular_win) {
        std::fprintf(stderr,
                     "FAIL: cost_aware beat both baselines in %d "
                     "scenarios (Popular win: %s); need >= 2 incl. "
                     "Popular\n",
                     wins, popular_win ? "yes" : "no");
        ok = false;
    }
    std::printf("fleet smoke: %s (cost_aware $%.8f vs round_robin "
                "$%.8f, random $%.8f; %d scenario wins)\n",
                ok ? "ok" : "FAILED",
                aware->result.total_cost_dollars,
                rr->result.total_cost_dollars,
                random->result.total_cost_dollars, wins);
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = "BENCH_fleet.json";
    const core::RuntimeConfig &env = core::runtimeConfig();
    std::string fleet_spec = env.fleet_spec;
    std::string calib_path = env.fleet_calib_path;
    uint64_t seed = 40;
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--out" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--fleet" && i + 1 < argc) {
            fleet_spec = argv[++i];
        } else if (arg == "--calib" && i + 1 < argc) {
            calib_path = argv[++i];
        } else if (arg == "--seed" && i + 1 < argc) {
            char *end = nullptr;
            seed = std::strtoull(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0') {
                std::fprintf(stderr, "--seed wants an integer, got "
                                     "%s\n",
                             argv[i]);
                return 2;
            }
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--seed N] [--fleet SPEC] "
                         "[--calib PATH] [--out FILE]\n",
                         argv[0]);
            return 2;
        }
    }
    return smoke ? runSmoke(seed, fleet_spec, calib_path)
                 : runFull(json_path, seed, fleet_spec, calib_path);
}
