/**
 * @file
 * Ablation: the VBC effort ladder (§2.2 realized). Sweeps effort 0-9
 * on one clip at constant quality target and reports the speed /
 * bitrate frontier, plus the per-tool search strategies.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "codec/decoder.h"
#include "codec/encoder.h"
#include "core/report.h"
#include "metrics/psnr.h"
#include "metrics/rates.h"
#include "video/suite.h"

int
main()
{
    using namespace vbench;

    bench::printHeader("Ablation — the effort ladder",
                       "§2.2 (effort restricts the RDO search space: "
                       "time buys compression)");

    video::ClipSpec spec{"ablate", 1280, 720, 30,
                         video::ContentClass::Natural, 3.0, 1717};
    const video::Video clip = video::synthesizeClip(spec, 12);

    core::Table table({"effort", "search", "refs", "rdo", "entropy",
                       "mpix_s", "bpps", "psnr_db"});
    double prev_bpps = 1e9;
    int regressions = 0;

    for (int effort = 0; effort < codec::kNumEfforts; ++effort) {
        codec::EncoderConfig cfg;
        cfg.rc.mode = codec::RcMode::Cqp;
        cfg.rc.qp = 27;
        cfg.effort = effort;
        cfg.gop = 30;
        codec::Encoder encoder(cfg);

        const double t0 = obs::nowSeconds();
        const codec::EncodeResult result = encoder.encode(clip);
        const double elapsed = obs::nowSeconds() - t0;
        const auto decoded = codec::decode(result.stream);

        const codec::ToolPreset &tools = encoder.tools();
        const char *search =
            tools.search == codec::SearchKind::Full ? "full"
            : tools.search == codec::SearchKind::Hex ? "hex"
                                                     : "dia";
        const double bpps = metrics::bitsPerPixelPerSecond(
            result.totalBytes(), clip.width(), clip.height(),
            clip.frameCount(), clip.fps());
        table.addRow(
            {std::to_string(effort), search,
             std::to_string(tools.refs), std::to_string(tools.rdo),
             tools.entropy == codec::EntropyMode::Arith ? "arith" : "vlc",
             core::fmt(metrics::megapixelsPerSecond(clip.width(),
                                                    clip.height(),
                                                    clip.frameCount(),
                                                    elapsed),
                       2),
             core::fmt(bpps, 3),
             core::fmt(decoded ? metrics::videoPsnr(clip, *decoded) : 0,
                       2)});
        if (bpps > prev_bpps * 1.02)
            ++regressions;
        prev_bpps = bpps;
    }

    table.print(std::cout);
    std::printf("\nbitrate regressions along the ladder: %d (expect ~0: "
                "each effort level\nshould compress at least as well at "
                "iso-QP)\n", regressions);
    return 0;
}
