/**
 * @file
 * Ablation: the VBC effort ladder (§2.2 realized). Sweeps effort 0-9
 * on one clip at constant quality target and reports the speed /
 * bitrate frontier, plus the per-tool search strategies. The ten
 * rungs are one scheduler batch; bitrate and PSNR per rung are
 * identical at any worker count.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "codec/preset.h"
#include "core/report.h"
#include "sched/scheduler.h"
#include "video/suite.h"

int
main()
{
    using namespace vbench;

    bench::printHeader("Ablation — the effort ladder",
                       "§2.2 (effort restricts the RDO search space: "
                       "time buys compression)");

    video::ClipSpec spec{"ablate", 1280, 720, 30,
                         video::ContentClass::Natural, 3.0, 1717};
    const bench::SharedClip clip = bench::prepareShared(spec, 12);

    std::vector<sched::TranscodeJob> jobs;
    for (int effort = 0; effort < codec::kNumEfforts; ++effort) {
        core::TranscodeRequest req;
        req.rc.mode = codec::RcMode::Cqp;
        req.rc.qp = 27;
        req.effort = effort;
        req.gop = 30;
        jobs.push_back(bench::makeJob(
            "effort=" + std::to_string(effort), clip, req));
    }
    sched::Scheduler scheduler;
    const sched::BatchResult batch = scheduler.runBatch(jobs);
    bench::reportBatch(jobs, batch);

    core::Table table({"effort", "search", "refs", "rdo", "entropy",
                       "mpix_s", "bpps", "psnr_db"});
    double prev_bpps = 1e9;
    int regressions = 0;

    for (int effort = 0; effort < codec::kNumEfforts; ++effort) {
        const core::TranscodeOutcome &o =
            batch.results[static_cast<size_t>(effort)].outcome;
        const codec::ToolPreset tools = codec::presetForEffort(effort);
        const char *search =
            tools.search == codec::SearchKind::Full ? "full"
            : tools.search == codec::SearchKind::Hex ? "hex"
                                                     : "dia";
        table.addRow(
            {std::to_string(effort), search,
             std::to_string(tools.refs), std::to_string(tools.rdo),
             tools.entropy == codec::EntropyMode::Arith ? "arith" : "vlc",
             core::fmt(o.m.speed_mpix_s, 2),
             core::fmt(o.m.bitrate_bpps, 3),
             core::fmt(o.m.psnr_db, 2)});
        if (o.m.bitrate_bpps > prev_bpps * 1.02)
            ++regressions;
        prev_bpps = o.m.bitrate_bpps;
    }

    table.print(std::cout);
    std::printf("\n");
    bench::printBatchStats(batch.stats);
    std::printf("\nbitrate regressions along the ladder: %d (expect ~0: "
                "each effort level\nshould compress at least as well at "
                "iso-QP)\n", regressions);
    return 0;
}
