/**
 * @file
 * Figures 5, 6, and 7: the microarchitectural characterization. In the
 * paper all three figures come from the same instrumented runs, and
 * they do here too:
 *
 *   Fig. 5 - L1I MPKI, branch MPKI, and LLC MPKI vs video entropy, for
 *            the coverage set and each public dataset (the dataset-
 *            bias result).
 *   Fig. 6 - Top-Down slot breakdown distributions per dataset.
 *   Fig. 7 - scalar vs AVX2 cycle fraction vs entropy.
 *
 * Every point is a VOD transcode of a synthesized clip through the
 * instrumented encoder+decoder, replayed through the cache/branch
 * models. The modeled LLC is scaled to 2 MiB to keep the
 * working-set-to-cache ratio of the paper's full-length 1080p runs at
 * our short clip lengths (documented in DESIGN.md).
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "core/report.h"
#include "corpus/coverage.h"
#include "uarch/tracesim.h"
#include "video/suite.h"

namespace {

using namespace vbench;

struct Sample {
    double entropy;
    uarch::UarchReport report;
};

/** Frames per clip for the instrumented runs (they cost ~3x). */
int
uarchFrames(const video::ClipSpec &spec)
{
    const double pixels = static_cast<double>(spec.width) * spec.height;
    if (pixels <= 0.5e6)
        return 8;
    if (pixels <= 1.0e6)
        return 6;
    if (pixels <= 2.2e6)
        return 4;
    return 3;
}

Sample
profileClip(const video::ClipSpec &spec)
{
    const video::Video clip =
        video::synthesizeClip(spec, uarchFrames(spec));
    const codec::ByteBuffer universal = core::makeUniversalStream(clip);

    uarch::TraceSimConfig sim_cfg;
    sim_cfg.sample_shift = 1;
    sim_cfg.caches.l3 = {2 * 1024 * 1024, 16, 64};
    uarch::TraceSimulator sim(sim_cfg);

    core::TranscodeRequest req = core::referenceRequest(
        core::Scenario::Vod, clip.width(), clip.height(), clip.fps());
    req.probe = &sim;
    core::transcode(universal, clip, req);

    Sample sample;
    sample.entropy = spec.target_entropy;
    sample.report = sim.report();
    return sample;
}

std::vector<Sample>
profileSuite(const std::vector<video::ClipSpec> &suite)
{
    std::vector<Sample> samples;
    for (const auto &spec : suite)
        samples.push_back(profileClip(spec));
    return samples;
}

void
printMpkiSeries(const char *dataset, const std::vector<Sample> &samples)
{
    std::vector<std::pair<double, double>> l1i, branch, l3;
    for (const Sample &s : samples) {
        l1i.emplace_back(s.entropy, s.report.l1i_mpki);
        branch.emplace_back(s.entropy, s.report.branch_mpki);
        l3.emplace_back(s.entropy, s.report.l3_mpki);
    }
    core::printSeries(std::cout, std::string(dataset) + "_l1i_mpki", l1i);
    core::printSeries(std::cout, std::string(dataset) + "_branch_mpki",
                      branch);
    core::printSeries(std::cout, std::string(dataset) + "_l3_mpki", l3);
}

/** Log-linear trend slope: y = a*log2(x) + b, returns a. */
double
logSlope(const std::vector<std::pair<double, double>> &points)
{
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (const auto &[x, y] : points) {
        const double lx = std::log2(std::max(x, 1e-3));
        sx += lx;
        sy += y;
        sxx += lx * lx;
        sxy += lx * y;
    }
    const double n = static_cast<double>(points.size());
    const double denom = n * sxx - sx * sx;
    return denom != 0 ? (n * sxy - sx * sy) / denom : 0;
}

struct BoxStats {
    double min, q1, median, q3, max;
};

BoxStats
boxStats(std::vector<double> values)
{
    std::sort(values.begin(), values.end());
    auto at = [&](double q) {
        const double idx = q * (values.size() - 1);
        const size_t lo = static_cast<size_t>(idx);
        const size_t hi = std::min(lo + 1, values.size() - 1);
        const double frac = idx - lo;
        return values[lo] * (1 - frac) + values[hi] * frac;
    };
    return {values.front(), at(0.25), at(0.5), at(0.75), values.back()};
}

void
printTopDownRows(core::Table &table, const char *dataset,
                 const std::vector<Sample> &samples)
{
    const char *categories[] = {"FE", "BAD", "BE/Mem", "BE/Core", "RET"};
    for (int cat = 0; cat < 5; ++cat) {
        std::vector<double> values;
        for (const Sample &s : samples) {
            const auto &td = s.report.topdown;
            const double v[] = {td.frontend, td.bad_speculation,
                                td.backend_memory, td.backend_core,
                                td.retiring};
            values.push_back(v[cat] * 100);
        }
        const BoxStats b = boxStats(values);
        table.addRow({dataset, categories[cat], core::fmt(b.min, 1),
                      core::fmt(b.q1, 1), core::fmt(b.median, 1),
                      core::fmt(b.q3, 1), core::fmt(b.max, 1)});
    }
}

} // namespace

int
main()
{
    bench::printHeader(
        "Figures 5-7 — microarchitectural characterization",
        "Fig. 5 (MPKI vs entropy), Fig. 6 (Top-Down boxplots), Fig. 7 "
        "(scalar/AVX2 cycle fractions)");

    // Coverage set, trimmed to three resolutions and seven entropy
    // samples per resolution for the instrumented-run budget.
    corpus::CoverageConfig cov_cfg;
    cov_cfg.entropy_samples = 7;
    std::vector<video::ClipSpec> coverage;
    for (const auto &spec : corpus::coverageSetReduced(cov_cfg)) {
        if (spec.width == 640 || spec.width == 1280 || spec.width == 1920)
            coverage.push_back(spec);
    }

    std::printf("profiling %zu coverage clips + the four datasets...\n\n",
                coverage.size());
    const auto cov_samples = profileSuite(coverage);
    const auto vbench_samples = profileSuite(video::vbenchSuite());
    const auto netflix_samples = profileSuite(video::netflixSuite());
    const auto xiph_samples = profileSuite(video::xiphSuite());
    const auto spec_samples = profileSuite(video::specSuite());

    // ---- Figure 5 ----
    std::printf("---- Fig. 5 series (x = entropy bits/pix/s) ----\n");
    printMpkiSeries("coverage", cov_samples);
    printMpkiSeries("vbench", vbench_samples);
    printMpkiSeries("netflix", netflix_samples);
    printMpkiSeries("xiph", xiph_samples);
    printMpkiSeries("spec2017", spec_samples);

    // Trend table: the paper's headline is the *sign* of each trend
    // and how dataset bias flips it.
    auto seriesOf = [](const std::vector<Sample> &samples, int which) {
        std::vector<std::pair<double, double>> pts;
        for (const Sample &s : samples) {
            const double v[] = {s.report.l1i_mpki, s.report.branch_mpki,
                                s.report.l3_mpki};
            pts.emplace_back(s.entropy, v[which]);
        }
        return pts;
    };
    core::Table trends({"dataset", "l1i_slope", "branch_slope",
                        "l3_slope"});
    auto addTrend = [&](const char *name,
                        const std::vector<Sample> &samples) {
        trends.addRow({name, core::fmt(logSlope(seriesOf(samples, 0)), 3),
                       core::fmt(logSlope(seriesOf(samples, 1)), 3),
                       core::fmt(logSlope(seriesOf(samples, 2)), 3)});
    };
    addTrend("coverage", cov_samples);
    addTrend("vbench", vbench_samples);
    addTrend("netflix", netflix_samples);
    addTrend("xiph", xiph_samples);
    std::printf("entropy-trend slopes (y = a*log2(entropy) + b):\n");
    trends.print(std::cout);
    std::printf("\nshape check: coverage and vbench agree — I$ and branch"
                " MPKI rise with\nentropy, LLC MPKI falls. The"
                " high-entropy-only datasets flatten or flip\nthe"
                " trends, the Fig. 5 bias result.\n\n");

    // ---- Figure 6 ----
    std::printf("---- Fig. 6 Top-Down distributions (%% of slots) ----\n");
    core::Table td({"dataset", "category", "min", "q1", "median", "q3",
                    "max"});
    printTopDownRows(td, "coverage", cov_samples);
    printTopDownRows(td, "vbench", vbench_samples);
    printTopDownRows(td, "netflix", netflix_samples);
    printTopDownRows(td, "xiph", xiph_samples);
    printTopDownRows(td, "spec2017", spec_samples);
    td.print(std::cout);
    std::printf("\nshape check: vbench's distributions track the coverage"
                " set's; ~60%% of\nslots retire or wait on the core, the"
                " §5.1 observation.\n\n");

    // ---- Figure 7 ----
    std::printf("---- Fig. 7 cycle fractions vs entropy ----\n");
    auto fractionSeries = [](const std::vector<Sample> &samples,
                             bool scalar) {
        std::vector<std::pair<double, double>> pts;
        for (const Sample &s : samples) {
            const double f = scalar
                ? s.report.cycles.scalarFraction()
                : s.report.cycles.fraction(uarch::IsaLevel::AVX2);
            pts.emplace_back(s.entropy, f * 100);
        }
        return pts;
    };
    core::printSeries(std::cout, "coverage_scalar_pct",
                      fractionSeries(cov_samples, true));
    core::printSeries(std::cout, "coverage_avx2_pct",
                      fractionSeries(cov_samples, false));
    core::printSeries(std::cout, "vbench_scalar_pct",
                      fractionSeries(vbench_samples, true));
    core::printSeries(std::cout, "vbench_avx2_pct",
                      fractionSeries(vbench_samples, false));
    core::printSeries(std::cout, "netflix_scalar_pct",
                      fractionSeries(netflix_samples, true));
    core::printSeries(std::cout, "xiph_scalar_pct",
                      fractionSeries(xiph_samples, true));

    double scalar_avg = 0, avx2_avg = 0;
    for (const Sample &s : vbench_samples) {
        scalar_avg += s.report.cycles.scalarFraction();
        avx2_avg += s.report.cycles.fraction(uarch::IsaLevel::AVX2);
    }
    scalar_avg /= vbench_samples.size();
    avx2_avg /= vbench_samples.size();
    std::printf("vbench averages: scalar %.1f%% of cycles, AVX2 %.1f%%\n",
                scalar_avg * 100, avx2_avg * 100);
    std::printf("shape check: over half the cycles are scalar and <20%%"
                " are AVX2 —\nthe Amdahl ceiling §5.2 quantifies.\n");
    return 0;
}
