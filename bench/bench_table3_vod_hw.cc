/**
 * @file
 * Table 3 (and the VOD half of Figure 9): NVENC-like and QSV-like
 * hardware encoders on the VOD scenario — speed ratio S, bitrate ratio
 * B, and VOD score per suite video. Methodology per §5.3: highest
 * hardware effort, target bitrate found by bisection until the encode
 * meets the reference quality by a small margin.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "codec/decoder.h"
#include "core/report.h"
#include "core/scoring.h"
#include "hwenc/hwenc.h"
#include "metrics/rates.h"
#include "obs/obs.h"
#include "video/suite.h"

namespace {

using namespace vbench;

struct HwRow {
    core::Ratios ratios;
    core::ScoreResult score;
};

HwRow
runHw(const hwenc::HwEncoderSpec &spec, const bench::PreparedClip &clip,
      const core::TranscodeOutcome &reference)
{
    // Bisect the hardware bitrate until quality matches the reference.
    const auto decoded_input = codec::decode(clip.universal);
    const hwenc::HwEncodeResult hw = hwenc::encodeAtQuality(
        spec, *decoded_input, reference.m.psnr_db, 7,
        &clip.original, obs::globalTracer());

    const auto decoded = codec::decode(hw.encoded.stream);
    const double modeled_seconds = hw.seconds +
        clip.original.totalPixels() / 1600e6 /* modeled hw decode */;
    core::Measurement m = core::measure(clip.original, *decoded,
                                        hw.encoded.totalBytes(),
                                        modeled_seconds);
    bench::reportRun("table3", spec.name, m, modeled_seconds,
                     hw.encoded.totalBytes());

    HwRow row;
    row.ratios = core::computeRatios(reference.m, m);
    row.score = core::scoreScenario(
        core::Scenario::Vod, row.ratios, m,
        metrics::outputMegapixelsPerSecond(clip.original.width(),
                                           clip.original.height(),
                                           clip.original.fps()));
    return row;
}

} // namespace

int
main()
{
    bench::printHeader("Table 3 — hardware encoders on VOD",
                       "Table 3 and Fig. 9 top (S, B, VOD score per "
                       "video for NVENC/QSV analogues)");

    core::Table table({"video", "kpix", "entropy", "nv_S", "nv_B",
                       "nv_VOD", "qsv_S", "qsv_B", "qsv_VOD"});
    std::vector<std::pair<double, double>> nv_scatter, qsv_scatter;
    double nv_s_small = 0, nv_s_large = 0;
    int n_small = 0, n_large = 0;

    for (const video::ClipSpec &spec : video::vbenchSuite()) {
        const bench::PreparedClip clip = bench::prepare(spec);
        core::ReferenceStore refs;
        const core::TranscodeOutcome &ref = refs.get(
            spec.name, core::Scenario::Vod, clip.universal,
            clip.original);
        if (!ref.ok) {
            std::printf("reference failed for %s\n", spec.name.c_str());
            continue;
        }

        const HwRow nv = runHw(hwenc::nvencLikeSpec(), clip, ref);
        const HwRow qs = runHw(hwenc::qsvLikeSpec(), clip, ref);

        auto scoreCell = [](const HwRow &row) {
            return row.score.valid ? core::fmt(row.score.score, 2)
                                   : std::string("--");
        };
        table.addRow({spec.name, std::to_string(spec.kpixels()),
                      core::fmt(spec.target_entropy, 1),
                      core::fmt(nv.ratios.s, 2), core::fmt(nv.ratios.b, 2),
                      scoreCell(nv), core::fmt(qs.ratios.s, 2),
                      core::fmt(qs.ratios.b, 2), scoreCell(qs)});
        nv_scatter.emplace_back(nv.ratios.b, nv.ratios.s);
        qsv_scatter.emplace_back(qs.ratios.b, qs.ratios.s);

        if (spec.kpixels() < 1000) {
            nv_s_small += nv.ratios.s;
            ++n_small;
        } else {
            nv_s_large += nv.ratios.s;
            ++n_large;
        }
    }

    table.print(std::cout);
    std::printf("\n");
    core::printSeries(std::cout, "fig9_vod_nvenc_B_vs_S", nv_scatter);
    core::printSeries(std::cout, "fig9_vod_qsv_B_vs_S", qsv_scatter);

    if (n_small > 0 && n_large > 0) {
        std::printf("mean NVENC-like S: %.1f (<=720p) vs %.1f (>=1080p)\n",
                    nv_s_small / n_small, nv_s_large / n_large);
    }
    std::printf("shape check: S >> 1 everywhere and growing with"
                " resolution; B < 1\n(hardware buys speed with bitrate) —"
                " the Table 3 trade-off.\n");
    return 0;
}
