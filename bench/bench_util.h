#pragma once

/**
 * @file
 * Shared helpers for the experiment-reproduction benches: clip length
 * scaling (all reported metrics are duration-normalized, so benches
 * render short clips), and common run patterns.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/measure.h"
#include "core/reference.h"
#include "core/transcoder.h"
#include "obs/clock.h"
#include "video/suite.h"

namespace vbench::bench {

/**
 * Frames to render for a spec when reproducing experiments: scaled
 * down with resolution so each bench finishes in minutes. Every
 * vbench metric (Mpix/s, bits/pix/s, PSNR) is normalized by duration
 * and geometry, so short renders change noise, not meaning.
 */
inline int
benchFrames(const video::ClipSpec &spec)
{
    const double pixels = static_cast<double>(spec.width) * spec.height;
    if (pixels <= 0.5e6)
        return 20;  // <= 480p
    if (pixels <= 1.0e6)
        return 14;  // 720p
    if (pixels <= 2.2e6)
        return 8;   // 1080p
    return 6;       // 4K
}

/** Heading printed by every bench binary. */
inline void
printHeader(const std::string &title, const std::string &paper_ref)
{
    std::printf("== vbench: %s ==\n", title.c_str());
    std::printf("reproduces: %s\n\n", paper_ref.c_str());
}

/** Clip synthesis + upload stream, the common experiment prologue. */
struct PreparedClip {
    video::Video original;
    codec::ByteBuffer universal;
};

inline PreparedClip
prepare(const video::ClipSpec &spec, int frames = 0)
{
    PreparedClip p;
    p.original = video::synthesizeClip(
        spec, frames > 0 ? frames : benchFrames(spec));
    p.universal = core::makeUniversalStream(p.original);
    return p;
}

/**
 * Emit the machine-readable record of a finished transcode (one JSON
 * line on VBENCH_METRICS_OUT; no-op when reporting is disabled).
 */
inline void
reportRun(const std::string &label, const core::TranscodeRequest &request,
          const core::TranscodeOutcome &outcome)
{
    core::emitRunReport(core::makeRunReport(label, request, outcome));
}

/** Same for measurements that did not come from core::transcode(). */
inline void
reportRun(const std::string &label, const std::string &backend,
          const core::Measurement &m, double seconds, size_t stream_bytes)
{
    core::RunReport report;
    report.label = label;
    report.backend = backend;
    report.m = m;
    report.seconds = seconds;
    report.stream_bytes = stream_bytes;
    core::emitRunReport(report);
}

} // namespace vbench::bench
