#pragma once

/**
 * @file
 * Shared helpers for the experiment-reproduction benches: clip length
 * scaling (all reported metrics are duration-normalized, so benches
 * render short clips), and common run patterns.
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/measure.h"
#include "core/reference.h"
#include "core/transcoder.h"
#include "kernels/kernel_ops.h"
#include "obs/clock.h"
#include "sched/frame_threads.h"
#include "sched/scheduler.h"
#include "video/suite.h"

#ifndef VBENCH_GIT_DESCRIBE
#define VBENCH_GIT_DESCRIBE "unknown"
#endif

namespace vbench::bench {

/**
 * Provenance header for every BENCH_*.json: the resolved kernel ISA,
 * frame-thread and worker settings, and the build's `git describe`.
 * Splice the returned fields right after the top-level opening brace
 * (they end with a comma) so two result files are comparable — or
 * visibly not — without chasing down the host that produced them.
 */
inline std::string
jsonMetaFields()
{
    return std::string("\"meta\":{\"kernel_isa\":\"") +
        kernels::isaName(kernels::activeIsa()) +
        "\",\"frame_threads\":" +
        std::to_string(sched::frameThreadsFromEnv()) + ",\"jobs\":" +
        std::to_string(sched::Scheduler::defaultWorkerCount()) +
        ",\"git\":\"" VBENCH_GIT_DESCRIBE "\"},";
}

/**
 * Frames to render for a spec when reproducing experiments: scaled
 * down with resolution so each bench finishes in minutes. Every
 * vbench metric (Mpix/s, bits/pix/s, PSNR) is normalized by duration
 * and geometry, so short renders change noise, not meaning.
 */
inline int
benchFrames(const video::ClipSpec &spec)
{
    const double pixels = static_cast<double>(spec.width) * spec.height;
    if (pixels <= 0.5e6)
        return 20;  // <= 480p
    if (pixels <= 1.0e6)
        return 14;  // 720p
    if (pixels <= 2.2e6)
        return 8;   // 1080p
    return 6;       // 4K
}

/** Heading printed by every bench binary. */
inline void
printHeader(const std::string &title, const std::string &paper_ref)
{
    std::printf("== vbench: %s ==\n", title.c_str());
    std::printf("reproduces: %s\n\n", paper_ref.c_str());
}

/** Clip synthesis + upload stream, the common experiment prologue. */
struct PreparedClip {
    video::Video original;
    codec::ByteBuffer universal;
};

inline PreparedClip
prepare(const video::ClipSpec &spec, int frames = 0)
{
    PreparedClip p;
    p.original = video::synthesizeClip(
        spec, frames > 0 ? frames : benchFrames(spec));
    p.universal = core::makeUniversalStream(p.original);
    return p;
}

/**
 * Emit the machine-readable record of a finished transcode (one JSON
 * line on VBENCH_METRICS_OUT; no-op when reporting is disabled).
 */
inline void
reportRun(const std::string &label, const core::TranscodeRequest &request,
          const core::TranscodeOutcome &outcome)
{
    core::emitRunReport(core::makeRunReport(label, request, outcome));
}

/** Same for measurements that did not come from core::transcode(). */
inline void
reportRun(const std::string &label, const std::string &backend,
          const core::Measurement &m, double seconds, size_t stream_bytes)
{
    core::RunReport report;
    report.label = label;
    report.backend = backend;
    report.m = m;
    report.seconds = seconds;
    report.stream_bytes = stream_bytes;
    core::emitRunReport(report);
}

/**
 * Clip data in the shape scheduler jobs share: every operating point
 * of a grid holds the same two pointers instead of copying frames.
 */
struct SharedClip {
    std::shared_ptr<const video::Video> original;
    std::shared_ptr<const codec::ByteBuffer> universal;
};

inline SharedClip
prepareShared(const video::ClipSpec &spec, int frames = 0)
{
    auto original =
        std::make_shared<video::Video>(video::synthesizeClip(
            spec, frames > 0 ? frames : benchFrames(spec)));
    auto universal = std::make_shared<codec::ByteBuffer>(
        core::makeUniversalStream(*original));
    return {std::move(original), std::move(universal)};
}

/** Assemble one grid point of a batch. */
inline sched::TranscodeJob
makeJob(std::string label, const SharedClip &clip,
        core::TranscodeRequest request)
{
    return {std::move(label), clip.universal, clip.original,
            std::move(request)};
}

/** The one-line batch accounting every scheduled bench prints. */
inline void
printBatchStats(const sched::BatchStats &stats)
{
    std::printf("scheduler: %d workers, %zu jobs in %.2fs "
                "(%.2f jobs/s, %.2fx vs serial",
                stats.workers, stats.jobs, stats.wall_seconds,
                stats.jobs_per_second, stats.speedup_vs_serial);
    if (stats.failed > 0)
        std::printf(", %zu failed", stats.failed);
    if (stats.cancelled > 0)
        std::printf(", %zu cancelled", stats.cancelled);
    std::printf(")\n");
}

/**
 * Emit one run report per batch result (pass the same vector the
 * batch was built from; labels and requests pair up by index).
 */
inline void
reportBatch(const std::vector<sched::TranscodeJob> &jobs,
            const sched::BatchResult &batch)
{
    for (size_t i = 0;
         i < jobs.size() && i < batch.results.size(); ++i)
        reportRun(jobs[i].label, jobs[i].request,
                  batch.results[i].outcome);
}

} // namespace vbench::bench
