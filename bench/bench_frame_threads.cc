/**
 * @file
 * Frame-thread scaling curve: wall time, speedup, and parallel
 * efficiency of the intra-frame wavefront (VBENCH_FRAME_THREADS) for
 * both software codecs on the Live-reference 720p configuration — the
 * scenario whose real-time bound intra-frame parallelism exists to
 * serve (a single stream cannot hide behind job-level parallelism).
 *
 * Default mode sweeps thread widths 1..min(8, cores) at entropy slice
 * counts 1/2/4 (VBENCH_SLICES), prints the scaling tables, and writes
 * BENCH_frame_threads.json. Within one slice count every width's
 * stream is compared against that configuration's serial stream — a
 * mismatch is a hard failure, because bit-exactness at every width is
 * the frame-threads contract. Across slice counts the bench reports
 * the bitrate overhead slices cost (reset contexts, length prefixes).
 *
 * The JSON also carries the Amdahl accounting that motivates slices:
 * the measured serial fraction of the encode (the EntropyCoding leaf
 * share of the encode phase at one thread, via an attached
 * obs::Tracer), the projected ceiling 1/(s + (1-s)/T) that fraction
 * imposes on single-slice scaling, and the measured speedups — both
 * single-slice (which the ceiling binds) and slice-parallel (which
 * breaks it).
 *
 *   --smoke   quick gate for scripts/check.sh: 1-vs-4-thread
 *             bit-exactness at slice counts 1 and 4 for both codecs,
 *             plus the perf assertion that the slice-parallel entropy
 *             tail at 4 threads — the critical path, i.e. the longest
 *             single EntropySlice span per frame — strictly beats the
 *             serial EntropyCoding tail (slices=1), best of 3. The
 *             critical path is measured from tracer spans rather than
 *             4-thread wall clock so the gate holds on hosts with
 *             fewer than 4 real cores (CI runners), where concurrent
 *             threads timeshare and wall clock cannot show the win;
 *             the bit-exactness legs prove the per-slice work is
 *             thread-invariant, so the span measured at width 1 is
 *             exactly the work one of the 4 workers retires at width
 *             4. Exits nonzero on any mismatch or a non-win.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/reference.h"
#include "core/report.h"
#include "core/scenario.h"
#include "core/transcoder.h"
#include "obs/clock.h"
#include "obs/trace.h"
#include "sched/frame_threads.h"
#include "video/synth.h"

namespace {

using namespace vbench;

struct ScalePoint {
    int requested = 1;
    int effective = 1;
    double seconds = 0;
    double speedup = 1;
    double efficiency = 1;
    bool bit_exact = true;
};

/** One slice count's thread-scaling curve. */
struct SliceCurve {
    int slice_count = 1;
    /// Stream size overhead vs the single-slice stream, percent.
    double overhead_pct = 0;
    std::vector<ScalePoint> points;
};

struct CodecCurve {
    std::string name;
    std::vector<SliceCurve> slices;
    /// Measured serial fraction: EntropyCoding leaf seconds over the
    /// encode phase at one thread, single slice.
    double serial_fraction = 0;
};

core::TranscodeRequest
liveRequest(core::EncoderKind kind, int width, int height, double fps)
{
    core::TranscodeRequest req =
        core::referenceRequest(core::Scenario::Live, width, height, fps);
    req.kind = kind;
    if (kind == core::EncoderKind::NgcHevc)
        req.ngc_speed = 1;
    return req;
}

/** Amdahl's law: the speedup ceiling a serial fraction s sets at T. */
double
amdahlProjected(double s, int threads)
{
    return 1.0 / (s + (1.0 - s) / std::max(1, threads));
}

CodecCurve
sweep(core::EncoderKind kind, const bench::PreparedClip &clip, int width,
      int height, double fps, const std::vector<int> &widths,
      const std::vector<int> &slice_counts)
{
    CodecCurve curve;
    curve.name = toString(kind);
    size_t single_slice_bytes = 0;
    for (const int slices : slice_counts) {
        SliceCurve sc;
        sc.slice_count = slices;
        codec::ByteBuffer serial_stream;
        double serial_seconds = 0;
        for (const int threads : widths) {
            core::TranscodeRequest req =
                liveRequest(kind, width, height, fps);
            req.frame_threads = threads;
            req.slice_count = slices;
            // The serial single-slice run carries a tracer so the
            // EntropyCoding leaf share — the serial fraction the whole
            // bench is about — comes out of the same encode that
            // anchors the speedup baseline.
            obs::Tracer tracer;
            if (threads == 1 && slices == 1)
                req.tracer = &tracer;
            // The bench measures the *encoder's* scaling, so it
            // registers the requested width as the pool budget — the
            // same call a live scheduler makes. Without this, a small
            // host's hardware-concurrency fallback clamps every width
            // and the curve degenerates to one point.
            sched::setFrameThreadBudget(threads);
            const double start = obs::nowSeconds();
            const core::TranscodeOutcome outcome =
                core::transcode(clip.universal, clip.original, req);
            const double seconds = obs::nowSeconds() - start;
            if (!outcome.ok) {
                std::fprintf(stderr, "%s transcode failed: %s\n",
                             curve.name.c_str(), outcome.error.c_str());
                std::exit(1);
            }
            if (threads == 1) {
                serial_stream = outcome.stream;
                serial_seconds = seconds;
                if (slices == 1) {
                    single_slice_bytes = outcome.stream.size();
                    const double encode_s =
                        outcome.stages.get(obs::Stage::Encode);
                    const double entropy_s =
                        outcome.stages.get(obs::Stage::EntropyCoding);
                    if (encode_s > 0)
                        curve.serial_fraction = std::clamp(
                            entropy_s / encode_s, 0.0, 1.0);
                }
                if (single_slice_bytes > 0)
                    sc.overhead_pct =
                        (static_cast<double>(outcome.stream.size()) /
                             static_cast<double>(single_slice_bytes) -
                         1.0) * 100.0;
            }
            ScalePoint p;
            p.requested = threads;
            p.effective = outcome.frame_threads;
            p.seconds = seconds;
            p.speedup = serial_seconds > 0 ? serial_seconds / seconds : 1;
            p.efficiency = p.speedup / std::max(1, outcome.frame_threads);
            p.bit_exact = outcome.stream == serial_stream;
            sc.points.push_back(p);

            core::RunReport report =
                core::makeRunReport("frame_threads_720p", req, outcome);
            report.extra.emplace_back("requested_threads", threads);
            report.extra.emplace_back("speedup_vs_serial", p.speedup);
            core::emitRunReport(report);
        }
        curve.slices.push_back(std::move(sc));
    }
    sched::setFrameThreadBudget(0);
    return curve;
}

int
runSweep(const std::string &json_path)
{
    bench::printHeader(
        "frame-thread scaling (wavefront + slice-parallel entropy)",
        "extension of §4.2 Live: one stream, real-time bound");

    const int width = 1280, height = 720;
    const double fps = 30.0;
    video::ClipSpec spec;
    spec.name = "live720p";
    spec.width = width;
    spec.height = height;
    spec.fps = fps;
    spec.content = video::ContentClass::Natural;
    spec.seed = 11;
    const bench::PreparedClip clip = bench::prepare(spec);

    // Always sweep 1/2/4 so the curve (and the bit-exactness check at
    // each width) exists even on small hosts; wider points only where
    // the cores can back them.
    const int cores = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
    std::vector<int> widths = {1, 2, 4};
    for (int t = 8; t <= std::min(16, cores); t *= 2)
        widths.push_back(t);
    const std::vector<int> slice_counts = {1, 2, 4};

    std::vector<CodecCurve> curves;
    for (const core::EncoderKind kind :
         {core::EncoderKind::Vbc, core::EncoderKind::NgcHevc})
        curves.push_back(
            sweep(kind, clip, width, height, fps, widths, slice_counts));

    bool all_exact = true;
    for (const CodecCurve &curve : curves) {
        std::printf("%s, Live 720p: serial (entropy) fraction %.3f\n",
                    curve.name.c_str(), curve.serial_fraction);
        for (const SliceCurve &sc : curve.slices) {
            std::printf("slices=%d (stream overhead %+.2f%%)\n",
                        sc.slice_count, sc.overhead_pct);
            std::printf("%-10s %-10s %-10s %-9s %-11s %s\n", "requested",
                        "effective", "seconds", "speedup", "efficiency",
                        "bit-exact");
            for (const ScalePoint &p : sc.points) {
                std::printf("%-10d %-10d %-10.3f %-9.2f %-11.2f %s\n",
                            p.requested, p.effective, p.seconds,
                            p.speedup, p.efficiency,
                            p.bit_exact ? "yes" : "NO");
                all_exact = all_exact && p.bit_exact;
            }
            std::printf("\n");
        }
    }

    std::FILE *f = std::fopen(json_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(f, "{%s\"clip\":\"live720p\",\"codecs\":[",
                 bench::jsonMetaFields().c_str());
    for (size_t c = 0; c < curves.size(); ++c) {
        const CodecCurve &curve = curves[c];
        std::fprintf(f, "%s{\"name\":\"%s\",\"serial_fraction\":%.4f,",
                     c ? "," : "", curve.name.c_str(),
                     curve.serial_fraction);
        // Projected single-slice Amdahl ceiling vs what was measured,
        // at every swept width — the motivation record for slices.
        std::fprintf(f, "\"amdahl\":[");
        const SliceCurve &single = curve.slices.front();
        for (size_t i = 0; i < single.points.size(); ++i) {
            const ScalePoint &p = single.points[i];
            std::fprintf(f,
                         "%s{\"threads\":%d,\"projected\":%.3f,"
                         "\"measured\":%.3f}",
                         i ? "," : "", p.requested,
                         amdahlProjected(curve.serial_fraction,
                                         p.requested),
                         p.speedup);
        }
        std::fprintf(f, "],\"slices\":[");
        for (size_t s = 0; s < curve.slices.size(); ++s) {
            const SliceCurve &sc = curve.slices[s];
            std::fprintf(f,
                         "%s{\"slice_count\":%d,\"overhead_pct\":%.3f,"
                         "\"points\":[",
                         s ? "," : "", sc.slice_count, sc.overhead_pct);
            for (size_t i = 0; i < sc.points.size(); ++i) {
                const ScalePoint &p = sc.points[i];
                std::fprintf(f,
                             "%s{\"requested\":%d,\"effective\":%d,"
                             "\"seconds\":%.4f,\"speedup\":%.3f,"
                             "\"efficiency\":%.3f,\"bit_exact\":%s}",
                             i ? "," : "", p.requested, p.effective,
                             p.seconds, p.speedup, p.efficiency,
                             p.bit_exact ? "true" : "false");
            }
            std::fprintf(f, "]}");
        }
        std::fprintf(f, "]}");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());

    if (!all_exact) {
        std::fprintf(stderr,
                     "FAIL: stream changed with thread count\n");
        return 1;
    }
    return 0;
}

/**
 * Best-of-3 entropy-tail seconds for one slice count on the smoke
 * clip. slices=1 measures the serial tail: the EntropyCoding leaf
 * total from an attached tracer. slices>1 measures the slice-parallel
 * tail: the critical path through the entropy pass — per frame, the
 * longest single EntropySlice span, summed over frames — which is the
 * wall time the pass costs once each slice has its own worker. Runs
 * at width 1 so the spans measure pure per-slice work with no
 * timeshare noise on small hosts; the smoke bit-exactness legs prove
 * the per-slice work is identical at every width.
 */
double
smokeEntropyTailSeconds(core::EncoderKind kind,
                        const bench::PreparedClip &clip,
                        const video::ClipSpec &spec, int slices)
{
    double best = 0;
    for (int rep = 0; rep < 3; ++rep) {
        obs::Tracer tracer;
        core::TranscodeRequest req =
            liveRequest(kind, spec.width, spec.height, spec.fps);
        req.frame_threads = 1;
        req.slice_count = slices;
        req.tracer = &tracer;
        const core::TranscodeOutcome outcome =
            core::transcode(clip.universal, clip.original, req);
        if (!outcome.ok) {
            std::fprintf(stderr, "%s: transcode failed: %s\n",
                         toString(kind), outcome.error.c_str());
            std::exit(1);
        }
        double tail = 0;
        if (slices == 1) {
            tail = tracer.stageTotals().get(obs::Stage::EntropyCoding);
        } else {
            std::map<int32_t, double> frame_max;
            for (const obs::TraceEvent &ev : tracer.traceEvents()) {
                if (ev.stage != obs::Stage::EntropySlice)
                    continue;
                double &m = frame_max[ev.frame];
                m = std::max(m, static_cast<double>(ev.dur_ns) * 1e-9);
            }
            if (frame_max.empty()) {
                std::fprintf(stderr,
                             "%s: no EntropySlice spans at slices=%d\n",
                             toString(kind), slices);
                std::exit(1);
            }
            for (const auto &[frame, dur] : frame_max)
                tail += dur;
        }
        if (rep == 0 || tail < best)
            best = tail;
    }
    return best;
}

/** Bit-exactness + slice-perf gate for check.sh. */
int
runSmoke()
{
    video::ClipSpec spec;
    spec.name = "smoke";
    spec.width = 320;
    spec.height = 192;
    spec.fps = 30.0;
    spec.content = video::ContentClass::Natural;
    spec.seed = 5;
    const bench::PreparedClip clip = bench::prepare(spec, 6);

    bool ok = true;
    for (const core::EncoderKind kind :
         {core::EncoderKind::Vbc, core::EncoderKind::NgcHevc}) {
        // Bit-exactness across thread widths must hold at every slice
        // count — slices change the bytes, threads never do.
        for (const int slices : {1, 4}) {
            codec::ByteBuffer serial;
            for (const int threads : {1, 4}) {
                core::TranscodeRequest req =
                    liveRequest(kind, spec.width, spec.height, spec.fps);
                req.frame_threads = threads;
                req.slice_count = slices;
                // Honor the width even on a small host (see sweep()):
                // the gate must actually run the wavefront 4-wide.
                sched::setFrameThreadBudget(threads);
                const core::TranscodeOutcome outcome =
                    core::transcode(clip.universal, clip.original, req);
                sched::setFrameThreadBudget(0);
                if (outcome.frame_threads != threads) {
                    std::fprintf(
                        stderr,
                        "%s: expected width %d, encoder ran %d\n",
                        toString(kind), threads, outcome.frame_threads);
                    return 1;
                }
                if (outcome.slice_count != slices) {
                    std::fprintf(
                        stderr,
                        "%s: expected %d slices, encoder ran %d\n",
                        toString(kind), slices, outcome.slice_count);
                    return 1;
                }
                if (!outcome.ok) {
                    std::fprintf(stderr, "%s: transcode failed: %s\n",
                                 toString(kind), outcome.error.c_str());
                    return 1;
                }
                if (threads == 1) {
                    serial = outcome.stream;
                } else if (outcome.stream != serial) {
                    std::fprintf(stderr,
                                 "%s: slices=%d frame_threads=%d stream "
                                 "differs from serial\n",
                                 toString(kind), slices, threads);
                    ok = false;
                }
            }
            std::printf("%-4s slices=%d 1-vs-4 threads: %s\n",
                        toString(kind), slices,
                        ok ? "byte-identical" : "MISMATCH");
        }
    }

    // The perf gate: with 4 slices and 4 workers the entropy pass's
    // wall time is its critical path — the longest single slice. That
    // critical path must strictly beat the serial entropy tail for
    // both codecs, best of 3, on a clip tall enough (24 MB rows) for
    // 4 bands of real work. Measured from tracer spans, not 4-thread
    // wall clock, so the gate also holds on 1-core CI hosts (see the
    // file header).
    video::ClipSpec perf = spec;
    perf.name = "smoke-perf";
    perf.width = 640;
    perf.height = 384;
    const bench::PreparedClip perf_clip = bench::prepare(perf, 6);
    for (const core::EncoderKind kind :
         {core::EncoderKind::Vbc, core::EncoderKind::NgcHevc}) {
        const double serial_tail =
            smokeEntropyTailSeconds(kind, perf_clip, perf, 1);
        const double sliced_tail =
            smokeEntropyTailSeconds(kind, perf_clip, perf, 4);
        const bool win = sliced_tail < serial_tail;
        std::printf(
            "%-4s entropy tail: serial %.4fs, slices=4 critical path "
            "%.4fs (%s)\n",
            toString(kind), serial_tail, sliced_tail,
            win ? "slice-parallel wins" : "NO WIN");
        if (!win) {
            std::fprintf(stderr,
                         "%s: slice-parallel entropy tail did not beat "
                         "the serial entropy tail at 4 slices\n",
                         toString(kind));
            ok = false;
        }
    }
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = "BENCH_frame_threads.json";
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--out" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--smoke] [--out FILE]\n",
                         argv[0]);
            return 2;
        }
    }
    return smoke ? runSmoke() : runSweep(json_path);
}
