/**
 * @file
 * Frame-thread scaling curve: wall time, speedup, and parallel
 * efficiency of the intra-frame wavefront (VBENCH_FRAME_THREADS) for
 * both software codecs on the Live-reference 720p configuration — the
 * scenario whose real-time bound intra-frame parallelism exists to
 * serve (a single stream cannot hide behind job-level parallelism).
 *
 * Default mode sweeps thread widths 1..min(8, cores), prints the
 * scaling table, and writes BENCH_frame_threads.json. Every width's
 * stream is compared against the serial one — a mismatch is a hard
 * failure, because bit-exactness is the knob's contract.
 *
 *   --smoke   quick 1-vs-N bit-exactness gate on a small clip for
 *             both codecs; exits nonzero on any mismatch. Wired into
 *             scripts/check.sh.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/reference.h"
#include "core/report.h"
#include "core/scenario.h"
#include "core/transcoder.h"
#include "obs/clock.h"
#include "sched/frame_threads.h"
#include "video/synth.h"

namespace {

using namespace vbench;

struct ScalePoint {
    int requested = 1;
    int effective = 1;
    double seconds = 0;
    double speedup = 1;
    double efficiency = 1;
    bool bit_exact = true;
};

struct CodecCurve {
    std::string name;
    std::vector<ScalePoint> points;
};

core::TranscodeRequest
liveRequest(core::EncoderKind kind, int width, int height, double fps)
{
    core::TranscodeRequest req =
        core::referenceRequest(core::Scenario::Live, width, height, fps);
    req.kind = kind;
    if (kind == core::EncoderKind::NgcHevc)
        req.ngc_speed = 1;
    return req;
}

CodecCurve
sweep(core::EncoderKind kind, const bench::PreparedClip &clip, int width,
      int height, double fps, const std::vector<int> &widths)
{
    CodecCurve curve;
    curve.name = toString(kind);
    codec::ByteBuffer serial_stream;
    double serial_seconds = 0;
    for (const int threads : widths) {
        core::TranscodeRequest req =
            liveRequest(kind, width, height, fps);
        req.frame_threads = threads;
        // The bench measures the *encoder's* scaling, so it registers
        // the requested width as the pool budget — the same call a
        // live scheduler makes. Without this, a small host's
        // hardware-concurrency fallback clamps every width and the
        // curve degenerates to one point.
        sched::setFrameThreadBudget(threads);
        const double start = obs::nowSeconds();
        const core::TranscodeOutcome outcome =
            core::transcode(clip.universal, clip.original, req);
        const double seconds = obs::nowSeconds() - start;
        if (!outcome.ok) {
            std::fprintf(stderr, "%s transcode failed: %s\n",
                         curve.name.c_str(), outcome.error.c_str());
            std::exit(1);
        }
        if (threads == 1) {
            serial_stream = outcome.stream;
            serial_seconds = seconds;
        }
        ScalePoint p;
        p.requested = threads;
        p.effective = outcome.frame_threads;
        p.seconds = seconds;
        p.speedup = serial_seconds > 0 ? serial_seconds / seconds : 1;
        p.efficiency = p.speedup / std::max(1, outcome.frame_threads);
        p.bit_exact = outcome.stream == serial_stream;
        curve.points.push_back(p);

        core::RunReport report =
            core::makeRunReport("frame_threads_720p", req, outcome);
        report.extra.emplace_back("requested_threads", threads);
        report.extra.emplace_back("speedup_vs_serial", p.speedup);
        core::emitRunReport(report);
    }
    sched::setFrameThreadBudget(0);
    return curve;
}

int
runSweep(const std::string &json_path)
{
    bench::printHeader(
        "frame-thread scaling (wavefront intra-frame parallelism)",
        "extension of §4.2 Live: one stream, real-time bound");

    const int width = 1280, height = 720;
    const double fps = 30.0;
    video::ClipSpec spec;
    spec.name = "live720p";
    spec.width = width;
    spec.height = height;
    spec.fps = fps;
    spec.content = video::ContentClass::Natural;
    spec.seed = 11;
    const bench::PreparedClip clip = bench::prepare(spec);

    // Always sweep 1/2/4 so the curve (and the bit-exactness check at
    // each width) exists even on small hosts; wider points only where
    // the cores can back them.
    const int cores = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
    std::vector<int> widths = {1, 2, 4};
    for (int t = 8; t <= std::min(16, cores); t *= 2)
        widths.push_back(t);

    std::vector<CodecCurve> curves;
    for (const core::EncoderKind kind :
         {core::EncoderKind::Vbc, core::EncoderKind::NgcHevc})
        curves.push_back(
            sweep(kind, clip, width, height, fps, widths));

    bool all_exact = true;
    for (const CodecCurve &curve : curves) {
        std::printf("%s, Live 720p\n", curve.name.c_str());
        std::printf("%-10s %-10s %-10s %-9s %-11s %s\n", "requested",
                    "effective", "seconds", "speedup", "efficiency",
                    "bit-exact");
        for (const ScalePoint &p : curve.points) {
            std::printf("%-10d %-10d %-10.3f %-9.2f %-11.2f %s\n",
                        p.requested, p.effective, p.seconds, p.speedup,
                        p.efficiency, p.bit_exact ? "yes" : "NO");
            all_exact = all_exact && p.bit_exact;
        }
        std::printf("\n");
    }

    std::FILE *f = std::fopen(json_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(f, "{%s\"clip\":\"live720p\",\"codecs\":[",
                 bench::jsonMetaFields().c_str());
    for (size_t c = 0; c < curves.size(); ++c) {
        std::fprintf(f, "%s{\"name\":\"%s\",\"points\":[", c ? "," : "",
                     curves[c].name.c_str());
        for (size_t i = 0; i < curves[c].points.size(); ++i) {
            const ScalePoint &p = curves[c].points[i];
            std::fprintf(f,
                         "%s{\"requested\":%d,\"effective\":%d,"
                         "\"seconds\":%.4f,\"speedup\":%.3f,"
                         "\"efficiency\":%.3f,\"bit_exact\":%s}",
                         i ? "," : "", p.requested, p.effective,
                         p.seconds, p.speedup, p.efficiency,
                         p.bit_exact ? "true" : "false");
        }
        std::fprintf(f, "]}");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());

    if (!all_exact) {
        std::fprintf(stderr,
                     "FAIL: stream changed with thread count\n");
        return 1;
    }
    return 0;
}

/** 1-vs-N gate for check.sh: small clip, both codecs, exact match. */
int
runSmoke()
{
    video::ClipSpec spec;
    spec.name = "smoke";
    spec.width = 320;
    spec.height = 192;
    spec.fps = 30.0;
    spec.content = video::ContentClass::Natural;
    spec.seed = 5;
    const bench::PreparedClip clip = bench::prepare(spec, 6);

    bool ok = true;
    for (const core::EncoderKind kind :
         {core::EncoderKind::Vbc, core::EncoderKind::NgcHevc}) {
        codec::ByteBuffer serial;
        for (const int threads : {1, 4}) {
            core::TranscodeRequest req =
                liveRequest(kind, spec.width, spec.height, spec.fps);
            req.frame_threads = threads;
            // Honor the width even on a small host (see sweep()): the
            // gate must actually run the wavefront 4-wide.
            sched::setFrameThreadBudget(threads);
            const core::TranscodeOutcome outcome =
                core::transcode(clip.universal, clip.original, req);
            sched::setFrameThreadBudget(0);
            if (outcome.frame_threads != threads) {
                std::fprintf(stderr,
                             "%s: expected width %d, encoder ran %d\n",
                             toString(kind), threads,
                             outcome.frame_threads);
                return 1;
            }
            if (!outcome.ok) {
                std::fprintf(stderr, "%s: transcode failed: %s\n",
                             toString(kind), outcome.error.c_str());
                return 1;
            }
            if (threads == 1) {
                serial = outcome.stream;
            } else if (outcome.stream != serial) {
                std::fprintf(
                    stderr,
                    "%s: frame_threads=%d stream differs from serial\n",
                    toString(kind), threads);
                ok = false;
            }
        }
        std::printf("%-4s 1-vs-4 threads: %s\n", toString(kind),
                    ok ? "byte-identical" : "MISMATCH");
    }
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = "BENCH_frame_threads.json";
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--out" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--smoke] [--out FILE]\n",
                         argv[0]);
            return 2;
        }
    }
    return smoke ? runSmoke() : runSweep(json_path);
}
