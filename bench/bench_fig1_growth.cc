/**
 * @file
 * Figure 1: YouTube upload-hours growth vs CPU (SPECrate) growth,
 * 2006-2016, both normalized to June 2007.
 *
 * This figure is the paper's motivation and is built from public data
 * points (Tubular Insights upload statistics; SPECint Rate 2006 median
 * submissions), reproduced here as an analytic model: uploads compound
 * at ~55%/year, SPECrate medians at ~25%/year. The output is the
 * growth gap the rest of the benchmark exists to address.
 */

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/report.h"

namespace {

/** Published upload checkpoints (hours uploaded per minute). */
const std::pair<int, double> kUploadCheckpoints[] = {
    {2007, 6}, {2009, 20}, {2011, 48}, {2013, 100}, {2015, 400},
    {2016, 500},
};

/** Interpolate upload rate (log-linear between checkpoints). */
double
uploadsAt(int year)
{
    const auto *prev = &kUploadCheckpoints[0];
    for (const auto &cp : kUploadCheckpoints) {
        if (cp.first == year)
            return cp.second;
        if (cp.first > year) {
            const double t = static_cast<double>(year - prev->first) /
                (cp.first - prev->first);
            return prev->second *
                std::pow(cp.second / prev->second, t);
        }
        prev = &cp;
    }
    return kUploadCheckpoints[5].second;
}

/** SPECint Rate 2006 median submission growth, ~25% per year. */
double
specRateAt(int year)
{
    return std::pow(1.25, year - 2007);
}

} // namespace

int
main()
{
    using vbench::core::Table;
    using vbench::core::fmt;

    std::printf("== vbench: Figure 1 — upload growth vs CPU growth ==\n");
    std::printf("reproduces: Fig. 1 (growth since June 2007, log scale)\n\n");

    Table table({"year", "uploads_growth", "specrate_growth", "gap"});
    const double upload_base = uploadsAt(2007);
    for (int year = 2006; year <= 2016; ++year) {
        const double uploads = uploadsAt(year) / upload_base;
        const double spec = specRateAt(year);
        table.addRow({std::to_string(year), fmt(uploads, 2), fmt(spec, 2),
                      fmt(uploads / spec, 2)});
    }
    table.print(std::cout);

    std::printf("\nshape check: uploads outgrow SPECrate by >20x over the"
                " decade,\nthe widening gap that motivates transcoding"
                " acceleration.\n");
    return 0;
}
