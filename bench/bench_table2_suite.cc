/**
 * @file
 * Table 2: the vbench video suite — name, resolution, and measured
 * entropy (bits/pixel/second when encoded at CRF 18, the paper's
 * §4.1 definition).
 *
 * The synthetic clips are calibrated toward the paper's per-clip
 * entropy targets; this bench *measures* them with the actual encoder,
 * exactly as the paper's methodology does, and reports target vs
 * measured. The 15 per-clip encodes are independent, so they go
 * through the parallel scheduler as one batch (VBENCH_JOBS workers);
 * the measured entropies are bitwise-identical at any worker count.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "core/report.h"
#include "metrics/rates.h"
#include "sched/scheduler.h"
#include "video/suite.h"

int
main()
{
    using namespace vbench;

    bench::printHeader("Table 2 — the vbench suite",
                       "Table 2 (15 clips: resolution, name, entropy at "
                       "CRF 18)");

    // One job per clip: the paper's entropy operating point, VBC at
    // CRF 18, default effort.
    std::vector<bench::SharedClip> clips;
    std::vector<sched::TranscodeJob> jobs;
    for (const video::ClipSpec &spec : video::vbenchSuite()) {
        clips.push_back(bench::prepareShared(spec));
        core::TranscodeRequest req;
        req.kind = core::EncoderKind::Vbc;
        req.rc.mode = codec::RcMode::Crf;
        req.rc.crf = 18;
        req.effort = 5;
        req.gop = 30;
        jobs.push_back(bench::makeJob(spec.name, clips.back(), req));
    }

    sched::Scheduler scheduler;
    const sched::BatchResult batch = scheduler.runBatch(jobs);
    bench::reportBatch(jobs, batch);

    core::Table table({"resolution", "kpixel", "fps", "name", "class",
                       "entropy_target", "entropy_measured"});
    size_t row = 0;
    for (const video::ClipSpec &spec : video::vbenchSuite()) {
        const sched::JobResult &result = batch.results[row++];
        if (!result.ok()) {
            std::printf("transcode failed for %s: %s\n",
                        spec.name.c_str(),
                        result.outcome.error.c_str());
            continue;
        }
        // The paper's entropy definition: bits/pixel/s at CRF 18.
        const video::Video &clip = *clips[row - 1].original;
        const double entropy = metrics::bitsPerPixelPerSecond(
            result.outcome.stream.size(), clip.width(), clip.height(),
            clip.frameCount(), clip.fps());

        table.addRow({std::to_string(spec.width) + "x" +
                          std::to_string(spec.height),
                      std::to_string(spec.kpixels()),
                      core::fmt(spec.fps, 0), spec.name,
                      video::toString(spec.content),
                      core::fmt(spec.target_entropy, 1),
                      core::fmt(entropy, 2)});
    }
    table.print(std::cout);

    std::printf("\n");
    bench::printBatchStats(batch.stats);
    std::printf("\nshape check: measured entropy spans well over an order"
                " of magnitude\nacross the suite (desktop/presentation low,"
                " hall/landscape/holi high),\nmatching Table 2's spread."
                "\n");
    return 0;
}
