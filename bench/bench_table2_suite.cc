/**
 * @file
 * Table 2: the vbench video suite — name, resolution, and measured
 * entropy (bits/pixel/second when encoded at CRF 18, the paper's
 * §4.1 definition).
 *
 * The synthetic clips are calibrated toward the paper's per-clip
 * entropy targets; this bench *measures* them with the actual encoder,
 * exactly as the paper's methodology does, and reports target vs
 * measured.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "codec/encoder.h"
#include "core/report.h"
#include "metrics/rates.h"
#include "video/suite.h"

int
main()
{
    using namespace vbench;

    bench::printHeader("Table 2 — the vbench suite",
                       "Table 2 (15 clips: resolution, name, entropy at "
                       "CRF 18)");

    core::Table table({"resolution", "kpixel", "fps", "name", "class",
                       "entropy_target", "entropy_measured"});

    for (const video::ClipSpec &spec : video::vbenchSuite()) {
        const video::Video clip =
            video::synthesizeClip(spec, bench::benchFrames(spec));

        // The paper's entropy definition: bits/pixel/s at CRF 18.
        codec::EncoderConfig cfg;
        cfg.rc.mode = codec::RcMode::Crf;
        cfg.rc.crf = 18;
        cfg.effort = 5;
        cfg.gop = 30;
        codec::Encoder encoder(cfg);
        const codec::EncodeResult result = encoder.encode(clip);
        const double entropy = metrics::bitsPerPixelPerSecond(
            result.totalBytes(), clip.width(), clip.height(),
            clip.frameCount(), clip.fps());

        table.addRow({std::to_string(spec.width) + "x" +
                          std::to_string(spec.height),
                      std::to_string(spec.kpixels()),
                      core::fmt(spec.fps, 0), spec.name,
                      video::toString(spec.content),
                      core::fmt(spec.target_entropy, 1),
                      core::fmt(entropy, 2)});
    }
    table.print(std::cout);

    std::printf("\nshape check: measured entropy spans well over an order"
                " of magnitude\nacross the suite (desktop/presentation low,"
                " hall/landscape/holi high),\nmatching Table 2's spread."
                "\n");
    return 0;
}
