/**
 * @file
 * Service-level benchmark: the split-and-stitch transcoding service
 * (docs/SERVICE.md) under an open-loop Poisson workload spanning all
 * five vbench scenarios. Reports the SLA scorecard — per-scenario
 * p50/p95/p99 segment latency, deadline hit-rate, goodput, and drop
 * rate — as a table and as BENCH_service.json.
 *
 * Environment knobs: VBENCH_ARRIVAL_RATE (requests/second),
 * VBENCH_SEGMENT_FRAMES (frames per segment), VBENCH_ZIPF_S (workload
 * popularity skew), VBENCH_JOBS (workers).
 * Setting VBENCH_FLEET routes every segment through the modeled
 * heterogeneous fleet (docs/FLEET.md): VBENCH_FLEET_POLICY picks the
 * placement policy, VBENCH_FLEET_CALIB names the perf-model cache
 * (empty keeps the stock model), and the SLA scorecard grows $/stream
 * columns plus the `service.fleet` run report.
 * Setting VBENCH_CACHE_MB attaches the transcode output cache
 * (docs/CACHE.md): VBENCH_CACHE_POLICY picks the store-vs-recompute
 * policy, VBENCH_CACHE_GB_HOUR the storage price, and the scorecard
 * grows a cache line plus the `service.cache` run report.
 *
 *   --seed N  workload base seed (default 40): the same seed replays
 *             the same arrival sequence, for reproducible runs
 *   --smoke   tiny corpus, Live + Upload only, generous deadlines;
 *             exits nonzero on any dropped request or a deadline
 *             hit-rate below 90%. Wired into scripts/check.sh.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cache/cache.h"
#include "core/runtime_config.h"
#include "core/scenario.h"
#include "fleet/calibrate.h"
#include "fleet/types.h"
#include "obs/obs.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "service/service.h"
#include "service/workload.h"
#include "video/suite.h"
#include "video/synth.h"

namespace {

using namespace vbench;

std::vector<video::ClipSpec>
corpusSpecs(bool smoke)
{
    const auto spec = [](const char *name, int w, int h,
                         video::ContentClass content, uint64_t seed) {
        video::ClipSpec s;
        s.name = name;
        s.width = w;
        s.height = h;
        s.fps = 30.0;
        s.content = content;
        s.seed = seed;
        return s;
    };
    if (smoke)
        return {
            spec("smoke_nat", 192, 128, video::ContentClass::Natural, 7),
            spec("smoke_anim", 192, 128, video::ContentClass::Animation,
                 9),
        };
    // Popularity rank order: the Zipf head gets the natural clip.
    return {
        spec("svc_natural", 320, 192, video::ContentClass::Natural, 21),
        spec("svc_sports", 320, 192, video::ContentClass::Sports, 22),
        spec("svc_screen", 256, 144, video::ContentClass::Screencast, 23),
        spec("svc_anim", 256, 144, video::ContentClass::Animation, 24),
    };
}

/**
 * One-hot Poisson stream per scenario, merged afterwards (the
 * superposition of independent Poisson processes is Poisson). Retries
 * with a longer window when a scenario's stream comes up empty so the
 * scorecard always covers every requested scenario.
 */
std::vector<service::ServiceRequest>
generateMixedWorkload(const service::Corpus &corpus,
                      const std::vector<core::Scenario> &scenarios,
                      double per_scenario_rate, double duration_s,
                      uint64_t base_seed, double live_slack,
                      double upload_slack)
{
    std::vector<service::ServiceRequest> merged;
    uint64_t id = 0;
    for (const core::Scenario scenario : scenarios) {
        service::WorkloadConfig config;
        config.arrival_rate_hz = per_scenario_rate;
        config.duration_s = duration_s;
        config.seed = base_seed + static_cast<uint64_t>(scenario);
        config.mix = {};
        config.mix[static_cast<size_t>(scenario)] = 1;
        config.live_slack = live_slack;
        config.upload_slack = upload_slack;
        std::vector<service::ServiceRequest> part =
            service::generateWorkload(config, corpus);
        for (int retry = 0; part.empty() && retry < 8; ++retry) {
            config.seed += 100;
            config.duration_s *= 2;
            part = service::generateWorkload(config, corpus);
        }
        for (service::ServiceRequest &req : part) {
            req.id = id++;
            merged.push_back(std::move(req));
        }
    }
    return merged;
}

/** The VBENCH_FLEET wiring: topology, policy, and perf model. */
struct FleetSetup {
    fleet::FleetConfig config;
    fleet::PerfModel model;
};

/**
 * Build the fleet from the environment. Empty VBENCH_FLEET means no
 * fleet (cost columns stay zero). A malformed spec fails fast like any
 * other runtime-config error; VBENCH_FLEET_CALIB loads/creates the
 * calibration cache, empty keeps the stock perf model.
 */
std::optional<FleetSetup>
fleetFromEnv(const core::RuntimeConfig &env)
{
    if (env.fleet_spec.empty())
        return std::nullopt;
    std::string error;
    const auto types = fleet::parseFleetSpec(env.fleet_spec, &error);
    if (!types) {
        std::fprintf(stderr, "vbench: VBENCH_FLEET=%s: %s\n",
                     env.fleet_spec.c_str(), error.c_str());
        std::exit(2);
    }
    FleetSetup setup;
    setup.config.types = *types;
    if (!env.fleet_policy.empty())
        setup.config.policy = *fleet::parsePolicyName(env.fleet_policy);
    if (!env.fleet_calib_path.empty()) {
        std::string log;
        setup.model =
            fleet::calibratePerfModel(env.fleet_calib_path, &log);
        std::printf("fleet perf model: %s\n", log.c_str());
    }
    return setup;
}

/**
 * Build the transcode output cache from the environment. Unset/zero
 * VBENCH_CACHE_MB means no cache; the policy and storage price knobs
 * were already validated by core::RuntimeConfig.
 */
std::unique_ptr<cache::TranscodeCache>
cacheFromEnv(const core::RuntimeConfig &env)
{
    if (!(env.cache_mb > 0))
        return nullptr;
    cache::CacheConfig cc;
    cc.capacity_bytes =
        static_cast<size_t>(env.cache_mb * (1 << 20));
    if (!env.cache_policy.empty())
        cc.policy = *cache::parseCachePolicyName(env.cache_policy);
    if (env.cache_gb_hour > 0)
        cc.storage_dollars_per_gb_hour = env.cache_gb_hour;
    std::printf("cache: %.1f MB, %s policy, $%.3f/GB-hour\n",
                env.cache_mb, cache::policyName(cc.policy),
                cc.storage_dollars_per_gb_hour);
    return std::make_unique<cache::TranscodeCache>(cc);
}

void
printScorecard(const service::SlaReport &sla)
{
    std::printf("%-10s %-9s %-8s %-9s %-9s %-9s %-9s %-6s %-13s %s\n",
                "scenario", "requests", "dropped", "segments", "p50_ms",
                "p95_ms", "p99_ms", "hit%", "goodput_mpix/s", "drop%");
    for (const service::ScenarioScore &s : sla.scenarios)
        std::printf(
            "%-10s %-9llu %-8llu %-9llu %-9.2f %-9.2f %-9.2f %-6.1f "
            "%-13.2f %.1f\n",
            core::toString(s.scenario),
            static_cast<unsigned long long>(s.requests),
            static_cast<unsigned long long>(s.dropped),
            static_cast<unsigned long long>(s.segments), s.p50_ms,
            s.p95_ms, s.p99_ms, 100.0 * s.hit_rate, s.goodput_mpix_s,
            100.0 * s.drop_rate);
    // Fleet cost columns, only when a fleet metered the run.
    if (sla.total_cost_dollars > 0) {
        std::printf("\n%-10s %-11s %-11s %s\n", "scenario", "cost_$",
                    "$/stream", "$/quality-pt");
        for (const service::ScenarioScore &s : sla.scenarios)
            if (s.cost_dollars > 0)
                std::printf("%-10s %-11.6f %-11.6f %.6f\n",
                            core::toString(s.scenario), s.cost_dollars,
                            s.dollars_per_stream,
                            s.dollars_per_quality_point);
    }
    std::printf("\noverall: %llu requests (%llu dropped), %llu segments, "
                "hit-rate %.1f%%, goodput %.2f Mpix/s, %.2fs wall\n",
                static_cast<unsigned long long>(sla.total_requests),
                static_cast<unsigned long long>(sla.total_dropped),
                static_cast<unsigned long long>(sla.total_segments),
                100.0 * sla.overall_hit_rate,
                sla.overall_goodput_mpix_s, sla.wall_seconds);
    if (sla.total_cost_dollars > 0)
        std::printf("fleet cost: $%.6f total\n", sla.total_cost_dollars);
    if (sla.cache_enabled)
        std::printf("cache: %.1f%% hit rate (%llu hits / %llu misses), "
                    "%llu bytes resident, $%.6f storage + $%.6f "
                    "compute = $%.6f total ($%.6f saved)\n",
                    100.0 * sla.cache_hit_rate,
                    static_cast<unsigned long long>(sla.cache_hits),
                    static_cast<unsigned long long>(sla.cache_misses),
                    static_cast<unsigned long long>(
                        sla.cache_resident_bytes),
                    sla.cache_storage_dollars,
                    sla.cache_compute_dollars, sla.cache_total_dollars,
                    sla.cache_saved_dollars);
}

int
writeJson(const std::string &path, const service::ServiceResult &result)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 1;
    }
    const service::SlaReport &sla = result.sla;
    std::fprintf(f, "{%s\"wall_seconds\":%.4f,\"scenarios\":[",
                 bench::jsonMetaFields().c_str(), sla.wall_seconds);
    for (size_t i = 0; i < sla.scenarios.size(); ++i) {
        const service::ScenarioScore &s = sla.scenarios[i];
        std::fprintf(
            f,
            "%s{\"name\":\"%s\",\"requests\":%llu,\"dropped\":%llu,"
            "\"segments\":%llu,\"failed\":%llu,\"p50_ms\":%.3f,"
            "\"p95_ms\":%.3f,\"p99_ms\":%.3f,\"hit_rate\":%.4f,"
            "\"goodput_mpix_s\":%.4f,\"drop_rate\":%.4f,"
            "\"cost_dollars\":%.8f,\"dollars_per_stream\":%.8f}",
            i ? "," : "", core::toString(s.scenario),
            static_cast<unsigned long long>(s.requests),
            static_cast<unsigned long long>(s.dropped),
            static_cast<unsigned long long>(s.segments),
            static_cast<unsigned long long>(s.failed), s.p50_ms,
            s.p95_ms, s.p99_ms, s.hit_rate, s.goodput_mpix_s,
            s.drop_rate, s.cost_dollars, s.dollars_per_stream);
    }
    std::fprintf(
        f,
        "],\"overall\":{\"requests\":%llu,\"dropped\":%llu,"
        "\"segments\":%llu,\"hit_rate\":%.4f,\"goodput_mpix_s\":%.4f,"
        "\"stitched_rungs\":%llu,\"stitch_failures\":%llu,"
        "\"cost_dollars\":%.8f}",
        static_cast<unsigned long long>(sla.total_requests),
        static_cast<unsigned long long>(sla.total_dropped),
        static_cast<unsigned long long>(sla.total_segments),
        sla.overall_hit_rate, sla.overall_goodput_mpix_s,
        static_cast<unsigned long long>(result.stitched_rungs),
        static_cast<unsigned long long>(result.stitch_failures),
        sla.total_cost_dollars);
    if (sla.cache_enabled)
        std::fprintf(
            f,
            ",\"cache\":{\"hits\":%llu,\"misses\":%llu,"
            "\"hit_rate\":%.4f,\"resident_bytes\":%llu,"
            "\"storage_dollars\":%.8f,\"compute_dollars\":%.8f,"
            "\"saved_dollars\":%.8f,\"total_dollars\":%.8f}",
            static_cast<unsigned long long>(sla.cache_hits),
            static_cast<unsigned long long>(sla.cache_misses),
            sla.cache_hit_rate,
            static_cast<unsigned long long>(sla.cache_resident_bytes),
            sla.cache_storage_dollars, sla.cache_compute_dollars,
            sla.cache_saved_dollars, sla.cache_total_dollars);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}

int
runFull(const std::string &json_path, uint64_t seed,
        const FleetSetup *fleet_setup,
        cache::TranscodeCache *output_cache)
{
    bench::printHeader(
        "transcoding service under open-loop load (split-and-stitch)",
        "§2.3 scenarios as a service: admission, deadlines, SLA");

    const int segment_frames = service::segmentFramesFromEnv(8);
    const service::Corpus corpus =
        service::buildCorpus(corpusSpecs(false), 16, segment_frames);
    std::printf("corpus: %zu clips, %d-frame segments\n",
                corpus.clips.size(), segment_frames);

    const std::vector<core::Scenario> all = {
        core::Scenario::Upload, core::Scenario::Live,
        core::Scenario::Vod, core::Scenario::Popular,
        core::Scenario::Platform};
    const double rate = service::arrivalRateFromEnv(6.0);
    const std::vector<service::ServiceRequest> workload =
        generateMixedWorkload(corpus, all, rate / all.size(), 4.0,
                              seed, /*live_slack=*/3.0,
                              /*upload_slack=*/10.0);
    std::printf("workload: %zu requests over 4.0s (%.1f req/s)\n\n",
                workload.size(), rate);

    service::ServiceConfig config;
    config.admission_capacity = 64;
    if (fleet_setup) {
        config.fleet = &fleet_setup->config;
        config.fleet_model = &fleet_setup->model;
    }
    config.cache = output_cache;
    service::TranscodeService svc(config, corpus);
    const service::ServiceResult result = svc.run(workload);

    printScorecard(result.sla);
    std::printf("stitched rungs: %llu (%llu failures)\n",
                static_cast<unsigned long long>(result.stitched_rungs),
                static_cast<unsigned long long>(result.stitch_failures));
    if (writeJson(json_path, result))
        return 1;
    if (result.stitch_failures > 0) {
        std::fprintf(stderr, "FAIL: %llu rungs failed to stitch\n",
                     static_cast<unsigned long long>(
                         result.stitch_failures));
        return 1;
    }
    return 0;
}

/**
 * Observability acceptance for the smoke run: the telemetry sampler
 * produced at least one point per service gauge, the Prometheus text
 * snapshot validates, every slowest-decile exemplar's trace id
 * resolves to recorded scope events, and each exemplar's critical-path
 * stages sum to its measured latency (within 5%, floor 0.5 ms for
 * sub-millisecond segments).
 */
bool
checkObservability(const service::ServiceResult &result,
                   const obs::Tracer &tracer,
                   const obs::MetricsRegistry &metrics)
{
    bool ok = true;
    std::vector<std::string> expected_gauges = {
        "service.queue_depth",       "service.inflight_jobs",
        "service.worker_utilization", "service.shed_requests",
        "service.frame_threads_clamped"};
    if (result.sla.cache_enabled) {
        expected_gauges.push_back("service.cache_hit_rate");
        expected_gauges.push_back("service.cache_resident_bytes");
    }
    for (const std::string &name : expected_gauges) {
        size_t points = 0;
        for (const obs::TelemetrySeries &s : result.telemetry)
            if (s.name == name)
                points = s.points.size();
        if (points == 0) {
            std::fprintf(stderr, "FAIL: gauge %s has no samples\n",
                         name.c_str());
            ok = false;
        }
    }

    std::ostringstream prom;
    obs::writePromText(prom, &metrics, result.telemetry);
    std::string prom_error;
    if (!obs::validatePromText(prom.str(), &prom_error)) {
        std::fprintf(stderr, "FAIL: prom snapshot invalid: %s\n",
                     prom_error.c_str());
        ok = false;
    }

    std::set<uint64_t> traced;
    for (const obs::ScopeEvent &scope : tracer.scopeEvents())
        traced.insert(scope.span.trace_id);
    size_t exemplars = 0;
    for (const service::ScenarioScore &score : result.sla.scenarios) {
        for (const obs::Exemplar &e : score.exemplars) {
            ++exemplars;
            if (traced.find(e.trace_id) == traced.end()) {
                std::fprintf(stderr,
                             "FAIL: exemplar %s trace %llu has no "
                             "scope events\n",
                             e.label.c_str(),
                             static_cast<unsigned long long>(
                                 e.trace_id));
                ok = false;
            }
            const double sum = e.path.queue_wait_ms +
                e.path.rc_chain_ms + e.path.encode_ms;
            const double slack =
                std::max(0.5, 0.05 * e.latency_ms);
            if (std::abs(sum - e.latency_ms) > slack) {
                std::fprintf(
                    stderr,
                    "FAIL: exemplar %s critical path %.3fms != "
                    "latency %.3fms\n",
                    e.label.c_str(), sum, e.latency_ms);
                ok = false;
            }
        }
    }
    if (exemplars == 0) {
        std::fprintf(stderr, "FAIL: no tail-latency exemplars "
                             "retained\n");
        ok = false;
    }
    std::printf("observability: %zu exemplars, %zu scope events, "
                "%zu telemetry series, prom %zu bytes\n",
                exemplars, tracer.scopeEvents().size(),
                result.telemetry.size(), prom.str().size());
    return ok;
}

/** Gate for check.sh: small run that must hit its generous SLAs. */
int
runSmoke(uint64_t seed, const FleetSetup *fleet_setup,
         cache::TranscodeCache *output_cache)
{
    const double kMinHitRate = 0.9;
    const service::Corpus corpus =
        service::buildCorpus(corpusSpecs(true), 8, 4);
    const std::vector<service::ServiceRequest> workload =
        generateMixedWorkload(
            corpus, {core::Scenario::Live, core::Scenario::Upload},
            /*per_scenario_rate=*/2.0, /*duration_s=*/1.0, seed,
            /*live_slack=*/50.0, /*upload_slack=*/100.0);

    service::ServiceConfig config;
    config.admission_capacity = 64;
    if (fleet_setup) {
        config.fleet = &fleet_setup->config;
        config.fleet_model = &fleet_setup->model;
    }
    config.cache = output_cache;
    // Own sinks so the smoke can inspect what the run recorded; the
    // tracer merges into the process-wide one afterwards so a
    // VBENCH_TRACE file still carries the request trees.
    obs::Tracer tracer;
    obs::MetricsRegistry metrics;
    config.tracer = &tracer;
    config.metrics = &metrics;
    service::TranscodeService svc(config, corpus);
    const service::ServiceResult result = svc.run(workload);
    if (obs::Tracer *global = obs::globalTracer())
        global->mergeFrom(tracer);

    printScorecard(result.sla);
    bool ok = checkObservability(result, tracer, metrics);
    if (result.dropped > 0) {
        std::fprintf(stderr,
                     "FAIL: %llu requests dropped with capacity to "
                     "spare\n",
                     static_cast<unsigned long long>(result.dropped));
        ok = false;
    }
    if (result.sla.overall_hit_rate < kMinHitRate) {
        std::fprintf(stderr,
                     "FAIL: hit-rate %.2f below %.2f with generous "
                     "deadlines\n",
                     result.sla.overall_hit_rate, kMinHitRate);
        ok = false;
    }
    if (result.stitch_failures > 0) {
        std::fprintf(stderr, "FAIL: %llu rungs failed to stitch\n",
                     static_cast<unsigned long long>(
                         result.stitch_failures));
        ok = false;
    }
    if (result.completed + result.dropped != workload.size()) {
        std::fprintf(stderr, "FAIL: %llu completed + %llu dropped != "
                             "%zu requests\n",
                     static_cast<unsigned long long>(result.completed),
                     static_cast<unsigned long long>(result.dropped),
                     workload.size());
        ok = false;
    }
    std::printf("service smoke: %s\n", ok ? "ok" : "FAILED");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = "BENCH_service.json";
    uint64_t seed = 40;
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--out" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--seed" && i + 1 < argc) {
            char *end = nullptr;
            seed = std::strtoull(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0') {
                std::fprintf(stderr, "--seed wants an integer, got "
                                     "%s\n",
                             argv[i]);
                return 2;
            }
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--seed N] [--out FILE]\n",
                         argv[0]);
            return 2;
        }
    }
    const std::optional<FleetSetup> fleet_setup =
        fleetFromEnv(core::runtimeConfig());
    const FleetSetup *fleet_ptr =
        fleet_setup ? &*fleet_setup : nullptr;
    const std::unique_ptr<cache::TranscodeCache> output_cache =
        cacheFromEnv(core::runtimeConfig());
    return smoke ? runSmoke(seed, fleet_ptr, output_cache.get())
                 : runFull(json_path, seed, fleet_ptr,
                           output_cache.get());
}
