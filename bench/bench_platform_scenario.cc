/**
 * @file
 * The Platform scenario (§4.2, Table 1's fifth row): same encoder,
 * same settings, different machine. The bitstream is identical by
 * construction (B = Q = 1 exactly) and the score is the speed ratio S
 * — the SPEC-style use of vbench for compiler/architecture studies.
 *
 * "Machines" here are microarchitecture models: the same VOD transcode
 * is replayed through cache hierarchies of three CPU generations and
 * scored by modeled cycles.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "core/report.h"
#include "core/scoring.h"
#include "uarch/tracesim.h"
#include "video/suite.h"

namespace {

using namespace vbench;

struct Machine {
    const char *name;
    uarch::TraceSimConfig sim;
    uarch::TopDownParams costs;
};

std::vector<Machine>
machines()
{
    std::vector<Machine> list;

    Machine baseline;
    baseline.name = "baseline (32K L1 / 8M LLC)";
    list.push_back(baseline);

    Machine small_cache;
    small_cache.name = "budget (16K L1I / 2M LLC)";
    small_cache.sim.caches.l1i = {16 * 1024, 8, 64};
    small_cache.sim.caches.l3 = {2 * 1024 * 1024, 16, 64};
    small_cache.costs.dram_latency = 220.0;
    list.push_back(small_cache);

    Machine wide;
    wide.name = "next-gen (48K L1I / 16M LLC, 6-wide)";
    wide.sim.caches.l1i = {48 * 1024, 12, 64};
    wide.sim.caches.l3 = {16 * 1024 * 1024, 16, 64};
    wide.costs.issue_width = 6.0;
    wide.costs.branch_miss_penalty = 13.0;
    list.push_back(wide);

    return list;
}

} // namespace

int
main()
{
    bench::printHeader(
        "Platform scenario — machine comparison",
        "§4.2 Platform (B = Q = 1 by construction, score = S), the "
        "SPEC-style use case");

    // Three representative clips across the entropy range.
    const std::vector<int> picks = {2, 6, 13};  // desktop, girl, hall
    const auto machine_list = machines();

    core::Table table({"video", "machine", "modeled_cycles(G)",
                       "S_vs_baseline", "platform_score"});

    for (int pick : picks) {
        const video::ClipSpec &spec = video::vbenchSuite()[pick];
        const video::Video clip = video::synthesizeClip(spec, 6);
        const codec::ByteBuffer universal =
            core::makeUniversalStream(clip);

        double baseline_cycles = 0;
        codec::ByteBuffer baseline_stream;
        for (const Machine &machine : machine_list) {
            uarch::TraceSimulator sim(machine.sim);
            core::TranscodeRequest req = core::referenceRequest(
                core::Scenario::Vod, clip.width(), clip.height(),
                clip.fps());
            req.probe = &sim;
            const core::TranscodeOutcome outcome =
                core::transcode(universal, clip, req);
            if (!outcome.ok) {
                std::printf("transcode failed on %s\n", spec.name.c_str());
                return 1;
            }
            const double cycles = uarch::modeledCycles(
                sim.report().topdown_inputs, machine.costs);

            if (baseline_stream.empty()) {
                baseline_stream = outcome.stream;
                baseline_cycles = cycles;
            } else if (outcome.stream != baseline_stream) {
                // The whole scenario rests on bit-identical output.
                std::printf("BITSTREAM MISMATCH on %s — platform "
                            "comparison invalid\n", spec.name.c_str());
                return 1;
            }

            const double s = baseline_cycles / cycles;
            core::Ratios r{s, 1.0, 1.0};
            core::Measurement dummy;
            dummy.psnr_db = outcome.m.psnr_db;
            const core::ScoreResult score = core::scoreScenario(
                core::Scenario::Platform, r, dummy, 0.0);
            table.addRow({spec.name, machine.name,
                          core::fmt(cycles / 1e9, 3), core::fmt(s, 3),
                          score.valid ? core::fmt(score.score, 3)
                                      : score.reason});
        }
    }

    table.print(std::cout);
    std::printf("\nshape check: identical bitstreams on every machine"
                " (B = Q = 1); the\nbudget machine loses cycles to I$"
                " and DRAM, the next-gen machine gains\nfrom width —"
                " pure Platform-scenario comparisons.\n");
    return 0;
}
