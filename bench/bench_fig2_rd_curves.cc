/**
 * @file
 * Figure 2: PSNR and transcoding speed as a function of bitrate for
 * the three software encoders on one HD clip (the paper uses the first
 * 1000 frames of Big Buck Bunny; we use the equivalent synthetic HD
 * animation clip).
 *
 * The 6-bitrate × 3-encoder grid is 18 independent transcodes,
 * submitted to the parallel scheduler as one batch. Expected shape:
 * both next-generation encoders sit above VBC on the rate-distortion
 * plot at every bitrate, and below it on the speed plot by roughly
 * 3-4x — the trade-off that motivates the scenario scoring.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "core/report.h"
#include "metrics/bdrate.h"
#include "sched/scheduler.h"
#include "video/suite.h"

int
main()
{
    using namespace vbench;

    bench::printHeader("Figure 2 — RD and speed curves",
                       "Fig. 2 (PSNR and Mpix/s vs bits/pixel/s, one HD "
                       "clip, three encoders)");

    // The paper's clip is an HD animation; ours is the synthetic
    // equivalent at 720p24.
    video::ClipSpec spec{"bbb_like", 1280, 720, 24,
                         video::ContentClass::Animation, 1.2, 4242};
    const bench::SharedClip clip = bench::prepareShared(spec, 14);

    // bits/pixel/s x pixels-per-frame = bits/s (duration cancels).
    const double pix_rate =
        static_cast<double>(clip.original->pixelsPerFrame());
    const double bpps_targets[] = {0.15, 0.3, 0.6, 1.2, 2.4, 4.8};

    struct Lane {
        core::EncoderKind kind;
        const char *row_name;
    };
    const Lane lanes[] = {
        {core::EncoderKind::Vbc, "vbc(x264-like)"},
        {core::EncoderKind::NgcHevc, "ngc-hevc(x265-like)"},
        {core::EncoderKind::NgcVp9, "ngc-vp9(libvpx-like)"},
    };

    // The full grid as one batch; results come back in input order.
    std::vector<sched::TranscodeJob> jobs;
    for (double bpps : bpps_targets) {
        for (const Lane &lane : lanes) {
            core::TranscodeRequest req;
            req.kind = lane.kind;
            req.rc.mode = codec::RcMode::TwoPass;
            req.rc.bitrate_bps = bpps * pix_rate;
            req.effort = 6;
            req.ngc_speed = 1;
            req.gop = 0;
            jobs.push_back(bench::makeJob("fig2", clip, req));
        }
    }
    sched::Scheduler scheduler;
    const sched::BatchResult batch = scheduler.runBatch(jobs);
    bench::reportBatch(jobs, batch);

    core::Table table({"encoder", "target_bpps", "bpps", "psnr_db",
                       "mpix_s"});
    std::vector<std::pair<double, double>> rd[3], sp[3];

    size_t index = 0;
    for (double bpps : bpps_targets) {
        for (size_t lane = 0; lane < 3; ++lane) {
            const core::TranscodeOutcome &o =
                batch.results[index++].outcome;
            table.addRow({lanes[lane].row_name, core::fmt(bpps, 2),
                          core::fmt(o.m.bitrate_bpps, 3),
                          core::fmt(o.m.psnr_db, 2),
                          core::fmt(o.m.speed_mpix_s, 2)});
            rd[lane].emplace_back(o.m.bitrate_bpps, o.m.psnr_db);
            sp[lane].emplace_back(o.m.bitrate_bpps, o.m.speed_mpix_s);
        }
    }

    table.print(std::cout);
    std::printf("\n");
    core::printSeries(std::cout, "psnr_vbc", rd[0]);
    core::printSeries(std::cout, "psnr_ngc_hevc", rd[1]);
    core::printSeries(std::cout, "psnr_ngc_vp9", rd[2]);
    core::printSeries(std::cout, "speed_vbc", sp[0]);
    core::printSeries(std::cout, "speed_ngc_hevc", sp[1]);
    core::printSeries(std::cout, "speed_ngc_vp9", sp[2]);

    // BD-rate summary, the §2.4 comparison in one number per encoder.
    auto toRd = [](const std::vector<std::pair<double, double>> &pts) {
        std::vector<metrics::RdPoint> points;
        for (const auto &[rate, psnr] : pts)
            points.push_back({rate, psnr});
        return points;
    };
    std::printf("BD-rate vs vbc: ngc-hevc %.1f%%, ngc-vp9 %.1f%% "
                "(negative = bits saved at equal quality)\n",
                metrics::bdRate(toRd(rd[0]), toRd(rd[1])) * 100,
                metrics::bdRate(toRd(rd[0]), toRd(rd[2])) * 100);

    std::printf("\n");
    bench::printBatchStats(batch.stats);
    std::printf("\nshape check: next-gen encoders above VBC in PSNR at "
                "equal bitrate,\nand several times slower — no encoder "
                "dominates all three axes.\n");
    return 0;
}
