/**
 * @file
 * Figure 2: PSNR and transcoding speed as a function of bitrate for
 * the three software encoders on one HD clip (the paper uses the first
 * 1000 frames of Big Buck Bunny; we use the equivalent synthetic HD
 * animation clip).
 *
 * Expected shape: both next-generation encoders sit above VBC on the
 * rate-distortion plot at every bitrate, and below it on the speed
 * plot by roughly 3-4x — the trade-off that motivates the scenario
 * scoring.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "codec/decoder.h"
#include "codec/encoder.h"
#include "core/report.h"
#include "metrics/bdrate.h"
#include "metrics/psnr.h"
#include "metrics/rates.h"
#include "ngc/ngc_decoder.h"
#include "ngc/ngc_encoder.h"
#include "video/suite.h"

namespace {

using namespace vbench;
using obs::nowSeconds;

struct RdPoint {
    double bpps;
    double psnr;
    double mpix_s;
};

RdPoint
runVbc(const video::Video &clip, double bitrate_bps)
{
    codec::EncoderConfig cfg;
    cfg.rc.mode = codec::RcMode::TwoPass;
    cfg.rc.bitrate_bps = bitrate_bps;
    cfg.effort = 6;
    cfg.gop = 0;
    codec::Encoder encoder(cfg);
    const double t0 = nowSeconds();
    const codec::EncodeResult result = encoder.encode(clip);
    const double elapsed = nowSeconds() - t0;
    const auto decoded = codec::decode(result.stream);
    RdPoint p;
    p.bpps = metrics::bitsPerPixelPerSecond(result.totalBytes(),
                                            clip.width(), clip.height(),
                                            clip.frameCount(), clip.fps());
    p.psnr = decoded ? metrics::videoPsnr(clip, *decoded) : 0;
    p.mpix_s = metrics::megapixelsPerSecond(clip.width(), clip.height(),
                                            clip.frameCount(), elapsed);
    bench::reportRun("fig2", "vbc",
                     core::Measurement{p.mpix_s, p.bpps, p.psnr}, elapsed,
                     result.totalBytes());
    return p;
}

RdPoint
runNgc(const video::Video &clip, double bitrate_bps, ngc::NgcProfile prof)
{
    ngc::NgcConfig cfg;
    cfg.rc.mode = codec::RcMode::TwoPass;
    cfg.rc.bitrate_bps = bitrate_bps;
    cfg.profile = prof;
    cfg.speed = 1;
    cfg.gop = 0;
    ngc::NgcEncoder encoder(cfg);
    const double t0 = nowSeconds();
    const codec::EncodeResult result = encoder.encode(clip);
    const double elapsed = nowSeconds() - t0;
    const auto decoded = ngc::ngcDecode(result.stream);
    RdPoint p;
    p.bpps = metrics::bitsPerPixelPerSecond(result.totalBytes(),
                                            clip.width(), clip.height(),
                                            clip.frameCount(), clip.fps());
    p.psnr = decoded ? metrics::videoPsnr(clip, *decoded) : 0;
    p.mpix_s = metrics::megapixelsPerSecond(clip.width(), clip.height(),
                                            clip.frameCount(), elapsed);
    bench::reportRun("fig2",
                     prof == ngc::NgcProfile::HevcLike ? "ngc-hevc"
                                                       : "ngc-vp9",
                     core::Measurement{p.mpix_s, p.bpps, p.psnr}, elapsed,
                     result.totalBytes());
    return p;
}

} // namespace

int
main()
{
    bench::printHeader("Figure 2 — RD and speed curves",
                       "Fig. 2 (PSNR and Mpix/s vs bits/pixel/s, one HD "
                       "clip, three encoders)");

    // The paper's clip is an HD animation; ours is the synthetic
    // equivalent at 720p24.
    video::ClipSpec spec{"bbb_like", 1280, 720, 24,
                         video::ContentClass::Animation, 1.2, 4242};
    const video::Video clip = video::synthesizeClip(spec, 14);

    // bits/pixel/s x pixels-per-frame = bits/s (duration cancels).
    const double pix_rate = static_cast<double>(clip.pixelsPerFrame());
    const double bpps_targets[] = {0.15, 0.3, 0.6, 1.2, 2.4, 4.8};

    core::Table table({"encoder", "target_bpps", "bpps", "psnr_db",
                       "mpix_s"});
    std::vector<std::pair<double, double>> vbc_rd, hevc_rd, vp9_rd;
    std::vector<std::pair<double, double>> vbc_sp, hevc_sp, vp9_sp;

    for (double bpps : bpps_targets) {
        const double bps = bpps * pix_rate;
        const RdPoint a = runVbc(clip, bps);
        table.addRow({"vbc(x264-like)", core::fmt(bpps, 2),
                      core::fmt(a.bpps, 3), core::fmt(a.psnr, 2),
                      core::fmt(a.mpix_s, 2)});
        vbc_rd.emplace_back(a.bpps, a.psnr);
        vbc_sp.emplace_back(a.bpps, a.mpix_s);

        const RdPoint b = runNgc(clip, bps, ngc::NgcProfile::HevcLike);
        table.addRow({"ngc-hevc(x265-like)", core::fmt(bpps, 2),
                      core::fmt(b.bpps, 3), core::fmt(b.psnr, 2),
                      core::fmt(b.mpix_s, 2)});
        hevc_rd.emplace_back(b.bpps, b.psnr);
        hevc_sp.emplace_back(b.bpps, b.mpix_s);

        const RdPoint c = runNgc(clip, bps, ngc::NgcProfile::Vp9Like);
        table.addRow({"ngc-vp9(libvpx-like)", core::fmt(bpps, 2),
                      core::fmt(c.bpps, 3), core::fmt(c.psnr, 2),
                      core::fmt(c.mpix_s, 2)});
        vp9_rd.emplace_back(c.bpps, c.psnr);
        vp9_sp.emplace_back(c.bpps, c.mpix_s);
    }

    table.print(std::cout);
    std::printf("\n");
    core::printSeries(std::cout, "psnr_vbc", vbc_rd);
    core::printSeries(std::cout, "psnr_ngc_hevc", hevc_rd);
    core::printSeries(std::cout, "psnr_ngc_vp9", vp9_rd);
    core::printSeries(std::cout, "speed_vbc", vbc_sp);
    core::printSeries(std::cout, "speed_ngc_hevc", hevc_sp);
    core::printSeries(std::cout, "speed_ngc_vp9", vp9_sp);

    // BD-rate summary, the §2.4 comparison in one number per encoder.
    auto toRd = [](const std::vector<std::pair<double, double>> &pts) {
        std::vector<metrics::RdPoint> rd;
        for (const auto &[rate, psnr] : pts)
            rd.push_back({rate, psnr});
        return rd;
    };
    std::printf("BD-rate vs vbc: ngc-hevc %.1f%%, ngc-vp9 %.1f%% "
                "(negative = bits saved at equal quality)\n",
                metrics::bdRate(toRd(vbc_rd), toRd(hevc_rd)) * 100,
                metrics::bdRate(toRd(vbc_rd), toRd(vp9_rd)) * 100);

    std::printf("shape check: next-gen encoders above VBC in PSNR at "
                "equal bitrate,\nand several times slower — no encoder "
                "dominates all three axes.\n");
    return 0;
}
