/**
 * @file
 * Live-streaming scenario walk-through: check which encoders can
 * transcode a stream in real time, and what each one pays in bitrate
 * and quality (paper §4.2 Live + §6.1).
 *
 *   $ ./examples/live_streaming
 */

#include <cstdio>
#include <iostream>

#include "codec/decoder.h"
#include "core/reference.h"
#include "core/report.h"
#include "core/scoring.h"
#include "core/transcoder.h"
#include "hwenc/hwenc.h"
#include "metrics/rates.h"
#include "video/suite.h"

int
main()
{
    using namespace vbench;

    // A 720p30 gaming stream, the bread and butter of live platforms.
    video::ClipSpec spec{"stream", 1280, 720, 30,
                         video::ContentClass::Gaming, 4.0, 777};
    const video::Video clip = video::synthesizeClip(spec, 12);
    const codec::ByteBuffer universal = core::makeUniversalStream(clip);
    const double output_rate = metrics::outputMegapixelsPerSecond(
        clip.width(), clip.height(), clip.fps());
    std::printf("live 720p30 stream: output rate %.1f Mpixel/s — every"
                " encoder must beat this.\n\n", output_rate);

    // The software reference: effort chosen to survive real time.
    core::ReferenceStore refs;
    const core::TranscodeOutcome &ref = refs.get(
        spec.name, core::Scenario::Live, universal, clip);
    if (!ref.ok) {
        std::fprintf(stderr, "reference failed: %s\n", ref.error.c_str());
        return 1;
    }

    core::Table table({"encoder", "mpix_s", "real_time", "bpps",
                       "psnr_db", "live_score"});
    auto addRow = [&](const char *name, const core::Measurement &m) {
        const core::Ratios r = core::computeRatios(ref.m, m);
        const core::ScoreResult score =
            core::scoreScenario(core::Scenario::Live, r, m, output_rate);
        table.addRow({name, core::fmt(m.speed_mpix_s, 1),
                      m.speed_mpix_s >= output_rate ? "yes" : "NO",
                      core::fmt(m.bitrate_bpps, 3),
                      core::fmt(m.psnr_db, 2),
                      score.valid ? core::fmt(score.score, 2)
                                  : score.reason});
    };
    addRow("software-reference", ref.m);

    // Candidate 1: high-effort software (great compression, but can it
    // keep up?).
    {
        core::TranscodeRequest req =
            core::referenceRequest(core::Scenario::Live, clip.width(),
                                   clip.height(), clip.fps());
        req.effort = 8;
        const core::TranscodeOutcome slow =
            core::transcode(universal, clip, req);
        if (slow.ok)
            addRow("software-effort8", slow.m);
    }

    // Candidates 2 and 3: the hardware encoders.
    for (core::EncoderKind kind :
         {core::EncoderKind::NvencLike, core::EncoderKind::QsvLike}) {
        core::TranscodeRequest req;
        req.kind = kind;
        req.rc.mode = codec::RcMode::Abr;
        req.rc.bitrate_bps = core::ladderBitrateBps(
            clip.width(), clip.height(), clip.fps());
        const core::TranscodeOutcome hw =
            core::transcode(universal, clip, req);
        if (hw.ok)
            addRow(core::toString(kind), hw.m);
    }

    table.print(std::cout);
    std::printf("\ntakeaway: fixed-function encoders clear the real-time"
                " bar with an order\nof magnitude to spare; high-effort"
                " software cannot stream at all (§6.1).\n");
    return 0;
}
