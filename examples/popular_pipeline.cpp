/**
 * @file
 * The full sharing-infrastructure pipeline of paper Fig. 3 for one
 * upload: universal transcode, VOD archival transcode, and — once the
 * video "turns popular" — the high-effort next-generation re-transcode
 * that buys bitrate back at equal quality.
 *
 *   $ ./examples/popular_pipeline
 */

#include <cstdio>
#include <iostream>

#include "codec/decoder.h"
#include "core/reference.h"
#include "core/report.h"
#include "core/scoring.h"
#include "core/transcoder.h"
#include "metrics/rates.h"
#include "video/suite.h"

int
main()
{
    using namespace vbench;

    // The upload: a 1080p24 nature documentary segment.
    video::ClipSpec spec{"upload", 1920, 1080, 24,
                         video::ContentClass::Natural, 3.2, 555};
    const video::Video original = video::synthesizeClip(spec, 8);
    std::printf("upload: %dx%d @ %.0f fps, %d frames\n\n",
                original.width(), original.height(), original.fps(),
                original.frameCount());

    core::Table table({"stage", "encoder", "bpps", "psnr_db",
                       "mpix_s"});

    // Stage 1: universal format (ingest transcode).
    const codec::ByteBuffer universal =
        core::makeUniversalStream(original);
    {
        const auto decoded = codec::decode(universal);
        const core::Measurement m = core::measure(
            original, *decoded, universal.size(), 1.0);
        table.addRow({"ingest/universal", "vbc crf14",
                      core::fmt(m.bitrate_bpps, 3),
                      core::fmt(m.psnr_db, 2), "-"});
    }

    // Stage 2: VOD two-pass archival replica.
    core::ReferenceStore refs;
    const core::TranscodeOutcome &vod =
        refs.get(spec.name, core::Scenario::Vod, universal, original);
    table.addRow({"vod archive", "vbc twopass e5",
                  core::fmt(vod.m.bitrate_bpps, 3),
                  core::fmt(vod.m.psnr_db, 2),
                  core::fmt(vod.m.speed_mpix_s, 2)});

    // Stage 3: the video got popular — re-transcode with the
    // next-generation codec at a reduced bitrate, same quality.
    const core::TranscodeOutcome &popular_ref = refs.get(
        spec.name, core::Scenario::Popular, universal, original);
    core::TranscodeRequest ngc;
    ngc.kind = core::EncoderKind::NgcHevc;
    ngc.rc.mode = codec::RcMode::TwoPass;
    ngc.rc.bitrate_bps = popular_ref.m.bitrate_bpps *
        original.pixelsPerFrame() * 0.8;  // spend 20% fewer bits
    ngc.ngc_speed = 0;
    const core::TranscodeOutcome popular =
        core::transcode(universal, original, ngc);
    if (!popular.ok) {
        std::fprintf(stderr, "popular transcode failed: %s\n",
                     popular.error.c_str());
        return 1;
    }
    table.addRow({"popular replica", "ngc-hevc twopass",
                  core::fmt(popular.m.bitrate_bpps, 3),
                  core::fmt(popular.m.psnr_db, 2),
                  core::fmt(popular.m.speed_mpix_s, 2)});
    table.print(std::cout);

    const core::Ratios r = core::computeRatios(popular_ref.m, popular.m);
    const core::ScoreResult score = core::scoreScenario(
        core::Scenario::Popular, r, popular.m,
        metrics::outputMegapixelsPerSecond(original.width(),
                                           original.height(),
                                           original.fps()));
    std::printf("\npopular scenario vs reference: S=%.2f B=%.2f Q=%.3f"
                " -> %s\n", r.s, r.b, r.q,
                score.valid
                    ? ("score " + core::fmt(score.score, 2)).c_str()
                    : score.reason.c_str());
    std::printf("every playback of the popular replica now ships %.0f%%"
                " fewer bits at\nno quality loss — compute spent once,"
                " savings multiplied per view (§6.2).\n",
                (1.0 - 1.0 / std::max(r.b, 1.0)) * 100);
    return 0;
}
