/**
 * @file
 * Parallel scheduling tour: build a clip × operating-point grid, run
 * it as one batch on the vbench::sched worker pool, and print the
 * per-job results plus the batch's honest throughput accounting.
 *
 *   $ ./examples/parallel_batch            # workers = VBENCH_JOBS or cores
 *   $ VBENCH_JOBS=2 ./examples/parallel_batch
 *
 * The streams and scores below are bitwise-identical at any worker
 * count — only the wall-clock numbers change (docs/SCHEDULER.md).
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/transcoder.h"
#include "sched/scheduler.h"
#include "video/synth.h"

int
main()
{
    using namespace vbench;

    // 1. Two clips, each with its universal-format upload stream. The
    //    jobs share the clip data through shared_ptr — a grid over one
    //    clip costs one decode source, not one copy per cell.
    struct Clip {
        std::string name;
        std::shared_ptr<const video::Video> original;
        std::shared_ptr<const codec::ByteBuffer> universal;
    };
    std::vector<Clip> clips;
    for (const auto content : {video::ContentClass::Natural,
                               video::ContentClass::Screencast}) {
        auto original =
            std::make_shared<video::Video>(video::synthesize(
                video::presetFor(content, 320, 240, 30.0, 8,
                                 /*seed=*/21),
                "batch_demo"));
        clips.push_back(
            {std::string(content == video::ContentClass::Screencast
                             ? "screen"
                             : "natural"),
             original,
             std::make_shared<codec::ByteBuffer>(
                 core::makeUniversalStream(*original))});
    }

    // 2. The grid: every clip at three CRF operating points.
    std::vector<sched::TranscodeJob> jobs;
    for (const Clip &clip : clips) {
        for (const double crf : {20.0, 26.0, 32.0}) {
            sched::TranscodeJob job;
            job.label =
                clip.name + "@crf" + std::to_string((int)crf);
            job.input = clip.universal;
            job.original = clip.original;
            job.request.kind = core::EncoderKind::Vbc;
            job.request.rc.mode = codec::RcMode::Crf;
            job.request.rc.crf = crf;
            job.request.effort = 4;
            jobs.push_back(std::move(job));
        }
    }

    // 3. One batch through the pool. Results come back in input
    //    order, whatever order the workers finished in.
    sched::Scheduler scheduler;
    std::printf("running %zu jobs on %d workers...\n", jobs.size(),
                scheduler.workers());
    const sched::BatchResult batch =
        scheduler.runBatch(std::move(jobs));

    std::printf("%-16s %8s %9s %8s %7s\n", "job", "psnr", "bpps",
                "seconds", "worker");
    for (const sched::JobResult &r : batch.results) {
        if (!r.ok()) {
            std::printf("%-16s FAILED: %s\n", r.label.c_str(),
                        r.outcome.error.c_str());
            continue;
        }
        std::printf("%-16s %7.2fdB %9.4f %7.2fs %7d\n",
                    r.label.c_str(), r.outcome.m.psnr_db,
                    r.outcome.m.bitrate_bpps, r.seconds, r.worker);
    }

    const sched::BatchStats &s = batch.stats;
    std::printf("\nbatch: %zu ok, %.2fs wall, %.2f jobs/s, "
                "%.2fx vs serial (%.2fs cpu)\n",
                s.ok, s.wall_seconds, s.jobs_per_second,
                s.speedup_vs_serial, s.cpu_seconds);
    return s.ok == s.jobs ? 0 : 1;
}
