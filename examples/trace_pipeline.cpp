/**
 * @file
 * Observability tour: run one VBC transcode with a stage tracer
 * attached, print the per-stage time breakdown and the machine-readable
 * run report, and write a Chrome trace loadable in chrome://tracing or
 * https://ui.perfetto.dev.
 *
 *   $ ./examples/trace_pipeline [trace.json]
 *
 * The same data is available without code changes through the
 * environment: VBENCH_TRACE=<path> traces any vbench binary, and
 * VBENCH_METRICS_OUT=<path> appends one run-report JSON line per
 * transcode (see docs/OBSERVABILITY.md).
 */

#include <cstdio>
#include <iostream>

#include "core/report.h"
#include "core/transcoder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "video/synth.h"

int
main(int argc, char **argv)
{
    using namespace vbench;

    const std::string trace_path =
        argc > 1 ? argv[1] : "trace_pipeline.json";

    // 1. A clip and its universal-format upload stream.
    const video::SynthParams params = video::presetFor(
        video::ContentClass::Natural, 640, 360, 30.0, 12, /*seed=*/7);
    const video::Video clip = video::synthesize(params, "trace_demo");
    const codec::ByteBuffer universal = core::makeUniversalStream(clip);

    // 2. Transcode with explicit observability sinks attached.
    obs::Tracer tracer;
    obs::MetricsRegistry metrics;
    core::TranscodeRequest req;
    req.kind = core::EncoderKind::Vbc;
    req.rc.mode = codec::RcMode::Crf;
    req.rc.crf = 23;
    req.effort = 5;
    req.tracer = &tracer;
    req.metrics = &metrics;
    const core::TranscodeOutcome outcome =
        core::transcode(universal, clip, req);
    if (!outcome.ok) {
        std::fprintf(stderr, "transcode failed: %s\n",
                     outcome.error.c_str());
        return 1;
    }

    // 3. The per-stage breakdown. Leaf stages partition the traced
    //    wall clock, so their sum tracks the reported seconds.
    core::Table table({"stage", "seconds", "share_%"});
    for (int i = 0; i < obs::kNumStages; ++i) {
        const auto stage = static_cast<obs::Stage>(i);
        const double s = outcome.stages.get(stage);
        if (!obs::isLeafStage(stage) || s == 0.0)
            continue;
        table.addRow({obs::toString(stage), core::fmt(s, 4),
                      core::fmt(100.0 * s / outcome.seconds, 1)});
    }
    table.print(std::cout);
    std::printf("leaf sum %.4f s vs transcode %.4f s\n\n",
                outcome.stages.leafSeconds(), outcome.seconds);

    // 4. The machine-readable run report (what VBENCH_METRICS_OUT
    //    would append), with the metrics registry embedded.
    const core::RunReport report =
        core::makeRunReport("trace_pipeline", req, outcome);
    std::printf("%s\n\n", core::toJson(report, &metrics).c_str());

    // 5. The Chrome trace. Open it in chrome://tracing or Perfetto.
    if (!tracer.writeChromeTraceFile(trace_path)) {
        std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
        return 1;
    }
    std::printf("wrote %zu trace events to %s\n", tracer.eventCount(),
                trace_path.c_str());
    return 0;
}
