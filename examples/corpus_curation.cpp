/**
 * @file
 * Corpus curation walk-through: run the paper's §4.1 selection
 * methodology end to end — generate a weighted upload corpus, cluster
 * it with weighted k-means over (log resolution, framerate, log
 * entropy), pick cluster modes, and synthesize one benchmark clip from
 * a selected category.
 *
 *   $ ./examples/corpus_curation [k]
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "codec/encoder.h"
#include "core/report.h"
#include "corpus/generator.h"
#include "corpus/kmeans.h"
#include "metrics/rates.h"
#include "video/suite.h"

int
main(int argc, char **argv)
{
    using namespace vbench;

    const int k = argc > 1 ? std::atoi(argv[1]) : 15;

    // 1. The corpus: thousands of weighted categories.
    const auto corpus = corpus::generateCorpus();
    std::printf("corpus: %zu categories\n", corpus.size());

    // 2. Weighted k-means in normalized feature space.
    corpus::KmeansConfig cfg;
    cfg.k = k;
    const corpus::FeatureRange range = corpus::featureRange(corpus);
    const corpus::KmeansResult clusters =
        corpus::weightedKmeans(corpus, range, cfg);
    std::printf("k-means: k=%d, %d iterations, inertia %.5f\n", k,
                clusters.iterations, clusters.inertia);

    // 3. Representatives: the mode (heaviest member) of each cluster.
    const auto selected = corpus::selectBenchmarkCategories(corpus, cfg);
    core::Table table({"kpixel", "fps", "entropy", "cluster_weight_pct"});
    for (size_t c = 0; c < selected.size(); ++c) {
        table.addRow({std::to_string(selected[c].kpixels),
                      std::to_string(selected[c].fps),
                      core::fmt(selected[c].entropy, 1),
                      core::fmt(selected[c].weight * 100, 3)});
    }
    table.print(std::cout);

    // 4. Turn the heaviest selected category into an actual clip and
    // verify its measured entropy (bits/pix/s at CRF 18).
    const corpus::VideoCategory &heaviest = *std::max_element(
        selected.begin(), selected.end(),
        [](const auto &a, const auto &b) { return a.weight < b.weight; });

    video::ClipSpec spec;
    spec.name = "selected";
    // Map Kpixels back onto a 16:9-ish geometry.
    spec.height = static_cast<int>(
        std::lround(std::sqrt(heaviest.kpixels * 1000.0 * 9 / 16) / 2) *
        2);
    spec.width = static_cast<int>(
        std::lround(heaviest.kpixels * 1000.0 / spec.height / 2) * 2);
    spec.fps = heaviest.fps;
    spec.content = heaviest.entropy < 1 ? video::ContentClass::Screencast
        : heaviest.entropy < 4 ? video::ContentClass::Natural
                               : video::ContentClass::Sports;
    spec.target_entropy = heaviest.entropy;
    spec.seed = 99;
    const video::Video clip = video::synthesizeClip(spec, 10);

    codec::EncoderConfig ecfg;
    ecfg.rc.mode = codec::RcMode::Crf;
    ecfg.rc.crf = 18;
    ecfg.effort = 5;
    codec::Encoder encoder(ecfg);
    const codec::EncodeResult result = encoder.encode(clip);
    const double measured = metrics::bitsPerPixelPerSecond(
        result.totalBytes(), clip.width(), clip.height(),
        clip.frameCount(), clip.fps());
    std::printf("\nheaviest selected category: %d Kpixel @ %d fps, "
                "entropy %.1f\n", heaviest.kpixels, heaviest.fps,
                heaviest.entropy);
    std::printf("synthesized %dx%d clip measures %.2f bits/pix/s at "
                "CRF 18\n", clip.width(), clip.height(), measured);
    return 0;
}
