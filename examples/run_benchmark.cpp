/**
 * @file
 * The vbench driver: score a transcoding solution on the full 15-video
 * suite under one of the five scenarios, against the reference
 * transcodes — the complete benchmark as a single command.
 *
 *   $ ./examples/run_benchmark [encoder] [scenario]
 *
 *   encoder:  vbc | ngc-hevc | ngc-vp9 | nvenc | qsv   (default vbc)
 *   scenario: upload | live | vod | popular            (default vod)
 *
 * Per §4.3, results are reported per video — speed, bitrate, quality,
 * the S/B/Q ratios, and the scenario score where the constraints hold —
 * and deliberately not aggregated into a single average.
 */

#include <cstdio>
#include <cstring>
#include <iostream>

#include "core/reference.h"
#include "core/report.h"
#include "core/scoring.h"
#include "core/transcoder.h"
#include "metrics/rates.h"
#include "video/suite.h"

namespace {

using namespace vbench;

core::EncoderKind
parseEncoder(const char *name)
{
    if (std::strcmp(name, "ngc-hevc") == 0)
        return core::EncoderKind::NgcHevc;
    if (std::strcmp(name, "ngc-vp9") == 0)
        return core::EncoderKind::NgcVp9;
    if (std::strcmp(name, "nvenc") == 0)
        return core::EncoderKind::NvencLike;
    if (std::strcmp(name, "qsv") == 0)
        return core::EncoderKind::QsvLike;
    return core::EncoderKind::Vbc;
}

core::Scenario
parseScenario(const char *name)
{
    if (std::strcmp(name, "upload") == 0)
        return core::Scenario::Upload;
    if (std::strcmp(name, "live") == 0)
        return core::Scenario::Live;
    if (std::strcmp(name, "popular") == 0)
        return core::Scenario::Popular;
    return core::Scenario::Vod;
}

/** Frames per clip: short renders, duration-normalized metrics. */
int
framesFor(const video::ClipSpec &spec)
{
    const double pixels = static_cast<double>(spec.width) * spec.height;
    if (pixels <= 0.5e6)
        return 16;
    if (pixels <= 1.0e6)
        return 10;
    if (pixels <= 2.2e6)
        return 6;
    return 4;
}

} // namespace

int
main(int argc, char **argv)
{
    const core::EncoderKind kind =
        parseEncoder(argc > 1 ? argv[1] : "vbc");
    const core::Scenario scenario =
        parseScenario(argc > 2 ? argv[2] : "vod");

    std::printf("vbench run: encoder=%s scenario=%s (15 videos)\n\n",
                core::toString(kind), core::toString(scenario));

    core::Table table({"video", "mpix_s", "bpps", "psnr", "S", "B", "Q",
                       "score"});
    core::ReferenceStore refs;

    for (const video::ClipSpec &spec : video::vbenchSuite()) {
        const video::Video clip =
            video::synthesizeClip(spec, framesFor(spec));
        const codec::ByteBuffer universal =
            core::makeUniversalStream(clip);

        const core::TranscodeOutcome &ref =
            refs.get(spec.name, scenario, universal, clip);
        if (!ref.ok) {
            table.addRow({spec.name, "ref-failed"});
            continue;
        }

        // The candidate runs the scenario's rate-control recipe on the
        // requested encoder.
        core::TranscodeRequest req = core::referenceRequest(
            scenario, clip.width(), clip.height(), clip.fps());
        req.kind = kind;
        req.ngc_speed = scenario == core::Scenario::Popular ? 0 : 1;
        req.entropy_override = -1;
        const core::TranscodeOutcome out =
            core::transcode(universal, clip, req);
        if (!out.ok) {
            table.addRow({spec.name, out.error});
            continue;
        }

        const core::Ratios r = core::computeRatios(ref.m, out.m);
        const core::ScoreResult score = core::scoreScenario(
            scenario, r, out.m,
            metrics::outputMegapixelsPerSecond(clip.width(),
                                               clip.height(),
                                               clip.fps()));
        table.addRow({spec.name, core::fmt(out.m.speed_mpix_s, 2),
                      core::fmt(out.m.bitrate_bpps, 3),
                      core::fmt(out.m.psnr_db, 2), core::fmt(r.s, 2),
                      core::fmt(r.b, 2), core::fmt(r.q, 3),
                      score.valid ? core::fmt(score.score, 2)
                                  : "-- (" + score.reason + ")"});
    }

    table.print(std::cout);
    std::printf("\nper §4.3, interpret rows individually; providers weigh"
                " them by their\nown corpus mix rather than averaging.\n");
    return 0;
}
