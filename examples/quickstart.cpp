/**
 * @file
 * Quickstart: synthesize a clip, encode it with the VBC software
 * encoder, decode it back, and report the three vbench metrics.
 *
 *   $ ./examples/quickstart [qp]
 *
 * This is the 60-second tour of the public API: video synthesis,
 * encoding, decoding, and measurement.
 */

#include <cstdio>
#include <cstdlib>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "metrics/psnr.h"
#include "metrics/rates.h"
#include "obs/clock.h"
#include "video/synth.h"

int
main(int argc, char **argv)
{
    using namespace vbench;

    const int qp = argc > 1 ? std::atoi(argv[1]) : 26;

    // 1. Make a clip (or read one with video::readY4m).
    const video::SynthParams params = video::presetFor(
        video::ContentClass::Natural, 640, 360, 30.0, 30, /*seed=*/42);
    const video::Video clip = video::synthesize(params, "quickstart");
    std::printf("clip: %dx%d, %d frames @ %.0f fps\n", clip.width(),
                clip.height(), clip.frameCount(), clip.fps());

    // 2. Encode.
    codec::EncoderConfig cfg;
    cfg.rc.mode = codec::RcMode::Cqp;
    cfg.rc.qp = qp;
    cfg.effort = 5;
    cfg.gop = 30;
    codec::Encoder encoder(cfg);

    const double t0 = obs::nowSeconds();
    const codec::EncodeResult result = encoder.encode(clip);
    const double elapsed = obs::nowSeconds() - t0;

    // 3. Decode and measure.
    const auto decoded = codec::decode(result.stream);
    if (!decoded) {
        std::fprintf(stderr, "decode failed\n");
        return 1;
    }

    std::printf("qp %d, effort %d:\n", qp, cfg.effort);
    std::printf("  compressed: %zu bytes (%d frames)\n",
                result.totalBytes(), clip.frameCount());
    std::printf("  speed:   %.2f Mpixel/s\n",
                metrics::megapixelsPerSecond(clip.width(), clip.height(),
                                             clip.frameCount(), elapsed));
    std::printf("  bitrate: %.3f bits/pixel/s\n",
                metrics::bitsPerPixelPerSecond(
                    result.totalBytes(), clip.width(), clip.height(),
                    clip.frameCount(), clip.fps()));
    std::printf("  quality: %.2f dB (average YCbCr PSNR)\n",
                metrics::videoPsnr(clip, *decoded));

    int skips = 0;
    for (const codec::FrameStats &f : result.frames)
        skips += static_cast<int>(f.skip_mbs);
    std::printf("  skip macroblocks: %d\n", skips);
    return 0;
}
