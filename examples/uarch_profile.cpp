/**
 * @file
 * Microarchitectural profiling walk-through: attach the trace
 * simulator to a transcode and read out cache/branch/Top-Down/SIMD
 * behaviour — the §5.1-5.2 methodology as a library.
 *
 *   $ ./examples/uarch_profile [entropy_scale]
 */

#include <algorithm>
#include <vector>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/reference.h"
#include "core/report.h"
#include "core/transcoder.h"
#include "uarch/tracesim.h"
#include "video/synth.h"

int
main(int argc, char **argv)
{
    using namespace vbench;

    const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;

    const video::SynthParams params = video::presetFor(
        video::ContentClass::Natural, 640, 360, 30.0, 8, 17, scale);
    const video::Video clip = video::synthesize(params, "profiled");
    const codec::ByteBuffer universal = core::makeUniversalStream(clip);

    // Attach the simulator to a VOD transcode.
    uarch::TraceSimulator sim;
    core::TranscodeRequest req = core::referenceRequest(
        core::Scenario::Vod, clip.width(), clip.height(), clip.fps());
    req.probe = &sim;
    const core::TranscodeOutcome outcome =
        core::transcode(universal, clip, req);
    if (!outcome.ok) {
        std::fprintf(stderr, "transcode failed: %s\n",
                     outcome.error.c_str());
        return 1;
    }

    const uarch::UarchReport rep = sim.report();
    std::printf("VOD transcode of a %dx%d clip (entropy scale %.1f):\n\n",
                clip.width(), clip.height(), scale);
    std::printf("cache / branch behaviour:\n");
    std::printf("  L1I MPKI:    %6.2f\n", rep.l1i_mpki);
    std::printf("  branch MPKI: %6.2f\n", rep.branch_mpki);
    std::printf("  L2 MPKI:     %6.2f\n", rep.l2_mpki);
    std::printf("  LLC MPKI:    %6.2f\n", rep.l3_mpki);

    std::printf("\nTop-Down slot breakdown:\n");
    std::printf("  frontend        %5.1f%%\n", rep.topdown.frontend * 100);
    std::printf("  bad speculation %5.1f%%\n",
                rep.topdown.bad_speculation * 100);
    std::printf("  backend/memory  %5.1f%%\n",
                rep.topdown.backend_memory * 100);
    std::printf("  backend/core    %5.1f%%\n",
                rep.topdown.backend_core * 100);
    std::printf("  retiring        %5.1f%%\n", rep.topdown.retiring * 100);

    std::printf("\ncycles by SIMD class: scalar %.1f%%, AVX2 %.1f%%\n",
                rep.cycles.scalarFraction() * 100,
                rep.cycles.fraction(uarch::IsaLevel::AVX2) * 100);

    std::printf("\nhottest kernels (work units):\n");
    std::vector<std::pair<double, int>> ranked;
    for (int k = 0; k < uarch::kNumKernels; ++k)
        ranked.emplace_back(rep.work.units[k], k);
    std::sort(ranked.rbegin(), ranked.rend());
    for (int i = 0; i < 5; ++i) {
        std::printf("  %-14s %12.0f\n",
                    uarch::kernelName(
                        static_cast<uarch::KernelId>(ranked[i].second)),
                    ranked[i].first);
    }
    std::printf("\ntry ./examples/uarch_profile 0.1 (slideshow-like) vs"
                " 3.0 (noisy):\nI$ and branch MPKI rise with entropy, LLC"
                " MPKI falls (Fig. 5).\n");
    return 0;
}
