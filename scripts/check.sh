#!/usr/bin/env bash
# Tier-1 gate: configure with warnings-as-errors, build everything, run
# the full test suite, then run the sanitizer-labeled tests (the obs
# subsystem rebuilt under ASan+UBSan) and the thread-labeled tests (the
# scheduler's concurrency substrate rebuilt under TSan). Usage:
#
#   scripts/check.sh [build-dir]
#
# The build directory defaults to build-check/ so a plain dev build/ is
# never clobbered by the -Werror configuration.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-check}"
jobs="$(nproc 2>/dev/null || echo 2)"

echo "== configure ($build, -Wall -Wextra -Werror) =="
cmake -S "$repo" -B "$build" -DVBENCH_WERROR=ON >/dev/null

echo "== build =="
cmake --build "$build" -j "$jobs"

echo "== tier-1 tests =="
ctest --test-dir "$build" --output-on-failure -j "$jobs"

echo "== sanitizer tests (ctest -L sanitize) =="
ctest --test-dir "$build" --output-on-failure -L sanitize -j "$jobs"

echo "== thread-sanitizer tests (ctest -L thread) =="
ctest --test-dir "$build" --output-on-failure -L thread -j "$jobs"

echo "== all checks passed =="
