#!/usr/bin/env bash
# Tier-1 gate: configure with warnings-as-errors, build everything, run
# the full test suite, then run the sanitizer-labeled tests (the obs
# subsystem rebuilt under ASan+UBSan) and the thread-labeled tests (the
# scheduler's concurrency substrate rebuilt under TSan). Usage:
#
#   scripts/check.sh [build-dir]
#
# The build directory defaults to build-check/ so a plain dev build/ is
# never clobbered by the -Werror configuration.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-check}"
jobs="$(nproc 2>/dev/null || echo 2)"

echo "== configure ($build, -Wall -Wextra -Werror) =="
cmake -S "$repo" -B "$build" -DVBENCH_WERROR=ON >/dev/null

echo "== build =="
cmake --build "$build" -j "$jobs"

echo "== tier-1 tests =="
ctest --test-dir "$build" --output-on-failure -j "$jobs"

echo "== sanitizer tests (ctest -L sanitize) =="
ctest --test-dir "$build" --output-on-failure -L sanitize -j "$jobs"

echo "== thread-sanitizer tests (ctest -L thread) =="
ctest --test-dir "$build" --output-on-failure -L thread -j "$jobs"

echo "== thread-labeled tests under VBENCH_SLICES=2 =="
# Same suite with multi-slice entropy coding switched on via the
# environment: the determinism and TSan checks must hold when every
# encode carries slice-parallel entropy.
VBENCH_SLICES=2 \
    ctest --test-dir "$build" --output-on-failure -L thread -j "$jobs"

echo "== kernel smoke (bench_kernels --smoke) =="
"$build/bench/bench_kernels" --smoke

echo "== frame-thread + slice gates (bench_frame_threads --smoke) =="
# Asserts streams are bit-exact across thread widths at every slice
# count AND that the 4-slice entropy critical path (longest single
# slice per frame, from tracer spans) strictly beats the serial
# entropy pass for both codecs — span-based so it holds on 1-core CI.
"$build/bench/bench_frame_threads" --smoke

echo "== service smoke (bench_service --smoke) =="
"$build/bench/bench_service" --smoke

echo "== fleet smoke (bench_fleet --smoke) =="
# Asserts determinism in the seed, the cost_aware hit-rate floor, and
# cost_aware <= round_robin and random on total dollars — including
# strictly beating both baselines on the Popular ladder.
"$build/bench/bench_fleet" --smoke

echo "== cache smoke (bench_cache --smoke) =="
# Asserts the replay is deterministic in the seed, delivered bytes are
# identical with the cache off/cold/warm, Popular gets a non-zero hit
# rate, and cost_aware strictly undercuts always_store AND
# always_recompute on Popular dollars.
"$build/bench/bench_cache" --smoke --seed 40

echo "== rpc smoke (bench_rpc --smoke) =="
# Four fork/exec'd child workers with one SIGKILL injected mid-run and
# an aggressive hedge threshold: asserts the delivered bytes match the
# in-process run exactly and that the service.rpc.* counters show >= 1
# retry and >= 1 hedged dispatch.
"$build/bench/bench_rpc" --smoke

echo "== observability schema gate (traced fleet smoke + obs_lint) =="
obs_dir="$build/obs-gate"
mkdir -p "$obs_dir"
rm -f "$obs_dir/trace.json" "$obs_dir/reports.jsonl" "$obs_dir/prom.txt"
# VBENCH_FLEET routes the smoke through the modeled fleet,
# VBENCH_CACHE_MB attaches the output cache, and VBENCH_WORKERS=proc
# swaps the scheduler pool for fork/exec'd child workers, so the
# reports include a service.fleet, a service.cache, and a service.rpc
# record for obs_lint's schema checks.
VBENCH_TRACE="$obs_dir/trace.json" \
VBENCH_METRICS_OUT="$obs_dir/reports.jsonl" \
VBENCH_PROM_OUT="$obs_dir/prom.txt" \
VBENCH_FLEET="scalar:4@0.40+sse2:2@0.90+avx2:2@1.60+hwenc:1@5.00" \
VBENCH_FLEET_CALIB="$obs_dir/fleet-calib.txt" \
VBENCH_CACHE_MB=64 \
VBENCH_CACHE_POLICY=always_store \
VBENCH_WORKERS=proc \
VBENCH_WORKER_BIN="$build/src/rpc/vbench_worker" \
    "$build/bench/bench_service" --smoke >/dev/null
"$build/tools/obs_lint" \
    --trace "$obs_dir/trace.json" \
    --require-fleet \
    --require-cache \
    --require-rpc \
    --report "$obs_dir/reports.jsonl" \
    --prom "$obs_dir/prom.txt"

echo "== ISA bit-exactness (VBENCH_ISA=scalar vs native digest) =="
scalar_digest="$(VBENCH_ISA=scalar "$build/bench/bench_kernels" --digest)"
native_digest="$(VBENCH_ISA=native "$build/bench/bench_kernels" --digest)"
if [ "$scalar_digest" != "$native_digest" ]; then
    echo "FAIL: scalar and native kernel digests differ" >&2
    diff <(echo "$scalar_digest") <(echo "$native_digest") >&2 || true
    exit 1
fi
echo "$native_digest"

echo "== all checks passed =="
