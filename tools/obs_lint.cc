/**
 * @file
 * Schema lint for the observability artifacts a traced service run
 * emits (docs/OBSERVABILITY.md). scripts/check.sh runs a traced
 * `bench_service --smoke` and then this tool over what came out:
 *
 *   obs_lint --trace trace.json     Chrome trace_event JSON
 *   obs_lint --report metrics.jsonl one run report per line
 *   obs_lint --prom prom.txt        Prometheus/OpenMetrics snapshot
 *
 * Any combination of flags; each artifact is parsed structurally, not
 * grepped. `service.fleet` run reports (a fleet-routed run's cost
 * accounting, docs/FLEET.md) are schema-checked — worker/type counts,
 * total dollars, topology and policy provenance — and
 * `--require-fleet` (before --report) makes their absence an error.
 * `service.cache` run reports (the output cache's hit/dollar
 * accounting, docs/CACHE.md) are likewise schema-checked, with
 * `--require-cache` making their absence an error. `service.rpc` run
 * reports (the process-level worker runtime's supervision scorecard,
 * docs/RPC.md) are schema-checked too — counters plus one
 * pid/tier/jobs row per child worker slot — with `--require-rpc`
 * making their absence an error. The trace check also verifies the distributed-tracing
 * invariants: every `cat:"request"` slice carries trace/span/parent
 * ids, every trace id forms one connected tree with exactly one root,
 * and every flow-arrow end has a matching begin. Stage vocabulary is
 * enforced against obs/stage.h: a `cat:"stage"` slice must be named
 * after a leaf stage and a `cat:"phase"` slice after a phase stage
 * (wavefront_row, entropy_slice, ...), so a renamed or misclassified
 * span breaks the lint instead of silently orphaning dashboards. Exit
 * 0 when every requested artifact validates.
 */

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_parse.h"
#include "obs/stage.h"
#include "obs/telemetry.h"

namespace {

using namespace vbench;
using obs::jsonlite::Value;

bool
readFile(const std::string &path, std::string *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

bool
isNumber(const Value *v)
{
    return v && v->isNumber();
}

bool
isString(const Value *v)
{
    return v && v->isString();
}

/**
 * Is `name` the obs/stage.h name of a stage whose leaf-ness matches
 * `leaf`? The trace writer derives both the slice name and its
 * "stage"/"phase" category from the same Stage value, so a mismatch
 * here means someone emitted a span outside the taxonomy.
 */
bool
isStageName(const std::string &name, bool leaf)
{
    for (int i = 0; i < obs::kNumStages; ++i) {
        const auto stage = static_cast<obs::Stage>(i);
        if (obs::isLeafStage(stage) == leaf &&
            name == obs::toString(stage))
            return true;
    }
    return false;
}

/** One spanning pass over the traceEvents array. */
bool
lintTrace(const std::string &path)
{
    std::string text;
    if (!readFile(path, &text)) {
        std::fprintf(stderr, "obs_lint: cannot read %s\n", path.c_str());
        return false;
    }
    const std::optional<Value> root = obs::jsonlite::parse(text);
    if (!root || !root->isObject()) {
        std::fprintf(stderr, "obs_lint: %s: not a JSON object\n",
                     path.c_str());
        return false;
    }
    const Value *events = root->find("traceEvents");
    if (!events || !events->isArray()) {
        std::fprintf(stderr, "obs_lint: %s: missing traceEvents array\n",
                     path.c_str());
        return false;
    }

    bool ok = true;
    size_t slices = 0, request_slices = 0, metadata = 0;
    // trace_id -> span ids / parent ids seen in that trace.
    std::map<uint64_t, std::set<uint64_t>> spans_by_trace;
    std::map<uint64_t, std::vector<uint64_t>> parents_by_trace;
    std::map<uint64_t, size_t> roots_by_trace;
    std::set<uint64_t> flow_begins, flow_ends;
    const auto complain = [&](size_t i, const char *what) {
        std::fprintf(stderr, "obs_lint: %s: event %zu: %s\n",
                     path.c_str(), i, what);
        ok = false;
    };

    for (size_t i = 0; i < events->array.size(); ++i) {
        const Value &e = events->array[i];
        if (!e.isObject()) {
            complain(i, "not an object");
            continue;
        }
        const Value *ph = e.find("ph");
        if (!isString(ph)) {
            complain(i, "missing ph");
            continue;
        }
        if (ph->string == "M") {
            ++metadata;
            const Value *args = e.find("args");
            if (!isString(e.find("name")) || !args ||
                !isString(args->find("name")))
                complain(i, "malformed metadata event");
            continue;
        }
        if (ph->string == "X") {
            ++slices;
            if (!isString(e.find("name")) || !isNumber(e.find("ts")) ||
                !isNumber(e.find("dur")) || !isNumber(e.find("pid")) ||
                !isNumber(e.find("tid"))) {
                complain(i, "malformed slice");
                continue;
            }
            const Value *cat = e.find("cat");
            if (cat && (cat->string == "stage" || cat->string == "phase")) {
                if (!isStageName(e.find("name")->string,
                                 cat->string == "stage"))
                    complain(i, "slice name outside the stage taxonomy "
                                "(obs/stage.h)");
                continue;
            }
            if (!cat || cat->string != "request")
                continue;
            ++request_slices;
            const Value *args = e.find("args");
            if (!args || !isNumber(args->find("trace_id")) ||
                !isNumber(args->find("span_id")) ||
                !isNumber(args->find("parent_id"))) {
                complain(i, "request slice without span ids");
                continue;
            }
            const auto asId = [&](const char *key) {
                return static_cast<uint64_t>(args->find(key)->number);
            };
            const uint64_t trace = asId("trace_id");
            spans_by_trace[trace].insert(asId("span_id"));
            const uint64_t parent = asId("parent_id");
            if (parent == 0)
                ++roots_by_trace[trace];
            else
                parents_by_trace[trace].push_back(parent);
            continue;
        }
        if (ph->string == "s" || ph->string == "f") {
            if (!isNumber(e.find("id")) || !isNumber(e.find("ts")) ||
                !isNumber(e.find("tid"))) {
                complain(i, "malformed flow event");
                continue;
            }
            const uint64_t id =
                static_cast<uint64_t>(e.find("id")->number);
            (ph->string == "s" ? flow_begins : flow_ends).insert(id);
            continue;
        }
        // Other phases (counters, async) are fine if they ever appear;
        // nothing to check structurally beyond being an object.
    }

    for (const auto &[trace, parents] : parents_by_trace)
        for (const uint64_t parent : parents)
            if (spans_by_trace[trace].find(parent) ==
                spans_by_trace[trace].end()) {
                std::fprintf(stderr,
                             "obs_lint: %s: trace %llu references "
                             "missing parent span %llu\n",
                             path.c_str(),
                             static_cast<unsigned long long>(trace),
                             static_cast<unsigned long long>(parent));
                ok = false;
            }
    for (const auto &[trace, spans] : spans_by_trace) {
        (void)spans;
        if (roots_by_trace[trace] != 1) {
            std::fprintf(stderr,
                         "obs_lint: %s: trace %llu has %zu roots "
                         "(want exactly 1)\n",
                         path.c_str(),
                         static_cast<unsigned long long>(trace),
                         roots_by_trace[trace]);
            ok = false;
        }
    }
    for (const uint64_t id : flow_ends)
        if (flow_begins.find(id) == flow_begins.end()) {
            std::fprintf(stderr,
                         "obs_lint: %s: flow end %llu has no begin\n",
                         path.c_str(),
                         static_cast<unsigned long long>(id));
            ok = false;
        }
    for (const uint64_t id : flow_begins)
        if (flow_ends.find(id) == flow_ends.end()) {
            std::fprintf(stderr,
                         "obs_lint: %s: flow begin %llu has no end\n",
                         path.c_str(),
                         static_cast<unsigned long long>(id));
            ok = false;
        }

    std::printf("obs_lint: %s: %zu slices (%zu request-scoped, %zu "
                "traces), %zu flow pairs, %zu row names%s\n",
                path.c_str(), slices, request_slices,
                spans_by_trace.size(), flow_begins.size(), metadata,
                ok ? "" : " — INVALID");
    if (request_slices == 0) {
        std::fprintf(stderr,
                     "obs_lint: %s: no request-scoped slices (was the "
                     "run traced?)\n",
                     path.c_str());
        ok = false;
    }
    return ok;
}

/**
 * The `service.fleet` run report is the machine-readable fleet
 * accounting record (docs/FLEET.md): worker/type counts and the total
 * dollars in `extra`, topology/policy/model provenance in `extra_str`.
 * A fleet-routed run that emits a malformed one fails the lint.
 */
bool
lintFleetReport(const std::string &path, size_t line_no, const Value &v)
{
    bool ok = true;
    const auto complain = [&](const char *what) {
        std::fprintf(stderr, "obs_lint: %s:%zu: service.fleet %s\n",
                     path.c_str(), line_no, what);
        ok = false;
    };
    const Value *extra = v.find("extra");
    if (!extra || !extra->isObject()) {
        complain("report without extra object");
        return false;
    }
    const Value *workers = extra->find("workers");
    const Value *types = extra->find("types");
    if (!isNumber(workers) || workers->number <= 0)
        complain("report without a positive workers count");
    if (!isNumber(types) || types->number <= 0)
        complain("report without a positive types count");
    const Value *cost = extra->find("total_cost_dollars");
    if (!isNumber(cost) || cost->number < 0)
        complain("report without a total_cost_dollars number");
    const Value *extra_str = v.find("extra_str");
    if (!extra_str || !extra_str->isObject()) {
        complain("report without extra_str object");
        return false;
    }
    if (!isString(extra_str->find("topology")))
        complain("report without a topology spec");
    if (!isString(extra_str->find("policy")))
        complain("report without a policy name");
    return ok;
}

/**
 * The `service.cache` run report is the output cache's accounting
 * record (docs/CACHE.md): lookup/hit/insert counters, the bytes
 * resident against capacity, and the storage/compute/saved dollar
 * totals in `extra`, the eviction policy name in `extra_str`.
 */
bool
lintCacheReport(const std::string &path, size_t line_no, const Value &v)
{
    bool ok = true;
    const auto complain = [&](const char *what) {
        std::fprintf(stderr, "obs_lint: %s:%zu: service.cache %s\n",
                     path.c_str(), line_no, what);
        ok = false;
    };
    const Value *extra = v.find("extra");
    if (!extra || !extra->isObject()) {
        complain("report without extra object");
        return false;
    }
    const Value *lookups = extra->find("lookups");
    const Value *hits = extra->find("hits");
    const Value *misses = extra->find("misses");
    if (!isNumber(lookups) || lookups->number < 0)
        complain("report without a lookups count");
    if (!isNumber(hits) || hits->number < 0)
        complain("report without a hits count");
    if (!isNumber(misses) || misses->number < 0)
        complain("report without a misses count");
    if (isNumber(lookups) && isNumber(hits) && isNumber(misses) &&
        hits->number + misses->number != lookups->number)
        complain("report where hits + misses != lookups");
    const Value *rate = extra->find("hit_rate");
    if (!isNumber(rate) || rate->number < 0 || rate->number > 1)
        complain("report without a hit_rate in [0,1]");
    const Value *resident = extra->find("resident_bytes");
    const Value *capacity = extra->find("capacity_bytes");
    if (!isNumber(resident) || resident->number < 0)
        complain("report without a resident_bytes count");
    if (!isNumber(capacity) || capacity->number <= 0)
        complain("report without a positive capacity_bytes");
    if (isNumber(resident) && isNumber(capacity) &&
        resident->number > capacity->number)
        complain("report with resident_bytes above capacity");
    for (const char *key : {"storage_dollars", "compute_dollars",
                            "saved_dollars", "total_dollars"}) {
        const Value *d = extra->find(key);
        if (!isNumber(d) || d->number < 0) {
            std::fprintf(stderr,
                         "obs_lint: %s:%zu: service.cache report "
                         "without a %s number\n",
                         path.c_str(), line_no, key);
            ok = false;
        }
    }
    const Value *extra_str = v.find("extra_str");
    if (!extra_str || !extra_str->isObject()) {
        complain("report without extra_str object");
        return false;
    }
    if (!isString(extra_str->find("policy")))
        complain("report without a policy name");
    return ok;
}

/**
 * The `service.rpc` run report is the process-level worker runtime's
 * supervision scorecard (docs/RPC.md): dispatch/retry/respawn/hedge
 * counters in `extra` plus one pid/jobs/respawns/alive row per child
 * worker slot (`w<i>.*`), with the slot's kernel ISA tier in
 * `extra_str`. A proc-mode run that emits a malformed one fails the
 * lint.
 */
bool
lintRpcReport(const std::string &path, size_t line_no, const Value &v)
{
    bool ok = true;
    const auto complain = [&](const std::string &what) {
        std::fprintf(stderr, "obs_lint: %s:%zu: service.rpc %s\n",
                     path.c_str(), line_no, what.c_str());
        ok = false;
    };
    const Value *extra = v.find("extra");
    if (!extra || !extra->isObject()) {
        complain("report without extra object");
        return false;
    }
    const Value *workers = extra->find("workers");
    if (!isNumber(workers) || workers->number <= 0) {
        complain("report without a positive workers count");
        return false;
    }
    for (const char *key :
         {"dispatched", "completed", "retries", "respawns",
          "worker_deaths", "timeouts", "protocol_errors", "hedges",
          "hedge_wins", "hedge_losses", "degraded_local",
          "kills_injected"}) {
        const Value *c = extra->find(key);
        if (!isNumber(c) || c->number < 0)
            complain(std::string("report without a ") + key +
                     " counter");
    }
    // Every completion ran somewhere: through a child dispatch or the
    // in-process degradation ladder.
    const Value *dispatched = extra->find("dispatched");
    const Value *completed = extra->find("completed");
    const Value *degraded = extra->find("degraded_local");
    if (isNumber(dispatched) && isNumber(completed) &&
        isNumber(degraded) &&
        completed->number > dispatched->number + degraded->number)
        complain("report where completed > dispatched + "
                 "degraded_local");
    const Value *extra_str = v.find("extra_str");
    if (!extra_str || !extra_str->isObject()) {
        complain("report without extra_str object");
        return false;
    }
    // One row per worker slot, keyed w<i>.*; a slot that never spawned
    // reports pid 0, so pid only has to be a number.
    const size_t n = static_cast<size_t>(workers->number);
    for (size_t w = 0; w < n; ++w) {
        const std::string prefix = "w" + std::to_string(w);
        for (const char *field : {".pid", ".jobs", ".respawns",
                                  ".alive"}) {
            const Value *c = extra->find(prefix + field);
            if (!isNumber(c) || c->number < 0)
                complain("report without a " + prefix + field +
                         " number");
        }
        const Value *alive = extra->find(prefix + ".alive");
        if (isNumber(alive) && alive->number != 0 &&
            alive->number != 1)
            complain("report where " + prefix +
                     ".alive is not 0 or 1");
        if (!isString(extra_str->find(prefix + ".tier")))
            complain("report without a " + prefix + ".tier string");
    }
    return ok;
}

/** Run reports: one JSON object per line, label + seconds required. */
bool
lintReports(const std::string &path, bool require_fleet,
            bool require_cache, bool require_rpc)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "obs_lint: cannot read %s\n", path.c_str());
        return false;
    }
    bool ok = true;
    size_t line_no = 0, reports = 0, fleet_reports = 0,
           cache_reports = 0, rpc_reports = 0;
    std::string line;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        const std::optional<Value> v = obs::jsonlite::parse(line);
        if (!v || !v->isObject() || !isString(v->find("label")) ||
            !isNumber(v->find("seconds"))) {
            std::fprintf(stderr,
                         "obs_lint: %s:%zu: not a run report object\n",
                         path.c_str(), line_no);
            ok = false;
            continue;
        }
        ++reports;
        if (v->find("label")->string == "service.fleet") {
            ++fleet_reports;
            ok = lintFleetReport(path, line_no, *v) && ok;
        }
        if (v->find("label")->string == "service.cache") {
            ++cache_reports;
            ok = lintCacheReport(path, line_no, *v) && ok;
        }
        if (v->find("label")->string == "service.rpc") {
            ++rpc_reports;
            ok = lintRpcReport(path, line_no, *v) && ok;
        }
    }
    std::printf("obs_lint: %s: %zu run reports (%zu fleet, %zu cache, "
                "%zu rpc)%s\n",
                path.c_str(), reports, fleet_reports, cache_reports,
                rpc_reports, ok ? "" : " — INVALID");
    if (reports == 0) {
        std::fprintf(stderr, "obs_lint: %s: no run reports\n",
                     path.c_str());
        ok = false;
    }
    if (require_fleet && fleet_reports == 0) {
        std::fprintf(stderr,
                     "obs_lint: %s: no service.fleet report (was the "
                     "run fleet-routed?)\n",
                     path.c_str());
        ok = false;
    }
    if (require_cache && cache_reports == 0) {
        std::fprintf(stderr,
                     "obs_lint: %s: no service.cache report (was the "
                     "run cache-attached?)\n",
                     path.c_str());
        ok = false;
    }
    if (require_rpc && rpc_reports == 0) {
        std::fprintf(stderr,
                     "obs_lint: %s: no service.rpc report (did the "
                     "run use VBENCH_WORKERS=proc?)\n",
                     path.c_str());
        ok = false;
    }
    return ok;
}

bool
lintProm(const std::string &path)
{
    std::string text;
    if (!readFile(path, &text)) {
        std::fprintf(stderr, "obs_lint: cannot read %s\n", path.c_str());
        return false;
    }
    std::string error;
    if (!obs::validatePromText(text, &error)) {
        std::fprintf(stderr, "obs_lint: %s: %s\n", path.c_str(),
                     error.c_str());
        return false;
    }
    std::printf("obs_lint: %s: valid exposition (%zu bytes)\n",
                path.c_str(), text.size());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool ok = true;
    bool any = false;
    bool require_fleet = false;
    bool require_cache = false;
    bool require_rpc = false;
    // --require-fleet / --require-cache / --require-rpc must precede
    // the --report they apply to.
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--require-fleet") {
            require_fleet = true;
        } else if (arg == "--require-cache") {
            require_cache = true;
        } else if (arg == "--require-rpc") {
            require_rpc = true;
        } else if ((arg == "--trace" || arg == "--report" ||
                    arg == "--prom") &&
                   i + 1 < argc) {
            const std::string path = argv[++i];
            any = true;
            if (arg == "--trace")
                ok = lintTrace(path) && ok;
            else if (arg == "--report")
                ok = lintReports(path, require_fleet, require_cache,
                                 require_rpc) &&
                    ok;
            else
                ok = lintProm(path) && ok;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--trace FILE] [--require-fleet] "
                         "[--require-cache] [--require-rpc] "
                         "[--report FILE] [--prom FILE]\n",
                         argv[0]);
            return 2;
        }
    }
    if (!any) {
        std::fprintf(stderr, "obs_lint: nothing to lint\n");
        return 2;
    }
    return ok ? 0 : 1;
}
