#pragma once

/**
 * @file
 * Transcode output cache with a store-vs-recompute dollar policy
 * (docs/CACHE.md). Zipf popularity means the Popular scenario
 * re-encodes the same head-of-distribution segments over and over; a
 * bounded cache keyed on the *canonical transcode identity* — input
 * bytes, segment index, encode parameters, and the rc_in carry — turns
 * those repeats into byte-for-byte free hits. A hit returns the stored
 * bitstream plus its RcSnapshot out-state, so a chained rung continues
 * from a cached segment exactly as it would from a fresh encode and
 * the service stays byte-identical with the cache on or off.
 *
 * Beyond plain LRU, the CostAware policy prices every decision: an
 * entry is worth keeping only while its expected re-encode savings
 * (EWMA-decayed popularity × the fleet::PerfModel re-encode dollars)
 * exceed its storage rent (bytes × $/GB-hour). Admission uses the same
 * arithmetic over "ghost" popularity records of non-resident keys, so
 * one-off tail content is recomputed instead of paying rent — per
 * entry, hence per rung of a ladder.
 *
 * All time-dependent operations take an explicit `now_s` so benches
 * can drive the cache on simulated workload time (deterministic under
 * a seed); the service passes its run clock. Thread-safe: one mutex,
 * and the gauge accessors (hitRate, residentBytes) are safe to call
 * from the telemetry sampler thread.
 */

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "codec/ratecontrol.h"
#include "codec/types.h"
#include "fleet/types.h"

namespace vbench::cache {

/**
 * 128-bit content digest: two independently mixed 64-bit lanes over
 * the same canonical byte stream (KeyBuilder). Collisions would
 * silently alias transcodes, so the key is wide on purpose.
 */
struct CacheKey {
    uint64_t hi = 0;
    uint64_t lo = 0;

    bool operator==(const CacheKey &o) const
    {
        return hi == o.hi && lo == o.lo;
    }
    bool operator!=(const CacheKey &o) const { return !(*this == o); }

    /** "k<hex hi><hex lo>" for logs and reports. */
    std::string toString() const;
};

struct CacheKeyHash {
    size_t operator()(const CacheKey &k) const
    {
        // hi and lo are already mixed; fold them.
        return static_cast<size_t>(k.hi ^ (k.lo * 0x9E3779B97F4A7C15ull));
    }
};

/**
 * Incremental canonical digest. Typed appenders write a fixed-width
 * little-endian encoding of each field into both lanes (lane A:
 * FNV-1a; lane B: multiply-xor with a different odd constant), so the
 * same logical fields always produce the same key regardless of caller
 * and any field change flips it. Length-prefix blobs/strings to keep
 * the encoding prefix-free.
 */
class KeyBuilder
{
  public:
    KeyBuilder &u8(uint8_t v)
    {
        feed(v);
        return *this;
    }
    KeyBuilder &u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            feed(static_cast<uint8_t>(v >> (8 * i)));
        return *this;
    }
    KeyBuilder &u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            feed(static_cast<uint8_t>(v >> (8 * i)));
        return *this;
    }
    KeyBuilder &i32(int32_t v) { return u32(static_cast<uint32_t>(v)); }
    KeyBuilder &f64(double v);
    KeyBuilder &boolean(bool v) { return u8(v ? 1 : 0); }
    KeyBuilder &str(std::string_view s);
    KeyBuilder &bytes(const codec::ByteBuffer &b);

    CacheKey finish() const { return {finalizeA(), finalizeB()}; }

  private:
    void feed(uint8_t byte)
    {
        a_ = (a_ ^ byte) * 0x100000001B3ull;          // FNV-1a 64
        b_ = (b_ ^ byte) * 0x9E3779B97F4A7C15ull;     // golden-ratio mix
        b_ ^= b_ >> 29;
    }
    uint64_t finalizeA() const;
    uint64_t finalizeB() const;

    uint64_t a_ = 0xCBF29CE484222325ull;  // FNV offset basis
    uint64_t b_ = 0x6C62272E07BB0142ull;
};

/** Store-vs-recompute strategies (VBENCH_CACHE_POLICY). */
enum class CachePolicy {
    Lru = 0,          ///< recency only, store everything that fits
    AlwaysStore,      ///< baseline: store every output, pay all rent
    AlwaysRecompute,  ///< baseline: never store, pay all compute
    CostAware,        ///< keep an entry only while expected re-encode
                      ///< savings exceed its storage rent
};

inline constexpr int kNumCachePolicies = 4;

const char *policyName(CachePolicy policy);
/** lru | always_store | always_recompute | cost_aware. */
std::optional<CachePolicy> parseCachePolicyName(std::string_view name);

/** One cached transcode output: the bytes plus the RC out-state. */
struct CachedSegment {
    codec::ByteBuffer stream;
    /// Controller state after the segment — a chained rung's next
    /// segment carries it as rc_in, identical to a fresh encode.
    codec::RcSnapshot rc_out;
    double psnr_db = 0;
    double bitrate_bpps = 0;
    double speed_mpix_s = 0;
    /// Measured encode seconds on this host (the perf model's
    /// native-tier bridge prices a re-encode from it).
    double encode_seconds = 0;
};

/** Cache sizing, prices, and policy tuning. */
struct CacheConfig {
    size_t capacity_bytes = 64ull << 20;
    CachePolicy policy = CachePolicy::CostAware;
    /// Storage rent while an entry is resident (VBENCH_CACHE_GB_HOUR).
    double storage_dollars_per_gb_hour = 0.10;
    /// Prices a re-encode: measured native seconds -> scalar work ->
    /// exec seconds on `compute_tier` at `compute_price_per_hour`.
    fleet::PerfModel model;
    fleet::Tier compute_tier = fleet::Tier::Avx2;
    double compute_price_per_hour = 1.60;
    /// EWMA popularity time constant, seconds: a touch decays to 1/e
    /// weight after tau. Also the window the hit-intensity estimate
    /// (pop / tau) is normalized over.
    double popularity_tau_s = 60.0;
    /// CostAware admission floor: decayed touch count a key needs
    /// before storing pays (>1 means "seen again within ~tau").
    double admit_min_popularity = 1.5;
    /// Bound on ghost (non-resident) popularity records.
    size_t ghost_capacity = 4096;
};

/** Counters and dollars; stats() snapshots them at a given now_s. */
struct CacheStats {
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;    ///< insert() calls (one per encoded miss)
    uint64_t admitted = 0;   ///< inserts the policy actually stored
    uint64_t rejected = 0;   ///< inserts declined by policy/size
    uint64_t evictions = 0;
    uint64_t resident_entries = 0;
    uint64_t resident_bytes = 0;
    /// Rent integral: resident_bytes × $/GB-hour, accrued over time.
    double storage_dollars = 0;
    /// Modeled dollars for every encode the cache saw (all misses).
    double compute_dollars = 0;
    /// Modeled dollars hits avoided re-spending.
    double saved_dollars = 0;

    double hitRate() const
    {
        return lookups > 0
            ? static_cast<double>(hits) / static_cast<double>(lookups)
            : 0.0;
    }
    /// The number policies compete on: what this run actually paid.
    double totalDollars() const
    {
        return storage_dollars + compute_dollars;
    }
};

/**
 * The bounded transcode output cache. lookup() before placing a
 * segment; insert() after a missed segment encodes (every insert
 * accounts the compute dollars just spent — whether the policy then
 * stores the entry is its call).
 */
class TranscodeCache
{
  public:
    explicit TranscodeCache(const CacheConfig &config);

    /**
     * Probe for a cached output. A hit refreshes the entry's
     * popularity and returns a copy; a miss records ghost popularity
     * so a CostAware re-encounter can admit. `now_s` must be
     * non-decreasing per caller (a fresh service run restarting at 0
     * is clamped, not an error).
     */
    std::optional<CachedSegment> lookup(const CacheKey &key, double now_s);

    /**
     * Offer a freshly encoded output. Always accounts the encode's
     * modeled compute dollars (the miss already paid them); storage is
     * policy-gated. Re-inserting a resident key refreshes nothing but
     * the compute accounting (concurrent identical misses are benign).
     */
    void insert(const CacheKey &key, CachedSegment segment, double now_s);

    /**
     * CostAware retention pass: drop entries whose expected savings
     * rate fell below their rent rate (popularity decayed). No-op for
     * the other policies. insert() sweeps implicitly when evicting.
     */
    void sweep(double now_s);

    /** Snapshot counters with storage rent accrued through now_s. */
    CacheStats stats(double now_s);

    /** Gauge accessors (thread-safe, no rent accrual). */
    uint64_t residentBytes() const;
    double hitRate() const;

    const CacheConfig &config() const { return config_; }

    /** Modeled dollars to re-encode a segment measured at `encode_seconds`. */
    double reencodeDollars(double encode_seconds) const;

    /** Rent rate for an entry of `bytes`, dollars per second. */
    double rentRatePerSecond(size_t bytes) const;

  private:
    struct Entry {
        CachedSegment segment;
        size_t bytes = 0;
        double reencode_dollars = 0;
        double popularity = 0;    ///< EWMA-decayed touch count
        double last_touch_s = 0;
        uint64_t use_seq = 0;     ///< LRU recency
    };
    struct Ghost {
        double popularity = 0;
        double last_touch_s = 0;
        uint64_t use_seq = 0;
    };

    // All private helpers assume lock_ is held.
    void accrueStorage(double now_s);
    double decayedPopularity(double pop, double last_s,
                             double now_s) const;
    /// Expected savings rate minus rent rate, dollars/second.
    double netValueRate(const Entry &e, double now_s) const;
    void evictOver(double now_s);
    void dropEntry(std::unordered_map<CacheKey, Entry,
                                      CacheKeyHash>::iterator it);
    void touchGhost(const CacheKey &key, double now_s);
    void trimGhosts();

    CacheConfig config_;
    mutable std::mutex lock_;
    std::unordered_map<CacheKey, Entry, CacheKeyHash> entries_;
    std::unordered_map<CacheKey, Ghost, CacheKeyHash> ghosts_;
    CacheStats stats_;
    double clock_s_ = 0;   ///< high-water now_s for rent accrual
    uint64_t seq_ = 0;
};

} // namespace vbench::cache
