#include "cache/cache.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

namespace vbench::cache {

std::string
CacheKey::toString() const
{
    char buf[2 + 16 + 16 + 1];
    std::snprintf(buf, sizeof buf, "k%016llx%016llx",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return buf;
}

KeyBuilder &
KeyBuilder::f64(double v)
{
    // Canonicalize the one value with two bit patterns so +0.0 and
    // -0.0 (numerically equal everywhere in the encoder) key alike.
    if (v == 0.0)
        v = 0.0;
    return u64(std::bit_cast<uint64_t>(v));
}

KeyBuilder &
KeyBuilder::str(std::string_view s)
{
    u32(static_cast<uint32_t>(s.size()));
    for (const char c : s)
        feed(static_cast<uint8_t>(c));
    return *this;
}

KeyBuilder &
KeyBuilder::bytes(const codec::ByteBuffer &b)
{
    u32(static_cast<uint32_t>(b.size()));
    for (const uint8_t byte : b)
        feed(byte);
    return *this;
}

uint64_t
KeyBuilder::finalizeA() const
{
    // fmix64 avalanche so short inputs still spread over the lane.
    uint64_t h = a_;
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDull;
    h ^= h >> 33;
    h *= 0xC4CEB9FE1A85EC53ull;
    h ^= h >> 33;
    return h;
}

uint64_t
KeyBuilder::finalizeB() const
{
    uint64_t h = b_;
    h ^= h >> 31;
    h *= 0x7FB5D329728EA185ull;
    h ^= h >> 27;
    h *= 0x81DADEF4BC2DD44Dull;
    h ^= h >> 33;
    return h;
}

const char *
policyName(CachePolicy policy)
{
    switch (policy) {
      case CachePolicy::Lru: return "lru";
      case CachePolicy::AlwaysStore: return "always_store";
      case CachePolicy::AlwaysRecompute: return "always_recompute";
      case CachePolicy::CostAware: return "cost_aware";
    }
    return "unknown";
}

std::optional<CachePolicy>
parseCachePolicyName(std::string_view name)
{
    if (name == "lru")
        return CachePolicy::Lru;
    if (name == "always_store")
        return CachePolicy::AlwaysStore;
    if (name == "always_recompute")
        return CachePolicy::AlwaysRecompute;
    if (name == "cost_aware")
        return CachePolicy::CostAware;
    return std::nullopt;
}

TranscodeCache::TranscodeCache(const CacheConfig &config)
    : config_(config)
{
    if (config_.popularity_tau_s <= 0)
        config_.popularity_tau_s = 60.0;
    if (config_.ghost_capacity == 0)
        config_.ghost_capacity = 1;
}

double
TranscodeCache::reencodeDollars(double encode_seconds) const
{
    // Measured native seconds -> scalar-tier work -> modeled seconds
    // on the compute tier (no dispatch overhead: the re-encode is the
    // marginal cost the cache avoids) -> dollars.
    const double native_speed = config_.model.tier_speed[static_cast<
        size_t>(config_.model.native_tier)];
    const double work_scalar_s =
        std::max(0.0, encode_seconds) * native_speed;
    const double exec_s =
        config_.model.execSeconds(config_.compute_tier, work_scalar_s,
                                  /*overhead_ms=*/0.0);
    return exec_s * config_.compute_price_per_hour / 3600.0;
}

double
TranscodeCache::rentRatePerSecond(size_t bytes) const
{
    return static_cast<double>(bytes) / 1e9 *
        config_.storage_dollars_per_gb_hour / 3600.0;
}

void
TranscodeCache::accrueStorage(double now_s)
{
    // Monotonic high-water clock: a caller restarting its run clock
    // (now < clock_s_) freezes accrual instead of rewinding it.
    if (now_s > clock_s_) {
        stats_.storage_dollars +=
            rentRatePerSecond(stats_.resident_bytes) *
            (now_s - clock_s_);
        clock_s_ = now_s;
    }
}

double
TranscodeCache::decayedPopularity(double pop, double last_s,
                                  double now_s) const
{
    const double dt = now_s - last_s;
    if (dt <= 0)
        return pop;
    return pop * std::exp(-dt / config_.popularity_tau_s);
}

double
TranscodeCache::netValueRate(const Entry &e, double now_s) const
{
    const double pop =
        decayedPopularity(e.popularity, e.last_touch_s, now_s);
    const double hit_rate_hz = pop / config_.popularity_tau_s;
    return hit_rate_hz * e.reencode_dollars -
        rentRatePerSecond(e.bytes);
}

std::optional<CachedSegment>
TranscodeCache::lookup(const CacheKey &key, double now_s)
{
    std::lock_guard<std::mutex> guard(lock_);
    accrueStorage(now_s);
    ++stats_.lookups;
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
        Entry &e = it->second;
        e.popularity =
            decayedPopularity(e.popularity, e.last_touch_s, now_s) + 1.0;
        e.last_touch_s = now_s;
        e.use_seq = ++seq_;
        ++stats_.hits;
        stats_.saved_dollars += e.reencode_dollars;
        return e.segment;
    }
    ++stats_.misses;
    touchGhost(key, now_s);
    return std::nullopt;
}

void
TranscodeCache::insert(const CacheKey &key, CachedSegment segment,
                       double now_s)
{
    std::lock_guard<std::mutex> guard(lock_);
    accrueStorage(now_s);
    ++stats_.inserts;
    const double reencode = reencodeDollars(segment.encode_seconds);
    // The miss that produced this insert just paid for an encode,
    // whatever the policy decides about storing it.
    stats_.compute_dollars += reencode;
    if (entries_.find(key) != entries_.end())
        return;  // already resident (concurrent identical misses)
    if (config_.policy == CachePolicy::AlwaysRecompute) {
        ++stats_.rejected;
        return;
    }
    const size_t bytes = segment.stream.size();
    if (bytes == 0 || bytes > config_.capacity_bytes) {
        ++stats_.rejected;
        return;
    }

    // The key's popularity record: this miss was already counted by
    // lookup()'s ghost touch, so a first-touch key sits at ~1.
    double pop = 1.0;
    if (const auto g = ghosts_.find(key); g != ghosts_.end())
        pop = decayedPopularity(g->second.popularity,
                                g->second.last_touch_s, now_s);

    if (config_.policy == CachePolicy::CostAware) {
        const double savings_rate =
            pop / config_.popularity_tau_s * reencode;
        if (pop < config_.admit_min_popularity ||
            savings_rate < rentRatePerSecond(bytes)) {
            ++stats_.rejected;
            return;
        }
    }

    Entry e;
    e.bytes = bytes;
    e.reencode_dollars = reencode;
    e.popularity = pop;
    e.last_touch_s = now_s;
    e.use_seq = ++seq_;
    e.segment = std::move(segment);
    ghosts_.erase(key);
    stats_.resident_bytes += bytes;
    ++stats_.resident_entries;
    ++stats_.admitted;
    entries_.emplace(key, std::move(e));
    evictOver(now_s);
}

void
TranscodeCache::sweep(double now_s)
{
    std::lock_guard<std::mutex> guard(lock_);
    accrueStorage(now_s);
    if (config_.policy != CachePolicy::CostAware)
        return;
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (netValueRate(it->second, now_s) < 0) {
            ++stats_.evictions;
            auto doomed = it++;
            dropEntry(doomed);
        } else {
            ++it;
        }
    }
}

void
TranscodeCache::evictOver(double now_s)
{
    while (stats_.resident_bytes > config_.capacity_bytes &&
           !entries_.empty()) {
        // Victim: LRU-family policies evict the least recently used;
        // CostAware evicts the lowest net dollar value per second
        // (ties to the older entry so eviction stays deterministic).
        auto victim = entries_.begin();
        if (config_.policy == CachePolicy::CostAware) {
            double worst = std::numeric_limits<double>::infinity();
            for (auto it = entries_.begin(); it != entries_.end();
                 ++it) {
                const double v = netValueRate(it->second, now_s);
                if (v < worst ||
                    (v == worst &&
                     it->second.use_seq < victim->second.use_seq)) {
                    worst = v;
                    victim = it;
                }
            }
        } else {
            for (auto it = entries_.begin(); it != entries_.end(); ++it)
                if (it->second.use_seq < victim->second.use_seq)
                    victim = it;
        }
        ++stats_.evictions;
        dropEntry(victim);
    }
}

void
TranscodeCache::dropEntry(
    std::unordered_map<CacheKey, Entry, CacheKeyHash>::iterator it)
{
    // Keep the popularity memory: an evicted head key can re-admit on
    // its next encounter without starting cold.
    Ghost g;
    g.popularity = it->second.popularity;
    g.last_touch_s = it->second.last_touch_s;
    g.use_seq = it->second.use_seq;
    stats_.resident_bytes -= it->second.bytes;
    --stats_.resident_entries;
    ghosts_[it->first] = g;
    entries_.erase(it);
    trimGhosts();
}

void
TranscodeCache::touchGhost(const CacheKey &key, double now_s)
{
    Ghost &g = ghosts_[key];
    g.popularity =
        decayedPopularity(g.popularity, g.last_touch_s, now_s) + 1.0;
    g.last_touch_s = now_s;
    g.use_seq = ++seq_;
    trimGhosts();
}

void
TranscodeCache::trimGhosts()
{
    while (ghosts_.size() > config_.ghost_capacity) {
        auto oldest = ghosts_.begin();
        for (auto it = ghosts_.begin(); it != ghosts_.end(); ++it)
            if (it->second.use_seq < oldest->second.use_seq)
                oldest = it;
        ghosts_.erase(oldest);
    }
}

CacheStats
TranscodeCache::stats(double now_s)
{
    std::lock_guard<std::mutex> guard(lock_);
    accrueStorage(now_s);
    return stats_;
}

uint64_t
TranscodeCache::residentBytes() const
{
    std::lock_guard<std::mutex> guard(lock_);
    return stats_.resident_bytes;
}

double
TranscodeCache::hitRate() const
{
    std::lock_guard<std::mutex> guard(lock_);
    return stats_.hitRate();
}

} // namespace vbench::cache
