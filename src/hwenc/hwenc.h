#pragma once

/**
 * @file
 * Fixed-function hardware encoder models (NVIDIA NVENC and Intel
 * QuickSync analogues, paper §5.3).
 *
 * Hardware encoders are selective about which compression tools they
 * implement: small search ranges, no trellis/RDO, a single reference.
 * The models here *really encode* — they run the VBC pipeline with a
 * frozen hardware tool set, so bitrate and quality are measured, not
 * assumed. Only the *time* is modeled analytically: a pipelined
 * macroblock engine with a per-frame launch/transfer overhead, which
 * is why hardware speedups grow with resolution (Table 3) — large
 * frames amortize the fixed costs.
 */

#include <string>

#include "codec/encoder.h"
#include "codec/ratecontrol.h"
#include "video/video.h"

namespace vbench::hwenc {

/** Description of one fixed-function encoder. */
struct HwEncoderSpec {
    std::string name;
    /// Steady-state macroblock-engine throughput, Mpixels/second.
    double throughput_mpix_s = 1100.0;
    /// Per-frame launch + PCIe transfer overhead, milliseconds.
    double per_frame_overhead_ms = 3.0;
    /// Lowest bitrate the hardware rate control can produce, in
    /// bits/pixel/second. Fixed-function encoders cannot degrade
    /// gracefully below this — the §6.1 low-entropy failure mode.
    double min_bpps = 0.9;
    /// Keyframe interval. Hardware pipelines run short GOPs for
    /// latency and error resilience, which is what costs them bitrate
    /// on static content (Table 3's low-entropy rows).
    int gop = 6;
    /// The tool set frozen into the hardware.
    codec::ToolPreset tools;
};

/** NVENC-like configuration (GTX 1060 generation). */
HwEncoderSpec nvencLikeSpec();

/** QuickSync-like configuration (Skylake generation). */
HwEncoderSpec qsvLikeSpec();

/** Outcome of a hardware encode. */
struct HwEncodeResult {
    codec::EncodeResult encoded;
    /// Modeled wall-clock seconds for the whole clip.
    double seconds = 0;
    /// Modeled throughput, Mpixels/second.
    double mpix_per_s = 0;
};

/**
 * Encode a clip on the modeled hardware.
 *
 * @param spec which encoder.
 * @param source the clip.
 * @param rc rate control (hardware supports CQP and single-pass ABR;
 *        TwoPass is rejected — fixed-function encoders are one-pass
 *        devices — by falling back to Abr).
 * @param tracer optional stage tracer; spans land on the HwEncode
 *        track and record real (host) time, not modeled time.
 */
HwEncodeResult hwEncode(const HwEncoderSpec &spec,
                        const video::Video &source,
                        codec::RateControlConfig rc,
                        obs::Tracer *tracer = nullptr);

/**
 * Bisection over the target bitrate until the encode's quality is just
 * above `target_psnr` (the paper's Table 3/4 methodology: "varied the
 * target bitrate using a bisection algorithm until results satisfy the
 * quality constraints by a small margin").
 *
 * @param iterations bisection steps (each runs a full encode).
 * @return the result of the final (satisfying) encode.
 */
HwEncodeResult encodeAtQuality(const HwEncoderSpec &spec,
                               const video::Video &source,
                               double target_psnr, int iterations = 7,
                               const video::Video *quality_baseline =
                                   nullptr,
                               obs::Tracer *tracer = nullptr);

} // namespace vbench::hwenc
