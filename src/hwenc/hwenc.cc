#include "hwenc/hwenc.h"

#include <algorithm>
#include <cmath>

#include "codec/decoder.h"
#include "metrics/psnr.h"

namespace vbench::hwenc {

namespace {

using codec::EncoderConfig;
using codec::EntropyMode;
using codec::RcMode;
using codec::SearchKind;
using codec::ToolPreset;

} // namespace

HwEncoderSpec
nvencLikeSpec()
{
    HwEncoderSpec spec;
    spec.name = "nvenc-like";
    spec.throughput_mpix_s = 1100.0;
    spec.per_frame_overhead_ms = 3.0;
    spec.min_bpps = 0.9;
    // Silicon tool set: modest diamond search, half-pel, single
    // reference, no partition splits, no RDO, hardware CABAC.
    spec.tools = ToolPreset{SearchKind::Diamond, 10, true, 1, false, 1, 0,
                            false, EntropyMode::Arith, true, 3};
    return spec;
}

HwEncoderSpec
qsvLikeSpec()
{
    HwEncoderSpec spec;
    spec.name = "qsv-like";
    // QSV posts the higher speed ratios in Table 3 (integrated engine,
    // no PCIe hop) with a comparable compression tool set but a
    // coarser rate-control floor (its Table 4 low-entropy failures).
    spec.throughput_mpix_s = 1400.0;
    spec.per_frame_overhead_ms = 2.0;
    spec.min_bpps = 1.2;
    spec.tools = ToolPreset{SearchKind::Hex, 12, true, 1, false, 1, 0,
                            false, EntropyMode::Arith, true, 4};
    return spec;
}

HwEncodeResult
hwEncode(const HwEncoderSpec &spec, const video::Video &source,
         codec::RateControlConfig rc, obs::Tracer *tracer)
{
    // Fixed-function encoders are single-pass devices.
    if (rc.mode == RcMode::TwoPass)
        rc.mode = RcMode::Abr;
    // ... with a bitrate floor below which their rate control cannot
    // operate.
    if (rc.mode == RcMode::Abr) {
        const double floor_bps =
            spec.min_bpps * static_cast<double>(source.pixelsPerFrame());
        rc.bitrate_bps = std::max(rc.bitrate_bps, floor_bps);
    }
    // Hardware rate control chases its target all the way down the QP
    // range instead of saturating like tuned software does.
    rc.min_qp = 4;

    EncoderConfig cfg;
    cfg.rc = rc;
    cfg.gop = spec.gop;
    cfg.tools_override = spec.tools;
    // The bitstream layout is frozen in silicon: hardware models never
    // emit entropy slices, whatever VBENCH_SLICES says.
    cfg.slice_count = 1;
    cfg.tracer = tracer;
    cfg.track = obs::Track::HwEncode;
    codec::Encoder encoder(cfg);

    HwEncodeResult result;
    result.encoded = encoder.encode(source);

    const double pixels = static_cast<double>(source.totalPixels());
    result.seconds = source.frameCount() *
        spec.per_frame_overhead_ms / 1000.0 +
        pixels / (spec.throughput_mpix_s * 1e6);
    result.mpix_per_s = pixels / result.seconds / 1e6;
    return result;
}

HwEncodeResult
encodeAtQuality(const HwEncoderSpec &spec, const video::Video &source,
                double target_psnr, int iterations,
                const video::Video *quality_baseline,
                obs::Tracer *tracer)
{
    // Quality can be judged against a cleaner master than the frames
    // being encoded (the transcode-pipeline case: encode the decoded
    // universal stream, score against the original upload).
    const video::Video &baseline =
        quality_baseline ? *quality_baseline : source;
    // Bracket in bits/pixel/second, then bisect. bits/s follows as
    // bpps x pixels-per-frame (the duration normalization cancels).
    const double pix_rate =
        static_cast<double>(source.pixelsPerFrame());
    double lo_bpps = spec.min_bpps;  // hardware rate-control floor
    double hi_bpps = 40.0;

    HwEncodeResult best;
    bool have_satisfying = false;
    for (int i = 0; i < iterations; ++i) {
        const double bpps = std::sqrt(lo_bpps * hi_bpps);  // log midpoint
        codec::RateControlConfig rc;
        rc.mode = RcMode::Abr;
        rc.bitrate_bps = bpps * pix_rate;
        HwEncodeResult attempt = hwEncode(spec, source, rc, tracer);
        const auto decoded = codec::decode(attempt.encoded.stream);
        const double psnr =
            decoded ? metrics::videoPsnr(baseline, *decoded) : 0.0;
        if (psnr >= target_psnr) {
            best = std::move(attempt);
            have_satisfying = true;
            hi_bpps = bpps;  // try smaller
        } else {
            lo_bpps = bpps;  // need more bits
        }
    }
    if (!have_satisfying) {
        // Return the max-bitrate attempt so callers can observe the
        // miss (its PSNR will be below target).
        codec::RateControlConfig rc;
        rc.mode = RcMode::Abr;
        rc.bitrate_bps = hi_bpps * pix_rate;
        best = hwEncode(spec, source, rc, tracer);
    }
    return best;
}

} // namespace vbench::hwenc
