#pragma once

/**
 * @file
 * Syntax-element coding layer: one interface, two entropy backends.
 *
 * The encoder and decoder express the bitstream as bits / unsigned /
 * signed values with context ids; the backend maps those onto either
 * plain Exp-Golomb bits (Vlc) or adaptive range-coded bins (Arith).
 * Because both sides share the same abstraction, adding the arithmetic
 * coder did not change a single line of macroblock syntax.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "codec/bitio.h"
#include "codec/golomb.h"
#include "codec/rangecoder.h"
#include "codec/types.h"

namespace vbench::codec {

/**
 * Context id assignments. Multi-slot groups reserve a run of ids; the
 * *Slots constants give group sizes.
 */
namespace ctx {

inline constexpr int kMbSkip = 0;
inline constexpr int kMbMode0 = 1;
inline constexpr int kMbMode1 = 2;
inline constexpr int kIntraLuma = 3;    // 2 slots
inline constexpr int kIntraChroma = 5;  // 2 slots
inline constexpr int kRefIdx = 7;       // 2 slots
inline constexpr int kMvX = 9;          // 4 slots
inline constexpr int kMvY = 13;         // 4 slots
inline constexpr int kQpDelta = 17;     // 2 slots
inline constexpr int kCoefCountY = 19;  // 4 slots
inline constexpr int kCoefCountC = 23;  // 4 slots
inline constexpr int kRun = 27;         // 3 slots
inline constexpr int kLevel = 30;       // 4 slots
inline constexpr int kNumContexts = 34;

} // namespace ctx

/** Writer half of the syntax interface. */
class SyntaxWriter
{
  public:
    virtual ~SyntaxWriter() = default;

    /** One modeled bit. */
    virtual void bit(int b, int context) = 0;

    /** One unmodeled (equiprobable) bit. */
    virtual void bypass(int b) = 0;

    /**
     * Unsigned value, Exp-Golomb structured: the exponent prefix uses
     * up to n_contexts adaptive contexts starting at context_base, the
     * mantissa is bypass.
     */
    virtual void ue(uint32_t v, int context_base, int n_contexts) = 0;

    /** Signed value: ue of the magnitude mapping plus bypass sign. */
    void
    se(int32_t v, int context_base, int n_contexts)
    {
        const uint32_t mag = v < 0 ? -v : v;
        ue(mag, context_base, n_contexts);
        if (mag != 0)
            bypass(v < 0);
    }

    /** Finish the payload (flush/align). Call exactly once. */
    virtual void finish() = 0;

    /** Approximate bits produced so far (for stats/RDO). */
    virtual double bitsWritten() const = 0;
};

/** Reader half; mirrors SyntaxWriter exactly. */
class SyntaxReader
{
  public:
    virtual ~SyntaxReader() = default;

    virtual int bit(int context) = 0;
    virtual int bypass() = 0;
    virtual uint32_t ue(int context_base, int n_contexts) = 0;

    int32_t
    se(int context_base, int n_contexts)
    {
        const uint32_t mag = ue(context_base, n_contexts);
        if (mag == 0)
            return 0;
        return bypass() ? -static_cast<int32_t>(mag)
                        : static_cast<int32_t>(mag);
    }

    /** Approximate bits consumed so far (for instrumentation). */
    virtual double bitsConsumed() const = 0;
};

/** Exp-Golomb backend writer. Contexts are ignored. */
class VlcSyntaxWriter : public SyntaxWriter
{
  public:
    explicit VlcSyntaxWriter(ByteBuffer &out) : writer_(out) {}

    void bit(int b, int) override { writer_.putBit(b); }
    void bypass(int b) override { writer_.putBit(b); }
    void ue(uint32_t v, int, int) override { writer_.putUe(v); }
    void finish() override { writer_.align(); }
    double
    bitsWritten() const override
    {
        return static_cast<double>(writer_.bitCount());
    }

  private:
    BitWriter writer_;
};

class VlcSyntaxReader : public SyntaxReader
{
  public:
    VlcSyntaxReader(const uint8_t *data, size_t size) : reader_(data, size) {}

    int bit(int) override { return reader_.getBit(); }
    int bypass() override { return reader_.getBit(); }
    uint32_t ue(int, int) override { return reader_.getUe(); }
    double
    bitsConsumed() const override
    {
        return static_cast<double>(reader_.bitPos());
    }

  private:
    BitReader reader_;
};

/** Adaptive range-coder backend. */
class ArithSyntaxWriter : public SyntaxWriter
{
  public:
    explicit
    ArithSyntaxWriter(ByteBuffer &out, int n_contexts = ctx::kNumContexts)
        : encoder_(out), contexts_(n_contexts)
    {
    }

    void
    bit(int b, int context) override
    {
        encoder_.encode(b, contexts_[context]);
        ++bins_;
    }

    void
    bypass(int b) override
    {
        encoder_.encodeBypass(b);
        ++bins_;
    }

    void
    ue(uint32_t v, int context_base, int n_contexts) override
    {
        // Exp-Golomb binarization: unary exponent with per-position
        // contexts, then the mantissa as bypass bins.
        const uint64_t value = static_cast<uint64_t>(v) + 1;
        const int exponent = static_cast<int>(ueExponent(v));
        for (int i = 0; i < exponent; ++i)
            bit(1, context_base + (i < n_contexts ? i : n_contexts - 1));
        bit(0, context_base + (exponent < n_contexts ? exponent
                                                     : n_contexts - 1));
        for (int i = exponent - 1; i >= 0; --i)
            bypass((value >> i) & 1);
    }

    void finish() override { encoder_.flush(); }

    double
    bitsWritten() const override
    {
        // Compressed output lags bin count; report emitted bytes plus
        // the coder's internal backlog approximated at 1 bit/bin.
        return static_cast<double>(encoder_.bytesWritten()) * 8.0;
    }

    /** Total bins coded (entropy-kernel work units for the probe). */
    uint64_t binCount() const { return bins_; }

  private:
    RangeEncoder encoder_;
    std::vector<BitContext> contexts_;
    uint64_t bins_ = 0;
};

class ArithSyntaxReader : public SyntaxReader
{
  public:
    ArithSyntaxReader(const uint8_t *data, size_t size,
                      int n_contexts = ctx::kNumContexts)
        : decoder_(data, size), contexts_(n_contexts)
    {
    }

    int
    bit(int context) override
    {
        ++bins_;
        return decoder_.decode(contexts_[context]);
    }

    int
    bypass() override
    {
        ++bins_;
        return decoder_.decodeBypass();
    }

    uint32_t
    ue(int context_base, int n_contexts) override
    {
        int exponent = 0;
        while (bit(context_base +
                   (exponent < n_contexts ? exponent : n_contexts - 1))) {
            if (++exponent >= 32)
                break;  // corrupt stream guard
        }
        uint64_t value = 1;
        for (int i = 0; i < exponent; ++i)
            value = (value << 1) | bypass();
        return static_cast<uint32_t>(value - 1);
    }

    uint64_t binCount() const { return bins_; }

    double
    bitsConsumed() const override
    {
        return static_cast<double>(bins_);
    }

  private:
    RangeDecoder decoder_;
    std::vector<BitContext> contexts_;
    uint64_t bins_ = 0;
};

/**
 * Bit-counting pseudo-writer for RDO: tallies the exact VLC cost of
 * the syntax (a good proxy for both backends) without producing
 * output.
 */
class CountingSyntaxWriter : public SyntaxWriter
{
  public:
    void bit(int, int) override { bits_ += 1; }
    void bypass(int) override { bits_ += 1; }

    void
    ue(uint32_t v, int, int) override
    {
        bits_ += ueBits(v);
    }

    void finish() override {}
    double bitsWritten() const override { return bits_; }

  private:
    double bits_ = 0;
};

} // namespace vbench::codec
