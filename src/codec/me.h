#pragma once

/**
 * @file
 * Block motion estimation: SAD kernels and the integer + half-pel
 * search strategies (diamond, hexagon, exhaustive).
 */

#include <cstdint>

#include "codec/refplane.h"
#include "codec/types.h"
#include "uarch/probe.h"
#include "video/plane.h"

namespace vbench::codec {

/** Integer-search strategies, in increasing effort order. */
enum class SearchKind : uint8_t { Diamond = 0, Hex = 1, Full = 2 };

/** Sum of absolute differences between two strided blocks. */
uint32_t sadBlock(const uint8_t *a, int a_stride, const uint8_t *b,
                  int b_stride, int w, int h);

/**
 * Sum of absolute Hadamard-transformed differences (SATD) over the 4x4
 * sub-blocks of a block. Approximates post-transform residual cost far
 * better than SAD, which is why production encoders switch to it for
 * sub-pel refinement; ~4x the arithmetic of SAD.
 * Block dimensions must be multiples of 4.
 */
uint32_t satdBlock(const uint8_t *a, int a_stride, const uint8_t *b,
                   int b_stride, int w, int h);

/** Exp-Golomb bit cost of coding an MV against its predictor. */
uint32_t mvBits(MotionVector mv, MotionVector pred);

/** Inputs to one block search. */
struct MeContext {
    const video::Plane *src = nullptr;  ///< current source plane
    const RefPlane *ref = nullptr;      ///< padded reference
    int block_x = 0;
    int block_y = 0;
    int block_w = 16;
    int block_h = 16;
    MotionVector pred;                  ///< MV predictor (half-pel)
    /// Extra full-pel-rounded search seed (half-pel units). Encoder-side
    /// hint only — never enters the bitstream, so callers may seed from
    /// state the decoder cannot see (e.g. the row above a slice head,
    /// where `pred` must act as if the frame started). Ignored unless
    /// has_seed is set.
    MotionVector seed;
    bool has_seed = false;
    double lambda = 1.0;                ///< SAD-domain rate weight
    SearchKind kind = SearchKind::Hex;
    int range = 16;                     ///< full-pel search radius
    bool subpel = true;                 ///< half-pel refinement
    int subpel_iters = 1;               ///< refinement rounds
    /// Score sub-pel candidates with SATD instead of SAD (slower,
    /// better rate prediction; the x264 subme >= 2 behaviour).
    bool satd_subpel = false;
    uarch::UarchProbe *probe = nullptr;
};

/** Search outcome. */
struct MeResult {
    MotionVector mv;        ///< best MV, half-pel units
    uint32_t cost = 0;      ///< sad + lambda * mv bits
    uint32_t sad = 0;
    uint32_t candidates = 0;///< positions evaluated
};

/**
 * Run the configured search. The returned MV is clamped so that all
 * motion compensation reads stay inside the padded reference.
 */
MeResult motionSearch(const MeContext &ctx);

} // namespace vbench::codec
