#include "codec/ratecontrol.h"

#include <algorithm>
#include <cmath>

namespace vbench::codec {

namespace {

/**
 * Initial QP guess from bits-per-pixel: the codec spends roughly half
 * the bits for every +6 QP, anchored empirically at ~0.5 bpp ≈ QP 26.
 */
int
qpFromBpp(double bpp)
{
    if (bpp <= 0)
        return 32;
    const int qp =
        static_cast<int>(std::lround(26.0 - 6.0 * std::log2(bpp / 0.5)));
    return std::clamp(qp, kMinQp + 4, kMaxQp - 3);
}

} // namespace

RateController::RateController(const RateControlConfig &config)
    : config_(config)
{
    switch (config_.mode) {
      case RcMode::Cqp:
        base_qp_ = std::clamp(config_.qp, kMinQp, kMaxQp);
        break;
      case RcMode::Crf:
        base_qp_ = std::clamp(static_cast<int>(std::lround(config_.crf)),
                              kMinQp, kMaxQp);
        break;
      case RcMode::Abr:
      case RcMode::TwoPass: {
        const double bpp = config_.pixels_per_frame > 0
            ? config_.bitrate_bps /
                (config_.fps * config_.pixels_per_frame)
            : 0;
        base_qp_ = qpFromBpp(bpp);
        break;
      }
    }
}

int
RateController::abrQp(FrameType type) const
{
    int qp = base_qp_;
    if (planned_bits_ > 0 && spent_bits_ > 0) {
        // Bits halve per +6 QP, so the log2 of the overshoot ratio is
        // exactly the QP correction needed to converge.
        const double correction =
            6.0 * std::log2(spent_bits_ / planned_bits_);
        qp += static_cast<int>(
            std::lround(std::clamp(correction, -10.0, 10.0)));
    }
    if (type == FrameType::I)
        qp -= config_.ip_qp_offset;
    return std::clamp(qp, config_.min_qp, kMaxQp);
}

int
RateController::frameQp(FrameType type, int frame_index) const
{
    switch (config_.mode) {
      case RcMode::Cqp:
      case RcMode::Crf: {
        int qp = base_qp_;
        if (type == FrameType::I)
            qp -= config_.ip_qp_offset;
        return std::clamp(qp, kMinQp, kMaxQp);
      }
      case RcMode::Abr:
        return abrQp(type);
      case RcMode::TwoPass: {
        // Segment encodes pass local indices; the offset maps them to
        // the budget table's frame space (global when the pass-1 stats
        // cover the whole clip).
        const int index = frame_index + index_offset_;
        if (budgets_.empty() ||
            index >= static_cast<int>(budgets_.size())) {
            return abrQp(type);
        }
        // Translate the budget for this frame into a QP via the
        // half-bits-per-6-QP model around the pass-1 measurement.
        const double pass1_bits = std::max(
            1.0, pass_one_.frame_bits[index]);
        const double ratio = budgets_[index] / pass1_bits;
        double qp = pass_one_.pass_qp - 6.0 * std::log2(ratio);
        // Online correction for model error accumulated so far.
        if (planned_bits_ > 0 && spent_bits_ > 0) {
            qp += std::clamp(6.0 * std::log2(spent_bits_ / planned_bits_),
                             -6.0, 6.0);
        }
        return std::clamp(static_cast<int>(std::lround(qp)),
                          config_.min_qp, kMaxQp);
      }
    }
    return base_qp_;
}

void
RateController::frameDone(FrameType, double bits)
{
    spent_bits_ += bits;
    planned_bits_ += targetBits(frames_done_);
    ++frames_done_;
}

double
RateController::targetBits(int frame_index) const
{
    if (config_.mode == RcMode::TwoPass && !budgets_.empty() &&
        frame_index < static_cast<int>(budgets_.size())) {
        return budgets_[frame_index];
    }
    if (config_.mode == RcMode::Abr || config_.mode == RcMode::TwoPass)
        return config_.bitrate_bps / config_.fps;
    return 0;
}

RcSnapshot
RateController::snapshot() const
{
    RcSnapshot state;
    state.spent_bits = spent_bits_;
    state.planned_bits = planned_bits_;
    state.frames_done = frames_done_;
    return state;
}

void
RateController::restore(const RcSnapshot &state, int budget_index_offset)
{
    spent_bits_ = state.spent_bits;
    planned_bits_ = state.planned_bits;
    frames_done_ = state.frames_done;
    index_offset_ =
        budget_index_offset < 0 ? state.frames_done : budget_index_offset;
}

void
RateController::setPassOneStats(const PassOneStats &stats)
{
    pass_one_ = stats;
    const int n = static_cast<int>(stats.frame_bits.size());
    if (n == 0 || config_.bitrate_bps <= 0)
        return;
    // x264-style budget: allocate proportionally to complexity^0.6 so
    // hard frames get more bits without starving easy ones.
    const double total = config_.bitrate_bps * n / config_.fps;
    double sum = 0;
    std::vector<double> weight(n);
    for (int i = 0; i < n; ++i) {
        weight[i] = std::pow(std::max(1.0, stats.frame_bits[i]), 0.6);
        sum += weight[i];
    }
    budgets_.resize(n);
    for (int i = 0; i < n; ++i)
        budgets_[i] = total * weight[i] / sum;
}

} // namespace vbench::codec
