#pragma once

/**
 * @file
 * Rate control: constant QP, CRF, single-pass ABR, and two-pass ABR
 * (paper §2.2). The controller picks a frame QP before encoding and is
 * told the spent bits afterwards.
 */

#include <cstdint>
#include <vector>

#include "codec/types.h"

namespace vbench::codec {

/**
 * Finest quantizer bitrate-driven modes will use. Below this QP extra
 * bits buy nothing visible, so ABR/two-pass saturate instead of
 * spending the whole budget on trivially-compressible content (the
 * qpmin behaviour of production encoders).
 */
inline constexpr int kMinRateControlQp = 12;

/** Rate control modes. */
enum class RcMode : uint8_t {
    Cqp,      ///< fixed quantizer
    Crf,      ///< constant rate factor: fixed quality, free bitrate
    Abr,      ///< single-pass average bitrate with feedback
    TwoPass,  ///< bitrate with per-frame budgets from a first pass
};

/** Controller configuration. */
struct RateControlConfig {
    RcMode mode = RcMode::Crf;
    int qp = 26;               ///< for Cqp
    double crf = 23.0;         ///< for Crf (QP-scaled, as in libx264)
    double bitrate_bps = 0.0;  ///< for Abr / TwoPass
    double fps = 30.0;
    double pixels_per_frame = 0;  ///< for the initial-QP model
    /// Finest QP bitrate-driven modes may pick. Production software
    /// saturates at kMinRateControlQp; fixed-function hardware rate
    /// control keeps spending (its low-entropy failure mode).
    int min_qp = kMinRateControlQp;
    int ip_qp_offset = 3;      ///< I frames run this much finer
};

/** First-pass per-frame complexity record. */
struct PassOneStats {
    std::vector<double> frame_bits;  ///< bits each frame took in pass 1
    int pass_qp = 30;                ///< QP pass 1 ran at
};

/**
 * Frame-level rate controller. For TwoPass, feed setPassOneStats()
 * before the second pass.
 */
class RateController
{
  public:
    explicit RateController(const RateControlConfig &config);

    /** QP to encode the next frame at. */
    int frameQp(FrameType type, int frame_index) const;

    /** Report the bits the frame actually consumed. */
    void frameDone(FrameType type, double bits);

    /** Install first-pass statistics (switches budgeting on). */
    void setPassOneStats(const PassOneStats &stats);

    /** Target bits for a frame (0 when not bitrate-constrained). */
    double targetBits(int frame_index) const;

  private:
    int abrQp(FrameType type) const;

    RateControlConfig config_;
    PassOneStats pass_one_;
    std::vector<double> budgets_;  ///< per-frame bit budgets (two-pass)
    double spent_bits_ = 0;
    double planned_bits_ = 0;
    int frames_done_ = 0;
    int base_qp_ = 26;
};

} // namespace vbench::codec
