#pragma once

/**
 * @file
 * Rate control: constant QP, CRF, single-pass ABR, and two-pass ABR
 * (paper §2.2). The controller picks a frame QP before encoding and is
 * told the spent bits afterwards.
 */

#include <cstdint>
#include <vector>

#include "codec/types.h"

namespace vbench::codec {

/**
 * Finest quantizer bitrate-driven modes will use. Below this QP extra
 * bits buy nothing visible, so ABR/two-pass saturate instead of
 * spending the whole budget on trivially-compressible content (the
 * qpmin behaviour of production encoders).
 */
inline constexpr int kMinRateControlQp = 12;

/** Rate control modes. */
enum class RcMode : uint8_t {
    Cqp,      ///< fixed quantizer
    Crf,      ///< constant rate factor: fixed quality, free bitrate
    Abr,      ///< single-pass average bitrate with feedback
    TwoPass,  ///< bitrate with per-frame budgets from a first pass
};

/** Controller configuration. */
struct RateControlConfig {
    RcMode mode = RcMode::Crf;
    int qp = 26;               ///< for Cqp
    double crf = 23.0;         ///< for Crf (QP-scaled, as in libx264)
    double bitrate_bps = 0.0;  ///< for Abr / TwoPass
    double fps = 30.0;
    double pixels_per_frame = 0;  ///< for the initial-QP model
    /// Finest QP bitrate-driven modes may pick. Production software
    /// saturates at kMinRateControlQp; fixed-function hardware rate
    /// control keeps spending (its low-entropy failure mode).
    int min_qp = kMinRateControlQp;
    int ip_qp_offset = 3;      ///< I frames run this much finer
};

/** First-pass per-frame complexity record. */
struct PassOneStats {
    std::vector<double> frame_bits;  ///< bits each frame took in pass 1
    int pass_qp = 30;                ///< QP pass 1 ran at
};

/**
 * Serializable mid-stream controller state: everything the feedback
 * loop accumulates while encoding. Exported after a segment encode and
 * restored into the next segment's controller, it makes a chain of
 * independent segment encodes spend bits exactly like one whole-file
 * encode would — the split-and-stitch pipeline's rate-control carry
 * (see docs/SERVICE.md).
 */
struct RcSnapshot {
    double spent_bits = 0;    ///< bits emitted so far
    double planned_bits = 0;  ///< bits budgeted so far
    int frames_done = 0;      ///< frames completed so far
};

/**
 * Frame-level rate controller. For TwoPass, feed setPassOneStats()
 * before the second pass.
 */
class RateController
{
  public:
    explicit RateController(const RateControlConfig &config);

    /** QP to encode the next frame at. */
    int frameQp(FrameType type, int frame_index) const;

    /** Report the bits the frame actually consumed. */
    void frameDone(FrameType type, double bits);

    /** Install first-pass statistics (switches budgeting on). */
    void setPassOneStats(const PassOneStats &stats);

    /** Target bits for a frame (0 when not bitrate-constrained). */
    double targetBits(int frame_index) const;

    /** Export the accumulated feedback state (segment chaining). */
    RcSnapshot snapshot() const;

    /**
     * Resume mid-stream from a prior segment's snapshot. Local frame
     * indices are shifted by @p budget_index_offset when looking up
     * two-pass budgets; pass the snapshot's frames_done when the
     * installed PassOneStats cover the whole clip (exact chaining), or
     * 0 when they cover only this segment. Defaults to frames_done.
     */
    void restore(const RcSnapshot &state, int budget_index_offset = -1);

  private:
    int abrQp(FrameType type) const;

    RateControlConfig config_;
    PassOneStats pass_one_;
    std::vector<double> budgets_;  ///< per-frame bit budgets (two-pass)
    double spent_bits_ = 0;
    double planned_bits_ = 0;
    int frames_done_ = 0;
    int index_offset_ = 0;  ///< local→global frame index (segments)
    int base_qp_ = 26;
};

} // namespace vbench::codec
