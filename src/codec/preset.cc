#include "codec/preset.h"

#include <algorithm>

namespace vbench::codec {

ToolPreset
presetForEffort(int effort)
{
    effort = std::clamp(effort, 0, kNumEfforts - 1);
    ToolPreset p;
    switch (effort) {
      case 0:
        p = {SearchKind::Diamond, 8, false, 0, false, 1, 0, false,
             EntropyMode::Vlc, false, 2};
        break;
      case 1:
        p = {SearchKind::Diamond, 12, false, 0, false, 1, 0, false,
             EntropyMode::Vlc, true, 2};
        break;
      case 2:
        p = {SearchKind::Hex, 12, false, 0, false, 1, 0, false,
             EntropyMode::Vlc, true, 3};
        break;
      case 3:
        p = {SearchKind::Hex, 16, true, 1, false, 1, 0, false,
             EntropyMode::Vlc, true, 4};
        break;
      case 4:
        p = {SearchKind::Hex, 16, true, 1, true, 1, 1, false,
             EntropyMode::Vlc, true, 4};
        break;
      case 5:
        p = {SearchKind::Hex, 24, true, 2, true, 2, 1, true,
             EntropyMode::Arith, true, 4};
        break;
      case 6:
        p = {SearchKind::Hex, 32, true, 2, true, 2, 1, true,
             EntropyMode::Arith, true, 4};
        break;
      case 7:
        p = {SearchKind::Hex, 32, true, 3, true, 3, 2, true,
             EntropyMode::Arith, true, 4};
        break;
      case 8:
        p = {SearchKind::Full, 8, true, 3, true, 3, 2, true,
             EntropyMode::Arith, true, 4};
        break;
      case 9:
        p = {SearchKind::Full, 12, true, 3, true, 4, 2, true,
             EntropyMode::Arith, true, 4};
        break;
    }
    // Fast presets prune static macroblocks eagerly; slow presets run
    // the full decision almost everywhere.
    static const double skip_scale[kNumEfforts] = {
        1.6, 1.4, 1.2, 1.0, 0.8, 0.5, 0.4, 0.25, 0.15, 0.1,
    };
    p.early_skip_scale = skip_scale[effort];
    p.scenecut = effort >= 1;
    p.satd_subpel = effort >= 5;
    return p;
}

} // namespace vbench::codec
