#pragma once

/**
 * @file
 * Half-pel motion compensation (bilinear interpolation) against padded
 * reference planes. Shared verbatim by encoder and decoder.
 */

#include <cstdint>

#include "codec/refplane.h"
#include "codec/types.h"

namespace vbench::codec {

/**
 * Fetch a motion-compensated w x h block.
 *
 * @param ref padded reference plane.
 * @param x, y block position in the current frame (full-pel).
 * @param mv motion vector in half-pel units.
 * @param w, h block size.
 * @param out destination, row-major w x h.
 *
 * The caller must keep x + (mv.x >> 1) within [-kRefPad + 1,
 * width + kRefPad - w - 1] (the search clamps guarantee this).
 */
void motionCompensate(const RefPlane &ref, int x, int y, MotionVector mv,
                      int w, int h, uint8_t *out);

/**
 * Clamp a motion vector so that a w x h compensation at (x, y) —
 * including the +1 sample half-pel filters read — stays inside the
 * reference padding. Identity for any in-range vector, so applying it
 * on both encoder and decoder skip paths preserves bit-exactness while
 * making hostile predictor chains safe.
 */
inline MotionVector
clampMvForBlock(MotionVector mv, int x, int y, int w, int h, int frame_w,
                int frame_h)
{
    const int min_x = 2 * (-kRefPad + 1 - x);
    const int max_x = 2 * (frame_w + kRefPad - w - 1 - x);
    const int min_y = 2 * (-kRefPad + 1 - y);
    const int max_y = 2 * (frame_h + kRefPad - h - 1 - y);
    mv.x = static_cast<int16_t>(clampInt(mv.x, min_x, max_x));
    mv.y = static_cast<int16_t>(clampInt(mv.y, min_y, max_y));
    return mv;
}

} // namespace vbench::codec
