#pragma once

/**
 * @file
 * Shared primitive types for the VBC codec.
 */

#include <cstdint>
#include <utility>
#include <vector>

namespace vbench::codec {

/** Macroblock edge length in luma samples. */
inline constexpr int kMbSize = 16;
/** Transform block edge length. */
inline constexpr int kTbSize = 4;
/** QP range follows the H.264 convention. */
inline constexpr int kMinQp = 0;
inline constexpr int kMaxQp = 51;

/** Motion vector in half-pel luma units. */
struct MotionVector {
    int16_t x = 0;
    int16_t y = 0;

    bool
    operator==(const MotionVector &other) const
    {
        return x == other.x && y == other.y;
    }
};

/** Macroblock coding modes. */
enum class MbMode : uint8_t {
    Skip = 0,     ///< predicted MV, no residual
    Inter16 = 1,  ///< one MV for the whole macroblock
    Inter8 = 2,   ///< four MVs, one per 8x8 partition
    Intra = 3,    ///< spatially predicted
};

/** Intra prediction modes (luma 16x16 and chroma 8x8). */
enum class IntraMode : uint8_t {
    Dc = 0,
    Vertical = 1,
    Horizontal = 2,
    Planar = 3,
};

inline constexpr int kNumIntraModes = 4;

/** Frame coding types. */
enum class FrameType : uint8_t { I = 0, P = 1 };

/** Entropy coding backends. */
enum class EntropyMode : uint8_t {
    Vlc = 0,    ///< Exp-Golomb run/level coding (CAVLC analogue)
    Arith = 1,  ///< adaptive binary range coder (CABAC analogue)
};

/** Clamp an int to the 8-bit sample range. */
inline uint8_t
clampPixel(int v)
{
    return static_cast<uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
}

/** Generic clamp. */
inline int
clampInt(int v, int lo, int hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

/** Median of three, used for motion vector prediction. */
inline int
median3(int a, int b, int c)
{
    if (a > b)
        std::swap(a, b);
    if (b > c)
        b = c;
    return a > b ? a : b;
}

/** Compressed stream byte buffer. */
using ByteBuffer = std::vector<uint8_t>;

} // namespace vbench::codec
