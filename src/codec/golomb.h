#pragma once

/**
 * @file
 * Exp-Golomb size helpers shared by the motion-cost model and the
 * bitstream writers. The exponent is a bit-scan (std::bit_width), not
 * the historical O(magnitude) shift loop.
 */

#include <bit>
#include <cstdint>

namespace vbench::codec {

/** Exponent of ue(v): floor(log2(v + 1)). */
inline uint32_t
ueExponent(uint32_t v)
{
    return static_cast<uint32_t>(
        std::bit_width(static_cast<uint64_t>(v) + 1) - 1);
}

/** Bits of ue(v): 2 * exponent + 1. */
inline uint32_t
ueBits(uint32_t v)
{
    return 2 * ueExponent(v) + 1;
}

/** Bits of se(v): ue of the magnitude plus a sign bit when nonzero. */
inline uint32_t
seBits(int32_t v)
{
    // Magnitude via unsigned negation so INT32_MIN is well-defined.
    const uint32_t mag = v < 0
        ? 0u - static_cast<uint32_t>(v)
        : static_cast<uint32_t>(v);
    return ueBits(mag) + (mag != 0 ? 1 : 0);
}

} // namespace vbench::codec
