#include "codec/me.h"

#include <algorithm>
#include <cmath>

#include "codec/golomb.h"
#include "codec/interp.h"
#include "kernels/kernel_ops.h"

namespace vbench::codec {

namespace {

/** Search state shared by the strategies. */
struct SearchState {
    const MeContext &ctx;
    int min_mx, max_mx, min_my, max_my;  ///< full-pel MV bounds
    const uint8_t *src_ptr;
    int src_stride;
    MotionVector best;      ///< half-pel
    uint32_t best_cost = UINT32_MAX;
    uint32_t best_sad = 0;
    uint32_t candidates = 0;
    uint64_t decisions = 0; ///< improvement bits for the branch model
    int n_decisions = 0;

    explicit
    SearchState(const MeContext &c)
        : ctx(c),
          src_ptr(c.src->row(c.block_y) + c.block_x),
          src_stride(c.src->width())
    {
        // Keep every read (including +1 for half-pel) inside the pad.
        const int margin = kRefPad - 2;
        min_mx = -(c.block_x + margin);
        max_mx = c.ref->width() + margin - c.block_w - c.block_x;
        min_my = -(c.block_y + margin);
        max_my = c.ref->height() + margin - c.block_h - c.block_y;
    }

    /** Cost of a full-pel candidate; updates best. */
    void
    tryFullPel(int mx, int my)
    {
        mx = clampInt(mx, min_mx, max_mx);
        my = clampInt(my, min_my, max_my);
        const MotionVector mv{static_cast<int16_t>(mx * 2),
                              static_cast<int16_t>(my * 2)};
        if (candidates > 0 && mv == best)
            return;
        const uint8_t *ref_ptr =
            ctx.ref->ptr(ctx.block_x + mx, ctx.block_y + my);
        const uint32_t sad = sadBlock(src_ptr, src_stride, ref_ptr,
                                      ctx.ref->stride(), ctx.block_w,
                                      ctx.block_h);
        finish(mv, sad);
    }

    /** Cost of a half-pel candidate (interpolating); updates best. */
    void
    tryHalfPel(MotionVector mv)
    {
        mv.x = static_cast<int16_t>(
            clampInt(mv.x, min_mx * 2, max_mx * 2));
        mv.y = static_cast<int16_t>(
            clampInt(mv.y, min_my * 2, max_my * 2));
        if (mv == best)
            return;
        uint8_t temp[32 * 32];  // max block any codec searches
        motionCompensate(*ctx.ref, ctx.block_x, ctx.block_y, mv,
                         ctx.block_w, ctx.block_h, temp);
        const uint32_t distortion = ctx.satd_subpel
            ? satdBlock(src_ptr, src_stride, temp, ctx.block_w,
                        ctx.block_w, ctx.block_h)
            : sadBlock(src_ptr, src_stride, temp, ctx.block_w,
                       ctx.block_w, ctx.block_h);
        finish(mv, distortion);
    }

    /**
     * Re-score the current best with SATD so integer and sub-pel
     * candidates compete in the same metric.
     */
    void
    rescoreWithSatd()
    {
        uint8_t temp[32 * 32];
        motionCompensate(*ctx.ref, ctx.block_x, ctx.block_y, best,
                         ctx.block_w, ctx.block_h, temp);
        best_sad = satdBlock(src_ptr, src_stride, temp, ctx.block_w,
                             ctx.block_w, ctx.block_h);
        best_cost = best_sad +
            static_cast<uint32_t>(ctx.lambda * mvBits(best, ctx.pred) +
                                  0.5);
    }

    void
    finish(MotionVector mv, uint32_t sad)
    {
        ++candidates;
        const uint32_t bits = mvBits(mv, ctx.pred);
        const uint32_t cost =
            sad + static_cast<uint32_t>(ctx.lambda * bits + 0.5);
        const bool improved = cost < best_cost;
        if (n_decisions < 64) {
            decisions |= static_cast<uint64_t>(improved) << n_decisions;
            ++n_decisions;
        }
        if (improved) {
            best_cost = cost;
            best_sad = sad;
            best = mv;
        }
    }
};

const int kSmallDiamond[4][2] = {{0, -1}, {-1, 0}, {1, 0}, {0, 1}};
const int kHexagon[6][2] = {
    {-2, 0}, {-1, -2}, {1, -2}, {2, 0}, {1, 2}, {-1, 2},
};

/**
 * Final 3x3 square refinement. Axis-only patterns stall when the best
 * position is diagonally adjacent; the square pass fixes that, as in
 * x264's SQUARE/UMH endgames.
 */
void
squareRefine(SearchState &state, int max_iters)
{
    for (int iter = 0; iter < max_iters; ++iter) {
        const MotionVector center = state.best;
        for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
                if (dx == 0 && dy == 0)
                    continue;
                state.tryFullPel(center.x / 2 + dx, center.y / 2 + dy);
            }
        }
        if (state.best == center)
            break;
    }
}

void
diamondSearch(SearchState &state, int max_iters)
{
    for (int iter = 0; iter < max_iters; ++iter) {
        const MotionVector center = state.best;
        for (const auto &d : kSmallDiamond) {
            state.tryFullPel(center.x / 2 + d[0], center.y / 2 + d[1]);
        }
        if (state.best == center)
            break;
    }
    squareRefine(state, 2);
}

void
hexSearch(SearchState &state, int max_iters)
{
    for (int iter = 0; iter < max_iters; ++iter) {
        const MotionVector center = state.best;
        for (const auto &d : kHexagon) {
            state.tryFullPel(center.x / 2 + d[0], center.y / 2 + d[1]);
        }
        if (state.best == center)
            break;
    }
    squareRefine(state, 2);
}

} // namespace

uint32_t
sadBlock(const uint8_t *a, int a_stride, const uint8_t *b, int b_stride,
         int w, int h)
{
    return kernels::ops().sad(a, a_stride, b, b_stride, w, h);
}

uint32_t
satdBlock(const uint8_t *a, int a_stride, const uint8_t *b, int b_stride,
          int w, int h)
{
    return kernels::ops().satd(a, a_stride, b, b_stride, w, h);
}

uint32_t
mvBits(MotionVector mv, MotionVector pred)
{
    return seBits(mv.x - pred.x) + seBits(mv.y - pred.y);
}

MeResult
motionSearch(const MeContext &ctx)
{
    SearchState state(ctx);

    // Seed candidates: zero MV, the predictor, and (when the caller
    // supplied one) the extra hint. The hint matters at slice heads,
    // where the rate predictor resets to zero but real motion hasn't:
    // without it the pattern search walks from (0,0) every time.
    state.tryFullPel(0, 0);
    state.tryFullPel((ctx.pred.x + 1) / 2, (ctx.pred.y + 1) / 2);
    if (ctx.has_seed)
        state.tryFullPel((ctx.seed.x + 1) / 2, (ctx.seed.y + 1) / 2);

    switch (ctx.kind) {
      case SearchKind::Diamond:
        diamondSearch(state, ctx.range);
        break;
      case SearchKind::Hex:
        hexSearch(state, ctx.range);
        break;
      case SearchKind::Full: {
        const int cx = clampInt((ctx.pred.x + 1) / 2, state.min_mx,
                                state.max_mx);
        const int cy = clampInt((ctx.pred.y + 1) / 2, state.min_my,
                                state.max_my);
        for (int my = -ctx.range; my <= ctx.range; ++my)
            for (int mx = -ctx.range; mx <= ctx.range; ++mx)
                state.tryFullPel(cx + mx, cy + my);
        break;
      }
    }

    uint32_t subpel_evals = 0;
    if (ctx.subpel) {
        if (ctx.satd_subpel)
            state.rescoreWithSatd();
        for (int iter = 0; iter < ctx.subpel_iters; ++iter) {
            const MotionVector center = state.best;
            for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx) {
                    if (dx == 0 && dy == 0)
                        continue;
                    state.tryHalfPel(
                        MotionVector{static_cast<int16_t>(center.x + dx),
                                     static_cast<int16_t>(center.y + dy)});
                    ++subpel_evals;
                }
            }
            if (state.best == center)
                break;
        }
    }

    if (ctx.probe) {
        const uint64_t area = static_cast<uint64_t>(ctx.block_w) *
            ctx.block_h;
        const uint64_t sad_units =
            std::max<uint64_t>(1, state.candidates * area / 256);
        ctx.probe->record(
            uarch::KernelId::Sad, sad_units, state.decisions,
            state.n_decisions,
            {uarch::MemRegion{state.src_ptr,
                              static_cast<uint32_t>(ctx.block_w),
                              static_cast<uint32_t>(ctx.block_h),
                              static_cast<uint32_t>(state.src_stride),
                              false},
             uarch::MemRegion{
                 ctx.ref->ptr(ctx.block_x - ctx.range,
                              ctx.block_y - ctx.range / 2),
                 static_cast<uint32_t>(ctx.block_w + 2 * ctx.range),
                 static_cast<uint32_t>(ctx.block_h + ctx.range),
                 static_cast<uint32_t>(ctx.ref->stride()), false}});
        ctx.probe->record(uarch::KernelId::MotionSearchCtl,
                          state.candidates, state.decisions,
                          state.n_decisions);
        if (subpel_evals > 0) {
            ctx.probe->record(uarch::KernelId::SubpelInterp,
                              std::max<uint64_t>(1,
                                                 subpel_evals * area / 256));
        }
    }

    MeResult result;
    result.mv = state.best;
    result.cost = state.best_cost;
    result.sad = state.best_sad;
    result.candidates = state.candidates;
    return result;
}

} // namespace vbench::codec
