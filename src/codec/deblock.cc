#include "codec/deblock.h"

#include <algorithm>
#include <cstdlib>

#include "kernels/kernel_ops.h"

namespace vbench::codec {

namespace {

/** H.264 alpha threshold table indexed by QP. */
const uint8_t kAlpha[52] = {
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
    4, 4, 5, 6, 7, 8, 9, 10, 12, 13, 15, 17, 20, 22, 25, 28,
    32, 36, 40, 45, 50, 56, 63, 71, 80, 90, 101, 113, 127, 144, 162, 182,
    203, 226, 255, 255,
};

/** H.264 beta threshold table indexed by QP. */
const uint8_t kBeta[52] = {
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
    2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 6, 6, 7, 7, 8, 8,
    9, 9, 10, 10, 11, 11, 12, 12, 13, 13, 14, 14, 15, 15, 16, 16,
    17, 17, 18, 18,
};

/**
 * Boundary strength between the macroblocks containing the two sides
 * of an edge: 2 across intra, 1 if residual was coded or motion
 * differs by a pixel or more, 0 (no filtering) otherwise.
 */
int
boundaryStrength(const MbInfo &p, const MbInfo &q)
{
    if (p.mode == MbMode::Intra || q.mode == MbMode::Intra)
        return 2;
    if (p.coded || q.coded)
        return 1;
    if (p.ref != q.ref || std::abs(p.mv.x - q.mv.x) >= 2 ||
        std::abs(p.mv.y - q.mv.y) >= 2) {
        return 1;
    }
    return 0;
}

/** Clip limit: grows with QP and strength. */
inline int
clipLimit(int qp, int bs)
{
    return 1 + (qp >> 3) + bs;
}

/**
 * Filter one 1-sample-wide edge segment. p1/p0 sit before the edge,
 * q0/q1 after, `step` apart in memory.
 */
inline bool
filterSample(uint8_t *q0_ptr, int step, int qp, int bs)
{
    const int p1 = q0_ptr[-2 * step];
    const int p0 = q0_ptr[-step];
    const int q0 = q0_ptr[0];
    const int q1 = q0_ptr[step];
    if (std::abs(p0 - q0) >= kAlpha[qp] || std::abs(p1 - p0) >= kBeta[qp] ||
        std::abs(q1 - q0) >= kBeta[qp]) {
        return false;
    }
    const int tc = clipLimit(qp, bs);
    int delta = ((q0 - p0) * 4 + (p1 - q1) + 4) >> 3;
    delta = clampInt(delta, -tc, tc);
    q0_ptr[-step] = clampPixel(p0 + delta);
    q0_ptr[0] = clampPixel(q0 - delta);
    return true;
}

/**
 * Deblock one plane. `shift` converts sample coordinates to luma
 * macroblock coordinates (4 for luma, 3 for chroma).
 */
void
deblockPlane(video::Plane &plane, const MbGrid &grid, int shift,
             uint64_t &edges, uint64_t &decisions, int &n_decisions)
{
    const int w = plane.width();
    const int h = plane.height();

    // Vertical edges (filter across columns).
    for (int x = 4; x < w; x += 4) {
        const int mbx_q = x >> shift;
        const int mbx_p = (x - 1) >> shift;
        for (int y = 0; y < h; ++y) {
            const int mby = y >> shift;
            const MbInfo &p = grid.at(mbx_p, mby);
            const MbInfo &q = grid.at(mbx_q, mby);
            const int bs = boundaryStrength(p, q);
            if (bs == 0)
                continue;
            const int qp = (p.qp + q.qp + 1) / 2;
            const bool filtered = filterSample(&plane.at(x, y), 1, qp, bs);
            ++edges;
            if (n_decisions < 64) {
                decisions |= static_cast<uint64_t>(filtered) << n_decisions;
                ++n_decisions;
            }
        }
    }
    // Horizontal edges (filter across rows). bs and qp are constant
    // within a macroblock-wide span of the edge, so each span is one
    // vectorizable kernel call.
    const int stride = plane.width();
    const kernels::KernelOps &k = kernels::ops();
    for (int y = 4; y < h; y += 4) {
        const int mby_q = y >> shift;
        const int mby_p = (y - 1) >> shift;
        for (int x = 0; x < w;) {
            const int mbx = x >> shift;
            const int seg_end = std::min(w, (mbx + 1) << shift);
            const MbInfo &p = grid.at(mbx, mby_p);
            const MbInfo &q = grid.at(mbx, mby_q);
            const int bs = boundaryStrength(p, q);
            if (bs != 0) {
                const int qp = (p.qp + q.qp + 1) / 2;
                k.deblockEdgeH(&plane.at(x, y), stride, seg_end - x,
                               kAlpha[qp], kBeta[qp], clipLimit(qp, bs));
                edges += static_cast<uint64_t>(seg_end - x);
            }
            x = seg_end;
        }
    }
}

} // namespace

void
deblockFrame(video::Frame &recon, const MbGrid &grid,
             uarch::UarchProbe *probe)
{
    uint64_t edges = 0;
    uint64_t decisions = 0;
    int n_decisions = 0;
    deblockPlane(recon.y(), grid, 4, edges, decisions, n_decisions);
    deblockPlane(recon.u(), grid, 3, edges, decisions, n_decisions);
    deblockPlane(recon.v(), grid, 3, edges, decisions, n_decisions);
    if (probe && edges > 0) {
        probe->record(uarch::KernelId::Deblock,
                      (edges + 15) / 16, decisions, n_decisions,
                      {uarch::MemRegion{recon.y().data(),
                                        static_cast<uint32_t>(
                                            recon.y().size()),
                                        1, 0, true}});
    }
}

} // namespace vbench::codec
