#pragma once

/**
 * @file
 * VBC decoder. Bit-exact inverse of the encoder's reconstruction path.
 */

#include <optional>

#include "codec/types.h"
#include "obs/trace.h"
#include "uarch/probe.h"
#include "video/video.h"

namespace vbench::codec {

/** Decoder configuration. */
struct DecoderConfig {
    uarch::UarchProbe *probe = nullptr;
    /// Stage tracer; null (the default) costs one branch per frame.
    obs::Tracer *tracer = nullptr;
};

/**
 * Decode a VBC stream.
 *
 * @param data compressed stream bytes.
 * @param size stream length.
 * @param config optional instrumentation.
 * @return the decoded clip, or nullopt on malformed input.
 */
std::optional<video::Video> decode(const uint8_t *data, size_t size,
                                   const DecoderConfig &config = {});

/** Convenience overload. */
inline std::optional<video::Video>
decode(const ByteBuffer &stream, const DecoderConfig &config = {})
{
    return decode(stream.data(), stream.size(), config);
}

} // namespace vbench::codec
