#include "codec/encoder.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>

#include "codec/bitstream.h"
#include "codec/deblock.h"
#include "codec/interp.h"
#include "codec/intra.h"
#include "codec/mbinfo.h"
#include "codec/me.h"
#include "codec/recon.h"
#include "codec/refplane.h"
#include "codec/residual.h"
#include "codec/syntax.h"
#include "codec/transform.h"
#include "core/runtime_config.h"
#include "kernels/kernel_ops.h"
#include "obs/clock.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "sched/frame_threads.h"
#include "sched/wavefront.h"

namespace vbench::codec {

namespace {

using uarch::KernelId;
using uarch::MemRegion;
using video::Frame;
using video::Plane;
using video::Video;

/** Pad a frame to macroblock-aligned dimensions by edge replication. */
Frame
padFrame(const Frame &src, int padded_w, int padded_h,
         uarch::UarchProbe *probe)
{
    Frame out(padded_w, padded_h);
    video::padPlaneInto(src.y(), out.y());
    video::padPlaneInto(src.u(), out.u());
    video::padPlaneInto(src.v(), out.v());
    if (probe) {
        probe->record(KernelId::FrameCopy, out.pixelCount() / 64, 0, 0,
                      {MemRegion{src.y().data(),
                                 static_cast<uint32_t>(src.y().size()), 1,
                                 0, false}});
    }
    return out;
}

/**
 * Cheap scene-change detector: subsampled mean absolute luma
 * difference between consecutive source frames. Runs on the source, so
 * both two-pass passes and any instrumented re-run make the identical
 * decision.
 */
bool
isSceneCut(const Frame &current, const Frame &previous)
{
    const Plane &a = current.y();
    const Plane &b = previous.y();
    int64_t sum = 0;
    int64_t count = 0;
    for (int y = 0; y < a.height(); y += 4) {
        const uint8_t *ra = a.row(y);
        const uint8_t *rb = b.row(y);
        for (int x = 0; x < a.width(); x += 4) {
            sum += std::abs(ra[x] - rb[x]);
            ++count;
        }
    }
    // A hard cut replaces essentially every pixel; gradual motion
    // rarely exceeds a mean difference of ~20.
    return count > 0 && sum > 28 * count;
}

/** Fixed-capacity candidate description for one macroblock mode. */
struct ModeCandidate {
    MbMode mode = MbMode::Intra;
    MotionVector mv[4];     ///< partition MVs (1 used for Inter16)
    int ref = 0;
    IntraMode luma_mode = IntraMode::Dc;
    uint32_t est_cost = UINT32_MAX;  ///< SAD + lambda * bit estimate
    bool is_skip_seed = false;       ///< the predictor/skip candidate
};

/**
 * Everything the serial entropy pass needs about one analyzed
 * macroblock. Rows of these are produced (possibly in parallel, in
 * wavefront order) by analysis and consumed strictly in raster order
 * by the writer, which is how the bitstream stays byte-identical for
 * every thread count.
 */
struct MbRecord {
    ModeCandidate cand;
    IntraMode chroma_mode = IntraMode::Dc;
    MotionVector pred_mv;
    int qp = 0;            ///< final macroblock QP (AQ applied)
    bool skip = false;     ///< collapsed to the one-bit skip flag
    bool coded = false;    ///< any nonzero residual
    int nonzero = 0;       ///< nonzero transform blocks (entropy hash)
    int16_t levels_y[16 * 16];
    int16_t levels_u[4 * 16];
    int16_t levels_v[4 * 16];
};

/**
 * Per-worker scratch arena: everything a row analysis mutates that is
 * not the shared frame state. One per wavefront slot, reused across
 * every macroblock and frame, so the hot loop performs no allocation
 * at any thread count (the RD trial plane used to be allocated per
 * trial).
 */
struct WorkerCtx {
    obs::StageAccum accum;          ///< per-worker stage nanoseconds
    obs::StageAccum *acc = nullptr; ///< &accum when tracing, else null
    Plane rd_scratch;               ///< 16x16 RD trial reconstruction
    uint8_t pred_y[kMbSize * kMbSize];
    uint8_t pred_u[8 * 8];
    uint8_t pred_v[8 * 8];

    WorkerCtx() : rd_scratch(kMbSize, kMbSize) {}
};

/** Variance of a 16x16 luma block (adaptive quantization energy). */
double
mbVariance(const Plane &plane, int x, int y)
{
    int64_t sum = 0;
    int64_t sum2 = 0;
    for (int r = 0; r < kMbSize; ++r) {
        const uint8_t *row = plane.row(y + r) + x;
        for (int c = 0; c < kMbSize; ++c) {
            sum += row[c];
            sum2 += row[c] * row[c];
        }
    }
    const double n = kMbSize * kMbSize;
    const double mean = sum / n;
    return std::max(0.0, sum2 / n - mean * mean);
}

/**
 * The per-sequence encoder state machine. A fresh instance runs each
 * pass, so two-pass encoding is two Sequencer runs.
 *
 * Frame encoding is two phases:
 *
 *  1. Analysis — mode decisions, motion search, transform/quant, and
 *     reconstruction, per macroblock, writing MbRecords. Rows run on a
 *     sched::WavefrontRunner when frame_threads > 1: row r may be
 *     `lag` = 2 macroblocks behind row r-1, which covers every
 *     dependency the analysis consumes (intra prediction reads the
 *     reconstructed top row and left column; the MV predictor reads
 *     the left, top, and top-right MbInfo).
 *  2. An entropy pass over the records in raster order. All
 *     order-dependent coder state (arithmetic contexts, QP deltas,
 *     the skip-MB deblock QP) lives only here, so the emitted stream
 *     is byte-identical at 1 and N threads. With slice_count > 1 the
 *     frame is cut into horizontal bands whose coder state resets at
 *     the band head, and the pass runs one band per worker — the
 *     slice-parallel mode that removes the serial entropy tail.
 */
class Sequencer
{
  public:
    Sequencer(const EncoderConfig &config, const ToolPreset &tools,
              const Video &source, RateController &rate)
        : config_(config), tools_(tools), source_(source), rate_(rate),
          probe_(config.probe),
          tracer_(config.tracer ? config.tracer : obs::globalTracer()),
          acc_(tracer_ ? &accum_ : nullptr),
          cancel_(config.cancel),
          padded_w_((source.width() + kMbSize - 1) & ~(kMbSize - 1)),
          padded_h_((source.height() + kMbSize - 1) & ~(kMbSize - 1)),
          mb_cols_(padded_w_ / kMbSize), mb_rows_(padded_h_ / kMbSize)
    {
        int threads = config.frame_threads > 0
            ? std::min(config.frame_threads, sched::kMaxFrameThreads)
            : sched::decideFrameThreads(0).threads;
        // A uarch probe assumes serial, single-writer recording; the
        // wavefront would interleave its kernel stream nondeterministically.
        if (probe_)
            threads = 1;
        frame_threads_ = std::clamp(threads, 1, std::max(1, mb_rows_));
        wctx_ = std::vector<WorkerCtx>(
            static_cast<size_t>(frame_threads_));
        for (WorkerCtx &wc : wctx_)
            wc.acc = tracer_ ? &wc.accum : nullptr;
        if (frame_threads_ > 1)
            runner_ = std::make_unique<sched::WavefrontRunner>(
                frame_threads_);
        if (tracer_)
            row_start_ns_.resize(static_cast<size_t>(mb_rows_), 0);

        int slices = config.slice_count > 0
            ? config.slice_count
            : core::freshRuntimeConfig().slices;
        // The fused probe path interleaves analysis with a single
        // serial entropy writer; slices would change both the bytes
        // and the kernel-record order the uarch models expect.
        if (probe_)
            slices = 1;
        slice_count_ = std::clamp(
            slices, 1,
            std::min(static_cast<int>(kMaxSlices), std::max(1, mb_rows_)));
        slice_row_start_.resize(static_cast<size_t>(slice_count_) + 1);
        for (int s = 0; s <= slice_count_; ++s)
            slice_row_start_[static_cast<size_t>(s)] =
                sliceRowStart(mb_rows_, slice_count_, s);
        slice_top_row_.resize(static_cast<size_t>(mb_rows_), 0);
        for (int s = 0; s < slice_count_; ++s)
            for (int r = slice_row_start_[static_cast<size_t>(s)];
                 r < slice_row_start_[static_cast<size_t>(s) + 1]; ++r)
                slice_top_row_[static_cast<size_t>(r)] =
                    slice_row_start_[static_cast<size_t>(s)];
    }

    EncodeResult
    run()
    {
        EncodeResult result;
        StreamHeader header;
        header.width = source_.width();
        header.height = source_.height();
        toRational(source_.fps(), header.fps_num, header.fps_den);
        header.frame_count = static_cast<uint32_t>(source_.frameCount());
        header.entropy = tools_.entropy;
        header.deblock = tools_.deblock;
        header.adaptive_quant = tools_.adaptive_quant;
        header.num_refs = static_cast<uint32_t>(tools_.refs);
        header.slice_count = static_cast<uint32_t>(slice_count_);
        writeStreamHeader(result.stream, header);

        for (int i = 0; i < source_.frameCount(); ++i) {
            if (cancelledNow())
                break;
            const uint64_t frame_start = tracer_ ? obs::nowNs() : 0;
            if (acc_)
                accum_.reset();
            FrameType type = frameTypeFor(i);
            if (type == FrameType::P && tools_.scenecut &&
                isSceneCut(source_.frame(i), source_.frame(i - 1))) {
                type = FrameType::I;
            }
            int qp;
            {
                obs::ScopedStage rc(acc_, obs::Stage::RateControl);
                qp = rate_.frameQp(type, i);
            }
            FrameStats stats;
            const ByteBuffer payload =
                encodeFrame(source_.frame(i), i, type, qp, stats);
            if (cancelled_)
                break;  // truncated payload, result abandoned upstream
            appendU32(result.stream,
                      static_cast<uint32_t>(payload.size() + 1));
            result.stream.push_back(packFrameByte(type, qp));
            result.stream.insert(result.stream.end(), payload.begin(),
                                 payload.end());
            stats.type = type;
            stats.qp = qp;
            stats.bytes = payload.size() + 5;
            result.frames.push_back(stats);
            {
                obs::ScopedStage rc(acc_, obs::Stage::RateControl);
                rate_.frameDone(type, (payload.size() + 5) * 8.0);
            }
            if (tracer_)
                tracer_->addFrame(config_.track, i, frame_start,
                                  obs::nowNs(), accum_);
        }
        result.rc_state = rate_.snapshot();
        return result;
    }

  private:
    static void
    toRational(double fps, uint32_t &num, uint32_t &den)
    {
        if (std::abs(fps - std::round(fps)) < 1e-9) {
            num = static_cast<uint32_t>(std::lround(fps));
            den = 1;
        } else {
            num = static_cast<uint32_t>(std::lround(fps * 1000));
            den = 1000;
        }
    }

    bool
    cancelledNow() const
    {
        return cancel_ && cancel_->load(std::memory_order_relaxed);
    }

    FrameType
    frameTypeFor(int index) const
    {
        // Segment boundaries restart the GOP phase, so a segment
        // encode's frame k decides its type exactly like the
        // whole-file encode's frame k (split-and-stitch contract).
        const int phase = config_.segment_frames > 0
            ? index % config_.segment_frames
            : index;
        if (phase == 0)
            return FrameType::I;
        if (config_.gop > 0 && phase % config_.gop == 0)
            return FrameType::I;
        return FrameType::P;
    }

    /** Encode one frame and return its entropy payload. */
    ByteBuffer
    encodeFrame(const Frame &original, int frame_index, FrameType type,
                int frame_qp, FrameStats &stats)
    {
        Frame src;
        ByteBuffer payload;
        std::unique_ptr<SyntaxWriter> writer;
        {
            obs::ScopedStage setup(acc_, obs::Stage::FrameSetup);
            src = padFrame(original, padded_w_, padded_h_, probe_);
            if (type == FrameType::I)
                refs_.clear();

            recon_ = Frame(padded_w_, padded_h_);
            grid_ = MbGrid(mb_cols_, mb_rows_);
            records_.resize(static_cast<size_t>(mb_cols_) * mb_rows_);

            // Adaptive-quant pre-pass: per-MB activity vs average.
            if (tools_.adaptive_quant)
                computeAqOffsets(src, frame_qp);

            if (tools_.entropy == EntropyMode::Arith)
                writer = std::make_unique<ArithSyntaxWriter>(payload);
            else
                writer = std::make_unique<VlcSyntaxWriter>(payload);
        }

        if (probe_) {
            // Fused serial path (a probe forces frame_threads = 1 and
            // slice_count = 1): entropy emission interleaves with
            // every macroblock, so the probe sees the exact
            // kernel-record ordering the uarch models (I-cache
            // pressure in particular) expect. The stream is identical
            // to the two-phase path — analysis never reads writer
            // state.
            const KernelId entropy_kernel =
                tools_.entropy == EntropyMode::Arith
                    ? KernelId::EntropyArith
                    : KernelId::EntropyVlc;
            double bits_done = 0;
            int last_qp = frame_qp;
            for (int mby = 0; mby < mb_rows_; ++mby) {
                for (int mbx = 0; mbx < mb_cols_; ++mbx) {
                    analyzeMacroblock(src, type, frame_qp, mbx, mby,
                                      wctx_[0]);
                    const MbRecord &rec =
                        records_[static_cast<size_t>(mby) * mb_cols_ +
                                 mbx];
                    {
                        obs::ScopedStage ec(wctx_[0].acc,
                                            obs::Stage::EntropyCoding);
                        writeMacroblock(rec, type, mbx, mby, *writer,
                                        stats, last_qp);
                    }
                    // Mix real coefficient data into the entropy
                    // decision hash (probe-only state; the two-phase
                    // path never reads it). Skip MBs contribute no
                    // coefficients, exactly as before.
                    if (!rec.skip)
                        entropy_hash_ =
                            entropy_hash_ * 0x9E3779B97F4A7C15ull +
                            static_cast<uint64_t>(rec.nonzero);
                    const double bits = writer->bitsWritten();
                    probe_->record(
                        entropy_kernel,
                        std::max<uint64_t>(
                            1, static_cast<uint64_t>(bits - bits_done)),
                        entropy_hash_, 64);
                    bits_done = bits;
                }
            }
            if (acc_) {
                accum_.addFrom(wctx_[0].accum);
                wctx_[0].accum.reset();
            }
            {
                obs::ScopedStage ec(acc_, obs::Stage::EntropyCoding);
                writer->finish();
            }
            probe_->record(KernelId::RateControl,
                           static_cast<uint64_t>(mb_cols_) * mb_rows_);
            finishFrame();
            return payload;
        }

        // ---- Phase 1: analysis, wavefront-parallel across rows. ----
        const auto cell = [&](int mby, int mbx, int slot) {
            if (tracer_ && mbx == 0)
                row_start_ns_[static_cast<size_t>(mby)] = obs::nowNs();
            analyzeMacroblock(src, type, frame_qp, mbx, mby,
                              wctx_[static_cast<size_t>(slot)]);
            if (tracer_ && mbx == mb_cols_ - 1)
                tracer_->addSpan(config_.track, obs::Stage::WavefrontRow,
                                 frame_index,
                                 row_start_ns_[static_cast<size_t>(mby)],
                                 obs::nowNs());
        };
        bool complete = true;
        if (frame_threads_ > 1) {
            // Left/top/top-right dependencies: row r may trail row r-1
            // by 2 macroblocks.
            complete = runner_->run(
                mb_rows_, mb_cols_, /*lag=*/2,
                [&](int row, int col, int slot) { cell(row, col, slot); },
                cancel_);
        } else {
            for (int mby = 0; mby < mb_rows_ && complete; ++mby) {
                if (cancelledNow()) {
                    complete = false;
                    break;
                }
                for (int mbx = 0; mbx < mb_cols_; ++mbx)
                    cell(mby, mbx, 0);
            }
        }
        if (acc_) {
            for (WorkerCtx &wc : wctx_) {
                accum_.addFrom(wc.accum);
                wc.accum.reset();
            }
        }
        if (!complete) {
            cancelled_ = true;
            return payload;
        }

        // ---- Phase 2: entropy pass. Single-slice emits straight into
        // the frame payload in raster order (byte-identical to the
        // pre-slice format); multi-slice emits each band into its own
        // buffer — entropy contexts and the QP-delta chain restart at
        // every slice head, so bands are independent and run on the
        // wavefront worker set. (A probe never reaches here; it takes
        // the fused path above.) ----
        if (slice_count_ == 1) {
            // Scope ends before finishFrame: deblock and reference
            // bookkeeping must not count toward the entropy tail the
            // slice bench compares against.
            {
                obs::ScopedStage ec(acc_, obs::Stage::EntropyCoding);
                int last_qp = frame_qp;
                for (int mby = 0; mby < mb_rows_; ++mby) {
                    for (int mbx = 0; mbx < mb_cols_; ++mbx) {
                        writeMacroblock(
                            records_[static_cast<size_t>(mby) *
                                         mb_cols_ +
                                     mbx],
                            type, mbx, mby, *writer, stats, last_qp);
                    }
                }
                writer->finish();
            }
            finishFrame();
            return payload;
        }

        writer.reset();  // the frame payload is built from slice buffers
        std::vector<ByteBuffer> slice_bufs(
            static_cast<size_t>(slice_count_));
        std::vector<FrameStats> slice_stats(
            static_cast<size_t>(slice_count_));
        const auto write_slice = [&](int s, int slot) {
            const uint64_t start_ns = tracer_ ? obs::nowNs() : 0;
            WorkerCtx &wc = wctx_[static_cast<size_t>(slot)];
            ByteBuffer &buf = slice_bufs[static_cast<size_t>(s)];
            std::unique_ptr<SyntaxWriter> slice_writer;
            if (tools_.entropy == EntropyMode::Arith)
                slice_writer = std::make_unique<ArithSyntaxWriter>(buf);
            else
                slice_writer = std::make_unique<VlcSyntaxWriter>(buf);
            int last_qp = frame_qp;
            {
                obs::ScopedStage ec(wc.acc, obs::Stage::EntropyCoding);
                for (int mby = slice_row_start_[static_cast<size_t>(s)];
                     mby < slice_row_start_[static_cast<size_t>(s) + 1];
                     ++mby) {
                    for (int mbx = 0; mbx < mb_cols_; ++mbx) {
                        writeMacroblock(
                            records_[static_cast<size_t>(mby) *
                                         mb_cols_ +
                                     mbx],
                            type, mbx, mby, *slice_writer,
                            slice_stats[static_cast<size_t>(s)],
                            last_qp);
                    }
                }
                slice_writer->finish();
            }
            if (tracer_)
                tracer_->addSpan(config_.track, obs::Stage::EntropySlice,
                                 frame_index, start_ns, obs::nowNs());
        };
        if (frame_threads_ > 1) {
            // One "row" per slice, no cross-row dependencies.
            complete = runner_->run(
                slice_count_, 1, /*lag=*/0,
                [&](int row, int, int slot) { write_slice(row, slot); },
                cancel_);
        } else {
            for (int s = 0; s < slice_count_ && complete; ++s) {
                if (cancelledNow()) {
                    complete = false;
                    break;
                }
                write_slice(s, 0);
            }
        }
        if (acc_) {
            for (WorkerCtx &wc : wctx_) {
                accum_.addFrom(wc.accum);
                wc.accum.reset();
            }
        }
        if (!complete) {
            cancelled_ = true;
            return payload;
        }
        for (const FrameStats &ss : slice_stats) {
            stats.intra_mbs += ss.intra_mbs;
            stats.skip_mbs += ss.skip_mbs;
        }
        for (const ByteBuffer &buf : slice_bufs) {
            appendU32(payload, static_cast<uint32_t>(buf.size()));
            payload.insert(payload.end(), buf.begin(), buf.end());
        }

        finishFrame();
        return payload;
    }

    /** Post-entropy frame tail: deblock and reference-list update. */
    void
    finishFrame()
    {
        if (tools_.deblock) {
            obs::ScopedStage db(acc_, obs::Stage::Deblock);
            deblockFrame(recon_, grid_, probe_);
        }

        obs::ScopedStage setup(acc_, obs::Stage::FrameSetup);
        refs_.push_front(RefFrame{RefPlane(recon_.y()),
                                  RefPlane(recon_.u()),
                                  RefPlane(recon_.v())});
        while (static_cast<int>(refs_.size()) > std::max(1, tools_.refs))
            refs_.pop_back();
    }

    void
    computeAqOffsets(const Frame &src, int frame_qp)
    {
        aq_offsets_.assign(static_cast<size_t>(mb_cols_) * mb_rows_, 0);
        std::vector<double> log_var(aq_offsets_.size());
        double avg = 0;
        for (int mby = 0; mby < mb_rows_; ++mby) {
            for (int mbx = 0; mbx < mb_cols_; ++mbx) {
                const double v =
                    mbVariance(src.y(), mbx * kMbSize, mby * kMbSize);
                log_var[mby * mb_cols_ + mbx] = std::log2(v + 1.0);
                avg += log_var[mby * mb_cols_ + mbx];
            }
        }
        avg /= log_var.size();
        for (size_t i = 0; i < log_var.size(); ++i) {
            const double strength = 0.8;
            int off = static_cast<int>(
                std::lround(strength * (log_var[i] - avg)));
            off = clampInt(off, -4, 4);
            // Keep the offset inside the QP range.
            off = clampInt(off, kMinQp - frame_qp, kMaxQp - frame_qp);
            aq_offsets_[i] = static_cast<int8_t>(off);
        }
    }

    // ----- Macroblock analysis (wavefront-parallel) ------------------

    void
    analyzeMacroblock(const Frame &src, FrameType type, int frame_qp,
                      int mbx, int mby, WorkerCtx &wc)
    {
        const int x = mbx * kMbSize;
        const int y = mby * kMbSize;
        int qp_mb = frame_qp;
        if (tools_.adaptive_quant)
            qp_mb = clampInt(frame_qp + aq_offsets_[mby * mb_cols_ + mbx],
                             kMinQp, kMaxQp);
        const double lambda = sadLambda(qp_mb);

        if (probe_)
            probe_->record(KernelId::Dispatch, 1);

        // Spatial prediction stops at the slice boundary: the MV
        // predictor ignores neighbors above the slice head and intra
        // treats the slice-top row like the frame edge, so every slice
        // decodes (and its bits parse) with no cross-slice state.
        const int slice_top = slice_top_row_[static_cast<size_t>(mby)];
        const MotionVector pred_mv = mvPredictor(grid_, mbx, mby,
                                                 slice_top);

        // At a slice head the rate predictor must act as if the frame
        // started, but the motion didn't: without help the pattern
        // search walks from (0,0) on every boundary MB. Peek across
        // the boundary for a search seed only — it never enters the
        // bitstream, so decode semantics are untouched, and interior
        // rows (all rows when slice_count == 1) get no seed, keeping
        // the single-slice encode bit-identical.
        MotionVector search_seed;
        bool has_search_seed = false;
        if (slice_top > 0 && mby == slice_top) {
            search_seed = mvPredictor(grid_, mbx, mby, 0);
            has_search_seed = search_seed.x != pred_mv.x ||
                search_seed.y != pred_mv.y;
        }

        // The MV any skip-flavored candidate may use: the predictor,
        // clamped into the legal compensation range for this block
        // (identity in the overwhelmingly common case).
        const MotionVector skip_mv = clampMvForBlock(
            pred_mv, x, y, kMbSize, kMbSize, padded_w_, padded_h_);

        // --- Early skip: static content drops out immediately. ---
        if (type == FrameType::P && !refs_.empty()) {
            bool early_skip;
            {
                obs::ScopedStage me_stage(wc.acc,
                                          obs::Stage::MotionEstimation);
                uint8_t skip_pred[kMbSize * kMbSize];
                motionCompensate(refs_[0].y, x, y, skip_mv, kMbSize,
                                 kMbSize, skip_pred);
                const uint32_t skip_sad =
                    sadBlock(src.y().row(y) + x, padded_w_, skip_pred,
                             kMbSize, kMbSize, kMbSize);
                const uint32_t threshold = static_cast<uint32_t>(
                    (160 + 24 * qp_mb) * tools_.early_skip_scale);
                early_skip = skip_sad < threshold;
            }
            if (early_skip) {
                ModeCandidate cand;
                cand.mode = MbMode::Inter16;
                cand.mv[0] = skip_mv;
                cand.ref = 0;
                finalizeMacroblock(src, type, cand, qp_mb, mbx, mby, wc,
                                   pred_mv);
                return;
            }
        }

        // --- Candidate generation. ---
        ModeCandidate candidates[4];
        int n_candidates = 0;

        if (type == FrameType::P && !refs_.empty()) {
            obs::ScopedStage me_stage(wc.acc,
                                      obs::Stage::MotionEstimation);
            // The skip/predictor candidate always competes: without it
            // a searched MV with marginal residual wins on SAD but
            // loses on rate, bloating high-effort encodes.
            {
                uint8_t skip_pred[kMbSize * kMbSize];
                motionCompensate(refs_[0].y, x, y, skip_mv, kMbSize,
                                 kMbSize, skip_pred);
                // Same distortion metric as the motion search's final
                // scoring, or the candidates are not comparable.
                const uint32_t sad = tools_.satd_subpel
                    ? satdBlock(src.y().row(y) + x, padded_w_, skip_pred,
                                kMbSize, kMbSize, kMbSize)
                    : sadBlock(src.y().row(y) + x, padded_w_, skip_pred,
                               kMbSize, kMbSize, kMbSize);
                ModeCandidate skip_cand;
                skip_cand.mode = MbMode::Inter16;
                skip_cand.mv[0] = skip_mv;
                skip_cand.ref = 0;
                skip_cand.est_cost =
                    sad + static_cast<uint32_t>(lambda * 1);
                skip_cand.is_skip_seed = true;
                candidates[n_candidates++] = skip_cand;
            }
            // INTER16: search every allowed reference.
            ModeCandidate inter16;
            inter16.mode = MbMode::Inter16;
            for (int r = 0;
                 r < static_cast<int>(refs_.size()) && r < tools_.refs;
                 ++r) {
                MeContext me;
                me.src = &src.y();
                me.ref = &refs_[r].y;
                me.block_x = x;
                me.block_y = y;
                me.pred = pred_mv;
                me.seed = search_seed;
                me.has_seed = has_search_seed;
                me.lambda = lambda;
                me.kind = tools_.search;
                me.range = tools_.range;
                me.subpel = tools_.subpel;
                me.subpel_iters = tools_.subpel_iters;
                me.satd_subpel = tools_.satd_subpel;
                me.probe = probe_;
                const MeResult res = motionSearch(me);
                const uint32_t ref_bits = r == 0 ? 1 : 3;
                const uint32_t cost = res.cost +
                    static_cast<uint32_t>(lambda * ref_bits);
                if (cost < inter16.est_cost) {
                    inter16.est_cost = cost;
                    inter16.mv[0] = res.mv;
                    inter16.ref = r;
                }
            }
            candidates[n_candidates++] = inter16;

            // INTER8: four 8x8 partitions on the winning reference.
            if (tools_.inter8) {
                ModeCandidate inter8;
                inter8.mode = MbMode::Inter8;
                inter8.ref = inter16.ref;
                uint32_t total = 0;
                for (int part = 0; part < 4; ++part) {
                    MeContext me;
                    me.src = &src.y();
                    me.ref = &refs_[inter8.ref].y;
                    me.block_x = x + (part & 1) * 8;
                    me.block_y = y + (part >> 1) * 8;
                    me.block_w = 8;
                    me.block_h = 8;
                    me.pred = pred_mv;
                    me.seed = search_seed;
                    me.has_seed = has_search_seed;
                    me.lambda = lambda;
                    me.kind = tools_.search;
                    me.range = std::max(4, tools_.range / 2);
                    me.subpel = tools_.subpel;
                    me.subpel_iters = tools_.subpel_iters;
                    me.satd_subpel = tools_.satd_subpel;
                    me.probe = probe_;
                    const MeResult res = motionSearch(me);
                    inter8.mv[part] = res.mv;
                    total += res.cost;
                }
                inter8.est_cost =
                    total + static_cast<uint32_t>(lambda * 4);
                candidates[n_candidates++] = inter8;
            }
        }

        // INTRA: evaluate the enabled predictors on the luma block.
        {
            obs::ScopedStage intra_stage(wc.acc,
                                         obs::Stage::IntraDecision);
            ModeCandidate intra;
            intra.mode = MbMode::Intra;
            uint8_t pred_buf[kMbSize * kMbSize];
            uint32_t tried = 0;
            const int top_px = slice_top * kMbSize;
            for (int m = 0; m < tools_.intra_modes; ++m) {
                const IntraMode mode = static_cast<IntraMode>(m);
                if (!intraModeAvailable(mode, x, y, top_px))
                    continue;
                intraPredict(mode, recon_.y(), x, y, kMbSize, pred_buf,
                             top_px);
                ++tried;
                const uint32_t sad = tools_.satd_subpel
                    ? satdBlock(src.y().row(y) + x, padded_w_, pred_buf,
                                kMbSize, kMbSize, kMbSize)
                    : sadBlock(src.y().row(y) + x, padded_w_, pred_buf,
                               kMbSize, kMbSize, kMbSize);
                // Intra residuals cost more bits than inter at equal
                // SAD; bias keeps P frames from going intra-happy.
                const uint32_t cost = sad +
                    static_cast<uint32_t>(lambda * 6) +
                    (type == FrameType::P ? sad / 4 : 0);
                if (cost < intra.est_cost) {
                    intra.est_cost = cost;
                    intra.luma_mode = mode;
                }
            }
            if (probe_ && tried > 0)
                probe_->record(KernelId::IntraPredict, tried);
            candidates[n_candidates++] = intra;
        }

        // --- Selection: heuristic or RD trial on the leaders. ---
        int chosen = 0;
        {
            obs::ScopedStage md_stage(wc.acc, obs::Stage::ModeDecision);
            std::sort(candidates, candidates + n_candidates,
                      [](const ModeCandidate &a, const ModeCandidate &b) {
                          return a.est_cost < b.est_cost;
                      });
            if (tools_.rdo > 0 && n_candidates > 1) {
                // The skip seed always earns a trial: its rate advantage
                // is invisible to the SAD-based pre-sort.
                int trials =
                    std::min(n_candidates, tools_.rdo >= 2 ? 3 : 2);
                for (int i = trials; i < n_candidates; ++i) {
                    if (candidates[i].is_skip_seed) {
                        std::swap(candidates[trials - 1], candidates[i]);
                        break;
                    }
                }
                double best_rd = 1e30;
                uint64_t decisions = 0;
                for (int i = 0; i < trials; ++i) {
                    const double rd = rdCostLuma(
                        src, candidates[i], qp_mb, x, y,
                        candidateOverheadBits(candidates[i], pred_mv,
                                              type),
                        wc);
                    decisions |= static_cast<uint64_t>(rd < best_rd) << i;
                    if (rd < best_rd) {
                        best_rd = rd;
                        chosen = i;
                    }
                }
                if (probe_)
                    probe_->record(KernelId::ModeDecision, trials,
                                   decisions, trials);
            } else if (probe_) {
                probe_->record(KernelId::ModeDecision, n_candidates,
                               chosen == 0 ? 1 : 0, n_candidates);
            }
        }

        finalizeMacroblock(src, type, candidates[chosen], qp_mb, mbx, mby,
                           wc, pred_mv);
    }

    /** Syntax bits a candidate pays before any residual is coded. */
    static uint32_t
    candidateOverheadBits(const ModeCandidate &cand, MotionVector pred_mv,
                          FrameType type)
    {
        if (type == FrameType::P && cand.is_skip_seed)
            return 1;  // likely collapses to the skip flag
        uint32_t bits = type == FrameType::P ? 2 : 0;  // skip + mode
        switch (cand.mode) {
          case MbMode::Skip:
            return 1;
          case MbMode::Inter16:
            bits += mvBits(cand.mv[0], pred_mv) + (cand.ref != 0 ? 3 : 1);
            break;
          case MbMode::Inter8:
            for (int part = 0; part < 4; ++part)
                bits += mvBits(cand.mv[part], pred_mv);
            bits += 1 + (cand.ref != 0 ? 3 : 1);
            break;
          case MbMode::Intra:
            bits += 4;  // luma + chroma mode bits
            break;
        }
        return bits;
    }

    /** Luma-only rate-distortion trial of a candidate. */
    double
    rdCostLuma(const Frame &src, const ModeCandidate &cand, int qp, int x,
               int y, uint32_t overhead_bits, WorkerCtx &wc)
    {
        uint8_t pred[kMbSize * kMbSize];
        buildLumaPrediction(cand, x, y, pred);
        int16_t levels[16 * 16];
        quantizeLumaResidual(src, pred, x, y, qp,
                             cand.mode == MbMode::Intra, levels);

        CountingSyntaxWriter counter;
        for (int b = 0; b < 16; ++b)
            writeResidualBlock(counter, levels + b * 16, true);

        // Distortion of the true reconstruction, into the worker's
        // reusable trial plane (reconstructBlock overwrites every
        // pixel of the 16x16 region).
        Plane &scratch = wc.rd_scratch;
        reconstructBlock(scratch, 0, 0, kMbSize, pred, levels, qp);
        double ssd = 0;
        for (int r = 0; r < kMbSize; ++r) {
            const uint8_t *s = src.y().row(y + r) + x;
            for (int c = 0; c < kMbSize; ++c) {
                const double d = static_cast<double>(s[c]) -
                    scratch.at(c, r);
                ssd += d * d;
            }
        }
        // Slightly inflated lambda keeps high-effort RDO from buying
        // PSNR with bits (it must *compress* better at iso-QP, which
        // is what the effort ladder promises).
        return ssd + 1.8 * rdLambda(qp) *
            (counter.bitsWritten() + overhead_bits);
    }

    void
    buildLumaPrediction(const ModeCandidate &cand, int x, int y,
                        uint8_t *pred)
    {
        switch (cand.mode) {
          case MbMode::Intra:
            intraPredict(cand.luma_mode, recon_.y(), x, y, kMbSize, pred,
                         slice_top_row_[static_cast<size_t>(y / kMbSize)] *
                             kMbSize);
            break;
          case MbMode::Skip:
          case MbMode::Inter16:
            motionCompensate(refs_[cand.ref].y, x, y, cand.mv[0], kMbSize,
                             kMbSize, pred);
            break;
          case MbMode::Inter8:
            for (int part = 0; part < 4; ++part) {
                uint8_t temp[8 * 8];
                motionCompensate(refs_[cand.ref].y, x + (part & 1) * 8,
                                 y + (part >> 1) * 8, cand.mv[part], 8, 8,
                                 temp);
                for (int r = 0; r < 8; ++r)
                    for (int c = 0; c < 8; ++c)
                        pred[((part >> 1) * 8 + r) * kMbSize +
                             (part & 1) * 8 + c] = temp[r * 8 + c];
            }
            break;
        }
    }

    /** Chroma prediction for one plane (8x8). */
    void
    buildChromaPrediction(const ModeCandidate &cand, IntraMode chroma_mode,
                          bool u_plane, int cx, int cy, uint8_t *pred)
    {
        if (cand.mode == MbMode::Intra) {
            const Plane &recon_plane = u_plane ? recon_.u() : recon_.v();
            intraPredict(chroma_mode, recon_plane, cx, cy, 8, pred,
                         slice_top_row_[static_cast<size_t>(cy / 8)] * 8);
            return;
        }
        const RefPlane &ref_plane =
            u_plane ? refs_[cand.ref].u : refs_[cand.ref].v;
        switch (cand.mode) {
          case MbMode::Intra:
            break;  // handled above
          case MbMode::Skip:
          case MbMode::Inter16: {
            const MotionVector cmv{static_cast<int16_t>(cand.mv[0].x >> 1),
                                   static_cast<int16_t>(cand.mv[0].y >> 1)};
            motionCompensate(ref_plane, cx, cy, cmv, 8, 8, pred);
            break;
          }
          case MbMode::Inter8:
            for (int part = 0; part < 4; ++part) {
                uint8_t temp[4 * 4];
                const MotionVector cmv{
                    static_cast<int16_t>(cand.mv[part].x >> 1),
                    static_cast<int16_t>(cand.mv[part].y >> 1)};
                motionCompensate(ref_plane, cx + (part & 1) * 4,
                                 cy + (part >> 1) * 4, cmv, 4, 4, temp);
                for (int r = 0; r < 4; ++r)
                    for (int c = 0; c < 4; ++c)
                        pred[((part >> 1) * 4 + r) * 8 + (part & 1) * 4 +
                             c] = temp[r * 4 + c];
            }
            break;
        }
    }

    /** Transform+quantize a 16x16 luma residual into 16 level blocks. */
    int
    quantizeLumaResidual(const Frame &src, const uint8_t *pred, int x,
                         int y, int qp, bool intra, int16_t *levels)
    {
        int nonzero = 0;
        for (int by = 0; by < 4; ++by) {
            for (int bx = 0; bx < 4; ++bx) {
                int16_t residual[16];
                kernels::ops().diffBlock(
                    src.y().row(y + by * 4) + x + bx * 4,
                    src.y().width(), pred + by * 4 * kMbSize + bx * 4,
                    kMbSize, residual, 4, 4, 4);
                int32_t coefs[16];
                forwardTransform4x4(residual, coefs);
                nonzero += quantize4x4(coefs,
                                       levels + (by * 4 + bx) * 16, qp,
                                       intra);
            }
        }
        if (probe_) {
            probe_->record(KernelId::TransformFwd, 16);
            probe_->record(KernelId::Quant, 16,
                           static_cast<uint64_t>(nonzero != 0), 1);
        }
        return nonzero;
    }

    /** Transform+quantize one 8x8 chroma plane residual (4 blocks). */
    int
    quantizeChromaResidual(const Plane &src_plane, const uint8_t *pred,
                           int cx, int cy, int qp, bool intra,
                           int16_t *levels)
    {
        int nonzero = 0;
        for (int by = 0; by < 2; ++by) {
            for (int bx = 0; bx < 2; ++bx) {
                int16_t residual[16];
                kernels::ops().diffBlock(
                    src_plane.row(cy + by * 4) + cx + bx * 4,
                    src_plane.width(), pred + by * 4 * 8 + bx * 4, 8,
                    residual, 4, 4, 4);
                int32_t coefs[16];
                forwardTransform4x4(residual, coefs);
                nonzero += quantize4x4(coefs,
                                       levels + (by * 2 + bx) * 16, qp,
                                       intra);
            }
        }
        if (probe_) {
            probe_->record(KernelId::TransformFwd, 4);
            probe_->record(KernelId::Quant, 4,
                           static_cast<uint64_t>(nonzero != 0), 1);
        }
        return nonzero;
    }

    /**
     * Final analysis of the chosen candidate: chroma mode, residuals,
     * the skip decision, reconstruction, neighbor-visible MbInfo, and
     * the MbRecord the serial entropy pass will consume.
     */
    void
    finalizeMacroblock(const Frame &src, FrameType type,
                       const ModeCandidate &cand, int qp_mb, int mbx,
                       int mby, WorkerCtx &wc, MotionVector pred_mv)
    {
        const int x = mbx * kMbSize;
        const int y = mby * kMbSize;
        const int cx = mbx * 8;
        const int cy = mby * 8;
        const bool intra = cand.mode == MbMode::Intra;
        MbRecord &rec =
            records_[static_cast<size_t>(mby) * mb_cols_ + mbx];

        // Chroma intra mode: best summed SAD over U and V.
        IntraMode chroma_mode = IntraMode::Dc;
        if (intra) {
            obs::ScopedStage intra_stage(wc.acc,
                                         obs::Stage::IntraDecision);
            uint32_t best = UINT32_MAX;
            uint8_t pu[64], pv[64];
            const int ctop = slice_top_row_[static_cast<size_t>(mby)] * 8;
            for (int m = 0; m < tools_.intra_modes; ++m) {
                const IntraMode mode = static_cast<IntraMode>(m);
                if (!intraModeAvailable(mode, cx, cy, ctop))
                    continue;
                intraPredict(mode, recon_.u(), cx, cy, 8, pu, ctop);
                intraPredict(mode, recon_.v(), cx, cy, 8, pv, ctop);
                const uint32_t sad =
                    sadBlock(src.u().row(cy) + cx, padded_w_ / 2, pu, 8, 8,
                             8) +
                    sadBlock(src.v().row(cy) + cx, padded_w_ / 2, pv, 8, 8,
                             8);
                if (sad < best) {
                    best = sad;
                    chroma_mode = mode;
                }
            }
        }

        // Predictions and residuals for all planes, into the worker's
        // arena and the record's level buffers.
        int nonzero = 0;
        {
            obs::ScopedStage tq(wc.acc, obs::Stage::TransformQuant);
            buildLumaPrediction(cand, x, y, wc.pred_y);
            buildChromaPrediction(cand, chroma_mode, true, cx, cy,
                                  wc.pred_u);
            buildChromaPrediction(cand, chroma_mode, false, cx, cy,
                                  wc.pred_v);
            nonzero = quantizeLumaResidual(src, wc.pred_y, x, y, qp_mb,
                                           intra, rec.levels_y);
            nonzero += quantizeChromaResidual(src.u(), wc.pred_u, cx, cy,
                                              qp_mb, intra, rec.levels_u);
            nonzero += quantizeChromaResidual(src.v(), wc.pred_v, cx, cy,
                                              qp_mb, intra, rec.levels_v);
        }
        const bool coded = nonzero != 0;

        // Skip conversion: inter16, reference 0, predictor MV, no
        // residual -> one bit on the wire.
        const bool skip = type == FrameType::P &&
            cand.mode == MbMode::Inter16 && cand.ref == 0 &&
            cand.mv[0] == pred_mv && !coded;

        rec.cand = cand;
        rec.chroma_mode = chroma_mode;
        rec.pred_mv = pred_mv;
        rec.qp = qp_mb;
        rec.skip = skip;
        rec.coded = coded;
        rec.nonzero = nonzero;

        MbInfo &info = grid_.at(mbx, mby);
        if (skip) {
            info.mode = MbMode::Skip;
            info.mv = cand.mv[0];
            info.ref = 0;
            // info.qp (the deblock strength input) is raster-serial
            // state — the previous *coded* MB's QP — and is filled in
            // by the entropy pass, which runs before deblocking.
            info.coded = false;
            obs::ScopedStage rc(wc.acc, obs::Stage::Reconstruct);
            copyPrediction(recon_.y(), x, y, kMbSize, wc.pred_y);
            copyPrediction(recon_.u(), cx, cy, 8, wc.pred_u);
            copyPrediction(recon_.v(), cx, cy, 8, wc.pred_v);
            return;
        }

        // Reconstruct via the exact decoder path.
        obs::ScopedStage rc(wc.acc, obs::Stage::Reconstruct);
        int coded_blocks = reconstructBlock(recon_.y(), x, y, kMbSize,
                                            wc.pred_y, rec.levels_y,
                                            qp_mb);
        coded_blocks += reconstructBlock(recon_.u(), cx, cy, 8, wc.pred_u,
                                         rec.levels_u, qp_mb);
        coded_blocks += reconstructBlock(recon_.v(), cx, cy, 8, wc.pred_v,
                                         rec.levels_v, qp_mb);
        if (probe_ && coded_blocks > 0) {
            probe_->record(KernelId::Dequant, coded_blocks);
            probe_->record(KernelId::TransformInv, coded_blocks);
            probe_->record(
                KernelId::Reconstruct, 24,
                static_cast<uint64_t>(coded_blocks), 6,
                {MemRegion{recon_.y().row(y) + x, kMbSize, kMbSize,
                           static_cast<uint32_t>(padded_w_), true}});
        }

        info.mode = cand.mode;
        info.mv = cand.mv[0];
        info.ref = static_cast<int8_t>(cand.ref);
        info.qp = static_cast<uint8_t>(qp_mb);
        info.coded = coded;
    }

    // ----- Entropy pass ----------------------------------------------

    /**
     * Emit one analyzed macroblock. All order-dependent coder state
     * (contexts inside `writer`, the QP-delta chain in `last_qp`) is
     * owned by the caller's slice, which is what makes the stream
     * thread-count invariant and lets slices emit concurrently.
     */
    void
    writeMacroblock(const MbRecord &rec, FrameType type, int mbx, int mby,
                    SyntaxWriter &writer, FrameStats &stats, int &last_qp)
    {
        if (rec.skip) {
            writer.bit(1, ctx::kMbSkip);
            // The deblock filter reads the in-effect QP, which for a
            // skip MB is the last coded one in slice raster order.
            // Slices cover disjoint row bands, so these grid writes
            // never race across slice workers.
            grid_.at(mbx, mby).qp = static_cast<uint8_t>(last_qp);
            ++stats.skip_mbs;
            return;
        }

        const ModeCandidate &cand = rec.cand;
        const bool intra = cand.mode == MbMode::Intra;
        if (type == FrameType::P) {
            writer.bit(0, ctx::kMbSkip);
            // Mode tree: 1 -> Inter16; 01 -> Inter8; 00 -> Intra.
            writer.bit(cand.mode == MbMode::Inter16 ? 1 : 0,
                       ctx::kMbMode0);
            if (cand.mode != MbMode::Inter16)
                writer.bit(cand.mode == MbMode::Inter8 ? 1 : 0,
                           ctx::kMbMode1);
        }

        if (intra) {
            writer.bit(static_cast<int>(cand.luma_mode) & 1,
                       ctx::kIntraLuma);
            writer.bit((static_cast<int>(cand.luma_mode) >> 1) & 1,
                       ctx::kIntraLuma + 1);
            writer.bit(static_cast<int>(rec.chroma_mode) & 1,
                       ctx::kIntraChroma);
            writer.bit((static_cast<int>(rec.chroma_mode) >> 1) & 1,
                       ctx::kIntraChroma + 1);
            ++stats.intra_mbs;
        } else {
            if (tools_.refs > 1)
                writer.ue(static_cast<uint32_t>(cand.ref), ctx::kRefIdx,
                          2);
            const int parts = cand.mode == MbMode::Inter8 ? 4 : 1;
            for (int part = 0; part < parts; ++part) {
                writer.se(cand.mv[part].x - rec.pred_mv.x, ctx::kMvX, 4);
                writer.se(cand.mv[part].y - rec.pred_mv.y, ctx::kMvY, 4);
            }
        }

        if (tools_.adaptive_quant) {
            writer.se(rec.qp - last_qp, ctx::kQpDelta, 2);
            last_qp = rec.qp;
        }

        for (int b = 0; b < 16; ++b)
            writeResidualBlock(writer, rec.levels_y + b * 16, true);
        for (int b = 0; b < 4; ++b)
            writeResidualBlock(writer, rec.levels_u + b * 16, false);
        for (int b = 0; b < 4; ++b)
            writeResidualBlock(writer, rec.levels_v + b * 16, false);
    }

    const EncoderConfig &config_;
    const ToolPreset &tools_;
    const Video &source_;
    RateController &rate_;
    uarch::UarchProbe *probe_;
    obs::Tracer *tracer_;
    obs::StageAccum accum_;
    obs::StageAccum *acc_;
    const std::atomic<bool> *cancel_;
    int padded_w_;
    int padded_h_;
    int mb_cols_;
    int mb_rows_;

    int frame_threads_ = 1;
    std::unique_ptr<sched::WavefrontRunner> runner_;
    std::vector<WorkerCtx> wctx_;
    std::vector<MbRecord> records_;
    std::vector<uint64_t> row_start_ns_;
    bool cancelled_ = false;

    int slice_count_ = 1;
    /// Band boundaries: slice s spans MB rows [start[s], start[s+1]).
    std::vector<int> slice_row_start_;
    /// Per MB row, the first row of its slice (spatial prediction must
    /// not read above it — slices decode independently).
    std::vector<int> slice_top_row_;

    Frame recon_;
    MbGrid grid_;
    std::deque<RefFrame> refs_;
    std::vector<int8_t> aq_offsets_;
    uint64_t entropy_hash_ = 0;
};

} // namespace

Encoder::Encoder(const EncoderConfig &config)
    : config_(config),
      tools_(config.tools_override ? *config.tools_override
                                   : presetForEffort(config.effort))
{
    if (config.entropy_override >= 0)
        tools_.entropy = static_cast<EntropyMode>(config.entropy_override);
    if (config.deblock_override >= 0)
        tools_.deblock = config.deblock_override != 0;
}

namespace {

/** First pass: fast tools, fixed quantizer, gather complexity. */
EncodeResult
encodeFirstPass(const EncoderConfig &config, const video::Video &source)
{
    EncoderConfig pass1_cfg = config;
    pass1_cfg.effort = std::min(config.effort, 3);
    pass1_cfg.rc.mode = RcMode::Cqp;
    pass1_cfg.rc.qp = 30;
    pass1_cfg.rc.fps = source.fps();
    pass1_cfg.rc.pixels_per_frame =
        static_cast<double>(source.pixelsPerFrame());
    pass1_cfg.rc_in.reset();
    pass1_cfg.pass_one = nullptr;
    ToolPreset pass1_tools = presetForEffort(pass1_cfg.effort);
    RateController pass1_rate(pass1_cfg.rc);
    Sequencer pass1(pass1_cfg, pass1_tools, source, pass1_rate);
    return pass1.run();
}

PassOneStats
statsFromFirstPass(const EncodeResult &first)
{
    PassOneStats stats;
    stats.pass_qp = 30;
    for (const FrameStats &f : first.frames)
        stats.frame_bits.push_back(f.bytes * 8.0);
    return stats;
}

} // namespace

PassOneStats
collectPassOneStats(const EncoderConfig &config, const video::Video &source)
{
    return statsFromFirstPass(encodeFirstPass(config, source));
}

EncodeResult
Encoder::encode(const video::Video &source)
{
    RateControlConfig rc = config_.rc;
    rc.fps = source.fps();
    rc.pixels_per_frame = static_cast<double>(source.pixelsPerFrame());

    if (rc.mode == RcMode::TwoPass) {
        PassOneStats stats;
        if (config_.pass_one) {
            stats = *config_.pass_one;
        } else {
            const EncodeResult first = encodeFirstPass(config_, source);
            if (config_.cancel &&
                config_.cancel->load(std::memory_order_relaxed))
                return first;  // abandoned upstream; skip second pass
            stats = statsFromFirstPass(first);
        }

        RateController rate(rc);
        rate.setPassOneStats(stats);
        // With whole-clip stats, local frame indices shift by the
        // frames already encoded; with segment-local stats the budget
        // table starts at this segment's frame 0.
        if (config_.rc_in)
            rate.restore(*config_.rc_in,
                         config_.pass_one ? config_.rc_in->frames_done : 0);
        Sequencer pass2(config_, tools_, source, rate);
        return pass2.run();
    }

    RateController rate(rc);
    if (config_.rc_in)
        rate.restore(*config_.rc_in);
    Sequencer seq(config_, tools_, source, rate);
    return seq.run();
}

} // namespace vbench::codec
