#pragma once

/**
 * @file
 * Edge-padded reference plane for motion compensation and search.
 *
 * Both the encoder and decoder build RefPlanes from reconstructed
 * frames; all motion arithmetic reads through them, so the two sides
 * are bit-identical by construction and the hot loops need no bounds
 * checks.
 */

#include <cstdint>
#include <cstring>
#include <vector>

#include "kernels/kernel_ops.h"
#include "video/plane.h"

namespace vbench::codec {

/** Pad width in samples; bounds the legal motion range. */
inline constexpr int kRefPad = 48;

class RefPlane
{
  public:
    RefPlane() = default;

    /** Build by copying and edge-extending a reconstructed plane. */
    explicit
    RefPlane(const video::Plane &src)
        : width_(src.width()), height_(src.height()),
          stride_(src.width() + 2 * kRefPad),
          buf_((src.width() + 2 * kRefPad) *
               (src.height() + 2 * kRefPad))
    {
        uint8_t *origin = buf_.data() + kRefPad * stride_ + kRefPad;
        // Interior.
        kernels::ops().copy2d(src.data(), width_, origin, stride_,
                              width_, height_);
        // Horizontal extension.
        for (int y = 0; y < height_; ++y) {
            const uint8_t *in = src.row(y);
            uint8_t *out = origin + y * stride_;
            std::memset(out - kRefPad, in[0], kRefPad);
            std::memset(out + width_, in[width_ - 1], kRefPad);
        }
        // Vertical extension (rows already horizontally extended).
        const uint8_t *top = origin - kRefPad;
        const uint8_t *bottom = origin + (height_ - 1) * stride_ - kRefPad;
        for (int y = 1; y <= kRefPad; ++y) {
            std::memcpy(buf_.data() + (kRefPad - y) * stride_, top,
                        static_cast<size_t>(stride_));
            std::memcpy(buf_.data() + (kRefPad + height_ - 1 + y) * stride_,
                        bottom, static_cast<size_t>(stride_));
        }
    }

    int width() const { return width_; }
    int height() const { return height_; }
    int stride() const { return stride_; }
    bool empty() const { return buf_.empty(); }

    /**
     * Pointer to sample (x, y); coordinates may range over
     * [-kRefPad, width + kRefPad) and likewise vertically.
     */
    const uint8_t *
    ptr(int x, int y) const
    {
        return buf_.data() + (y + kRefPad) * stride_ + (x + kRefPad);
    }

  private:
    int width_ = 0;
    int height_ = 0;
    int stride_ = 0;
    std::vector<uint8_t> buf_;
};

/** One reference picture: padded planes for Y, U, V. */
struct RefFrame {
    RefPlane y;
    RefPlane u;
    RefPlane v;

    bool empty() const { return y.empty(); }
};

} // namespace vbench::codec
