#pragma once

/**
 * @file
 * Edge-padded reference plane for motion compensation and search.
 *
 * Both the encoder and decoder build RefPlanes from reconstructed
 * frames; all motion arithmetic reads through them, so the two sides
 * are bit-identical by construction and the hot loops need no bounds
 * checks.
 */

#include <cstdint>
#include <vector>

#include "video/plane.h"

namespace vbench::codec {

/** Pad width in samples; bounds the legal motion range. */
inline constexpr int kRefPad = 48;

class RefPlane
{
  public:
    RefPlane() = default;

    /** Build by copying and edge-extending a reconstructed plane. */
    explicit
    RefPlane(const video::Plane &src)
        : width_(src.width()), height_(src.height()),
          stride_(src.width() + 2 * kRefPad),
          buf_((src.width() + 2 * kRefPad) *
               (src.height() + 2 * kRefPad))
    {
        uint8_t *origin = buf_.data() + kRefPad * stride_ + kRefPad;
        // Interior.
        for (int y = 0; y < height_; ++y) {
            const uint8_t *in = src.row(y);
            uint8_t *out = origin + y * stride_;
            for (int x = 0; x < width_; ++x)
                out[x] = in[x];
            // Horizontal extension.
            for (int x = 1; x <= kRefPad; ++x) {
                out[-x] = in[0];
                out[width_ - 1 + x] = in[width_ - 1];
            }
        }
        // Vertical extension (rows already horizontally extended).
        const uint8_t *top = origin - kRefPad;
        const uint8_t *bottom = origin + (height_ - 1) * stride_ - kRefPad;
        for (int y = 1; y <= kRefPad; ++y) {
            uint8_t *above = buf_.data() + (kRefPad - y) * stride_;
            uint8_t *below =
                buf_.data() + (kRefPad + height_ - 1 + y) * stride_;
            for (int x = 0; x < stride_; ++x) {
                above[x] = top[x];
                below[x] = bottom[x];
            }
        }
    }

    int width() const { return width_; }
    int height() const { return height_; }
    int stride() const { return stride_; }
    bool empty() const { return buf_.empty(); }

    /**
     * Pointer to sample (x, y); coordinates may range over
     * [-kRefPad, width + kRefPad) and likewise vertically.
     */
    const uint8_t *
    ptr(int x, int y) const
    {
        return buf_.data() + (y + kRefPad) * stride_ + (x + kRefPad);
    }

  private:
    int width_ = 0;
    int height_ = 0;
    int stride_ = 0;
    std::vector<uint8_t> buf_;
};

/** One reference picture: padded planes for Y, U, V. */
struct RefFrame {
    RefPlane y;
    RefPlane u;
    RefPlane v;

    bool empty() const { return y.empty(); }
};

} // namespace vbench::codec
