#include "codec/transform.h"

#include <cmath>

#include "codec/types.h"

namespace vbench::codec {

const uint8_t kZigzag4x4[16] = {
    0, 1, 4, 8, 5, 2, 3, 6, 9, 12, 13, 10, 7, 11, 14, 15,
};

namespace {

/**
 * Per-position quantization multipliers (MF) and rescale factors (V)
 * from the H.264 reference construction. Positions fall in three
 * classes by parity: (even,even) -> a, (odd,odd) -> b, mixed -> c.
 */
const int kQuantMf[6][3] = {
    // a      b     c
    {13107, 5243, 8066},
    {11916, 4660, 7490},
    {10082, 4194, 6554},
    {9362, 3647, 5825},
    {8192, 3355, 5243},
    {7282, 2893, 4559},
};

const int kDequantV[6][3] = {
    // a   b   c
    {10, 16, 13},
    {11, 18, 14},
    {13, 20, 16},
    {14, 23, 18},
    {16, 25, 20},
    {18, 29, 23},
};

/** Position class index (0=a, 1=b, 2=c) for raster position i. */
inline int
posClass(int i)
{
    const int r = i >> 2;
    const int c = i & 3;
    const bool r_even = (r & 1) == 0;
    const bool c_even = (c & 1) == 0;
    if (r_even && c_even)
        return 0;
    if (!r_even && !c_even)
        return 1;
    return 2;
}

} // namespace

void
forwardTransform4x4(const int16_t in[16], int32_t out[16])
{
    int32_t tmp[16];
    // Rows.
    for (int r = 0; r < 4; ++r) {
        const int a = in[r * 4 + 0];
        const int b = in[r * 4 + 1];
        const int c = in[r * 4 + 2];
        const int d = in[r * 4 + 3];
        const int s0 = a + d;
        const int s1 = b + c;
        const int s2 = b - c;
        const int s3 = a - d;
        tmp[r * 4 + 0] = s0 + s1;
        tmp[r * 4 + 1] = 2 * s3 + s2;
        tmp[r * 4 + 2] = s0 - s1;
        tmp[r * 4 + 3] = s3 - 2 * s2;
    }
    // Columns.
    for (int c = 0; c < 4; ++c) {
        const int a = tmp[0 * 4 + c];
        const int b = tmp[1 * 4 + c];
        const int cc = tmp[2 * 4 + c];
        const int d = tmp[3 * 4 + c];
        const int s0 = a + d;
        const int s1 = b + cc;
        const int s2 = b - cc;
        const int s3 = a - d;
        out[0 * 4 + c] = s0 + s1;
        out[1 * 4 + c] = 2 * s3 + s2;
        out[2 * 4 + c] = s0 - s1;
        out[3 * 4 + c] = s3 - 2 * s2;
    }
}

void
inverseTransform4x4(const int32_t in[16], int16_t out[16])
{
    int32_t tmp[16];
    // Rows.
    for (int r = 0; r < 4; ++r) {
        const int a = in[r * 4 + 0];
        const int b = in[r * 4 + 1];
        const int c = in[r * 4 + 2];
        const int d = in[r * 4 + 3];
        const int e0 = a + c;
        const int e1 = a - c;
        const int e2 = (b >> 1) - d;
        const int e3 = b + (d >> 1);
        tmp[r * 4 + 0] = e0 + e3;
        tmp[r * 4 + 1] = e1 + e2;
        tmp[r * 4 + 2] = e1 - e2;
        tmp[r * 4 + 3] = e0 - e3;
    }
    // Columns with final rounding.
    for (int c = 0; c < 4; ++c) {
        const int a = tmp[0 * 4 + c];
        const int b = tmp[1 * 4 + c];
        const int cc = tmp[2 * 4 + c];
        const int d = tmp[3 * 4 + c];
        const int e0 = a + cc;
        const int e1 = a - cc;
        const int e2 = (b >> 1) - d;
        const int e3 = b + (d >> 1);
        out[0 * 4 + c] = static_cast<int16_t>((e0 + e3 + 32) >> 6);
        out[1 * 4 + c] = static_cast<int16_t>((e1 + e2 + 32) >> 6);
        out[2 * 4 + c] = static_cast<int16_t>((e1 - e2 + 32) >> 6);
        out[3 * 4 + c] = static_cast<int16_t>((e0 - e3 + 32) >> 6);
    }
}

int
quantize4x4(const int32_t coefs[16], int16_t levels[16], int qp, bool intra)
{
    const int rem = qp % 6;
    const int qbits = 15 + qp / 6;
    // Rounding offset: 1/3 of a step for intra, 1/6 for inter.
    const int64_t f = (1ll << qbits) / (intra ? 3 : 6);
    int nonzero = 0;
    for (int i = 0; i < 16; ++i) {
        const int mf = kQuantMf[rem][posClass(i)];
        const int64_t w = coefs[i];
        const int64_t mag = ((w < 0 ? -w : w) * mf + f) >> qbits;
        const int16_t level =
            static_cast<int16_t>(w < 0 ? -mag : mag);
        levels[i] = level;
        if (level != 0)
            ++nonzero;
    }
    return nonzero;
}

void
dequantize4x4(const int16_t levels[16], int32_t coefs[16], int qp)
{
    const int rem = qp % 6;
    const int shift = qp / 6;
    for (int i = 0; i < 16; ++i) {
        coefs[i] = (static_cast<int32_t>(levels[i]) *
                    kDequantV[rem][posClass(i)])
            << shift;
    }
}

int
quantMfDc(int qp_rem)
{
    return kQuantMf[qp_rem][0];
}

int
dequantVDc(int qp_rem)
{
    return kDequantV[qp_rem][0];
}

double
rdLambda(int qp)
{
    return 0.85 * std::pow(2.0, (qp - 12) / 3.0);
}

double
sadLambda(int qp)
{
    return std::sqrt(rdLambda(qp));
}

} // namespace vbench::codec
