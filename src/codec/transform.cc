#include "codec/transform.h"

#include <cmath>

#include "codec/types.h"
#include "kernels/kernel_ops.h"
#include "kernels/quant_tables.h"

namespace vbench::codec {

const uint8_t kZigzag4x4[16] = {
    0, 1, 4, 8, 5, 2, 3, 6, 9, 12, 13, 10, 7, 11, 14, 15,
};

// The transform/quant arithmetic lives in src/kernels/ (scalar
// reference plus vector variants); these wrappers route through the
// dispatch table resolved at startup. The MF/V tables moved to
// kernels/quant_tables.h so both layers share one copy.

void
forwardTransform4x4(const int16_t in[16], int32_t out[16])
{
    kernels::ops().fwdTx4x4(in, out);
}

void
inverseTransform4x4(const int32_t in[16], int16_t out[16])
{
    kernels::ops().invTx4x4(in, out);
}

int
quantize4x4(const int32_t coefs[16], int16_t levels[16], int qp, bool intra)
{
    return kernels::ops().quant4x4(coefs, levels, qp, intra);
}

void
dequantize4x4(const int16_t levels[16], int32_t coefs[16], int qp)
{
    kernels::ops().dequant4x4(levels, coefs, qp);
}

int
quantMfDc(int qp_rem)
{
    return kernels::kQuantMf[qp_rem][0];
}

int
dequantVDc(int qp_rem)
{
    return kernels::kDequantV[qp_rem][0];
}

double
rdLambda(int qp)
{
    return 0.85 * std::pow(2.0, (qp - 12) / 3.0);
}

double
sadLambda(int qp)
{
    return std::sqrt(rdLambda(qp));
}

} // namespace vbench::codec
