#pragma once

/**
 * @file
 * Block reconstruction shared by encoder and decoder: dequantize,
 * inverse-transform, add to prediction, clamp.
 */

#include <cstdint>

#include "codec/transform.h"
#include "codec/types.h"
#include "kernels/kernel_ops.h"
#include "video/plane.h"

namespace vbench::codec {

/**
 * Reconstruct an n x n block region of `recon` at (x, y) from a
 * prediction buffer and the quantized levels of its (n/4)^2 transform
 * blocks (raster order of 4x4 blocks; each block raster layout).
 *
 * @param recon destination plane.
 * @param x, y block origin.
 * @param n block edge (16 luma, 8 chroma).
 * @param pred n*n prediction samples, row-major.
 * @param levels (n/4)*(n/4) blocks of 16 levels each.
 * @param qp quantizer the levels were produced at.
 * @return number of transform blocks that had residual.
 */
inline int
reconstructBlock(video::Plane &recon, int x, int y, int n,
                 const uint8_t *pred, const int16_t *levels, int qp)
{
    const int blocks_per_side = n / 4;
    const int recon_stride = recon.width();
    const kernels::KernelOps &k = kernels::ops();
    int coded_blocks = 0;
    for (int by = 0; by < blocks_per_side; ++by) {
        for (int bx = 0; bx < blocks_per_side; ++bx) {
            const int16_t *block_levels =
                levels + (by * blocks_per_side + bx) * 16;
            bool any = false;
            for (int i = 0; i < 16; ++i) {
                if (block_levels[i] != 0) {
                    any = true;
                    break;
                }
            }
            const int ox = bx * 4;
            const int oy = by * 4;
            uint8_t *dst = recon.row(y + oy) + x + ox;
            const uint8_t *pred_blk = pred + oy * n + ox;
            if (!any) {
                k.copy2d(pred_blk, n, dst, recon_stride, 4, 4);
                continue;
            }
            ++coded_blocks;
            int32_t coefs[16];
            int16_t residual[16];
            dequantize4x4(block_levels, coefs, qp);
            inverseTransform4x4(coefs, residual);
            k.addClampBlock(pred_blk, n, residual, 4, dst, recon_stride,
                            4, 4);
        }
    }
    return coded_blocks;
}

/** Copy a prediction buffer straight into the reconstruction plane. */
inline void
copyPrediction(video::Plane &recon, int x, int y, int n,
               const uint8_t *pred)
{
    kernels::ops().copy2d(pred, n, recon.row(y) + x, recon.width(), n, n);
}

} // namespace vbench::codec
