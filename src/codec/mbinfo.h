#pragma once

/**
 * @file
 * Per-macroblock side information shared by the encoder, decoder, and
 * deblocking filter (both sides reconstruct this identically from the
 * bitstream, so in-loop filtering stays bit-exact).
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "codec/types.h"

namespace vbench::codec {

/** Decoded state of one macroblock. */
struct MbInfo {
    MbMode mode = MbMode::Intra;
    MotionVector mv;    ///< partition-0 MV (used for prediction)
    int8_t ref = 0;     ///< reference index
    uint8_t qp = 26;
    bool coded = false; ///< any nonzero residual in the MB
};

/** Frame-sized grid of MbInfo. */
class MbGrid
{
  public:
    MbGrid() = default;

    MbGrid(int mb_cols, int mb_rows)
        : cols_(mb_cols), rows_(mb_rows),
          mbs_(static_cast<size_t>(mb_cols) * mb_rows)
    {
    }

    int cols() const { return cols_; }
    int rows() const { return rows_; }

    MbInfo &at(int mbx, int mby) { return mbs_[mby * cols_ + mbx]; }
    const MbInfo &
    at(int mbx, int mby) const
    {
        return mbs_[mby * cols_ + mbx];
    }

  private:
    int cols_ = 0;
    int rows_ = 0;
    std::vector<MbInfo> mbs_;
};

/**
 * Motion vector predictor: component-wise median of the left, top,
 * and top-right neighbors (top-left when top-right is outside),
 * substituting (0,0) for neighbors that are missing or intra. Encoder
 * and decoder must call this with identically-filled grids.
 * `top_row` is the first MB row of the enclosing entropy slice: rows
 * above it count as missing, so a slice's prediction never reaches
 * across its boundary. 0 (the default) is the frame top.
 */
inline MotionVector
mvPredictor(const MbGrid &grid, int mbx, int mby, int top_row = 0)
{
    auto neighbor = [&](int nx, int ny) -> MotionVector {
        if (nx < 0 || ny < top_row || nx >= grid.cols() ||
            ny >= grid.rows())
            return MotionVector{};
        const MbInfo &info = grid.at(nx, ny);
        if (info.mode == MbMode::Intra)
            return MotionVector{};
        return info.mv;
    };
    const MotionVector a = neighbor(mbx - 1, mby);
    const MotionVector b = neighbor(mbx, mby - 1);
    const MotionVector c = (mbx + 1 < grid.cols())
        ? neighbor(mbx + 1, mby - 1)
        : neighbor(mbx - 1, mby - 1);
    MotionVector pred;
    pred.x = static_cast<int16_t>(median3(a.x, b.x, c.x));
    pred.y = static_cast<int16_t>(median3(a.y, b.y, c.y));
    return pred;
}

} // namespace vbench::codec
