#pragma once

/**
 * @file
 * Intra prediction for luma 16x16 and chroma 8x8 blocks.
 *
 * Predictors read *reconstructed* neighbor samples, so encoder and
 * decoder predictions match exactly. Planar is the TrueMotion-style
 * gradient predictor (left + top - corner).
 */

#include <cstdint>

#include "codec/types.h"
#include "video/plane.h"

namespace vbench::codec {

/**
 * Generate an n x n intra prediction into out (row-major).
 *
 * @param mode predictor.
 * @param recon reconstructed plane (neighbors are read from it).
 * @param x, y block position.
 * @param n block edge (16 luma, 8 chroma).
 * @param out destination buffer of n*n samples.
 */
void intraPredict(IntraMode mode, const video::Plane &recon, int x, int y,
                  int n, uint8_t *out);

/**
 * Which modes are usable at this position (Vertical needs a top
 * neighbor, Horizontal a left one, Planar both). DC always works.
 */
bool intraModeAvailable(IntraMode mode, int x, int y);

} // namespace vbench::codec
