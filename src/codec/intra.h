#pragma once

/**
 * @file
 * Intra prediction for luma 16x16 and chroma 8x8 blocks.
 *
 * Predictors read *reconstructed* neighbor samples, so encoder and
 * decoder predictions match exactly. Planar is the TrueMotion-style
 * gradient predictor (left + top - corner).
 */

#include <cstdint>

#include "codec/types.h"
#include "video/plane.h"

namespace vbench::codec {

/**
 * Generate an n x n intra prediction into out (row-major).
 *
 * @param mode predictor.
 * @param recon reconstructed plane (neighbors are read from it).
 * @param x, y block position.
 * @param n block edge (16 luma, 8 chroma).
 * @param out destination buffer of n*n samples.
 * @param slice_top first pixel row of the enclosing entropy slice;
 *        rows above it are treated as outside the frame so slices
 *        decode independently. 0 (the default) is the frame top —
 *        identical to the pre-slice behavior.
 */
void intraPredict(IntraMode mode, const video::Plane &recon, int x, int y,
                  int n, uint8_t *out, int slice_top = 0);

/**
 * Which modes are usable at this position (Vertical needs a top
 * neighbor, Horizontal a left one, Planar both). DC always works.
 * `slice_top` is the slice's first pixel row: blocks on it have no
 * top neighbor, exactly like blocks on the frame top.
 */
bool intraModeAvailable(IntraMode mode, int x, int y, int slice_top = 0);

} // namespace vbench::codec
