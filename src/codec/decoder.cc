#include "codec/decoder.h"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <memory>

#include "codec/bitstream.h"
#include "codec/deblock.h"
#include "codec/interp.h"
#include "codec/intra.h"
#include "codec/mbinfo.h"
#include "codec/recon.h"
#include "codec/refplane.h"
#include "codec/residual.h"
#include "codec/syntax.h"

namespace vbench::codec {

namespace {

using uarch::KernelId;
using uarch::MemRegion;
using video::Frame;
using video::Plane;
using video::Video;

/** Per-sequence decoder state. */
class DecoderState
{
  public:
    DecoderState(const StreamHeader &header, uarch::UarchProbe *probe)
        : header_(header), probe_(probe),
          padded_w_((header.width + kMbSize - 1) & ~(kMbSize - 1)),
          padded_h_((header.height + kMbSize - 1) & ~(kMbSize - 1)),
          mb_cols_(padded_w_ / kMbSize), mb_rows_(padded_h_ / kMbSize)
    {
    }

    /** Decode one frame payload; false on malformed syntax. */
    bool
    decodeFrame(const uint8_t *payload, size_t size, Video &out)
    {
        if (size < 1)
            return false;
        const FrameType type = frameTypeFromByte(payload[0]);
        const int frame_qp = frameQpFromByte(payload[0]);
        // The header byte carries 6 QP bits (0..63); values past kMaxQp
        // never come from an encoder and would overrun the QP-indexed
        // deblock threshold tables.
        if (frame_qp < kMinQp || frame_qp > kMaxQp)
            return false;
        if (type == FrameType::I)
            refs_.clear();
        if (type == FrameType::P && refs_.empty())
            return false;

        const int slices = static_cast<int>(header_.slice_count);
        if (slices < 1 || slices > mb_rows_)
            return false;

        recon_ = Frame(padded_w_, padded_h_);
        grid_ = MbGrid(mb_cols_, mb_rows_);

        // Each slice is a self-contained segment: fresh entropy
        // contexts, fresh QP-delta chain, prediction bounded by the
        // slice head. slice_count == 1 is the legacy layout — the
        // whole payload after the frame byte is the one segment, with
        // no length prefix.
        size_t offset = 1;
        for (int s = 0; s < slices; ++s) {
            const uint8_t *seg = payload + offset;
            size_t seg_size = size - offset;
            if (slices > 1) {
                if (size - offset < 4)
                    return false;
                const uint32_t len = readU32(payload + offset);
                offset += 4;
                if (len == 0 || size - offset < len)
                    return false;
                seg = payload + offset;
                seg_size = len;
                offset += len;
            }
            if (!decodeSlice(seg, seg_size, type, frame_qp,
                             sliceRowStart(mb_rows_, slices, s),
                             sliceRowStart(mb_rows_, slices, s + 1)))
                return false;
        }
        if (slices > 1 && offset != size)
            return false;  // trailing garbage after the last slice

        if (header_.deblock)
            deblockFrame(recon_, grid_, probe_);

        refs_.push_front(RefFrame{RefPlane(recon_.y()),
                                  RefPlane(recon_.u()),
                                  RefPlane(recon_.v())});
        while (refs_.size() > std::max<size_t>(1, header_.num_refs))
            refs_.pop_back();

        out.append(cropOutput());
        return true;
    }

  private:
    Frame
    cropOutput() const
    {
        Frame out(header_.width, header_.height);
        video::padPlaneInto(recon_.y(), out.y());
        video::padPlaneInto(recon_.u(), out.u());
        video::padPlaneInto(recon_.v(), out.v());
        return out;
    }

    /** Decode MB rows [row_begin, row_end) from one slice segment. */
    bool
    decodeSlice(const uint8_t *seg, size_t seg_size, FrameType type,
                int frame_qp, int row_begin, int row_end)
    {
        std::unique_ptr<SyntaxReader> reader;
        if (header_.entropy == EntropyMode::Arith)
            reader = std::make_unique<ArithSyntaxReader>(seg, seg_size);
        else
            reader = std::make_unique<VlcSyntaxReader>(seg, seg_size);
        last_qp_ = frame_qp;

        double bits_done = 0;
        for (int mby = row_begin; mby < row_end; ++mby) {
            for (int mbx = 0; mbx < mb_cols_; ++mbx) {
                if (!decodeMacroblock(*reader, type, frame_qp, mbx, mby,
                                      row_begin))
                    return false;
                if (probe_) {
                    const double bits = reader->bitsConsumed();
                    probe_->record(
                        KernelId::DecodeParse,
                        std::max<uint64_t>(
                            1, static_cast<uint64_t>(bits - bits_done)),
                        parse_hash_, 64);
                    bits_done = bits;
                }
            }
        }
        return true;
    }

    bool
    decodeMacroblock(SyntaxReader &reader, FrameType type, int frame_qp,
                     int mbx, int mby, int slice_top)
    {
        const int x = mbx * kMbSize;
        const int y = mby * kMbSize;
        const int cx = mbx * 8;
        const int cy = mby * 8;
        MbInfo &info = grid_.at(mbx, mby);
        const MotionVector pred_mv = mvPredictor(grid_, mbx, mby,
                                                 slice_top);

        if (probe_)
            probe_->record(KernelId::Dispatch, 1);

        uint8_t pred_y[kMbSize * kMbSize];
        uint8_t pred_u[64];
        uint8_t pred_v[64];

        if (type == FrameType::P && reader.bit(ctx::kMbSkip)) {
            // Skip: predictor MV on reference 0, no residual. The MV is
            // clamped exactly as the encoder's skip candidate was
            // (identity for valid streams; bounds-safety for hostile
            // predictor chains).
            const MotionVector skip_mv = clampMvForBlock(
                pred_mv, x, y, kMbSize, kMbSize, padded_w_, padded_h_);
            info.mode = MbMode::Skip;
            info.mv = skip_mv;
            info.ref = 0;
            info.qp = static_cast<uint8_t>(last_qp_);
            info.coded = false;
            motionCompensate(refs_[0].y, x, y, skip_mv, kMbSize, kMbSize,
                             pred_y);
            const MotionVector cmv{static_cast<int16_t>(skip_mv.x >> 1),
                                   static_cast<int16_t>(skip_mv.y >> 1)};
            motionCompensate(refs_[0].u, cx, cy, cmv, 8, 8, pred_u);
            motionCompensate(refs_[0].v, cx, cy, cmv, 8, 8, pred_v);
            copyPrediction(recon_.y(), x, y, kMbSize, pred_y);
            copyPrediction(recon_.u(), cx, cy, 8, pred_u);
            copyPrediction(recon_.v(), cx, cy, 8, pred_v);
            return true;
        }

        MbMode mode = MbMode::Intra;
        if (type == FrameType::P) {
            if (reader.bit(ctx::kMbMode0)) {
                mode = MbMode::Inter16;
            } else {
                mode = reader.bit(ctx::kMbMode1) ? MbMode::Inter8
                                                 : MbMode::Intra;
            }
        }

        IntraMode luma_mode = IntraMode::Dc;
        IntraMode chroma_mode = IntraMode::Dc;
        MotionVector mv[4];
        int ref = 0;

        if (mode == MbMode::Intra) {
            int m = reader.bit(ctx::kIntraLuma);
            m |= reader.bit(ctx::kIntraLuma + 1) << 1;
            luma_mode = static_cast<IntraMode>(m);
            int cm = reader.bit(ctx::kIntraChroma);
            cm |= reader.bit(ctx::kIntraChroma + 1) << 1;
            chroma_mode = static_cast<IntraMode>(cm);
            if (!intraModeAvailable(luma_mode, x, y,
                                    slice_top * kMbSize) ||
                !intraModeAvailable(chroma_mode, cx, cy,
                                    slice_top * 8)) {
                return false;
            }
        } else {
            if (header_.num_refs > 1) {
                const uint32_t r = reader.ue(ctx::kRefIdx, 2);
                if (r >= refs_.size())
                    return false;
                ref = static_cast<int>(r);
            }
            const int parts = mode == MbMode::Inter8 ? 4 : 1;
            const int bs = mode == MbMode::Inter8 ? 8 : kMbSize;
            for (int part = 0; part < parts; ++part) {
                const int32_t dx = reader.se(ctx::kMvX, 4);
                const int32_t dy = reader.se(ctx::kMvY, 4);
                mv[part].x = static_cast<int16_t>(pred_mv.x + dx);
                mv[part].y = static_cast<int16_t>(pred_mv.y + dy);
                // Every compensated read (including the +1 sample of
                // half-pel filters) must stay inside the reference
                // padding, for this partition's actual position and
                // size.
                const int px = x + (part & 1) * 8;
                const int py = y + (part >> 1) * 8;
                const int ix = px + (mv[part].x >> 1);
                const int iy = py + (mv[part].y >> 1);
                if (ix < -kRefPad || iy < -kRefPad ||
                    ix + bs + 1 > padded_w_ + kRefPad ||
                    iy + bs + 1 > padded_h_ + kRefPad) {
                    return false;
                }
            }
        }

        int qp_mb = frame_qp;
        if (header_.adaptive_quant) {
            qp_mb = last_qp_ + reader.se(ctx::kQpDelta, 2);
            if (qp_mb < kMinQp || qp_mb > kMaxQp)
                return false;
            last_qp_ = qp_mb;
        }

        // Predictions.
        if (mode == MbMode::Intra) {
            intraPredict(luma_mode, recon_.y(), x, y, kMbSize, pred_y,
                         slice_top * kMbSize);
            intraPredict(chroma_mode, recon_.u(), cx, cy, 8, pred_u,
                         slice_top * 8);
            intraPredict(chroma_mode, recon_.v(), cx, cy, 8, pred_v,
                         slice_top * 8);
        } else if (mode == MbMode::Inter16) {
            motionCompensate(refs_[ref].y, x, y, mv[0], kMbSize, kMbSize,
                             pred_y);
            const MotionVector cmv{static_cast<int16_t>(mv[0].x >> 1),
                                   static_cast<int16_t>(mv[0].y >> 1)};
            motionCompensate(refs_[ref].u, cx, cy, cmv, 8, 8, pred_u);
            motionCompensate(refs_[ref].v, cx, cy, cmv, 8, 8, pred_v);
        } else {
            for (int part = 0; part < 4; ++part) {
                uint8_t temp[8 * 8];
                motionCompensate(refs_[ref].y, x + (part & 1) * 8,
                                 y + (part >> 1) * 8, mv[part], 8, 8,
                                 temp);
                for (int r = 0; r < 8; ++r)
                    for (int c = 0; c < 8; ++c)
                        pred_y[((part >> 1) * 8 + r) * kMbSize +
                               (part & 1) * 8 + c] = temp[r * 8 + c];
                uint8_t ctemp[4 * 4];
                const MotionVector cmv{
                    static_cast<int16_t>(mv[part].x >> 1),
                    static_cast<int16_t>(mv[part].y >> 1)};
                motionCompensate(refs_[ref].u, cx + (part & 1) * 4,
                                 cy + (part >> 1) * 4, cmv, 4, 4, ctemp);
                for (int r = 0; r < 4; ++r)
                    for (int c = 0; c < 4; ++c)
                        pred_u[((part >> 1) * 4 + r) * 8 +
                               (part & 1) * 4 + c] = ctemp[r * 4 + c];
                motionCompensate(refs_[ref].v, cx + (part & 1) * 4,
                                 cy + (part >> 1) * 4, cmv, 4, 4, ctemp);
                for (int r = 0; r < 4; ++r)
                    for (int c = 0; c < 4; ++c)
                        pred_v[((part >> 1) * 4 + r) * 8 +
                               (part & 1) * 4 + c] = ctemp[r * 4 + c];
            }
        }

        // Residuals.
        int16_t levels_y[16 * 16];
        int16_t levels_u[4 * 16];
        int16_t levels_v[4 * 16];
        int nonzero = 0;
        for (int b = 0; b < 16; ++b) {
            const int n = readResidualBlock(reader, levels_y + b * 16,
                                            true);
            if (n < 0)
                return false;
            nonzero += n;
        }
        for (int b = 0; b < 4; ++b) {
            const int n = readResidualBlock(reader, levels_u + b * 16,
                                            false);
            if (n < 0)
                return false;
            nonzero += n;
        }
        for (int b = 0; b < 4; ++b) {
            const int n = readResidualBlock(reader, levels_v + b * 16,
                                            false);
            if (n < 0)
                return false;
            nonzero += n;
        }

        int coded_blocks =
            reconstructBlock(recon_.y(), x, y, kMbSize, pred_y, levels_y,
                             qp_mb);
        coded_blocks += reconstructBlock(recon_.u(), cx, cy, 8, pred_u,
                                         levels_u, qp_mb);
        coded_blocks += reconstructBlock(recon_.v(), cx, cy, 8, pred_v,
                                         levels_v, qp_mb);
        if (probe_ && coded_blocks > 0) {
            probe_->record(KernelId::Dequant, coded_blocks);
            probe_->record(KernelId::TransformInv, coded_blocks);
            probe_->record(KernelId::Reconstruct, 24,
                           static_cast<uint64_t>(coded_blocks), 6);
        }

        info.mode = mode;
        info.mv = mv[0];
        info.ref = static_cast<int8_t>(ref);
        info.qp = static_cast<uint8_t>(qp_mb);
        info.coded = nonzero != 0;
        // Fold coefficient statistics into the parse decision hash so
        // the branch model sees real data-dependent outcomes.
        parse_hash_ = parse_hash_ * 0x9E3779B97F4A7C15ull +
            static_cast<uint64_t>(nonzero);
        return true;
    }

    StreamHeader header_;
    uarch::UarchProbe *probe_;
    int padded_w_;
    int padded_h_;
    int mb_cols_;
    int mb_rows_;

    Frame recon_;
    MbGrid grid_;
    std::deque<RefFrame> refs_;
    int last_qp_ = 26;
    uint64_t parse_hash_ = 0;
};

} // namespace

std::optional<Video>
decode(const uint8_t *data, size_t size, const DecoderConfig &config)
{
    size_t offset = 0;
    auto header = parseStreamHeader(data, size, offset);
    if (!header)
        return std::nullopt;

    Video out(header->width, header->height, header->fps());
    int32_t frame_index = 0;

    // Outer loop: decode this stream, then — split-and-stitch concat
    // support — continue into any back-to-back stream that follows.
    // Trailing bytes that are not a stream header are still ignored,
    // as before.
    while (true) {
        DecoderState state(*header, config.probe);
        for (uint32_t i = 0; i < header->frame_count; ++i) {
            if (offset + 4 > size)
                return std::nullopt;
            const uint32_t payload_len = readU32(data + offset);
            offset += 4;
            if (payload_len == 0 || offset + payload_len > size)
                return std::nullopt;
            {
                obs::ScopedSpan span(config.tracer, obs::Track::Decode,
                                     obs::Stage::DecodeFrame,
                                     frame_index);
                if (!state.decodeFrame(data + offset, payload_len, out))
                    return std::nullopt;
            }
            offset += payload_len;
            ++frame_index;
        }
        if (size - offset < 4 ||
            std::memcmp(data + offset, kMagic, 4) != 0)
            break;
        size_t consumed = 0;
        header = parseStreamHeader(data + offset, size - offset, consumed);
        if (!header)
            return std::nullopt;
        if (header->width != out.width() || header->height != out.height())
            return std::nullopt;
        offset += consumed;
    }
    return out;
}

} // namespace vbench::codec
