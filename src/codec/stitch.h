#pragma once

/**
 * @file
 * Split-and-stitch support for the VBC container: concatenate
 * independently encoded closed-GOP segment streams into one stream,
 * and cut a closed-GOP stream back into segment streams.
 *
 * Because every frame record is self-contained (fresh entropy coder
 * per frame, references cleared at each IDR) the container is the only
 * cross-segment state: stitching rewrites one merged header with the
 * summed frame count and concatenates the frame records verbatim. A
 * stream produced by stitching segments encoded with
 * EncoderConfig::segment_frames + rc_in chaining is byte-identical to
 * the whole-file closed-GOP encode (see docs/SERVICE.md).
 */

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "codec/bitstream.h"
#include "codec/types.h"

namespace vbench::codec {

namespace detail {

/** Byte extent of the first `frames` frame records after the header. */
inline bool
frameRecordExtent(const uint8_t *data, size_t size, size_t offset,
                  uint32_t frames, size_t &end)
{
    for (uint32_t i = 0; i < frames; ++i) {
        if (size - offset < 4)
            return false;
        const uint32_t len = readU32(data + offset);
        if (len == 0 || size - offset - 4 < len)
            return false;
        offset += 4 + len;
    }
    end = offset;
    return true;
}

inline bool
sameCodingTools(const StreamHeader &a, const StreamHeader &b)
{
    return a.width == b.width && a.height == b.height &&
        a.fps_num == b.fps_num && a.fps_den == b.fps_den &&
        a.entropy == b.entropy && a.deblock == b.deblock &&
        a.adaptive_quant == b.adaptive_quant &&
        a.num_refs == b.num_refs && a.slice_count == b.slice_count;
}

} // namespace detail

/**
 * Concatenate segment streams into one stream. All segments must share
 * geometry and coding tools, and every segment must open with an IDR
 * (anything else would reference frames across the cut). Returns
 * nullopt on malformed or incompatible input.
 */
inline std::optional<ByteBuffer>
stitchStreams(const std::vector<ByteBuffer> &segments)
{
    if (segments.empty())
        return std::nullopt;
    StreamHeader merged;
    uint64_t total_frames = 0;
    std::vector<std::pair<size_t, size_t>> bodies;  // [begin, end) per seg
    for (size_t s = 0; s < segments.size(); ++s) {
        const ByteBuffer &seg = segments[s];
        size_t consumed = 0;
        const std::optional<StreamHeader> header =
            parseStreamHeader(seg.data(), seg.size(), consumed);
        if (!header)
            return std::nullopt;
        if (s == 0)
            merged = *header;
        else if (!detail::sameCodingTools(merged, *header))
            return std::nullopt;
        if (header->frame_count > 0) {
            if (seg.size() < consumed + 5 ||
                frameTypeFromByte(seg[consumed + 4]) != FrameType::I)
                return std::nullopt;
        }
        size_t end = 0;
        if (!detail::frameRecordExtent(seg.data(), seg.size(), consumed,
                                       header->frame_count, end))
            return std::nullopt;
        total_frames += header->frame_count;
        bodies.emplace_back(consumed, end);
    }
    merged.frame_count = static_cast<uint32_t>(total_frames);
    ByteBuffer out;
    writeStreamHeader(out, merged);
    for (size_t s = 0; s < segments.size(); ++s)
        out.insert(out.end(), segments[s].begin() + bodies[s].first,
                   segments[s].begin() + bodies[s].second);
    return out;
}

/**
 * Cut a closed-GOP stream into segment streams of `segment_frames`
 * frames each (last segment may be shorter). Each cut point must land
 * on an IDR — the stream has to have been encoded with a matching
 * EncoderConfig::segment_frames (or gop dividing segment_frames).
 * Inverse of stitchStreams; returns nullopt on malformed input or a
 * non-IDR cut point.
 */
inline std::optional<std::vector<ByteBuffer>>
splitStream(const ByteBuffer &stream, int segment_frames)
{
    if (segment_frames <= 0)
        return std::nullopt;
    size_t offset = 0;
    const std::optional<StreamHeader> header =
        parseStreamHeader(stream.data(), stream.size(), offset);
    if (!header)
        return std::nullopt;
    std::vector<ByteBuffer> segments;
    uint32_t done = 0;
    while (done < header->frame_count) {
        const uint32_t take = std::min(
            static_cast<uint32_t>(segment_frames),
            header->frame_count - done);
        if (stream.size() < offset + 5 ||
            frameTypeFromByte(stream[offset + 4]) != FrameType::I)
            return std::nullopt;
        size_t end = 0;
        if (!detail::frameRecordExtent(stream.data(), stream.size(),
                                       offset, take, end))
            return std::nullopt;
        StreamHeader seg_header = *header;
        seg_header.frame_count = take;
        ByteBuffer seg;
        writeStreamHeader(seg, seg_header);
        seg.insert(seg.end(), stream.begin() + offset,
                   stream.begin() + end);
        segments.push_back(std::move(seg));
        offset = end;
        done += take;
    }
    return segments;
}

} // namespace vbench::codec
