#pragma once

/**
 * @file
 * Adaptive binary range coder (boolean arithmetic coder in the VP8 /
 * CABAC family), the Arith entropy backend. The renormalization and
 * carry handling follow the libvpx boolean-coder construction, which
 * is compact and well understood.
 */

#include <cstdint>

#include "codec/types.h"

namespace vbench::codec {

/**
 * Adaptive probability state for one context: an 8-bit estimate of
 * P(bit == 0) scaled to [1, 254], updated with an exponential moving
 * average after each coded bit.
 */
class BitContext
{
  public:
    uint8_t prob() const { return prob_; }

    void
    update(int bit)
    {
        // Adaptation rate 1/16: fast enough to track coefficient
        // statistics within a frame, slow enough not to thrash.
        int p = prob_;
        if (bit == 0)
            p += (255 - p) >> 4;
        else
            p -= p >> 4;
        if (p < 1)
            p = 1;
        if (p > 254)
            p = 254;
        prob_ = static_cast<uint8_t>(p);
    }

    void reset(uint8_t p = 128) { prob_ = p; }

  private:
    uint8_t prob_ = 128;
};

namespace detail {

/** Left shifts needed to renormalize a range value into [128, 255]. */
inline int
rangeNorm(uint32_t range)
{
    // range is always in [1, 255] here.
    return __builtin_clz(range) - 24;
}

} // namespace detail

/**
 * Range encoder appending to a byte buffer.
 */
class RangeEncoder
{
  public:
    explicit RangeEncoder(ByteBuffer &out) : out_(out), start_(out.size()) {}

    /** Encode one bit with P(bit==0) = prob/256. */
    void
    encode(int bit, uint8_t prob)
    {
        uint32_t split = 1 + (((range_ - 1) * prob) >> 8);
        if (bit) {
            low_ += split;
            range_ -= split;
        } else {
            range_ = split;
        }

        int shift = detail::rangeNorm(range_);
        range_ <<= shift;
        count_ += shift;

        if (count_ >= 0) {
            const int offset = shift - count_;
            if ((low_ << (offset - 1)) & 0x80000000u) {
                // Carry into the bytes already emitted.
                size_t x = out_.size();
                while (x > start_ && out_[x - 1] == 0xFF) {
                    out_[x - 1] = 0;
                    --x;
                }
                if (x > start_)
                    ++out_[x - 1];
            }
            out_.push_back(static_cast<uint8_t>(low_ >> (24 - offset)));
            low_ <<= offset;
            shift = count_;
            low_ &= 0xFFFFFF;
            count_ -= 8;
        }
        low_ <<= shift;
    }

    /** Encode with a 50/50 probability (sign bits etc.). */
    void encodeBypass(int bit) { encode(bit, 128); }

    /** Encode and adapt a context. */
    void
    encode(int bit, BitContext &ctx)
    {
        encode(bit, ctx.prob());
        ctx.update(bit);
    }

    /** Flush remaining state; call exactly once, then discard. */
    void
    flush()
    {
        for (int i = 0; i < 32; ++i)
            encode(0, 128);
    }

    /** Bytes emitted so far by this encoder instance. */
    size_t bytesWritten() const { return out_.size() - start_; }

  private:
    ByteBuffer &out_;
    size_t start_;
    uint32_t low_ = 0;
    uint32_t range_ = 255;
    int count_ = -24;
};

/** Matching decoder. Reads past the end behave as zero bytes. */
class RangeDecoder
{
  public:
    RangeDecoder(const uint8_t *data, size_t size)
        : data_(data), size_(size)
    {
        fill();
    }

    int
    decode(uint8_t prob)
    {
        const uint32_t split = 1 + (((range_ - 1) * prob) >> 8);
        const uint64_t big_split = static_cast<uint64_t>(split) << 56;
        int bit = 0;
        if (value_ >= big_split) {
            bit = 1;
            value_ -= big_split;
            range_ -= split;
        } else {
            range_ = split;
        }
        const int shift = detail::rangeNorm(range_);
        range_ <<= shift;
        value_ <<= shift;
        count_ -= shift;
        if (count_ < 0)
            fill();
        return bit;
    }

    int decodeBypass() { return decode(128); }

    int
    decode(BitContext &ctx)
    {
        const int bit = decode(ctx.prob());
        ctx.update(bit);
        return bit;
    }

    /** Bytes consumed from the input so far. */
    size_t bytesConsumed() const { return pos_; }

  private:
    void
    fill()
    {
        int shift = 48 - count_;
        while (shift >= 0) {
            const uint64_t byte = pos_ < size_ ? data_[pos_++] : 0;
            value_ |= byte << shift;
            count_ += 8;
            shift -= 8;
        }
    }

    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
    uint64_t value_ = 0;  ///< current byte occupies bits 63..56
    uint32_t range_ = 255;
    int count_ = -8;
};

} // namespace vbench::codec
