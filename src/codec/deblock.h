#pragma once

/**
 * @file
 * In-loop deblocking filter (H.264-style edge conditions with a
 * simplified clip schedule). Runs on the reconstructed frame before it
 * becomes a reference, identically in encoder and decoder.
 */

#include "codec/mbinfo.h"
#include "uarch/probe.h"
#include "video/frame.h"

namespace vbench::codec {

/**
 * Filter all 4x4-grid edges of a reconstructed frame in place.
 * Vertical edges are filtered before horizontal ones.
 *
 * @param recon reconstructed frame (modified in place).
 * @param grid per-macroblock mode/MV/coded info for boundary strength.
 * @param probe optional instrumentation.
 */
void deblockFrame(video::Frame &recon, const MbGrid &grid,
                  uarch::UarchProbe *probe = nullptr);

} // namespace vbench::codec
