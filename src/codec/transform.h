#pragma once

/**
 * @file
 * 4x4 integer transform, quantization, and scan order (H.264 core
 * transform construction: exact integer arithmetic, so encoder
 * reconstruction and decoder output are bit-identical).
 */

#include <cstdint>

namespace vbench::codec {

/** Zigzag scan order for 4x4 blocks (index into row-major layout). */
extern const uint8_t kZigzag4x4[16];

/**
 * Forward 4x4 integer transform (rows then columns of the H.264 core
 * matrix). Input residuals in [-255, 255]; output fits in int16.
 */
void forwardTransform4x4(const int16_t in[16], int32_t out[16]);

/**
 * Inverse 4x4 integer transform including the final (x + 32) >> 6
 * rounding. Input is dequantized coefficients; output is the decoded
 * residual.
 */
void inverseTransform4x4(const int32_t in[16], int16_t out[16]);

/**
 * Quantize transformed coefficients at the given QP.
 *
 * @param coefs forward-transform output.
 * @param[out] levels quantized levels in scan (raster) layout.
 * @param qp quantizer, 0..51 (H.264 step-size schedule).
 * @param intra rounds more aggressively toward nonzero for intra.
 * @return number of nonzero levels.
 */
int quantize4x4(const int32_t coefs[16], int16_t levels[16], int qp,
                bool intra);

/** Dequantize levels back to transform coefficients. */
void dequantize4x4(const int16_t levels[16], int32_t coefs[16], int qp);

/**
 * DC-position (class a) quantization multiplier / rescale factor for
 * qp % 6. Exposed for codecs that quantize second-level DC transforms
 * (e.g. NGC's hierarchical 8x8).
 */
int quantMfDc(int qp_rem);
int dequantVDc(int qp_rem);

/**
 * Rate-distortion lambda for mode decisions at a QP (H.264-style
 * exponential schedule).
 */
double rdLambda(int qp);

/** Lambda for SAD-domain motion costs (sqrt of the mode lambda). */
double sadLambda(int qp);

} // namespace vbench::codec
