#include "codec/intra.h"

namespace vbench::codec {

bool
intraModeAvailable(IntraMode mode, int x, int y, int slice_top)
{
    switch (mode) {
      case IntraMode::Dc: return true;
      case IntraMode::Vertical: return y > slice_top;
      case IntraMode::Horizontal: return x > 0;
      case IntraMode::Planar: return x > 0 && y > slice_top;
    }
    return false;
}

void
intraPredict(IntraMode mode, const video::Plane &recon, int x, int y,
             int n, uint8_t *out, int slice_top)
{
    const bool has_top = y > slice_top;
    const bool has_left = x > 0;

    switch (mode) {
      case IntraMode::Dc: {
        int sum = 0;
        int count = 0;
        if (has_top) {
            for (int i = 0; i < n; ++i)
                sum += recon.at(x + i, y - 1);
            count += n;
        }
        if (has_left) {
            for (int i = 0; i < n; ++i)
                sum += recon.at(x - 1, y + i);
            count += n;
        }
        const uint8_t dc = count > 0
            ? static_cast<uint8_t>((sum + count / 2) / count)
            : 128;
        for (int i = 0; i < n * n; ++i)
            out[i] = dc;
        break;
      }
      case IntraMode::Vertical: {
        for (int r = 0; r < n; ++r)
            for (int c = 0; c < n; ++c)
                out[r * n + c] = recon.at(x + c, y - 1);
        break;
      }
      case IntraMode::Horizontal: {
        for (int r = 0; r < n; ++r) {
            const uint8_t v = recon.at(x - 1, y + r);
            for (int c = 0; c < n; ++c)
                out[r * n + c] = v;
        }
        break;
      }
      case IntraMode::Planar: {
        const int corner = recon.at(x - 1, y - 1);
        for (int r = 0; r < n; ++r) {
            const int left = recon.at(x - 1, y + r);
            const int base = left - corner;
            for (int c = 0; c < n; ++c) {
                out[r * n + c] =
                    clampPixel(base + recon.at(x + c, y - 1));
            }
        }
        break;
      }
    }
}

} // namespace vbench::codec
