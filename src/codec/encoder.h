#pragma once

/**
 * @file
 * VBC encoder: the software transcoder core (libx264 analogue).
 */

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "codec/preset.h"
#include "codec/ratecontrol.h"
#include "codec/types.h"
#include "obs/trace.h"
#include "uarch/probe.h"
#include "video/video.h"

namespace vbench::codec {

/** Full encoder configuration. */
struct EncoderConfig {
    RateControlConfig rc;
    int gop = 30;            ///< I-frame interval; <= 0 means first only
    int effort = 5;          ///< 0..9 preset dial (paper §2.2)
    int entropy_override = -1;  ///< -1 auto, else EntropyMode value
    int deblock_override = -1;  ///< -1 auto, else 0/1
    /// Explicit tool set, bypassing the effort dial (used by the
    /// fixed-function hardware encoder models, whose tools are frozen
    /// in silicon rather than selected by a preset).
    std::optional<ToolPreset> tools_override;
    uarch::UarchProbe *probe = nullptr;
    /// Stage tracer; null (the default) falls back to the
    /// env-configured obs::globalTracer(), and with neither attached
    /// every instrumentation point costs one branch, same contract as
    /// the null probe.
    obs::Tracer *tracer = nullptr;
    /// Trace track frames are committed to (the hardware models run
    /// this encoder with frozen tools and relabel their timeline).
    obs::Track track = obs::Track::VbcEncode;
    /**
     * Intra-frame wavefront parallelism: macroblock rows analyzed in
     * flight at once. <= 0 resolves VBENCH_FRAME_THREADS through the
     * sched::decideFrameThreads() oversubscription guard; callers that
     * already ran the guard (core::transcode) pass the decided width.
     * The bitstream is bit-exact for every value — entropy coding is
     * a serial pass over the completed row records. Forced to 1 when a
     * uarch probe is attached (probes assume serial recording).
     */
    int frame_threads = 0;
    /// Cooperative cancellation: checked between rows and frames; a
    /// cancelled encode returns a truncated (unusable) result quickly.
    const std::atomic<bool> *cancel = nullptr;
};

/** Per-frame outcome. */
struct FrameStats {
    FrameType type = FrameType::I;
    int qp = 0;
    size_t bytes = 0;       ///< frame record size incl. headers
    uint32_t intra_mbs = 0;
    uint32_t skip_mbs = 0;
};

/** Encode outcome: the bitstream plus statistics. */
struct EncodeResult {
    ByteBuffer stream;
    std::vector<FrameStats> frames;

    size_t totalBytes() const { return stream.size(); }
};

/**
 * The encoder. One instance encodes one clip (stateless between
 * encode() calls apart from configuration).
 */
class Encoder
{
  public:
    explicit Encoder(const EncoderConfig &config);

    /**
     * Encode a clip. Two-pass rate control runs both passes
     * internally (wall-clock cost is visible to the caller, exactly
     * as the paper's speed metric requires).
     */
    EncodeResult encode(const video::Video &source);

    /** The tool preset the configured effort resolves to. */
    const ToolPreset &tools() const { return tools_; }

  private:
    EncoderConfig config_;
    ToolPreset tools_;
};

} // namespace vbench::codec
