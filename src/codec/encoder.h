#pragma once

/**
 * @file
 * VBC encoder: the software transcoder core (libx264 analogue).
 */

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "codec/preset.h"
#include "codec/ratecontrol.h"
#include "codec/types.h"
#include "obs/trace.h"
#include "uarch/probe.h"
#include "video/video.h"

namespace vbench::codec {

/** Full encoder configuration. */
struct EncoderConfig {
    RateControlConfig rc;
    int gop = 30;            ///< I-frame interval; <= 0 means first only
    int effort = 5;          ///< 0..9 preset dial (paper §2.2)
    int entropy_override = -1;  ///< -1 auto, else EntropyMode value
    int deblock_override = -1;  ///< -1 auto, else 0/1
    /// Explicit tool set, bypassing the effort dial (used by the
    /// fixed-function hardware encoder models, whose tools are frozen
    /// in silicon rather than selected by a preset).
    std::optional<ToolPreset> tools_override;
    uarch::UarchProbe *probe = nullptr;
    /// Stage tracer; null (the default) falls back to the
    /// env-configured obs::globalTracer(), and with neither attached
    /// every instrumentation point costs one branch, same contract as
    /// the null probe.
    obs::Tracer *tracer = nullptr;
    /// Trace track frames are committed to (the hardware models run
    /// this encoder with frozen tools and relabel their timeline).
    obs::Track track = obs::Track::VbcEncode;
    /**
     * Intra-frame wavefront parallelism: macroblock rows analyzed in
     * flight at once. <= 0 resolves VBENCH_FRAME_THREADS through the
     * sched::decideFrameThreads() oversubscription guard; callers that
     * already ran the guard (core::transcode) pass the decided width.
     * The bitstream is bit-exact for every value — entropy coding is
     * a serial pass over the completed row records. Forced to 1 when a
     * uarch probe is attached (probes assume serial recording).
     */
    int frame_threads = 0;
    /**
     * Entropy slice bands per frame. Each slice is a horizontal band of
     * whole MB rows with its own length-prefixed bitstream segment;
     * entropy contexts, the QP-delta chain, and spatial prediction
     * (intra neighbors, the MV predictor) reset at the slice head, so
     * the entropy pass runs slice-parallel on the wavefront worker set.
     * <= 0 resolves VBENCH_SLICES (core::RuntimeConfig); 1 is the
     * legacy single-segment payload, byte-identical to pre-slice
     * streams at every thread width. Clamped to the frame's MB row
     * count and codec::kMaxSlices. Forced to 1 when a uarch probe is
     * attached (probes take the fused serial path).
     */
    int slice_count = 0;
    /// Cooperative cancellation: checked between rows and frames; a
    /// cancelled encode returns a truncated (unusable) result quickly.
    const std::atomic<bool> *cancel = nullptr;
    /**
     * Split-and-stitch: force an IDR and restart the GOP phase every N
     * source frames (<= 0 off). With the phase reset, frame k of a
     * segment encode picks the same type as frame k of the whole-file
     * encode, which is what makes stitched segment streams byte-equal
     * to the whole-file closed-GOP stream (see codec/stitch.h).
     */
    int segment_frames = 0;
    /// Rate-controller state carried in from the preceding segment of
    /// a split-and-stitch chain; empty starts fresh.
    std::optional<RcSnapshot> rc_in;
    /**
     * Two-pass only: whole-clip pass-1 stats collected externally (via
     * collectPassOneStats on each segment, concatenated). When set the
     * internal analysis pass is skipped and budget lookups are shifted
     * by rc_in->frames_done so each segment reads its global budgets.
     * When null, two-pass runs its own pass 1 over the given input.
     */
    const PassOneStats *pass_one = nullptr;
};

/** Per-frame outcome. */
struct FrameStats {
    FrameType type = FrameType::I;
    int qp = 0;
    size_t bytes = 0;       ///< frame record size incl. headers
    uint32_t intra_mbs = 0;
    uint32_t skip_mbs = 0;
};

/** Encode outcome: the bitstream plus statistics. */
struct EncodeResult {
    ByteBuffer stream;
    std::vector<FrameStats> frames;
    /// Rate-controller state after the last frame — feed into the next
    /// segment's EncoderConfig::rc_in to chain a split-and-stitch
    /// encode.
    RcSnapshot rc_state;

    size_t totalBytes() const { return stream.size(); }
};

/**
 * The encoder. One instance encodes one clip (stateless between
 * encode() calls apart from configuration).
 */
class Encoder
{
  public:
    explicit Encoder(const EncoderConfig &config);

    /**
     * Encode a clip. Two-pass rate control runs both passes
     * internally (wall-clock cost is visible to the caller, exactly
     * as the paper's speed metric requires).
     */
    EncodeResult encode(const video::Video &source);

    /** The tool preset the configured effort resolves to. */
    const ToolPreset &tools() const { return tools_; }

  private:
    EncoderConfig config_;
    ToolPreset tools_;
};

/**
 * Run the two-pass analysis pass (the same fast constant-QP encode
 * Encoder::encode runs internally) and return its per-frame stats.
 * Segment chains concatenate the stats of every segment — pass 1 is
 * closed-GOP constant-QP, so per-segment frame bits equal the
 * whole-file ones — and hand the result to EncoderConfig::pass_one.
 */
PassOneStats collectPassOneStats(const EncoderConfig &config,
                                 const video::Video &source);

} // namespace vbench::codec
