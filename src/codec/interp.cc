#include "codec/interp.h"

#include "kernels/kernel_ops.h"

namespace vbench::codec {

void
motionCompensate(const RefPlane &ref, int x, int y, MotionVector mv,
                 int w, int h, uint8_t *out)
{
    const int ix = x + (mv.x >> 1);
    const int iy = y + (mv.y >> 1);
    const int fx = mv.x & 1;
    const int fy = mv.y & 1;
    const int stride = ref.stride();
    const uint8_t *src = ref.ptr(ix, iy);
    const kernels::KernelOps &k = kernels::ops();

    if (fx == 0 && fy == 0)
        k.copy2d(src, stride, out, w, w, h);
    else if (fx == 1 && fy == 0)
        k.interpH(src, stride, out, w, w, h);
    else if (fx == 0 && fy == 1)
        k.interpV(src, stride, out, w, w, h);
    else
        k.interpHV(src, stride, out, w, w, h);
}

} // namespace vbench::codec
