#include "codec/interp.h"

namespace vbench::codec {

void
motionCompensate(const RefPlane &ref, int x, int y, MotionVector mv,
                 int w, int h, uint8_t *out)
{
    const int ix = x + (mv.x >> 1);
    const int iy = y + (mv.y >> 1);
    const int fx = mv.x & 1;
    const int fy = mv.y & 1;
    const int stride = ref.stride();
    const uint8_t *src = ref.ptr(ix, iy);

    if (fx == 0 && fy == 0) {
        for (int r = 0; r < h; ++r) {
            const uint8_t *s = src + r * stride;
            uint8_t *d = out + r * w;
            for (int c = 0; c < w; ++c)
                d[c] = s[c];
        }
    } else if (fx == 1 && fy == 0) {
        for (int r = 0; r < h; ++r) {
            const uint8_t *s = src + r * stride;
            uint8_t *d = out + r * w;
            for (int c = 0; c < w; ++c)
                d[c] = static_cast<uint8_t>((s[c] + s[c + 1] + 1) >> 1);
        }
    } else if (fx == 0 && fy == 1) {
        for (int r = 0; r < h; ++r) {
            const uint8_t *s = src + r * stride;
            uint8_t *d = out + r * w;
            for (int c = 0; c < w; ++c)
                d[c] = static_cast<uint8_t>((s[c] + s[c + stride] + 1) >> 1);
        }
    } else {
        for (int r = 0; r < h; ++r) {
            const uint8_t *s = src + r * stride;
            uint8_t *d = out + r * w;
            for (int c = 0; c < w; ++c) {
                d[c] = static_cast<uint8_t>(
                    (s[c] + s[c + 1] + s[c + stride] + s[c + stride + 1] +
                     2) >> 2);
            }
        }
    }
}

} // namespace vbench::codec
