#pragma once

/**
 * @file
 * Residual coefficient syntax, shared by encoder and decoder: nonzero
 * count, then (run, level) pairs in zigzag order.
 */

#include <cstdint>

#include "codec/syntax.h"
#include "codec/transform.h"
#include "codec/types.h"

namespace vbench::codec {

/**
 * Write one 4x4 block of quantized levels (raster layout).
 * @return number of nonzero levels written.
 */
inline int
writeResidualBlock(SyntaxWriter &writer, const int16_t levels[16],
                   bool luma)
{
    int zigzag_pos[16];
    int16_t zigzag_level[16];
    int count = 0;
    for (int i = 0; i < 16; ++i) {
        const int16_t level = levels[kZigzag4x4[i]];
        if (level != 0) {
            zigzag_pos[count] = i;
            zigzag_level[count] = level;
            ++count;
        }
    }
    writer.ue(count, luma ? ctx::kCoefCountY : ctx::kCoefCountC, 4);
    int prev = -1;
    for (int i = 0; i < count; ++i) {
        const int run = zigzag_pos[i] - prev - 1;
        writer.ue(run, ctx::kRun, 3);
        const int16_t level = zigzag_level[i];
        const uint32_t mag = level < 0 ? -level : level;
        writer.ue(mag - 1, ctx::kLevel, 4);
        writer.bypass(level < 0);
        prev = zigzag_pos[i];
    }
    return count;
}

/**
 * Parse one 4x4 block into raster-layout levels.
 * @return number of nonzero levels, or -1 on corrupt syntax.
 */
inline int
readResidualBlock(SyntaxReader &reader, int16_t levels[16], bool luma)
{
    for (int i = 0; i < 16; ++i)
        levels[i] = 0;
    const uint32_t count =
        reader.ue(luma ? ctx::kCoefCountY : ctx::kCoefCountC, 4);
    if (count > 16)
        return -1;
    int pos = -1;
    for (uint32_t i = 0; i < count; ++i) {
        const uint32_t run = reader.ue(ctx::kRun, 3);
        // Bound before the int cast: a corrupt run near UINT32_MAX
        // would wrap `pos` negative and index below the zigzag table.
        if (run > 15)
            return -1;
        pos += static_cast<int>(run) + 1;
        if (pos > 15)
            return -1;
        const uint32_t mag = reader.ue(ctx::kLevel, 4) + 1;
        if (mag > 32767)
            return -1;
        const int16_t level = reader.bypass()
            ? -static_cast<int16_t>(mag)
            : static_cast<int16_t>(mag);
        levels[kZigzag4x4[pos]] = level;
    }
    return static_cast<int>(count);
}

} // namespace vbench::codec
