#pragma once

/**
 * @file
 * MSB-first bit writer/reader with Exp-Golomb codes, the VLC entropy
 * backend and the container header format.
 */

#include <cassert>
#include <cstdint>

#include "codec/golomb.h"
#include "codec/types.h"

namespace vbench::codec {

/** MSB-first bit sink appending to a ByteBuffer. */
class BitWriter
{
  public:
    explicit BitWriter(ByteBuffer &out) : out_(out) {}

    void
    putBit(int bit)
    {
        accum_ = (accum_ << 1) | (bit & 1);
        if (++fill_ == 8) {
            out_.push_back(static_cast<uint8_t>(accum_));
            accum_ = 0;
            fill_ = 0;
        }
    }

    /** Write the low `bits` bits of value, MSB first. */
    void
    putBits(uint32_t value, int bits)
    {
        assert(bits >= 0 && bits <= 32);
        for (int i = bits - 1; i >= 0; --i)
            putBit((value >> i) & 1);
    }

    /** Unsigned Exp-Golomb. */
    void
    putUe(uint32_t value)
    {
        const uint64_t v = static_cast<uint64_t>(value) + 1;
        const int bits = static_cast<int>(ueExponent(value));
        for (int i = 0; i < bits; ++i)
            putBit(0);
        for (int i = bits; i >= 0; --i)
            putBit((v >> i) & 1);
    }

    /** Signed Exp-Golomb: 0, 1, -1, 2, -2, ... */
    void
    putSe(int32_t value)
    {
        const uint32_t mapped = value > 0
            ? static_cast<uint32_t>(value) * 2 - 1
            : static_cast<uint32_t>(-value) * 2;
        putUe(mapped);
    }

    /** Pad with zero bits to the next byte boundary. */
    void
    align()
    {
        while (fill_ != 0)
            putBit(0);
    }

    /** Bits written so far (including unflushed). */
    size_t bitCount() const { return out_.size() * 8 + fill_; }

  private:
    ByteBuffer &out_;
    uint32_t accum_ = 0;
    int fill_ = 0;
};

/** MSB-first bit source over a byte range. Reads past the end yield 0. */
class BitReader
{
  public:
    BitReader(const uint8_t *data, size_t size) : data_(data), size_(size) {}

    int
    getBit()
    {
        if (pos_ >= size_ * 8) {
            overflowed_ = true;
            return 0;
        }
        const int bit = (data_[pos_ >> 3] >> (7 - (pos_ & 7))) & 1;
        ++pos_;
        return bit;
    }

    uint32_t
    getBits(int bits)
    {
        uint32_t v = 0;
        for (int i = 0; i < bits; ++i)
            v = (v << 1) | getBit();
        return v;
    }

    uint32_t
    getUe()
    {
        int zeros = 0;
        while (getBit() == 0 && zeros < 32)
            ++zeros;
        uint32_t v = 1;
        for (int i = 0; i < zeros; ++i)
            v = (v << 1) | getBit();
        return v - 1;
    }

    int32_t
    getSe()
    {
        const uint32_t mapped = getUe();
        if (mapped == 0)
            return 0;
        const int32_t mag = static_cast<int32_t>((mapped + 1) / 2);
        return (mapped & 1) ? mag : -mag;
    }

    void
    align()
    {
        pos_ = (pos_ + 7) & ~static_cast<size_t>(7);
    }

    size_t bitPos() const { return pos_; }
    bool overflowed() const { return overflowed_; }

  private:
    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
    bool overflowed_ = false;
};

} // namespace vbench::codec
