#pragma once

/**
 * @file
 * VBC container format: a byte-oriented stream header followed by
 * length-prefixed frame records.
 *
 * Layout:
 *   magic "VBC1" (4 bytes)
 *   header bits (BitWriter, byte-aligned at the end):
 *     version ue, width ue, height ue, fps_num ue, fps_den ue,
 *     frame_count ue, entropy bit, deblock bit, aq bit, num_refs ue
 *     [version >= 2] slice_count ue
 *   per frame:
 *     payload length u32 little-endian (includes the 1-byte header)
 *     frame byte: bit 0 = type (0 I / 1 P), bits 2..7 = base QP
 *     slice_count == 1: entropy payload (VLC bits or range-coded blob)
 *     slice_count  > 1: slice_count records of
 *       slice length u32 little-endian + slice entropy payload
 *
 * Single-slice streams are written as version 1 — byte-identical to
 * the pre-slice format — so slices are purely opt-in on the wire; a
 * version-2 header only appears when there is a slice_count to carry.
 */

#include <cstdint>
#include <cstring>
#include <optional>

#include "codec/bitio.h"
#include "codec/types.h"

namespace vbench::codec {

/** Sequence-level parameters carried in the stream header. */
struct StreamHeader {
    int width = 0;
    int height = 0;
    uint32_t fps_num = 30;
    uint32_t fps_den = 1;
    uint32_t frame_count = 0;
    EntropyMode entropy = EntropyMode::Vlc;
    bool deblock = true;
    bool adaptive_quant = false;
    uint32_t num_refs = 1;
    /// Entropy slice bands per frame; 1 = the legacy single-segment
    /// payload (written as a version-1 header, byte-identical to the
    /// pre-slice format).
    uint32_t slice_count = 1;

    double fps() const { return static_cast<double>(fps_num) / fps_den; }
};

inline constexpr char kMagic[4] = {'V', 'B', 'C', '1'};
inline constexpr uint32_t kVersion = 1;
/// Header version carrying a slice_count field (> 1 slices only).
inline constexpr uint32_t kVersionSlices = 2;
/// Upper bound on slice bands per frame; the encoder additionally
/// clamps to the frame's MB/SB row count. A typo'd VBENCH_SLICES must
/// not produce thousands of two-byte slices.
inline constexpr uint32_t kMaxSlices = 64;

/** Serialize the stream header onto a buffer. */
inline void
writeStreamHeader(ByteBuffer &out, const StreamHeader &header)
{
    out.insert(out.end(), kMagic, kMagic + 4);
    BitWriter bits(out);
    bits.putUe(header.slice_count > 1 ? kVersionSlices : kVersion);
    bits.putUe(static_cast<uint32_t>(header.width));
    bits.putUe(static_cast<uint32_t>(header.height));
    bits.putUe(header.fps_num);
    bits.putUe(header.fps_den);
    bits.putUe(header.frame_count);
    bits.putBit(header.entropy == EntropyMode::Arith);
    bits.putBit(header.deblock);
    bits.putBit(header.adaptive_quant);
    bits.putUe(header.num_refs);
    if (header.slice_count > 1)
        bits.putUe(header.slice_count);
    bits.align();
}

/**
 * Parse the stream header.
 * @param[out] consumed bytes consumed from `data`.
 * @return header, or nullopt if malformed.
 */
inline std::optional<StreamHeader>
parseStreamHeader(const uint8_t *data, size_t size, size_t &consumed)
{
    if (size < 8 || std::memcmp(data, kMagic, 4) != 0)
        return std::nullopt;
    BitReader bits(data + 4, size - 4);
    StreamHeader header;
    const uint32_t version = bits.getUe();
    if (version != kVersion && version != kVersionSlices)
        return std::nullopt;
    header.width = static_cast<int>(bits.getUe());
    header.height = static_cast<int>(bits.getUe());
    header.fps_num = bits.getUe();
    header.fps_den = bits.getUe();
    header.frame_count = bits.getUe();
    header.entropy = bits.getBit() ? EntropyMode::Arith : EntropyMode::Vlc;
    header.deblock = bits.getBit();
    header.adaptive_quant = bits.getBit();
    header.num_refs = bits.getUe();
    if (version >= kVersionSlices)
        header.slice_count = bits.getUe();
    if (bits.overflowed() || header.width <= 0 || header.height <= 0 ||
        header.fps_num == 0 || header.fps_den == 0 ||
        header.num_refs == 0 || header.num_refs > 8 ||
        header.slice_count == 0 || header.slice_count > kMaxSlices ||
        (version >= kVersionSlices && header.slice_count < 2)) {
        return std::nullopt;
    }
    consumed = 4 + (bits.bitPos() + 7) / 8;
    return header;
}

/**
 * First MB/SB row of slice band `s` when `rows` rows split into
 * `slices` horizontal bands of whole rows. Integer band math handles
 * row counts the slice count does not divide; encoder and decoder
 * derive the same bands from the same (rows, slices) pair. Band s
 * covers [sliceRowStart(rows, slices, s), sliceRowStart(rows, slices,
 * s + 1)).
 */
inline int
sliceRowStart(int rows, int slices, int s)
{
    return static_cast<int>(
        (static_cast<int64_t>(rows) * s) / slices);
}

/** Append a little-endian u32 (frame payload length). */
inline void
appendU32(ByteBuffer &out, uint32_t v)
{
    out.push_back(static_cast<uint8_t>(v & 0xFF));
    out.push_back(static_cast<uint8_t>((v >> 8) & 0xFF));
    out.push_back(static_cast<uint8_t>((v >> 16) & 0xFF));
    out.push_back(static_cast<uint8_t>((v >> 24) & 0xFF));
}

inline uint32_t
readU32(const uint8_t *data)
{
    return static_cast<uint32_t>(data[0]) |
        (static_cast<uint32_t>(data[1]) << 8) |
        (static_cast<uint32_t>(data[2]) << 16) |
        (static_cast<uint32_t>(data[3]) << 24);
}

/** Pack / unpack the 1-byte frame header. */
inline uint8_t
packFrameByte(FrameType type, int qp)
{
    return static_cast<uint8_t>((type == FrameType::P ? 1 : 0) |
                                ((qp & 0x3F) << 2));
}

inline FrameType
frameTypeFromByte(uint8_t b)
{
    return (b & 1) ? FrameType::P : FrameType::I;
}

inline int
frameQpFromByte(uint8_t b)
{
    return (b >> 2) & 0x3F;
}

} // namespace vbench::codec
