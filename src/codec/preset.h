#pragma once

/**
 * @file
 * Effort presets: the single dial that trades encoding time for
 * compression, restricting the RDO search space exactly as the paper
 * describes (§2.2). Higher effort enables more search, more tools,
 * and stronger entropy coding.
 */

#include "codec/me.h"
#include "codec/types.h"

namespace vbench::codec {

/** Tool set enabled at one effort level. */
struct ToolPreset {
    SearchKind search = SearchKind::Hex;
    int range = 16;          ///< search radius / iteration budget
    bool subpel = true;      ///< half-pel refinement
    int subpel_iters = 1;
    bool inter8 = false;     ///< 8x8 partitions
    int refs = 1;            ///< reference frames searched
    int rdo = 0;             ///< 0 heuristic, 1 residual trial, 2 full
    bool adaptive_quant = false;
    EntropyMode entropy = EntropyMode::Vlc;
    bool deblock = true;
    int intra_modes = 4;     ///< how many intra predictors to try
    /// Early-skip SAD threshold multiplier: fast presets skip static
    /// macroblocks aggressively, slow presets insist on the full mode
    /// decision (x264's analogous --no-fast-pskip behaviour).
    double early_skip_scale = 1.0;
    /// Insert an I frame on detected scene changes (x264 scenecut).
    bool scenecut = true;
    /// SATD-scored sub-pel refinement (x264 subme >= 2).
    bool satd_subpel = false;
};

/** Number of effort levels (0..9). */
inline constexpr int kNumEfforts = 10;

/** Map an effort level (clamped to 0..9) onto its tool set. */
ToolPreset presetForEffort(int effort);

} // namespace vbench::codec
