#pragma once

/**
 * @file
 * NGC encoder: the next-generation software encoder (libx265 /
 * libvpx-vp9 analogue). Same public shape as codec::Encoder so the
 * benchmark harness can drive either interchangeably.
 */

#include <atomic>

#include "codec/encoder.h"
#include "codec/ratecontrol.h"
#include "ngc/ngc_types.h"
#include "uarch/probe.h"
#include "video/video.h"

namespace vbench::ngc {

/** NGC encoder configuration. */
struct NgcConfig {
    codec::RateControlConfig rc;
    NgcProfile profile = NgcProfile::HevcLike;
    /// 0 = slowest / best (Popular-grade), 1 = balanced, 2 = fast.
    int speed = 1;
    int gop = 30;
    uarch::UarchProbe *probe = nullptr;
    /// Stage tracer; null (the default) falls back to the
    /// env-configured obs::globalTracer(), and with neither attached
    /// every instrumentation point costs one branch, same contract as
    /// the null probe.
    obs::Tracer *tracer = nullptr;
    /**
     * Intra-frame wavefront parallelism: superblock rows analyzed in
     * flight at once. <= 0 resolves VBENCH_FRAME_THREADS through the
     * sched::decideFrameThreads() oversubscription guard; callers that
     * already ran the guard (core::transcode) pass the decided width.
     * The bitstream is bit-exact for every value — entropy coding is
     * a serial pass over the completed row records. Forced to 1 when a
     * uarch probe is attached (probes assume serial recording).
     */
    int frame_threads = 0;
    /**
     * Entropy slice bands per frame. Each slice is a horizontal band of
     * whole superblock rows with its own length-prefixed bitstream
     * segment; entropy contexts and spatial prediction (intra
     * neighbors, the cell MV predictor) reset at the slice head, so
     * the entropy pass runs slice-parallel on the wavefront worker
     * set. <= 0 resolves VBENCH_SLICES (core::RuntimeConfig); 1 is the
     * legacy single-segment payload, byte-identical to pre-slice
     * streams at every thread width. Clamped to the frame's SB row
     * count and codec::kMaxSlices. Forced to 1 when a uarch probe is
     * attached (probes take the fused serial path).
     */
    int slice_count = 0;
    /// Cooperative cancellation: checked between rows and frames; a
    /// cancelled encode returns a truncated (unusable) result quickly.
    const std::atomic<bool> *cancel = nullptr;
    /// Split-and-stitch: force an IDR and restart the GOP phase every
    /// N source frames (<= 0 off). Same contract as
    /// codec::EncoderConfig::segment_frames.
    int segment_frames = 0;
    /// Rate-controller state carried in from the preceding segment of
    /// a split-and-stitch chain; empty starts fresh.
    std::optional<codec::RcSnapshot> rc_in;
    /// Two-pass only: whole-clip pass-1 stats collected externally;
    /// same contract as codec::EncoderConfig::pass_one.
    const codec::PassOneStats *pass_one = nullptr;
};

/**
 * Encode a clip with NGC. Reuses codec::EncodeResult so downstream
 * metrics code is codec-agnostic.
 */
class NgcEncoder
{
  public:
    explicit NgcEncoder(const NgcConfig &config);

    codec::EncodeResult encode(const video::Video &source);

  private:
    NgcConfig config_;
};

/**
 * Run the NGC two-pass analysis pass and return its per-frame stats;
 * segment chains concatenate per-segment stats into the whole-clip
 * table handed to NgcConfig::pass_one (see codec::collectPassOneStats).
 */
codec::PassOneStats collectNgcPassOneStats(const NgcConfig &config,
                                           const video::Video &source);

} // namespace vbench::ngc
