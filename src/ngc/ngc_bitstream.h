#pragma once

/**
 * @file
 * NGC container format. Same framing discipline as VBC (magic, header
 * bits, length-prefixed frame records) with an NGC magic and tool set.
 */

#include <cstring>
#include <optional>

#include "codec/bitio.h"
#include "codec/bitstream.h"
#include "ngc/ngc_types.h"

namespace vbench::ngc {

/** Sequence-level parameters. */
struct NgcStreamHeader {
    int width = 0;
    int height = 0;
    uint32_t fps_num = 30;
    uint32_t fps_den = 1;
    uint32_t frame_count = 0;
    NgcProfile profile = NgcProfile::HevcLike;
    uint32_t num_refs = 1;
    bool deblock = true;

    double fps() const { return static_cast<double>(fps_num) / fps_den; }
};

inline constexpr char kNgcMagic[4] = {'N', 'G', 'C', '1'};

inline void
writeNgcHeader(codec::ByteBuffer &out, const NgcStreamHeader &header)
{
    out.insert(out.end(), kNgcMagic, kNgcMagic + 4);
    codec::BitWriter bits(out);
    bits.putUe(1);  // version
    bits.putUe(static_cast<uint32_t>(header.width));
    bits.putUe(static_cast<uint32_t>(header.height));
    bits.putUe(header.fps_num);
    bits.putUe(header.fps_den);
    bits.putUe(header.frame_count);
    bits.putBit(header.profile == NgcProfile::Vp9Like);
    bits.putBit(header.deblock);
    bits.putUe(header.num_refs);
    bits.align();
}

inline std::optional<NgcStreamHeader>
parseNgcHeader(const uint8_t *data, size_t size, size_t &consumed)
{
    if (size < 8 || std::memcmp(data, kNgcMagic, 4) != 0)
        return std::nullopt;
    codec::BitReader bits(data + 4, size - 4);
    NgcStreamHeader header;
    if (bits.getUe() != 1)
        return std::nullopt;
    header.width = static_cast<int>(bits.getUe());
    header.height = static_cast<int>(bits.getUe());
    header.fps_num = bits.getUe();
    header.fps_den = bits.getUe();
    header.frame_count = bits.getUe();
    header.profile =
        bits.getBit() ? NgcProfile::Vp9Like : NgcProfile::HevcLike;
    header.deblock = bits.getBit();
    header.num_refs = bits.getUe();
    if (bits.overflowed() || header.width <= 0 || header.height <= 0 ||
        header.fps_num == 0 || header.fps_den == 0 ||
        header.num_refs == 0 || header.num_refs > 8) {
        return std::nullopt;
    }
    consumed = 4 + (bits.bitPos() + 7) / 8;
    return header;
}

} // namespace vbench::ngc
