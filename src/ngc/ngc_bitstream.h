#pragma once

/**
 * @file
 * NGC container format. Same framing discipline as VBC (magic, header
 * bits, length-prefixed frame records) with an NGC magic and tool set.
 */

#include <algorithm>
#include <cstring>
#include <optional>
#include <utility>
#include <vector>

#include "codec/bitio.h"
#include "codec/bitstream.h"
#include "codec/stitch.h"
#include "ngc/ngc_types.h"

namespace vbench::ngc {

/** Sequence-level parameters. */
struct NgcStreamHeader {
    int width = 0;
    int height = 0;
    uint32_t fps_num = 30;
    uint32_t fps_den = 1;
    uint32_t frame_count = 0;
    NgcProfile profile = NgcProfile::HevcLike;
    uint32_t num_refs = 1;
    bool deblock = true;
    /// Entropy slice bands per frame; 1 = the legacy single-segment
    /// payload (written as a version-1 header, byte-identical to the
    /// pre-slice format). Same wire rule as codec::StreamHeader.
    uint32_t slice_count = 1;

    double fps() const { return static_cast<double>(fps_num) / fps_den; }
};

inline constexpr char kNgcMagic[4] = {'N', 'G', 'C', '1'};
inline constexpr uint32_t kNgcVersion = 1;
/// Header version carrying a slice_count field (> 1 slices only).
inline constexpr uint32_t kNgcVersionSlices = 2;

inline void
writeNgcHeader(codec::ByteBuffer &out, const NgcStreamHeader &header)
{
    out.insert(out.end(), kNgcMagic, kNgcMagic + 4);
    codec::BitWriter bits(out);
    bits.putUe(header.slice_count > 1 ? kNgcVersionSlices : kNgcVersion);
    bits.putUe(static_cast<uint32_t>(header.width));
    bits.putUe(static_cast<uint32_t>(header.height));
    bits.putUe(header.fps_num);
    bits.putUe(header.fps_den);
    bits.putUe(header.frame_count);
    bits.putBit(header.profile == NgcProfile::Vp9Like);
    bits.putBit(header.deblock);
    bits.putUe(header.num_refs);
    if (header.slice_count > 1)
        bits.putUe(header.slice_count);
    bits.align();
}

inline std::optional<NgcStreamHeader>
parseNgcHeader(const uint8_t *data, size_t size, size_t &consumed)
{
    if (size < 8 || std::memcmp(data, kNgcMagic, 4) != 0)
        return std::nullopt;
    codec::BitReader bits(data + 4, size - 4);
    NgcStreamHeader header;
    const uint32_t version = bits.getUe();
    if (version != kNgcVersion && version != kNgcVersionSlices)
        return std::nullopt;
    header.width = static_cast<int>(bits.getUe());
    header.height = static_cast<int>(bits.getUe());
    header.fps_num = bits.getUe();
    header.fps_den = bits.getUe();
    header.frame_count = bits.getUe();
    header.profile =
        bits.getBit() ? NgcProfile::Vp9Like : NgcProfile::HevcLike;
    header.deblock = bits.getBit();
    header.num_refs = bits.getUe();
    if (version >= kNgcVersionSlices)
        header.slice_count = bits.getUe();
    if (bits.overflowed() || header.width <= 0 || header.height <= 0 ||
        header.fps_num == 0 || header.fps_den == 0 ||
        header.num_refs == 0 || header.num_refs > 8 ||
        header.slice_count == 0 ||
        header.slice_count > codec::kMaxSlices ||
        (version >= kNgcVersionSlices && header.slice_count < 2)) {
        return std::nullopt;
    }
    consumed = 4 + (bits.bitPos() + 7) / 8;
    return header;
}

/**
 * Concatenate NGC segment streams into one stream; same contract as
 * codec::stitchStreams (shared geometry/tools, every segment opens
 * with an IDR, frame records copied verbatim under a merged header).
 */
inline std::optional<codec::ByteBuffer>
stitchNgcStreams(const std::vector<codec::ByteBuffer> &segments)
{
    if (segments.empty())
        return std::nullopt;
    NgcStreamHeader merged;
    uint64_t total_frames = 0;
    std::vector<std::pair<size_t, size_t>> bodies;
    for (size_t s = 0; s < segments.size(); ++s) {
        const codec::ByteBuffer &seg = segments[s];
        size_t consumed = 0;
        const std::optional<NgcStreamHeader> header =
            parseNgcHeader(seg.data(), seg.size(), consumed);
        if (!header)
            return std::nullopt;
        if (s == 0) {
            merged = *header;
        } else if (header->width != merged.width ||
                   header->height != merged.height ||
                   header->fps_num != merged.fps_num ||
                   header->fps_den != merged.fps_den ||
                   header->profile != merged.profile ||
                   header->deblock != merged.deblock ||
                   header->num_refs != merged.num_refs ||
                   header->slice_count != merged.slice_count) {
            return std::nullopt;
        }
        if (header->frame_count > 0) {
            if (seg.size() < consumed + 5 ||
                codec::frameTypeFromByte(seg[consumed + 4]) !=
                    codec::FrameType::I)
                return std::nullopt;
        }
        size_t end = 0;
        if (!codec::detail::frameRecordExtent(seg.data(), seg.size(),
                                              consumed,
                                              header->frame_count, end))
            return std::nullopt;
        total_frames += header->frame_count;
        bodies.emplace_back(consumed, end);
    }
    merged.frame_count = static_cast<uint32_t>(total_frames);
    codec::ByteBuffer out;
    writeNgcHeader(out, merged);
    for (size_t s = 0; s < segments.size(); ++s)
        out.insert(out.end(), segments[s].begin() + bodies[s].first,
                   segments[s].begin() + bodies[s].second);
    return out;
}

/**
 * Cut a closed-GOP NGC stream into segment streams of
 * `segment_frames` frames; inverse of stitchNgcStreams, same contract
 * as codec::splitStream.
 */
inline std::optional<std::vector<codec::ByteBuffer>>
splitNgcStream(const codec::ByteBuffer &stream, int segment_frames)
{
    if (segment_frames <= 0)
        return std::nullopt;
    size_t offset = 0;
    const std::optional<NgcStreamHeader> header =
        parseNgcHeader(stream.data(), stream.size(), offset);
    if (!header)
        return std::nullopt;
    std::vector<codec::ByteBuffer> segments;
    uint32_t done = 0;
    while (done < header->frame_count) {
        const uint32_t take = std::min(
            static_cast<uint32_t>(segment_frames),
            header->frame_count - done);
        if (stream.size() < offset + 5 ||
            codec::frameTypeFromByte(stream[offset + 4]) !=
                codec::FrameType::I)
            return std::nullopt;
        size_t end = 0;
        if (!codec::detail::frameRecordExtent(stream.data(), stream.size(),
                                              offset, take, end))
            return std::nullopt;
        NgcStreamHeader seg_header = *header;
        seg_header.frame_count = take;
        codec::ByteBuffer seg;
        writeNgcHeader(seg, seg_header);
        seg.insert(seg.end(), stream.begin() + offset,
                   stream.begin() + end);
        segments.push_back(std::move(seg));
        offset = end;
        done += take;
    }
    return segments;
}

} // namespace vbench::ngc
