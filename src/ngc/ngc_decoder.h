#pragma once

/**
 * @file
 * NGC decoder.
 */

#include <optional>

#include "codec/types.h"
#include "uarch/probe.h"
#include "video/video.h"

namespace vbench::ngc {

/** Decoder configuration. */
struct NgcDecoderConfig {
    uarch::UarchProbe *probe = nullptr;
};

/**
 * Decode an NGC stream.
 * @return the clip, or nullopt on malformed input.
 */
std::optional<video::Video> ngcDecode(const uint8_t *data, size_t size,
                                      const NgcDecoderConfig &config = {});

inline std::optional<video::Video>
ngcDecode(const codec::ByteBuffer &stream,
          const NgcDecoderConfig &config = {})
{
    return ngcDecode(stream.data(), stream.size(), config);
}

} // namespace vbench::ngc
