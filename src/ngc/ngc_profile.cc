#include "ngc/ngc_types.h"

namespace vbench::ngc {

const char *
toString(NgcProfile profile)
{
    switch (profile) {
      case NgcProfile::HevcLike: return "ngc-hevc";
      case NgcProfile::Vp9Like: return "ngc-vp9";
    }
    return "unknown";
}

} // namespace vbench::ngc
