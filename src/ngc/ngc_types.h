#pragma once

/**
 * @file
 * NGC ("next-generation codec") shared types: the libx265/libvpx-vp9
 * analogue built on 32x32 superblocks with recursive quadtree
 * partitioning, hierarchical 8x8 transforms, six intra predictors, and
 * arithmetic coding only. Architecturally a generation past VBC, and
 * correspondingly slower and better-compressing (paper Fig. 2,
 * Table 5).
 */

#include <cstdint>
#include <vector>

#include "codec/syntax.h"
#include "codec/types.h"

namespace vbench::ngc {

/** Superblock edge in luma samples. */
inline constexpr int kSbSize = 32;
/** Smallest coding unit edge. */
inline constexpr int kMinCu = 8;

/** NGC intra predictors (superset of VBC's). */
enum class NgcIntraMode : uint8_t {
    Dc = 0,
    Vertical = 1,
    Horizontal = 2,
    TrueMotion = 3,   ///< left + top - corner gradient
    DiagDownLeft = 4, ///< 45-degree from the top row
    DiagDownRight = 5,///< 45-degree from top-left corner
};

inline constexpr int kNgcIntraModes = 6;

/** Coding-unit prediction modes. */
enum class CuMode : uint8_t {
    Skip = 0,
    Inter = 1,
    Intra = 2,
};

/**
 * Tool profiles: two parameterizations of the same architecture that
 * trade speed for compression slightly differently, standing in for
 * libx265 -preset veryslow and libvpx-vp9 --cpu-used 0.
 */
enum class NgcProfile : uint8_t {
    HevcLike = 0,
    Vp9Like = 1,
};

const char *toString(NgcProfile profile);

/**
 * Context id layout for the NGC arithmetic coder. NGC shares the
 * residual / MV / ref context ids with codec::ctx (so the shared
 * residual-block syntax helpers work unchanged) and appends its own
 * partition-tree and mode contexts after them.
 */
namespace nctx {

inline constexpr int kSplit = codec::ctx::kNumContexts;  // 2 slots
inline constexpr int kSkip = kSplit + 2;
inline constexpr int kIsInter = kSkip + 1;
inline constexpr int kIntraMode = kIsInter + 1;  // 3 slots (ue)
inline constexpr int kDcCount = kIntraMode + 3;  // 3 slots
inline constexpr int kNumContexts = kDcCount + 3;

} // namespace nctx

/**
 * Per-8x8-cell coding state used for MV prediction and for mapping
 * partition decisions onto the (16x16-granular) deblocking filter.
 */
struct CellInfo {
    CuMode mode = CuMode::Intra;
    codec::MotionVector mv;
    int8_t ref = 0;
    bool coded = false;
};

/** Grid of CellInfo at 8x8 granularity. */
class CellGrid
{
  public:
    CellGrid() = default;

    CellGrid(int cols, int rows)
        : cols_(cols), rows_(rows),
          cells_(static_cast<size_t>(cols) * rows)
    {
    }

    int cols() const { return cols_; }
    int rows() const { return rows_; }

    CellInfo &at(int cx, int cy) { return cells_[cy * cols_ + cx]; }
    const CellInfo &
    at(int cx, int cy) const
    {
        return cells_[cy * cols_ + cx];
    }

  private:
    int cols_ = 0;
    int rows_ = 0;
    std::vector<CellInfo> cells_;
};

/**
 * MV predictor for a CU whose top-left cell is (cx, cy): median of
 * the left, top, and top-left neighbor cells (inter cells only).
 * Shared by encoder and decoder. `top_row` is the first cell row of
 * the enclosing entropy slice: cells above it count as missing so
 * slices predict independently. 0 (the default) is the frame top.
 */
inline codec::MotionVector
cellMvPredictor(const CellGrid &grid, int cx, int cy, int top_row = 0)
{
    auto neighbor = [&](int nx, int ny) -> codec::MotionVector {
        if (nx < 0 || ny < top_row || nx >= grid.cols() ||
            ny >= grid.rows())
            return codec::MotionVector{};
        const CellInfo &cell = grid.at(nx, ny);
        if (cell.mode == CuMode::Intra)
            return codec::MotionVector{};
        return cell.mv;
    };
    const codec::MotionVector a = neighbor(cx - 1, cy);
    const codec::MotionVector b = neighbor(cx, cy - 1);
    const codec::MotionVector c = neighbor(cx - 1, cy - 1);
    codec::MotionVector pred;
    pred.x = static_cast<int16_t>(codec::median3(a.x, b.x, c.x));
    pred.y = static_cast<int16_t>(codec::median3(a.y, b.y, c.y));
    return pred;
}

} // namespace vbench::ngc
