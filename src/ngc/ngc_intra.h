#pragma once

/**
 * @file
 * NGC intra prediction: six predictors over arbitrary power-of-two
 * block sizes (8..32), including two 45-degree angular modes that VBC
 * lacks. Neighbors are read from the reconstructed plane with
 * availability-aware clamping, identically on both sides.
 */

#include <cstdint>

#include "ngc/ngc_types.h"
#include "video/plane.h"

namespace vbench::ngc {

/**
 * Generate an n x n prediction for the block at (x, y).
 *
 * @param mode predictor; must satisfy ngcIntraAvailable(mode, x, y,
 *        slice_top).
 * @param slice_top first pixel row of the enclosing entropy slice;
 *        rows above it are treated as outside the frame so slices
 *        decode independently. 0 (the default) is the frame top.
 */
void ngcIntraPredict(NgcIntraMode mode, const video::Plane &recon, int x,
                     int y, int n, uint8_t *out, int slice_top = 0);

/**
 * Availability of a predictor at a block position. Blocks on the
 * slice's first pixel row (`slice_top`) have no top neighbor, exactly
 * like blocks on the frame top.
 */
bool ngcIntraAvailable(NgcIntraMode mode, int x, int y,
                       int slice_top = 0);

} // namespace vbench::ngc
