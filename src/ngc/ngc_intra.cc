#include "ngc/ngc_intra.h"

#include "codec/types.h"

namespace vbench::ngc {

using codec::clampPixel;

bool
ngcIntraAvailable(NgcIntraMode mode, int x, int y, int slice_top)
{
    switch (mode) {
      case NgcIntraMode::Dc:
        return true;
      case NgcIntraMode::Vertical:
      case NgcIntraMode::DiagDownLeft:
        return y > slice_top;
      case NgcIntraMode::Horizontal:
        return x > 0;
      case NgcIntraMode::TrueMotion:
      case NgcIntraMode::DiagDownRight:
        return x > 0 && y > slice_top;
    }
    return false;
}

void
ngcIntraPredict(NgcIntraMode mode, const video::Plane &recon, int x, int y,
                int n, uint8_t *out, int slice_top)
{
    const bool has_top = y > slice_top;
    const bool has_left = x > 0;

    switch (mode) {
      case NgcIntraMode::Dc: {
        int sum = 0;
        int count = 0;
        if (has_top) {
            for (int i = 0; i < n; ++i)
                sum += recon.at(x + i, y - 1);
            count += n;
        }
        if (has_left) {
            for (int i = 0; i < n; ++i)
                sum += recon.at(x - 1, y + i);
            count += n;
        }
        const uint8_t dc = count > 0
            ? static_cast<uint8_t>((sum + count / 2) / count)
            : 128;
        for (int i = 0; i < n * n; ++i)
            out[i] = dc;
        break;
      }
      case NgcIntraMode::Vertical:
        for (int r = 0; r < n; ++r)
            for (int c = 0; c < n; ++c)
                out[r * n + c] = recon.at(x + c, y - 1);
        break;
      case NgcIntraMode::Horizontal:
        for (int r = 0; r < n; ++r) {
            const uint8_t v = recon.at(x - 1, y + r);
            for (int c = 0; c < n; ++c)
                out[r * n + c] = v;
        }
        break;
      case NgcIntraMode::TrueMotion: {
        const int corner = recon.at(x - 1, y - 1);
        for (int r = 0; r < n; ++r) {
            const int base = recon.at(x - 1, y + r) - corner;
            for (int c = 0; c < n; ++c)
                out[r * n + c] = clampPixel(base + recon.at(x + c, y - 1));
        }
        break;
      }
      case NgcIntraMode::DiagDownLeft:
        // 45 degrees from the top row extended right (clamped at the
        // plane edge), smoothed by a 1-2-1 filter.
        for (int r = 0; r < n; ++r) {
            for (int c = 0; c < n; ++c) {
                const int i = c + r;
                const int a = recon.atClamped(x + i, y - 1);
                const int b = recon.atClamped(x + i + 1, y - 1);
                const int d = recon.atClamped(x + i + 2, y - 1);
                out[r * n + c] =
                    static_cast<uint8_t>((a + 2 * b + d + 2) >> 2);
            }
        }
        break;
      case NgcIntraMode::DiagDownRight:
        // 45 degrees from the top-left corner: sample along the
        // diagonal through left column, corner, and top row.
        for (int r = 0; r < n; ++r) {
            for (int c = 0; c < n; ++c) {
                const int d = c - r;
                int a, b, e;
                if (d > 0) {
                    a = recon.atClamped(x + d - 2, y - 1);
                    b = recon.atClamped(x + d - 1, y - 1);
                    e = recon.atClamped(x + d, y - 1);
                } else if (d < 0) {
                    a = recon.atClamped(x - 1, y - d - 2);
                    b = recon.atClamped(x - 1, y - d - 1);
                    e = recon.atClamped(x - 1, y - d);
                } else {
                    a = recon.atClamped(x, y - 1);
                    b = recon.atClamped(x - 1, y - 1);
                    e = recon.atClamped(x - 1, y);
                }
                out[r * n + c] =
                    static_cast<uint8_t>((a + 2 * b + e + 2) >> 2);
            }
        }
        break;
    }
}

} // namespace vbench::ngc
