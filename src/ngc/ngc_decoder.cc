#include "ngc/ngc_decoder.h"

#include <algorithm>
#include <cstdlib>
#include <deque>

#include "codec/deblock.h"
#include "codec/interp.h"
#include "codec/refplane.h"
#include "codec/syntax.h"
#include "codec/transform.h"
#include "kernels/kernel_ops.h"
#include "ngc/ngc_bitstream.h"
#include "ngc/ngc_intra.h"
#include "ngc/ngc_residual.h"
#include "ngc/transform8.h"

namespace vbench::ngc {

namespace {

using codec::FrameType;
using codec::MbGrid;
using codec::MotionVector;
using codec::RefFrame;
using codec::RefPlane;
using codec::SyntaxReader;
using uarch::KernelId;
using video::Frame;
using video::Plane;
using video::Video;

namespace ctx = codec::ctx;

class NgcDecoderState
{
  public:
    NgcDecoderState(const NgcStreamHeader &header, uarch::UarchProbe *probe)
        : header_(header), probe_(probe),
          padded_w_((header.width + kSbSize - 1) & ~(kSbSize - 1)),
          padded_h_((header.height + kSbSize - 1) & ~(kSbSize - 1)),
          sb_cols_(padded_w_ / kSbSize), sb_rows_(padded_h_ / kSbSize)
    {
    }

    bool
    decodeFrame(const uint8_t *payload, size_t size, Video &out)
    {
        if (size < 1)
            return false;
        const FrameType type = codec::frameTypeFromByte(payload[0]);
        qp_ = codec::frameQpFromByte(payload[0]);
        // The header byte carries 6 QP bits (0..63); values past kMaxQp
        // never come from an encoder and would overrun the QP-indexed
        // deblock threshold tables.
        if (qp_ < codec::kMinQp || qp_ > codec::kMaxQp)
            return false;
        if (type == FrameType::I)
            refs_.clear();
        if (type == FrameType::P && refs_.empty())
            return false;

        const int slices = static_cast<int>(header_.slice_count);
        if (slices < 1 || slices > sb_rows_)
            return false;

        recon_ = Frame(padded_w_, padded_h_);
        cells_ = CellGrid(padded_w_ / 8, padded_h_ / 8);

        // Each slice is a self-contained segment with fresh arithmetic
        // contexts; slice_count == 1 is the legacy layout — the whole
        // payload after the frame byte, with no length prefix.
        size_t offset = 1;
        for (int s = 0; s < slices; ++s) {
            const uint8_t *seg = payload + offset;
            size_t seg_size = size - offset;
            if (slices > 1) {
                if (size - offset < 4)
                    return false;
                const uint32_t len = codec::readU32(payload + offset);
                offset += 4;
                if (len == 0 || size - offset < len)
                    return false;
                seg = payload + offset;
                seg_size = len;
                offset += len;
            }
            if (!decodeSlice(seg, seg_size, type,
                             codec::sliceRowStart(sb_rows_, slices, s),
                             codec::sliceRowStart(sb_rows_, slices,
                                                  s + 1)))
                return false;
        }
        if (slices > 1 && offset != size)
            return false;  // trailing garbage after the last slice

        if (header_.deblock)
            deblockMapped();

        refs_.push_front(RefFrame{RefPlane(recon_.y()),
                                  RefPlane(recon_.u()),
                                  RefPlane(recon_.v())});
        while (refs_.size() > std::max<size_t>(1, header_.num_refs))
            refs_.pop_back();

        out.append(cropOutput());
        return true;
    }

  private:
    Frame
    cropOutput() const
    {
        Frame out(header_.width, header_.height);
        auto crop = [](const Plane &in, Plane &dst) {
            for (int y = 0; y < dst.height(); ++y) {
                const uint8_t *src_row = in.row(y);
                uint8_t *dst_row = dst.row(y);
                for (int x = 0; x < dst.width(); ++x)
                    dst_row[x] = src_row[x];
            }
        };
        crop(recon_.y(), out.y());
        crop(recon_.u(), out.u());
        crop(recon_.v(), out.v());
        return out;
    }

    void
    deblockMapped()
    {
        MbGrid grid(padded_w_ / 16, padded_h_ / 16);
        for (int mby = 0; mby < grid.rows(); ++mby) {
            for (int mbx = 0; mbx < grid.cols(); ++mbx) {
                codec::MbInfo &info = grid.at(mbx, mby);
                bool any_intra = false;
                bool any_coded = false;
                for (int dy = 0; dy < 2; ++dy) {
                    for (int dx = 0; dx < 2; ++dx) {
                        const CellInfo &cell =
                            cells_.at(mbx * 2 + dx, mby * 2 + dy);
                        any_intra |= cell.mode == CuMode::Intra;
                        any_coded |= cell.coded;
                    }
                }
                const CellInfo &cell = cells_.at(mbx * 2, mby * 2);
                info.mode = any_intra ? codec::MbMode::Intra
                                      : codec::MbMode::Inter16;
                info.mv = cell.mv;
                info.ref = cell.ref;
                info.qp = static_cast<uint8_t>(qp_);
                info.coded = any_coded;
            }
        }
        codec::deblockFrame(recon_, grid, probe_);
    }

    /** Decode SB rows [row_begin, row_end) from one slice segment. */
    bool
    decodeSlice(const uint8_t *seg, size_t seg_size, FrameType type,
                int row_begin, int row_end)
    {
        codec::ArithSyntaxReader reader(seg, seg_size,
                                        nctx::kNumContexts);
        const int slice_top_px = row_begin * kSbSize;
        double bits_done = 0;
        for (int sby = row_begin; sby < row_end; ++sby) {
            for (int sbx = 0; sbx < sb_cols_; ++sbx) {
                if (!decodeTree(reader, sbx * kSbSize, sby * kSbSize,
                                kSbSize, 0, type, slice_top_px)) {
                    return false;
                }
                if (probe_) {
                    const double bits = reader.bitsConsumed();
                    probe_->record(
                        KernelId::DecodeParse,
                        std::max<uint64_t>(
                            1, static_cast<uint64_t>(bits - bits_done)),
                        parse_hash_, 64);
                    bits_done = bits;
                }
            }
        }
        return true;
    }

    bool
    decodeTree(SyntaxReader &reader, int x, int y, int size, int depth,
               FrameType type, int slice_top_px)
    {
        bool split = false;
        if (size > kMinCu)
            split = reader.bit(nctx::kSplit + std::min(depth, 1)) != 0;
        if (split) {
            const int half = size / 2;
            for (int q = 0; q < 4; ++q) {
                if (!decodeTree(reader, x + (q & 1) * half,
                                y + (q >> 1) * half, half, depth + 1,
                                type, slice_top_px)) {
                    return false;
                }
            }
            return true;
        }
        return decodeLeaf(reader, x, y, size, type, slice_top_px);
    }

    bool
    decodeLeaf(SyntaxReader &reader, int x, int y, int size,
               FrameType type, int slice_top_px)
    {
        if (probe_)
            probe_->record(KernelId::Dispatch, size * size / 256 + 1);

        const MotionVector pred_mv =
            cellMvPredictor(cells_, x / 8, y / 8, slice_top_px / 8);
        const int csize = size / 2;
        const int cx = x / 2;
        const int cy = y / 2;

        uint8_t pred_y[kSbSize * kSbSize];
        uint8_t pred_u[16 * 16];
        uint8_t pred_v[16 * 16];

        bool skip = false;
        bool inter = false;
        MotionVector mv{};
        int ref = 0;
        NgcIntraMode intra_mode = NgcIntraMode::Dc;

        if (type == FrameType::P)
            skip = reader.bit(nctx::kSkip) != 0;

        if (skip) {
            mv = codec::clampMvForBlock(pred_mv, x, y, size, size,
                                        padded_w_, padded_h_);
            inter = true;
        } else if (type == FrameType::P &&
                   reader.bit(nctx::kIsInter) != 0) {
            inter = true;
            if (header_.num_refs > 1) {
                const uint32_t r = reader.ue(ctx::kRefIdx, 2);
                if (r >= refs_.size())
                    return false;
                ref = static_cast<int>(r);
            }
            mv.x = static_cast<int16_t>(pred_mv.x +
                                        reader.se(ctx::kMvX, 4));
            mv.y = static_cast<int16_t>(pred_mv.y +
                                        reader.se(ctx::kMvY, 4));
            // Every compensated read (including the +1 of half-pel
            // filtering) must stay inside the reference padding.
            const int ix = x + (mv.x >> 1);
            const int iy = y + (mv.y >> 1);
            if (ix < -codec::kRefPad || iy < -codec::kRefPad ||
                ix + size + 1 > padded_w_ + codec::kRefPad ||
                iy + size + 1 > padded_h_ + codec::kRefPad) {
                return false;
            }
        } else {
            const uint32_t m = reader.ue(nctx::kIntraMode, 3);
            if (m >= kNgcIntraModes)
                return false;
            intra_mode = static_cast<NgcIntraMode>(m);
            if (!ngcIntraAvailable(intra_mode, x, y, slice_top_px))
                return false;
        }

        // Predictions.
        if (inter) {
            codec::motionCompensate(refs_[ref].y, x, y, mv, size, size,
                                    pred_y);
            const MotionVector cmv{static_cast<int16_t>(mv.x >> 1),
                                   static_cast<int16_t>(mv.y >> 1)};
            codec::motionCompensate(refs_[ref].u, cx, cy, cmv, csize,
                                    csize, pred_u);
            codec::motionCompensate(refs_[ref].v, cx, cy, cmv, csize,
                                    csize, pred_v);
        } else {
            const int ctop = slice_top_px / 2;
            ngcIntraPredict(intra_mode, recon_.y(), x, y, size, pred_y,
                            slice_top_px);
            const NgcIntraMode cmode =
                ngcIntraAvailable(intra_mode, cx, cy, ctop)
                    ? intra_mode
                    : NgcIntraMode::Dc;
            ngcIntraPredict(cmode, recon_.u(), cx, cy, csize, pred_u,
                            ctop);
            ngcIntraPredict(cmode, recon_.v(), cx, cy, csize, pred_v,
                            ctop);
        }

        int nonzero = 0;
        if (skip) {
            copyBlock(recon_.y(), x, y, size, pred_y, size);
            copyBlock(recon_.u(), cx, cy, csize, pred_u, csize);
            copyBlock(recon_.v(), cx, cy, csize, pred_v, csize);
        } else {
            // Luma TUs.
            const int tus = size / 8;
            int inv_blocks = 0;
            for (int ty = 0; ty < tus; ++ty) {
                for (int tx = 0; tx < tus; ++tx) {
                    int16_t dc[4];
                    int16_t ac[64];
                    const int n = readTu8(reader, dc, ac, true);
                    if (n < 0)
                        return false;
                    nonzero += n;
                    int16_t residual[64];
                    inverseTransform8x8(dc, ac, qp_, residual);
                    addBlock(recon_.y(), x + tx * 8, y + ty * 8, 8,
                             pred_y + ty * 8 * size + tx * 8, size,
                             residual, 8);
                    ++inv_blocks;
                }
            }
            // Chroma TUs.
            const int ctus = csize >= 8 ? csize / 8 : 0;
            for (int plane = 0; plane < 2; ++plane) {
                Plane &rplane = plane == 0 ? recon_.u() : recon_.v();
                const uint8_t *pred_c = plane == 0 ? pred_u : pred_v;
                if (ctus > 0) {
                    for (int ty = 0; ty < ctus; ++ty) {
                        for (int tx = 0; tx < ctus; ++tx) {
                            int16_t dc[4];
                            int16_t ac[64];
                            const int n = readTu8(reader, dc, ac, false);
                            if (n < 0)
                                return false;
                            nonzero += n;
                            int16_t residual[64];
                            inverseTransform8x8(dc, ac, qp_, residual);
                            addBlock(rplane, cx + tx * 8, cy + ty * 8, 8,
                                     pred_c + ty * 8 * csize + tx * 8,
                                     csize, residual, 8);
                            ++inv_blocks;
                        }
                    }
                } else {
                    int16_t levels[16];
                    if (codec::readResidualBlock(reader, levels, false) <
                        0) {
                        return false;
                    }
                    int32_t coefs[16];
                    int16_t residual[16];
                    codec::dequantize4x4(levels, coefs, qp_);
                    codec::inverseTransform4x4(coefs, residual);
                    addBlock(rplane, cx, cy, 4, pred_c, 4, residual, 4);
                    ++inv_blocks;
                }
            }
            if (probe_ && inv_blocks > 0) {
                probe_->record(KernelId::Dequant, inv_blocks * 4);
                probe_->record(KernelId::TransformInv, inv_blocks * 4);
                probe_->record(KernelId::Reconstruct,
                               static_cast<uint64_t>(size) * size / 16,
                               static_cast<uint64_t>(inv_blocks), 6);
            }
        }

        for (int dy = 0; dy < size / 8; ++dy) {
            for (int dx = 0; dx < size / 8; ++dx) {
                CellInfo &cell = cells_.at(x / 8 + dx, y / 8 + dy);
                cell.mode = skip ? CuMode::Skip
                                 : (inter ? CuMode::Inter : CuMode::Intra);
                cell.mv = inter ? mv : MotionVector{};
                cell.ref = static_cast<int8_t>(ref);
                cell.coded = nonzero != 0;
            }
        }
        parse_hash_ = parse_hash_ * 0x9E3779B97F4A7C15ull +
            static_cast<uint64_t>(nonzero);
        return true;
    }

    static void
    copyBlock(Plane &dst, int x, int y, int n, const uint8_t *src,
              int stride)
    {
        kernels::ops().copy2d(src, stride, dst.row(y) + x, dst.width(),
                              n, n);
    }

    static void
    addBlock(Plane &dst, int x, int y, int n, const uint8_t *pred,
             int pred_stride, const int16_t *residual, int res_stride)
    {
        kernels::ops().addClampBlock(pred, pred_stride, residual,
                                     res_stride, dst.row(y) + x,
                                     dst.width(), n, n);
    }

    NgcStreamHeader header_;
    uarch::UarchProbe *probe_;
    int padded_w_;
    int padded_h_;
    int sb_cols_;
    int sb_rows_;

    Frame recon_;
    CellGrid cells_;
    std::deque<RefFrame> refs_;
    int qp_ = 26;
    uint64_t parse_hash_ = 0;
};

} // namespace

std::optional<Video>
ngcDecode(const uint8_t *data, size_t size, const NgcDecoderConfig &config)
{
    size_t offset = 0;
    auto header = parseNgcHeader(data, size, offset);
    if (!header)
        return std::nullopt;

    Video out(header->width, header->height, header->fps());

    // Outer loop: decode this stream, then — split-and-stitch concat
    // support — continue into any back-to-back stream that follows.
    // Trailing bytes that are not a stream header are still ignored.
    while (true) {
        NgcDecoderState state(*header, config.probe);
        for (uint32_t i = 0; i < header->frame_count; ++i) {
            if (offset + 4 > size)
                return std::nullopt;
            const uint32_t payload_len = codec::readU32(data + offset);
            offset += 4;
            if (payload_len == 0 || offset + payload_len > size)
                return std::nullopt;
            if (!state.decodeFrame(data + offset, payload_len, out))
                return std::nullopt;
            offset += payload_len;
        }
        if (size - offset < 4 ||
            std::memcmp(data + offset, kNgcMagic, 4) != 0)
            break;
        size_t consumed = 0;
        header = parseNgcHeader(data + offset, size - offset, consumed);
        if (!header)
            return std::nullopt;
        if (header->width != out.width() || header->height != out.height())
            return std::nullopt;
        offset += consumed;
    }
    return out;
}

} // namespace vbench::ngc
