#pragma once

/**
 * @file
 * NGC transform-unit syntax, shared by encoder and decoder: the 2x2
 * Hadamard DC mini-block followed by four 4x4 AC blocks (whose
 * position 0 is structurally zero).
 */

#include <cstdint>

#include "codec/residual.h"
#include "codec/syntax.h"
#include "ngc/ngc_types.h"

namespace vbench::ngc {

/** Write one hierarchical 8x8 TU. */
inline void
writeTu8(codec::SyntaxWriter &writer, const int16_t dc_levels[4],
         const int16_t ac_levels[64], bool luma)
{
    int count = 0;
    for (int i = 0; i < 4; ++i)
        count += dc_levels[i] != 0;
    writer.ue(count, nctx::kDcCount, 3);
    int prev = -1;
    for (int i = 0; i < 4; ++i) {
        if (dc_levels[i] == 0)
            continue;
        writer.ue(static_cast<uint32_t>(i - prev - 1), codec::ctx::kRun,
                  3);
        const int16_t level = dc_levels[i];
        const uint32_t mag = level < 0 ? -level : level;
        writer.ue(mag - 1, codec::ctx::kLevel, 4);
        writer.bypass(level < 0);
        prev = i;
    }
    for (int sb = 0; sb < 4; ++sb)
        codec::writeResidualBlock(writer, ac_levels + sb * 16, luma);
}

/**
 * Parse one hierarchical 8x8 TU.
 * @return total nonzero levels, or -1 on corrupt syntax.
 */
inline int
readTu8(codec::SyntaxReader &reader, int16_t dc_levels[4],
        int16_t ac_levels[64], bool luma)
{
    for (int i = 0; i < 4; ++i)
        dc_levels[i] = 0;
    const uint32_t count = reader.ue(nctx::kDcCount, 3);
    if (count > 4)
        return -1;
    int pos = -1;
    for (uint32_t i = 0; i < count; ++i) {
        const uint32_t run = reader.ue(codec::ctx::kRun, 3);
        // Bound before the int cast: a corrupt run near UINT32_MAX
        // would wrap `pos` negative and index below the DC array.
        if (run > 3)
            return -1;
        pos += static_cast<int>(run) + 1;
        if (pos > 3)
            return -1;
        const uint32_t mag = reader.ue(codec::ctx::kLevel, 4) + 1;
        if (mag > 32767)
            return -1;
        dc_levels[pos] = reader.bypass() ? -static_cast<int16_t>(mag)
                                         : static_cast<int16_t>(mag);
    }
    int nonzero = static_cast<int>(count);
    for (int sb = 0; sb < 4; ++sb) {
        const int n =
            codec::readResidualBlock(reader, ac_levels + sb * 16, luma);
        if (n < 0 || ac_levels[sb * 16] != 0)
            return -1;  // position 0 must stay structural zero
        nonzero += n;
    }
    return nonzero;
}

} // namespace vbench::ngc
